(* Tests for TRC, DRC, safety analysis, and the translation hexagon. *)

module T = Diagres_rc.Trc
module Drc = Diagres_rc.Drc
module F = Diagres_logic.Fol
module D = Diagres_data

let db = Testutil.db
let schemas = Testutil.schemas
let env = Testutil.env

let trc = Diagres_rc.Trc_parser.parse
let drc = Diagres_rc.Drc_parser.parse

let q1_trc =
  "{ s.sid | s in Sailor : exists r in Reserves (r.sid = s.sid and exists b \
   in Boat (b.bid = r.bid and b.color = 'red')) }"

let q3_trc =
  "{ s.sid | s in Sailor : forall b in Boat (b.color = 'red' implies exists \
   r in Reserves (r.sid = s.sid and r.bid = b.bid)) }"

(* ---------------- TRC ---------------- *)

let test_trc_parse_print_roundtrip () =
  List.iter
    (fun src ->
      let q = trc src in
      let q2 = trc (T.to_string q) in
      Alcotest.(check bool) ("roundtrip " ^ src) true (q = q2))
    [ q1_trc; q3_trc;
      "{ | s in Sailor : s.rating = 10 }";
      "{ s.sid, s.sname | s in Sailor }";
      "{ s.sid | s in Sailor : s.rating = 10 or s.rating = 9 }";
      "{ s.sid | s in Sailor : not (s.age > 30.0) and true }" ]

let test_trc_eval () =
  Testutil.check_same_rows "q1"
    (Testutil.sids D.Sample_db.q1_expected_sids)
    (T.eval db (trc q1_trc));
  Testutil.check_same_rows "q3"
    (Testutil.sids D.Sample_db.q3_expected_sids)
    (T.eval db (trc q3_trc))

let test_trc_boolean_query () =
  Alcotest.(check bool) "some sailor rated 10" true
    (T.eval_sentence db
       (T.Exists ([ ("s", "Sailor") ], T.Cmp (F.Eq, T.Field ("s", "rating"), T.Const (D.Value.Int 10)))));
  Alcotest.(check bool) "no sailor rated 99" false
    (T.eval_sentence db
       (T.Exists ([ ("s", "Sailor") ], T.Cmp (F.Eq, T.Field ("s", "rating"), T.Const (D.Value.Int 99)))))

let test_trc_typecheck_errors () =
  let fails src =
    match T.eval db (trc src) with
    | exception T.Type_error _ -> ()
    | _ -> Alcotest.failf "should not typecheck: %s" src
  in
  fails "{ s.sid | s in Nowhere }";
  fails "{ s.zzz | s in Sailor }";
  fails "{ s.sid | s in Sailor : exists s in Sailor (s.sid = s.sid) }";
  fails "{ t.sid | s in Sailor }"

let test_trc_duplicate_head_names () =
  (* both head fields named sid: output disambiguates *)
  let q = trc "{ s.sid, r.sid | s in Sailor, r in Reserves : s.sid = r.sid }" in
  let rel = T.eval db q in
  Alcotest.(check (list string)) "columns" [ "sid"; "sid_2" ]
    (D.Schema.names (D.Relation.schema rel))

let test_single_panel () =
  Alcotest.(check bool) "q1 one panel" true (T.single_panel (trc q1_trc).T.body);
  Alcotest.(check bool) "forall drawable" true (T.single_panel (trc q3_trc).T.body);
  Alcotest.(check bool) "positive or is not" false
    (T.single_panel (trc "{ s.sid | s in Sailor : s.rating = 1 or s.rating = 2 }").T.body);
  Alcotest.(check bool) "negated or is drawable" true
    (T.single_panel
       (trc "{ s.sid | s in Sailor : not (s.rating = 1 or s.rating = 2) }").T.body)

let test_panel_split_semantics () =
  let q =
    trc
      "{ s.sid | s in Sailor : exists r in Reserves (r.sid = s.sid and \
       exists b in Boat (b.bid = r.bid and (b.color = 'red' or b.color = \
       'green'))) }"
  in
  let panels = Diagres_rc.Translate.drawable_panels schemas [ q ] in
  Alcotest.(check int) "two panels" 2 (List.length panels);
  List.iter
    (fun (p : T.query) ->
      Alcotest.(check bool) "panel drawable" true (T.single_panel p.T.body))
    panels;
  let union =
    List.fold_left
      (fun acc p -> D.Relation.union acc (T.eval db p))
      (T.eval db (List.hd panels))
      (List.tl panels)
  in
  Testutil.check_same_rows "panels union = original" (T.eval db q) union

(* ---------------- DRC ---------------- *)

let test_drc_parse_eval () =
  let q =
    drc
      "{ s | exists n, rt, a (Sailor(s, n, rt, a) & exists b, d (Reserves(s, \
       b, d) & exists bn, c (Boat(b, bn, c) & c = 'red'))) }"
  in
  Testutil.check_same_rows "q1 drc"
    (Testutil.sids D.Sample_db.q1_expected_sids)
    (Drc.eval db q)

let test_drc_typecheck () =
  let fails src =
    let q = drc src in
    match Drc.typecheck schemas q with
    | exception Drc.Type_error _ -> ()
    | _ -> Alcotest.failf "should not typecheck: %s" src
  in
  fails "{ x, y | exists n, r, a (Sailor(x, n, r, a)) }";
  fails "{ x | Sailor(x, x, x) }";
  fails "{ x | Zap(x) }";
  fails "{ x, x | Sailor(x, x, x, x) }"

let test_drc_boolean () =
  Alcotest.(check bool) "sentence true" true
    (Drc.eval_sentence db
       (Diagres_rc.Drc_parser.parse_formula
          "exists b, n, c (Boat(b, n, c) & c = 'red')"));
  Alcotest.(check bool) "sentence false" false
    (Drc.eval_sentence db
       (Diagres_rc.Drc_parser.parse_formula
          "exists b, n, c (Boat(b, n, c) & c = 'mauve')"))

(* ---------------- safety ---------------- *)

let test_safe_range () =
  let safe src = Diagres_rc.Safety.safe_query (drc src) in
  Alcotest.(check bool) "atom safe" true (safe "{ x | exists n, r, a (Sailor(x, n, r, a)) }");
  Alcotest.(check bool) "negation guarded" true
    (safe
       "{ x | exists n, r, a (Sailor(x, n, r, a)) & not (exists b, d \
        (Reserves(x, b, d))) }");
  Alcotest.(check bool) "bare negation unsafe" false
    (safe "{ x | not (exists n, r, a (Sailor(x, n, r, a))) }");
  Alcotest.(check bool) "comparison alone unsafe" false (safe "{ x | x > 5 }");
  Alcotest.(check bool) "const equality safe" true (safe "{ x | x = 5 }");
  Alcotest.(check bool) "eq propagation" true
    (safe "{ y | exists x (x = 5 & x = y) }");
  Alcotest.(check bool) "disjunction needs both sides" false
    (safe "{ x | x = 1 | exists y (x > y) }")

let test_safety_explanation () =
  match
    Diagres_rc.Safety.check
      (Diagres_rc.Drc_parser.parse_formula "exists y (x > y)")
  with
  | Error msg ->
    Alcotest.(check bool) "names the unrestricted variable" true
      (String.length msg > 0)
  | Ok () -> Alcotest.fail "expected unsafe"

let test_domain_dependence () =
  (* {x | ¬Sailor-ish(x)} depends on the domain *)
  let q = drc "{ x | not (exists n, r, a (Sailor(x, n, r, a))) }" in
  match Diagres_rc.Safety.domain_dependence_witness db q with
  | Some (a0, a1) ->
    Alcotest.(check bool) "extended domain adds answers" true
      (List.length a1 > List.length a0)
  | None -> Alcotest.fail "expected a domain-dependence witness"

let test_domain_independence_of_safe () =
  let q =
    drc
      "{ x | exists n, rt, a (Sailor(x, n, rt, a) & not (exists b, d \
       (Reserves(x, b, d)))) }"
  in
  Alcotest.(check bool) "safe query is domain independent" true
    (Diagres_rc.Safety.domain_dependence_witness db q = None)

(* ---------------- translations ---------------- *)

let eval_ra e = Diagres_ra.Eval.eval db e

let test_trc_to_drc_semantics () =
  List.iter
    (fun src ->
      let q = trc src in
      let d = Diagres_rc.Translate.trc_to_drc schemas q in
      Testutil.check_same_rows ("trc→drc " ^ src) (T.eval db q) (Drc.eval db d))
    [ q1_trc; q3_trc; "{ s.sid, s.age | s in Sailor : s.rating > 7 }" ]

let test_trc_to_ra_semantics () =
  (* q3's ¬∃¬ pattern translates to differences over adomᵏ products, so the
     negation-heavy case runs on the tiny instance *)
  let check on_db src =
    let q = trc src in
    let e = Diagres_rc.Translate.trc_to_ra schemas q in
    Testutil.check_same_rows ("trc→ra " ^ src) (T.eval on_db q)
      (Diagres_ra.Eval.eval on_db e)
  in
  check db q1_trc;
  check Testutil.tiny_db q3_trc

let prop_ra_to_trc_roundtrip =
  QCheck.Test.make ~name:"RA → TRC panels preserve semantics" ~count:80
    (Testutil.arbitrary_ra ~fuel:3 ())
    (fun e ->
      let panels = Diagres_rc.Translate.ra_to_trc env e in
      let expected = eval_ra e in
      match panels with
      | [] -> D.Relation.is_empty expected
      | p :: ps ->
        let union =
          List.fold_left
            (fun acc q -> D.Relation.union acc (T.eval db q))
            (T.eval db p) ps
        in
        D.Relation.same_rows expected union)

let prop_ra_to_drc_roundtrip =
  QCheck.Test.make ~name:"RA → DRC preserves semantics" ~count:40
    (Testutil.arbitrary_ra ~fuel:2 ())
    (fun e ->
      (* tiny database: DRC naive evaluation enumerates the active domain *)
      let tdb = Testutil.tiny_db in
      D.Relation.same_rows
        (Diagres_ra.Eval.eval tdb e)
        (Drc.eval tdb (Diagres_rc.Translate.ra_to_drc env e)))

let prop_ra_to_drc_safe =
  QCheck.Test.make ~name:"RA → DRC output is safe-range" ~count:60
    (Testutil.arbitrary_ra ~fuel:3 ())
    (fun e ->
      Diagres_rc.Safety.safe_query (Diagres_rc.Translate.ra_to_drc env e))

let prop_drc_to_ra_roundtrip =
  QCheck.Test.make ~name:"DRC (from RA) → RA preserves semantics" ~count:40
    (Testutil.arbitrary_ra ~fuel:2 ())
    (fun e ->
      (* tiny database: the adom-based translation materializes adom^k
         intermediates under negation, so the domain must stay small *)
      let tdb = Testutil.tiny_db in
      let d = Diagres_rc.Translate.ra_to_drc env e in
      let e2 = Diagres_rc.Translate.drc_to_ra schemas d in
      D.Relation.same_rows
        (Diagres_ra.Eval.eval tdb e)
        (Diagres_ra.Eval.eval tdb e2))

let test_ra_rewrite_division () =
  let e =
    Diagres_ra.Parser.parse
      "project[sid,bid](Reserves) div project[bid](select[color='red'](Boat))"
  in
  let e2 = Diagres_rc.Ra_rewrite.eliminate_division env e in
  let rec has_div = function
    | Diagres_ra.Ast.Division _ -> true
    | Diagres_ra.Ast.Rel _ -> false
    | Diagres_ra.Ast.Empty x | Diagres_ra.Ast.Select (_, x)
    | Diagres_ra.Ast.Project (_, x)
    | Diagres_ra.Ast.Rename (_, x) -> has_div x
    | Diagres_ra.Ast.Product (a, b) | Diagres_ra.Ast.Join (a, b)
    | Diagres_ra.Ast.Theta_join (_, a, b) | Diagres_ra.Ast.Union (a, b)
    | Diagres_ra.Ast.Inter (a, b) | Diagres_ra.Ast.Diff (a, b) ->
      has_div a || has_div b
  in
  Alcotest.(check bool) "no division left" false (has_div e2);
  Testutil.check_same_rows "division elimination" (eval_ra e) (eval_ra e2)

let prop_union_free_forms =
  QCheck.Test.make ~name:"union-free forms union to the original" ~count:60
    (Testutil.arbitrary_ra ~fuel:3 ())
    (fun e ->
      let forms = Diagres_rc.Ra_rewrite.union_free_forms env e in
      let expected = eval_ra e in
      match forms with
      | [] -> D.Relation.is_empty expected
      | f :: fs ->
        let union =
          List.fold_left
            (fun acc g -> D.Relation.union acc (eval_ra g))
            (eval_ra f) fs
        in
        D.Relation.same_rows expected union)

(* ---------------- restricted vs naive evaluation ---------------- *)

(* the differential properties for this PR's range-restricted engines: on
   the whole catalog and on random instances, the index-probing evaluators
   must agree with the full-scan / active-domain references *)

let test_trc_restricted_vs_naive () =
  let dbs = db :: Testutil.random_dbs 6 in
  List.iter
    (fun e ->
      let q = Diagres.Catalog.parsed_trc e in
      List.iteri
        (fun i rdb ->
          Testutil.check_same_rows
            (Printf.sprintf "%s trc restricted (db %d)" e.Diagres.Catalog.id i)
            (T.eval_naive rdb q) (T.eval rdb q))
        dbs)
    Diagres.Catalog.all

let test_drc_restricted_vs_naive () =
  let dbs = db :: Testutil.random_dbs 6 in
  List.iter
    (fun e ->
      let q = Diagres.Catalog.parsed_drc e in
      List.iteri
        (fun i rdb ->
          Testutil.check_same_rows
            (Printf.sprintf "%s drc restricted (db %d)" e.Diagres.Catalog.id i)
            (Drc.eval_naive rdb q) (Drc.eval rdb q))
        dbs)
    Diagres.Catalog.all

let prop_trc_restricted_vs_naive =
  QCheck.Test.make ~name:"TRC restricted = full-scan on RA-derived queries"
    ~count:40
    (Testutil.arbitrary_ra ~fuel:2 ())
    (fun e ->
      List.for_all
        (fun q -> D.Relation.same_rows (T.eval_naive db q) (T.eval db q))
        (Diagres_rc.Translate.ra_to_trc env e))

let prop_drc_restricted_vs_naive =
  QCheck.Test.make ~name:"DRC restricted = active-domain on RA-derived queries"
    ~count:30
    (Testutil.arbitrary_ra ~fuel:2 ())
    (fun e ->
      (* tiny database: the naive side enumerates the active domain *)
      let tdb = Testutil.tiny_db in
      let d = Diagres_rc.Translate.ra_to_drc env e in
      D.Relation.same_rows (Drc.eval_naive tdb d) (Drc.eval tdb d))

let () =
  Alcotest.run "rc"
    [
      ( "trc",
        [ Alcotest.test_case "parse/print roundtrip" `Quick
            test_trc_parse_print_roundtrip;
          Alcotest.test_case "eval q1/q3" `Quick test_trc_eval;
          Alcotest.test_case "boolean queries" `Quick test_trc_boolean_query;
          Alcotest.test_case "typecheck errors" `Quick
            test_trc_typecheck_errors;
          Alcotest.test_case "duplicate head names" `Quick
            test_trc_duplicate_head_names;
          Alcotest.test_case "single panel" `Quick test_single_panel;
          Alcotest.test_case "panel split semantics" `Quick
            test_panel_split_semantics ] );
      ( "drc",
        [ Alcotest.test_case "parse/eval" `Quick test_drc_parse_eval;
          Alcotest.test_case "typecheck" `Quick test_drc_typecheck;
          Alcotest.test_case "boolean" `Quick test_drc_boolean ] );
      ( "safety",
        [ Alcotest.test_case "safe range" `Quick test_safe_range;
          Alcotest.test_case "unsafe explanation" `Quick
            test_safety_explanation;
          Alcotest.test_case "domain dependence witness" `Quick
            test_domain_dependence;
          Alcotest.test_case "safe queries independent" `Quick
            test_domain_independence_of_safe ] );
      ( "translate",
        [ Alcotest.test_case "trc→drc" `Quick test_trc_to_drc_semantics;
          Alcotest.test_case "trc→ra" `Quick test_trc_to_ra_semantics;
          Alcotest.test_case "÷ elimination" `Quick test_ra_rewrite_division;
          Testutil.qtest prop_ra_to_trc_roundtrip;
          Testutil.qtest prop_ra_to_drc_roundtrip;
          Testutil.qtest prop_ra_to_drc_safe;
          Testutil.qtest prop_drc_to_ra_roundtrip;
          Testutil.qtest prop_union_free_forms ] );
      ( "restricted-vs-naive",
        [ Alcotest.test_case "trc catalog + random dbs" `Quick
            test_trc_restricted_vs_naive;
          Alcotest.test_case "drc catalog + random dbs" `Quick
            test_drc_restricted_vs_naive;
          Testutil.qtest prop_trc_restricted_vs_naive;
          Testutil.qtest prop_drc_restricted_vs_naive ] );
    ]
