(* Integration tests: catalog agreement, pipeline, patterns, principles. *)

module D = Diagres_data
module L = Diagres.Languages

let db = Testutil.db
let schemas = Testutil.schemas

(* ---------------- catalog: E1 cross-language agreement ---------------- *)

let test_catalog_sample_db () =
  List.iter
    (fun e ->
      let results = Diagres.Catalog.eval_all db e in
      let _, first = List.hd results in
      List.iter
        (fun (lang, r) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s agrees" e.Diagres.Catalog.id lang)
            true
            (D.Relation.same_rows first r))
        results;
      match e.Diagres.Catalog.expected_sids with
      | Some sids ->
        Testutil.check_same_rows
          (e.Diagres.Catalog.id ^ " ground truth")
          (Testutil.sids sids) first
      | None -> ())
    Diagres.Catalog.all

let prop_catalog_random_dbs =
  QCheck.Test.make ~name:"catalog queries agree on random databases"
    ~count:12 QCheck.small_int
    (fun seed ->
      let rdb =
        D.Generator.sailors_db ~n_sailors:6 ~n_boats:3 ~n_reserves:10 seed
      in
      List.for_all
        (fun e ->
          let results = Diagres.Catalog.eval_all rdb e in
          let _, first = List.hd results in
          List.for_all (fun (_, r) -> D.Relation.same_rows first r) results)
        Diagres.Catalog.all)

(* ---------------- second vocabulary: drinkers-bars-beers -------------- *)

let ddb = Diagres_data.Drinkers_db.db

let dschemas = Diagres_data.Drinkers_db.schemas

let d2_trc =
  "{ l0.drinker | l0 in Likes : forall f in Frequents (f.drinker = \
   l0.drinker implies exists s in Serves, l in Likes (s.bar = f.bar and \
   l.drinker = f.drinker and l.beer = s.beer)) and exists f0 in Frequents \
   (f0.drinker = l0.drinker) }"

let test_drinkers_ground_truth () =
  let q = Diagres_rc.Trc_parser.parse d2_trc in
  Testutil.check_same_rows "D2 only-bars-they-like"
    (Diagres_data.Drinkers_db.drinker_relation Diagres_data.Drinkers_db.d2_expected)
    (Diagres_rc.Trc.eval ddb q);
  let d1 =
    Diagres_rc.Trc_parser.parse
      "{ f.drinker | f in Frequents : exists s in Serves, l in Likes (s.bar \
       = f.bar and l.drinker = f.drinker and l.beer = s.beer) }"
  in
  Testutil.check_same_rows "D1"
    (Diagres_data.Drinkers_db.drinker_relation Diagres_data.Drinkers_db.d1_expected)
    (Diagres_rc.Trc.eval ddb d1)

let test_drinkers_cross_language () =
  (* D2 through TRC → DRC → RA all agree on the second schema *)
  let q = Diagres_rc.Trc_parser.parse d2_trc in
  let expected = Diagres_rc.Trc.eval ddb q in
  let drc = Diagres_rc.Translate.trc_to_drc dschemas q in
  Testutil.check_same_rows "D2 drc" expected (Diagres_rc.Drc.eval ddb drc);
  let ra = Diagres_rc.Translate.trc_to_ra dschemas q in
  Testutil.check_same_rows "D2 ra" expected (Diagres_ra.Eval.eval ddb ra)

let test_drinkers_pipeline () =
  let q = L.Q_trc (Diagres_rc.Trc_parser.parse d2_trc) in
  Alcotest.(check bool) "pipeline verifies on drinkers db" true
    (Diagres.Pipeline.verify_roundtrip ddb q);
  let r = Diagres.Pipeline.visualize dschemas q Diagres.Pipeline.Relational_diagram in
  Alcotest.(check int) "one panel" 1 r.Diagres.Pipeline.panel_count

(* ---------------- languages dispatch ---------------- *)

let test_language_parse_dispatch () =
  List.iter
    (fun e ->
      ignore (L.parse L.Sql e.Diagres.Catalog.sql);
      ignore (L.parse L.Ra e.Diagres.Catalog.ra);
      ignore (L.parse L.Trc e.Diagres.Catalog.trc);
      ignore (L.parse L.Drc e.Diagres.Catalog.drc);
      ignore (L.parse L.Datalog e.Diagres.Catalog.datalog))
    Diagres.Catalog.all

let test_language_parse_errors () =
  (match L.parse L.Sql "SELECT FROM" with
  | exception Diagres_diag.Diag.Error d ->
    Alcotest.(check string) "sql parse code" "E-SQL-PARSE-001" d.Diagres_diag.Diag.code
  | _ -> Alcotest.fail "bad sql must raise a parse diagnostic");
  match L.parse L.Ra "project[" with
  | exception Diagres_diag.Diag.Error d ->
    Alcotest.(check string) "ra parse code" "E-RA-PARSE-001" d.Diagres_diag.Diag.code
  | _ -> Alcotest.fail "bad ra must raise a parse diagnostic"

let test_to_ra_semantics () =
  List.iter
    (fun e ->
      let q = L.parse L.Trc e.Diagres.Catalog.trc in
      let ra = L.to_ra schemas q in
      Testutil.check_same_rows
        ("to_ra " ^ e.Diagres.Catalog.id)
        (L.eval db q)
        (Diagres_ra.Eval.eval db ra))
    Diagres.Catalog.all

(* ---------------- pipeline ---------------- *)

let test_pipeline_verify_all_catalog () =
  List.iter
    (fun e ->
      let q = L.parse L.Sql e.Diagres.Catalog.sql in
      Alcotest.(check bool)
        ("verified " ^ e.Diagres.Catalog.id)
        true
        (Diagres.Pipeline.verify_roundtrip db q))
    Diagres.Catalog.all

let test_pipeline_formalisms () =
  let e = Diagres.Catalog.find "q3" in
  let q = L.parse L.Sql e.Diagres.Catalog.sql in
  List.iter
    (fun f ->
      match Diagres.Pipeline.visualize schemas q f with
      | r ->
        Alcotest.(check bool)
          (Diagres.Pipeline.formalism_name f ^ " renders")
          true
          (r.Diagres.Pipeline.panel_count >= 1
          && List.for_all (fun s -> String.length s > 0) r.Diagres.Pipeline.panels_svg)
      | exception Diagres.Pipeline.Pipeline_error _ ->
        (* QBE requires the Datalog form; that is the documented behaviour *)
        Alcotest.(check bool) "only qbe may refuse" true
          (f = Diagres.Pipeline.Qbe))
    Diagres.Pipeline.all_formalisms

let test_pipeline_qbe_via_datalog () =
  let e = Diagres.Catalog.find "q3" in
  let q = L.parse L.Datalog e.Diagres.Catalog.datalog in
  let r = Diagres.Pipeline.visualize schemas q Diagres.Pipeline.Qbe in
  Alcotest.(check int) "one rendering" 1 r.Diagres.Pipeline.panel_count

let test_pipeline_union_panels () =
  let e = Diagres.Catalog.find "q4" in
  let q = L.parse L.Sql e.Diagres.Catalog.sql in
  let r = Diagres.Pipeline.visualize schemas q Diagres.Pipeline.Relational_diagram in
  Alcotest.(check int) "two panels" 2 r.Diagres.Pipeline.panel_count

let test_pipeline_run () =
  let _, r, verified =
    Diagres.Pipeline.run db "trc" (Diagres.Catalog.find "q1").Diagres.Catalog.trc "qv"
  in
  Alcotest.(check bool) "verified" true verified;
  Alcotest.(check int) "one panel" 1 r.Diagres.Pipeline.panel_count

(* ---------------- pattern ---------------- *)

let trc = Diagres_rc.Trc_parser.parse

let test_pattern_alpha_renaming () =
  let a = Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q3") in
  let b =
    trc
      "{ x.sid | x in Sailor : forall y in Boat (y.color = 'red' implies \
       exists z in Reserves (z.sid = x.sid and z.bid = y.bid)) }"
  in
  Alcotest.(check bool) "alpha-renamed queries share pattern" true
    (Diagres.Pattern.same_pattern a b)

let test_pattern_distinguishes () =
  let q1 = Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q1") in
  let q2 = Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q2") in
  Alcotest.(check bool) "q1 and q2 differ" false
    (Diagres.Pattern.same_pattern q1 q2)

let test_pattern_constant_abstraction () =
  let a = trc "{ s.sid | s in Sailor : s.rating = 10 }" in
  let b = trc "{ s.sid | s in Sailor : s.rating = 7 }" in
  Alcotest.(check bool) "literal patterns differ" false
    (Diagres.Pattern.same_pattern a b);
  Alcotest.(check bool) "shape patterns agree" true
    (Diagres.Pattern.same_pattern ~abstraction:`Shape a b)

let prop_pattern_invariant_under_renaming =
  QCheck.Test.make
    ~name:"pattern is invariant under tuple-variable renaming" ~count:60
    QCheck.small_int
    (fun seed ->
      (* rename every range variable of a random catalog query with a
         seed-derived fresh name, preserving structure (q4 excluded: its
         disjunction means patterns are defined per panel) *)
      let single_panel_entries = [ "q1"; "q2"; "q3"; "q5" ] in
      let e =
        Diagres.Catalog.find
          (List.nth single_panel_entries (seed mod 4))
      in
      let q = Diagres.Catalog.parsed_trc e in
      let mapping =
        List.mapi
          (fun i (v, _) -> (v, Printf.sprintf "w%d_%d" seed i))
          (q.Diagres_rc.Trc.ranges
          @ (let rec declared f =
               match f with
               | Diagres_rc.Trc.Exists (rs, g) | Diagres_rc.Trc.Forall (rs, g)
                 ->
                 rs @ declared g
               | Diagres_rc.Trc.And (a, b) | Diagres_rc.Trc.Or (a, b)
               | Diagres_rc.Trc.Implies (a, b) ->
                 declared a @ declared b
               | Diagres_rc.Trc.Not g -> declared g
               | _ -> []
             in
             declared q.Diagres_rc.Trc.body))
      in
      let rn v = try List.assoc v mapping with Not_found -> v in
      let term = function
        | Diagres_rc.Trc.Field (v, a) -> Diagres_rc.Trc.Field (rn v, a)
        | c -> c
      in
      let rec formula f =
        match f with
        | Diagres_rc.Trc.True | Diagres_rc.Trc.False -> f
        | Diagres_rc.Trc.Cmp (op, a, b) ->
          Diagres_rc.Trc.Cmp (op, term a, term b)
        | Diagres_rc.Trc.Not g -> Diagres_rc.Trc.Not (formula g)
        | Diagres_rc.Trc.And (a, b) -> Diagres_rc.Trc.And (formula a, formula b)
        | Diagres_rc.Trc.Or (a, b) -> Diagres_rc.Trc.Or (formula a, formula b)
        | Diagres_rc.Trc.Implies (a, b) ->
          Diagres_rc.Trc.Implies (formula a, formula b)
        | Diagres_rc.Trc.Exists (rs, g) ->
          Diagres_rc.Trc.Exists (List.map (fun (v, r) -> (rn v, r)) rs, formula g)
        | Diagres_rc.Trc.Forall (rs, g) ->
          Diagres_rc.Trc.Forall (List.map (fun (v, r) -> (rn v, r)) rs, formula g)
      in
      let q' =
        { Diagres_rc.Trc.head = List.map term q.Diagres_rc.Trc.head;
          ranges = List.map (fun (v, r) -> (rn v, r)) q.Diagres_rc.Trc.ranges;
          body = formula q.Diagres_rc.Trc.body }
      in
      Diagres.Pattern.same_pattern q q')

let test_pattern_complexity () =
  let c = Diagres.Pattern.complexity (Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q3")) in
  Alcotest.(check int) "3 variables" 3 c.Diagres.Pattern.variables;
  Alcotest.(check int) "negation depth 2" 2 c.Diagres.Pattern.negation_depth

(* ---------------- principles ---------------- *)

let test_principles_q3 () =
  let q3 = Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q3") in
  let v1 = Diagres.Principles.invertibility_rd q3 in
  Alcotest.(check bool) "P1" true v1.Diagres.Principles.holds;
  let chain =
    [ trc "{ s.sid | s in Sailor }";
      Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q1");
      q3 ]
  in
  let v5 = Diagres.Principles.faithfulness_rd chain in
  Alcotest.(check bool) "P5" true v5.Diagres.Principles.holds

let test_principles_beta_ambiguity () =
  let sentence =
    Diagres_rc.Drc_parser.parse_formula
      "exists s, b, d (Reserves(s, b, d) & not (exists n, c (Boat(b, n, c))))"
  in
  let v = Diagres.Principles.unambiguity_beta db sentence in
  (* the verdict reports; both outcomes are legitimate but it must not
     raise *)
  Alcotest.(check bool) "verdict produced" true
    (String.length v.Diagres.Principles.evidence > 0)

let test_principles_correspondence () =
  let a = trc "{ s.sid | s in Sailor : s.rating = 10 }" in
  let b = trc "{ x.sid | x in Sailor : x.rating = 7 }" in
  let v = Diagres.Principles.correspondence_rd a b in
  Alcotest.(check bool) "P3 holds for pattern-equal pair" true
    v.Diagres.Principles.holds

let test_principles_economy () =
  let rd = Diagres_diagrams.Relational_diagram.of_trc (Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q3")) in
  let scene = (List.hd rd.Diagres_diagrams.Relational_diagram.panels).Diagres_diagrams.Relational_diagram.scene in
  let v = Diagres.Principles.economy scene in
  Alcotest.(check bool) "P4" true v.Diagres.Principles.holds

(* ---------------- survey ---------------- *)

let test_survey () =
  Alcotest.(check int) "22 systems" 22 (List.length Diagres.Survey.systems);
  Alcotest.(check int) "16 implemented" 16
    (List.length Diagres.Survey.implemented);
  let table = Diagres.Survey.to_table () in
  Alcotest.(check bool) "table mentions QueryVis" true
    (let n = String.length table in
     let rec go i = i + 8 <= n && (String.sub table i 8 = "QueryVis" || go (i + 1)) in
     go 0)

(* verify the implemented-systems claims E10 checks *)
let test_survey_claims_verified () =
  (* "DFQL is relationally complete": every catalog RA expression renders *)
  List.iter
    (fun e ->
      let d = Diagres_diagrams.Dfql.of_ra (Diagres.Catalog.parsed_ra e) in
      Alcotest.(check bool) (e.Diagres.Catalog.id ^ " dfql") true
        (Diagres_diagrams.Dfql.node_count d > 0))
    Diagres.Catalog.all;
  (* "QueryVis does not support disjunction in one diagram": q4 TRC panel
     count is 2 *)
  let panels =
    Diagres_rc.Translate.drawable_panels schemas
      [ Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q4") ]
  in
  Alcotest.(check bool) "q4 needs >1 panel" true (List.length panels > 1)

let () =
  Alcotest.run "core"
    [
      ( "catalog",
        [ Alcotest.test_case "sample db agreement" `Quick
            test_catalog_sample_db;
          Testutil.qtest prop_catalog_random_dbs ] );
      ( "drinkers",
        [ Alcotest.test_case "ground truth" `Quick test_drinkers_ground_truth;
          Alcotest.test_case "cross language" `Quick
            test_drinkers_cross_language;
          Alcotest.test_case "pipeline" `Quick test_drinkers_pipeline ] );
      ( "languages",
        [ Alcotest.test_case "parse dispatch" `Quick
            test_language_parse_dispatch;
          Alcotest.test_case "parse errors" `Quick test_language_parse_errors;
          Alcotest.test_case "to_ra" `Quick test_to_ra_semantics ] );
      ( "pipeline",
        [ Alcotest.test_case "verify catalog" `Quick
            test_pipeline_verify_all_catalog;
          Alcotest.test_case "all formalisms" `Quick test_pipeline_formalisms;
          Alcotest.test_case "qbe via datalog" `Quick
            test_pipeline_qbe_via_datalog;
          Alcotest.test_case "union panels" `Quick test_pipeline_union_panels;
          Alcotest.test_case "run" `Quick test_pipeline_run ] );
      ( "pattern",
        [ Alcotest.test_case "alpha renaming" `Quick
            test_pattern_alpha_renaming;
          Alcotest.test_case "distinguishes" `Quick test_pattern_distinguishes;
          Alcotest.test_case "constant abstraction" `Quick
            test_pattern_constant_abstraction;
          Testutil.qtest prop_pattern_invariant_under_renaming;
          Alcotest.test_case "complexity" `Quick test_pattern_complexity ] );
      ( "principles",
        [ Alcotest.test_case "q3 P1/P5" `Quick test_principles_q3;
          Alcotest.test_case "beta ambiguity" `Quick
            test_principles_beta_ambiguity;
          Alcotest.test_case "correspondence" `Quick
            test_principles_correspondence;
          Alcotest.test_case "economy" `Quick test_principles_economy ] );
      ( "survey",
        [ Alcotest.test_case "matrix" `Quick test_survey;
          Alcotest.test_case "claims verified" `Quick
            test_survey_claims_verified ] );
    ]
