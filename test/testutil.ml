(** Shared helpers for the test suites: relation equality checks, random
    databases, and a random generator of well-typed RA expressions over the
    sailors schema (the seed of every differential translation test). *)

module D = Diagres_data
module A = Diagres_ra.Ast

let db = D.Sample_db.db
let schemas = D.Sample_db.schemas
let env = Diagres_ra.Typecheck.env_of_database db

(** A very small instance with the sailors schema.  Translation round-trip
    properties that go through the active-domain construction (DRC → RA)
    materialize adomᵏ intermediates, so they must run on a database whose
    active domain is tiny. *)
let tiny_db =
  let i n = D.Value.Int n and s x = D.Value.String x and f x = D.Value.Float x in
  D.Database.of_list
    [ ( "Sailor",
        D.Relation.of_lists D.Sample_db.sailor_schema
          [ [ i 1; s "a"; i 7; f 30.0 ]; [ i 2; s "b"; i 9; f 20.0 ] ] );
      ( "Boat",
        D.Relation.of_lists D.Sample_db.boat_schema
          [ [ i 8; s "x"; s "red" ] ] );
      ( "Reserves",
        D.Relation.of_lists D.Sample_db.reserves_schema
          [ [ i 1; i 8; s "d1" ]; [ i 2; i 8; s "d2" ] ] ) ]

(** Alcotest check: two relations hold the same rows. *)
let check_same_rows msg expected actual =
  if not (D.Relation.same_rows expected actual) then
    Alcotest.failf "%s:\nexpected:\n%s\ngot:\n%s" msg
      (D.Relation.to_string expected)
      (D.Relation.to_string actual)

let sids xs = D.Sample_db.sid_relation xs

let random_dbs n =
  List.init n (fun i ->
      D.Generator.sailors_db ~n_sailors:(4 + (i mod 7)) ~n_boats:(2 + (i mod 4))
        ~n_reserves:(6 + (2 * i mod 20))
        (i * 31 + 7))

(* ------------------------------------------------------------------ *)
(* Random RA expressions (QCheck).                                      *)

(* A random constant matching a column's static type — the strict
   typechecker rejects cross-type comparisons, so generated predicates must
   be type-correct. *)
let typed_const (rand : Random.State.t) (ty : D.Value.ty) : D.Value.t =
  match ty with
  | D.Value.Tint -> D.Value.Int (Random.State.int rand 120)
  | D.Value.Tfloat -> D.Value.Float (float_of_int (Random.State.int rand 60))
  | D.Value.Tstring ->
    let pool = [ "red"; "green"; "blue"; "a"; "b"; "d1" ] in
    D.Value.String (List.nth pool (Random.State.int rand (List.length pool)))
  | D.Value.Tbool -> D.Value.Bool (Random.State.bool rand)
  | D.Value.Tany ->
    if Random.State.bool rand then D.Value.Int (Random.State.int rand 120)
    else D.Value.String "red"

let attr_ty schema a =
  match D.Schema.find_opt a schema with
  | Some at -> at.D.Schema.ty
  | None -> D.Value.Tany

(* Build well-typed expressions bottom-up; at each size, pick an operator
   whose schema requirements we can satisfy. *)
let rec gen_ra (rand : Random.State.t) fuel : A.t =
  let base () =
    match Random.State.int rand 3 with
    | 0 -> A.Rel "Sailor"
    | 1 -> A.Rel "Boat"
    | _ -> A.Rel "Reserves"
  in
  if fuel <= 0 then base ()
  else
    let sub () = gen_ra rand (fuel - 1) in
    let e = sub () in
    let schema = Diagres_ra.Typecheck.infer env e in
    let attrs = D.Schema.names schema in
    let pick_attr () =
      List.nth attrs (Random.State.int rand (List.length attrs))
    in
    match Random.State.int rand 8 with
    | 0 ->
      (* selection with a random comparison against a type-correct constant *)
      let a = pick_attr () in
      let ops = Diagres_logic.Fol.[ Eq; Neq; Lt; Le; Gt; Ge ] in
      let op = List.nth ops (Random.State.int rand 6) in
      let const = A.Const (typed_const rand (attr_ty schema a)) in
      A.Select (A.Cmp (op, A.Attr a, const), e)
    | 1 ->
      (* projection on a random non-empty subset, stable order *)
      let keep = List.filter (fun _ -> Random.State.bool rand) attrs in
      let keep = if keep = [] then [ pick_attr () ] else keep in
      A.Project (List.sort_uniq compare keep, e)
    | 2 ->
      (* rename one attribute to a name fresh in the schema *)
      let a = pick_attr () in
      let rec fresh k =
        let cand = Printf.sprintf "%s_r%d" a k in
        if List.mem cand attrs then fresh (k + 1) else cand
      in
      A.Rename ([ (a, fresh 0) ], e)
    | 3 ->
      (* natural join with a base relation *)
      A.Join (e, base ())
    | 4 ->
      (* set operation with itself (guaranteed compatible) *)
      let a = pick_attr () in
      let e2 =
        A.Select
          ( A.Cmp
              ( Diagres_logic.Fol.Neq, A.Attr a,
                A.Const (typed_const rand (attr_ty schema a)) ),
            e )
      in
      (match Random.State.int rand 3 with
      | 0 -> A.Union (e, e2)
      | 1 -> A.Inter (e, e2)
      | _ -> A.Diff (e, e2))
    | 5 ->
      (* product with a fully renamed-apart base relation *)
      let b = base () in
      let bs = D.Schema.names (Diagres_ra.Typecheck.infer env b) in
      let taken = ref (attrs @ bs) in
      let renames =
        List.map
          (fun n ->
            let rec fresh k =
              let cand = Printf.sprintf "%s_p%d" n k in
              if List.mem cand !taken then fresh (k + 1) else cand
            in
            let f = fresh 0 in
            taken := f :: !taken;
            (n, f))
          bs
      in
      A.Product (e, A.Rename (renames, b))
    | 6 ->
      (* disjunctive selection — exercises panel splitting *)
      let a = pick_attr () in
      let ty = attr_ty schema a in
      A.Select
        ( A.Or
            ( A.Cmp (Diagres_logic.Fol.Eq, A.Attr a, A.Const (typed_const rand ty)),
              A.Cmp (Diagres_logic.Fol.Eq, A.Attr a, A.Const (typed_const rand ty)) ),
          e )
    | _ -> e

let arbitrary_ra ?(fuel = 3) () =
  QCheck.make
    ~print:(fun e -> Diagres_ra.Pretty.ascii e)
    (QCheck.Gen.map
       (fun seed ->
         let rand = Random.State.make [| seed |] in
         gen_ra rand fuel)
       QCheck.Gen.int)

(* ------------------------------------------------------------------ *)
(* Random propositional formulas.                                       *)

let rec gen_prop (rand : Random.State.t) fuel : Diagres_logic.Prop.t =
  let module P = Diagres_logic.Prop in
  if fuel <= 0 then
    match Random.State.int rand 5 with
    | 0 -> P.True
    | 1 -> P.False
    | _ -> P.Var (Printf.sprintf "p%d" (Random.State.int rand 4))
  else
    let sub () = gen_prop rand (fuel - 1) in
    match Random.State.int rand 6 with
    | 0 -> P.Not (sub ())
    | 1 -> P.And (sub (), sub ())
    | 2 -> P.Or (sub (), sub ())
    | 3 -> P.Implies (sub (), sub ())
    | 4 -> P.Iff (sub (), sub ())
    | _ -> gen_prop rand 0

let arbitrary_prop ?(fuel = 4) () =
  QCheck.make
    ~print:Diagres_logic.Prop.to_string
    (QCheck.Gen.map
       (fun seed ->
         let rand = Random.State.make [| seed |] in
         gen_prop rand fuel)
       QCheck.Gen.int)

(* ------------------------------------------------------------------ *)
(* Random Boolean DRC sentences over a small monadic/dyadic vocabulary. *)

let rec gen_fol_sentence (rand : Random.State.t) fuel bound : Diagres_logic.Fol.t =
  let module F = Diagres_logic.Fol in
  let atom () =
    if bound = [] then F.True
    else
      let v () = List.nth bound (Random.State.int rand (List.length bound)) in
      match Random.State.int rand 4 with
      | 0 -> F.Pred ("P", [ F.Var (v ()) ])
      | 1 -> F.Pred ("Q", [ F.Var (v ()) ])
      | 2 -> F.Pred ("R", [ F.Var (v ()) ])
      | _ -> F.Cmp (F.Eq, F.Var (v ()), F.Var (v ()))
  in
  if fuel <= 0 then atom ()
  else
    let sub b = gen_fol_sentence rand (fuel - 1) b in
    match Random.State.int rand 6 with
    | 0 -> F.Not (sub bound)
    | 1 -> F.And (sub bound, sub bound)
    | 2 -> F.Or (sub bound, sub bound)
    | 3 | 4 ->
      let x = Printf.sprintf "v%d" (List.length bound) in
      F.Exists (x, gen_fol_sentence rand (fuel - 1) (x :: bound))
    | _ -> atom ()

let arbitrary_fol_sentence ?(fuel = 4) () =
  QCheck.make
    ~print:Diagres_logic.Fol.to_string
    (QCheck.Gen.map
       (fun seed ->
         let rand = Random.State.make [| seed |] in
         (* start with one quantified variable so atoms exist *)
         let f = gen_fol_sentence rand fuel [ "v0" ] in
         Diagres_logic.Fol.Exists ("v0", f))
       QCheck.Gen.int)

let monadic_db seed =
  D.Generator.monadic_db ~universe:5 ~preds:[ "P"; "Q"; "R" ] seed

let qtest = QCheck_alcotest.to_alcotest
