(* Table-driven diagnostics suite: every row is (name, thunk, expected
   error code, expected message/hint substring).  Covers parse errors from
   all five parsers, name resolution with did-you-mean suggestions,
   cross-type comparisons, safety violations, malformed CSV, and the CLI
   dispatch errors — plus the exit-code contract and the outermost
   catch-all net. *)

module D = Diagres_data
module L = Diagres.Languages
module P = Diagres.Pipeline
module Diag = Diagres_diag.Diag

let db = Testutil.db

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect_diag name code sub f =
  match f () with
  | _ ->
    Alcotest.failf "%s: expected diagnostic %s, but no error was raised" name
      code
  | exception Diag.Error d ->
    Alcotest.(check string) (name ^ ": code") code d.Diag.code;
    let full = String.concat " " (d.Diag.message :: d.Diag.hints) in
    if not (contains full sub) then
      Alcotest.failf "%s: expected %S in message %S" name sub full
  | exception exn ->
    Alcotest.failf "%s: expected %s, got exception %s" name code
      (Printexc.to_string exn)

(* run a query source through parse + eval, the CLI's path *)
let run lang src () = ignore (L.eval db (L.parse lang src))

(* ------------------------------------------------------------------ *)
(* Parse errors, one per parser.                                       *)

let parse_cases =
  [ ("sql parse", L.Sql, "SELECT FROM Sailor s", "E-SQL-PARSE-001");
    ("ra parse", L.Ra, "project[sid](", "E-RA-PARSE-001");
    ("trc parse", L.Trc, "{ s.sid | s in }", "E-TRC-PARSE-001");
    ("drc parse", L.Drc, "{ x | Sailor(x, }", "E-DRC-PARSE-001");
    ("datalog parse", L.Datalog, "q(X) :-", "E-DATALOG-PARSE-001");
    ("datalog empty", L.Datalog, "", "E-DATALOG-PARSE-001") ]

let test_parse_errors () =
  List.iter
    (fun (name, lang, src, code) ->
      expect_diag name code "syntax error" (fun () ->
          ignore (L.parse lang src)))
    parse_cases

(* ------------------------------------------------------------------ *)
(* Resolution, typing, safety: (name, lang, source, code, substring).  *)

let query_cases =
  [ (* SQL name resolution, with suggestions *)
    ( "sql unknown table", L.Sql, "SELECT s.sid FROM Sailors s",
      "E-SQL-RESOLVE-001", "Sailor" );
    ( "sql duplicate alias", L.Sql, "SELECT s.sid FROM Sailor s, Reserves s",
      "E-SQL-RESOLVE-002", "s" );
    ( "sql unknown alias", L.Sql, "SELECT x.sid FROM Sailor s",
      "E-SQL-RESOLVE-003", "x" );
    ( "sql unknown column", L.Sql, "SELECT s.snme FROM Sailor s",
      "E-SQL-RESOLVE-004", "sname" );
    ( "sql unknown bare column", L.Sql, "SELECT snme FROM Sailor s",
      "E-SQL-RESOLVE-005", "sname" );
    ( "sql ambiguous column", L.Sql, "SELECT sid FROM Sailor s, Reserves r",
      "E-SQL-RESOLVE-006", "ambiguous" );
    ( "sql IN arity", L.Sql,
      "SELECT s.sid FROM Sailor s WHERE s.sid IN (SELECT r.sid, r.bid FROM \
       Reserves r)",
      "E-SQL-RESOLVE-007", "" );
    (* cross-type comparisons: =, <, and a join predicate *)
    ( "sql cross-type =", L.Sql,
      "SELECT s.sid FROM Sailor s WHERE s.age = 'old'", "E-SQL-TYPE-001",
      "incompatible" );
    ( "sql cross-type <", L.Sql,
      "SELECT s.sid FROM Sailor s WHERE s.age < 'old'", "E-SQL-TYPE-001",
      "incompatible" );
    ( "sql cross-type join", L.Sql,
      "SELECT s.sid FROM Sailor s, Boat b WHERE s.rating = b.bname",
      "E-SQL-TYPE-001", "incompatible" );
    (* RA *)
    ( "ra unknown relation", L.Ra, "select[color = 'red'](Boats)",
      "E-RA-TYPE-001", "Boat" );
    ("ra unknown attribute", L.Ra, "project[sidd](Sailor)", "E-RA-TYPE-002",
     "sid");
    ( "ra set-op mismatch", L.Ra, "Sailor union Boat", "E-RA-TYPE-005", "" );
    ( "ra cross-type =", L.Ra, "select[age = 'old'](Sailor)", "E-RA-TYPE-008",
      "incompatible" );
    ( "ra cross-type <", L.Ra, "select[age < 'old'](Sailor)", "E-RA-TYPE-008",
      "incompatible" );
    ( "ra cross-type theta join", L.Ra, "Sailor join[rating = bname] Boat",
      "E-RA-TYPE-008", "incompatible" );
    (* TRC *)
    ( "trc unknown relation", L.Trc, "{ s.sid | s in Sailors : true }",
      "E-TRC-TYPE-001", "Sailor" );
    ( "trc redeclared variable", L.Trc,
      "{ s.sid | s in Sailor : exists s in Boat (true) }", "E-TRC-TYPE-002",
      "s" );
    ( "trc unbound variable", L.Trc, "{ x.sid | s in Sailor : true }",
      "E-TRC-TYPE-003", "x" );
    ( "trc unknown attribute", L.Trc, "{ s.sidd | s in Sailor : true }",
      "E-TRC-TYPE-004", "sid" );
    ( "trc cross-type =", L.Trc, "{ s.sid | s in Sailor : s.age = 'old' }",
      "E-TRC-TYPE-005", "incompatible" );
    ( "trc cross-type join", L.Trc,
      "{ s.sid | s in Sailor : exists b in Boat (s.rating = b.bname) }",
      "E-TRC-TYPE-005", "incompatible" );
    (* DRC *)
    ( "drc duplicate head var", L.Drc,
      "{ x, x | exists n, r, a (Sailor(x, n, r, a)) }", "E-DRC-TYPE-001",
      "x" );
    ( "drc head/free mismatch", L.Drc,
      "{ x, y | exists n, r, a (Sailor(x, n, r, a)) }", "E-DRC-TYPE-002",
      "y" );
    ( "drc unknown relation", L.Drc,
      "{ x | exists n, r, a (Sailors(x, n, r, a)) }", "E-DRC-TYPE-003",
      "Sailor" );
    ( "drc arity", L.Drc, "{ x | exists n (Sailor(x, n)) }", "E-DRC-TYPE-004",
      "" );
    (* Datalog *)
    ( "datalog undefined predicate", L.Datalog,
      "q(S) :- Sailr(S, N, R, A).", "E-DLG-CHECK-001", "Sailor" );
    ( "datalog arity", L.Datalog, "q(S) :- Sailor(S, N).", "E-DLG-CHECK-002",
      "" );
    ( "datalog unsafe head", L.Datalog, "q(S, T) :- Sailor(S, N, R, A).",
      "E-DLG-CHECK-003", "T" );
    ( "datalog unsafe negation", L.Datalog,
      "q(S) :- Sailor(S, N, R, A), not Reserves(S, B, Dy).",
      "E-DLG-CHECK-003", "" );
    ( "datalog recursion", L.Datalog,
      "q(S) :- Sailor(S, N, R, A), q(S).", "E-DLG-CHECK-004", "recursion" ) ]

let test_query_errors () =
  List.iter
    (fun (name, lang, src, code, sub) ->
      expect_diag name code sub (run lang src))
    query_cases

(* ------------------------------------------------------------------ *)
(* Data layer: malformed CSV.                                          *)

let test_csv_errors () =
  expect_diag "csv empty" "E-CSV-001" "empty" (fun () ->
      ignore (D.Csv.relation_of_string ~name:"t.csv" ""));
  expect_diag "csv ragged row" "E-CSV-002" "2 fields" (fun () ->
      ignore
        (D.Csv.relation_of_string ~name:"t.csv"
           "sid:int,sname:string,rating:int,age:float\n1,a,7,30.0\n2,b\n"));
  expect_diag "csv unterminated quote" "E-CSV-003" "quote" (fun () ->
      ignore
        (D.Csv.relation_of_string ~name:"t.csv" "a:string,b:string\n1,\"x\n"))

(* ------------------------------------------------------------------ *)
(* CLI dispatch.                                                       *)

let test_cli_errors () =
  expect_diag "unknown language" "E-CLI-LANG-001" "sql" (fun () ->
      ignore (L.of_name "sq"));
  expect_diag "unknown formalism" "E-CLI-FORMALISM-001" "queryvis" (fun () ->
      ignore (P.formalism_of_name "querivis"));
  expect_diag "translate to datalog" "E-CLI-TARGET-001" "can only translate"
    (fun () ->
      ignore
        (P.translate_text db
           (L.parse L.Sql "SELECT s.sid FROM Sailor s")
           L.Datalog))

(* ------------------------------------------------------------------ *)
(* Exit-code contract and the catch-all net.                           *)

let test_exit_codes () =
  let check phase n =
    Alcotest.(check int)
      (Diag.phase_name phase ^ " exit code")
      n
      (Diag.exit_code (Diag.make ~code:"E-TEST" ~phase "x"))
  in
  check Diag.Resolve 1;
  check Diag.Parse 2;
  check Diag.Type 3;
  check Diag.Safety 3;
  check Diag.Data 4;
  check Diag.Eval 5;
  check Diag.Internal 70

let test_capture_all () =
  (match Diagres.Errors.capture_all (fun () -> raise Not_found) with
  | Ok _ -> Alcotest.fail "capture_all let an exception through"
  | Error d ->
    Alcotest.(check string) "internal code" "E-INTERNAL-001" d.Diag.code;
    Alcotest.(check int) "internal exit" 70 (Diag.exit_code d));
  match Diagres.Errors.capture_all (fun () -> 42) with
  | Ok n -> Alcotest.(check int) "passthrough" 42 n
  | Error _ -> Alcotest.fail "capture_all failed a successful thunk"

let test_suggestions () =
  Alcotest.(check (option string))
    "suggest Sailor"
    (Some "Sailor")
    (Diag.suggest ~candidates:[ "Sailor"; "Boat"; "Reserves" ] "Sailors");
  Alcotest.(check (option string))
    "no wild suggestion" None
    (Diag.suggest ~candidates:[ "Sailor"; "Boat"; "Reserves" ] "zzzzz")

(* rendered diagnostics carry a caret excerpt when source is attached *)
let test_render_caret () =
  let src = "SELECT s.sid FROM Sailors s" in
  match Diagres.Errors.capture (fun () -> run L.Sql src ()) with
  | Ok _ -> Alcotest.fail "expected a diagnostic"
  | Error d ->
    let d = Diag.with_source ~src_name:"<query>" ~text:src d in
    let text = Diag.render d in
    List.iter
      (fun frag ->
        if not (contains text frag) then
          Alcotest.failf "rendered diagnostic missing %S:\n%s" frag text)
      [ "E-SQL-RESOLVE-001"; "-->"; "Sailors"; "^"; "help:" ]

let () =
  Alcotest.run "errors"
    [ ( "diagnostics",
        [ Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "resolve/type/safety errors" `Quick
            test_query_errors;
          Alcotest.test_case "csv errors" `Quick test_csv_errors;
          Alcotest.test_case "cli errors" `Quick test_cli_errors ] );
      ( "contract",
        [ Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "catch-all net" `Quick test_capture_all;
          Alcotest.test_case "suggestions" `Quick test_suggestions;
          Alcotest.test_case "caret rendering" `Quick test_render_caret ] ) ]
