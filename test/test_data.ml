(* Unit and property tests for the relational substrate. *)

module D = Diagres_data
module V = D.Value

let v_int n = V.Int n
let v_str s = V.String s

(* ---------------- Value ---------------- *)

let test_value_compare () =
  Alcotest.(check bool) "int eq" true (V.equal (V.Int 3) (V.Int 3));
  Alcotest.(check bool) "int/float eq" true (V.equal (V.Int 2) (V.Float 2.));
  Alcotest.(check bool) "int lt" true (V.lt (V.Int 1) (V.Int 2));
  Alcotest.(check bool) "string order" true (V.lt (v_str "a") (v_str "b"));
  Alcotest.(check bool) "null never equal" false (V.eq V.Null V.Null);
  Alcotest.(check bool) "null never lt" false (V.lt V.Null (V.Int 1));
  Alcotest.(check bool) "neq null" false (V.neq V.Null (V.Int 1))

let test_value_parse () =
  Alcotest.(check bool) "int" true (V.of_string "42" = V.Int 42);
  Alcotest.(check bool) "float" true (V.of_string "4.5" = V.Float 4.5);
  Alcotest.(check bool) "bool" true (V.of_string "true" = V.Bool true);
  Alcotest.(check bool) "string" true (V.of_string "red" = V.String "red");
  Alcotest.(check bool) "null" true (V.of_string "" = V.Null);
  Alcotest.(check bool) "NULL kw" true (V.of_string "NULL" = V.Null)

let test_value_arith () =
  Alcotest.(check bool) "add" true (V.add (V.Int 2) (V.Int 3) = Some (V.Int 5));
  Alcotest.(check bool) "promote" true
    (V.add (V.Int 2) (V.Float 0.5) = Some (V.Float 2.5));
  Alcotest.(check bool) "div0" true (V.div (V.Int 2) (V.Int 0) = None);
  Alcotest.(check bool) "string add" true (V.add (v_str "a") (V.Int 1) = None)

let test_value_literal () =
  Alcotest.(check string) "string quoted" "'red'" (V.to_literal (v_str "red"));
  Alcotest.(check string) "quote escaped" "'O''Neil'"
    (V.to_literal (v_str "O'Neil"));
  Alcotest.(check string) "int plain" "7" (V.to_literal (V.Int 7))

let test_ty_join () =
  Alcotest.(check bool) "int join float" true (V.ty_join V.Tint V.Tfloat = V.Tfloat);
  Alcotest.(check bool) "int join string" true (V.ty_join V.Tint V.Tstring = V.Tany);
  Alcotest.(check bool) "compat any" true (V.ty_compatible V.Tany V.Tstring)

let prop_value_compare_total =
  QCheck.Test.make ~name:"Value.compare is antisymmetric across types"
    ~count:200
    QCheck.(triple small_int small_int small_int)
    (fun (a, b, c) ->
      let va = V.Int a and vb = V.Float (float_of_int b) and vc = V.String (string_of_int c) in
      let antisym x y = compare (V.compare x y) 0 = -compare (V.compare y x) 0 in
      antisym va vb && antisym vb vc && antisym va vc)

(* ---------------- Schema ---------------- *)

let s1 = D.Schema.make [ ("a", V.Tint); ("b", V.Tstring) ]

let test_schema_basics () =
  Alcotest.(check int) "arity" 2 (D.Schema.arity s1);
  Alcotest.(check int) "index" 1 (D.Schema.index "b" s1);
  Alcotest.(check bool) "mem" true (D.Schema.mem "a" s1);
  Alcotest.check_raises "unknown attr"
    (D.Schema.Schema_error "unknown attribute \"z\" (schema: a, b)")
    (fun () -> ignore (D.Schema.index "z" s1))

let test_schema_rename () =
  let s = D.Schema.rename "a" "c" s1 in
  Alcotest.(check bool) "renamed" true (D.Schema.mem "c" s);
  Alcotest.check_raises "rename to existing"
    (D.Schema.Schema_error "rename target \"b\" already exists") (fun () ->
      ignore (D.Schema.rename "a" "b" s1))

let test_schema_concat () =
  let s2 = D.Schema.make [ ("c", V.Tint) ] in
  Alcotest.(check int) "concat" 3 (D.Schema.arity (D.Schema.concat_disjoint s1 s2));
  Alcotest.check_raises "clash"
    (D.Schema.Schema_error "attribute \"a\" occurs on both sides of a product")
    (fun () -> ignore (D.Schema.concat_disjoint s1 s1))

let test_schema_project () =
  let p = D.Schema.project [ "b" ] s1 in
  Alcotest.(check int) "projected" 1 (D.Schema.arity p);
  Alcotest.(check int) "empty projection ok" 0 (D.Schema.arity (D.Schema.project [] s1))

(* ---------------- Relation ---------------- *)

let rel rows = D.Relation.of_lists s1 rows

let r_abc =
  rel [ [ v_int 1; v_str "x" ]; [ v_int 2; v_str "y" ]; [ v_int 3; v_str "x" ] ]

let test_relation_set_semantics () =
  let r = rel [ [ v_int 1; v_str "x" ]; [ v_int 1; v_str "x" ] ] in
  Alcotest.(check int) "dupes collapse" 1 (D.Relation.cardinality r)

let test_relation_ops () =
  let r2 = rel [ [ v_int 2; v_str "y" ] ] in
  Alcotest.(check int) "union" 3 (D.Relation.cardinality (D.Relation.union r_abc r2));
  Alcotest.(check int) "inter" 1 (D.Relation.cardinality (D.Relation.inter r_abc r2));
  Alcotest.(check int) "diff" 2 (D.Relation.cardinality (D.Relation.diff r_abc r2));
  Alcotest.(check int) "project" 2
    (D.Relation.cardinality (D.Relation.project [ "b" ] r_abc))

let test_relation_product_join () =
  let s2 = D.Schema.make [ ("c", V.Tint) ] in
  let r2 = D.Relation.of_lists s2 [ [ v_int 10 ]; [ v_int 20 ] ] in
  Alcotest.(check int) "product" 6
    (D.Relation.cardinality (D.Relation.product r_abc r2));
  let s3 = D.Schema.make [ ("a", V.Tint); ("c", V.Tstring) ] in
  let r3 =
    D.Relation.of_lists s3
      [ [ v_int 1; v_str "p" ]; [ v_int 1; v_str "q" ]; [ v_int 9; v_str "r" ] ]
  in
  let j = D.Relation.natural_join r_abc r3 in
  Alcotest.(check int) "join rows" 2 (D.Relation.cardinality j);
  Alcotest.(check int) "join arity" 3 (D.Schema.arity (D.Relation.schema j))

let test_relation_division () =
  let dividend = D.Relation.project [ "sid"; "bid" ] D.Sample_db.reserves in
  let divisor =
    D.Relation.project [ "bid" ]
      (D.Relation.filter
         (fun t ->
           V.eq (D.Tuple.field D.Sample_db.boat_schema "color" t) (v_str "red"))
         D.Sample_db.boats)
  in
  let q = D.Relation.division dividend divisor in
  Testutil.check_same_rows "division" (Testutil.sids [ 22; 31 ]) q

let test_relation_division_empty_divisor () =
  let dividend = D.Relation.project [ "sid"; "bid" ] D.Sample_db.reserves in
  let divisor = D.Relation.empty (D.Schema.make [ ("bid", V.Tint) ]) in
  let q = D.Relation.division dividend divisor in
  Alcotest.(check int) "x / empty = all candidates" 5 (D.Relation.cardinality q)

let test_active_domain () =
  Alcotest.(check int) "distinct values" 5
    (List.length (D.Relation.active_domain r_abc))

let test_same_rows_ignores_names () =
  let other_schema = D.Schema.make [ ("x", V.Tint); ("y", V.Tstring) ] in
  let r2 = D.Relation.of_tuples other_schema (D.Relation.tuples r_abc) in
  Alcotest.(check bool) "same rows" true (D.Relation.same_rows r_abc r2)

let prop_set_ops_commute =
  QCheck.Test.make ~name:"union and inter commute" ~count:50
    QCheck.(pair small_int small_int)
    (fun (sa, sb) ->
      let mk seed =
        D.Database.find "Reserves" (D.Generator.sailors_db ~n_reserves:10 seed)
      in
      let a = mk sa and b = mk sb in
      D.Relation.same_rows (D.Relation.union a b) (D.Relation.union b a)
      && D.Relation.same_rows (D.Relation.inter a b) (D.Relation.inter b a))

let prop_division_definition =
  QCheck.Test.make
    ~name:"division agrees with its π/×/− definition" ~count:40
    QCheck.small_int
    (fun seed ->
      let db = D.Generator.sailors_db ~n_reserves:20 seed in
      let reserves = D.Database.find "Reserves" db in
      let boats = D.Database.find "Boat" db in
      let dividend = D.Relation.project [ "sid"; "bid" ] reserves in
      let divisor = D.Relation.project [ "bid" ] boats in
      let direct = D.Relation.division dividend divisor in
      let candidates = D.Relation.project [ "sid" ] dividend in
      let all = D.Relation.project [ "sid"; "bid" ] (D.Relation.product candidates divisor) in
      let missing = D.Relation.diff all dividend in
      let defined = D.Relation.diff candidates (D.Relation.project [ "sid" ] missing) in
      D.Relation.same_rows direct defined)

(* ---------------- secondary indexes ---------------- *)

let test_matching_basics () =
  let r = D.Sample_db.reserves in
  (* empty position list = all tuples *)
  Alcotest.(check int) "no positions = full scan"
    (D.Relation.cardinality r)
    (List.length (D.Relation.matching r [] [||]));
  (* miss key = no tuples *)
  Alcotest.(check int) "miss" 0
    (List.length (D.Relation.matching r [ 0 ] [| v_int 424242 |]))

let test_matching_after_rename () =
  (* rename shares the index cache (indexes are position-based); probes must
     agree before and after *)
  let r = D.Sample_db.reserves in
  let probe rel = List.length (D.Relation.matching rel [ 0 ] [| v_int 22 |]) in
  let before = probe r in
  Alcotest.(check bool) "sailor 22 reserved something" true (before > 0);
  Alcotest.(check int) "same probe after rename" before
    (probe (D.Relation.rename "day" "d" r))

let prop_matching_equals_filter =
  QCheck.Test.make ~name:"matching = filter on the key positions" ~count:50
    QCheck.small_int
    (fun seed ->
      let r =
        D.Database.find "Reserves" (D.Generator.sailors_db ~n_reserves:25 seed)
      in
      let tuples = D.Relation.tuples r in
      let miss = [| v_int 424242; v_int 424242 |] in
      let keys =
        miss :: List.map (fun t -> [| D.Tuple.get t 0; D.Tuple.get t 1 |]) tuples
      in
      List.for_all
        (fun (key : V.t array) ->
          let expected =
            List.filter
              (fun t ->
                V.eq (D.Tuple.get t 0) key.(0) && V.eq (D.Tuple.get t 1) key.(1))
              tuples
          in
          List.sort D.Tuple.compare (D.Relation.matching r [ 0; 1 ] key)
          = List.sort D.Tuple.compare expected)
        keys)

let prop_join_equals_nested_loop =
  QCheck.Test.make ~name:"indexed natural join = nested-loop reference"
    ~count:40 QCheck.small_int
    (fun seed ->
      let db = D.Generator.sailors_db ~n_reserves:20 seed in
      let sailors = D.Database.find "Sailor" db in
      let reserves = D.Database.find "Reserves" db in
      let j = D.Relation.natural_join sailors reserves in
      (* reference: quadratic loop on the shared column (sid, position 0 in
         both schemas), appending reserves' remaining columns *)
      let expected =
        List.concat_map
          (fun ts ->
            List.filter_map
              (fun tr ->
                if V.eq (D.Tuple.get ts 0) (D.Tuple.get tr 0) then
                  Some
                    (Array.append ts [| D.Tuple.get tr 1; D.Tuple.get tr 2 |])
                else None)
              (D.Relation.tuples reserves))
          (D.Relation.tuples sailors)
      in
      D.Relation.same_rows j
        (D.Relation.of_tuples (D.Relation.schema j) expected))

(* ---------------- statistics ---------------- *)

let test_stats_basics () =
  let r = D.Sample_db.sailors in
  let s = D.Relation.stats r in
  Alcotest.(check int) "rows" (D.Relation.cardinality r) s.D.Stats.rows;
  let distinct_at i =
    List.length
      (List.sort_uniq V.compare
         (List.map (fun t -> D.Tuple.get t i) (D.Relation.tuples r)))
  in
  Array.iteri
    (fun i d ->
      Alcotest.(check int) (Printf.sprintf "distinct col %d" i) (distinct_at i) d)
    s.D.Stats.distinct

let test_stats_cached_and_shared () =
  let r = D.Sample_db.boats in
  let s1 = D.Relation.stats r in
  Alcotest.(check bool) "second call hits the cache" true
    (s1 == D.Relation.stats r);
  (* statistics are positional, so renamed views share the slot, exactly
     like the secondary-index cache *)
  Alcotest.(check bool) "rename shares stats" true
    (s1 == D.Relation.stats (D.Relation.rename "color" "paint" r))

let test_stats_distinct_clamped () =
  let empty = D.Relation.empty D.Sample_db.sailor_schema in
  let s = D.Relation.stats empty in
  Alcotest.(check int) "rows 0" 0 s.D.Stats.rows;
  Alcotest.(check int) "raw distinct 0" 0 s.D.Stats.distinct.(0);
  Alcotest.(check int) "clamped distinct 1" 1 (D.Stats.distinct_col s 0)

(* ---------------- stamps ---------------- *)

let test_relation_stamps () =
  let r = D.Sample_db.boats in
  Alcotest.(check int) "stamp is stable" (D.Relation.stamp r)
    (D.Relation.stamp r);
  (* a rebuilt relation is a distinct tuple set, even from the same rows *)
  let rebuilt = D.Relation.of_tuples (D.Relation.schema r) (D.Relation.tuples r) in
  Alcotest.(check bool) "rebuild gets a fresh stamp" true
    (D.Relation.stamp rebuilt <> D.Relation.stamp r);
  (* rename shares the physical tuple set (and its positional caches), so
     it keeps the stamp *)
  Alcotest.(check int) "rename keeps the stamp" (D.Relation.stamp r)
    (D.Relation.stamp (D.Relation.rename "color" "paint" r))

let test_database_stamp () =
  let s = D.Database.stamp D.Sample_db.db in
  Alcotest.(check int) "deterministic" s (D.Database.stamp D.Sample_db.db);
  (* rebinding a name to a rebuilt relation changes the stamp *)
  let swap name f =
    D.Database.of_list
      (List.map
         (fun (n, r) -> if n = name then (n, f r) else (n, r))
         (D.Database.relations D.Sample_db.db))
  in
  let rebuilt =
    swap "Boat" (fun r ->
        D.Relation.of_tuples (D.Relation.schema r) (D.Relation.tuples r))
  in
  Alcotest.(check bool) "rebuilt relation changes it" true
    (D.Database.stamp rebuilt <> s);
  (* a renamed attribute shares the tuple set but not the visible schema:
     the stamp must still change (plan reuse would be unsound) *)
  let renamed = swap "Boat" (D.Relation.rename "color" "paint") in
  Alcotest.(check bool) "renamed attribute changes it" true
    (D.Database.stamp renamed <> s)

(* ---------------- CSV ---------------- *)

let test_csv_roundtrip () =
  let text = D.Csv.relation_to_string D.Sample_db.sailors in
  let back = D.Csv.relation_of_string text in
  Alcotest.(check bool) "roundtrip" true
    (D.Relation.same_rows D.Sample_db.sailors back)

let test_csv_quoting () =
  let s = D.Schema.make [ ("a", V.Tstring) ] in
  let r = D.Relation.of_lists s [ [ v_str "x,\"y\"" ] ] in
  let back = D.Csv.relation_of_string (D.Csv.relation_to_string r) in
  Alcotest.(check bool) "quoted field survives" true (D.Relation.same_rows r back)

let test_csv_database_roundtrip () =
  let dir = Filename.temp_file "diagres" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      D.Csv.save_database dir D.Sample_db.db;
      let back = D.Csv.load_database dir in
      Alcotest.(check (list string)) "relation names"
        (D.Database.relation_names D.Sample_db.db)
        (D.Database.relation_names back);
      List.iter
        (fun (name, rel) ->
          Alcotest.(check bool) ("rows of " ^ name) true
            (D.Relation.same_rows rel (D.Database.find name back)))
        (D.Database.relations D.Sample_db.db))

let test_csv_errors () =
  Alcotest.check_raises "unterminated quote"
    (D.Csv.Csv_error "unterminated quote: a,\"b") (fun () ->
      ignore (D.Csv.parse_string "a,\"b"))

(* ---------------- Database / Generator ---------------- *)

let test_database () =
  Alcotest.(check int) "3 relations" 3
    (List.length (D.Database.relation_names D.Sample_db.db));
  Alcotest.(check int) "tuples" 25 (D.Database.total_tuples D.Sample_db.db);
  Alcotest.check_raises "unknown" (D.Database.Unknown_relation "Nope")
    (fun () -> ignore (D.Database.find "Nope" D.Sample_db.db))

let test_generator_deterministic () =
  let a = D.Generator.sailors_db 42 and b = D.Generator.sailors_db 42 in
  List.iter2
    (fun (n1, r1) (n2, r2) ->
      Alcotest.(check string) "name" n1 n2;
      Alcotest.(check bool) ("rel " ^ n1) true (D.Relation.same_rows r1 r2))
    (D.Database.relations a) (D.Database.relations b)

let test_generator_sizes () =
  let db = D.Generator.sailors_db ~n_sailors:30 ~n_boats:5 ~n_reserves:10 1 in
  Alcotest.(check int) "sailors" 30
    (D.Relation.cardinality (D.Database.find "Sailor" db));
  Alcotest.(check int) "boats" 5
    (D.Relation.cardinality (D.Database.find "Boat" db))

let () =
  Alcotest.run "data"
    [
      ( "value",
        [ Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "parse" `Quick test_value_parse;
          Alcotest.test_case "arith" `Quick test_value_arith;
          Alcotest.test_case "literal" `Quick test_value_literal;
          Alcotest.test_case "ty_join" `Quick test_ty_join;
          Testutil.qtest prop_value_compare_total ] );
      ( "schema",
        [ Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "rename" `Quick test_schema_rename;
          Alcotest.test_case "concat" `Quick test_schema_concat;
          Alcotest.test_case "project" `Quick test_schema_project ] );
      ( "relation",
        [ Alcotest.test_case "set semantics" `Quick test_relation_set_semantics;
          Alcotest.test_case "set ops" `Quick test_relation_ops;
          Alcotest.test_case "product/join" `Quick test_relation_product_join;
          Alcotest.test_case "division" `Quick test_relation_division;
          Alcotest.test_case "division empty divisor" `Quick
            test_relation_division_empty_divisor;
          Alcotest.test_case "active domain" `Quick test_active_domain;
          Alcotest.test_case "same_rows" `Quick test_same_rows_ignores_names;
          Testutil.qtest prop_set_ops_commute;
          Testutil.qtest prop_division_definition ] );
      ( "index",
        [ Alcotest.test_case "matching basics" `Quick test_matching_basics;
          Alcotest.test_case "matching after rename" `Quick
            test_matching_after_rename;
          Testutil.qtest prop_matching_equals_filter;
          Testutil.qtest prop_join_equals_nested_loop ] );
      ( "stats",
        [ Alcotest.test_case "rows and distinct" `Quick test_stats_basics;
          Alcotest.test_case "cached and rename-shared" `Quick
            test_stats_cached_and_shared;
          Alcotest.test_case "empty relation clamped" `Quick
            test_stats_distinct_clamped ] );
      ( "stamps",
        [ Alcotest.test_case "relation" `Quick test_relation_stamps;
          Alcotest.test_case "database" `Quick test_database_stamp ] );
      ( "csv",
        [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "database roundtrip" `Quick
            test_csv_database_roundtrip;
          Alcotest.test_case "errors" `Quick test_csv_errors ] );
      ( "database",
        [ Alcotest.test_case "catalog" `Quick test_database;
          Alcotest.test_case "generator deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "generator sizes" `Quick test_generator_sizes ] );
    ]
