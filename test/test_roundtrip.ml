(* Cross-language roundtrip fuzz harness.

   Two properties, checked on the catalog queries and on a seeded stream of
   randomly generated well-typed queries (>= 500 by default; override with
   DIAGRES_FUZZ_N):

   1. print -> parse identity: [Languages.to_string] output re-parses under
      the same language's parser to a structurally equal AST, for all five
      languages.
   2. translate -> evaluate equivalence: [Pipeline.translate_text] output
      re-parses under the *target* language's parser and evaluates to the
      same relation as the naive RA evaluation of the source query. *)

module D = Diagres_data
module L = Diagres.Languages
module P = Diagres.Pipeline
module Q = Diagres.Qgen
module Diag = Diagres_diag.Diag

let schemas = Testutil.schemas
let tiny_db = Testutil.tiny_db

let fuzz_n =
  match Sys.getenv_opt "DIAGRES_FUZZ_N" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 500)
  | None -> 500

let state () = Random.State.make [| 0x5eed; 2024 |]

(* ------------------------------------------------------------------ *)
(* Property 1: print -> parse identity.                                *)

let roundtrip_ast tag i (q : L.query) =
  let lang = L.lang_of q in
  let text = L.to_string q in
  match L.parse lang text with
  | q' ->
    if q' <> q then
      Alcotest.failf "%s #%d: %s print->parse changed the AST:\n%s" tag i
        (L.name lang) text
  | exception exn ->
    Alcotest.failf "%s #%d: %s output does not re-parse (%s):\n%s" tag i
      (L.name lang) (Printexc.to_string exn) text

let test_identity_fuzz () =
  let st = state () in
  for i = 1 to fuzz_n do
    roundtrip_ast "trc" i (L.Q_trc (Q.gen_trc st schemas));
    roundtrip_ast "drc" i (L.Q_drc (Q.gen_drc st schemas));
    roundtrip_ast "sql" i (L.Q_sql (Q.gen_sql st schemas));
    roundtrip_ast "ra" i (L.Q_ra (Q.gen_ra st schemas 3));
    roundtrip_ast "datalog" i (L.Q_datalog (Q.gen_datalog st schemas, "q"))
  done

(* ------------------------------------------------------------------ *)
(* Property 2: translate -> evaluate equivalence.                      *)

(* The reference answer is the *naive* RA evaluator on the RA form of the
   source query (not the planner, not the translated text). *)
let reference db q =
  let schemas =
    List.map (fun (n, r) -> (n, D.Relation.schema r)) (D.Database.relations db)
  in
  Diagres_ra.Eval.eval db (L.to_ra schemas q)

let translate_equiv ?(targets = [ L.Sql; L.Ra; L.Trc; L.Drc ]) tag i db
    (q : L.query) =
  let expected = reference db q in
  (* the source query itself must agree with the reference *)
  if not (D.Relation.same_rows expected (L.eval db q)) then
    Alcotest.failf "%s #%d: source eval disagrees with naive RA:\n%s" tag i
      (L.to_string q);
  List.iter
    (fun target ->
      let text =
        try P.translate_text db q target
        with exn ->
          Alcotest.failf "%s #%d: translate to %s raised %s:\n%s" tag i
            (L.name target) (Printexc.to_string exn) (L.to_string q)
      in
      let q' =
        try L.parse target text
        with exn ->
          Alcotest.failf
            "%s #%d: translation to %s does not re-parse (%s):\n%s\n\
             -- source:\n%s"
            tag i (L.name target) (Printexc.to_string exn) text
            (L.to_string q)
      in
      let got =
        try L.eval db q'
        with exn ->
          Alcotest.failf "%s #%d: translated %s query fails to eval (%s):\n%s"
            tag i (L.name target) (Printexc.to_string exn) text
      in
      if not (D.Relation.same_rows expected got) then
        Alcotest.failf
          "%s #%d: translation to %s changed the answer:\n%s\n-- source:\n%s\n\
           expected:\n%s\ngot:\n%s"
          tag i (L.name target) text (L.to_string q)
          (D.Relation.to_string expected)
          (D.Relation.to_string got))
    targets

let test_translate_sql_fuzz () =
  let st = state () in
  for i = 1 to fuzz_n do
    translate_equiv "sql" i tiny_db (L.Q_sql (Q.gen_sql st schemas))
  done

(* Calculus-source equivalence goes through the active-domain construction
   on both sides (reference and every target), which is adom^k in the
   number of column variables, so these two loops run a tenth of [fuzz_n]
   (and the DRC shapes are kept shallow).  The >= [fuzz_n] bar of the
   acceptance criteria applies to SQL sources above; full-depth TRC/DRC are
   still print->parse fuzzed at [fuzz_n] in the identity test. *)
let calculus_fuzz_n = max 1 (fuzz_n / 10)

let test_translate_trc_fuzz () =
  let st = state () in
  for i = 1 to calculus_fuzz_n do
    translate_equiv "trc" i tiny_db (L.Q_trc (Q.gen_trc st schemas))
  done

let test_translate_drc_fuzz () =
  let st = state () in
  for i = 1 to calculus_fuzz_n do
    translate_equiv "drc" i tiny_db
      (L.Q_drc (Q.gen_drc ~max_ranges:1 ~depth:1 st schemas))
  done

let test_translate_ra_fuzz () =
  let st = state () in
  let skipped = ref 0 in
  for i = 1 to fuzz_n do
    let e = Q.gen_ra st schemas 3 in
    (* RA shapes with set operators buried under other operators have no
       single-panel TRC form; that is a documented E-XLATE diagnostic, not
       a roundtrip bug, so those inputs are skipped (and counted). *)
    match translate_equiv "ra" i tiny_db (L.Q_ra e) with
    | () -> ()
    | exception Diag.Error d
      when String.length d.Diag.code >= 7
           && String.sub d.Diag.code 0 7 = "E-XLATE" ->
      incr skipped
  done;
  if !skipped > fuzz_n * 5 / 10 then
    Alcotest.failf "too many RA queries skipped as untranslatable: %d/%d"
      !skipped fuzz_n

(* ------------------------------------------------------------------ *)
(* Catalog regressions: q1-q5 in all five languages.                   *)

let catalog_langs =
  [ ("sql", L.Sql); ("ra", L.Ra); ("trc", L.Trc); ("drc", L.Drc);
    ("datalog", L.Datalog) ]

let catalog_src (e : Diagres.Catalog.entry) = function
  | L.Sql -> e.Diagres.Catalog.sql
  | L.Ra -> e.Diagres.Catalog.ra
  | L.Trc -> e.Diagres.Catalog.trc
  | L.Drc -> e.Diagres.Catalog.drc
  | L.Datalog -> e.Diagres.Catalog.datalog

let test_catalog_identity () =
  List.iter
    (fun (e : Diagres.Catalog.entry) ->
      List.iter
        (fun (lname, lang) ->
          let q = L.parse lang (catalog_src e lang) in
          roundtrip_ast (e.Diagres.Catalog.id ^ "/" ^ lname) 0 q)
        catalog_langs)
    Diagres.Catalog.all

(* Translation equivalence runs on the tiny instance: queries whose
   translation goes through the active-domain construction (DRC → RA)
   materialize adom^k intermediates, so the active domain must be small
   (see {!Testutil.tiny_db}).  Per-language agreement on the full sample
   database is covered by the catalog tests in test_core. *)
let test_catalog_translate () =
  List.iter
    (fun (e : Diagres.Catalog.entry) ->
      List.iter
        (fun (lname, lang) ->
          (* q3 (division) from the calculus side needs the unrestricted
             active-domain expansion: every variable ranges over every
             attribute, and the nested double negation multiplies those
             branches into an intractable panel union.  SQL/RA/TRC sources
             of q3 translate fine; the DRC/Datalog sources are out of the
             range-restricted fragment the translator handles in practice. *)
          if
            not
              (e.Diagres.Catalog.id = "q3"
              && (lang = L.Drc || lang = L.Datalog))
          then
            let q = L.parse lang (catalog_src e lang) in
            translate_equiv
              (e.Diagres.Catalog.id ^ "/" ^ lname)
              0 tiny_db q)
        catalog_langs)
    Diagres.Catalog.all

let () =
  Alcotest.run "roundtrip"
    [ ( "catalog",
        [ Alcotest.test_case "print->parse identity, 5 langs" `Quick
            test_catalog_identity;
          Alcotest.test_case "translate->eval equivalence, 5 langs" `Quick
            test_catalog_translate ] );
      ( "fuzz",
        [ Alcotest.test_case "print->parse identity" `Quick test_identity_fuzz;
          Alcotest.test_case "sql translate->eval" `Quick
            test_translate_sql_fuzz;
          Alcotest.test_case "trc translate->eval" `Quick
            test_translate_trc_fuzz;
          Alcotest.test_case "drc translate->eval" `Quick
            test_translate_drc_fuzz;
          Alcotest.test_case "ra translate->eval" `Quick test_translate_ra_fuzz
        ] ) ]
