(* Tests for the relational algebra: parser, typechecker, evaluator,
   optimizer. *)

module A = Diagres_ra.Ast
module D = Diagres_data

let db = Testutil.db
let env = Testutil.env
let parse = Diagres_ra.Parser.parse
let eval src = Diagres_ra.Eval.eval db (parse src)

(* ---------------- parser ---------------- *)

let test_parse_basics () =
  (match parse "Sailor" with
  | A.Rel "Sailor" -> ()
  | _ -> Alcotest.fail "rel");
  (match parse "project[sid](Sailor)" with
  | A.Project ([ "sid" ], A.Rel "Sailor") -> ()
  | _ -> Alcotest.fail "project");
  (match parse "sigma[rating >= 8](Sailor)" with
  | A.Select (A.Cmp (Diagres_logic.Fol.Ge, A.Attr "rating", A.Const (D.Value.Int 8)), _) -> ()
  | _ -> Alcotest.fail "sigma alias")

let test_parse_precedence () =
  (* union binds looser than join *)
  match parse "Sailor union Boat join Reserves" with
  | A.Union (A.Rel "Sailor", A.Join (A.Rel "Boat", A.Rel "Reserves")) -> ()
  | e -> Alcotest.failf "precedence: %s" (Diagres_ra.Pretty.ascii e)

let test_parse_errors () =
  let fails s =
    match parse s with
    | exception Diagres_ra.Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "should not parse: %s" s
  in
  fails "select[rating >](Sailor)";
  fails "Sailor join";
  fails "project[sid](Sailor) trailing"

let prop_parse_print_roundtrip =
  QCheck.Test.make ~name:"RA: parse ∘ ascii = id" ~count:200
    (Testutil.arbitrary_ra ())
    (fun e -> parse (Diagres_ra.Pretty.ascii e) = e)

(* ---------------- typecheck ---------------- *)

let test_typecheck_infer () =
  let s = Diagres_ra.Typecheck.infer env (parse "project[sid](Sailor)") in
  Alcotest.(check (list string)) "schema" [ "sid" ] (D.Schema.names s);
  let j = Diagres_ra.Typecheck.infer env (parse "Sailor join Reserves") in
  Alcotest.(check int) "join arity" 6 (D.Schema.arity j)

let test_typecheck_errors () =
  let fails s =
    match Diagres_ra.Typecheck.infer env (parse s) with
    | exception Diagres_ra.Typecheck.Type_error _ -> ()
    | _ -> Alcotest.failf "should not typecheck: %s" s
  in
  fails "Nowhere";
  fails "project[zzz](Sailor)";
  fails "select[zzz = 1](Sailor)";
  fails "Sailor * Sailor";
  fails "Sailor union Boat";
  fails "rename[sid -> sname](Sailor)";
  fails "Boat div project[sid](Sailor)"

(* ---------------- eval ---------------- *)

let test_eval_select_project () =
  Testutil.check_same_rows "high rated"
    (Testutil.sids [ 58; 71 ])
    (eval "project[sid](select[rating = 10](Sailor))")

let test_eval_join_q1 () =
  Testutil.check_same_rows "q1"
    (Testutil.sids D.Sample_db.q1_expected_sids)
    (eval "project[sid](Reserves join project[bid](select[color = 'red'](Boat)))")

let test_eval_division_q3 () =
  Testutil.check_same_rows "q3"
    (Testutil.sids D.Sample_db.q3_expected_sids)
    (eval "project[sid,bid](Reserves) div project[bid](select[color='red'](Boat))")

let test_eval_setops_q2 () =
  Testutil.check_same_rows "q2"
    (Testutil.sids D.Sample_db.q2_expected_sids)
    (eval
       "project[sid](Sailor) minus project[sid](Reserves join \
        project[bid](select[color='red'](Boat)))")

let test_eval_theta_join () =
  let r =
    eval
      "project[sid, sid2](rename[sid -> sid2, sname -> sname2, rating -> \
       rating2, age -> age2](Sailor) join[rating = rating2 and age > age2] \
       Sailor)"
  in
  Alcotest.(check int) "q5 pairs" 4 (D.Relation.cardinality r)

let test_eval_product () =
  let r = eval "project[sid](Sailor) * project[bid](Boat)" in
  Alcotest.(check int) "product size" 40 (D.Relation.cardinality r)

let test_eval_nullary_projection () =
  let r = eval "project[](select[color = 'red'](Boat))" in
  Alcotest.(check int) "boolean true = one empty tuple" 1 (D.Relation.cardinality r);
  let r2 = eval "project[](select[color = 'mauve'](Boat))" in
  Alcotest.(check int) "boolean false = empty" 0 (D.Relation.cardinality r2)

(* ---------------- optimizer ---------------- *)

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"optimize preserves semantics" ~count:200
    (Testutil.arbitrary_ra ~fuel:4 ())
    (fun e ->
      let o = Diagres_ra.Optimize.optimize env e in
      D.Relation.same_rows (Diagres_ra.Eval.eval db e) (Diagres_ra.Eval.eval db o))

let prop_optimize_idempotent =
  QCheck.Test.make ~name:"optimize is idempotent" ~count:100
    (Testutil.arbitrary_ra ~fuel:4 ())
    (fun e ->
      let o = Diagres_ra.Optimize.optimize env e in
      A.equal o (Diagres_ra.Optimize.optimize env o))

let test_optimize_pushdown () =
  (* σ over × must become a join or pushed selections *)
  let e =
    parse
      "select[sid = sid_p and rating = 9]((Sailor) * rename[sid -> sid_p, \
       bid -> bid_p, day -> day_p](Reserves))"
  in
  let o = Diagres_ra.Optimize.optimize env e in
  (match o with
  | A.Theta_join _ -> ()
  | _ -> Alcotest.failf "expected theta join, got %s" (Diagres_ra.Pretty.ascii o));
  Alcotest.(check bool) "same result" true
    (D.Relation.same_rows (Diagres_ra.Eval.eval db e) (Diagres_ra.Eval.eval db o))

let test_optimize_cascades () =
  let e = parse "select[rating = 9](select[age > 30.0](Sailor))" in
  match Diagres_ra.Optimize.optimize env e with
  | A.Select (A.And _, A.Rel "Sailor") -> ()
  | o -> Alcotest.failf "expected merged selection, got %s" (Diagres_ra.Pretty.ascii o)

let test_optimize_identity_projection () =
  let e = parse "project[sid, sname, rating, age](Sailor)" in
  match Diagres_ra.Optimize.optimize env e with
  | A.Rel "Sailor" -> ()
  | o -> Alcotest.failf "expected bare relation, got %s" (Diagres_ra.Pretty.ascii o)

(* ---------------- physical planner ---------------- *)

module Plan = Diagres_ra.Plan
module Planner = Diagres_ra.Planner

let eval_planned src = Diagres_ra.Eval.eval_planned db (parse src)

let prop_planned_matches_naive =
  QCheck.Test.make ~name:"eval_planned = eval" ~count:250
    (Testutil.arbitrary_ra ())
    (fun e ->
      D.Relation.same_rows (Diagres_ra.Eval.eval db e)
        (Diagres_ra.Eval.eval_planned db e))

let prop_planned_matches_naive_deep =
  QCheck.Test.make ~name:"eval_planned = eval (deeper trees)" ~count:100
    (Testutil.arbitrary_ra ~fuel:4 ())
    (fun e ->
      D.Relation.same_rows (Diagres_ra.Eval.eval db e)
        (Diagres_ra.Eval.eval_planned db e))

let test_planned_catalog () =
  (* the five tutorial queries, planned vs. reference, on the sample db and
     a few random instances *)
  List.iter
    (fun entry ->
      let e = Diagres.Catalog.parsed_ra entry in
      List.iter
        (fun dbi ->
          Testutil.check_same_rows
            ("planned " ^ entry.Diagres.Catalog.id)
            (Diagres_ra.Eval.eval dbi e)
            (Diagres_ra.Eval.eval_planned dbi e))
        (db :: Testutil.random_dbs 4))
    Diagres.Catalog.all

let plan_ops src =
  let p = Planner.plan db (parse src) in
  Plan.fold_unique (fun n acc -> n.Plan.op :: acc) p []

let test_planner_extracts_hash_join () =
  (* q5's theta self-join must become a hash join on the equality conjunct,
     with no nested-loop fallback anywhere in the plan *)
  let ops = plan_ops (Diagres.Catalog.find "q5").Diagres.Catalog.ra in
  let is_hash = function Plan.Hash_join _ -> true | _ -> false in
  let is_nl = function Plan.Nl_join _ -> true | _ -> false in
  Alcotest.(check bool) "has hash join" true (List.exists is_hash ops);
  Alcotest.(check bool) "no nested loop" false (List.exists is_nl ops)

let test_planner_pure_product_stays_nl () =
  let ops = plan_ops "project[sid](Sailor) * project[bid](Boat)" in
  Alcotest.(check bool) "product stays a nested loop" true
    (List.exists (function Plan.Nl_join _ -> true | _ -> false) ops)

let test_planner_shared_subtree_evaluated_once () =
  let sub = "project[sid](select[rating > 7](Sailor))" in
  let p = Planner.plan db (parse (sub ^ " union " ^ sub)) in
  ignore (Plan.exec p : D.Relation.t);
  Plan.fold_unique
    (fun n () ->
      Alcotest.(check bool) "each node computed at most once" true
        (n.Plan.evals <= 1))
    p ();
  Alcotest.(check bool) "memo hit on the shared branch" true
    (Plan.total_hits p >= 1)

let test_planner_explain_counts () =
  let p = Planner.plan db (parse (Diagres.Catalog.find "q1").Diagres.Catalog.ra) in
  ignore (Plan.exec p : D.Relation.t);
  let text = Plan.explain p in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "estimates printed" true (contains "est=");
  (* after exec, no operator line may report an unknown actual count *)
  Alcotest.(check bool) "actual counts filled" false (contains "actual=?");
  Alcotest.(check bool) "hash join shown" true (contains "hash-join")

(* ---------------- Empty (dead-branch zero) ---------------- *)

let test_empty_roundtrip_and_eval () =
  let e = parse "empty(Sailor) union project[sid, sname, rating, age](Sailor)" in
  (match e with
  | A.Union (A.Empty (A.Rel "Sailor"), _) -> ()
  | _ -> Alcotest.fail "empty() should parse to Ast.Empty");
  Alcotest.(check string) "prints back" "empty(Sailor)"
    (Diagres_ra.Pretty.ascii (A.Empty (A.Rel "Sailor")));
  let r = Diagres_ra.Eval.eval db (A.Empty (A.Rel "Sailor")) in
  Alcotest.(check int) "evaluates to no rows" 0 (D.Relation.cardinality r);
  Alcotest.(check (list string)) "keeps the carrier schema"
    [ "sid"; "sname"; "rating"; "age" ]
    (D.Schema.names (D.Relation.schema r))

let test_optimize_unsat_to_empty () =
  (* color is a string column; an int literal can never match, so the
     optimizer must fold the selection to the Empty literal *)
  let e = parse "select[color = 5](Boat)" in
  (match Diagres_ra.Optimize.optimize env e with
  | A.Empty _ -> ()
  | o -> Alcotest.failf "expected Empty, got %s" (Diagres_ra.Pretty.ascii o));
  (* and a union against it erases entirely *)
  match Diagres_ra.Optimize.optimize env (A.Union (e, parse "Boat")) with
  | A.Rel "Boat" -> ()
  | o -> Alcotest.failf "expected bare Boat, got %s" (Diagres_ra.Pretty.ascii o)

let test_planned_empty () =
  Testutil.check_same_rows "planned empty"
    (Diagres_ra.Eval.eval db (parse "empty(Sailor)"))
    (eval_planned "empty(Sailor)")

(* ---------------- aggregation (beyond-FOL extension) ---------------- *)

let test_aggregate_count_per_group () =
  let module Agg = Diagres_ra.Aggregate in
  let r =
    Agg.group ~by:[ "sid" ]
      ~specs:[ { Agg.func = Agg.Count; output = "n" } ]
      D.Sample_db.reserves
  in
  (* sailor 22 has 4 reservations *)
  let row22 =
    List.find
      (fun t -> D.Tuple.get t 0 = D.Value.Int 22)
      (D.Relation.tuples r)
  in
  Alcotest.(check bool) "count 4" true (D.Tuple.get row22 1 = D.Value.Int 4);
  Alcotest.(check int) "five groups" 5 (D.Relation.cardinality r)

let test_aggregate_global () =
  let module Agg = Diagres_ra.Aggregate in
  let r =
    Agg.group ~by:[]
      ~specs:
        [ { Agg.func = Agg.Count; output = "n" };
          { Agg.func = Agg.Avg "age"; output = "avg_age" };
          { Agg.func = Agg.Max "rating"; output = "top" } ]
      D.Sample_db.sailors
  in
  Alcotest.(check int) "one row" 1 (D.Relation.cardinality r);
  let row = List.hd (D.Relation.tuples r) in
  Alcotest.(check bool) "count 10" true (D.Tuple.get row 0 = D.Value.Int 10);
  Alcotest.(check bool) "max rating 10" true (D.Tuple.get row 2 = D.Value.Int 10)

let test_aggregate_empty_input () =
  let module Agg = Diagres_ra.Aggregate in
  let empty = D.Relation.empty D.Sample_db.sailor_schema in
  let g =
    Agg.group ~by:[] ~specs:[ { Agg.func = Agg.Count; output = "n" } ] empty
  in
  Alcotest.(check int) "global over empty: one row" 1 (D.Relation.cardinality g);
  Alcotest.(check bool) "count 0" true
    (D.Tuple.get (List.hd (D.Relation.tuples g)) 0 = D.Value.Int 0);
  let per =
    Agg.group ~by:[ "rating" ]
      ~specs:[ { Agg.func = Agg.Count; output = "n" } ]
      empty
  in
  Alcotest.(check int) "grouped over empty: no rows" 0 (D.Relation.cardinality per)

let test_aggregate_having () =
  let module Agg = Diagres_ra.Aggregate in
  let grouped =
    Agg.group ~by:[ "sid" ]
      ~specs:[ { Agg.func = Agg.Count; output = "n" } ]
      D.Sample_db.reserves
  in
  let frequent =
    Agg.having
      (fun t schema -> D.Value.ge (D.Tuple.field schema "n" t) (D.Value.Int 3))
      grouped
  in
  (* sailors 22 (4 reservations) and 31 (3) *)
  Alcotest.(check int) "two heavy reservers" 2 (D.Relation.cardinality frequent)

let test_aggregate_errors () =
  let module Agg = Diagres_ra.Aggregate in
  (match
     Agg.group ~by:[ "zzz" ]
       ~specs:[ { Agg.func = Agg.Count; output = "n" } ]
       D.Sample_db.sailors
   with
  | exception Agg.Aggregate_error _ -> ()
  | _ -> Alcotest.fail "unknown grouping attr must fail");
  match Agg.group ~by:[] ~specs:[] D.Sample_db.sailors with
  | exception Agg.Aggregate_error _ -> ()
  | _ -> Alcotest.fail "empty spec must fail"

(* ---------------- parallel execution ---------------- *)

module Pool = Diagres_pool.Pool

(* Run [f] with the pool at [domains] and every parallel operator forced on
   ([par_threshold = 0] routes even the sample db's relations through the
   morsel-parallel paths, with small morsels so several chunks exist). *)
let forcing_parallel domains f =
  let old_size = Pool.size () in
  let old_thr = !Plan.par_threshold and old_morsel = !Plan.morsel_size in
  Pool.set_size domains;
  Plan.par_threshold := 0;
  Plan.morsel_size := 3;
  Fun.protect
    ~finally:(fun () ->
      Pool.set_size old_size;
      Plan.par_threshold := old_thr;
      Plan.morsel_size := old_morsel)
    f

(* The tentpole differential: parallel ≡ sequential ≡ naive over random
   well-typed RA, at 1, 2, and 4 domains.  250 queries × 3 domain counts =
   750 differential runs, each against both reference engines. *)
let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"parallel eval = sequential = naive (1/2/4 domains)"
    ~count:250
    (Testutil.arbitrary_ra ())
    (fun e ->
      let naive = Diagres_ra.Eval.eval db e in
      let sequential = Diagres_ra.Eval.eval_planned db e in
      D.Relation.same_rows naive sequential
      && List.for_all
           (fun domains ->
             forcing_parallel domains (fun () ->
                 let r = Plan.run (Planner.plan db e) in
                 D.Relation.same_rows naive r))
           [ 1; 2; 4 ])

let prop_parallel_matches_sequential_deep =
  QCheck.Test.make ~name:"parallel eval = naive (deeper trees, 3 domains)"
    ~count:80
    (Testutil.arbitrary_ra ~fuel:4 ())
    (fun e ->
      let naive = Diagres_ra.Eval.eval db e in
      forcing_parallel 3 (fun () ->
          D.Relation.same_rows naive (Plan.run (Planner.plan db e))))

let test_parallel_catalog_larger_dbs () =
  (* the five tutorial queries on generated instances big enough for real
     multi-morsel partitioned joins *)
  let dbi =
    D.Generator.sailors_db ~n_sailors:400 ~n_boats:40 ~n_reserves:800 99
  in
  List.iter
    (fun entry ->
      let e = Diagres.Catalog.parsed_ra entry in
      let reference = Diagres_ra.Eval.eval dbi e in
      List.iter
        (fun domains ->
          forcing_parallel domains (fun () ->
              Plan.morsel_size := 64;
              Testutil.check_same_rows
                (Printf.sprintf "parallel %s at %d domains"
                   entry.Diagres.Catalog.id domains)
                reference
                (Plan.run (Planner.plan dbi e))))
        [ 2; 4 ])
    Diagres.Catalog.all

(* ---------------- plan cache ---------------- *)

module Plan_cache = Diagres_ra.Plan_cache

let with_fresh_cache f =
  Plan_cache.clear ();
  Plan_cache.reset_stats ();
  Fun.protect
    ~finally:(fun () ->
      Plan_cache.clear ();
      Plan_cache.reset_stats ();
      Plan_cache.set_capacity 256)
    f

let test_plan_cache_hit_miss () =
  with_fresh_cache (fun () ->
      let e = parse "project[sid](select[rating = 10](Sailor))" in
      let _, c1 = Plan_cache.find_or_plan db e in
      let _, c2 = Plan_cache.find_or_plan db e in
      Alcotest.(check bool) "first is a miss" false c1;
      Alcotest.(check bool) "second is a hit" true c2;
      Alcotest.(check (pair int int)) "counters" (1, 1) (Plan_cache.stats ());
      (* the cached plan still evaluates from a clean slate *)
      let p, _ = Plan_cache.find_or_plan db e in
      let r1 = Plan.run p in
      let r2 = Plan.run p in
      Testutil.check_same_rows "re-run is stable" r1 r2)

let test_plan_cache_canonicalization () =
  with_fresh_cache (fun () ->
      (* σ[10 = rating] and σ[rating = 10]: one entry via cmp_flip *)
      let flipped =
        A.Select
          ( A.Cmp (Diagres_logic.Fol.Eq, A.Const (D.Value.Int 10), A.Attr "rating"),
            A.Rel "Sailor" )
      in
      let straight =
        A.Select
          ( A.Cmp (Diagres_logic.Fol.Eq, A.Attr "rating", A.Const (D.Value.Int 10)),
            A.Rel "Sailor" )
      in
      let _, c1 = Plan_cache.find_or_plan db flipped in
      let _, c2 = Plan_cache.find_or_plan db straight in
      Alcotest.(check bool) "flipped comparison shares the entry" true
        (not c1 && c2);
      (* and the commuted conjunction too *)
      let conj a b = A.Select (A.And (a, b), A.Rel "Sailor") in
      let p1 = A.Cmp (Diagres_logic.Fol.Gt, A.Attr "rating", A.Const (D.Value.Int 5)) in
      let p2 = A.Cmp (Diagres_logic.Fol.Lt, A.Attr "sid", A.Const (D.Value.Int 40)) in
      let _, c3 = Plan_cache.find_or_plan db (conj p1 p2) in
      let _, c4 = Plan_cache.find_or_plan db (conj p2 p1) in
      Alcotest.(check bool) "commuted conjunction shares the entry" true
        (not c3 && c4))

let test_plan_cache_stamp_invalidation () =
  with_fresh_cache (fun () ->
      let e = parse "select[rating > 7](Sailor)" in
      let _, c1 = Plan_cache.find_or_plan db e in
      (* the same schema under the same names, but a rebuilt relation:
         the database stamp changes, so reuse would be unsound *)
      let db2 =
        D.Database.of_list
          (List.map
             (fun (n, r) ->
               (n, D.Relation.of_tuples (D.Relation.schema r) (D.Relation.tuples r)))
             (D.Database.relations db))
      in
      let _, c2 = Plan_cache.find_or_plan db2 e in
      let _, c3 = Plan_cache.find_or_plan db e in
      Alcotest.(check bool) "rebuilt database misses" false (c1 || c2);
      Alcotest.(check bool) "original still cached" true c3)

let test_plan_cache_lru_eviction () =
  with_fresh_cache (fun () ->
      Plan_cache.set_capacity 2;
      let q n = parse (Printf.sprintf "select[rating = %d](Sailor)" n) in
      ignore (Plan_cache.find_or_plan db (q 1));
      ignore (Plan_cache.find_or_plan db (q 2));
      ignore (Plan_cache.find_or_plan db (q 1));  (* touch 1: now 2 is LRU *)
      ignore (Plan_cache.find_or_plan db (q 3));  (* evicts 2 *)
      Alcotest.(check int) "capacity respected" 2 (Plan_cache.length ());
      let _, hit1 = Plan_cache.find_or_plan db (q 1) in
      Alcotest.(check bool) "recently-used entry survives" true hit1;
      (* q2 was evicted; looking it up is a miss that now evicts q3 *)
      let _, hit2 = Plan_cache.find_or_plan db (q 2) in
      Alcotest.(check bool) "least-recently-used entry evicted" false hit2;
      (* shrinking the capacity evicts immediately *)
      Plan_cache.set_capacity 1;
      Alcotest.(check int) "shrink evicts" 1 (Plan_cache.length ()))

(* ---------------- pretty / tree ---------------- *)

let test_unicode_pretty () =
  let s = Diagres_ra.Pretty.unicode (parse "project[sid](select[rating = 10](Sailor))") in
  Alcotest.(check bool) "has pi" true (String.length s > 0 && String.sub s 0 2 = "\207\128")

let test_tree_render () =
  let t = Diagres_ra.Pretty.tree (parse "Sailor join Reserves") in
  Alcotest.(check bool) "three lines" true
    (List.length (String.split_on_char '\n' (String.trim t)) = 3)

let test_ast_stats () =
  let e = parse "project[sid](Sailor join Reserves)" in
  Alcotest.(check int) "size" 4 (A.size e);
  Alcotest.(check (list string)) "bases" [ "Sailor"; "Reserves" ]
    (A.base_relations e)

let () =
  Alcotest.run "ra"
    [
      ( "parser",
        [ Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Testutil.qtest prop_parse_print_roundtrip ] );
      ( "typecheck",
        [ Alcotest.test_case "infer" `Quick test_typecheck_infer;
          Alcotest.test_case "errors" `Quick test_typecheck_errors ] );
      ( "eval",
        [ Alcotest.test_case "select/project" `Quick test_eval_select_project;
          Alcotest.test_case "join (q1)" `Quick test_eval_join_q1;
          Alcotest.test_case "division (q3)" `Quick test_eval_division_q3;
          Alcotest.test_case "set ops (q2)" `Quick test_eval_setops_q2;
          Alcotest.test_case "theta join (q5)" `Quick test_eval_theta_join;
          Alcotest.test_case "product" `Quick test_eval_product;
          Alcotest.test_case "nullary projection" `Quick
            test_eval_nullary_projection ] );
      ( "optimizer",
        [ Testutil.qtest prop_optimize_preserves_semantics;
          Testutil.qtest prop_optimize_idempotent;
          Alcotest.test_case "pushdown" `Quick test_optimize_pushdown;
          Alcotest.test_case "cascades" `Quick test_optimize_cascades;
          Alcotest.test_case "identity projection" `Quick
            test_optimize_identity_projection;
          Alcotest.test_case "unsat selection folds to empty" `Quick
            test_optimize_unsat_to_empty ] );
      ( "planner",
        [ Testutil.qtest prop_planned_matches_naive;
          Testutil.qtest prop_planned_matches_naive_deep;
          Alcotest.test_case "catalog differential" `Quick test_planned_catalog;
          Alcotest.test_case "theta join becomes hash join" `Quick
            test_planner_extracts_hash_join;
          Alcotest.test_case "pure product stays nested-loop" `Quick
            test_planner_pure_product_stays_nl;
          Alcotest.test_case "shared subtree evaluated once" `Quick
            test_planner_shared_subtree_evaluated_once;
          Alcotest.test_case "explain shows est and actual" `Quick
            test_planner_explain_counts ] );
      ( "parallel",
        [ Testutil.qtest prop_parallel_matches_sequential;
          Testutil.qtest prop_parallel_matches_sequential_deep;
          Alcotest.test_case "catalog on larger instances" `Quick
            test_parallel_catalog_larger_dbs ] );
      ( "plan cache",
        [ Alcotest.test_case "hit/miss counters" `Quick
            test_plan_cache_hit_miss;
          Alcotest.test_case "canonicalization" `Quick
            test_plan_cache_canonicalization;
          Alcotest.test_case "stamp invalidation" `Quick
            test_plan_cache_stamp_invalidation;
          Alcotest.test_case "LRU eviction" `Quick
            test_plan_cache_lru_eviction ] );
      ( "empty",
        [ Alcotest.test_case "parse/print/eval" `Quick
            test_empty_roundtrip_and_eval;
          Alcotest.test_case "planned" `Quick test_planned_empty ] );
      ( "aggregate",
        [ Alcotest.test_case "count per group" `Quick
            test_aggregate_count_per_group;
          Alcotest.test_case "global" `Quick test_aggregate_global;
          Alcotest.test_case "empty input" `Quick test_aggregate_empty_input;
          Alcotest.test_case "having" `Quick test_aggregate_having;
          Alcotest.test_case "errors" `Quick test_aggregate_errors ] );
      ( "pretty",
        [ Alcotest.test_case "unicode" `Quick test_unicode_pretty;
          Alcotest.test_case "tree" `Quick test_tree_render;
          Alcotest.test_case "stats" `Quick test_ast_stats ] );
    ]
