(* Tests for the relational algebra: parser, typechecker, evaluator,
   optimizer. *)

module A = Diagres_ra.Ast
module D = Diagres_data

let db = Testutil.db
let env = Testutil.env
let parse = Diagres_ra.Parser.parse
let eval src = Diagres_ra.Eval.eval db (parse src)

(* ---------------- parser ---------------- *)

let test_parse_basics () =
  (match parse "Sailor" with
  | A.Rel "Sailor" -> ()
  | _ -> Alcotest.fail "rel");
  (match parse "project[sid](Sailor)" with
  | A.Project ([ "sid" ], A.Rel "Sailor") -> ()
  | _ -> Alcotest.fail "project");
  (match parse "sigma[rating >= 8](Sailor)" with
  | A.Select (A.Cmp (Diagres_logic.Fol.Ge, A.Attr "rating", A.Const (D.Value.Int 8)), _) -> ()
  | _ -> Alcotest.fail "sigma alias")

let test_parse_precedence () =
  (* union binds looser than join *)
  match parse "Sailor union Boat join Reserves" with
  | A.Union (A.Rel "Sailor", A.Join (A.Rel "Boat", A.Rel "Reserves")) -> ()
  | e -> Alcotest.failf "precedence: %s" (Diagres_ra.Pretty.ascii e)

let test_parse_errors () =
  let fails s =
    match parse s with
    | exception Diagres_ra.Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "should not parse: %s" s
  in
  fails "select[rating >](Sailor)";
  fails "Sailor join";
  fails "project[sid](Sailor) trailing"

let prop_parse_print_roundtrip =
  QCheck.Test.make ~name:"RA: parse ∘ ascii = id" ~count:200
    (Testutil.arbitrary_ra ())
    (fun e -> parse (Diagres_ra.Pretty.ascii e) = e)

(* ---------------- typecheck ---------------- *)

let test_typecheck_infer () =
  let s = Diagres_ra.Typecheck.infer env (parse "project[sid](Sailor)") in
  Alcotest.(check (list string)) "schema" [ "sid" ] (D.Schema.names s);
  let j = Diagres_ra.Typecheck.infer env (parse "Sailor join Reserves") in
  Alcotest.(check int) "join arity" 6 (D.Schema.arity j)

let test_typecheck_errors () =
  let fails s =
    match Diagres_ra.Typecheck.infer env (parse s) with
    | exception Diagres_ra.Typecheck.Type_error _ -> ()
    | _ -> Alcotest.failf "should not typecheck: %s" s
  in
  fails "Nowhere";
  fails "project[zzz](Sailor)";
  fails "select[zzz = 1](Sailor)";
  fails "Sailor * Sailor";
  fails "Sailor union Boat";
  fails "rename[sid -> sname](Sailor)";
  fails "Boat div project[sid](Sailor)"

(* ---------------- eval ---------------- *)

let test_eval_select_project () =
  Testutil.check_same_rows "high rated"
    (Testutil.sids [ 58; 71 ])
    (eval "project[sid](select[rating = 10](Sailor))")

let test_eval_join_q1 () =
  Testutil.check_same_rows "q1"
    (Testutil.sids D.Sample_db.q1_expected_sids)
    (eval "project[sid](Reserves join project[bid](select[color = 'red'](Boat)))")

let test_eval_division_q3 () =
  Testutil.check_same_rows "q3"
    (Testutil.sids D.Sample_db.q3_expected_sids)
    (eval "project[sid,bid](Reserves) div project[bid](select[color='red'](Boat))")

let test_eval_setops_q2 () =
  Testutil.check_same_rows "q2"
    (Testutil.sids D.Sample_db.q2_expected_sids)
    (eval
       "project[sid](Sailor) minus project[sid](Reserves join \
        project[bid](select[color='red'](Boat)))")

let test_eval_theta_join () =
  let r =
    eval
      "project[sid, sid2](rename[sid -> sid2, sname -> sname2, rating -> \
       rating2, age -> age2](Sailor) join[rating = rating2 and age > age2] \
       Sailor)"
  in
  Alcotest.(check int) "q5 pairs" 4 (D.Relation.cardinality r)

let test_eval_product () =
  let r = eval "project[sid](Sailor) * project[bid](Boat)" in
  Alcotest.(check int) "product size" 40 (D.Relation.cardinality r)

let test_eval_nullary_projection () =
  let r = eval "project[](select[color = 'red'](Boat))" in
  Alcotest.(check int) "boolean true = one empty tuple" 1 (D.Relation.cardinality r);
  let r2 = eval "project[](select[color = 'mauve'](Boat))" in
  Alcotest.(check int) "boolean false = empty" 0 (D.Relation.cardinality r2)

(* ---------------- optimizer ---------------- *)

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"optimize preserves semantics" ~count:200
    (Testutil.arbitrary_ra ~fuel:4 ())
    (fun e ->
      let o = Diagres_ra.Optimize.optimize env e in
      D.Relation.same_rows (Diagres_ra.Eval.eval db e) (Diagres_ra.Eval.eval db o))

let prop_optimize_idempotent =
  QCheck.Test.make ~name:"optimize is idempotent" ~count:100
    (Testutil.arbitrary_ra ~fuel:4 ())
    (fun e ->
      let o = Diagres_ra.Optimize.optimize env e in
      A.equal o (Diagres_ra.Optimize.optimize env o))

let test_optimize_pushdown () =
  (* σ over × must become a join or pushed selections *)
  let e =
    parse
      "select[sid = sid_p and rating = 9]((Sailor) * rename[sid -> sid_p, \
       bid -> bid_p, day -> day_p](Reserves))"
  in
  let o = Diagres_ra.Optimize.optimize env e in
  (match o with
  | A.Theta_join _ -> ()
  | _ -> Alcotest.failf "expected theta join, got %s" (Diagres_ra.Pretty.ascii o));
  Alcotest.(check bool) "same result" true
    (D.Relation.same_rows (Diagres_ra.Eval.eval db e) (Diagres_ra.Eval.eval db o))

let test_optimize_cascades () =
  let e = parse "select[rating = 9](select[age > 30.0](Sailor))" in
  match Diagres_ra.Optimize.optimize env e with
  | A.Select (A.And _, A.Rel "Sailor") -> ()
  | o -> Alcotest.failf "expected merged selection, got %s" (Diagres_ra.Pretty.ascii o)

let test_optimize_identity_projection () =
  let e = parse "project[sid, sname, rating, age](Sailor)" in
  match Diagres_ra.Optimize.optimize env e with
  | A.Rel "Sailor" -> ()
  | o -> Alcotest.failf "expected bare relation, got %s" (Diagres_ra.Pretty.ascii o)

(* ---------------- physical planner ---------------- *)

module Plan = Diagres_ra.Plan
module Planner = Diagres_ra.Planner

let eval_planned src = Diagres_ra.Eval.eval_planned db (parse src)

let prop_planned_matches_naive =
  QCheck.Test.make ~name:"eval_planned = eval" ~count:250
    (Testutil.arbitrary_ra ())
    (fun e ->
      D.Relation.same_rows (Diagres_ra.Eval.eval db e)
        (Diagres_ra.Eval.eval_planned db e))

let prop_planned_matches_naive_deep =
  QCheck.Test.make ~name:"eval_planned = eval (deeper trees)" ~count:100
    (Testutil.arbitrary_ra ~fuel:4 ())
    (fun e ->
      D.Relation.same_rows (Diagres_ra.Eval.eval db e)
        (Diagres_ra.Eval.eval_planned db e))

let test_planned_catalog () =
  (* the five tutorial queries, planned vs. reference, on the sample db and
     a few random instances *)
  List.iter
    (fun entry ->
      let e = Diagres.Catalog.parsed_ra entry in
      List.iter
        (fun dbi ->
          Testutil.check_same_rows
            ("planned " ^ entry.Diagres.Catalog.id)
            (Diagres_ra.Eval.eval dbi e)
            (Diagres_ra.Eval.eval_planned dbi e))
        (db :: Testutil.random_dbs 4))
    Diagres.Catalog.all

let plan_ops src =
  let p = Planner.plan db (parse src) in
  Plan.fold_unique (fun n acc -> n.Plan.op :: acc) p []

let test_planner_extracts_hash_join () =
  (* q5's theta self-join must become a hash join on the equality conjunct,
     with no nested-loop fallback anywhere in the plan *)
  let ops = plan_ops (Diagres.Catalog.find "q5").Diagres.Catalog.ra in
  let is_hash = function Plan.Hash_join _ -> true | _ -> false in
  let is_nl = function Plan.Nl_join _ -> true | _ -> false in
  Alcotest.(check bool) "has hash join" true (List.exists is_hash ops);
  Alcotest.(check bool) "no nested loop" false (List.exists is_nl ops)

let test_planner_pure_product_stays_nl () =
  let ops = plan_ops "project[sid](Sailor) * project[bid](Boat)" in
  Alcotest.(check bool) "product stays a nested loop" true
    (List.exists (function Plan.Nl_join _ -> true | _ -> false) ops)

let test_planner_shared_subtree_evaluated_once () =
  let sub = "project[sid](select[rating > 7](Sailor))" in
  let p = Planner.plan db (parse (sub ^ " union " ^ sub)) in
  ignore (Plan.exec p : D.Relation.t);
  Plan.fold_unique
    (fun n () ->
      Alcotest.(check bool) "each node computed at most once" true
        (n.Plan.evals <= 1))
    p ();
  Alcotest.(check bool) "memo hit on the shared branch" true
    (Plan.total_hits p >= 1)

let test_planner_explain_counts () =
  let p = Planner.plan db (parse (Diagres.Catalog.find "q1").Diagres.Catalog.ra) in
  ignore (Plan.exec p : D.Relation.t);
  let text = Plan.explain p in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "estimates printed" true (contains "est=");
  (* after exec, no operator line may report an unknown actual count *)
  Alcotest.(check bool) "actual counts filled" false (contains "actual=?");
  Alcotest.(check bool) "hash join shown" true (contains "hash-join")

(* ---------------- Empty (dead-branch zero) ---------------- *)

let test_empty_roundtrip_and_eval () =
  let e = parse "empty(Sailor) union project[sid, sname, rating, age](Sailor)" in
  (match e with
  | A.Union (A.Empty (A.Rel "Sailor"), _) -> ()
  | _ -> Alcotest.fail "empty() should parse to Ast.Empty");
  Alcotest.(check string) "prints back" "empty(Sailor)"
    (Diagres_ra.Pretty.ascii (A.Empty (A.Rel "Sailor")));
  let r = Diagres_ra.Eval.eval db (A.Empty (A.Rel "Sailor")) in
  Alcotest.(check int) "evaluates to no rows" 0 (D.Relation.cardinality r);
  Alcotest.(check (list string)) "keeps the carrier schema"
    [ "sid"; "sname"; "rating"; "age" ]
    (D.Schema.names (D.Relation.schema r))

let test_optimize_unsat_to_empty () =
  (* color is a string column; an int literal can never match, so the
     optimizer must fold the selection to the Empty literal *)
  let e = parse "select[color = 5](Boat)" in
  (match Diagres_ra.Optimize.optimize env e with
  | A.Empty _ -> ()
  | o -> Alcotest.failf "expected Empty, got %s" (Diagres_ra.Pretty.ascii o));
  (* and a union against it erases entirely *)
  match Diagres_ra.Optimize.optimize env (A.Union (e, parse "Boat")) with
  | A.Rel "Boat" -> ()
  | o -> Alcotest.failf "expected bare Boat, got %s" (Diagres_ra.Pretty.ascii o)

let test_planned_empty () =
  Testutil.check_same_rows "planned empty"
    (Diagres_ra.Eval.eval db (parse "empty(Sailor)"))
    (eval_planned "empty(Sailor)")

(* ---------------- aggregation (beyond-FOL extension) ---------------- *)

let test_aggregate_count_per_group () =
  let module Agg = Diagres_ra.Aggregate in
  let r =
    Agg.group ~by:[ "sid" ]
      ~specs:[ { Agg.func = Agg.Count; output = "n" } ]
      D.Sample_db.reserves
  in
  (* sailor 22 has 4 reservations *)
  let row22 =
    List.find
      (fun t -> D.Tuple.get t 0 = D.Value.Int 22)
      (D.Relation.tuples r)
  in
  Alcotest.(check bool) "count 4" true (D.Tuple.get row22 1 = D.Value.Int 4);
  Alcotest.(check int) "five groups" 5 (D.Relation.cardinality r)

let test_aggregate_global () =
  let module Agg = Diagres_ra.Aggregate in
  let r =
    Agg.group ~by:[]
      ~specs:
        [ { Agg.func = Agg.Count; output = "n" };
          { Agg.func = Agg.Avg "age"; output = "avg_age" };
          { Agg.func = Agg.Max "rating"; output = "top" } ]
      D.Sample_db.sailors
  in
  Alcotest.(check int) "one row" 1 (D.Relation.cardinality r);
  let row = List.hd (D.Relation.tuples r) in
  Alcotest.(check bool) "count 10" true (D.Tuple.get row 0 = D.Value.Int 10);
  Alcotest.(check bool) "max rating 10" true (D.Tuple.get row 2 = D.Value.Int 10)

let test_aggregate_empty_input () =
  let module Agg = Diagres_ra.Aggregate in
  let empty = D.Relation.empty D.Sample_db.sailor_schema in
  let g =
    Agg.group ~by:[] ~specs:[ { Agg.func = Agg.Count; output = "n" } ] empty
  in
  Alcotest.(check int) "global over empty: one row" 1 (D.Relation.cardinality g);
  Alcotest.(check bool) "count 0" true
    (D.Tuple.get (List.hd (D.Relation.tuples g)) 0 = D.Value.Int 0);
  let per =
    Agg.group ~by:[ "rating" ]
      ~specs:[ { Agg.func = Agg.Count; output = "n" } ]
      empty
  in
  Alcotest.(check int) "grouped over empty: no rows" 0 (D.Relation.cardinality per)

let test_aggregate_having () =
  let module Agg = Diagres_ra.Aggregate in
  let grouped =
    Agg.group ~by:[ "sid" ]
      ~specs:[ { Agg.func = Agg.Count; output = "n" } ]
      D.Sample_db.reserves
  in
  let frequent =
    Agg.having
      (fun t schema -> D.Value.ge (D.Tuple.field schema "n" t) (D.Value.Int 3))
      grouped
  in
  (* sailors 22 (4 reservations) and 31 (3) *)
  Alcotest.(check int) "two heavy reservers" 2 (D.Relation.cardinality frequent)

let test_aggregate_errors () =
  let module Agg = Diagres_ra.Aggregate in
  (match
     Agg.group ~by:[ "zzz" ]
       ~specs:[ { Agg.func = Agg.Count; output = "n" } ]
       D.Sample_db.sailors
   with
  | exception Agg.Aggregate_error _ -> ()
  | _ -> Alcotest.fail "unknown grouping attr must fail");
  match Agg.group ~by:[] ~specs:[] D.Sample_db.sailors with
  | exception Agg.Aggregate_error _ -> ()
  | _ -> Alcotest.fail "empty spec must fail"

(* ---------------- pretty / tree ---------------- *)

let test_unicode_pretty () =
  let s = Diagres_ra.Pretty.unicode (parse "project[sid](select[rating = 10](Sailor))") in
  Alcotest.(check bool) "has pi" true (String.length s > 0 && String.sub s 0 2 = "\207\128")

let test_tree_render () =
  let t = Diagres_ra.Pretty.tree (parse "Sailor join Reserves") in
  Alcotest.(check bool) "three lines" true
    (List.length (String.split_on_char '\n' (String.trim t)) = 3)

let test_ast_stats () =
  let e = parse "project[sid](Sailor join Reserves)" in
  Alcotest.(check int) "size" 4 (A.size e);
  Alcotest.(check (list string)) "bases" [ "Sailor"; "Reserves" ]
    (A.base_relations e)

let () =
  Alcotest.run "ra"
    [
      ( "parser",
        [ Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Testutil.qtest prop_parse_print_roundtrip ] );
      ( "typecheck",
        [ Alcotest.test_case "infer" `Quick test_typecheck_infer;
          Alcotest.test_case "errors" `Quick test_typecheck_errors ] );
      ( "eval",
        [ Alcotest.test_case "select/project" `Quick test_eval_select_project;
          Alcotest.test_case "join (q1)" `Quick test_eval_join_q1;
          Alcotest.test_case "division (q3)" `Quick test_eval_division_q3;
          Alcotest.test_case "set ops (q2)" `Quick test_eval_setops_q2;
          Alcotest.test_case "theta join (q5)" `Quick test_eval_theta_join;
          Alcotest.test_case "product" `Quick test_eval_product;
          Alcotest.test_case "nullary projection" `Quick
            test_eval_nullary_projection ] );
      ( "optimizer",
        [ Testutil.qtest prop_optimize_preserves_semantics;
          Testutil.qtest prop_optimize_idempotent;
          Alcotest.test_case "pushdown" `Quick test_optimize_pushdown;
          Alcotest.test_case "cascades" `Quick test_optimize_cascades;
          Alcotest.test_case "identity projection" `Quick
            test_optimize_identity_projection;
          Alcotest.test_case "unsat selection folds to empty" `Quick
            test_optimize_unsat_to_empty ] );
      ( "planner",
        [ Testutil.qtest prop_planned_matches_naive;
          Testutil.qtest prop_planned_matches_naive_deep;
          Alcotest.test_case "catalog differential" `Quick test_planned_catalog;
          Alcotest.test_case "theta join becomes hash join" `Quick
            test_planner_extracts_hash_join;
          Alcotest.test_case "pure product stays nested-loop" `Quick
            test_planner_pure_product_stays_nl;
          Alcotest.test_case "shared subtree evaluated once" `Quick
            test_planner_shared_subtree_evaluated_once;
          Alcotest.test_case "explain shows est and actual" `Quick
            test_planner_explain_counts ] );
      ( "empty",
        [ Alcotest.test_case "parse/print/eval" `Quick
            test_empty_roundtrip_and_eval;
          Alcotest.test_case "planned" `Quick test_planned_empty ] );
      ( "aggregate",
        [ Alcotest.test_case "count per group" `Quick
            test_aggregate_count_per_group;
          Alcotest.test_case "global" `Quick test_aggregate_global;
          Alcotest.test_case "empty input" `Quick test_aggregate_empty_input;
          Alcotest.test_case "having" `Quick test_aggregate_having;
          Alcotest.test_case "errors" `Quick test_aggregate_errors ] );
      ( "pretty",
        [ Alcotest.test_case "unicode" `Quick test_unicode_pretty;
          Alcotest.test_case "tree" `Quick test_tree_render;
          Alcotest.test_case "stats" `Quick test_ast_stats ] );
    ]
