(* The domain pool: sizing, batch semantics, exception propagation, and
   the two array primitives the parallel operators are built from.  Every
   test runs the interesting cases at pool size 1 (inline) and > 1
   (worker domains + helping submitter). *)

module Pool = Diagres_pool.Pool

let with_size n f =
  let old = Pool.size () in
  Pool.set_size n;
  Fun.protect ~finally:(fun () -> Pool.set_size old) f

let test_set_size () =
  with_size 3 (fun () -> Alcotest.(check int) "resized" 3 (Pool.size ()));
  (match Pool.set_size 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "set_size 0 must be rejected");
  Alcotest.(check bool) "size stays >= 1" true (Pool.size () >= 1)

let test_run_all_order () =
  List.iter
    (fun size ->
      with_size size (fun () ->
          let results =
            Pool.run_all (Array.init 37 (fun i () -> i * i))
          in
          Alcotest.(check (array int))
            (Printf.sprintf "results in task order (size %d)" size)
            (Array.init 37 (fun i -> i * i))
            results))
    [ 1; 2; 4 ]

let test_run_all_empty () =
  with_size 2 (fun () ->
      Alcotest.(check (array int)) "empty batch" [||] (Pool.run_all [||]))

exception Boom of int

let test_exceptions_propagate () =
  List.iter
    (fun size ->
      with_size size (fun () ->
          let completed = Atomic.make 0 in
          let tasks =
            Array.init 16 (fun i () ->
                if i = 5 || i = 11 then raise (Boom i)
                else begin
                  Atomic.incr completed;
                  i
                end)
          in
          (match Pool.run_all tasks with
          | _ -> Alcotest.fail "expected the task's exception"
          | exception Boom i ->
            (* the first failure by task index is the one re-raised *)
            Alcotest.(check int)
              (Printf.sprintf "first failure wins (size %d)" size)
              5 i);
          (* one task failing never prevents the others from completing *)
          Alcotest.(check int)
            (Printf.sprintf "other tasks completed (size %d)" size)
            14 (Atomic.get completed)))
    [ 1; 4 ]

let test_usable_after_failure () =
  with_size 4 (fun () ->
      (try ignore (Pool.run_all [| (fun () -> raise Exit); (fun () -> 1) |])
       with Exit -> ());
      Alcotest.(check (array int)) "pool still works" [| 0; 1; 2 |]
        (Pool.run_all (Array.init 3 (fun i () -> i))))

let test_map_chunks_matches_sequential () =
  let arr = Array.init 1000 (fun i -> (i * 37) mod 101) in
  let expected = Array.map succ arr in
  List.iter
    (fun size ->
      with_size size (fun () ->
          List.iter
            (fun chunk ->
              let chunks =
                Pool.parallel_map_chunks ~chunk (Array.map succ) arr
              in
              Alcotest.(check (array int))
                (Printf.sprintf "size %d chunk %d" size chunk)
                expected
                (Array.concat (Array.to_list chunks)))
            [ 1; 7; 128; 5000 ]))
    [ 1; 2; 4 ]

let test_fold_deterministic () =
  let arr = Array.init 5000 (fun i -> i) in
  let expected = 5000 * 4999 / 2 in
  List.iter
    (fun size ->
      with_size size (fun () ->
          Alcotest.(check int)
            (Printf.sprintf "sum at size %d" size)
            expected
            (Pool.parallel_fold ~chunk:64
               ~map:(Array.fold_left ( + ) 0)
               ~merge:( + ) ~init:0 arr)))
    [ 1; 3 ]

let test_nested_parallel_no_deadlock () =
  (* a parallel call inside a pool task: the helping scheduler must drain
     the inner batch instead of deadlocking every worker on the outer one *)
  with_size 2 (fun () ->
      let inner i =
        Pool.parallel_fold ~chunk:16 ~map:(Array.fold_left ( + ) 0)
          ~merge:( + ) ~init:0
          (Array.init 100 (fun j -> i + j))
      in
      let outer = Pool.run_all (Array.init 8 (fun i () -> inner i)) in
      Alcotest.(check (array int)) "nested results"
        (Array.init 8 (fun i -> (100 * i) + (100 * 99 / 2)))
        outer)

let test_list_map () =
  with_size 4 (fun () ->
      Alcotest.(check (list int)) "list map order" [ 2; 4; 6; 8; 10 ]
        (Pool.parallel_list_map (fun x -> 2 * x) [ 1; 2; 3; 4; 5 ]))

let () =
  Alcotest.run "pool"
    [
      ( "sizing",
        [ Alcotest.test_case "set_size" `Quick test_set_size ] );
      ( "run_all",
        [ Alcotest.test_case "order" `Quick test_run_all_order;
          Alcotest.test_case "empty" `Quick test_run_all_empty;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exceptions_propagate;
          Alcotest.test_case "usable after failure" `Quick
            test_usable_after_failure;
          Alcotest.test_case "nested calls don't deadlock" `Quick
            test_nested_parallel_no_deadlock ] );
      ( "primitives",
        [ Alcotest.test_case "map_chunks = sequential" `Quick
            test_map_chunks_matches_sequential;
          Alcotest.test_case "fold deterministic" `Quick
            test_fold_deterministic;
          Alcotest.test_case "list map" `Quick test_list_map ] );
    ]
