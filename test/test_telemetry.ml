(* The telemetry subsystem: span nesting and parenting, disabled-mode
   no-op invariants, counter/histogram correctness, the differential
   check that instrumentation never changes results (sequential and
   parallel), the EXPLAIN ANALYZE annotations, and the Chrome
   trace-event JSON sink (validated with a local mini JSON parser —
   the tree has no JSON dependency). *)

module T = Diagres_telemetry.Telemetry
module Pool = Diagres_pool.Pool
module D = Diagres_data

let db = D.Sample_db.db

let with_size n f =
  let old = Pool.size () in
  Pool.set_size n;
  Fun.protect ~finally:(fun () -> Pool.set_size old) f

(* Every test leaves tracing off so suites that run after this one see
   the default (disabled) state. *)
let with_tracing f =
  T.set_enabled true;
  T.reset_spans ();
  Fun.protect ~finally:(fun () -> T.set_enabled false) f

(* ---------------- disabled mode ---------------- *)

let test_disabled_noop () =
  T.set_enabled false;
  T.reset_spans ();
  let s = T.start ~cat:"phase" "off" in
  Alcotest.(check bool) "start returns the null span" true (s = T.null_span);
  T.finish ~attrs:[ ("k", T.Int 1) ] s;
  let r = T.with_span "off2" (fun () -> 42) in
  Alcotest.(check int) "with_span still runs f" 42 r;
  Alcotest.(check int) "no spans recorded" 0 (List.length (T.spans ()))

let test_disabled_counters_still_count () =
  T.set_enabled false;
  let c = T.counter "test.disabled.counter" in
  T.set_counter c 0;
  T.incr c;
  T.add c 4;
  Alcotest.(check int) "counters are always on" 5 (T.counter_value c)

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  let v =
    T.with_span ~cat:"a" "outer" (fun () ->
        T.with_span ~cat:"b"
          ~attrs:(fun () -> [ ("rows", T.Int 7) ])
          "inner"
          (fun () -> 10)
        + 1)
  in
  Alcotest.(check int) "value threaded" 11 v;
  match T.spans () with
  | [ outer; inner ] ->
    Alcotest.(check string) "outer name" "outer" outer.T.name;
    Alcotest.(check string) "inner name" "inner" inner.T.name;
    Alcotest.(check int) "outer is a root" 0 outer.T.parent;
    Alcotest.(check int) "inner's parent is outer" outer.T.sid inner.T.parent;
    Alcotest.(check bool) "inner starts after outer" true
      (inner.T.start_ns >= outer.T.start_ns);
    Alcotest.(check bool) "inner nests inside outer" true
      (Int64.add inner.T.start_ns inner.T.dur_ns
       <= Int64.add outer.T.start_ns outer.T.dur_ns);
    Alcotest.(check bool) "durations non-negative" true
      (outer.T.dur_ns >= 0L && inner.T.dur_ns >= 0L);
    Alcotest.(check bool) "finish attrs recorded" true
      (List.mem_assoc "rows" inner.T.attrs)
  | l -> Alcotest.failf "expected exactly 2 spans, got %d" (List.length l)

let test_span_siblings () =
  with_tracing @@ fun () ->
  T.with_span "parent" (fun () ->
      T.with_span "c1" (fun () -> ());
      T.with_span "c2" (fun () -> ()));
  match T.spans () with
  | [ p; c1; c2 ] ->
    Alcotest.(check string) "first child" "c1" c1.T.name;
    Alcotest.(check string) "second child" "c2" c2.T.name;
    Alcotest.(check int) "c1 parent" p.T.sid c1.T.parent;
    Alcotest.(check int) "c2 parent (stack popped between)" p.T.sid
      c2.T.parent
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

exception Boom

let test_span_exception () =
  with_tracing @@ fun () ->
  (match T.with_span "explodes" (fun () -> raise Boom) with
  | () -> Alcotest.fail "exception swallowed"
  | exception Boom -> ());
  match T.spans () with
  | [ s ] ->
    Alcotest.(check bool) "exception attr recorded" true
      (List.mem_assoc "exception" s.T.attrs);
    (* the stack was unwound: a new span is again a root *)
    T.with_span "after" (fun () -> ());
    let after = List.nth (T.spans ()) 1 in
    Alcotest.(check int) "stack unwound after raise" 0 after.T.parent
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_open_span_omitted () =
  with_tracing @@ fun () ->
  let s = T.start "never-finished" in
  T.with_span "done" (fun () -> ());
  Alcotest.(check (list string))
    "only completed spans are visible" [ "done" ]
    (List.map (fun i -> i.T.name) (T.spans ()));
  T.finish s

let test_total_ns () =
  with_tracing @@ fun () ->
  T.with_span "phase-x" (fun () -> ());
  T.with_span "phase-x" (fun () -> ());
  T.with_span "phase-y" (fun () -> ());
  Alcotest.(check bool) "total over both instances" true
    (T.total_ns ~name:"phase-x" () >= 0L);
  Alcotest.(check int64) "unknown name sums to zero" 0L
    (T.total_ns ~name:"no-such-phase" ())

(* ---------------- counters & histograms ---------------- *)

let test_counter_interning () =
  let a = T.counter "test.interned" and b = T.counter "test.interned" in
  T.set_counter a 0;
  T.incr a;
  T.incr b;
  Alcotest.(check int) "same slot" 2 (T.counter_value a);
  Alcotest.(check int) "named lookup" 2 (T.counter_named "test.interned");
  Alcotest.(check int) "unknown counter reads 0" 0
    (T.counter_named "test.never-created")

let test_counter_concurrent () =
  let c = T.counter "test.concurrent" in
  T.set_counter c 0;
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> for _ = 1 to 10_000 do T.incr c done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" 40_000 (T.counter_value c)

let test_histogram () =
  let h = T.histogram "test.hist" in
  T.reset_metrics ();
  let empty = T.snapshot h in
  Alcotest.(check int) "empty count" 0 empty.T.count;
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan empty.T.mean);
  List.iter (T.observe h) [ 1.0; 1.5; 3.0; 100.0 ];
  let s = T.snapshot h in
  Alcotest.(check int) "count" 4 s.T.count;
  Alcotest.(check (float 1e-9)) "sum" 105.5 s.T.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.T.min;
  Alcotest.(check (float 1e-9)) "max" 100.0 s.T.max;
  Alcotest.(check (float 1e-9)) "mean" (105.5 /. 4.) s.T.mean;
  (* geometric buckets: bucket i counts (2^(i-1), 2^i]; bucket 0 is x<=1 *)
  Alcotest.(check int) "1.0 -> bucket 0" 1 s.T.bucket_counts.(0);
  Alcotest.(check int) "1.5 -> bucket 1 (1,2]" 1 s.T.bucket_counts.(1);
  Alcotest.(check int) "3.0 -> bucket 2 (2,4]" 1 s.T.bucket_counts.(2);
  Alcotest.(check int) "100 -> bucket 7 (64,128]" 1 s.T.bucket_counts.(7)

let test_metrics_registry () =
  T.reset_metrics ();
  T.incr (T.counter "test.reg.a");
  T.observe (T.histogram "test.reg.h") 5.0;
  let names = List.map T.metric_name (T.metrics ()) in
  Alcotest.(check bool) "counter listed" true (List.mem "test.reg.a" names);
  Alcotest.(check bool) "histogram listed" true (List.mem "test.reg.h" names);
  Alcotest.(check (list string)) "sorted by name" (List.sort compare names)
    names;
  T.reset_metrics ();
  Alcotest.(check int) "reset zeroes counters" 0
    (T.counter_named "test.reg.a");
  Alcotest.(check int) "reset zeroes histograms" 0
    (T.snapshot (T.histogram "test.reg.h")).T.count

(* ---------------- gauges & memory accounting ---------------- *)

let test_gauges () =
  let g = T.gauge "test.gauge.a" in
  T.set_gauge g 42;
  Alcotest.(check int) "set" 42 (T.gauge_value g);
  T.add_gauge g 8;
  Alcotest.(check int) "add" 50 (T.gauge_value g);
  T.add_gauge g (-20);
  Alcotest.(check int) "add negative" 30 (T.gauge_value g);
  Alcotest.(check int) "named lookup" 30 (T.gauge_named "test.gauge.a");
  Alcotest.(check int) "unknown gauge reads 0" 0
    (T.gauge_named "test.gauge.nosuch");
  Alcotest.(check bool) "same name interns to the same cell" true
    (T.gauge "test.gauge.a" == g);
  let names = List.map T.metric_name (T.metrics ()) in
  Alcotest.(check bool) "registry snapshot lists the gauge" true
    (List.mem "test.gauge.a" names);
  T.reset_metrics ();
  Alcotest.(check int) "reset zeroes gauges" 0 (T.gauge_value g)

let test_memory_bytes () =
  (* values: fixed 16-byte boxes; strings add header + payload words *)
  Alcotest.(check int) "null" 0 (D.Value.memory_bytes D.Value.Null);
  Alcotest.(check int) "int" 16 (D.Value.memory_bytes (D.Value.Int 7));
  Alcotest.(check int) "8-char string" 40
    (D.Value.memory_bytes (D.Value.String "ABCDEFGH"));
  (* tuple: header word + one slot per field, plus the boxed values *)
  Alcotest.(check int) "2-int tuple" 56
    (D.Tuple.memory_bytes [| D.Value.Int 1; D.Value.Int 2 |]);
  (* an int column is exactly its Bigarray payload *)
  let ints = D.Column.Ints (D.Column.make_ints 100) in
  Alcotest.(check int) "int column payload" 800 (D.Column.memory_bytes ints);
  (* a dictionary column is its codes payload plus dictionary storage *)
  let dict =
    D.Column.of_values
      (Array.init 10 (fun i ->
           D.Value.String (if i mod 2 = 0 then "even" else "odd")))
  in
  Alcotest.(check bool) "dict column exceeds its codes payload" true
    (D.Column.memory_bytes dict > 80);
  (* batch: a header word plus its columns *)
  let b = D.Batch.make ~nrows:100 [| ints |] in
  Alcotest.(check int) "batch = header + columns" 808 (D.Batch.memory_bytes b);
  (* relation: at least the boxed-tuple payload, growing with cardinality,
     and the cache accounting tracks what has actually been built *)
  let schema =
    [ D.Schema.attr ~ty:D.Value.Tint "a"; D.Schema.attr ~ty:D.Value.Tint "b" ]
  in
  let rel n =
    D.Relation.of_lists schema
      (List.init n (fun i -> [ D.Value.Int i; D.Value.Int (i * i) ]))
  in
  let small = rel 10 and big = rel 1000 in
  Alcotest.(check bool) "footprint covers the tuple payload" true
    (D.Relation.memory_bytes big >= 1000 * 56);
  Alcotest.(check bool) "footprint grows with cardinality" true
    (D.Relation.memory_bytes big > D.Relation.memory_bytes small);
  Alcotest.(check (pair int int)) "no caches built yet" (0, 0)
    (D.Relation.caches_memory_bytes small);
  ignore (D.Relation.stats small);
  let _, st = D.Relation.caches_memory_bytes small in
  Alcotest.(check bool) "stats cache counted once filled" true (st > 0);
  ignore (D.Relation.matching small [ 0 ] [| D.Value.Int 3 |]);
  let ix, _ = D.Relation.caches_memory_bytes small in
  Alcotest.(check bool) "index cache counted once built" true (ix > 0)

(* ---------------- per-span allocation tracking ---------------- *)

let test_alloc_spans () =
  with_tracing @@ fun () ->
  (* without the opt-in, spans carry no GC samples *)
  ignore
    (T.with_span "noalloc" (fun () ->
         Sys.opaque_identity (Array.make 1000 0.)));
  (match T.spans () with
  | [ s ] ->
    Alcotest.(check bool) "alloc is None without opt-in" true (s.T.alloc = None)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  T.reset_spans ();
  T.set_alloc_enabled true;
  Fun.protect ~finally:(fun () -> T.set_alloc_enabled false) @@ fun () ->
  ignore
    (T.with_span "alloc" (fun () ->
         Sys.opaque_identity (Array.init 100_000 float_of_int)));
  match T.spans () with
  | [ s ] -> (
    match s.T.alloc with
    | Some d ->
      (* the flat float array alone is 800 KB *)
      Alcotest.(check bool) "allocation attributed to the span" true
        (d.T.alloc_bytes >= 800_000.);
      Alcotest.(check bool) "GC deltas non-negative" true
        (d.T.minor_collections >= 0 && d.T.major_collections >= 0
        && d.T.promoted_words >= 0.)
    | None -> Alcotest.fail "alloc tracking on but the span has no delta")
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_disabled_no_alloc () =
  T.set_enabled false;
  (* warm up: intern anything start/finish touch lazily *)
  let s0 = T.start "warm" in
  T.finish s0;
  let before = Gc.allocated_bytes () in
  for _ = 1 to 10_000 do
    let s = T.start "off" in
    T.finish s
  done;
  let after = Gc.allocated_bytes () in
  (* the disabled path is one Atomic.get per call: the whole loop must
     allocate nothing.  The slack covers the boxed floats of the two
     Gc.allocated_bytes calls themselves. *)
  Alcotest.(check bool) "disabled start/finish allocates nothing" true
    (after -. before < 1024.)

let test_plan_cache_counters () =
  Diagres_ra.Plan_cache.clear ();
  Diagres_ra.Plan_cache.reset_stats ();
  let ra = Diagres.Catalog.parsed_ra (Diagres.Catalog.find "q1") in
  ignore (Diagres_ra.Eval.eval_planned db ra);
  ignore (Diagres_ra.Eval.eval_planned db ra);
  Alcotest.(check int) "one miss on the telemetry registry" 1
    (T.counter_named "plan_cache.miss");
  Alcotest.(check int) "one hit on the telemetry registry" 1
    (T.counter_named "plan_cache.hit");
  Alcotest.(check (pair int int)) "Plan_cache.stats reads the same slots"
    (1, 1)
    (Diagres_ra.Plan_cache.stats ())

let test_datalog_round_counter () =
  let before = T.counter_named "datalog.rounds" in
  let chain =
    let schema =
      [ D.Schema.attr ~ty:D.Value.Tint "src";
        D.Schema.attr ~ty:D.Value.Tint "dst" ]
    in
    D.Database.of_list
      [ ( "Edge",
          D.Relation.of_lists schema
            (List.init 10 (fun i -> [ D.Value.Int i; D.Value.Int (i + 1) ])) )
      ]
  in
  let p =
    Diagres_datalog.Parser.parse
      "path(X, Y) :- Edge(X, Y).\npath(X, Y) :- Edge(X, Z), path(Z, Y)."
  in
  let r = Diagres_datalog.Fixpoint.query chain p ~goal:"path" in
  Alcotest.(check int) "all paths of the 10-chain" 55 (D.Relation.cardinality r);
  Alcotest.(check bool) "fixpoint rounds counted" true
    (T.counter_named "datalog.rounds" - before >= 10)

(* ---------------- differential: instrumented = uninstrumented -------- *)

(* A database big enough that joins cross the morsel-parallel threshold,
   so the traced run exercises the parallel operator paths too. *)
let big_db =
  D.Generator.sailors_db ~n_sailors:1500 ~n_boats:150 ~n_reserves:3000 1507

let differential_queries () =
  List.map
    (fun e -> (e.Diagres.Catalog.id, Diagres.Catalog.parsed_ra e))
    Diagres.Catalog.all
  @ [ ( "theta",
        Diagres_ra.Parser.parse
          "project[sid2](select[sid = sid2 and rating = 10](Sailor * \
           rename[sid -> sid2, bid -> bid2, day -> day2](Reserves)))" ) ]

let test_differential () =
  List.iter
    (fun size ->
      with_size size (fun () ->
          List.iter
            (fun (id, ra) ->
              List.iter
                (fun (dbname, dbi) ->
                  T.set_enabled false;
                  let plain =
                    D.Relation.to_string (Diagres_ra.Eval.eval_planned dbi ra)
                  in
                  let traced =
                    with_tracing (fun () ->
                        D.Relation.to_string
                          (Diagres_ra.Eval.eval_planned dbi ra))
                  in
                  (* and again with per-span allocation tracking on: the
                     GC sampling must never change results either *)
                  let traced_alloc =
                    with_tracing (fun () ->
                        T.set_alloc_enabled true;
                        Fun.protect
                          ~finally:(fun () -> T.set_alloc_enabled false)
                          (fun () ->
                            D.Relation.to_string
                              (Diagres_ra.Eval.eval_planned dbi ra)))
                  in
                  Alcotest.(check string)
                    (Printf.sprintf "%s on %s, %d domain(s)" id dbname size)
                    plain traced;
                  Alcotest.(check string)
                    (Printf.sprintf "%s on %s, %d domain(s), alloc tracking"
                       id dbname size)
                    plain traced_alloc)
                [ ("sample", db); ("generated-1500", big_db) ])
            (differential_queries ())))
    [ 1; 4 ]

(* ---------------- EXPLAIN ANALYZE ---------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let strip_annotation line =
  match String.index_opt line '(' with
  | Some i when i > 1 && line.[i - 1] = ' ' && String.length line > i + 4
                && String.sub line (i + 1) 4 = "est="
    -> String.trim (String.sub line 0 i)
  | _ -> String.trim line

let lines s = String.split_on_char '\n' (String.trim s)

let test_analyze_annotations () =
  with_tracing @@ fun () ->
  List.iter
    (fun e ->
      let ra = Diagres.Catalog.parsed_ra e in
      let plan = Diagres_ra.Planner.plan db ra in
      let result = Diagres_ra.Plan.run plan in
      let analyzed = Diagres_ra.Plan.analyze plan in
      (* same tree as explain, one annotation per node *)
      Alcotest.(check (list string))
        (e.Diagres.Catalog.id ^ ": analyze shows the explain tree")
        (List.map strip_annotation (lines (Diagres_ra.Plan.explain plan)))
        (List.map strip_annotation (lines analyzed));
      List.iter
        (fun l ->
          (* shared-node back-references render without an annotation *)
          if not (contains l "(shared, computed once)") then begin
            Alcotest.(check bool)
              (e.Diagres.Catalog.id ^ ": node annotated: " ^ l)
              true
              (contains l "est=" && contains l "actual="
              && contains l "time=");
            (* every operator executed, so no unknown actuals/times *)
            Alcotest.(check bool) ("no unexecuted nodes: " ^ l) false
              (contains l "=?")
          end)
        (lines analyzed);
      (* the root's actual row count is the query's answer size *)
      let root = List.hd (lines analyzed) in
      let expect =
        Printf.sprintf "actual=%d" (D.Relation.cardinality result)
      in
      Alcotest.(check bool)
        (e.Diagres.Catalog.id ^ ": root " ^ expect)
        true (contains root expect))
    Diagres.Catalog.all

let test_analyze_est_off_flag () =
  (* est_ratio is symmetric and clamped: only >10x discrepancies flag *)
  Alcotest.(check bool) "10x is not flagged" false
    (Diagres_ra.Plan.est_off ~est:10.0 ~actual:1);
  Alcotest.(check bool) "11x over flags" true
    (Diagres_ra.Plan.est_off ~est:110.0 ~actual:10);
  Alcotest.(check bool) "11x under flags" true
    (Diagres_ra.Plan.est_off ~est:10.0 ~actual:110);
  Alcotest.(check bool) "empty estimate vs empty actual" false
    (Diagres_ra.Plan.est_off ~est:0.0 ~actual:0)

(* ---------------- trace JSON ---------------- *)

(* A mini JSON parser, just enough to validate the trace sink (the tree
   deliberately has no JSON dependency). *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> raise (Bad "unterminated string")
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then raise (Bad "bad \\u escape");
            Buffer.add_string b
              (Printf.sprintf "\\u%s" (String.sub s !pos 4));
            pos := !pos + 4
          | Some c -> Buffer.add_char b c; advance ()
          | None -> raise (Bad "dangling escape"));
          go ()
        | Some c -> Buffer.add_char b c; advance (); go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      if !pos = start then raise (Bad "expected number");
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> raise (Bad "malformed number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad "expected , or } in object")
          in
          members []
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> raise (Bad "expected , or ] in array")
          in
          elements []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> pos := !pos + 4; Bool true
      | Some 'f' -> pos := !pos + 5; Bool false
      | Some 'n' -> pos := !pos + 4; Null
      | _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let field k = function
    | Obj kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> raise (Bad ("missing field " ^ k)))
    | _ -> raise (Bad "not an object")

  let str = function Str s -> s | _ -> raise (Bad "not a string")
  let num = function Num f -> f | _ -> raise (Bad "not a number")
end

let test_trace_json_valid () =
  with_tracing @@ fun () ->
  with_size 4 @@ fun () ->
  T.set_alloc_enabled true;
  Fun.protect ~finally:(fun () -> T.set_alloc_enabled false) @@ fun () ->
  (* span a real multi-phase evaluation, plus parallel work *)
  let ra =
    Diagres_rc.Translate.trc_to_ra D.Sample_db.schemas
      (Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q1"))
  in
  ignore (Diagres_ra.Eval.eval_planned big_db ra);
  let trace = T.trace_json () in
  let events =
    match Json.parse trace with
    | Json.List evs -> evs
    | _ -> Alcotest.fail "trace is not a JSON array"
    | exception Json.Bad msg -> Alcotest.failf "invalid trace JSON: %s" msg
  in
  Alcotest.(check bool) "trace is non-empty" true (events <> []);
  (* every event is well-formed, and per-tid B/E sequences are properly
     nested in non-decreasing timestamp order (the Chrome format rule) *)
  let stacks : (int, (string * float) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add stacks tid r;
      r
  in
  let begins = ref 0 and ends = ref 0 in
  let metadata = ref 0 and counters = ref 0 and thread_names = ref [] in
  List.iter
    (fun ev ->
      let ph = Json.(str (field "ph" ev)) in
      let name = Json.(str (field "name" ev)) in
      Alcotest.(check bool) "pid present" true
        (Json.(num (field "pid" ev)) = 1.0);
      match ph with
      | "M" ->
        (* metadata: no timestamp, just a process/thread label in args *)
        Stdlib.incr metadata;
        Alcotest.(check bool) "metadata names a known field" true
          (name = "process_name" || name = "thread_name");
        let label = Json.(str (field "name" (field "args" ev))) in
        if name = "thread_name" then
          thread_names := label :: !thread_names
        else Alcotest.(check string) "process label" "diagres" label
      | "C" ->
        (* counter track: timestamped value sample, no nesting *)
        Stdlib.incr counters;
        ignore Json.(num (field "tid" ev));
        ignore Json.(num (field "ts" ev));
        ignore Json.(field "args" ev)
      | _ -> (
        let tid = int_of_float Json.(num (field "tid" ev)) in
        let ts = Json.(num (field "ts" ev)) in
        ignore Json.(field "cat" ev);
        ignore Json.(field "args" ev);
        let st = stack tid in
        (match !st with
        | (_, prev_ts) :: _ ->
          Alcotest.(check bool) "per-tid timestamps non-decreasing" true
            (ts >= prev_ts)
        | [] -> ());
        match ph with
        | "B" ->
          Stdlib.incr begins;
          st := (name, ts) :: !st
        | "E" -> (
          Stdlib.incr ends;
          match !st with
          | (open_name, _) :: rest ->
            Alcotest.(check string) "E closes the innermost open B" open_name
              name;
            st := rest
          | [] -> Alcotest.fail "E with no open B on its tid")
        | other -> Alcotest.failf "unexpected event phase %S" other))
    events;
  Alcotest.(check int) "every B has its E" !begins !ends;
  Alcotest.(check bool) "has metadata events" true (!metadata >= 2);
  Alcotest.(check bool) "domain-0 thread name present" true
    (List.mem "domain-0" !thread_names);
  Alcotest.(check bool) "has counter events (alloc tracking was on)" true
    (!counters > 0);
  Hashtbl.iter
    (fun tid st ->
      Alcotest.(check (list string))
        (Printf.sprintf "tid %d ends with an empty stack" tid)
        [] (List.map fst !st))
    stacks;
  (* the expected pipeline phases all appear *)
  let names =
    List.filter_map
      (fun ev ->
        if Json.(str (field "ph" ev)) = "B" then
          Some Json.(str (field "name" ev))
        else None)
      events
  in
  List.iter
    (fun phase ->
      Alcotest.(check bool) ("trace contains phase " ^ phase) true
        (List.mem phase names))
    [ "typecheck"; "plan"; "optimize"; "execute" ]

let test_metrics_json_valid () =
  T.incr (T.counter "test.json.counter");
  T.observe (T.histogram "test.json.hist") 3.0;
  T.set_gauge (T.gauge "test.json.gauge") 12345;
  match Json.parse (T.metrics_json ()) with
  | Json.Obj _ as o ->
    let counters = Json.field "counters" o in
    let gauges = Json.field "gauges" o in
    let histograms = Json.field "histograms" o in
    Alcotest.(check bool) "counter serialized" true
      (Json.(num (field "test.json.counter" counters)) >= 1.0);
    Alcotest.(check (float 1e-9)) "gauge serialized" 12345.0
      Json.(num (field "test.json.gauge" gauges));
    Alcotest.(check (float 1e-9)) "histogram count serialized" 1.0
      Json.(num (field "count" (field "test.json.hist" histograms)))
  | _ -> Alcotest.fail "metrics_json is not an object"
  | exception Json.Bad msg -> Alcotest.failf "invalid metrics JSON: %s" msg

(* ---------------- pool metrics ---------------- *)

let test_pool_counters () =
  with_size 1 (fun () ->
      let before = T.counter_named "pool.tasks.inline" in
      ignore (Pool.run_all (Array.init 8 (fun i () -> i)));
      Alcotest.(check int) "inline tasks counted" (before + 8)
        (T.counter_named "pool.tasks.inline"));
  with_size 3 (fun () ->
      let q0 = T.counter_named "pool.tasks.queued" in
      let x0 = T.counter_named "pool.tasks.executed" in
      ignore (Pool.run_all (Array.init 16 (fun i () -> i)));
      Alcotest.(check int) "queued tasks counted" (q0 + 16)
        (T.counter_named "pool.tasks.queued");
      Alcotest.(check int) "every queued task executed" (x0 + 16)
        (T.counter_named "pool.tasks.executed"))

let () =
  Alcotest.run "telemetry"
    [
      ( "disabled",
        [ Alcotest.test_case "spans are no-ops" `Quick test_disabled_noop;
          Alcotest.test_case "counters stay live" `Quick
            test_disabled_counters_still_count ] );
      ( "spans",
        [ Alcotest.test_case "nesting & parenting" `Quick test_span_nesting;
          Alcotest.test_case "siblings" `Quick test_span_siblings;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "open spans omitted" `Quick
            test_open_span_omitted;
          Alcotest.test_case "total_ns" `Quick test_total_ns ] );
      ( "metrics",
        [ Alcotest.test_case "counter interning" `Quick
            test_counter_interning;
          Alcotest.test_case "concurrent increments" `Quick
            test_counter_concurrent;
          Alcotest.test_case "histogram buckets" `Quick test_histogram;
          Alcotest.test_case "registry snapshot & reset" `Quick
            test_metrics_registry;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "plan-cache counters" `Quick
            test_plan_cache_counters;
          Alcotest.test_case "datalog round counter" `Quick
            test_datalog_round_counter;
          Alcotest.test_case "pool counters" `Quick test_pool_counters ] );
      ( "memory",
        [ Alcotest.test_case "estimated heap bytes" `Quick test_memory_bytes ]
      );
      ( "alloc",
        [ Alcotest.test_case "per-span allocation deltas" `Quick
            test_alloc_spans;
          Alcotest.test_case "disabled mode allocates nothing" `Quick
            test_disabled_no_alloc ] );
      ( "differential",
        [ Alcotest.test_case "instrumented = uninstrumented" `Slow
            test_differential ] );
      ( "analyze",
        [ Alcotest.test_case "annotations" `Quick test_analyze_annotations;
          Alcotest.test_case "est-off flagging" `Quick
            test_analyze_est_off_flag ] );
      ( "json",
        [ Alcotest.test_case "trace events well-formed" `Quick
            test_trace_json_valid;
          Alcotest.test_case "metrics json well-formed" `Quick
            test_metrics_json_valid ] );
    ]
