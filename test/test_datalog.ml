(* Tests for non-recursive Datalog with stratified negation. *)

module A = Diagres_datalog.Ast
module D = Diagres_data

let db = Testutil.db
let schemas = Testutil.schemas
let parse = Diagres_datalog.Parser.parse

let q3_src =
  "missing(S) :- Sailor(S, N, R, Ag), Boat(B, BN, 'red'), not res2(S, B).\n\
   res2(S, B) :- Reserves(S, B, Dy).\n\
   q3(S) :- Sailor(S, N, R, Ag), not missing(S)."

(* ---------------- parser ---------------- *)

let test_parse () =
  let p = parse q3_src in
  Alcotest.(check int) "3 rules" 3 (List.length p);
  Alcotest.(check (list string)) "idb" [ "missing"; "q3"; "res2" ]
    (A.idb_preds p)

let test_parse_conditions () =
  let p = parse "older(X, Y) :- Sailor(X, N1, R1, A1), Sailor(Y, N2, R2, A2), A1 > A2." in
  match (List.hd p).A.body with
  | [ A.Pos _; A.Pos _; A.Cond (Diagres_logic.Fol.Gt, A.Var "A1", A.Var "A2") ] -> ()
  | _ -> Alcotest.fail "condition literal"

let test_parse_print_roundtrip () =
  let p = parse q3_src in
  Alcotest.(check bool) "roundtrip" true (parse (A.to_string p) = p)

let test_parse_errors () =
  let fails s =
    match parse s with
    | exception Diagres_datalog.Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "should not parse: %s" s
  in
  fails "q(X) :- Sailor(X.";
  fails "q(X) Sailor(X).";
  fails "q() :- Sailor(X)."

(* ---------------- checks ---------------- *)

let test_check_recursion () =
  let p = parse "a(X) :- b(X).\nb(X) :- a(X)." in
  match Diagres_datalog.Check.check_program schemas p with
  | exception Diagres_datalog.Check.Check_error _ -> ()
  | _ -> Alcotest.fail "recursion must be rejected"

let test_check_safety () =
  let fails src =
    match Diagres_datalog.Check.check_program schemas (parse src) with
    | exception Diagres_datalog.Check.Check_error _ -> ()
    | _ -> Alcotest.failf "should be unsafe: %s" src
  in
  (* head var not bound *)
  fails "q(X, Y) :- Sailor(X, N, R, A).";
  (* negated var not bound *)
  fails "q(X) :- Sailor(X, N, R, A), not Reserves(X, B, D2), B > 1.";
  (* condition var not bound positively *)
  fails "q(X) :- Sailor(X, N, R, A), Z > 1."

let test_check_arity () =
  match Diagres_datalog.Check.check_program schemas (parse "q(X) :- Sailor(X).") with
  | exception Diagres_datalog.Check.Check_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch must be rejected"

let test_check_undefined () =
  match Diagres_datalog.Check.check_program schemas (parse "q(X) :- mystery(X).") with
  | exception Diagres_datalog.Check.Check_error _ -> ()
  | _ -> Alcotest.fail "undefined predicate must be rejected"

let test_strata () =
  let p = parse q3_src in
  let strata = Diagres_datalog.Check.strata p in
  Alcotest.(check int) "res2 stratum" 0 (List.assoc "res2" strata);
  Alcotest.(check int) "missing stratum" 1 (List.assoc "missing" strata);
  Alcotest.(check int) "q3 stratum" 2 (List.assoc "q3" strata)

let test_eval_order () =
  let p = parse q3_src in
  let order = Diagres_datalog.Check.eval_order p in
  let pos x = Option.get (List.find_index (( = ) x) order) in
  Alcotest.(check bool) "res2 before missing" true (pos "res2" < pos "missing");
  Alcotest.(check bool) "missing before q3" true (pos "missing" < pos "q3")

(* ---------------- evaluation ---------------- *)

let test_eval_q3 () =
  Testutil.check_same_rows "q3 datalog"
    (Testutil.sids D.Sample_db.q3_expected_sids)
    (Diagres_datalog.Eval.query db (parse q3_src) ~goal:"q3")

let test_eval_union_rules () =
  let p =
    parse
      "q4(S) :- Reserves(S, B, D2), Boat(B, N, 'red').\n\
       q4(S) :- Reserves(S, B, D2), Boat(B, N, 'green')."
  in
  Testutil.check_same_rows "q4 via two rules"
    (Testutil.sids D.Sample_db.q4_expected_sids)
    (Diagres_datalog.Eval.query db p ~goal:"q4")

let test_eval_constants_in_head () =
  let p = parse "flag('hi', S) :- Sailor(S, N, R, A), R = 10." in
  let r = Diagres_datalog.Eval.query db p ~goal:"flag" in
  Alcotest.(check int) "two rows" 2 (D.Relation.cardinality r)

let test_eval_condition () =
  let p = parse "old(S) :- Sailor(S, N, R, A), A > 50.0." in
  Testutil.check_same_rows "old sailors"
    (Testutil.sids [ 31; 95 ])
    (Diagres_datalog.Eval.query db p ~goal:"old")

let prop_datalog_vs_ra =
  QCheck.Test.make ~name:"datalog eval = RA unfolding on random DBs"
    ~count:25 QCheck.small_int
    (fun seed ->
      let rdb = Diagres_data.Generator.sailors_db ~n_sailors:6 ~n_boats:3 ~n_reserves:10 seed in
      let rschemas =
        List.map
          (fun (n, r) -> (n, D.Relation.schema r))
          (D.Database.relations rdb)
      in
      let p = parse q3_src in
      let direct = Diagres_datalog.Eval.query rdb p ~goal:"q3" in
      let via_ra =
        Diagres_ra.Eval.eval rdb (Diagres_datalog.To_drc.to_ra rschemas p ~goal:"q3")
      in
      D.Relation.same_rows direct via_ra)

(* ---------------- unfolding ---------------- *)

let test_unfold_to_drc () =
  let p = parse q3_src in
  let d = Diagres_datalog.To_drc.query schemas p ~goal:"q3" in
  Testutil.check_same_rows "unfolded drc"
    (Testutil.sids D.Sample_db.q3_expected_sids)
    (Diagres_rc.Drc.eval db d)

let test_unfold_safe_range () =
  let p = parse q3_src in
  let d = Diagres_datalog.To_drc.query schemas p ~goal:"q3" in
  Alcotest.(check bool) "unfolding is safe-range" true
    (Diagres_rc.Safety.safe_query d)

let test_stats () =
  let rules, occs, repeats = A.stats (parse q3_src) in
  Alcotest.(check int) "rules" 3 rules;
  Alcotest.(check int) "occurrences" 6 occs;
  Alcotest.(check bool) "repeats > 0" true (repeats > 0)

(* ---------------- recursive fixpoint (extension) ---------------- *)

let graph_db =
  let i n = D.Value.Int n in
  let schema = D.Schema.make [ ("src", D.Value.Tint); ("dst", D.Value.Tint) ] in
  D.Database.of_list
    [ ( "Edge",
        D.Relation.of_lists schema
          [ [ i 1; i 2 ]; [ i 2; i 3 ]; [ i 3; i 4 ]; [ i 5; i 6 ] ] ) ]

let tc_src =
  "path(X, Y) :- Edge(X, Y).\npath(X, Y) :- Edge(X, Z), path(Z, Y)."

let test_fixpoint_transitive_closure () =
  let r = Diagres_datalog.Fixpoint.query graph_db (parse tc_src) ~goal:"path" in
  (* 1→2,3,4; 2→3,4; 3→4; 5→6 = 7 pairs *)
  Alcotest.(check int) "closure size" 7 (D.Relation.cardinality r);
  Alcotest.(check bool) "1 reaches 4" true
    (D.Relation.mem (D.Tuple.of_list [ D.Value.Int 1; D.Value.Int 4 ]) r);
  Alcotest.(check bool) "1 not reaches 6" false
    (D.Relation.mem (D.Tuple.of_list [ D.Value.Int 1; D.Value.Int 6 ]) r)

let test_fixpoint_stratified_negation () =
  (* unreachable pairs over the node set, via negation of a recursive
     predicate in a higher stratum *)
  let src =
    tc_src
    ^ "\nnode(X) :- Edge(X, Y).\nnode(Y) :- Edge(X, Y).\n\
       unreach(X, Y) :- node(X), node(Y), not path(X, Y)."
  in
  let r = Diagres_datalog.Fixpoint.query graph_db (parse src) ~goal:"unreach" in
  Alcotest.(check bool) "5 cannot reach 1" true
    (D.Relation.mem (D.Tuple.of_list [ D.Value.Int 5; D.Value.Int 1 ]) r);
  Alcotest.(check bool) "1 can reach 4" false
    (D.Relation.mem (D.Tuple.of_list [ D.Value.Int 1; D.Value.Int 4 ]) r)

let test_fixpoint_rejects_unstratified () =
  let src = "p(X) :- Edge(X, Y), not p(X)." in
  match Diagres_datalog.Fixpoint.query graph_db (parse src) ~goal:"p" with
  | exception Diagres_datalog.Fixpoint.Fixpoint_error _ -> ()
  | _ -> Alcotest.fail "negation through recursion must be rejected"

let test_fixpoint_agrees_on_nonrecursive () =
  (* on non-recursive programs the fixpoint engine equals the stratified
     one-pass engine *)
  let p = parse q3_src in
  Testutil.check_same_rows "fixpoint = one-pass"
    (Diagres_datalog.Eval.query db p ~goal:"q3")
    (Diagres_datalog.Fixpoint.query db p ~goal:"q3")

let chain_db n =
  let schema = D.Schema.make [ ("src", D.Value.Tint); ("dst", D.Value.Tint) ] in
  D.Database.of_list
    [ ( "Edge",
        D.Relation.of_lists schema
          (List.init n (fun i -> [ D.Value.Int i; D.Value.Int (i + 1) ])) ) ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_fixpoint_max_rounds () =
  let n = 30 in
  let gdb = chain_db n in
  (match
     Diagres_datalog.Fixpoint.query ~max_rounds:2 gdb (parse tc_src)
       ~goal:"path"
   with
  | exception Diagres_datalog.Fixpoint.Fixpoint_error msg ->
    Alcotest.(check bool) "error names the predicate" true
      (contains msg "path")
  | _ -> Alcotest.fail "expected a divergence error at max_rounds=2");
  (match
     Diagres_datalog.Fixpoint.query_naive ~max_rounds:2 gdb (parse tc_src)
       ~goal:"path"
   with
  | exception Diagres_datalog.Fixpoint.Fixpoint_error _ -> ()
  | _ -> Alcotest.fail "naive engine must honor max_rounds too");
  (* a sufficient bound converges to the full closure *)
  let r =
    Diagres_datalog.Fixpoint.query ~max_rounds:(n + 2) gdb (parse tc_src)
      ~goal:"path"
  in
  Alcotest.(check int) "full closure" (n * (n + 1) / 2)
    (D.Relation.cardinality r)

(* the headline differential property of this module: the semi-naive engine
   agrees with the naive reference on recursion + stratified negation over
   random graphs *)
let prop_semi_naive_equals_naive =
  QCheck.Test.make ~name:"semi-naive = naive fixpoint on random graphs"
    ~count:30 QCheck.small_int
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let n = 4 + Random.State.int rand 5 in
      let edges =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j ->
                if i <> j && Random.State.int rand 3 = 0 then Some (i, j)
                else None)
              (List.init n Fun.id))
          (List.init n Fun.id)
      in
      let edges = if edges = [] then [ (0, 1) ] else edges in
      let schema = D.Schema.make [ ("src", D.Value.Tint); ("dst", D.Value.Tint) ] in
      let gdb =
        D.Database.of_list
          [ ( "Edge",
              D.Relation.of_lists schema
                (List.map (fun (a, b) -> [ D.Value.Int a; D.Value.Int b ]) edges)
            ) ]
      in
      let src =
        tc_src
        ^ "\nnode(X) :- Edge(X, Y).\nnode(Y) :- Edge(X, Y).\n\
           unreach(X, Y) :- node(X), node(Y), not path(X, Y)."
      in
      let p = parse src in
      List.for_all
        (fun goal ->
          D.Relation.same_rows
            (Diagres_datalog.Fixpoint.query gdb p ~goal)
            (Diagres_datalog.Fixpoint.query_naive gdb p ~goal))
        [ "path"; "unreach" ])

(* the parallel delta step: the pooled semi-naive engine at 1, 2, and 4
   domains agrees with itself at 1 domain and with the naive reference, on
   recursion + stratified negation over random graphs.  [set_size] swaps
   the worker pool in and out between counts. *)
let prop_parallel_fixpoint_deterministic =
  QCheck.Test.make
    ~name:"parallel semi-naive = naive at 1/2/4 domains (TC + negation)"
    ~count:25 QCheck.small_int
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let n = 4 + Random.State.int rand 5 in
      let edges =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j ->
                if i <> j && Random.State.int rand 3 = 0 then Some (i, j)
                else None)
              (List.init n Fun.id))
          (List.init n Fun.id)
      in
      let edges = if edges = [] then [ (0, 1) ] else edges in
      let schema = D.Schema.make [ ("src", D.Value.Tint); ("dst", D.Value.Tint) ] in
      let gdb =
        D.Database.of_list
          [ ( "Edge",
              D.Relation.of_lists schema
                (List.map (fun (a, b) -> [ D.Value.Int a; D.Value.Int b ]) edges)
            ) ]
      in
      let src =
        tc_src
        ^ "\nnode(X) :- Edge(X, Y).\nnode(Y) :- Edge(X, Y).\n\
           unreach(X, Y) :- node(X), node(Y), not path(X, Y)."
      in
      let p = parse src in
      let module Pool = Diagres_pool.Pool in
      let old = Pool.size () in
      Fun.protect ~finally:(fun () -> Pool.set_size old) @@ fun () ->
      List.for_all
        (fun goal ->
          let naive = Diagres_datalog.Fixpoint.query_naive gdb p ~goal in
          List.for_all
            (fun domains ->
              Pool.set_size domains;
              D.Relation.same_rows naive
                (Diagres_datalog.Fixpoint.query gdb p ~goal))
            [ 1; 2; 4 ])
        [ "path"; "unreach" ])

(* every catalog Datalog program: semi-naive = naive = one-pass engine, on
   the sample db and on random instances *)
let test_fixpoint_catalog_differential () =
  let dbs = db :: Testutil.random_dbs 6 in
  List.iter
    (fun e ->
      let p = Diagres.Catalog.parsed_datalog e in
      let goal = e.Diagres.Catalog.id in
      List.iteri
        (fun i rdb ->
          let one_pass = Diagres_datalog.Eval.query rdb p ~goal in
          Testutil.check_same_rows
            (Printf.sprintf "%s semi-naive (db %d)" goal i)
            one_pass
            (Diagres_datalog.Fixpoint.query rdb p ~goal);
          Testutil.check_same_rows
            (Printf.sprintf "%s naive fixpoint (db %d)" goal i)
            one_pass
            (Diagres_datalog.Fixpoint.query_naive rdb p ~goal))
        dbs)
    Diagres.Catalog.all

let prop_fixpoint_closure_correct =
  QCheck.Test.make ~name:"fixpoint closure = reference reachability"
    ~count:30 QCheck.small_int
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let n = 5 + Random.State.int rand 4 in
      let edges =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j ->
                if i <> j && Random.State.int rand 4 = 0 then Some (i, j)
                else None)
              (List.init n Fun.id))
          (List.init n Fun.id)
      in
      let edges = if edges = [] then [ (0, 1) ] else edges in
      let schema = D.Schema.make [ ("src", D.Value.Tint); ("dst", D.Value.Tint) ] in
      let gdb =
        D.Database.of_list
          [ ( "Edge",
              D.Relation.of_lists schema
                (List.map (fun (a, b) -> [ D.Value.Int a; D.Value.Int b ]) edges)
            ) ]
      in
      let r = Diagres_datalog.Fixpoint.query gdb (parse tc_src) ~goal:"path" in
      (* reference: Floyd-Warshall style boolean closure *)
      let reach = Array.make_matrix n n false in
      List.iter (fun (a, b) -> reach.(a).(b) <- true) edges;
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
          done
        done
      done;
      let expected = ref 0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if reach.(i).(j) then incr expected
        done
      done;
      D.Relation.cardinality r = !expected)

let () =
  Alcotest.run "datalog"
    [
      ( "parser",
        [ Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "conditions" `Quick test_parse_conditions;
          Alcotest.test_case "print roundtrip" `Quick
            test_parse_print_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "checks",
        [ Alcotest.test_case "recursion" `Quick test_check_recursion;
          Alcotest.test_case "safety" `Quick test_check_safety;
          Alcotest.test_case "arity" `Quick test_check_arity;
          Alcotest.test_case "undefined" `Quick test_check_undefined;
          Alcotest.test_case "strata" `Quick test_strata;
          Alcotest.test_case "eval order" `Quick test_eval_order ] );
      ( "eval",
        [ Alcotest.test_case "q3" `Quick test_eval_q3;
          Alcotest.test_case "union rules" `Quick test_eval_union_rules;
          Alcotest.test_case "constants in head" `Quick
            test_eval_constants_in_head;
          Alcotest.test_case "conditions" `Quick test_eval_condition;
          Testutil.qtest prop_datalog_vs_ra ] );
      ( "unfold",
        [ Alcotest.test_case "to drc" `Quick test_unfold_to_drc;
          Alcotest.test_case "safe range" `Quick test_unfold_safe_range;
          Alcotest.test_case "stats" `Quick test_stats ] );
      ( "fixpoint",
        [ Alcotest.test_case "transitive closure" `Quick
            test_fixpoint_transitive_closure;
          Alcotest.test_case "stratified negation" `Quick
            test_fixpoint_stratified_negation;
          Alcotest.test_case "rejects unstratified" `Quick
            test_fixpoint_rejects_unstratified;
          Alcotest.test_case "agrees on non-recursive" `Quick
            test_fixpoint_agrees_on_nonrecursive;
          Alcotest.test_case "max_rounds" `Quick test_fixpoint_max_rounds;
          Alcotest.test_case "catalog differential" `Quick
            test_fixpoint_catalog_differential;
          Testutil.qtest prop_semi_naive_equals_naive;
          Testutil.qtest prop_parallel_fixpoint_deterministic;
          Testutil.qtest prop_fixpoint_closure_correct ] );
    ]
