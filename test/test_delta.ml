(* Incremental view maintenance: differential evaluation over the
   physical plan algebra.

   Coverage:

   - unit tests for the canonical-batch merge set operations (including
     nullary batches and string columns with differing dictionaries) and
     for [Relation.apply_delta] normalization;
   - deterministic retraction tests: projection support counts (a delete
     must not retract an output other inputs still support) and the
     membership-probe rules of the set operations;
   - the plan-sharing regression: a registered view's plan is the same
     object the LRU plan cache serves to ad-hoc [eval_planned] calls,
     whose [Plan.run] resets the per-node memos — maintenance must keep
     working because its state lives with the view, not on plan nodes;
   - a randomized insert/delete-stream differential: maintained result ≡
     recomputed ≡ naive, over qgen-generated plans, crossed over 1/4
     domains and columnar on/off (overridable via DIAGRES_DOMAINS /
     DIAGRES_COLUMNAR, which is how CI crosses the matrix). *)

module D = Diagres_data
module R = D.Relation
module V = D.Value
module B = D.Batch
module Plan = Diagres_ra.Plan
module Planner = Diagres_ra.Planner
module Plan_cache = Diagres_ra.Plan_cache
module Delta = Diagres_ra.Delta
module Eval = Diagres_ra.Eval
module Views = Diagres.Views
module Languages = Diagres.Languages
module Pool = Diagres_pool.Pool
module Q = Diagres.Qgen

(* Same forcing harness as test_columnar: tiny thresholds so every
   eligible operator — including the ephemeral delta nodes — runs its
   vectorized, multi-batch, pooled paths even on sample-sized inputs. *)
let forcing ?(columnar = true) domains f =
  let old_size = Pool.size () in
  let old_thr = !Plan.par_threshold and old_morsel = !Plan.morsel_size in
  let old_vec = !Plan.vec_threshold and old_batch = !Plan.batch_rows in
  let old_col = !Plan.columnar_enabled in
  Pool.set_size domains;
  Plan.par_threshold := 0;
  Plan.morsel_size := 3;
  Plan.vec_threshold := 0;
  Plan.batch_rows := 3;
  Plan.columnar_enabled := columnar;
  Fun.protect
    ~finally:(fun () ->
      Pool.set_size old_size;
      Plan.par_threshold := old_thr;
      Plan.morsel_size := old_morsel;
      Plan.vec_threshold := old_vec;
      Plan.batch_rows := old_batch;
      Plan.columnar_enabled := old_col)
    f

(* ------------------------------------------------------------------ *)
(* Canonical-batch merge set operations.                               *)

let ints name vs =
  R.of_lists
    (D.Schema.make [ (name, V.Tint) ])
    (List.map (fun i -> [ V.Int i ]) vs)

let strs name vs =
  R.of_lists
    (D.Schema.make [ (name, V.Tstring) ])
    (List.map (fun s -> [ V.String s ]) vs)

let check_merges a b =
  let check what merge reference =
    let merged = R.of_batch (R.schema a) (merge (R.batch a) (R.batch b)) in
    if not (R.same_rows merged reference) then
      Alcotest.failf "merge %s diverges from row-mode reference" what
  in
  check "union" B.merge_union (R.union a b);
  check "inter" B.merge_inter (R.inter a b);
  check "diff" B.merge_diff (R.diff a b)

let test_merge_setops () =
  check_merges (ints "x" [ 1; 3; 5; 7 ]) (ints "x" [ 2; 3; 7; 9 ]);
  check_merges (ints "x" []) (ints "x" [ 1; 2 ]);
  check_merges (ints "x" [ 1; 2 ]) (ints "x" []);
  (* string columns dictionary-encode per batch: overlapping but unequal
     value sets force the differing-dictionary merge path *)
  check_merges (strs "c" [ "a"; "b"; "c" ]) (strs "c" [ "b"; "d" ]);
  check_merges (strs "c" [ "red"; "blue" ]) (strs "c" [ "green"; "red" ])

let test_merge_nullary () =
  (* nullary relations: the Boolean relation {()} or {} *)
  let t = R.project [] (ints "x" [ 1 ]) and f = R.project [] (ints "x" []) in
  List.iter (fun (a, b) -> check_merges a b) [ (t, t); (t, f); (f, t); (f, f) ]

(* ------------------------------------------------------------------ *)
(* Relation.apply_delta normalization.                                 *)

let test_apply_delta_normalizes () =
  let r = ints "x" [ 1; 2 ] in
  let r', ins, del =
    R.apply_delta ~inserts:(ints "x" [ 2; 3 ]) ~deletes:(ints "x" [ 1; 3; 9 ])
      r
  in
  (* insert 2 is already present; delete 3 loses to the insert, delete 9
     is absent; so: ins = {3}, del = {1}, result = {2, 3} *)
  Alcotest.(check bool) "result" true (R.same_rows r' (ints "x" [ 2; 3 ]));
  Alcotest.(check bool) "ins" true (R.same_rows ins (ints "x" [ 3 ]));
  Alcotest.(check bool) "del" true (R.same_rows del (ints "x" [ 1 ]));
  (* a delta that normalizes to nothing returns the relation itself:
     stamp and caches survive *)
  let r'', _, _ =
    R.apply_delta ~inserts:(ints "x" [ 1 ]) ~deletes:(ints "x" [ 7 ]) r
  in
  Alcotest.(check int) "no-op keeps the stamp" (R.stamp r) (R.stamp r'')

(* ------------------------------------------------------------------ *)
(* Deterministic retraction: projection support, set-op membership.     *)

let row sid name = [ V.Int sid; V.String name ]

let small_s rows =
  R.of_lists (D.Schema.make [ ("sid", V.Tint); ("sname", V.Tstring) ]) rows

let test_project_support_counts () =
  let s = small_s [ row 1 "ann"; row 2 "ann"; row 3 "bob" ] in
  let db = D.Database.of_list [ ("S", s) ] in
  let reg = Views.create db in
  let v =
    Views.register reg ~name:"names" ~lang:Languages.Ra
      ~source:"project[sname](S)"
  in
  let del rows = [ ("S", R.empty (R.schema s), small_s rows) ] in
  (* deleting (1, ann) must NOT retract ann — (2, ann) still supports it *)
  let stats = Views.update reg (del [ row 1 "ann" ]) in
  Alcotest.(check (list (pair int int)))
    "first delete changes nothing"
    [ (0, 0) ]
    (List.map (fun s -> (s.Views.inserts, s.Views.deletes)) stats);
  Alcotest.(check bool) "ann survives" true (Views.verify reg v);
  (* deleting the last support retracts it *)
  let stats = Views.update reg (del [ row 2 "ann" ]) in
  Alcotest.(check (list (pair int int)))
    "last support retracts"
    [ (0, 1) ]
    (List.map (fun s -> (s.Views.inserts, s.Views.deletes)) stats);
  Alcotest.(check bool) "verified" true (Views.verify reg v);
  Alcotest.(check int) "only bob left" 1 (R.cardinality (Views.result v))

let test_union_retraction () =
  let a = ints "x" [ 1; 2 ] and b = ints "x" [ 2; 3 ] in
  let db = D.Database.of_list [ ("A", a); ("B", b) ] in
  let reg = Views.create db in
  let v =
    Views.register reg ~name:"u" ~lang:Languages.Ra ~source:"A union B"
  in
  (* deleting 2 from A alone must not retract it — B still holds it *)
  let stats =
    Views.update reg [ ("A", ints "x" [], ints "x" [ 2 ]) ]
  in
  Alcotest.(check (list (pair int int)))
    "sibling still supports"
    [ (0, 0) ]
    (List.map (fun s -> (s.Views.inserts, s.Views.deletes)) stats);
  (* now delete it from B too *)
  let stats =
    Views.update reg [ ("B", ints "x" [], ints "x" [ 2 ]) ]
  in
  Alcotest.(check (list (pair int int)))
    "now it retracts"
    [ (0, 1) ]
    (List.map (fun s -> (s.Views.inserts, s.Views.deletes)) stats);
  Alcotest.(check bool) "verified" true (Views.verify reg v)

let test_division_view () =
  let db = Testutil.db in
  let reg = Views.create db in
  let v =
    Views.register reg ~name:"all_boats" ~lang:Languages.Ra
      ~source:"project[sid, bid](Reserves) div project[bid](Boat)"
  in
  let res_schema = D.Database.schema_of "Reserves" db in
  let boat_schema = D.Database.schema_of "Boat" db in
  let no_res = R.empty res_schema and no_boat = R.empty boat_schema in
  (* dividend-only delta: a sailor completes the set of boats *)
  let missing =
    R.diff
      (R.product
         (R.project [ "sid" ] (D.Database.find "Sailor" db))
         (R.project [ "bid" ] (D.Database.find "Boat" db)))
      (R.project [ "sid"; "bid" ] (D.Database.find "Reserves" db))
  in
  let some_sid =
    match R.tuples missing with
    | t :: _ -> (match t.(0) with V.Int s -> s | _ -> assert false)
    | [] -> Alcotest.fail "sample instance has a sailor missing a boat"
  in
  let completing =
    R.filter (fun t -> V.compare t.(0) (V.Int some_sid) = 0) missing
  in
  let day t = Array.append t [| V.String "1/1" |] in
  let ins = R.of_tuples res_schema (List.map day (R.tuples completing)) in
  ignore (Views.update reg [ ("Reserves", ins, no_res) ]);
  Alcotest.(check bool) "dividend delta verified" true (Views.verify reg v);
  Alcotest.(check bool)
    "completed sailor appears" true
    (R.mem [| V.Int some_sid |] (Views.result v));
  (* divisor delta: a brand-new boat empties the division again *)
  let new_boat =
    R.of_lists boat_schema [ [ V.Int 999; V.String "Ghost"; V.String "black" ] ]
  in
  ignore (Views.update reg [ ("Boat", new_boat, no_boat) ]);
  Alcotest.(check bool) "divisor delta verified" true (Views.verify reg v);
  Alcotest.(check bool)
    "nobody reserved the new boat" true
    (R.is_empty (Views.result v))

(* ------------------------------------------------------------------ *)
(* The plan-sharing regression (differential state must live with the  *)
(* view, never on plan nodes).                                         *)

let test_plan_cache_sharing () =
  let src = "project[sname](Sailor join Reserves)" in
  let db0 = Testutil.db in
  let reg = Views.create db0 in
  let v = Views.register reg ~name:"v" ~lang:Languages.Ra ~source:src in
  (* an ad-hoc planned evaluation of the same query against the same
     database is served the very same plan object from the LRU cache... *)
  let e =
    match Languages.parse Languages.Ra src with
    | Languages.Q_ra e -> e
    | _ -> assert false
  in
  let plan2, cached = Plan_cache.find_or_plan db0 e in
  Alcotest.(check bool) "plan served from cache" true cached;
  Alcotest.(check bool) "same plan object" true (plan2 == v.Views.plan);
  (* ...and Plan.run resets every per-node memo on it.  Interleave such
     runs with maintenance rounds: the view must stay correct because its
     differential state is its own. *)
  let r = D.Generator.rng 42 in
  for round = 1 to 3 do
    ignore (Plan.run v.Views.plan);
    let changes =
      D.Generator.update_batch ~frac:0.3 r (Views.database reg)
    in
    ignore (Views.update reg changes);
    ignore (Plan.run v.Views.plan);
    if not (Views.verify reg v) then
      Alcotest.failf "round %d: maintained result diverged after Plan.run"
        round;
    let naive = Diagres_ra.Eval.eval (Views.database reg) v.Views.ra in
    if not (R.same_rows naive (Views.result v)) then
      Alcotest.failf "round %d: maintained result diverged from naive" round
  done

(* ------------------------------------------------------------------ *)
(* Randomized update-stream differential.                              *)

let fuzz_n =
  match Sys.getenv_opt "DIAGRES_FUZZ_N" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 60)
  | None -> 60

let domains_list =
  match Sys.getenv_opt "DIAGRES_DOMAINS" with
  | Some s -> ( try [ max 1 (int_of_string (String.trim s)) ] with _ -> [ 1; 4 ])
  | None -> [ 1; 4 ]

let columnar_list =
  match Sys.getenv_opt "DIAGRES_COLUMNAR" with
  | Some "0" -> [ false ]
  | Some _ -> [ true ]
  | None -> [ true; false ]

let test_update_stream_differential () =
  let st = Random.State.make [| 0xde17a; 2026 |] in
  let schemas = Testutil.schemas in
  for i = 1 to fuzz_n do
    let e = Q.gen_ra st schemas 3 in
    let seed = 1000 + i in
    List.iter
      (fun domains ->
        List.iter
          (fun columnar ->
            forcing ~columnar domains (fun () ->
                let db =
                  ref
                    (D.Generator.sailors_db ~n_sailors:8 ~n_boats:4
                       ~n_reserves:16 seed)
                in
                let plan = Planner.plan !db e in
                let view = Delta.init plan in
                let r = D.Generator.rng seed in
                for round = 1 to 3 do
                  let changes = D.Generator.update_batch ~frac:0.3 r !db in
                  let db', applied = D.Database.apply_delta changes !db in
                  db := db';
                  let rep = Delta.maintain view applied in
                  let naive = Eval.eval !db e in
                  if not (R.same_rows naive rep.Delta.result) then
                    Alcotest.failf
                      "#%d round %d (%d domains, columnar=%b): maintained \
                       diverges from naive:\n\
                       %s"
                      i round domains columnar (Diagres_ra.Pretty.ascii e)
                done)
              )
          columnar_list)
      domains_list
  done

let () =
  Alcotest.run "delta"
    [ ( "batch-merge",
        [ Alcotest.test_case "merge set-ops = row reference" `Quick
            test_merge_setops;
          Alcotest.test_case "nullary merges" `Quick test_merge_nullary ] );
      ( "apply-delta",
        [ Alcotest.test_case "normalization" `Quick
            test_apply_delta_normalizes ] );
      ( "retraction",
        [ Alcotest.test_case "projection support counts" `Quick
            test_project_support_counts;
          Alcotest.test_case "union membership probes" `Quick
            test_union_retraction;
          Alcotest.test_case "division dividend/divisor deltas" `Quick
            test_division_view ] );
      ( "plan-sharing",
        [ Alcotest.test_case "maintenance survives ad-hoc Plan.run" `Quick
            test_plan_cache_sharing ] );
      ( "differential",
        [ Alcotest.test_case "update streams: maintained = naive" `Slow
            test_update_stream_differential ] ) ]
