(* Columnar substrate + vectorized operators.

   Two layers of coverage:

   - unit tests for the storage pieces: dictionary encoding roundtrips
     (sorted codes, so code order = string order), selection-vector edge
     cases (empty / full / singleton bitmaps), batch canonicalization,
     the memoized [Relation.tuples_array], and the columnar statistics
     fast path;

   - a qgen-driven 500-query differential: for each generated well-typed
     RA query, the vectorized planned evaluator (forced on with tiny
     batches so batch boundaries are exercised), the row-mode planned
     evaluator, and the naive tree-walking evaluator must agree — at 1
     and at 4 domains, so the batched kernels also run through the
     domain pool. *)

module D = Diagres_data
module C = D.Column
module V = D.Value
module Plan = Diagres_ra.Plan
module Planner = Diagres_ra.Planner
module Pool = Diagres_pool.Pool
module T = Diagres_telemetry.Telemetry
module Q = Diagres.Qgen

let db = Testutil.db
let schemas = Testutil.schemas

(* Run [f] with the pool at [domains] and the vectorized operators forced
   on tiny inputs: [vec_threshold = 0] marks every filter/project/join
   vectorized, [batch_rows = 3] forces multi-batch execution on the sample
   relations, and [par_threshold = 0] routes the batches through the pool.
   [columnar] toggles the master switch, so the same forcing covers both
   the vectorized and the row fallback paths. *)
let forcing ?(columnar = true) domains f =
  let old_size = Pool.size () in
  let old_thr = !Plan.par_threshold and old_morsel = !Plan.morsel_size in
  let old_vec = !Plan.vec_threshold and old_batch = !Plan.batch_rows in
  let old_col = !Plan.columnar_enabled in
  Pool.set_size domains;
  Plan.par_threshold := 0;
  Plan.morsel_size := 3;
  Plan.vec_threshold := 0;
  Plan.batch_rows := 3;
  Plan.columnar_enabled := columnar;
  Fun.protect
    ~finally:(fun () ->
      Pool.set_size old_size;
      Plan.par_threshold := old_thr;
      Plan.morsel_size := old_morsel;
      Plan.vec_threshold := old_vec;
      Plan.batch_rows := old_batch;
      Plan.columnar_enabled := old_col)
    f

(* ------------------------------------------------------------------ *)
(* Columns: dictionary encoding.                                       *)

let test_dict_roundtrip () =
  let strings = [| "red"; "green"; "red"; "blue"; "green"; "red" |] in
  let vs = Array.map (fun s -> V.String s) strings in
  let col = C.of_values vs in
  (match col with
  | C.Codes (codes, d) ->
    (* decode = identity *)
    Array.iteri
      (fun i s ->
        Alcotest.(check string) "decode" s
          (match C.get col i with V.String s' -> s' | _ -> "?"))
      strings;
    (* the dictionary is sorted, so code order is string order *)
    Alcotest.(check (list string)) "sorted dictionary"
      [ "blue"; "green"; "red" ]
      (Array.to_list d.C.values);
    for i = 0 to Array.length strings - 1 do
      for j = 0 to Array.length strings - 1 do
        let by_code = compare codes.{i} codes.{j}
        and by_string = String.compare strings.(i) strings.(j) in
        if compare by_code 0 <> compare by_string 0 then
          Alcotest.failf "code order disagrees at (%d, %d)" i j
      done
    done
  | _ -> Alcotest.fail "string column did not dictionary-encode");
  Alcotest.(check int) "distinct off the dictionary" 3 (C.distinct_count col)

let test_dict_ordered_const () =
  (* ordered comparisons against constants absent from the dictionary *)
  let col =
    C.of_values (Array.map (fun s -> V.String s) [| "b"; "d"; "f" |])
  in
  let run op c =
    match C.fill_cmp_const op col (V.String c) with
    | None -> Alcotest.fail "expected a typed kernel"
    | Some f ->
      let bits = Bytes.create 3 in
      f ~lo:0 ~len:3 bits;
      Array.to_list (C.sel_of_bits bits ~lo:0 ~len:3)
  in
  Alcotest.(check (list int)) "< c (absent)" [ 0 ] (run C.Clt "c");
  Alcotest.(check (list int)) "<= d (present)" [ 0; 1 ] (run C.Cle "d");
  Alcotest.(check (list int)) "> d (present)" [ 2 ] (run C.Cgt "d");
  Alcotest.(check (list int)) ">= e (absent)" [ 2 ] (run C.Cge "e");
  Alcotest.(check (list int)) "= e (absent)" [] (run C.Ceq "e");
  Alcotest.(check (list int)) "<> d" [ 0; 2 ] (run C.Cneq "d")

(* ------------------------------------------------------------------ *)
(* Selection vectors: empty, full, singleton.                          *)

let test_selection_edges () =
  let col = C.of_values (Array.map (fun i -> V.Int i) [| 1; 2; 3; 4; 5 |]) in
  let sel op c =
    match C.fill_cmp_const op col (V.Int c) with
    | None -> Alcotest.fail "int kernel missing"
    | Some f ->
      let bits = Bytes.create 5 in
      f ~lo:0 ~len:5 bits;
      C.sel_of_bits bits ~lo:0 ~len:5
  in
  Alcotest.(check (list int)) "empty" [] (Array.to_list (sel C.Cgt 99));
  Alcotest.(check (list int)) "full" [ 0; 1; 2; 3; 4 ]
    (Array.to_list (sel C.Cle 99));
  Alcotest.(check (list int)) "singleton" [ 2 ] (Array.to_list (sel C.Ceq 3));
  (* an empty range is legal (last batch of a multiple-of-batch input) *)
  match C.fill_cmp_const C.Ceq col (V.Int 3) with
  | Some f ->
    let bits = Bytes.create 0 in
    f ~lo:5 ~len:0 bits;
    Alcotest.(check (list int)) "empty range" []
      (Array.to_list (C.sel_of_bits bits ~lo:5 ~len:0))
  | None -> Alcotest.fail "int kernel missing"

(* A filter that keeps every row must return the input relation itself
   (no copy); one that keeps none must return an empty relation. *)
let test_filter_full_empty_via_plan () =
  forcing 1 (fun () ->
      let parse = Diagres_ra.Parser.parse in
      let full = Plan.run (Planner.plan db (parse "select[sid >= 0](Sailor)"))
      and none =
        Plan.run (Planner.plan db (parse "select[sid < 0](Sailor)"))
      in
      Testutil.check_same_rows "full selection" D.Sample_db.sailors full;
      Alcotest.(check int) "empty selection" 0 (D.Relation.cardinality none))

(* ------------------------------------------------------------------ *)
(* Batches and relations.                                              *)

let test_of_batch_canonicalizes () =
  let mk l = Array.map (fun i -> V.Int i) (Array.of_list l) in
  let tups = [| mk [ 3; 1 ]; mk [ 1; 2 ]; mk [ 3; 1 ]; mk [ 1; 1 ] |] in
  let b = D.Batch.of_tuples ~arity:2 tups in
  let schema =
    [ { D.Schema.name = "x"; ty = V.Tint };
      { D.Schema.name = "y"; ty = V.Tint } ]
  in
  let r = D.Relation.of_batch schema b in
  let expected = D.Relation.of_tuples schema (Array.to_list tups) in
  Testutil.check_same_rows "sorted + deduped" expected r;
  Alcotest.(check int) "3 distinct rows" 3 (D.Relation.cardinality r);
  (* a columnar-born relation converts back to rows on demand *)
  Alcotest.(check bool) "mem decodes" true
    (D.Relation.mem (mk [ 1; 2 ]) r);
  Alcotest.(check bool) "mem rejects" false
    (D.Relation.mem (mk [ 2; 1 ]) r)

let test_distinct_sorted_paths () =
  (* the single-column dedup has a linear fast path for already-sorted
     int columns and a hashtable path otherwise — same result required *)
  let dedup l =
    let col = D.Column.make_ints (List.length l) in
    List.iteri (fun i v -> col.{i} <- v) l;
    let b = D.Batch.make ~nrows:(List.length l) [| D.Column.Ints col |] in
    let c = D.Batch.sort_dedup b in
    List.init (D.Batch.nrows c) (fun i ->
        match (D.Batch.tuple_at c i).(0) with V.Int v -> v | _ -> assert false)
  in
  let sorted_dups = [ 1; 1; 2; 4; 4; 4; 9 ] in
  let shuffled = [ 4; 1; 9; 4; 2; 1; 4 ] in
  Alcotest.(check (list int)) "sorted input, linear path" [ 1; 2; 4; 9 ]
    (dedup sorted_dups);
  Alcotest.(check (list int)) "unsorted input, hashtable path" [ 1; 2; 4; 9 ]
    (dedup shuffled);
  Alcotest.(check (list int)) "already distinct" [ 3; 5; 8 ] (dedup [ 3; 5; 8 ]);
  Alcotest.(check (list int)) "singleton" [ 7 ] (dedup [ 7 ]);
  Alcotest.(check (list int)) "empty" [] (dedup [])

let test_tuples_array_memoized () =
  let r = D.Sample_db.sailors in
  Alcotest.(check bool) "same physical array" true
    (D.Relation.tuples_array r == D.Relation.tuples_array r);
  (* and on a columnar-born relation too *)
  let rc =
    D.Relation.of_batch (D.Relation.schema r)
      (D.Relation.batch r)
  in
  Alcotest.(check bool) "columnar-born memoized" true
    (D.Relation.tuples_array rc == D.Relation.tuples_array rc)

let test_stats_columnar_fast_path () =
  (* row-born and columnar-born views of the same rows must report the
     same statistics; the columnar side reads them off the columns *)
  List.iter
    (fun (_, r) ->
      let rc = D.Relation.of_batch (D.Relation.schema r) (D.Relation.batch r) in
      let s = D.Relation.stats r and sc = D.Relation.stats rc in
      Alcotest.(check int) "rows" s.D.Stats.rows sc.D.Stats.rows;
      Alcotest.(check (array int)) "distinct" s.D.Stats.distinct
        sc.D.Stats.distinct)
    (D.Database.relations db)

(* Late materialization: project-after-join drops columns without
   decoding them; the result must still match the naive evaluator. *)
let test_late_materialization_project_after_join () =
  let parse = Diagres_ra.Parser.parse in
  let queries =
    [ "project[sname](Sailor join Reserves)";
      "project[bid](select[rating > 7](Sailor join Reserves))";
      "project[color](Boat join Reserves)" ]
  in
  List.iter
    (fun q ->
      let e = parse q in
      let naive = Diagres_ra.Eval.eval db e in
      List.iter
        (fun domains ->
          forcing domains (fun () ->
              Testutil.check_same_rows
                (Printf.sprintf "%s at %d domains" q domains)
                naive
                (Plan.run (Planner.plan db e))))
        [ 1; 4 ])
    queries

(* ------------------------------------------------------------------ *)
(* Telemetry wiring.                                                   *)

let test_counters () =
  let batches0 = T.counter_named "columnar.batches"
  and rows0 = T.counter_named "columnar.rows" in
  forcing 1 (fun () ->
      let e = Diagres_ra.Parser.parse "select[rating = 10](Sailor)" in
      ignore (Plan.run (Planner.plan db e) : D.Relation.t));
  Alcotest.(check bool) "batches counted" true
    (T.counter_named "columnar.batches" > batches0);
  Alcotest.(check bool) "rows counted" true
    (T.counter_named "columnar.rows" > rows0);
  (* a division over columnar inputs is a counted row-mode fallback *)
  let fb0 = T.counter_named "columnar.fallback_row_mode" in
  forcing 1 (fun () ->
      let e =
        Diagres_ra.Parser.parse
          "project[sid, bid](Reserves) div project[bid](Boat)"
      in
      ignore (Plan.run (Planner.plan db e) : D.Relation.t));
  Alcotest.(check bool) "fallback counted" true
    (T.counter_named "columnar.fallback_row_mode" > fb0)

(* ------------------------------------------------------------------ *)
(* The 500-query differential: columnar ≡ row ≡ naive at 1 and 4       *)
(* domains, with forced-small batches.                                 *)

let fuzz_n =
  match Sys.getenv_opt "DIAGRES_FUZZ_N" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 500)
  | None -> 500

let test_differential () =
  let st = Random.State.make [| 0xc01; 2026 |] in
  for i = 1 to fuzz_n do
    let e = Q.gen_ra st schemas 3 in
    let naive = Diagres_ra.Eval.eval db e in
    List.iter
      (fun domains ->
        let run ~columnar =
          forcing ~columnar domains (fun () ->
              Plan.run (Planner.plan db e))
        in
        let vec = run ~columnar:true and row = run ~columnar:false in
        if not (D.Relation.same_rows naive vec) then
          Alcotest.failf "#%d at %d domains: columnar diverges from naive:\n%s"
            i domains (Diagres_ra.Pretty.ascii e);
        if not (D.Relation.same_rows naive row) then
          Alcotest.failf "#%d at %d domains: row mode diverges from naive:\n%s"
            i domains (Diagres_ra.Pretty.ascii e))
      [ 1; 4 ]
  done

(* QCheck variant over Testutil's generator: different query shapes
   (products with renamed-apart sides, disjunctions), with shrinking. *)
let prop_columnar_matches_row =
  QCheck.Test.make ~name:"columnar = row = naive (1/4 domains)" ~count:120
    (Testutil.arbitrary_ra ())
    (fun e ->
      let naive = Diagres_ra.Eval.eval db e in
      List.for_all
        (fun domains ->
          let run ~columnar =
            forcing ~columnar domains (fun () ->
                Plan.run (Planner.plan db e))
          in
          D.Relation.same_rows naive (run ~columnar:true)
          && D.Relation.same_rows naive (run ~columnar:false))
        [ 1; 4 ])

let () =
  Alcotest.run "columnar"
    [ ( "columns",
        [ Alcotest.test_case "dictionary roundtrip" `Quick test_dict_roundtrip;
          Alcotest.test_case "ordered string consts" `Quick
            test_dict_ordered_const;
          Alcotest.test_case "selection edges" `Quick test_selection_edges;
          Alcotest.test_case "full/empty filters" `Quick
            test_filter_full_empty_via_plan ] );
      ( "relations",
        [ Alcotest.test_case "of_batch canonicalizes" `Quick
            test_of_batch_canonicalizes;
          Alcotest.test_case "distinct_sorted paths" `Quick
            test_distinct_sorted_paths;
          Alcotest.test_case "tuples_array memoized" `Quick
            test_tuples_array_memoized;
          Alcotest.test_case "stats fast path" `Quick
            test_stats_columnar_fast_path;
          Alcotest.test_case "late materialization" `Quick
            test_late_materialization_project_after_join ] );
      ( "telemetry",
        [ Alcotest.test_case "columnar counters" `Quick test_counters ] );
      ( "differential",
        [ Alcotest.test_case "500 queries, columnar = row = naive" `Slow
            test_differential;
          Testutil.qtest prop_columnar_matches_row ] ) ]
