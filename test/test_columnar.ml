(* Columnar substrate + vectorized operators.

   Three layers of coverage:

   - unit tests for the storage pieces: dictionary encoding roundtrips
     (sorted codes, so code order = string order), the word-bitmap
     kernels (blocked comparison fillers, wand/wor/wnot, popcount,
     word-skipping selection vectors) checked bit-for-bit against the
     row semantics at unaligned offsets and lengths, the scratch pool,
     batch canonicalization, deferred selection views, and the columnar
     statistics fast path;

   - vectorized division (sorted-group merge) against the reference
     evaluator, including the empty-divisor caveat and a nullary
     quotient;

   - a qgen-driven 500-query differential: for each generated well-typed
     RA query, the vectorized planned evaluator — with deferred gathers
     on AND off — the row-mode planned evaluator, and the naive
     tree-walking evaluator must agree — at 1 and at 4 domains, so the
     batched kernels also run through the domain pool. *)

module D = Diagres_data
module C = D.Column
module V = D.Value
module F = Diagres_logic.Fol
module Plan = Diagres_ra.Plan
module Planner = Diagres_ra.Planner
module Pool = Diagres_pool.Pool
module T = Diagres_telemetry.Telemetry
module Q = Diagres.Qgen

let db = Testutil.db
let schemas = Testutil.schemas

(* Run [f] with the pool at [domains] and the vectorized operators forced
   on tiny inputs: [vec_threshold = 0] marks every filter/project/join
   vectorized, [batch_rows = 3] forces multi-batch execution on the sample
   relations (the filter rounds it up to one 63-row word per batch), and
   [par_threshold = 0] routes the batches through the pool.  [columnar]
   toggles the master switch, so the same forcing covers both the
   vectorized and the row fallback paths; [defer] crosses late
   materialization (deferred selection views) against eager gathers. *)
let forcing ?(columnar = true) ?(defer = true) domains f =
  let old_size = Pool.size () in
  let old_thr = !Plan.par_threshold and old_morsel = !Plan.morsel_size in
  let old_vec = !Plan.vec_threshold and old_batch = !Plan.batch_rows in
  let old_col = !Plan.columnar_enabled in
  let old_defer = !Plan.defer_gathers in
  Pool.set_size domains;
  Plan.par_threshold := 0;
  Plan.morsel_size := 3;
  Plan.vec_threshold := 0;
  Plan.batch_rows := 3;
  Plan.columnar_enabled := columnar;
  Plan.defer_gathers := defer;
  Fun.protect
    ~finally:(fun () ->
      Pool.set_size old_size;
      Plan.par_threshold := old_thr;
      Plan.morsel_size := old_morsel;
      Plan.vec_threshold := old_vec;
      Plan.batch_rows := old_batch;
      Plan.columnar_enabled := old_col;
      Plan.defer_gathers := old_defer)
    f

(* ------------------------------------------------------------------ *)
(* Columns: dictionary encoding.                                       *)

let test_dict_roundtrip () =
  let strings = [| "red"; "green"; "red"; "blue"; "green"; "red" |] in
  let vs = Array.map (fun s -> V.String s) strings in
  let col = C.of_values vs in
  (match col with
  | C.Codes (codes, d) ->
    (* decode = identity *)
    Array.iteri
      (fun i s ->
        Alcotest.(check string) "decode" s
          (match C.get col i with V.String s' -> s' | _ -> "?"))
      strings;
    (* the dictionary is sorted, so code order is string order *)
    Alcotest.(check (list string)) "sorted dictionary"
      [ "blue"; "green"; "red" ]
      (Array.to_list d.C.values);
    for i = 0 to Array.length strings - 1 do
      for j = 0 to Array.length strings - 1 do
        let by_code = compare codes.{i} codes.{j}
        and by_string = String.compare strings.(i) strings.(j) in
        if compare by_code 0 <> compare by_string 0 then
          Alcotest.failf "code order disagrees at (%d, %d)" i j
      done
    done
  | _ -> Alcotest.fail "string column did not dictionary-encode");
  Alcotest.(check int) "distinct off the dictionary" 3 (C.distinct_count col)

(* run a const-comparison filler over [lo, lo+len) and return the
   selected absolute rows *)
let run_const col op c ~lo ~len =
  match C.fill_cmp_const op col c with
  | None -> Alcotest.fail "expected a typed kernel"
  | Some f ->
    let bits = Array.make (max 1 (C.words_for len)) 0 in
    f ~lo ~len bits;
    Array.to_list (C.sel_of_bits bits ~lo ~len)

let test_dict_ordered_const () =
  (* ordered comparisons against constants absent from the dictionary *)
  let col =
    C.of_values (Array.map (fun s -> V.String s) [| "b"; "d"; "f" |])
  in
  let run op c = run_const col op (V.String c) ~lo:0 ~len:3 in
  Alcotest.(check (list int)) "< c (absent)" [ 0 ] (run C.Clt "c");
  Alcotest.(check (list int)) "<= d (present)" [ 0; 1 ] (run C.Cle "d");
  Alcotest.(check (list int)) "> d (present)" [ 2 ] (run C.Cgt "d");
  Alcotest.(check (list int)) ">= e (absent)" [ 2 ] (run C.Cge "e");
  Alcotest.(check (list int)) "= e (absent)" [] (run C.Ceq "e");
  Alcotest.(check (list int)) "<> d" [ 0; 2 ] (run C.Cneq "d")

(* ------------------------------------------------------------------ *)
(* Word-bitmap kernels vs the row semantics.                           *)

let all_ops = [ C.Clt; C.Cle; C.Ceq; C.Cneq; C.Cge; C.Cgt ]

let fol_of : C.cmp -> F.cmp = function
  | C.Ceq -> F.Eq
  | C.Cneq -> F.Neq
  | C.Clt -> F.Lt
  | C.Cle -> F.Le
  | C.Cgt -> F.Gt
  | C.Cge -> F.Ge

(* Windows that exercise word alignment: full array (not a multiple of
   63), exactly one word, straddling a word boundary at an unaligned lo,
   a short tail, an empty range, and a 63-aligned interior word. *)
let windows n =
  [ (0, n); (0, min n 63); (5, min (n - 5) 70); (n - 4, 4); (5, 0);
    (63, min (n - 63) 63) ]

(* The specification: bit k of the filled window is set iff the decoded
   row [lo + k] satisfies [Fol.cmp_eval op row const] — the exact
   semantics the row evaluator and the generic fallback use. *)
let check_against_rows name col op (c : V.t) =
  let n = C.length col in
  List.iter
    (fun (lo, len) ->
      let got = run_const col op c ~lo ~len in
      let expected = ref [] in
      for i = lo + len - 1 downto lo do
        if F.cmp_eval (fol_of op) (C.get col i) c then
          expected := i :: !expected
      done;
      Alcotest.(check (list int))
        (Printf.sprintf "%s lo=%d len=%d" name lo len)
        !expected got)
    (windows n)

let test_int_kernel_vs_rows () =
  (* 130 rows: not a multiple of 63, spans three words *)
  let col =
    C.of_values (Array.init 130 (fun i -> V.Int ((i * 7 mod 29) - 11)))
  in
  List.iter
    (fun op ->
      List.iter
        (fun c -> check_against_rows "int" col op (V.Int c))
        [ -11; 0; 5; 99 ])
    all_ops

let test_float_kernel_vs_rows () =
  (* nan rows must follow the Value.compare total order (nan lowest),
     which the native-comparison fast paths emulate by negation *)
  let specials = [| Float.nan; Float.neg_infinity; -1.5; 0.; 2.5; Float.infinity |] in
  let col =
    C.of_values (Array.init 130 (fun i -> V.Float specials.(i mod 6)))
  in
  List.iter
    (fun op ->
      List.iter
        (fun c -> check_against_rows "float" col op (V.Float c))
        [ 0.; 2.5; Float.nan; Float.neg_infinity ])
    all_ops

let test_cols_kernel_vs_rows () =
  let a = C.of_values (Array.init 130 (fun i -> V.Int (i mod 7)))
  and b = C.of_values (Array.init 130 (fun i -> V.Int ((i * 3) mod 7))) in
  List.iter
    (fun op ->
      match C.fill_cmp_cols op a b with
      | None -> Alcotest.fail "int col-col kernel missing"
      | Some f ->
        List.iter
          (fun (lo, len) ->
            let bits = Array.make (max 1 (C.words_for len)) 0 in
            f ~lo ~len bits;
            let got = Array.to_list (C.sel_of_bits bits ~lo ~len) in
            let expected = ref [] in
            for i = lo + len - 1 downto lo do
              if F.cmp_eval (fol_of op) (C.get a i) (C.get b i) then
                expected := i :: !expected
            done;
            Alcotest.(check (list int))
              (Printf.sprintf "cols lo=%d len=%d" lo len)
              !expected got)
          (windows 130))
    all_ops

let test_word_combiners () =
  (* wand / wor / wnot against per-row boolean algebra, on a length that
     ends mid-word so the wnot tail re-mask is exercised *)
  let n = 130 in
  let p i = i mod 3 = 0 and q i = i mod 5 <> 1 in
  let fill pred =
    let bits = Array.make (C.words_for n) 0 in
    (C.fill_with (fun i -> pred i)) ~lo:0 ~len:n bits;
    bits
  in
  let sel bits = Array.to_list (C.sel_of_bits bits ~lo:0 ~len:n) in
  let expect pred =
    List.filter pred (List.init n Fun.id)
  in
  let band = fill p in
  C.wand band (fill q) (C.words_for n);
  Alcotest.(check (list int)) "wand" (expect (fun i -> p i && q i)) (sel band);
  let bor = fill p in
  C.wor bor (fill q) (C.words_for n);
  Alcotest.(check (list int)) "wor" (expect (fun i -> p i || q i)) (sel bor);
  let bnot = fill p in
  C.wnot bnot ~len:n;
  Alcotest.(check (list int)) "wnot" (expect (fun i -> not (p i))) (sel bnot);
  (* the phantom-bits-zero invariant survives complement: counts add up *)
  Alcotest.(check int) "wnot count"
    (n - C.count_bits (fill p) ~len:n)
    (C.count_bits bnot ~len:n)

let test_popcount () =
  Alcotest.(check int) "0" 0 (C.popcount 0);
  Alcotest.(check int) "full word" 63 (C.popcount C.full_word);
  Alcotest.(check int) "sign bit" 1 (C.popcount min_int);
  Alcotest.(check int) "one" 1 (C.popcount 1);
  let naive x =
    let n = ref 0 and x = ref x in
    while !x <> 0 do
      n := !n + (!x land 1);
      x := !x lsr 1
    done;
    !n
  in
  let st = Random.State.make [| 0xbeef |] in
  for _ = 1 to 1000 do
    let x = Random.State.bits64 st |> Int64.to_int in
    Alcotest.(check int) "random word" (naive x) (C.popcount x)
  done

let test_selection_edges () =
  let col = C.of_values (Array.map (fun i -> V.Int i) [| 1; 2; 3; 4; 5 |]) in
  let sel op c = run_const col op (V.Int c) ~lo:0 ~len:5 in
  Alcotest.(check (list int)) "empty" [] (sel C.Cgt 99);
  Alcotest.(check (list int)) "full" [ 0; 1; 2; 3; 4 ] (sel C.Cle 99);
  Alcotest.(check (list int)) "singleton" [ 2 ] (sel C.Ceq 3);
  (* an empty range is legal (last batch of a multiple-of-batch input) *)
  Alcotest.(check (list int)) "empty range" []
    (run_const col C.Ceq (V.Int 3) ~lo:5 ~len:0);
  (* the all-ones unrolled path: a full word plus an unaligned tail *)
  let big = C.of_values (Array.init 100 (fun i -> V.Int i)) in
  Alcotest.(check (list int)) "all-ones words"
    (List.init 100 Fun.id)
    (run_const big C.Cge (V.Int 0) ~lo:0 ~len:100)

let test_scratch_pool () =
  (* nested holds are distinct buffers (the pool is a stack)... *)
  C.Scratch.with_words ~len:200 (fun a ->
      C.Scratch.with_words ~len:200 (fun b ->
          Alcotest.(check bool) "nested buffers distinct" false (a == b)));
  (* ...and sequential uses reuse the same buffer (identity probe only:
     the buffer is never read after release) *)
  let probe = ref [||] in
  C.Scratch.with_words ~len:100 (fun a -> probe := a);
  C.Scratch.with_words ~len:100 (fun b ->
      Alcotest.(check bool) "sequential reuse" true (b == !probe));
  (* a too-small pooled buffer is replaced, never resized in place *)
  C.Scratch.with_ints 5 (fun _ -> ());
  C.Scratch.with_ints 10_000 (fun b ->
      Alcotest.(check bool) "grown" true (Array.length b >= 10_000))

(* A filter that keeps every row must return the input relation itself
   (no copy); one that keeps none must return an empty relation. *)
let test_filter_full_empty_via_plan () =
  forcing 1 (fun () ->
      let parse = Diagres_ra.Parser.parse in
      let full = Plan.run (Planner.plan db (parse "select[sid >= 0](Sailor)"))
      and none =
        Plan.run (Planner.plan db (parse "select[sid < 0](Sailor)"))
      in
      Testutil.check_same_rows "full selection" D.Sample_db.sailors full;
      Alcotest.(check int) "empty selection" 0 (D.Relation.cardinality none))

(* ------------------------------------------------------------------ *)
(* Batches and relations.                                              *)

let test_of_batch_canonicalizes () =
  let mk l = Array.map (fun i -> V.Int i) (Array.of_list l) in
  let tups = [| mk [ 3; 1 ]; mk [ 1; 2 ]; mk [ 3; 1 ]; mk [ 1; 1 ] |] in
  let b = D.Batch.of_tuples ~arity:2 tups in
  let schema =
    [ { D.Schema.name = "x"; ty = V.Tint };
      { D.Schema.name = "y"; ty = V.Tint } ]
  in
  let r = D.Relation.of_batch schema b in
  let expected = D.Relation.of_tuples schema (Array.to_list tups) in
  Testutil.check_same_rows "sorted + deduped" expected r;
  Alcotest.(check int) "3 distinct rows" 3 (D.Relation.cardinality r);
  (* a columnar-born relation converts back to rows on demand *)
  Alcotest.(check bool) "mem decodes" true
    (D.Relation.mem (mk [ 1; 2 ]) r);
  Alcotest.(check bool) "mem rejects" false
    (D.Relation.mem (mk [ 2; 1 ]) r)

(* Deferred selection views: of_view must behave exactly like the gather
   it postpones, for every consumer path (cardinality, tuples, mem,
   batch), both canonical and not. *)
let test_deferred_view_semantics () =
  let n = 130 in
  let b =
    D.Batch.make ~nrows:n
      [| C.of_values (Array.init n (fun i -> V.Int i));
         C.of_values (Array.init n (fun i -> V.Int (i mod 4))) |]
  in
  let schema =
    [ { D.Schema.name = "x"; ty = V.Tint };
      { D.Schema.name = "y"; ty = V.Tint } ]
  in
  let bits = Array.make (C.words_for n) 0 in
  (C.fill_with (fun i -> i mod 3 = 0)) ~lo:0 ~len:n bits;
  let count = C.count_bits bits ~len:n in
  let v = D.Relation.of_view ~count schema b bits in
  (* cardinality of a canonical view never gathers *)
  Alcotest.(check int) "view cardinality" count (D.Relation.cardinality v);
  (match D.Relation.view_sel v with
  | None -> Alcotest.fail "canonical view must expose its selection"
  | Some (base, sel) ->
    Alcotest.(check bool) "view base shared" true (base == b);
    Alcotest.(check int) "sel length" count (Array.length sel));
  let eager = D.Relation.of_batch schema (D.Batch.gather_bits b bits) in
  Alcotest.(check bool) "view = eager" true (D.Relation.same_rows eager v);
  Alcotest.(check bool) "mem through view" true
    (D.Relation.mem [| V.Int 3; V.Int 3 |] v);
  (* a non-canonical view (here: duplicates from a projection) dedups at
     materialization *)
  let bits2 = Array.make (C.words_for n) 0 in
  (C.fill_with (fun i -> i < 10)) ~lo:0 ~len:n bits2;
  let ys = D.Batch.columns b [| 1 |] in
  let vy =
    D.Relation.of_view ~canonical:false ~count:10
      [ { D.Schema.name = "y"; ty = V.Tint } ]
      ys bits2
  in
  Alcotest.(check bool) "non-canonical view hides sel" true
    (D.Relation.view_sel vy = None);
  Alcotest.(check int) "deduped at materialization" 4
    (D.Relation.cardinality vy)

let test_distinct_sorted_paths () =
  (* the single-column dedup has a linear fast path for already-sorted
     int columns and a hashtable path otherwise — same result required *)
  let dedup l =
    let col = D.Column.make_ints (List.length l) in
    List.iteri (fun i v -> col.{i} <- v) l;
    let b = D.Batch.make ~nrows:(List.length l) [| D.Column.Ints col |] in
    let c = D.Batch.sort_dedup b in
    List.init (D.Batch.nrows c) (fun i ->
        match (D.Batch.tuple_at c i).(0) with V.Int v -> v | _ -> assert false)
  in
  let sorted_dups = [ 1; 1; 2; 4; 4; 4; 9 ] in
  let shuffled = [ 4; 1; 9; 4; 2; 1; 4 ] in
  Alcotest.(check (list int)) "sorted input, linear path" [ 1; 2; 4; 9 ]
    (dedup sorted_dups);
  Alcotest.(check (list int)) "unsorted input, hashtable path" [ 1; 2; 4; 9 ]
    (dedup shuffled);
  Alcotest.(check (list int)) "already distinct" [ 3; 5; 8 ] (dedup [ 3; 5; 8 ]);
  Alcotest.(check (list int)) "singleton" [ 7 ] (dedup [ 7 ]);
  Alcotest.(check (list int)) "empty" [] (dedup [])

let test_tuples_array_memoized () =
  let r = D.Sample_db.sailors in
  Alcotest.(check bool) "same physical array" true
    (D.Relation.tuples_array r == D.Relation.tuples_array r);
  (* and on a columnar-born relation too *)
  let rc =
    D.Relation.of_batch (D.Relation.schema r)
      (D.Relation.batch r)
  in
  Alcotest.(check bool) "columnar-born memoized" true
    (D.Relation.tuples_array rc == D.Relation.tuples_array rc)

let test_stats_columnar_fast_path () =
  (* row-born and columnar-born views of the same rows must report the
     same statistics; the columnar side reads them off the columns *)
  List.iter
    (fun (_, r) ->
      let rc = D.Relation.of_batch (D.Relation.schema r) (D.Relation.batch r) in
      let s = D.Relation.stats r and sc = D.Relation.stats rc in
      Alcotest.(check int) "rows" s.D.Stats.rows sc.D.Stats.rows;
      Alcotest.(check (array int)) "distinct" s.D.Stats.distinct
        sc.D.Stats.distinct)
    (D.Database.relations db)

(* Late materialization: project-after-join drops columns without
   decoding them; the result must still match the naive evaluator. *)
let test_late_materialization_project_after_join () =
  let parse = Diagres_ra.Parser.parse in
  let queries =
    [ "project[sname](Sailor join Reserves)";
      "project[bid](select[rating > 7](Sailor join Reserves))";
      "project[color](Boat join Reserves)" ]
  in
  List.iter
    (fun q ->
      let e = parse q in
      let naive = Diagres_ra.Eval.eval db e in
      List.iter
        (fun domains ->
          List.iter
            (fun defer ->
              forcing ~defer domains (fun () ->
                  Testutil.check_same_rows
                    (Printf.sprintf "%s at %d domains defer=%b" q domains
                       defer)
                    naive
                    (Plan.run (Planner.plan db e))))
            [ true; false ])
        [ 1; 4 ])
    queries

(* ------------------------------------------------------------------ *)
(* Vectorized division.                                                *)

let test_division_vec () =
  let parse = Diagres_ra.Parser.parse in
  let queries =
    [ (* Q3 of the tutorial: sailors who reserved all red boats *)
      "project[sid, bid](Reserves) div project[bid](select[color = 'red'](Boat))";
      "project[sid, bid](Reserves) div project[bid](Boat)";
      (* the classic caveat: an empty divisor keeps every candidate *)
      "project[sid, bid](Reserves) div project[bid](select[bid < 0](Boat))";
      (* multi-column keep *)
      "Reserves div project[day](Reserves)" ]
  in
  List.iter
    (fun q ->
      let e = parse q in
      let naive = Diagres_ra.Eval.eval db e in
      List.iter
        (fun columnar ->
          forcing ~columnar 1 (fun () ->
              Testutil.check_same_rows
                (Printf.sprintf "%s columnar=%b" q columnar)
                naive
                (Plan.run (Planner.plan db e))))
        [ true; false ])
    queries

(* ------------------------------------------------------------------ *)
(* Telemetry wiring.                                                   *)

let test_counters () =
  let batches0 = T.counter_named "columnar.batches"
  and rows0 = T.counter_named "columnar.rows" in
  forcing 1 (fun () ->
      let e = Diagres_ra.Parser.parse "select[rating = 10](Sailor)" in
      ignore (Plan.run (Planner.plan db e) : D.Relation.t));
  Alcotest.(check bool) "batches counted" true
    (T.counter_named "columnar.batches" > batches0);
  Alcotest.(check bool) "rows counted" true
    (T.counter_named "columnar.rows" > rows0);
  (* a nested-loop join over columnar inputs is a counted row-mode
     fallback *)
  let fb0 = T.counter_named "columnar.fallback_row_mode" in
  forcing 1 (fun () ->
      let e =
        Diagres_ra.Parser.parse
          "select[rating > 7](Sailor) * select[bid >= 0](Boat)"
      in
      ignore (Plan.run (Planner.plan db e) : D.Relation.t));
  Alcotest.(check bool) "fallback counted" true
    (T.counter_named "columnar.fallback_row_mode" > fb0);
  (* division is vectorized now: no fallback on the bench-suite shapes *)
  let fb1 = T.counter_named "columnar.fallback_row_mode" in
  forcing 1 (fun () ->
      let e =
        Diagres_ra.Parser.parse
          "project[sid, bid](Reserves) div project[bid](Boat)"
      in
      ignore (Plan.run (Planner.plan db e) : D.Relation.t));
  Alcotest.(check int) "division does not fall back" fb1
    (T.counter_named "columnar.fallback_row_mode");
  (* a fused filter chain defers its gathers and counts them *)
  let d0 = T.counter_named "columnar.gathers_deferred" in
  forcing 1 (fun () ->
      let e =
        Diagres_ra.Parser.parse
          "select[rating > 3](select[age > 20.0](Sailor))"
      in
      let r = Plan.run (Planner.plan db e) in
      let naive =
        Diagres_ra.Eval.eval db
          (Diagres_ra.Parser.parse
             "select[rating > 3](select[age > 20.0](Sailor))")
      in
      Testutil.check_same_rows "fused chain" naive r);
  Alcotest.(check bool) "gathers deferred counted" true
    (T.counter_named "columnar.gathers_deferred" > d0);
  (* with deferral off, the same plan defers nothing *)
  let d1 = T.counter_named "columnar.gathers_deferred" in
  forcing ~defer:false 1 (fun () ->
      let e =
        Diagres_ra.Parser.parse
          "select[rating > 3](select[age > 20.0](Sailor))"
      in
      ignore (Plan.run (Planner.plan db e) : D.Relation.t));
  Alcotest.(check int) "eager mode defers nothing" d1
    (T.counter_named "columnar.gathers_deferred")

(* ------------------------------------------------------------------ *)
(* The 500-query differential: columnar (deferred and eager) ≡ row ≡   *)
(* naive at 1 and 4 domains, with forced-small batches.                *)

let fuzz_n =
  match Sys.getenv_opt "DIAGRES_FUZZ_N" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 500)
  | None -> 500

let test_differential () =
  let st = Random.State.make [| 0xc01; 2026 |] in
  for i = 1 to fuzz_n do
    let e = Q.gen_ra st schemas 3 in
    let naive = Diagres_ra.Eval.eval db e in
    List.iter
      (fun domains ->
        let run ~columnar ~defer =
          forcing ~columnar ~defer domains (fun () ->
              Plan.run (Planner.plan db e))
        in
        let deferred = run ~columnar:true ~defer:true
        and eager = run ~columnar:true ~defer:false
        and row = run ~columnar:false ~defer:true in
        if not (D.Relation.same_rows naive deferred) then
          Alcotest.failf
            "#%d at %d domains: deferred columnar diverges from naive:\n%s" i
            domains (Diagres_ra.Pretty.ascii e);
        if not (D.Relation.same_rows naive eager) then
          Alcotest.failf
            "#%d at %d domains: eager columnar diverges from naive:\n%s" i
            domains (Diagres_ra.Pretty.ascii e);
        if not (D.Relation.same_rows naive row) then
          Alcotest.failf "#%d at %d domains: row mode diverges from naive:\n%s"
            i domains (Diagres_ra.Pretty.ascii e))
      [ 1; 4 ]
  done

(* QCheck variant over Testutil's generator: different query shapes
   (products with renamed-apart sides, disjunctions), with shrinking. *)
let prop_columnar_matches_row =
  QCheck.Test.make ~name:"columnar (deferred/eager) = row = naive (1/4 domains)"
    ~count:120
    (Testutil.arbitrary_ra ())
    (fun e ->
      let naive = Diagres_ra.Eval.eval db e in
      List.for_all
        (fun domains ->
          let run ~columnar ~defer =
            forcing ~columnar ~defer domains (fun () ->
                Plan.run (Planner.plan db e))
          in
          D.Relation.same_rows naive (run ~columnar:true ~defer:true)
          && D.Relation.same_rows naive (run ~columnar:true ~defer:false)
          && D.Relation.same_rows naive (run ~columnar:false ~defer:true))
        [ 1; 4 ])

let () =
  Alcotest.run "columnar"
    [ ( "columns",
        [ Alcotest.test_case "dictionary roundtrip" `Quick test_dict_roundtrip;
          Alcotest.test_case "ordered string consts" `Quick
            test_dict_ordered_const ] );
      ( "kernels",
        [ Alcotest.test_case "int kernels = row semantics" `Quick
            test_int_kernel_vs_rows;
          Alcotest.test_case "float kernels (nan) = row semantics" `Quick
            test_float_kernel_vs_rows;
          Alcotest.test_case "col-col kernels = row semantics" `Quick
            test_cols_kernel_vs_rows;
          Alcotest.test_case "wand/wor/wnot" `Quick test_word_combiners;
          Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "selection edges" `Quick test_selection_edges;
          Alcotest.test_case "scratch pool" `Quick test_scratch_pool;
          Alcotest.test_case "full/empty filters" `Quick
            test_filter_full_empty_via_plan ] );
      ( "relations",
        [ Alcotest.test_case "of_batch canonicalizes" `Quick
            test_of_batch_canonicalizes;
          Alcotest.test_case "deferred view semantics" `Quick
            test_deferred_view_semantics;
          Alcotest.test_case "distinct_sorted paths" `Quick
            test_distinct_sorted_paths;
          Alcotest.test_case "tuples_array memoized" `Quick
            test_tuples_array_memoized;
          Alcotest.test_case "stats fast path" `Quick
            test_stats_columnar_fast_path;
          Alcotest.test_case "late materialization" `Quick
            test_late_materialization_project_after_join ] );
      ( "division",
        [ Alcotest.test_case "sorted-group merge = naive" `Quick
            test_division_vec ] );
      ( "telemetry",
        [ Alcotest.test_case "columnar counters" `Quick test_counters ] );
      ( "differential",
        [ Alcotest.test_case "500 queries, deferred = eager = row = naive"
            `Slow test_differential;
          Testutil.qtest prop_columnar_matches_row ] ) ]
