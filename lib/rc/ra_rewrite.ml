(** Structural RA rewrites used as translation front-ends:

    - {!eliminate_division} replaces ÷ by its π/×/− definition, and
    - {!pull_unions} hoists every ∪ to the top, yielding a list of
      union-free expressions.

    Union-free RA is what a single range-coupled TRC query — and hence a
    single Relational-Diagram panel — can express; the list length is the
    number of panels a diagram needs (the tutorial's Part-5 point about
    disjunction). *)

module A = Diagres_ra.Ast
module T = Diagres_ra.Typecheck

(** [A ÷ B  =  π_K(A) − π_K(π_{attrs A}(π_K(A) × B) − A)] where K is the
    quotient schema.  Requires the typing environment to compute K. *)
let rec eliminate_division env (e : A.t) : A.t =
  match e with
  | A.Rel _ -> e
  | A.Empty e1 -> A.Empty (eliminate_division env e1)
  | A.Select (p, e1) -> A.Select (p, eliminate_division env e1)
  | A.Project (attrs, e1) -> A.Project (attrs, eliminate_division env e1)
  | A.Rename (pairs, e1) -> A.Rename (pairs, eliminate_division env e1)
  | A.Product (a, b) ->
    A.Product (eliminate_division env a, eliminate_division env b)
  | A.Join (a, b) -> A.Join (eliminate_division env a, eliminate_division env b)
  | A.Theta_join (p, a, b) ->
    A.Theta_join (p, eliminate_division env a, eliminate_division env b)
  | A.Union (a, b) ->
    A.Union (eliminate_division env a, eliminate_division env b)
  | A.Inter (a, b) ->
    A.Inter (eliminate_division env a, eliminate_division env b)
  | A.Diff (a, b) -> A.Diff (eliminate_division env a, eliminate_division env b)
  | A.Division (a, b) ->
    let a = eliminate_division env a and b = eliminate_division env b in
    let sa = T.infer env a and sb = T.infer env b in
    let b_names = Diagres_data.Schema.names sb in
    let keep =
      List.filter
        (fun n -> not (List.mem n b_names))
        (Diagres_data.Schema.names sa)
    in
    let candidates = A.Project (keep, a) in
    let all = Diagres_data.Schema.names sa in
    let missing = A.Diff (A.Project (all, A.Product (candidates, b)), a) in
    A.Diff (candidates, A.Project (keep, missing))

(* ---------------- selection-predicate DNF ---------------- *)

let pred_false =
  A.Cmp (Diagres_logic.Fol.Neq, A.Const (Diagres_data.Value.Int 0),
         A.Const (Diagres_data.Value.Int 0))

let rec pred_nnf = function
  | (A.Cmp _ | A.Ptrue) as p -> p
  | A.And (p, q) -> A.And (pred_nnf p, pred_nnf q)
  | A.Or (p, q) -> A.Or (pred_nnf p, pred_nnf q)
  | A.Not p -> pred_nnf_neg p

and pred_nnf_neg = function
  | A.Cmp (op, x, y) -> A.Cmp (Diagres_logic.Fol.cmp_negate op, x, y)
  | A.Ptrue -> pred_false
  | A.And (p, q) -> A.Or (pred_nnf_neg p, pred_nnf_neg q)
  | A.Or (p, q) -> A.And (pred_nnf_neg p, pred_nnf_neg q)
  | A.Not p -> pred_nnf p

(** Disjunction-free conjunctions whose union is the predicate:
    σ[p ∨ q](e) = σ[p](e) ∪ σ[q](e). *)
let pred_disjuncts (p : A.pred) : A.pred list =
  let rec dnf = function
    | A.Or (p, q) -> dnf p @ dnf q
    | A.And (p, q) ->
      List.concat_map (fun x -> List.map (fun y -> A.And (x, y)) (dnf q)) (dnf p)
    | (A.Cmp _ | A.Ptrue) as atom -> [ atom ]
    | A.Not _ -> assert false
  in
  dnf (pred_nnf p)

(** Hoist unions through every other operator.  [−] distributes on the left
    only; a union on the {e right} of [−] becomes iterated difference.
    Unions under ÷ do not distribute in general, so division nodes are
    eliminated on the fly. *)
let rec pull_unions env (e : A.t) : A.t list =
  match e with
  | A.Rel _ -> [ e ]
  (* ∅ is already union-free; keep it as a single panel *)
  | A.Empty _ -> [ e ]
  | A.Select (p, e1) ->
    let forms = pull_unions env e1 in
    List.concat_map
      (fun disjunct -> List.map (fun x -> A.Select (disjunct, x)) forms)
      (pred_disjuncts p)
  | A.Project (attrs, e1) ->
    List.map (fun x -> A.Project (attrs, x)) (pull_unions env e1)
  | A.Rename (pairs, e1) ->
    List.map (fun x -> A.Rename (pairs, x)) (pull_unions env e1)
  | A.Product (a, b) ->
    List.concat_map
      (fun x -> List.map (fun y -> A.Product (x, y)) (pull_unions env b))
      (pull_unions env a)
  | A.Join (a, b) ->
    List.concat_map
      (fun x -> List.map (fun y -> A.Join (x, y)) (pull_unions env b))
      (pull_unions env a)
  | A.Theta_join (p, a, b) ->
    List.concat_map
      (fun disjunct ->
        List.concat_map
          (fun x ->
            List.map
              (fun y -> A.Theta_join (disjunct, x, y))
              (pull_unions env b))
          (pull_unions env a))
      (pred_disjuncts p)
  | A.Union (a, b) -> pull_unions env a @ pull_unions env b
  | A.Inter (a, b) ->
    List.concat_map
      (fun x -> List.map (fun y -> A.Inter (x, y)) (pull_unions env b))
      (pull_unions env a)
  | A.Diff (a, b) ->
    (* (⋃ aᵢ) − (⋃ bⱼ) = ⋃ᵢ ((aᵢ − b₁) − b₂ − …) *)
    let bs = pull_unions env b in
    List.map
      (fun x -> List.fold_left (fun acc y -> A.Diff (acc, y)) x bs)
      (pull_unions env a)
  | A.Division _ -> pull_unions env (eliminate_division env e)

(** Full normalization: divisions eliminated, unions pulled up. *)
let union_free_forms env e = pull_unions env (eliminate_division env e)

(** Number of union-free "panels" an expression needs — the diagram-count
    statistic reported by experiment E6. *)
let panel_count env e = List.length (union_free_forms env e)
