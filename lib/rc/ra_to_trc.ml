(** RA → range-coupled TRC.

    Works on union-free expressions (after {!Ra_rewrite.union_free_forms});
    the public entry point returns one TRC query per union-free form — the
    "panels" of a Relational Diagram.  Each subexpression is represented by
    free tuple-variable ranges, a body formula, and one output term per
    column. *)

module A = Diagres_ra.Ast
module N = Diagres_logic.Names

exception Union_not_supported

type rep = {
  ranges : (string * string) list;
  body : Trc.formula;
  cols : (string * Trc.term) list;  (** attribute name → output term *)
}

let operand_term cols = function
  | A.Attr a -> (
    match List.assoc_opt a cols with
    | Some t -> t
    | None -> Trc.type_error "unknown attribute %S in predicate" a)
  | A.Const c -> Trc.Const c

let rec pred_formula cols = function
  | A.Cmp (op, x, y) -> Trc.Cmp (op, operand_term cols x, operand_term cols y)
  | A.And (p, q) -> Trc.And (pred_formula cols p, pred_formula cols q)
  | A.Or (p, q) -> Trc.Or (pred_formula cols p, pred_formula cols q)
  | A.Not p -> Trc.Not (pred_formula cols p)
  | A.Ptrue -> Trc.True

let conj a b =
  match (a, b) with Trc.True, f | f, Trc.True -> f | _ -> Trc.And (a, b)

(* Equate the output columns of two representations pairwise. *)
let columns_equal ra rb =
  List.fold_left2
    (fun acc (_, ta) (_, tb) -> conj acc (Trc.Cmp (Diagres_logic.Fol.Eq, ta, tb)))
    Trc.True ra.cols rb.cols

let rec translate env supply (e : A.t) : rep =
  match e with
  | A.Rel r ->
    let attrs = Diagres_data.Schema.names (Diagres_ra.Typecheck.infer env e) in
    let v = N.fresh supply (String.lowercase_ascii (String.sub r 0 1) ^ "_") in
    { ranges = [ (v, r) ];
      body = Trc.True;
      cols = List.map (fun a -> (a, Trc.Field (v, a))) attrs }
  | A.Empty e1 ->
    (* the calculus has no ∅ literal; e − e is the classical encoding *)
    translate env supply (A.Diff (e1, e1))
  | A.Select (p, e1) ->
    let r1 = translate env supply e1 in
    { r1 with body = conj r1.body (pred_formula r1.cols p) }
  | A.Project (attrs, e1) ->
    let r1 = translate env supply e1 in
    (* ranges stay free: projection is just head narrowing under set
       semantics *)
    { r1 with cols = List.map (fun a -> (a, List.assoc a r1.cols)) attrs }
  | A.Rename (pairs, e1) ->
    let r1 = translate env supply e1 in
    let cols =
      List.map
        (fun (a, t) ->
          match List.assoc_opt a pairs with
          | Some fresh -> (fresh, t)
          | None -> (a, t))
        r1.cols
    in
    { r1 with cols }
  | A.Product (a, b) ->
    let ra = translate env supply a and rb = translate env supply b in
    { ranges = ra.ranges @ rb.ranges;
      body = conj ra.body rb.body;
      cols = ra.cols @ rb.cols }
  | A.Join (a, b) ->
    let ra = translate env supply a and rb = translate env supply b in
    let shared = List.filter (fun (n, _) -> List.mem_assoc n ra.cols) rb.cols in
    let joins =
      List.fold_left
        (fun acc (n, tb) ->
          conj acc (Trc.Cmp (Diagres_logic.Fol.Eq, List.assoc n ra.cols, tb)))
        Trc.True shared
    in
    let b_rest =
      List.filter (fun (n, _) -> not (List.mem_assoc n ra.cols)) rb.cols
    in
    { ranges = ra.ranges @ rb.ranges;
      body = conj (conj ra.body rb.body) joins;
      cols = ra.cols @ b_rest }
  | A.Theta_join (p, a, b) ->
    let ra = translate env supply a and rb = translate env supply b in
    let cols = ra.cols @ rb.cols in
    { ranges = ra.ranges @ rb.ranges;
      body = conj (conj ra.body rb.body) (pred_formula cols p);
      cols }
  | A.Inter (a, b) ->
    let ra = translate env supply a and rb = translate env supply b in
    (* A ∩ B  =  A(t̄) ∧ ∃(B's ranges): B(ū) ∧ t̄ = ū *)
    let inner = conj rb.body (columns_equal ra rb) in
    let quantified =
      if rb.ranges = [] then inner else Trc.Exists (rb.ranges, inner)
    in
    { ranges = ra.ranges; body = conj ra.body quantified; cols = ra.cols }
  | A.Diff (a, b) ->
    let ra = translate env supply a and rb = translate env supply b in
    let inner = conj rb.body (columns_equal ra rb) in
    let quantified =
      if rb.ranges = [] then inner else Trc.Exists (rb.ranges, inner)
    in
    { ranges = ra.ranges; body = conj ra.body (Trc.Not quantified); cols = ra.cols }
  | A.Union _ -> raise Union_not_supported
  | A.Division _ -> translate env supply (Ra_rewrite.eliminate_division env e)

(** Translate one union-free expression to a single TRC query. *)
let union_free_query env (e : A.t) : Trc.query =
  let supply = N.create () in
  let rep = translate env supply e in
  { Trc.head = List.map snd rep.cols; ranges = rep.ranges; body = rep.body }

(** General entry point: a list of TRC queries whose union is the input —
    one per Relational-Diagram panel. *)
let queries env (e : A.t) : Trc.query list =
  List.map (union_free_query env) (Ra_rewrite.union_free_forms env e)

let queries_db db e = queries (Diagres_ra.Typecheck.env_of_database db) e
