(** Parser for the DRC concrete syntax printed by {!Drc.to_string}:

    {v
    { s | exists n, r, a (Sailor(s, n, r, a)
          & exists b, d, c (Reserves(s, b, d) & Boat(b, n2, 'red'))) }
    v}

    Connectives accept both word ([and]/[or]/[not]) and symbol ([&]/[|]/[!])
    spellings; quantifiers are [exists x, y (…)] and [forall x (…)]. *)

module S = Diagres_parsekit.Stream
module L = Diagres_parsekit.Lexer
module F = Diagres_logic.Fol

exception Parse_error = S.Parse_error

let keywords =
  [ "and"; "or"; "not"; "implies"; "exists"; "forall"; "true"; "false" ]

let term s : F.term =
  match S.peek s with
  | L.Ident x when not (List.mem x keywords) ->
    S.advance s;
    F.Var x
  | _ -> F.Const (S.value s)

let var_list s = S.sep_list1 s ~sep:"," (fun s -> S.ident_not s keywords)

let rec formula s : F.t =
  let a = or_formula s in
  if S.eat_kw s "implies" || S.eat_sym s "->" then F.Implies (a, formula s)
  else a

and or_formula s =
  let a = ref (and_formula s) in
  while S.at_kw s "or" || S.at_sym s "|" do
    S.advance s;
    a := F.Or (!a, and_formula s)
  done;
  !a

and and_formula s =
  let a = ref (unary s) in
  while S.at_kw s "and" || S.at_sym s "&" do
    S.advance s;
    a := F.And (!a, unary s)
  done;
  !a

and unary s =
  if S.eat_kw s "not" || S.eat_sym s "!" then F.Not (unary s)
  else if S.eat_kw s "true" then F.True
  else if S.eat_kw s "false" then F.False
  else if S.at_kw s "exists" || S.at_kw s "forall" then begin
    let is_exists = S.at_kw s "exists" in
    S.advance s;
    let vs = var_list s in
    (* two body forms: parenthesized [exists x, y (φ)], and the dot form
       [exists x. φ] printed by {!Diagres_logic.Fol.pp}, whose scope
       extends maximally to the right *)
    let f =
      if S.eat_sym s "." then formula s
      else begin
        S.expect_sym s "(";
        let f = formula s in
        S.expect_sym s ")";
        f
      end
    in
    if is_exists then F.exists_many vs f else F.forall_many vs f
  end
  else if S.at_sym s "(" then begin
    S.expect_sym s "(";
    let f = formula s in
    S.expect_sym s ")";
    f
  end
  else begin
    (* predicate atom or comparison: ident "(" … ")" is an atom *)
    match (S.peek s, S.peek2 s) with
    | L.Ident p, L.Sym "(" when not (List.mem p keywords) ->
      S.advance s;
      S.expect_sym s "(";
      let args = S.sep_list1 s ~sep:"," term in
      S.expect_sym s ")";
      F.Pred (p, args)
    | _ -> (
      let a = term s in
      match S.cmp_op s with
      | Some op -> F.Cmp (op, a, term s)
      | None -> S.error s "expected comparison operator")
  end

let parse_formula src : F.t =
  let s = S.make src in
  let f = formula s in
  S.expect_eof s;
  f

let parse src : Drc.query =
  let s = S.make src in
  S.expect_sym s "{";
  let head = if S.at_sym s "|" then [] else var_list s in
  S.expect_sym s "|";
  let body = formula s in
  S.expect_sym s "}";
  S.expect_eof s;
  { Drc.head; body }
