(** Tuple Relational Calculus with range-coupled quantifiers.

    Every tuple variable — free or quantified — is declared with the relation
    it ranges over ([∃t ∈ Reserves], [t ∈ Sailor]).  This is the dialect the
    tutorial (and the Relational Diagrams paper [26]) builds on: range
    coupling makes safety syntactic and gives each diagram box a table name.

    A query is [{ t.a, u.b | t ∈ R, u ∈ S : φ }]; a sentence (Boolean query /
    logical statement) has an empty head and no free ranges. *)

type term =
  | Field of string * string  (** [t.attr] *)
  | Const of Diagres_data.Value.t

type formula =
  | True
  | False
  | Cmp of Diagres_logic.Fol.cmp * term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of (string * string) list * formula
      (** [∃ v₁∈R₁, …, vₖ∈Rₖ : φ] *)
  | Forall of (string * string) list * formula

type query = {
  head : term list;            (** output terms, left to right *)
  ranges : (string * string) list;  (** free variables with their relations *)
  body : formula;
}

let field v a = Field (v, a)
let const v = Const v
let cmp op a b = Cmp (op, a, b)
let eq a b = Cmp (Diagres_logic.Fol.Eq, a, b)
let conj = function [] -> True | x :: xs -> List.fold_left (fun a b -> And (a, b)) x xs
let disj = function [] -> False | x :: xs -> List.fold_left (fun a b -> Or (a, b)) x xs

let query ?(head = []) ?(ranges = []) body = { head; ranges; body }

(** Tuple variables used (declared) anywhere in a formula. *)
let rec declared_vars = function
  | True | False | Cmp _ -> []
  | Not f -> declared_vars f
  | And (a, b) | Or (a, b) | Implies (a, b) -> declared_vars a @ declared_vars b
  | Exists (rs, f) | Forall (rs, f) -> List.map fst rs @ declared_vars f

let term_vars = function Field (v, _) -> [ v ] | Const _ -> []

(** Free tuple variables of a formula (occurring, minus bound). *)
let rec free_vars = function
  | True | False -> []
  | Cmp (_, a, b) -> term_vars a @ term_vars b
  | Not f -> free_vars f
  | And (a, b) | Or (a, b) | Implies (a, b) -> free_vars a @ free_vars b
  | Exists (rs, f) | Forall (rs, f) ->
    let bound = List.map fst rs in
    List.filter (fun v -> not (List.mem v bound)) (free_vars f)

let free_var_list f = List.sort_uniq String.compare (free_vars f)

(** Fields [v.a] referenced for each variable — used to typecheck against
    the relation schemas and to label diagram attributes. *)
let rec fields = function
  | True | False -> []
  | Cmp (_, a, b) ->
    List.filter_map (function Field (v, x) -> Some (v, x) | Const _ -> None) [ a; b ]
  | Not f -> fields f
  | And (a, b) | Or (a, b) | Implies (a, b) -> fields a @ fields b
  | Exists (_, f) | Forall (_, f) -> fields f

let rec size = function
  | True | False | Cmp _ -> 1
  | Not f -> 1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) -> 1 + size a + size b
  | Exists (rs, f) | Forall (rs, f) -> List.length rs + size f

(** Rewrite ∀ as ¬∃¬ and eliminate ⇒ — the normal form Relational Diagrams
    and Peirce-style readings draw directly. *)
let rec existentialize = function
  | (True | False | Cmp _) as f -> f
  | Not f -> Not (existentialize f)
  | And (a, b) -> And (existentialize a, existentialize b)
  | Or (a, b) -> Or (existentialize a, existentialize b)
  | Implies (a, b) -> Or (Not (existentialize a), existentialize b)
  | Exists (rs, f) -> Exists (rs, existentialize f)
  | Forall (rs, f) -> Not (Exists (rs, Not (existentialize f)))

(** Does the formula (after ⇒-elimination) contain a disjunction?  Union-free
    TRC is the fragment a single Relational Diagram panel can show. *)
let rec has_disjunction = function
  | True | False | Cmp _ -> false
  | Not f -> has_disjunction f
  | And (a, b) -> has_disjunction a || has_disjunction b
  | Or _ -> true
  | Implies (a, b) -> has_disjunction a || has_disjunction b
  | Exists (_, f) | Forall (_, f) -> has_disjunction f

(** Can the formula be drawn in a single nested-box panel?  This mirrors the
    negation-pushing the diagram normalizer performs: a disjunction is
    harmless exactly when it sits under an odd number of negations (it then
    turns into a conjunction), and an implication is harmless in negative
    position or directly under ∀. *)
let rec single_panel = function
  | True | False | Cmp _ -> true
  | And (a, b) -> single_panel a && single_panel b
  | Or _ | Implies _ -> false
  | Not g -> single_panel_neg g
  | Exists (_, g) -> single_panel g
  | Forall (_, g) -> single_panel_neg g

(* drawability of ¬g as box contents *)
and single_panel_neg = function
  | True | False | Cmp _ -> true
  | Or (a, b) -> single_panel_neg a && single_panel_neg b
  | Implies (a, b) -> single_panel a && single_panel_neg b
  | Not g -> single_panel g
  | And (a, b) -> single_panel a && single_panel b
  | Exists (_, g) -> single_panel g
  | Forall (_, g) -> single_panel_neg g

(** Decompose a body into single-panel disjuncts: [f ≡ ⋁ᵢ fᵢ] with every
    [fᵢ] satisfying {!single_panel}.  Positive disjunctions distribute out;
    disjunctions under a negation flip into conjunctions of negated boxes
    ([¬(d₁ ∨ d₂) = ¬d₁ ∧ ¬d₂]) and stay inside one panel.  The length of
    the result is the number of diagram panels a query needs. *)
let rec panel_split (f : formula) : formula list =
  match f with
  | True | False | Cmp _ -> [ f ]
  | Or (a, b) -> panel_split a @ panel_split b
  | And (a, b) ->
    List.concat_map
      (fun x -> List.map (fun y -> And (x, y)) (panel_split b))
      (panel_split a)
  | Implies (a, b) -> panel_split (Or (Not a, b))
  | Exists (rs, g) -> List.map (fun d -> Exists (rs, d)) (panel_split g)
  | Forall (rs, g) -> panel_split (Not (Exists (rs, Not g)))
  | Not g ->
    [ conj (List.map (fun d -> Not d) (panel_split g)) ]

(* -------------------------------------------------------------------- *)
(* Pretty-printing: concrete syntax accepted back by [Trc_parser].       *)

let term_to_string = function
  | Field (v, a) -> v ^ "." ^ a
  | Const c -> Diagres_data.Value.to_literal c

let range_to_string (v, r) = v ^ " in " ^ r

let prec = function
  | True | False | Cmp _ -> 5
  | Not _ -> 4
  | And _ -> 3
  | Or _ -> 2
  | Implies _ -> 1
  | Exists _ | Forall _ -> 0

let rec formula_to_string f =
  let sub child =
    if prec child <= prec f && child <> f then
      "(" ^ formula_to_string child ^ ")"
    else formula_to_string child
  in
  let sub_loose child =
    if prec child < prec f then "(" ^ formula_to_string child ^ ")"
    else formula_to_string child
  in
  match f with
  | True -> "true"
  | False -> "false"
  | Cmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (term_to_string a)
      (Diagres_logic.Fol.cmp_name op)
      (term_to_string b)
  | Not g -> "not " ^ (if prec g < 4 then "(" ^ formula_to_string g ^ ")" else formula_to_string g)
  | And (a, b) -> sub_loose a ^ " and " ^ sub b
  | Or (a, b) -> sub_loose a ^ " or " ^ sub b
  | Implies (a, b) -> sub a ^ " implies " ^ sub_loose b
  | Exists (rs, g) ->
    Printf.sprintf "exists %s (%s)"
      (String.concat ", " (List.map range_to_string rs))
      (formula_to_string g)
  | Forall (rs, g) ->
    Printf.sprintf "forall %s (%s)"
      (String.concat ", " (List.map range_to_string rs))
      (formula_to_string g)

let to_string q =
  Printf.sprintf "{ %s | %s%s%s }"
    (String.concat ", " (List.map term_to_string q.head))
    (String.concat ", " (List.map range_to_string q.ranges))
    (if q.ranges = [] then "" else " : ")
    (formula_to_string q.body)

let pp ppf q = Fmt.string ppf (to_string q)

(* -------------------------------------------------------------------- *)
(* Typechecking against database schemas.                                *)

module Diag = Diagres_diag.Diag

exception Type_error = Diag.Error

(** Generic TRC type error (used by the translators for conditions they
    detect themselves); {!typecheck} raises more specific codes. *)
let type_error fmt =
  Diag.error ~code:"E-TRC-TYPE-000" ~phase:Diag.Type fmt

(** Check that every variable is declared exactly once with a known relation
    and that every referenced field exists in that relation's schema, and
    that comparison operands have compatible static types.
    Returns the scope of the query head: the free ranges. *)
let typecheck (schemas : (string * Diagres_data.Schema.t) list) (q : query) =
  let err ?hints ?needle code fmt =
    Diag.error ?hints ?needle ~code ~phase:Diag.Type fmt
  in
  let lookup_rel r =
    match List.assoc_opt r schemas with
    | Some s -> s
    | None ->
      err "E-TRC-TYPE-001" ~needle:r
        ~hints:(Diag.did_you_mean ~candidates:(List.map fst schemas) r)
        "unknown relation %S" r
  in
  let check_ranges scope rs =
    List.fold_left
      (fun scope (v, r) ->
        if List.mem_assoc v scope then
          err "E-TRC-TYPE-002" ~needle:v "variable %S redeclared" v;
        ignore (lookup_rel r);
        (v, r) :: scope)
      scope rs
  in
  let check_term scope = function
    | Const _ -> ()
    | Field (v, a) -> (
      match List.assoc_opt v scope with
      | None ->
        err "E-TRC-TYPE-003" ~needle:(v ^ "." ^ a)
          ~hints:(Diag.did_you_mean ~candidates:(List.map fst scope) v)
          "variable %S not in scope" v
      | Some r ->
        if not (Diagres_data.Schema.mem a (lookup_rel r)) then
          err "E-TRC-TYPE-004" ~needle:(v ^ "." ^ a)
            ~hints:
              (Diag.did_you_mean
                 ~candidates:(Diagres_data.Schema.names (lookup_rel r))
                 a)
            "relation %S has no attribute %S (via %s.%s)" r a v a)
  in
  let term_ty scope = function
    | Const c -> Diagres_data.Value.type_of c
    | Field (v, a) ->
      let r = List.assoc v scope in
      (match Diagres_data.Schema.find_opt a (lookup_rel r) with
      | Some at -> at.Diagres_data.Schema.ty
      | None -> Diagres_data.Value.Tany)
  in
  let rec check scope = function
    | True | False -> ()
    | Cmp (op, a, b) ->
      check_term scope a;
      check_term scope b;
      let ta = term_ty scope a and tb = term_ty scope b in
      if not (Diagres_data.Value.ty_compatible ta tb) then
        err "E-TRC-TYPE-005" ~needle:(term_to_string b)
          "cannot compare %s (of type %s) %s %s (of type %s): operand types \
           are incompatible"
          (term_to_string a)
          (Diagres_data.Value.ty_name ta)
          (Diagres_logic.Fol.cmp_name op) (term_to_string b)
          (Diagres_data.Value.ty_name tb)
    | Not f -> check scope f
    | And (a, b) | Or (a, b) | Implies (a, b) ->
      check scope a;
      check scope b
    | Exists (rs, f) | Forall (rs, f) -> check (check_ranges scope rs) f
  in
  let scope = check_ranges [] q.ranges in
  List.iter (check_term scope) q.head;
  check scope q.body;
  scope

(** Fold statically ill-typed equalities to [False], then boolean-simplify.

    The active-domain DRC→TRC expansion ranges a variable over every
    attribute of every relation, so its union branches routinely equate,
    say, a [string] column with an [int] column.  Values of incompatible
    static types are never equal, so each such branch is empty; folding it
    away keeps machine-generated panels inside the well-typed fragment the
    strict checkers accept.  Only [=] is folded — on other comparison
    operators incompatible operands are a type error, not a constant.
    Quantifiers are simplified conservatively: [∃v∈R: false] is [false],
    [∀v∈R: true] is [true], but [∃v∈R: true] and [∀v∈R: false] depend on
    whether [R] is empty and are kept as written. *)
let simplify_types (schemas : (string * Diagres_data.Schema.t) list)
    (q : query) : query =
  let module V = Diagres_data.Value in
  let ty scope = function
    | Const c -> Some (V.type_of c)
    | Field (v, a) -> (
      match List.assoc_opt v scope with
      | None -> None
      | Some r -> (
        match List.assoc_opt r schemas with
        | None -> None
        | Some s -> (
          match Diagres_data.Schema.find_opt a s with
          | Some at -> Some at.Diagres_data.Schema.ty
          | None -> None)))
  in
  let rec go scope f =
    match f with
    | True | False -> f
    | Cmp (Diagres_logic.Fol.Eq, a, b) -> (
      match (ty scope a, ty scope b) with
      | Some ta, Some tb when not (V.ty_compatible ta tb) -> False
      | _ -> f)
    | Cmp _ -> f
    | Not g -> (
      match go scope g with True -> False | False -> True | g' -> Not g')
    | And (a, b) -> (
      match (go scope a, go scope b) with
      | False, _ | _, False -> False
      | True, g | g, True -> g
      | a', b' -> And (a', b'))
    | Or (a, b) -> (
      match (go scope a, go scope b) with
      | True, _ | _, True -> True
      | False, g | g, False -> g
      | a', b' -> Or (a', b'))
    | Implies (a, b) -> (
      match (go scope a, go scope b) with
      | False, _ -> True
      | True, g -> g
      | _, True -> True
      | a', b' -> Implies (a', b'))
    | Exists (rs, g) -> (
      match go (rs @ scope) g with False -> False | g' -> Exists (rs, g'))
    | Forall (rs, g) -> (
      match go (rs @ scope) g with True -> True | g' -> Forall (rs, g'))
  in
  { q with body = go q.ranges q.body }

(* -------------------------------------------------------------------- *)
(* Direct evaluation: free ranges enumerate their relations, quantifiers
   range over their declared relations.  Range coupling means no active-
   domain construction is needed — this is the "safe by construction"
   point the tutorial makes about TRC-based diagrams.

   The restricted engine additionally narrows each tuple variable to the
   tuples matching the equality constraints its formula imposes — served
   by a hash-index probe (Relation.matching) instead of a full scan — so
   equi-join-shaped queries run in time proportional to the join result
   rather than the product of the relation sizes.  The naive engine scans
   every relation in full and is kept as the differential-test reference. *)

exception Eval_error of string

let eval_gen ~restricted (db : Diagres_data.Database.t) (q : query) :
    Diagres_data.Relation.t =
  let module D = Diagres_data in
  let schemas = List.map (fun (n, r) -> (n, D.Relation.schema r)) (D.Database.relations db) in
  ignore (typecheck schemas q);
  let rel r =
    match D.Database.find_opt r db with
    | Some x -> x
    | None -> raise (Eval_error ("unknown relation " ^ r))
  in
  let term_value env = function
    | Const c -> c
    | Field (v, a) ->
      let tup, r = List.assoc v env in
      D.Tuple.field (D.Relation.schema (rel r)) a tup
  in
  let term_value_opt env = function
    | Const c -> Some c
    | Field (v, a) -> (
      match List.assoc_opt v env with
      | Some (tup, r) -> Some (D.Tuple.field (D.Relation.schema (rel r)) a tup)
      | None -> None)
  in
  (* [constraints env v rname f]: equalities [(position, value)] that every
     tuple bound to [v] must satisfy for [f] to hold under [env] — collected
     from conjunctively required comparisons [v.a = t] whose other side is
     evaluable now.  Conjunctively required means reachable through ∧ and
     through ∃ over other variables; never through ¬, →, ∨ or ∀ (a ∀ can be
     vacuously true, so nothing under it is required).  [None] marks
     contradictory equalities: no tuple can satisfy [f]. *)
  let constraints env v rname f =
    let schema = D.Relation.schema (rel rname) in
    let add (i, value) = function
      | None -> None
      | Some cs as acc -> (
        match List.assoc_opt i cs with
        | Some v' -> if D.Value.equal v' value then acc else None
        | None -> Some ((i, value) :: cs))
    in
    let rec go f acc =
      match f with
      | And (a, b) -> go b (go a acc)
      | Exists (rs, g)
        when List.for_all
               (fun (u, _) -> u <> v && not (List.mem_assoc u env))
               rs ->
        go g acc
      | Cmp (Diagres_logic.Fol.Eq, Field (v', a), t) when v' = v -> (
        match term_value_opt env t with
        | Some value -> add (D.Schema.index a schema, value) acc
        | None -> acc)
      | Cmp (Diagres_logic.Fol.Eq, t, Field (v', a)) when v' = v -> (
        match term_value_opt env t with
        | Some value -> add (D.Schema.index a schema, value) acc
        | None -> acc)
      | _ -> acc
    in
    go f (Some [])
  in
  (* candidate tuples for binding [v ∈ rname] given that [f] must then hold *)
  let candidates env v rname f =
    if not restricted then D.Relation.tuples (rel rname)
    else
      match constraints env v rname f with
      | None -> []
      | Some [] -> D.Relation.tuples (rel rname)
      | Some cs ->
        let cs = List.sort (fun (i, _) (j, _) -> compare i j) cs in
        D.Relation.matching (rel rname) (List.map fst cs)
          (Array.of_list (List.map snd cs))
  in
  let rec holds env = function
    | True -> true
    | False -> false
    | Cmp (op, a, b) ->
      Diagres_logic.Fol.cmp_eval op (term_value env a) (term_value env b)
    | Not f -> not (holds env f)
    | And (a, b) -> holds env a && holds env b
    | Or (a, b) -> holds env a || holds env b
    | Implies (a, b) -> (not (holds env a)) || holds env b
    | Exists ([], f) -> holds env f
    | Exists ((v, r) :: rest, f) ->
      List.exists
        (fun tup -> holds ((v, (tup, r)) :: env) (Exists (rest, f)))
        (candidates env v r (Exists (rest, f)))
    | Forall ([], f) -> holds env f
    | Forall ((v, r) :: rest, f) ->
      (* ∀ can only be narrowed through an implication guard: a tuple
         violating an equality required by [g] satisfies [g → h] (and hence
         the whole remaining ∀-block) vacuously, so only the matching tuples
         need checking.  The extracted equalities never mention [rest]
         variables (they are not in [env]), so vacuity holds under every
         binding of [rest]. *)
      let tups =
        if not restricted then D.Relation.tuples (rel r)
        else
          match f with
          | Implies (g, _) | Or (Not g, _) -> candidates env v r g
          | _ -> D.Relation.tuples (rel r)
      in
      List.for_all
        (fun tup -> holds ((v, (tup, r)) :: env) (Forall (rest, f)))
        tups
  in
  let head_schema =
    List.mapi
      (fun i t ->
        match t with
        | Field (v, a) ->
          let r = List.assoc v q.ranges in
          let att =
            match D.Schema.find_opt a (D.Relation.schema (rel r)) with
            | Some at -> at
            | None -> raise (Eval_error ("unknown field " ^ v ^ "." ^ a))
          in
          (* disambiguate duplicate output names positionally *)
          let base = att.D.Schema.name in
          let clash =
            List.exists
              (fun (j, t') ->
                j < i
                && match t' with Field (_, a') -> a' = base | Const _ -> false)
              (List.mapi (fun j t' -> (j, t')) q.head)
          in
          D.Schema.attr ~ty:att.D.Schema.ty
            (if clash then Printf.sprintf "%s_%d" base (i + 1) else base)
        | Const c ->
          D.Schema.attr ~ty:(D.Value.type_of c) (Printf.sprintf "c%d" (i + 1)))
      q.head
  in
  (* enumerate assignments to the free ranges, narrowed by the body *)
  let rec enumerate env = function
    | [] -> if holds env q.body then [ List.map (term_value env) q.head ] else []
    | (v, r) :: rest ->
      List.concat_map
        (fun tup -> enumerate ((v, (tup, r)) :: env) rest)
        (candidates env v r q.body)
  in
  if q.head = [] then
    (* Boolean query: nullary relation, nonempty iff the sentence holds *)
    let rows = enumerate [] q.ranges in
    if rows <> [] then D.Relation.of_lists [] [ [] ] else D.Relation.empty []
  else D.Relation.of_lists head_schema (enumerate [] q.ranges)

let eval db q = eval_gen ~restricted:true db q

(** Full-scan reference evaluation: every tuple variable enumerates its
    whole relation.  Used by the differential tests and as the benchmark
    baseline for {!eval}. *)
let eval_naive db q = eval_gen ~restricted:false db q

(** Boolean queries: true iff the (closed) query returns the empty tuple. *)
let eval_sentence db body =
  not (Diagres_data.Relation.is_empty (eval db { head = []; ranges = []; body }))

let eval_sentence_naive db body =
  not
    (Diagres_data.Relation.is_empty
       (eval_naive db { head = []; ranges = []; body }))
