(** RA → DRC (the "easy" half of Codd's equivalence).

    Each subexpression over schema (a₁,…,aₖ) becomes a formula with one free
    domain variable per column.  Union and intersection unify the two sides'
    variables by substitution; difference adds a negation; projection closes
    the dropped columns existentially; ÷ is eliminated structurally first. *)

module A = Diagres_ra.Ast
module F = Diagres_logic.Fol
module N = Diagres_logic.Names

type rep = { formula : F.t; cols : (string * string) list }
(** [cols] maps output attribute name → domain variable, in schema order. *)

let operand_term cols = function
  | A.Attr a -> (
    match List.assoc_opt a cols with
    | Some v -> F.Var v
    | None -> Drc.type_error "unknown attribute %S in predicate" a)
  | A.Const c -> F.Const c

let rec pred_formula cols = function
  | A.Cmp (op, x, y) -> F.Cmp (op, operand_term cols x, operand_term cols y)
  | A.And (p, q) -> F.And (pred_formula cols p, pred_formula cols q)
  | A.Or (p, q) -> F.Or (pred_formula cols p, pred_formula cols q)
  | A.Not p -> F.Not (pred_formula cols p)
  | A.Ptrue -> F.True

let rec translate env supply (e : A.t) : rep =
  let schema_names ex =
    Diagres_data.Schema.names (Diagres_ra.Typecheck.infer env ex)
  in
  match e with
  | A.Rel r ->
    let attrs = schema_names e in
    let cols = List.map (fun a -> (a, N.fresh supply (N.sanitize a ^ "_"))) attrs in
    { formula = F.Pred (r, List.map (fun (_, v) -> F.Var v) cols); cols }
  | A.Empty e1 ->
    (* the calculus has no ∅ literal; e − e is the classical encoding *)
    translate env supply (A.Diff (e1, e1))
  | A.Select (p, e1) ->
    let r1 = translate env supply e1 in
    { r1 with formula = F.And (r1.formula, pred_formula r1.cols p) }
  | A.Project (attrs, e1) ->
    let r1 = translate env supply e1 in
    let keep = List.map (fun a -> (a, List.assoc a r1.cols)) attrs in
    let dropped =
      List.filter_map
        (fun (a, v) -> if List.mem_assoc a keep then None else Some v)
        r1.cols
    in
    (* a column may be dropped while its variable survives under another
       name after renaming — variables are per-column here, so no aliasing *)
    { formula = F.exists_many dropped r1.formula; cols = keep }
  | A.Rename (pairs, e1) ->
    let r1 = translate env supply e1 in
    let cols =
      List.map
        (fun (a, v) ->
          match List.assoc_opt a pairs with
          | Some fresh -> (fresh, v)
          | None -> (a, v))
        r1.cols
    in
    { r1 with cols }
  | A.Product (a, b) ->
    let ra = translate env supply a and rb = translate env supply b in
    { formula = F.And (ra.formula, rb.formula); cols = ra.cols @ rb.cols }
  | A.Join (a, b) ->
    let ra = translate env supply a and rb = translate env supply b in
    let shared = List.filter (fun (n, _) -> List.mem_assoc n ra.cols) rb.cols in
    (* unify shared columns: substitute b's variable by a's *)
    let fb =
      List.fold_left
        (fun acc (n, vb) -> F.subst vb (F.Var (List.assoc n ra.cols)) acc)
        rb.formula shared
    in
    let b_rest = List.filter (fun (n, _) -> not (List.mem_assoc n ra.cols)) rb.cols in
    { formula = F.And (ra.formula, fb); cols = ra.cols @ b_rest }
  | A.Theta_join (p, a, b) ->
    let ra = translate env supply a and rb = translate env supply b in
    let cols = ra.cols @ rb.cols in
    { formula = F.And (F.And (ra.formula, rb.formula), pred_formula cols p);
      cols }
  | A.Union (a, b) ->
    let ra = translate env supply a and rb = translate env supply b in
    let fb =
      List.fold_left2
        (fun acc (_, vb) (_, va) -> F.subst vb (F.Var va) acc)
        rb.formula rb.cols ra.cols
    in
    { formula = F.Or (ra.formula, fb); cols = ra.cols }
  | A.Inter (a, b) ->
    let ra = translate env supply a and rb = translate env supply b in
    let fb =
      List.fold_left2
        (fun acc (_, vb) (_, va) -> F.subst vb (F.Var va) acc)
        rb.formula rb.cols ra.cols
    in
    { formula = F.And (ra.formula, fb); cols = ra.cols }
  | A.Diff (a, b) ->
    let ra = translate env supply a and rb = translate env supply b in
    let fb =
      List.fold_left2
        (fun acc (_, vb) (_, va) -> F.subst vb (F.Var va) acc)
        rb.formula rb.cols ra.cols
    in
    { formula = F.And (ra.formula, F.Not fb); cols = ra.cols }
  | A.Division _ ->
    translate env supply (Ra_rewrite.eliminate_division env e)

(** Rename the final column variables to readable, attribute-derived names
    where possible. *)
let readable_heads rep =
  let used = ref [] in
  let pick base =
    let base = N.sanitize base in
    let rec go i =
      let cand = if i = 0 then base else Printf.sprintf "%s%d" base i in
      if List.mem cand !used then go (i + 1)
      else begin
        used := cand :: !used;
        cand
      end
    in
    go 0
  in
  let mapping = List.map (fun (a, v) -> (v, pick a)) rep.cols in
  let formula =
    List.fold_left
      (fun acc (v, v') -> if v = v' then acc else F.subst v (F.Var v') acc)
      rep.formula mapping
  in
  { formula; cols = List.map2 (fun (a, _) (_, v') -> (a, v')) rep.cols mapping }

let query env (e : A.t) : Drc.query =
  let supply = N.create () in
  let rep = readable_heads (translate env supply e) in
  { Drc.head = List.map snd rep.cols; body = rep.formula }

let query_db db e = query (Diagres_ra.Typecheck.env_of_database db) e
