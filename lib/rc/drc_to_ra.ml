(** DRC → RA under active-domain semantics (the constructive half of Codd's
    theorem, in its compositional "adom" form).

    Every subformula φ with free variables {x₁,…,xₖ} translates to an RA
    expression over schema (x₁,…,xₖ):

    - atoms select/equate positions of the base relation and rename columns
      to variable names;
    - comparisons select over products of the active-domain relation;
    - ∧ is natural join, ∨ is union after padding both sides with adom
      columns, ¬φ is adomᵏ − E(φ);
    - ∃x projects the column away (∀ and ⇒ are rewritten first).

    For safe-range queries (checked with {!Safety.safe_range}) the result
    agrees with the natural semantics; for unsafe ones it realizes the
    active-domain reading — exactly the semantic subtlety the tutorial
    discusses for Peirce's beta graphs. *)

module A = Diagres_ra.Ast
module F = Diagres_logic.Fol

exception Unsupported of string

(** The active-domain relation with a single column named [x]:
    ⋃_R ⋃_a ρ[a→x](π[a](R)). *)
let adom schemas x : A.t =
  let pieces =
    List.concat_map
      (fun (r, schema) ->
        List.map
          (fun a ->
            let p = A.Project ([ a ], A.Rel r) in
            if a = x then p else A.Rename ([ (a, x) ], p))
          (Diagres_data.Schema.names schema))
      schemas
  in
  match pieces with
  | [] -> raise (Unsupported "empty database schema: no active domain")
  | p :: ps -> List.fold_left (fun acc q -> A.Union (acc, q)) p ps

let adom_product schemas xs : A.t =
  match xs with
  | [] -> raise (Unsupported "nullary active-domain product")
  | x :: rest ->
    List.fold_left (fun acc y -> A.Product (acc, adom schemas y)) (adom schemas x) rest

(* Eliminate ⇒ and ∀ (as ¬∃¬), keeping ∃/∧/∨/¬ only. *)
let rec prepare (f : F.t) : F.t =
  match f with
  | F.True | F.False | F.Pred _ | F.Cmp _ -> f
  | F.Not g -> F.Not (prepare g)
  | F.And (a, b) -> F.And (prepare a, prepare b)
  | F.Or (a, b) -> F.Or (prepare a, prepare b)
  | F.Implies (a, b) -> F.Or (F.Not (prepare a), prepare b)
  | F.Exists (x, g) -> F.Exists (x, prepare g)
  | F.Forall (x, g) -> F.Not (F.Exists (x, F.Not (prepare g)))

(** Translate an atom R(t₁,…,tₖ): select positions carrying constants or
    repeated variables, project one representative position per variable,
    and rename to the variable names. *)
let atom schemas (p : string) (ts : F.term list) : A.t * string list =
  let schema =
    match List.assoc_opt p schemas with
    | Some s -> s
    | None -> raise (Unsupported ("unknown relation " ^ p))
  in
  let attrs = Diagres_data.Schema.names schema in
  if List.length attrs <> List.length ts then
    raise (Unsupported ("arity mismatch for " ^ p));
  let paired = List.combine attrs ts in
  (* selection conditions *)
  let conds =
    List.concat_map
      (fun (a, t) ->
        match t with
        | F.Const c -> [ A.Cmp (F.Eq, A.Attr a, A.Const c) ]
        | F.Var _ -> [])
      paired
  in
  (* first attribute position for each variable; equality among repeats *)
  let var_repr = Hashtbl.create 8 in
  let eq_conds =
    List.concat_map
      (fun (a, t) ->
        match t with
        | F.Var x -> (
          match Hashtbl.find_opt var_repr x with
          | None ->
            Hashtbl.add var_repr x a;
            []
          | Some a0 -> [ A.Cmp (F.Eq, A.Attr a0, A.Attr a) ])
        | F.Const _ -> [])
      paired
  in
  let vars =
    List.filter_map
      (fun (a, t) ->
        match t with
        | F.Var x when Hashtbl.find_opt var_repr x = Some a -> Some (a, x)
        | _ -> None)
      paired
  in
  let selected = A.Select (A.pred_conj (conds @ eq_conds), A.Rel p) in
  let projected = A.Project (List.map fst vars, selected) in
  let renames = List.filter (fun (a, x) -> a <> x) vars in
  let out = if renames = [] then projected else A.Rename (renames, projected) in
  (out, List.map snd vars)

(* Pad expression [e] (over columns [have]) with adom columns for the
   variables in [want] missing from [have]; returns columns in [want]'s
   order via a final projection. *)
let pad schemas (e, have) want : A.t =
  let missing = List.filter (fun x -> not (List.mem x have)) want in
  let widened =
    List.fold_left (fun acc x -> A.Product (acc, adom schemas x)) e missing
  in
  A.Project (want, widened)

let sort_vars = List.sort_uniq String.compare

(** Core translation: returns the expression and its column list (sorted). *)
let rec trans schemas (f : F.t) : A.t * string list =
  match f with
  | F.True | F.False ->
    raise
      (Unsupported
         "constant subformula with no free variables; simplify the formula \
          first")
  | F.Pred (p, ts) ->
    let e, cols = atom schemas p ts in
    let order = sort_vars cols in
    ((if cols = order then e else A.Project (order, e)), order)
  | F.Cmp (op, a, b) -> (
    match (a, b) with
    | F.Var x, F.Var y when x = y ->
      if op = F.Eq || op = F.Le || op = F.Ge then (adom schemas x, [ x ])
      else
        (* x <> x and friends are unsatisfiable: the empty unary relation *)
        let a = adom schemas x in
        (A.Diff (a, a), [ x ])
    | F.Var x, F.Var y ->
      let order = sort_vars [ x; y ] in
      let prod = adom_product schemas order in
      (A.Select (A.Cmp (op, A.Attr x, A.Attr y), prod), order)
    | F.Var x, F.Const c ->
      (A.Select (A.Cmp (op, A.Attr x, A.Const c), adom schemas x), [ x ])
    | F.Const c, F.Var x ->
      (A.Select (A.Cmp (op, A.Const c, A.Attr x), adom schemas x), [ x ])
    | F.Const _, F.Const _ ->
      raise (Unsupported "ground comparison; constant-fold the formula first"))
  | F.And _ ->
    (* n-ary conjunction: translate non-comparison conjuncts first and join
       them; comparisons whose variables are already bound then become
       selections — avoiding the adomᵏ materialization entirely for the
       common conjunctive-query shape. *)
    let rec conjuncts = function
      | F.And (a, b) -> conjuncts a @ conjuncts b
      | g -> [ g ]
    in
    let is_cmp = function F.Cmp _ -> true | _ -> false in
    let cmps, rest = List.partition is_cmp (conjuncts f) in
    let base =
      match rest with
      | [] -> None
      | g :: gs ->
        Some
          (List.fold_left
             (fun (ea, va) g' ->
               let eb, vb = trans schemas g' in
               let vars = sort_vars (va @ vb) in
               (A.Project (vars, A.Join (ea, eb)), vars))
             (trans schemas g) gs)
    in
    let apply_cmp (e, cols) g =
      match g with
      | F.Cmp (op, x, y) ->
        let needed = List.concat_map (function F.Var v -> [ v ] | F.Const _ -> []) [ x; y ] in
        (* dedupe: [x <> x] must not product the adom column in twice *)
        let missing = sort_vars (List.filter (fun v -> not (List.mem v cols)) needed) in
        let cols' = sort_vars (cols @ missing) in
        let widened =
          List.fold_left (fun acc v -> A.Product (acc, adom schemas v)) e missing
        in
        let operand = function
          | F.Var v -> A.Attr v
          | F.Const c -> A.Const c
        in
        (A.Project (cols', A.Select (A.Cmp (op, operand x, operand y), widened)), cols')
      | _ -> assert false
    in
    (match base with
    | Some acc -> List.fold_left apply_cmp acc cmps
    | None -> (
      (* pure comparison conjunction: fall back to pairwise translation *)
      match cmps with
      | [] -> assert false
      | g :: gs ->
        List.fold_left
          (fun (ea, va) g' ->
            let eb, vb = trans schemas g' in
            let vars = sort_vars (va @ vb) in
            (A.Project (vars, A.Join (ea, eb)), vars))
          (trans schemas g) gs))
  | F.Or (a, b) ->
    let ea, va = trans schemas a and eb, vb = trans schemas b in
    let vars = sort_vars (va @ vb) in
    (A.Union (pad schemas (ea, va) vars, pad schemas (eb, vb) vars), vars)
  | F.Not g ->
    let eg, vg = trans schemas g in
    if vg = [] then
      (* closed subformula (e.g. [not exists y. S(y)]): E(φ) is the 0-ary
         Boolean relation, so ¬φ is the 0-ary unit minus it.  The unit is
         the nullary projection of the active domain — nonempty exactly
         when the database is, matching the adom reading of ¬ elsewhere. *)
      let unit_rel = A.Project ([], adom schemas "x") in
      (A.Diff (unit_rel, eg), [])
    else (A.Diff (A.Project (vg, adom_product schemas vg), eg), vg)
  | F.Exists (x, g) ->
    let eg, vg = trans schemas g in
    if not (List.mem x vg) then (eg, vg)
    else
      let rest = List.filter (( <> ) x) vg in
      (A.Project (rest, eg), rest)
  | F.Implies _ | F.Forall _ ->
    invalid_arg "trans: formula not prepared (Implies/Forall remain)"

(* Fold True/False through connectives so [trans] never sees closed
   constants except at top level. *)
let rec simplify (f : F.t) : F.t =
  match f with
  | F.True | F.False | F.Pred _ -> f
  | F.Cmp (op, F.Const a, F.Const b) ->
    if F.cmp_eval op a b then F.True else F.False
  | F.Cmp _ -> f
  | F.Not g -> (
    match simplify g with F.True -> F.False | F.False -> F.True | h -> F.Not h)
  | F.And (a, b) -> (
    match (simplify a, simplify b) with
    | F.False, _ | _, F.False -> F.False
    | F.True, h | h, F.True -> h
    | a', b' -> F.And (a', b'))
  | F.Or (a, b) -> (
    match (simplify a, simplify b) with
    | F.True, _ | _, F.True -> F.True
    | F.False, h | h, F.False -> h
    | a', b' -> F.Or (a', b'))
  | F.Exists (x, g) -> (
    match simplify g with
    | F.False -> F.False
    | h -> F.Exists (x, h))
  | F.Forall (x, g) -> (
    match simplify g with F.True -> F.True | h -> F.Forall (x, h))
  | F.Implies (a, b) -> F.Implies (simplify a, simplify b)

(** Translate a DRC query with a non-empty head into RA.  The result's
    columns follow the query head order. *)
let query schemas (q : Drc.query) : A.t =
  Drc.typecheck schemas q;
  let body = simplify (prepare q.Drc.body) in
  match body with
  | F.True | F.False ->
    raise (Unsupported "query body is a closed constant; nothing to translate")
  | _ ->
    let e, vars = trans schemas body in
    if vars = q.Drc.head then e else A.Project (q.Drc.head, e)
