(** Domain Relational Calculus: first-order logic with free variables
    returning answer relations.

    DRC is the language closest to FOL, hence the bridge between relational
    queries and the century of diagrammatic-reasoning formalisms: Peirce's
    beta existential graphs denote exactly its Boolean fragment.  A query is
    [{ x₁, …, xₖ | φ }] with [free(φ) = {x₁, …, xₖ}]. *)

type query = { head : string list; body : Diagres_logic.Fol.t }

module Diag = Diagres_diag.Diag

exception Type_error = Diag.Error

(** Generic DRC type error (used by the translators); {!typecheck} raises
    more specific codes. *)
let type_error fmt =
  Diag.error ~code:"E-DRC-TYPE-000" ~phase:Diag.Type fmt

let query head body = { head; body }

(** Check head/free-variable agreement and predicate arities against the
    database schemas. *)
let typecheck (schemas : (string * Diagres_data.Schema.t) list) (q : query) =
  let err ?hints ?needle code fmt =
    Diag.error ?hints ?needle ~code ~phase:Diag.Type fmt
  in
  let free = Diagres_logic.Fol.free_var_list q.body in
  let head_sorted = List.sort_uniq String.compare q.head in
  (if List.length head_sorted <> List.length q.head then
     let dup =
       List.find
         (fun v -> List.length (List.filter (String.equal v) q.head) > 1)
         q.head
     in
     err "E-DRC-TYPE-001" ~needle:dup "duplicate head variable %S" dup);
  if head_sorted <> free then
    err "E-DRC-TYPE-002"
      "head variables {%s} must equal free variables {%s}"
      (String.concat "," q.head) (String.concat "," free);
  List.iter
    (fun (p, arity) ->
      match List.assoc_opt p schemas with
      | None ->
        err "E-DRC-TYPE-003" ~needle:p
          ~hints:(Diag.did_you_mean ~candidates:(List.map fst schemas) p)
          "unknown relation %S" p
      | Some s ->
        if Diagres_data.Schema.arity s <> arity then
          err "E-DRC-TYPE-004" ~needle:p
            "relation %S used with arity %d, declared %d" p arity
            (Diagres_data.Schema.arity s))
    (Diagres_logic.Fol.predicate_list q.body)

(** Active-domain evaluation.  Variables are bound from the atoms that
    mention them through {!Diagres_logic.Structure.answers} (range
    restriction with index probes), falling back to active-domain
    enumeration only for genuinely unrestricted variables.  For safe-range
    queries this agrees with the natural (domain-independent) semantics;
    for unsafe ones it exhibits exactly the domain dependence the tutorial
    discusses around Peirce's beta graphs. *)
let eval (db : Diagres_data.Database.t) (q : query) : Diagres_data.Relation.t =
  let module D = Diagres_data in
  let schemas =
    List.map (fun (n, r) -> (n, D.Relation.schema r)) (D.Database.relations db)
  in
  typecheck schemas q;
  (* miniscoping eliminates ∀/⇒ and keeps the enumeration from exploring
     quantifier blocks irrelevant to each conjunct *)
  let body = Diagres_logic.Fol.miniscope q.body in
  let st = Diagres_logic.Structure.for_formula body db in
  let rows = Diagres_logic.Structure.answers st ~order:q.head body in
  if q.head = [] then
    if Diagres_logic.Structure.eval_sentence st body then
      D.Relation.of_lists [] [ [] ]
    else D.Relation.empty []
  else
    let ty_of_col i =
      match rows with
      | [] -> D.Value.Tint
      | row :: _ -> D.Value.type_of (List.nth row i)
    in
    let schema = List.mapi (fun i x -> D.Schema.attr ~ty:(ty_of_col i) x) q.head in
    D.Relation.of_lists schema rows

let eval_sentence db body =
  let body = Diagres_logic.Fol.miniscope body in
  let st = Diagres_logic.Structure.for_formula body db in
  Diagres_logic.Structure.eval_sentence st body

(** Naive active-domain evaluation — quantifiers enumerate the universe
    narrowed only by static column guards.  The reference implementation
    {!eval} is differentially tested against, and the benchmark baseline. *)
let eval_naive (db : Diagres_data.Database.t) (q : query) :
    Diagres_data.Relation.t =
  let module D = Diagres_data in
  let body = Diagres_logic.Fol.miniscope q.body in
  let st = Diagres_logic.Structure.for_formula body db in
  let rows = Diagres_logic.Structure.answers_naive st ~order:q.head body in
  if q.head = [] then
    if Diagres_logic.Structure.eval_sentence_naive st body then
      D.Relation.of_lists [] [ [] ]
    else D.Relation.empty []
  else
    let ty_of_col i =
      match rows with
      | [] -> D.Value.Tint
      | row :: _ -> D.Value.type_of (List.nth row i)
    in
    let schema = List.mapi (fun i x -> D.Schema.attr ~ty:(ty_of_col i) x) q.head in
    D.Relation.of_lists schema rows

let eval_sentence_naive db body =
  let body = Diagres_logic.Fol.miniscope body in
  let st = Diagres_logic.Structure.for_formula body db in
  Diagres_logic.Structure.eval_sentence_naive st body

(* -------------------------------------------------------------------- *)
(* Concrete syntax. *)

let to_string q =
  Printf.sprintf "{ %s | %s }"
    (String.concat ", " q.head)
    (Diagres_logic.Fol.to_string q.body)

let pp ppf q = Fmt.string ppf (to_string q)
