(** Facade over the translation hexagon between TRC, DRC, and RA.

    Direct arrows: TRC→DRC ({!Trc_to_drc}), DRC→RA ({!Drc_to_ra}),
    RA→DRC ({!Ra_to_drc}), RA→TRC ({!Ra_to_trc}).  The remaining arrows
    compose: TRC→RA = DRC→RA ∘ TRC→DRC, and DRC→TRC = RA→TRC ∘ DRC→RA.
    Every arrow is differential-tested for semantics preservation. *)

type schemas = (string * Diagres_data.Schema.t) list

let trc_to_drc : schemas -> Trc.query -> Drc.query = Trc_to_drc.query

let drc_to_ra : schemas -> Drc.query -> Diagres_ra.Ast.t = Drc_to_ra.query

let ra_to_drc : schemas -> Diagres_ra.Ast.t -> Drc.query = Ra_to_drc.query

let ra_to_trc : schemas -> Diagres_ra.Ast.t -> Trc.query list = Ra_to_trc.queries

let trc_to_ra schemas q = drc_to_ra schemas (trc_to_drc schemas q)

let drc_to_trc schemas q = ra_to_trc schemas (drc_to_ra schemas q)

(** Split TRC queries into single-panel (nested-box-drawable) queries: a
    query whose body hides a disjunction in positive position is re-derived
    through RA, where {!Ra_rewrite} pulls the union to the top.  Queries
    already drawable pass through untouched (keeping their readable
    variable names). *)
let drawable_panels schemas (qs : Trc.query list) : Trc.query list =
  let panels =
    List.concat_map
      (fun (q : Trc.query) ->
        let q = Trc.simplify_types schemas q in
        if Trc.single_panel q.Trc.body then [ q ]
        else
          List.map
            (fun body -> Trc.simplify_types schemas { q with Trc.body })
            (Trc.panel_split q.Trc.body))
      qs
  in
  (* a panel whose body folded to [false] contributes nothing to the union;
     if everything folded away, keep one explicitly empty panel so callers
     still have a well-formed query to print or draw *)
  match List.filter (fun (q : Trc.query) -> q.Trc.body <> Trc.False) panels with
  | [] -> (
    match panels with [] -> [] | p :: _ -> [ { p with Trc.body = Trc.False } ])
  | live -> live

(** Union-free TRC for a DRC query when a single panel suffices. *)
let drc_to_trc_single schemas q =
  match drc_to_trc schemas q with
  | [ single ] -> Some single
  | _ -> None

(** Evaluate a query of any of the three languages to a relation, used by
    the differential tests and the cross-language bench (E1). *)
type any_query =
  | Ra of Diagres_ra.Ast.t
  | Trc of Trc.query
  | Drc of Drc.query

let eval_any db = function
  | Ra e -> Diagres_ra.Eval.eval_planned db e
  | Trc q -> Trc.eval db q
  | Drc q -> Drc.eval db q
