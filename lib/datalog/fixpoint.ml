(** Recursive Datalog with stratified negation — the extension beyond the
    tutorial's non-recursive scope (its reference [3], QBD*, is exactly "a
    graphical query language with recursion").

    Evaluation is a stratified fixpoint: predicates are grouped into
    strongly connected components of the dependency graph; components are
    processed in topological order; within a component, rules iterate to a
    fixpoint.  Negation must point to a strictly lower component — checked,
    not assumed.

    Two engines are provided.  {!eval_program} is {e semi-naive}: each round
    joins every rule against only the {e delta} (the tuples first derived in
    the previous round), so a tuple's derivations are explored once rather
    than once per round.  {!eval_program_naive} is the textbook
    re-evaluate-everything loop, kept as the reference implementation for
    differential tests and the benchmark baseline. *)

module D = Diagres_data
module Pool = Diagres_pool.Pool
module T = Diagres_telemetry.Telemetry

(* Fixpoint telemetry: [datalog.rounds] counts every delta round across
   all strata (the semi-naive engine only); spans are per stratum
   ([stratum], attrs: predicates, rounds) and per round ([round], attrs:
   round index and the total delta size it produced). *)
let c_rounds = T.counter "datalog.rounds"

exception Fixpoint_error of string

let error fmt = Format.kasprintf (fun s -> raise (Fixpoint_error s)) fmt

(* ---------------- dependency SCCs (Tarjan) ---------------- *)

let sccs (nodes : string list) (edges : (string * string) list) :
    string list list =
  let node_set = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace node_set n ()) nodes;
  (* adjacency table, restricted to [nodes], built once: Tarjan is then
     O(V + E) instead of the O(V·E) of filtering the edge list per node *)
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      if Hashtbl.mem node_set a && Hashtbl.mem node_set b then
        Hashtbl.replace adj a (b :: (Option.value ~default:[] (Hashtbl.find_opt adj a))))
    edges;
  let succs n = Option.value ~default:[] (Hashtbl.find_opt adj n) in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) nodes;
  (* Tarjan emits SCCs in reverse topological order *)
  List.rev !out

(* ---------------- stratification check ---------------- *)

(** Negation must not occur inside a recursive component: for every rule
    [h :- …, not p, …], [p] must be in a strictly earlier component. *)
let check_stratified (p : Ast.program) (components : string list list) =
  let comp_of = Hashtbl.create 16 in
  List.iteri
    (fun i comp -> List.iter (fun n -> Hashtbl.replace comp_of n i) comp)
    components;
  List.iter
    (fun (r : Ast.rule) ->
      let hc = Hashtbl.find_opt comp_of r.Ast.head.Ast.pred in
      List.iter
        (function
          | Ast.Neg a -> (
            match (hc, Hashtbl.find_opt comp_of a.Ast.pred) with
            | Some h, Some b when b >= h ->
              error
                "program is not stratified: %S is negated inside its own \
                 recursive component (rule %s)"
                a.Ast.pred (Ast.rule_to_string r)
            | _ -> ())
          | _ -> ())
        r.Ast.body)
    p

(* ---------------- shared fixpoint scaffolding ---------------- *)

let default_max_rounds = 10_000

let schema_for arities pred =
  let arity = List.assoc pred arities in
  List.init arity (fun i ->
      D.Schema.attr ~ty:D.Value.Tany (Printf.sprintf "x%d" (i + 1)))

let diverged pred rounds =
  error
    "fixpoint did not converge after %d rounds while computing %S; the \
     program likely derives an unbounded set (pass ~max_rounds to raise \
     the bound)"
    rounds pred

(* static analysis of a program: components in topological order, plus the
   arity table; shared by both engines *)
let prepare (db : D.Database.t) (p : Ast.program) =
  let schemas =
    List.map (fun (n, r) -> (n, D.Relation.schema r)) (D.Database.relations db)
  in
  (* arity + safety checks are shared with the non-recursive engine; the
     non-recursion check is deliberately skipped *)
  let arities = Check.check_arities schemas p in
  Check.check_safety p;
  let idb = Ast.idb_preds p in
  let idb_set = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace idb_set n ()) idb;
  let edges =
    List.filter_map
      (fun (a, b, _) -> if Hashtbl.mem idb_set b then Some (a, b) else None)
      (Check.edges p)
  in
  let components = sccs idb edges in
  check_stratified p components;
  (arities, components)

(* ---------------- naive fixpoint (reference) ---------------- *)

(* one round of all rules for the predicates in [comp], against the current
   store; delegates single-rule evaluation to the shared engine *)
let eval_rules_once (store : D.Database.t) (p : Ast.program) (comp : string list) :
    (string * D.Tuple.t list) list =
  List.map
    (fun pred ->
      let rows =
        List.concat_map (Eval.eval_rule_tuples store) (Ast.rules_for p pred)
      in
      (pred, rows))
    comp

let eval_program_naive ?(max_rounds = default_max_rounds) (db : D.Database.t)
    (p : Ast.program) : D.Database.t =
  let arities, components = prepare db p in
  List.fold_left
    (fun store comp ->
      (* seed the component's predicates as empty *)
      let store =
        List.fold_left
          (fun st pred ->
            D.Database.add pred (D.Relation.empty (schema_for arities pred)) st)
          store comp
      in
      let rec iterate store round =
        if round > max_rounds then diverged (List.hd comp) max_rounds;
        let updates = eval_rules_once store p comp in
        let store', changed =
          List.fold_left
            (fun (st, ch) (pred, rows) ->
              let old = D.Database.find pred st in
              let merged =
                List.fold_left (fun r t -> D.Relation.add t r) old rows
              in
              ( D.Database.add pred merged st,
                ch || D.Relation.cardinality merged > D.Relation.cardinality old ))
            (store, false) updates
        in
        if changed then iterate store' (round + 1) else store'
      in
      iterate store 0)
    db components

(* ---------------- parallel rule evaluation ---------------- *)

(* One delta round evaluates many independent rule bodies against a frozen
   store — the natural unit of parallelism for recursive programs.  Each
   (pred, rule) pair becomes one pool task; results are regrouped per
   predicate in the original order, so the merged tuple sets are identical
   to the sequential engine's at any domain count.  The store is an
   immutable map and the per-relation index caches are mutex-guarded, so
   concurrent body evaluations are safe. *)
let eval_rules_parallel (store : D.Database.t)
    (tasks : (string * Ast.rule) list) : (string * D.Tuple.t list) list =
  let rows =
    Pool.parallel_list_map
      (fun (_, r) -> Eval.eval_rule_tuples store r)
      tasks
  in
  List.map2 (fun (pred, _) rows -> (pred, rows)) tasks rows

(* Regroup flat (pred, rows) results per predicate, in [preds] order. *)
let group_rows preds (results : (string * D.Tuple.t list) list) :
    (string * D.Tuple.t list) list =
  List.map
    (fun pred ->
      ( pred,
        List.concat_map
          (fun (p, rows) -> if p = pred then rows else [])
          results ))
    preds

(* ---------------- semi-naive fixpoint ---------------- *)

(* Reserved name under which the delta of a recursive predicate is exposed
   to the rule evaluator.  The parser's identifiers cannot contain '@', so
   this can never collide with a user predicate. *)
let delta_name pred = pred ^ "@delta"

(* Semi-naive rewriting of a rule: one variant per positive occurrence of a
   predicate of the current component, with that single occurrence redirected
   to the delta relation.  A new derivation in round i must use at least one
   tuple first derived in round i−1, so evaluating all variants against
   (full, delta) reaches exactly the new tuples. *)
let delta_variants in_comp (r : Ast.rule) : Ast.rule list =
  let rec go before after acc =
    match after with
    | [] -> List.rev acc
    | (Ast.Pos a as l) :: rest when in_comp a.Ast.pred ->
      let redirected = Ast.Pos { a with Ast.pred = delta_name a.Ast.pred } in
      let variant =
        { r with Ast.body = List.rev_append before (redirected :: rest) }
      in
      go (l :: before) rest (variant :: acc)
    | l :: rest -> go (l :: before) rest acc
  in
  go [] r.Ast.body []

let delta_total ds =
  List.fold_left (fun a (_, d) -> a + D.Relation.cardinality d) 0 ds

let eval_program ?(max_rounds = default_max_rounds) (db : D.Database.t)
    (p : Ast.program) : D.Database.t =
  let arities, components = prepare db p in
  List.fold_left
    (fun store comp ->
      T.with_span ~cat:"fixpoint"
        ~attrs:(fun () -> [ ("predicates", T.Str (String.concat "," comp)) ])
        "stratum"
      @@ fun () ->
      let comp_set = Hashtbl.create 4 in
      List.iter (fun n -> Hashtbl.replace comp_set n ()) comp;
      let in_comp n = Hashtbl.mem comp_set n in
      let rules pred = Ast.rules_for p pred in
      (* precomputed delta rewritings, one list per predicate *)
      let variants =
        List.map (fun pred -> (pred, List.concat_map (delta_variants in_comp) (rules pred))) comp
      in
      (* seed the component's predicates as empty *)
      let store =
        List.fold_left
          (fun st pred ->
            D.Database.add pred (D.Relation.empty (schema_for arities pred)) st)
          store comp
      in
      (* round 0: full evaluation of every rule gives the initial deltas;
         rule bodies across the whole component run on the domain pool *)
      let sp0 = T.start ~cat:"fixpoint" "round" in
      let round0 =
        group_rows comp
          (eval_rules_parallel store
             (List.concat_map
                (fun pred -> List.map (fun r -> (pred, r)) (rules pred))
                comp))
      in
      let store, deltas =
        List.fold_left
          (fun (st, ds) (pred, rows) ->
            let rel =
              List.fold_left
                (fun r t -> D.Relation.add t r)
                (D.Relation.empty (schema_for arities pred))
                rows
            in
            (D.Database.add pred rel st, (pred, rel) :: ds))
          (store, []) round0
      in
      T.incr c_rounds;
      T.finish
        ~attrs:[ ("round", T.Int 0); ("delta", T.Int (delta_total deltas)) ]
        sp0;
      let rec iterate store deltas round =
        if List.for_all (fun (_, d) -> D.Relation.is_empty d) deltas then store
        else if round > max_rounds then diverged (List.hd comp) max_rounds
        else begin
          let sp = T.start ~cat:"fixpoint" "round" in
          (* expose the deltas under their reserved names *)
          let probe_store =
            List.fold_left
              (fun st (pred, d) -> D.Database.add (delta_name pred) d st)
              store deltas
          in
          (* evaluate only the delta variants — every variant of every
             predicate of the component as one parallel batch against the
             frozen probe store — then keep the genuinely new tuples *)
          let round_rows =
            group_rows (List.map fst variants)
              (eval_rules_parallel probe_store
                 (List.concat_map
                    (fun (pred, vs) -> List.map (fun v -> (pred, v)) vs)
                    variants))
          in
          let store', deltas' =
            List.fold_left
              (fun (st, ds) (pred, rows) ->
                let full = D.Database.find pred st in
                let fresh =
                  List.fold_left
                    (fun acc t ->
                      if D.Relation.mem t full || D.Relation.mem t acc then acc
                      else D.Relation.add t acc)
                    (D.Relation.empty (schema_for arities pred))
                    rows
                in
                let full' =
                  D.Relation.fold (fun t r -> D.Relation.add t r) fresh full
                in
                (D.Database.add pred full' st, (pred, fresh) :: ds))
              (store, []) round_rows
          in
          T.incr c_rounds;
          T.finish
            ~attrs:
              [ ("round", T.Int round);
                ("delta", T.Int (delta_total deltas')) ]
            sp;
          iterate store' deltas' (round + 1)
        end
      in
      iterate store deltas 1)
    db components

let query ?max_rounds db p ~goal =
  let store = eval_program ?max_rounds db p in
  match D.Database.find_opt goal store with
  | Some r -> r
  | None -> error "goal predicate not defined: %s" goal

let query_naive ?max_rounds db p ~goal =
  let store = eval_program_naive ?max_rounds db p in
  match D.Database.find_opt goal store with
  | Some r -> r
  | None -> error "goal predicate not defined: %s" goal
