(** Static checks: arity consistency, safety (range restriction), absence of
    recursion, and stratification of negation.

    For non-recursive programs every stratification exists trivially; we
    still compute strata (the maximum number of negations on any dependency
    path) because the tutorial's QBE comparison counts "logical steps". *)

module Diag = Diagres_diag.Diag

exception Check_error = Diag.Error

let err ?hints ?needle code fmt =
  Diag.error ?hints ?needle ~code ~phase:Diag.Resolve fmt

(** Predicate dependency edges: head → body predicate, tagged with whether
    the dependency is through a negation. *)
let edges (p : Ast.program) =
  List.concat_map
    (fun (r : Ast.rule) ->
      List.filter_map
        (function
          | Ast.Pos a -> Some (r.Ast.head.Ast.pred, a.Ast.pred, false)
          | Ast.Neg a -> Some (r.Ast.head.Ast.pred, a.Ast.pred, true)
          | Ast.Cond _ -> None)
        r.Ast.body)
    p

(** Raise on recursion (any cycle through IDB predicates). *)
let check_nonrecursive (p : Ast.program) =
  let idb = Ast.idb_preds p in
  let es = edges p in
  let succs n =
    List.filter_map
      (fun (a, b, _) -> if a = n && List.mem b idb then Some b else None)
      es
  in
  let rec visit path n =
    if List.mem n path then
      err "E-DLG-CHECK-004" ~needle:n
        "recursion through predicate %S (cycle: %s)" n
        (String.concat " -> " (List.rev (n :: path)))
    else List.iter (visit (n :: path)) (succs n)
  in
  List.iter (visit []) idb

(** Safety: every head variable and every variable of a negative literal or
    condition must occur in some positive body literal. *)
let check_safety (p : Ast.program) =
  List.iter
    (fun (r : Ast.rule) ->
      let positive =
        List.concat_map
          (function Ast.Pos a -> Ast.atom_vars a | _ -> [])
          r.Ast.body
      in
      let need v where =
        if not (List.mem v positive) then
          Diag.error ~code:"E-DLG-CHECK-003" ~phase:Diag.Safety ~needle:v
            "unsafe rule %S: variable %s in %s is not bound by a \
             positive literal"
            (Ast.rule_to_string r) v where
      in
      List.iter (fun v -> need v "the head") (Ast.atom_vars r.Ast.head);
      List.iter
        (function
          | Ast.Neg a -> List.iter (fun v -> need v "a negated literal") (Ast.atom_vars a)
          | Ast.Cond (_, x, y) ->
            List.iter
              (fun v -> need v "a condition")
              (Ast.term_vars x @ Ast.term_vars y)
          | Ast.Pos _ -> ())
        r.Ast.body)
    p

(** Arity consistency against the database schemas and across rules.
    Returns the full predicate→arity table (EDB and IDB). *)
let check_arities schemas (p : Ast.program) =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (name, s) -> Hashtbl.replace table name (Diagres_data.Schema.arity s))
    schemas;
  let check_atom (a : Ast.atom) =
    match Hashtbl.find_opt table a.Ast.pred with
    | Some n ->
      if n <> List.length a.Ast.args then
        Diag.error ~code:"E-DLG-CHECK-002" ~phase:Diag.Type
          ~needle:a.Ast.pred
          "predicate %S used with arity %d, expected %d" a.Ast.pred
          (List.length a.Ast.args) n
    | None -> Hashtbl.replace table a.Ast.pred (List.length a.Ast.args)
  in
  (* heads first so IDB arities are seeded by definitions *)
  List.iter (fun (r : Ast.rule) -> check_atom r.Ast.head) p;
  List.iter
    (fun (r : Ast.rule) ->
      List.iter
        (function Ast.Pos a | Ast.Neg a -> check_atom a | Ast.Cond _ -> ())
        r.Ast.body)
    p;
  (* every positive/negative body predicate must be EDB or defined *)
  let idb = Ast.idb_preds p in
  List.iter
    (fun (r : Ast.rule) ->
      List.iter
        (function
          | Ast.Pos a | Ast.Neg a ->
            if (not (List.mem_assoc a.Ast.pred schemas)) && not (List.mem a.Ast.pred idb)
            then
              err "E-DLG-CHECK-001" ~needle:a.Ast.pred
                ~hints:
                  (Diag.did_you_mean
                     ~candidates:(List.map fst schemas @ idb)
                     a.Ast.pred)
                "undefined predicate %S" a.Ast.pred
          | Ast.Cond _ -> ())
        r.Ast.body)
    p;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []

(** Stratum of each IDB predicate: EDB is stratum 0; a predicate's stratum
    is ≥ its positive dependencies and > its negative ones. *)
let strata (p : Ast.program) : (string * int) list =
  check_nonrecursive p;
  let idb = Ast.idb_preds p in
  let es = edges p in
  let memo = Hashtbl.create 16 in
  let rec stratum n =
    if not (List.mem n idb) then 0
    else
      match Hashtbl.find_opt memo n with
      | Some s -> s
      | None ->
        let deps =
          List.filter_map
            (fun (a, b, neg) -> if a = n then Some (b, neg) else None)
            es
        in
        let s =
          List.fold_left
            (fun acc (b, neg) ->
              max acc (stratum b + if neg then 1 else 0))
            0 deps
        in
        Hashtbl.replace memo n s;
        s
  in
  List.map (fun n -> (n, stratum n)) idb

(** Topological evaluation order of IDB predicates (dependencies first). *)
let eval_order (p : Ast.program) : string list =
  check_nonrecursive p;
  let idb = Ast.idb_preds p in
  let es = edges p in
  let deps n =
    List.filter_map
      (fun (a, b, _) -> if a = n && List.mem b idb then Some b else None)
      es
  in
  let visited = ref [] in
  let rec visit n =
    if not (List.mem n !visited) then begin
      List.iter visit (deps n);
      visited := !visited @ [ n ]
    end
  in
  List.iter visit idb;
  !visited

(** Run all checks; returns the arity table. *)
let check_program schemas (p : Ast.program) =
  if p = [] then err "E-DLG-CHECK-005" "empty program";
  let arities = check_arities schemas p in
  check_safety p;
  check_nonrecursive p;
  arities
