(** Bottom-up evaluation.

    IDB predicates are computed in dependency order (one pass suffices:
    the program is non-recursive).  Rule bodies run as nested-loop joins
    with environment propagation; negative literals and conditions are
    delayed until their variables are bound, which the safety check
    guarantees will happen. *)

module D = Diagres_data

exception Eval_error of string

type env = (string * D.Value.t) list

let term_value (env : env) = function
  | Ast.Const c -> Some c
  | Ast.Var x -> List.assoc_opt x env

(* Match an atom against a tuple, extending the environment; None on
   mismatch. *)
let match_atom (env : env) (a : Ast.atom) (tup : D.Tuple.t) : env option =
  let rec go env i = function
    | [] -> Some env
    | t :: rest -> (
      let v = D.Tuple.get tup i in
      match t with
      | Ast.Const c -> if D.Value.equal c v then go env (i + 1) rest else None
      | Ast.Var x -> (
        match List.assoc_opt x env with
        | Some bound ->
          if D.Value.equal bound v then go env (i + 1) rest else None
        | None -> go ((x, v) :: env) (i + 1) rest))
  in
  go env 0 a.Ast.args

let literal_ready env = function
  | Ast.Pos _ -> true
  | Ast.Neg a -> List.for_all (fun v -> List.mem_assoc v env) (Ast.atom_vars a)
  | Ast.Cond (_, x, y) ->
    List.for_all
      (fun v -> List.mem_assoc v env)
      (Ast.term_vars x @ Ast.term_vars y)

(* Number of already-bound argument positions of an atom — the selectivity
   heuristic for join ordering: the more bound columns, the narrower the
   index probe. *)
let bound_count env (a : Ast.atom) =
  List.fold_left
    (fun n t ->
      match t with
      | Ast.Const _ -> n + 1
      | Ast.Var x -> if List.mem_assoc x env then n + 1 else n)
    0 a.Ast.args

(* Pick the next evaluable literal: prefer bound-only negations and
   conditions (cheap filters), else the positive literal with the most
   bound argument positions (the most index-selective probe). *)
let pick env literals =
  let rec go acc = function
    | [] -> None
    | l :: rest ->
      if literal_ready env l && (match l with Ast.Pos _ -> false | _ -> true)
      then Some (l, List.rev_append acc rest)
      else go (l :: acc) rest
  in
  match go [] literals with
  | Some x -> Some x
  | None ->
    let best =
      List.fold_left
        (fun best (i, l) ->
          match l with
          | Ast.Pos a -> (
            let c = bound_count env a in
            match best with
            | Some (_, _, c') when c' >= c -> best
            | _ -> Some (i, l, c))
          | _ -> best)
        None
        (List.mapi (fun i l -> (i, l)) literals)
    in
    Option.map
      (fun (i, l, _) ->
        (l, List.filteri (fun j _ -> j <> i) literals))
      best

let lookup store name =
  match D.Database.find_opt name store with
  | Some r -> r
  | None -> raise (Eval_error ("predicate not yet computed: " ^ name))

(** Evaluate one rule's body against [store], returning the head tuples it
    derives.  Shared by the non-recursive engine below and the stratified
    fixpoint engine ({!Fixpoint}). *)
let eval_rule_tuples store (r : Ast.rule) : D.Tuple.t list =
    let rec go env literals acc =
      match pick env literals with
      | None ->
        if literals <> [] then
          raise (Eval_error ("cannot order body of rule " ^ Ast.rule_to_string r));
        let row =
          List.map
            (fun t ->
              match term_value env t with
              | Some v -> v
              | None -> raise (Eval_error "unbound head variable"))
            r.Ast.head.Ast.args
        in
        D.Tuple.of_list row :: acc
      | Some (Ast.Pos a, rest) ->
        (* probe the relation through an index on the atom's bound argument
           positions (constants and env-bound variables); match_atom then
           only has to bind the remaining variables *)
        let rel = lookup store a.Ast.pred in
        let positions, key_rev =
          List.fold_left
            (fun (ps, ks) (i, t) ->
              match t with
              | Ast.Const c -> (i :: ps, c :: ks)
              | Ast.Var x -> (
                match List.assoc_opt x env with
                | Some v -> (i :: ps, v :: ks)
                | None -> (ps, ks)))
            ([], [])
            (List.mapi (fun i t -> (i, t)) a.Ast.args)
        in
        let positions = List.rev positions in
        let key = Array.of_list (List.rev key_rev) in
        List.fold_left
          (fun acc tup ->
            match match_atom env a tup with
            | Some env' -> go env' rest acc
            | None -> acc)
          acc
          (D.Relation.matching rel positions key)
      | Some (Ast.Neg a, rest) ->
        (* a negated literal is only picked once all its variables are
           bound (safety + readiness), so this is a membership test *)
        let rel = lookup store a.Ast.pred in
        let tup =
          List.map
            (fun t ->
              match term_value env t with
              | Some v -> v
              | None -> raise (Eval_error "unbound variable in negated literal"))
            a.Ast.args
        in
        if D.Relation.mem (D.Tuple.of_list tup) rel then acc
        else go env rest acc
      | Some (Ast.Cond (op, x, y), rest) -> (
        match (term_value env x, term_value env y) with
        | Some a, Some b ->
          if Diagres_logic.Fol.cmp_eval op a b then go env rest acc else acc
        | _ -> raise (Eval_error "unbound variable in condition"))
    in
  go [] r.Ast.body []

let eval_program (db : D.Database.t) (p : Ast.program) : D.Database.t =
  let schemas =
    List.map (fun (n, r) -> (n, D.Relation.schema r)) (D.Database.relations db)
  in
  ignore (Check.check_program schemas p);
  let order = Check.eval_order p in
  List.fold_left
    (fun store pred ->
      let rules = Ast.rules_for p pred in
      let arity =
        match rules with
        | r :: _ -> List.length r.Ast.head.Ast.args
        | [] -> 0
      in
      let rows = List.concat_map (eval_rule_tuples store) rules in
      let ty_of i =
        match rows with
        | [] -> D.Value.Tany
        | row :: _ -> D.Value.type_of (D.Tuple.get row i)
      in
      let schema =
        List.init arity (fun i ->
            D.Schema.attr ~ty:(ty_of i) (Printf.sprintf "x%d" (i + 1)))
      in
      D.Database.add pred (D.Relation.of_tuples schema rows) store)
    db order

(** Evaluate and return the relation of predicate [goal]. *)
let query db p ~goal =
  let store = eval_program db p in
  match D.Database.find_opt goal store with
  | Some r -> r
  | None -> raise (Eval_error ("goal predicate not defined: " ^ goal))
