(** Name resolution: qualify every column reference with its table alias.

    SQL lets queries reference columns bare ([sid]) and subqueries reference
    enclosing FROM aliases (correlation).  Resolution walks the scope stack
    innermost-first, mirroring SQL's rules; ambiguous bare columns are
    errors.  The output AST has every [Col] qualified, every [Star]
    expanded, and every missing alias made explicit — the canonical form the
    translators consume. *)

module D = Diagres_data
module Diag = Diagres_diag.Diag

exception Resolve_error = Diag.Error

let err ?hints ?needle code fmt =
  Diag.error ?hints ?needle ~code ~phase:Diag.Resolve fmt

type env = {
  schemas : (string * D.Schema.t) list;
  scopes : Ast.table_ref list list;  (** innermost scope first *)
}

let table_schema env name =
  match List.assoc_opt name env.schemas with
  | Some s -> s
  | None ->
    err "E-SQL-RESOLVE-001" ~needle:name
      ~hints:(Diag.did_you_mean ~candidates:(List.map fst env.schemas) name)
      "unknown table %S" name

let check_from env (from : Ast.table_ref list) =
  let aliases = List.map (fun t -> t.Ast.alias) from in
  let rec dup = function
    | [] -> ()
    | a :: rest ->
      if List.mem a rest then
        err "E-SQL-RESOLVE-002" ~needle:a "duplicate table alias %S" a
      else dup rest
  in
  dup aliases;
  List.iter (fun t -> ignore (table_schema env t.Ast.name)) from

(** Resolve a column reference against the scope stack. *)
let resolve_col env (c : Ast.col) : Ast.col =
  match c.Ast.table with
  | Some alias ->
    let found =
      List.exists
        (fun scope -> List.exists (fun t -> t.Ast.alias = alias) scope)
        env.scopes
    in
    if not found then
      err "E-SQL-RESOLVE-003" ~needle:alias
        ~hints:
          (Diag.did_you_mean
             ~candidates:
               (List.concat_map (List.map (fun t -> t.Ast.alias)) env.scopes)
             alias)
        "unknown table alias %S" alias;
    let tref =
      List.find_map
        (fun scope -> List.find_opt (fun t -> t.Ast.alias = alias) scope)
        env.scopes
      |> Option.get
    in
    if not (D.Schema.mem c.Ast.column (table_schema env tref.Ast.name)) then
      err "E-SQL-RESOLVE-004" ~needle:c.Ast.column
        ~hints:
          (Diag.did_you_mean
             ~candidates:(D.Schema.names (table_schema env tref.Ast.name))
             c.Ast.column)
        "table %S (alias %S) has no column %S" tref.Ast.name alias
        c.Ast.column;
    c
  | None ->
    (* find candidate tables, innermost scope first; stop at the first scope
       with a match, error on ambiguity within that scope *)
    let rec go = function
      | [] ->
        let all_cols =
          List.concat_map
            (List.concat_map (fun t ->
                 D.Schema.names (table_schema env t.Ast.name)))
            env.scopes
        in
        err "E-SQL-RESOLVE-005" ~needle:c.Ast.column
          ~hints:(Diag.did_you_mean ~candidates:all_cols c.Ast.column)
          "unknown column %S" c.Ast.column
      | scope :: outer -> (
        let hits =
          List.filter
            (fun t -> D.Schema.mem c.Ast.column (table_schema env t.Ast.name))
            scope
        in
        match hits with
        | [] -> go outer
        | [ t ] -> { c with Ast.table = Some t.Ast.alias }
        | _ ->
          err "E-SQL-RESOLVE-006" ~needle:c.Ast.column
            "ambiguous column %S (qualify it with a table alias)"
            c.Ast.column)
    in
    go env.scopes

let resolve_expr env = function
  | Ast.Col c -> Ast.Col (resolve_col env c)
  | Ast.Lit v -> Ast.Lit v

(* static type of a resolved expression, for the comparison check *)
let expr_ty env = function
  | Ast.Lit v -> D.Value.type_of v
  | Ast.Col { Ast.table = Some alias; column } -> (
    let tref =
      List.find_map
        (fun scope -> List.find_opt (fun t -> t.Ast.alias = alias) scope)
        env.scopes
    in
    match tref with
    | None -> D.Value.Tany
    | Some t -> (
      match D.Schema.find_opt column (table_schema env t.Ast.name) with
      | Some at -> at.D.Schema.ty
      | None -> D.Value.Tany))
  | Ast.Col { Ast.table = None; _ } -> D.Value.Tany

let expr_name = function
  | Ast.Lit v -> D.Value.to_literal v
  | Ast.Col { Ast.table = Some alias; column } -> alias ^ "." ^ column
  | Ast.Col { Ast.table = None; column } -> column

let rec resolve_cond env = function
  | Ast.True -> Ast.True
  | Ast.Cmp (op, a, b) ->
    let a = resolve_expr env a and b = resolve_expr env b in
    let ta = expr_ty env a and tb = expr_ty env b in
    (* reject comparisons that can never hold (int column vs string
       literal, …) instead of silently evaluating to false *)
    if not (D.Value.ty_compatible ta tb) then
      Diag.error ~code:"E-SQL-TYPE-001" ~phase:Diag.Type
        ~needle:(expr_name b)
        "cannot compare %s (of type %s) %s %s (of type %s): operand types \
         are incompatible"
        (expr_name a) (D.Value.ty_name ta)
        (Diagres_logic.Fol.cmp_name op) (expr_name b) (D.Value.ty_name tb);
    Ast.Cmp (op, a, b)
  | Ast.And (a, b) -> Ast.And (resolve_cond env a, resolve_cond env b)
  | Ast.Or (a, b) -> Ast.Or (resolve_cond env a, resolve_cond env b)
  | Ast.Not c -> Ast.Not (resolve_cond env c)
  | Ast.Exists q -> Ast.Exists (resolve_query env q)
  | Ast.In (e, q) ->
    let q' = resolve_query env q in
    (match q'.Ast.select with
    | [ Ast.Item (_, _) ] -> ()
    | _ ->
      err "E-SQL-RESOLVE-007" "IN subquery must select exactly one column");
    Ast.In (resolve_expr env e, q')

and resolve_query env (q : Ast.query) : Ast.query =
  check_from env q.Ast.from;
  let env' = { env with scopes = q.Ast.from :: env.scopes } in
  let select =
    List.concat_map
      (function
        | Ast.Star ->
          (* expand * to every column of every FROM table, qualified *)
          List.concat_map
            (fun t ->
              List.map
                (fun a ->
                  Ast.Item
                    (Ast.Col { Ast.table = Some t.Ast.alias; column = a }, None))
                (D.Schema.names (table_schema env t.Ast.name)))
            q.Ast.from
        | Ast.Item (e, alias) -> [ Ast.Item (resolve_expr env' e, alias) ])
      q.Ast.select
  in
  if select = [] then err "E-SQL-RESOLVE-008" "empty select list";
  { q with Ast.select; where = resolve_cond env' q.Ast.where }

let rec resolve_statement env = function
  | Ast.Query q -> Ast.Query (resolve_query env q)
  | Ast.Union (a, b) ->
    Ast.Union (resolve_statement env a, resolve_statement env b)
  | Ast.Intersect (a, b) ->
    Ast.Intersect (resolve_statement env a, resolve_statement env b)
  | Ast.Except (a, b) ->
    Ast.Except (resolve_statement env a, resolve_statement env b)

let statement schemas st =
  resolve_statement { schemas; scopes = [] } st

let query schemas q = resolve_query { schemas; scopes = [] } q

(** Output column names of a resolved query (for schema compatibility checks
    across set operations). *)
let output_columns (q : Ast.query) =
  List.mapi
    (fun i -> function
      | Ast.Item (_, Some a) -> a
      | Ast.Item (Ast.Col c, None) -> c.Ast.column
      | Ast.Item (Ast.Lit _, None) -> Printf.sprintf "c%d" (i + 1)
      | Ast.Star -> invalid_arg "output_columns: unresolved *")
    q.Ast.select
