(** First-order logic over a relational vocabulary.

    This is the common semantic target of the diagrammatic reasoning
    formalisms (Part 4 of the tutorial): beta existential graphs, string
    diagrams and constraint diagrams all denote FOL formulas.  The Domain
    Relational Calculus is FOL with free variables; its Boolean fragment
    (sentences) is what Peirce's beta graphs express. *)

type term = Var of string | Const of Diagres_data.Value.t

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Pred of string * term list  (** relation-name applied to terms *)
  | Cmp of cmp * term * term    (** built-in comparison, includes equality *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string * t
  | Forall of string * t

let v x = Var x
let c value = Const value
let cint n = Const (Diagres_data.Value.Int n)
let cstr s = Const (Diagres_data.Value.String s)
let pred name args = Pred (name, args)
let eq a b = Cmp (Eq, a, b)
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let exists x f = Exists (x, f)
let forall x f = Forall (x, f)

let conj = function [] -> True | x :: xs -> List.fold_left ( &&& ) x xs
let disj = function [] -> False | x :: xs -> List.fold_left ( ||| ) x xs

let exists_many xs f = List.fold_right (fun x acc -> Exists (x, acc)) xs f
let forall_many xs f = List.fold_right (fun x acc -> Forall (x, acc)) xs f

let cmp_name = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let cmp_negate = function
  | Eq -> Neq | Neq -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt

(** Mirror image for swapping operand order: [a op b ≡ b (flip op) a]. *)
let cmp_flip = function
  | Eq -> Eq | Neq -> Neq | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le

let cmp_eval op a b =
  let module V = Diagres_data.Value in
  match op with
  | Eq -> V.eq a b
  | Neq -> V.neq a b
  | Lt -> V.lt a b
  | Le -> V.le a b
  | Gt -> V.gt a b
  | Ge -> V.ge a b

let term_vars = function Var x -> [ x ] | Const _ -> []

let rec free_vars = function
  | True | False -> []
  | Pred (_, ts) -> List.concat_map term_vars ts
  | Cmp (_, a, b) -> term_vars a @ term_vars b
  | Not f -> free_vars f
  | And (a, b) | Or (a, b) | Implies (a, b) -> free_vars a @ free_vars b
  | Exists (x, f) | Forall (x, f) ->
    List.filter (fun y -> y <> x) (free_vars f)

let free_var_list f = List.sort_uniq String.compare (free_vars f)

let is_sentence f = free_var_list f = []

let rec predicates = function
  | True | False | Cmp _ -> []
  | Pred (p, ts) -> [ (p, List.length ts) ]
  | Not f -> predicates f
  | And (a, b) | Or (a, b) | Implies (a, b) -> predicates a @ predicates b
  | Exists (_, f) | Forall (_, f) -> predicates f

let predicate_list f =
  List.sort_uniq compare (predicates f)

(** Capture-avoiding substitution of term [t] for free variable [x]. *)
let rec subst x t = function
  | (True | False) as f -> f
  | Pred (p, ts) -> Pred (p, List.map (subst_term x t) ts)
  | Cmp (op, a, b) -> Cmp (op, subst_term x t a, subst_term x t b)
  | Not f -> Not (subst x t f)
  | And (a, b) -> And (subst x t a, subst x t b)
  | Or (a, b) -> Or (subst x t a, subst x t b)
  | Implies (a, b) -> Implies (subst x t a, subst x t b)
  | Exists (y, f) when y = x -> Exists (y, f)
  | Forall (y, f) when y = x -> Forall (y, f)
  | Exists (y, f) -> Exists (y, subst x t f)
  | Forall (y, f) -> Forall (y, subst x t f)

and subst_term x t = function
  | Var y when y = x -> t
  | term -> term

(** Negation normal form with quantifier duality. *)
let rec nnf = function
  | (True | False | Pred _ | Cmp _) as f -> f
  | Not f -> nnf_neg f
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Implies (a, b) -> Or (nnf_neg a, nnf b)
  | Exists (x, f) -> Exists (x, nnf f)
  | Forall (x, f) -> Forall (x, nnf f)

and nnf_neg = function
  | True -> False
  | False -> True
  | Pred _ as f -> Not f
  | Cmp (op, a, b) -> Cmp (cmp_negate op, a, b)
  | Not f -> nnf f
  | And (a, b) -> Or (nnf_neg a, nnf_neg b)
  | Or (a, b) -> And (nnf_neg a, nnf_neg b)
  | Implies (a, b) -> And (nnf a, nnf_neg b)
  | Exists (x, f) -> Forall (x, nnf_neg f)
  | Forall (x, f) -> Exists (x, nnf_neg f)

(** Rewrite universal quantifiers via ∀x.φ ≡ ¬∃x.¬φ — the shape both
    Peirce's graphs and Relational Diagrams actually draw. *)
let rec existentialize = function
  | (True | False | Pred _ | Cmp _) as f -> f
  | Not f -> Not (existentialize f)
  | And (a, b) -> And (existentialize a, existentialize b)
  | Or (a, b) -> Or (existentialize a, existentialize b)
  | Implies (a, b) -> Implies (existentialize a, existentialize b)
  | Exists (x, f) -> Exists (x, existentialize f)
  | Forall (x, f) -> Not (Exists (x, Not (existentialize f)))

(** Miniscoping: push existential quantifiers to the smallest subformula
    containing their variable.  [∃x (A ∧ B) = A ∧ ∃x B] when [x ∉ fv(A)],
    and [∃x (A ∨ B) = ∃x A ∨ ∃x B].  The input is first brought to NNF with
    only existential quantifiers; the output is logically equivalent.
    Naive finite-model evaluation of the result visits exponentially fewer
    assignments on conjunctive shapes (the usual case for queries). *)
let miniscope f =
  let rec conjuncts = function
    | And (a, b) -> conjuncts a @ conjuncts b
    | g -> [ g ]
  in
  let rec push x g =
    (* g is already miniscoped; reintroduce ∃x as deep as possible *)
    if not (List.mem x (free_vars g)) then g
    else
      match g with
      | Or (a, b) -> Or (push x a, push x b)
      | And _ ->
        let cs = conjuncts g in
        let with_x, without = List.partition (fun c -> List.mem x (free_vars c)) cs in
        let inner =
          match with_x with
          | [] -> True
          | c :: cs' -> List.fold_left (fun acc d -> And (acc, d)) c cs'
        in
        let wrapped =
          match with_x with
          | [ single ] -> push_single x single
          | _ -> Exists (x, inner)
        in
        List.fold_left (fun acc c -> And (acc, c)) wrapped without
      | _ -> push_single x g
  and push_single x g =
    match g with
    | Exists (y, h) when y <> x ->
      (* try commuting past an inner quantifier *)
      Exists (y, push x h)
    | Or (a, b) -> Or (push x a, push x b)
    | And _ -> push x g
    | _ -> Exists (x, g)
  in
  (* eliminate ⇒ and ∀ but leave negations in place (pushing ¬ through ∃
     would reintroduce ∀) *)
  let rec prep g =
    match g with
    | True | False | Pred _ | Cmp _ -> g
    | Not h -> Not (prep h)
    | And (a, b) -> And (prep a, prep b)
    | Or (a, b) -> Or (prep a, prep b)
    | Implies (a, b) -> Or (Not (prep a), prep b)
    | Exists (x, h) -> Exists (x, prep h)
    | Forall (x, h) -> Not (Exists (x, Not (prep h)))
  in
  let rec go g =
    match g with
    | True | False | Pred _ | Cmp _ -> g
    | Not h -> Not (go h)
    | And (a, b) -> And (go a, go b)
    | Or (a, b) -> Or (go a, go b)
    | Exists (x, h) -> push x (go h)
    | Implies _ | Forall _ -> assert false
  in
  go (prep f)

(** Structural size: number of connectives, quantifiers, and atoms.  Used by
    the benches as a query-complexity measure. *)
let rec size = function
  | True | False | Pred _ | Cmp _ -> 1
  | Not f -> 1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) -> 1 + size a + size b
  | Exists (_, f) | Forall (_, f) -> 1 + size f

let rec quantifier_depth = function
  | True | False | Pred _ | Cmp _ -> 0
  | Not f -> quantifier_depth f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
    max (quantifier_depth a) (quantifier_depth b)
  | Exists (_, f) | Forall (_, f) -> 1 + quantifier_depth f

let pp_term ppf = function
  | Var x -> Fmt.string ppf x
  | Const v -> Fmt.string ppf (Diagres_data.Value.to_literal v)

let prec = function
  | True | False | Pred _ | Cmp _ -> 5
  | Not _ -> 4
  | And _ -> 3
  | Or _ -> 2
  | Implies _ -> 1
  | Exists _ | Forall _ -> 0

let rec pp ppf f =
  (* Parenthesization must make the reparse associate exactly as the AST
     does: [&]/[|] parse left-associative, so a right child of equal
     precedence needs parentheses ([a & (b & c)]); [->] parses
     right-associative, so the left child does.  Quantifier bodies in the
     dot form extend maximally to the right. *)
  let paren_if cond child =
    if cond then Fmt.pf ppf "(%a)" pp child else pp ppf child
  in
  let loose child = paren_if (prec child < prec f) child in
  let tight child = paren_if (prec child <= prec f) child in
  match f with
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Pred (p, ts) ->
    Fmt.pf ppf "%s(%a)" p (Fmt.list ~sep:(Fmt.any ", ") pp_term) ts
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_term a (cmp_name op) pp_term b
  | Not g ->
    Fmt.string ppf "!";
    paren_if (prec g < prec f) g
  | And (a, b) ->
    loose a;
    Fmt.string ppf " & ";
    tight b
  | Or (a, b) ->
    loose a;
    Fmt.string ppf " | ";
    tight b
  | Implies (a, b) ->
    tight a;
    Fmt.string ppf " -> ";
    loose b
  | Exists (x, g) -> Fmt.pf ppf "exists %s. %a" x pp g
  | Forall (x, g) -> Fmt.pf ppf "forall %s. %a" x pp g

let to_string f = Fmt.str "%a" pp f
