(** Finite first-order structures and formula evaluation.

    A database is read as an FO structure: relation names become predicates
    and the active domain becomes the (finite) universe.  Quantifiers range
    over the active domain — the standard move that makes safe calculus
    queries domain-independent.

    Two evaluation strategies coexist.  The {e range-restricted} one
    ({!holds}, {!answers}) binds each quantified variable from the tuples of
    the positive atoms that mention it — probing per-relation hash indexes
    on the argument positions already bound — and only falls back to
    active-domain enumeration for genuinely unrestricted variables.  The
    {e naive} one ({!holds_naive}, {!answers_naive}) is the textbook
    active-domain evaluation (with the static column-guard optimization),
    kept as the reference for differential tests and benches. *)

module D = Diagres_data

type t = {
  universe : D.Value.t list;  (** quantification range *)
  db : D.Database.t;
}

let of_database ?extra_constants db =
  let dom = D.Database.active_domain db in
  let universe =
    match extra_constants with
    | None -> dom
    | Some cs -> List.sort_uniq D.Value.compare (cs @ dom)
  in
  { universe; db }

(** Constants mentioned in a formula, which must be added to the universe so
    that e.g. [∃x. x = 'red' ∧ …] behaves as expected even when 'red' does
    not occur in the instance. *)
let rec constants = function
  | Fol.True | Fol.False -> []
  | Fol.Pred (_, ts) ->
    List.filter_map (function Fol.Const v -> Some v | Fol.Var _ -> None) ts
  | Fol.Cmp (_, a, b) ->
    List.filter_map
      (function Fol.Const v -> Some v | Fol.Var _ -> None)
      [ a; b ]
  | Fol.Not f -> constants f
  | Fol.And (a, b) | Fol.Or (a, b) | Fol.Implies (a, b) ->
    constants a @ constants b
  | Fol.Exists (_, f) | Fol.Forall (_, f) -> constants f

let for_formula f db =
  of_database ~extra_constants:(constants f) db

exception Eval_error of string

let term_value env = function
  | Fol.Const v -> v
  | Fol.Var x -> (
    match List.assoc_opt x env with
    | Some v -> v
    | None -> raise (Eval_error ("unbound variable " ^ x)))

let term_value_opt env = function
  | Fol.Const v -> Some v
  | Fol.Var x -> List.assoc_opt x env

(* ---------------- range restriction ---------------- *)

(* [range st env x f]: a list of values guaranteed to contain every value of
   [x] for which [f] can hold under [env]; [None] when [x] is unrestricted
   (only then must the caller fall back to the universe).  The values come
   from conjunctively required positive atoms mentioning [x]: the matching
   tuples are fetched through a hash index on the atom's argument positions
   that are already bound (constants and env-bound variables), so nested
   quantifiers enumerate only the tuples joining with the bindings made so
   far.  Conjunctively required means: reachable through ∧ and through ∃
   binding other variables — never through ¬, → or ∀. *)
let rec range st env x (f : Fol.t) : D.Value.t list option =
  match f with
  | Fol.And (a, b) -> (
    match range st env x a with
    | Some _ as r -> r
    | None -> range st env x b)
  | Fol.Exists (y, g) when y <> x && not (List.mem_assoc y env) ->
    (* a conjunctively required subformula still restricts x; stop if y
       shadows a bound variable (the inner y would alias the outer one) *)
    range st env x g
  | Fol.Or (a, b) -> (
    (* x is restricted by a disjunction only when both branches restrict it *)
    match (range st env x a, range st env x b) with
    | Some va, Some vb -> Some (List.sort_uniq D.Value.compare (va @ vb))
    | _ -> None)
  | Fol.Cmp (Fol.Eq, Fol.Var x', t) when x' = x -> (
    match term_value_opt env t with Some v -> Some [ v ] | None -> None)
  | Fol.Cmp (Fol.Eq, t, Fol.Var x') when x' = x -> (
    match term_value_opt env t with Some v -> Some [ v ] | None -> None)
  | Fol.Pred (p, ts) -> (
    match D.Database.find_opt p st.db with
    | None -> None
    | Some rel ->
      let arity = D.Schema.arity (D.Relation.schema rel) in
      if List.length ts <> arity then None
      else
        let rec position i = function
          | [] -> None
          | Fol.Var y :: _ when y = x -> Some i
          | _ :: rest -> position (i + 1) rest
        in
        Option.map
          (fun i ->
            (* bound argument positions become the index key *)
            let positions, key_rev =
              List.fold_left
                (fun (ps, ks) (j, t) ->
                  match t with
                  | Fol.Const c -> (j :: ps, c :: ks)
                  | Fol.Var y when y <> x -> (
                    match List.assoc_opt y env with
                    | Some v -> (j :: ps, v :: ks)
                    | None -> (ps, ks))
                  | Fol.Var _ -> (ps, ks))
                ([], [])
                (List.mapi (fun j t -> (j, t)) ts)
            in
            let tups =
              D.Relation.matching rel (List.rev positions)
                (Array.of_list (List.rev key_rev))
            in
            List.map (fun tup -> D.Tuple.get tup i) tups
            |> List.sort_uniq D.Value.compare)
          (position 0 ts))
  | _ -> None

(** Tarskian satisfaction; quantified variables are bound from the atoms
    that mention them ({!range} above), falling back to the universe only
    for unrestricted variables (and for ∀, whose range cannot be narrowed
    soundly — the calculus front-ends rewrite ∀ as ¬∃¬ before evaluating). *)
let rec holds st env = function
  | Fol.True -> true
  | Fol.False -> false
  | Fol.Pred (p, ts) ->
    let rel =
      match D.Database.find_opt p st.db with
      | Some r -> r
      | None -> raise (Eval_error ("unknown predicate " ^ p))
    in
    let args = List.map (term_value env) ts in
    if List.length args <> D.Schema.arity (D.Relation.schema rel) then
      raise (Eval_error ("arity mismatch for predicate " ^ p));
    D.Relation.mem (D.Tuple.of_list args) rel
  | Fol.Cmp (op, a, b) -> Fol.cmp_eval op (term_value env a) (term_value env b)
  | Fol.Not f -> not (holds st env f)
  | Fol.And (a, b) -> holds st env a && holds st env b
  | Fol.Or (a, b) -> holds st env a || holds st env b
  | Fol.Implies (a, b) -> (not (holds st env a)) || holds st env b
  | Fol.Exists (x, f) ->
    let vals =
      match range st env x f with Some vs -> vs | None -> st.universe
    in
    List.exists (fun v -> holds st ((x, v) :: env) f) vals
  | Fol.Forall (x, f) ->
    List.for_all (fun v -> holds st ((x, v) :: env) f) st.universe

(** Evaluate a sentence (no free variables) to a Boolean. *)
let eval_sentence st f =
  match Fol.free_var_list f with
  | [] -> holds st [] f
  | xs ->
    raise
      (Eval_error
         ("not a sentence; free variables: " ^ String.concat ", " xs))

(** Answer set of a formula with free variables [order]: the DRC semantics.
    Free variables are enumerated outermost-first, each from its
    {!range}-restricted candidate set under the bindings made so far, so
    safe queries never touch the full active domain. *)
let answers st ?order f =
  let free = Fol.free_var_list f in
  let order = match order with Some o -> o | None -> free in
  if List.sort String.compare order <> free then
    raise (Eval_error "answers: order must list exactly the free variables");
  let rec go env = function
    | [] ->
      if holds st env f then [ List.map (fun x -> List.assoc x env) order ]
      else []
    | x :: rest ->
      let vals =
        match range st env x f with Some vs -> vs | None -> st.universe
      in
      List.concat_map (fun v -> go ((x, v) :: env) rest) vals
  in
  go [] order

(* ---------------- naive reference evaluation ---------------- *)

(* Guarded quantification: when [∃x φ] has a positive atom R(…x…) among
   φ's top-level conjuncts, x can only take values from that column of R —
   enumerate those instead of the whole universe.  Purely an optimization;
   semantics are unchanged.  Unlike {!range} this ignores the environment:
   whole columns are enumerated, which is the naive active-domain behavior
   the range-restricted evaluator is differentially tested against. *)
let rec guard_values st x (f : Fol.t) =
  match f with
  | Fol.And (a, b) -> (
    match guard_values st x a with
    | Some _ as r -> r
    | None -> guard_values st x b)
  | Fol.Exists (y, g) when y <> x ->
    (* a conjunctively required subformula still guards x *)
    guard_values st x g
  | Fol.Or (a, b) -> (
    (* x is guarded by a disjunction only when both branches guard it *)
    match (guard_values st x a, guard_values st x b) with
    | Some va, Some vb -> Some (List.sort_uniq D.Value.compare (va @ vb))
    | _ -> None)
  | Fol.Pred (p, ts) -> (
    match D.Database.find_opt p st.db with
    | None -> None
    | Some rel ->
      let rec position i = function
        | [] -> None
        | Fol.Var y :: _ when y = x -> Some i
        | _ :: rest -> position (i + 1) rest
      in
      Option.map
        (fun i ->
          D.Relation.fold (fun tup acc -> D.Tuple.get tup i :: acc) rel []
          |> List.sort_uniq D.Value.compare)
        (position 0 ts))
  | _ -> None

(** Naive Tarskian satisfaction: quantifiers range over [st.universe],
    narrowed only by the static (environment-free) column guards. *)
let rec holds_naive st env = function
  | Fol.True -> true
  | Fol.False -> false
  | (Fol.Pred _ | Fol.Cmp _) as f -> holds st env f
  | Fol.Not f -> not (holds_naive st env f)
  | Fol.And (a, b) -> holds_naive st env a && holds_naive st env b
  | Fol.Or (a, b) -> holds_naive st env a || holds_naive st env b
  | Fol.Implies (a, b) -> (not (holds_naive st env a)) || holds_naive st env b
  | Fol.Exists (x, f) ->
    let range =
      match guard_values st x f with
      | Some vs -> vs
      | None -> st.universe
    in
    List.exists (fun v -> holds_naive st ((x, v) :: env) f) range
  | Fol.Forall (x, f) ->
    List.for_all (fun v -> holds_naive st ((x, v) :: env) f) st.universe

let eval_sentence_naive st f =
  match Fol.free_var_list f with
  | [] -> holds_naive st [] f
  | xs ->
    raise
      (Eval_error
         ("not a sentence; free variables: " ^ String.concat ", " xs))

(** Naive active-domain enumeration of the answer set.  Exponential in the
    number of free variables; fine for the small instances used in
    differential tests, and precisely the baseline the benches compare the
    range-restricted evaluator against. *)
let answers_naive st ?order f =
  let free = Fol.free_var_list f in
  let order = match order with Some o -> o | None -> free in
  if List.sort String.compare order <> free then
    raise (Eval_error "answers: order must list exactly the free variables");
  let rec go env = function
    | [] ->
      if holds_naive st env f then
        [ List.map (fun x -> List.assoc x env) order ]
      else []
    | x :: rest ->
      let range =
        match guard_values st x f with
        | Some vs -> vs
        | None -> st.universe
      in
      List.concat_map (fun v -> go ((x, v) :: env) rest) range
  in
  go [] order
