(** Conversion of every library's legacy exception into a structured
    {!Diagres_diag.Diag.t}.

    The frontends raise {!Diagres_diag.Diag.Error} directly, but a few
    evaluation-level and translation-level exceptions predate the
    diagnostics subsystem.  This module — which, unlike [Diag], can see
    every library — maps each of them to a phased, coded diagnostic so the
    CLI never prints "uncaught exception" for user input. *)

module Diag = Diagres_diag.Diag

let diag ?needle code phase fmt =
  Format.kasprintf (fun message -> Diag.make ?needle ~code ~phase message) fmt

(** Classify an exception as a diagnostic; [None] means it is not a known
    user-triggerable failure (a genuine bug — let it propagate). *)
let of_exn : exn -> Diag.t option = function
  | Diag.Error d -> Some d
  | Diagres_parsekit.Stream.Parse_error (msg, _)
  | Diagres_parsekit.Lexer.Lex_error (msg, _) ->
    Some (diag "E-PARSE-001" Diag.Parse "syntax error: %s" msg)
  | Diagres_logic.Prop.Parse_error msg ->
    Some (diag "E-PROP-PARSE-001" Diag.Parse "syntax error: %s" msg)
  | Diagres_data.Schema.Schema_error msg ->
    Some (diag "E-SCHEMA-001" Diag.Data "%s" msg)
  | Diagres_data.Csv.Csv_error msg ->
    Some (diag "E-CSV-000" Diag.Data "%s" msg)
  | Diagres_data.Database.Unknown_relation r ->
    Some (diag "E-DB-001" Diag.Eval ~needle:r "unknown relation %S" r)
  | Diagres_ra.Eval.Eval_error msg ->
    Some (diag "E-RA-EVAL-001" Diag.Eval "%s" msg)
  | Diagres_ra.Aggregate.Aggregate_error msg ->
    Some (diag "E-RA-EVAL-002" Diag.Eval "%s" msg)
  | Diagres_rc.Trc.Eval_error msg ->
    Some (diag "E-TRC-EVAL-001" Diag.Eval "%s" msg)
  | Diagres_logic.Structure.Eval_error msg ->
    Some (diag "E-DRC-EVAL-001" Diag.Eval "%s" msg)
  | Diagres_datalog.Eval.Eval_error msg ->
    Some (diag "E-DLG-EVAL-001" Diag.Eval "%s" msg)
  | Diagres_datalog.Fixpoint.Fixpoint_error msg ->
    Some (diag "E-DLG-EVAL-002" Diag.Eval "%s" msg)
  | Diagres_rc.Safety.Unsafe msg ->
    Some (diag "E-DRC-SAFE-001" Diag.Safety "%s" msg)
  | Diagres_sql.To_trc.Unsupported msg | Diagres_sql.Of_trc.Unsupported msg
  | Diagres_rc.Trc_to_drc.Unsupported msg
  | Diagres_rc.Drc_to_ra.Unsupported msg ->
    Some (diag "E-XLATE-001" Diag.Type "unsupported translation: %s" msg)
  | Diagres_rc.Ra_to_trc.Union_not_supported ->
    Some
      (diag "E-XLATE-002" Diag.Type
         "union inside this RA shape cannot be translated to a single \
          union-free TRC query")
  | Diagres_diagrams.Trc_scene.Disjunction msg ->
    Some (diag "E-VIZ-005" Diag.Type "%s" msg)
  | Diagres_diagrams.Eg_beta.Unsupported msg
  | Diagres_diagrams.Begriffsschrift.Unsupported msg
  | Diagres_diagrams.Conceptual_graph.Unsupported msg ->
    Some (diag "E-VIZ-006" Diag.Type "%s" msg)
  | _ -> None

(** Run [f]; known failures become [Error d], unknown exceptions propagate. *)
let capture f : ('a, Diag.t) result =
  match f () with
  | x -> Ok x
  | exception e -> (
    match of_exn e with Some d -> Error d | None -> raise e)

(** Like {!capture}, but *every* exception becomes a diagnostic: unknown
    ones map to phase [Internal] (exit code 70), which reaching from user
    input is by definition a bug.  This is the CLI's outermost net. *)
let capture_all f : ('a, Diag.t) result =
  match f () with
  | x -> Ok x
  | exception e -> (
    match of_exn e with
    | Some d -> Error d
    | None ->
      Error
        (diag "E-INTERNAL-001" Diag.Internal
           "internal error (please report): %s" (Printexc.to_string e)))
