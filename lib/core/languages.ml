(** Uniform dispatch over the five textual query languages (Part 3). *)

type lang = Sql | Ra | Trc | Drc | Datalog

let all = [ Sql; Ra; Trc; Drc; Datalog ]

let name = function
  | Sql -> "SQL"
  | Ra -> "RA"
  | Trc -> "TRC"
  | Drc -> "DRC"
  | Datalog -> "Datalog"

module Diag = Diagres_diag.Diag
module T = Diagres_telemetry.Telemetry

let of_name s =
  match String.lowercase_ascii s with
  | "sql" -> Sql
  | "ra" | "algebra" -> Ra
  | "trc" -> Trc
  | "drc" -> Drc
  | "datalog" -> Datalog
  | _ ->
    Diag.error ~code:"E-CLI-LANG-001" ~phase:Diag.Resolve ~needle:s
      ~hints:
        (Diag.did_you_mean
           ~candidates:[ "sql"; "ra"; "trc"; "drc"; "datalog" ]
           s)
      "unknown language %S (expected sql, ra, trc, drc, or datalog)" s

(** A parsed query in any of the five languages. *)
type query =
  | Q_sql of Diagres_sql.Ast.statement
  | Q_ra of Diagres_ra.Ast.t
  | Q_trc of Diagres_rc.Trc.query
  | Q_drc of Diagres_rc.Drc.query
  | Q_datalog of Diagres_datalog.Ast.program * string  (** program, goal *)

(** Parse errors raise {!Diagres_diag.Diag.Error} ([E-<LANG>-PARSE-001])
    carrying the source text and the failing offset, so the CLI can render
    a caret excerpt. *)
let parse_error_code lang =
  Printf.sprintf "E-%s-PARSE-001" (String.uppercase_ascii (name lang))

let parse lang src : query =
  let fail msg off =
    let stop =
      (* extend the caret over the offending word, if any *)
      let n = String.length src in
      let is_word c =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9') || c = '_'
      in
      let rec go i = if i < n && is_word src.[i] then go (i + 1) else i in
      max (min (off + 1) n) (go (max 0 (min off n)))
    in
    Diag.error ~code:(parse_error_code lang) ~phase:Diag.Parse ~source:src
      ~span:{ Diag.start = max 0 (min off (String.length src)); stop }
      "%s syntax error: %s" (name lang) msg
  in
  let wrap f =
    T.with_span ~cat:"phase"
      ~attrs:(fun () -> [ ("lang", T.Str (name lang)) ])
      "parse"
    @@ fun () ->
    try f () with
    | Diagres_parsekit.Stream.Parse_error (msg, off)
    | Diagres_parsekit.Lexer.Lex_error (msg, off) ->
      fail msg off
  in
  match lang with
  | Sql -> wrap (fun () -> Q_sql (Diagres_sql.Parser.parse src))
  | Ra -> wrap (fun () -> Q_ra (Diagres_ra.Parser.parse src))
  | Trc -> wrap (fun () -> Q_trc (Diagres_rc.Trc_parser.parse src))
  | Drc -> wrap (fun () -> Q_drc (Diagres_rc.Drc_parser.parse src))
  | Datalog ->
    wrap (fun () ->
        let p = Diagres_datalog.Parser.parse src in
        let goal =
          (* convention: the goal is the head of the last rule *)
          match List.rev p with
          | r :: _ -> r.Diagres_datalog.Ast.head.Diagres_datalog.Ast.pred
          | [] -> fail "empty program (expected at least one rule)" 0
        in
        Q_datalog (p, goal))

let lang_of = function
  | Q_sql _ -> Sql
  | Q_ra _ -> Ra
  | Q_trc _ -> Trc
  | Q_drc _ -> Drc
  | Q_datalog _ -> Datalog

let eval db (q : query) : Diagres_data.Relation.t =
  T.with_span ~cat:"phase"
    ~attrs:(fun () -> [ ("lang", T.Str (name (lang_of q))) ])
    "eval"
  @@ fun () ->
  match q with
  | Q_sql st -> Diagres_sql.To_ra.eval db st
  | Q_ra e -> Diagres_ra.Eval.eval_planned db e
  | Q_trc q -> Diagres_rc.Trc.eval db q
  | Q_drc q -> Diagres_rc.Drc.eval db q
  | Q_datalog (p, goal) -> Diagres_datalog.Eval.query db p ~goal

(** Normalize any language to single-panel TRC queries — the diagram
    generators' input.  Disjunctions hiding inside a panel body are split
    out (via {!Diagres_rc.Translate.drawable_panels}). *)
let to_trc_panels schemas (q : query) : Diagres_rc.Trc.query list =
  T.with_span ~cat:"phase" "translate" @@ fun () ->
  let raw =
    match q with
    | Q_sql st -> Diagres_sql.To_trc.statement schemas st
    | Q_ra e -> Diagres_rc.Translate.ra_to_trc schemas e
    | Q_trc q -> [ q ]
    | Q_drc q -> Diagres_rc.Translate.drc_to_trc schemas q
    | Q_datalog (p, goal) ->
      Diagres_rc.Translate.drc_to_trc schemas
        (Diagres_datalog.To_drc.query schemas p ~goal)
  in
  Diagres_rc.Translate.drawable_panels schemas raw

(** Normalize to a single RA expression. *)
let to_ra schemas (q : query) : Diagres_ra.Ast.t =
  T.with_span ~cat:"phase" "translate" @@ fun () ->
  match q with
  | Q_sql st -> Diagres_sql.To_ra.statement schemas st
  | Q_ra e -> e
  | Q_trc q -> Diagres_rc.Translate.trc_to_ra schemas q
  | Q_drc q -> Diagres_rc.Translate.drc_to_ra schemas q
  | Q_datalog (p, goal) -> Diagres_datalog.To_drc.to_ra schemas p ~goal

(** Render any query as SQL text via its TRC panels — the back-translation
    arm of the Fig. 2 loop. *)
let to_sql schemas (q : query) : Diagres_sql.Ast.statement =
  match q with
  | Q_sql st -> st
  | _ -> Diagres_sql.Of_trc.statement (to_trc_panels schemas q)

(** Pretty-print back to source text. *)
let to_string : query -> string = function
  | Q_sql st -> Diagres_sql.Pretty.to_string st
  | Q_ra e -> Diagres_ra.Pretty.ascii e
  | Q_trc q -> Diagres_rc.Trc.to_string q
  | Q_drc q -> Diagres_rc.Drc.to_string q
  | Q_datalog (p, _) -> Diagres_datalog.Ast.to_string p
