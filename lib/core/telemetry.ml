(** End-to-end engine telemetry: hierarchical spans, counters, histograms.

    Every layer of the engine — the language frontends, the cost-based
    planner, the physical operators, the Datalog fixpoint, the domain pool,
    and the caches — reports into this one module, and three sinks read it
    back out: [qviz eval --analyze] (the plan tree annotated with actual
    per-operator times), [qviz … --trace-json FILE] (Chrome trace-event
    JSON, loadable in Perfetto or [chrome://tracing]), and
    [qviz stats] / [bench --json] (the metrics registry).

    Design constraints, in order:

    - {b near-zero overhead when disabled} — tracing is off by default;
      {!start} is a single [Atomic.get] and returns the unallocated
      {!null_span} when disabled, so instrumented hot loops pay one flag
      check and nothing else.  Counters and histograms are {e always}
      active (they are how the plan-cache and index-cache statistics
      accumulate): a counter bump is one [Atomic.fetch_and_add] on an
      interned slot, no allocation.
    - {b safe under the domain pool} — span events are appended to
      {e per-domain} buffers (a [Domain.DLS] slot registered in a global
      list on first use), so parallel morsels never interleave or race;
      buffers are merged only by the read-side sinks.  Because execution
      within one domain is sequential, each buffer is a well-nested
      begin/end sequence in timestamp order — exactly what the Chrome
      trace format wants per thread.
    - {b monotonic clock} — timestamps come from the same
      [clock_gettime(CLOCK_MONOTONIC)] stub the benchmark harness uses
      ([bechamel.monotonic_clock]), so bench and production share one
      clock path.

    Spans must be finished on the domain that started them (all the
    instrumentation in this library starts and finishes a span inside one
    function activation, so this holds by construction). *)

(* ---------------- clock ---------------- *)

(** Monotonic nanoseconds. *)
let now_ns () : int64 = Monotonic_clock.now ()

let ns_to_ms ns = Int64.to_float ns /. 1e6
let ns_to_s ns = Int64.to_float ns /. 1e9

(** Human-readable byte count ("512B", "1.5KB", "23.4MB", "1.2GB") — the
    shared formatter for allocation deltas and memory gauges. *)
let bytes_to_string (b : float) : string =
  let ab = Float.abs b in
  if ab < 1024. then Printf.sprintf "%.0fB" b
  else if ab < 1024. *. 1024. then Printf.sprintf "%.1fKB" (b /. 1024.)
  else if ab < 1024. *. 1024. *. 1024. then
    Printf.sprintf "%.1fMB" (b /. (1024. *. 1024.))
  else Printf.sprintf "%.2fGB" (b /. (1024. *. 1024. *. 1024.))

(** [timed f] runs [f] and returns (wall-clock seconds, result) — the
    shared timing helper for the bench harness. *)
let timed (f : unit -> 'a) : float * 'a =
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  (ns_to_s (Int64.sub t1 t0), r)

(* ---------------- the enabled flags ---------------- *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Allocation/GC accounting is a second, independent opt-in on top of span
   tracing: reading [Gc.quick_stat] at every span boundary is cheap but not
   free, so resource deltas are only captured when both flags are on.  The
   disabled hot path is untouched — {!start} still performs exactly one
   [Atomic.get] before bailing out. *)
let alloc_flag = Atomic.make false
let alloc_enabled () = Atomic.get alloc_flag
let set_alloc_enabled b = Atomic.set alloc_flag b

(* ---------------- GC samples ---------------- *)

(** A point-in-time reading of the current domain's allocation and GC
    activity; spans store one at begin and one at end, and the read-side
    sinks subtract. *)
type gc_sample = {
  g_alloc : float;     (* Gc.allocated_bytes: cumulative bytes *)
  g_minor : int;       (* minor collections *)
  g_major : int;       (* major collections *)
  g_promoted : float;  (* words promoted minor->major *)
}

let read_gc () : gc_sample =
  let s = Gc.quick_stat () in
  { g_alloc = Gc.allocated_bytes ();
    g_minor = s.Gc.minor_collections;
    g_major = s.Gc.major_collections;
    g_promoted = s.Gc.promoted_words }

(** Allocation and GC activity between a span's begin and end, on the
    domain that ran it. *)
type alloc_delta = {
  alloc_bytes : float;
  minor_collections : int;
  major_collections : int;
  promoted_words : float;
}

let gc_delta (b : gc_sample) (e : gc_sample) : alloc_delta =
  { alloc_bytes = e.g_alloc -. b.g_alloc;
    minor_collections = e.g_minor - b.g_minor;
    major_collections = e.g_major - b.g_major;
    promoted_words = e.g_promoted -. b.g_promoted }

(* ---------------- attribute values ---------------- *)

type value = Int of int | Float of float | Str of string

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

(* ---------------- per-domain span buffers ---------------- *)

type event =
  | Begin of {
      id : int;
      parent : int;
      name : string;
      cat : string;
      ts : int64;
      gc : gc_sample option;  (* present iff alloc tracking was on *)
    }
  | End of {
      id : int;
      ts : int64;
      attrs : (string * value) list;
      gc : gc_sample option;
    }
  | Sample of { sname : string; ts : int64; v : float }
      (* a point on a counter track ("C" in the Chrome trace format):
         memory gauges, cumulative allocation, anything timeline-shaped *)

type domain_buf = {
  dom : int;                    (* Domain.self, the trace "tid" *)
  mutable events : event list;  (* newest first *)
  mutable stack : int list;     (* open span ids, innermost first *)
}

(* All buffers ever created, including those of retired pool domains; the
   mutex only guards registration (each domain then writes only its own
   buffer, and the sinks read after the parallel work has completed). *)
let bufs : domain_buf list ref = ref []
let bufs_mutex = Mutex.create ()

let buf_key : domain_buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int); events = []; stack = [] }
      in
      Mutex.lock bufs_mutex;
      bufs := b :: !bufs;
      Mutex.unlock bufs_mutex;
      b)

let my_buf () = Domain.DLS.get buf_key

(** Drop every recorded span event (counters survive; see
    {!reset_metrics}). *)
let reset_spans () =
  Mutex.lock bufs_mutex;
  List.iter
    (fun b ->
      b.events <- [];
      b.stack <- [])
    !bufs;
  Mutex.unlock bufs_mutex

(* ---------------- spans ---------------- *)

type span = int  (* span id; 0 is the disabled no-op span *)

let null_span : span = 0
let span_ids = Atomic.make 1

(** Open a span.  Returns {!null_span} (no allocation, no clock read) when
    tracing is disabled.  The parent is the innermost span currently open
    on this domain. *)
let start ?(cat = "") (name : string) : span =
  if not (Atomic.get enabled_flag) then null_span
  else begin
    let b = my_buf () in
    let id = Atomic.fetch_and_add span_ids 1 in
    let parent = match b.stack with [] -> 0 | p :: _ -> p in
    let gc = if Atomic.get alloc_flag then Some (read_gc ()) else None in
    b.events <- Begin { id; parent; name; cat; ts = now_ns (); gc } :: b.events;
    b.stack <- id :: b.stack;
    id
  end

(** Close a span, attaching result attributes (row counts, sizes, …).
    A {!null_span} is ignored, so disabled-mode callers pay nothing. *)
let finish ?(attrs = []) (s : span) : unit =
  if s <> null_span then begin
    let b = my_buf () in
    let gc = if Atomic.get alloc_flag then Some (read_gc ()) else None in
    b.events <- End { id = s; ts = now_ns (); attrs; gc } :: b.events;
    (* pop this span (and, defensively, anything left open above it) *)
    let rec pop = function
      | x :: rest when x = s -> rest
      | _ :: rest -> pop rest
      | [] -> []
    in
    b.stack <- pop b.stack
  end

(** [with_span name f]: run [f] inside a span; the span closes even if [f]
    raises. *)
let with_span ?cat ?(attrs = fun () -> []) name f =
  let s = start ?cat name in
  if s = null_span then f ()
  else
    match f () with
    | v ->
      finish ~attrs:(attrs ()) s;
      v
    | exception e ->
      finish ~attrs:[ ("exception", Str (Printexc.to_string e)) ] s;
      raise e

(** Record one point on the counter track named [name] — rendered by the
    trace sink as a Chrome "C" event, so Perfetto draws a timeline (memory
    gauges, rows resident, …).  A no-op when tracing is disabled. *)
let sample (name : string) (v : float) : unit =
  if Atomic.get enabled_flag then begin
    let b = my_buf () in
    b.events <- Sample { sname = name; ts = now_ns (); v } :: b.events
  end

(* ---------------- completed-span view ---------------- *)

type span_info = {
  sid : int;
  parent : int;         (** 0 = root *)
  name : string;
  cat : string;
  domain : int;
  start_ns : int64;
  dur_ns : int64;
  attrs : (string * value) list;
  alloc : alloc_delta option;
      (** allocation/GC activity inside the span; [None] unless alloc
          tracking ({!set_alloc_enabled}) was on for both endpoints *)
}

(** Every completed span, merged across domains, in start order.  Spans
    still open (or whose begin was dropped by {!reset_spans}) are
    omitted. *)
let spans () : span_info list =
  Mutex.lock bufs_mutex;
  let all = !bufs in
  Mutex.unlock bufs_mutex;
  let ends = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (function
          | End { id; ts; attrs; gc } -> Hashtbl.replace ends id (ts, attrs, gc)
          | Begin _ | Sample _ -> ())
        b.events)
    all;
  let infos =
    List.concat_map
      (fun b ->
        List.filter_map
          (function
            | Begin { id; parent; name; cat; ts; gc = gc0 } -> (
              match Hashtbl.find_opt ends id with
              | Some (ts_end, attrs, gc1) ->
                let alloc =
                  match (gc0, gc1) with
                  | Some g0, Some g1 -> Some (gc_delta g0 g1)
                  | _ -> None
                in
                Some
                  { sid = id; parent; name; cat; domain = b.dom;
                    start_ns = ts; dur_ns = Int64.sub ts_end ts; attrs;
                    alloc }
              | None -> None)
            | End _ | Sample _ -> None)
          (List.rev b.events))
      all
  in
  List.sort (fun a b -> compare (a.start_ns, a.sid) (b.start_ns, b.sid)) infos

(** Total duration of completed spans named [name] (e.g. a pipeline
    phase), in nanoseconds. *)
let total_ns ~name () =
  List.fold_left
    (fun acc s -> if s.name = name then Int64.add acc s.dur_ns else acc)
    0L (spans ())

(* ---------------- counters ---------------- *)

type counter = { cname : string; cell : int Atomic.t }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let metrics_mutex = Mutex.create ()  (* guards the two registries *)

(** Intern the counter named [name]: the same slot is returned for the
    same name forever, so callers hoist the lookup out of their hot
    loops and bump with a single atomic add. *)
let counter (name : string) : counter =
  Mutex.lock metrics_mutex;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
      let c = { cname = name; cell = Atomic.make 0 } in
      Hashtbl.add counters name c;
      c
  in
  Mutex.unlock metrics_mutex;
  c

let add (c : counter) n = ignore (Atomic.fetch_and_add c.cell n)
let incr (c : counter) = add c 1
let counter_value (c : counter) = Atomic.get c.cell
let set_counter (c : counter) v = Atomic.set c.cell v

(** Current value of the counter named [name] (0 if never created). *)
let counter_named name =
  Mutex.lock metrics_mutex;
  let v =
    match Hashtbl.find_opt counters name with
    | Some c -> Atomic.get c.cell
    | None -> 0
  in
  Mutex.unlock metrics_mutex;
  v

(* ---------------- gauges ---------------- *)

(* A gauge is a point-in-time level, not a monotone count: bytes resident,
   entries cached, rows live.  Same interned-atomic-slot design as counters
   (always on, one atomic op to update), but the registry reports it as a
   level and the sinks label it as such. *)

type gauge = { gname : string; gcell : int Atomic.t }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

(** Intern the gauge named [name] (same slot for the same name forever). *)
let gauge (name : string) : gauge =
  Mutex.lock metrics_mutex;
  let g =
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
      let g = { gname = name; gcell = Atomic.make 0 } in
      Hashtbl.add gauges name g;
      g
  in
  Mutex.unlock metrics_mutex;
  g

let set_gauge (g : gauge) v = Atomic.set g.gcell v
let add_gauge (g : gauge) n = ignore (Atomic.fetch_and_add g.gcell n)
let gauge_value (g : gauge) = Atomic.get g.gcell

(** Current value of the gauge named [name] (0 if never created). *)
let gauge_named name =
  Mutex.lock metrics_mutex;
  let v =
    match Hashtbl.find_opt gauges name with
    | Some g -> Atomic.get g.gcell
    | None -> 0
  in
  Mutex.unlock metrics_mutex;
  v

(** Emit every registered gauge as a point on its counter track (a no-op
    when tracing is disabled) — call at phase boundaries to give the trace
    a memory timeline. *)
let sample_all_gauges () =
  if Atomic.get enabled_flag then begin
    Mutex.lock metrics_mutex;
    let gs = Hashtbl.fold (fun _ g acc -> g :: acc) gauges [] in
    Mutex.unlock metrics_mutex;
    List.iter (fun g -> sample g.gname (float_of_int (Atomic.get g.gcell))) gs
  end

(* ---------------- histograms ---------------- *)

(* Geometric buckets: bucket [i] counts observations in (2^(i-1), 2^i]
   (bucket 0 counts x <= 1).  31 buckets cover anything up to 2^30 —
   nanoseconds to seconds, tuple counts to gigatuples. *)
let histogram_buckets = 31

type histogram = {
  hname : string;
  hmutex : Mutex.t;
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram (name : string) : histogram =
  Mutex.lock metrics_mutex;
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
      let h =
        { hname = name; hmutex = Mutex.create ();
          buckets = Array.make histogram_buckets 0; count = 0; sum = 0.;
          minv = infinity; maxv = neg_infinity }
      in
      Hashtbl.add histograms name h;
      h
  in
  Mutex.unlock metrics_mutex;
  h

let bucket_of (x : float) =
  if x <= 1. then 0
  else
    let rec go i bound =
      if i >= histogram_buckets - 1 || x <= bound then i
      else go (i + 1) (bound *. 2.)
    in
    go 1 2.

let observe (h : histogram) (x : float) =
  Mutex.lock h.hmutex;
  h.buckets.(bucket_of x) <- h.buckets.(bucket_of x) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. x;
  if x < h.minv then h.minv <- x;
  if x > h.maxv then h.maxv <- x;
  Mutex.unlock h.hmutex

type histogram_snapshot = {
  count : int;
  sum : float;
  min : float;  (** [nan] when empty *)
  max : float;  (** [nan] when empty *)
  mean : float; (** [nan] when empty *)
  bucket_counts : int array;  (** bucket [i] = observations in (2^(i-1), 2^i] *)
}

let snapshot (h : histogram) : histogram_snapshot =
  Mutex.lock h.hmutex;
  let s =
    { count = h.count; sum = h.sum;
      min = (if h.count = 0 then nan else h.minv);
      max = (if h.count = 0 then nan else h.maxv);
      mean = (if h.count = 0 then nan else h.sum /. float_of_int h.count);
      bucket_counts = Array.copy h.buckets }
  in
  Mutex.unlock h.hmutex;
  s

(* ---------------- the metrics registry ---------------- *)

type metric =
  | Counter of string * int
  | Gauge of string * int
  | Histogram of string * histogram_snapshot

let metric_name = function
  | Counter (n, _) | Gauge (n, _) | Histogram (n, _) -> n

(** Snapshot of every counter, gauge, and histogram, sorted by name. *)
let metrics () : metric list =
  Mutex.lock metrics_mutex;
  let cs =
    Hashtbl.fold
      (fun _ c acc -> Counter (c.cname, Atomic.get c.cell) :: acc)
      counters []
  in
  let gs =
    Hashtbl.fold
      (fun _ g acc -> Gauge (g.gname, Atomic.get g.gcell) :: acc)
      gauges []
  in
  let hs =
    Hashtbl.fold (fun _ h acc -> (h.hname, h) :: acc) histograms []
  in
  Mutex.unlock metrics_mutex;
  let hs = List.map (fun (n, h) -> Histogram (n, snapshot h)) hs in
  List.sort
    (fun a b -> compare (metric_name a) (metric_name b))
    (cs @ gs @ hs)

(** Zero every counter, gauge, and histogram (the slots themselves survive,
    so interned handles stay valid). *)
let reset_metrics () =
  Mutex.lock metrics_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.gcell 0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.hmutex;
      Array.fill h.buckets 0 histogram_buckets 0;
      h.count <- 0;
      h.sum <- 0.;
      h.minv <- infinity;
      h.maxv <- neg_infinity;
      Mutex.unlock h.hmutex)
    histograms;
  Mutex.unlock metrics_mutex

(** Reset everything: spans and metrics. *)
let reset () =
  reset_spans ();
  reset_metrics ()

(* ---------------- sinks ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_json = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_finite f then Printf.sprintf "%.6g" f
    else Printf.sprintf "\"%s\"" (json_escape (Printf.sprintf "%g" f))
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let attrs_to_json attrs =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\": %s" (json_escape k) (value_to_json v))
         attrs)
  ^ "}"

(** The recorded spans as Chrome trace-event JSON (the [chrome://tracing] /
    Perfetto format): "M" metadata events naming the process and each
    domain's track first, then one "B" and one "E" event per span ([tid] =
    the domain the span ran on) interleaved with "C" counter-track points
    for recorded {!sample}s and, when alloc tracking was on, the cumulative
    allocation timeline.  Per-buffer recording order is emission order,
    which the format requires to be the per-thread timestamp order — true
    here because each domain's execution is sequential. *)
let trace_json () : string =
  Mutex.lock bufs_mutex;
  let all = !bufs in
  Mutex.unlock bufs_mutex;
  let names = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (function
          | Begin { id; name; cat; gc; _ } ->
            Hashtbl.replace names id (name, cat, gc)
          | End _ | Sample _ -> ())
        b.events)
    all;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  let us ts = Int64.to_float ts /. 1e3 in
  (* metadata first: the process track, then one thread label per domain
     buffer so Perfetto shows "domain-N" instead of a bare tid *)
  emit
    "  {\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", \"args\": \
     {\"name\": \"diagres\"}}";
  List.iter
    (fun b ->
      emit
        (Printf.sprintf
           "  {\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \
            \"thread_name\", \"args\": {\"name\": \"domain-%d\"}}"
           b.dom b.dom))
    (List.sort (fun a b -> compare a.dom b.dom) all);
  (* only emit spans that completed, so every B has a matching E *)
  let completed = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (function
          | End { id; _ } -> Hashtbl.replace completed id ()
          | Begin _ | Sample _ -> ())
        b.events)
    all;
  List.iter
    (fun b ->
      List.iter
        (fun ev ->
          match ev with
          | Begin { id; name; cat; ts; parent; gc = _ }
            when Hashtbl.mem completed id ->
            emit
              (Printf.sprintf
                 "  {\"ph\": \"B\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, \
                  \"name\": \"%s\", \"cat\": \"%s\", \"args\": {\"span_id\": \
                  %d, \"parent_id\": %d}}"
                 b.dom (us ts) (json_escape name)
                 (json_escape (if cat = "" then "default" else cat))
                 id parent)
          | End { id; ts; attrs; gc } when Hashtbl.mem names id ->
            let name, cat, gc0 = Hashtbl.find names id in
            let attrs =
              match (gc0, gc) with
              | Some g0, Some g1 ->
                let d = gc_delta g0 g1 in
                attrs
                @ [ ("alloc_bytes", Float d.alloc_bytes);
                    ("minor_gcs", Int d.minor_collections);
                    ("major_gcs", Int d.major_collections);
                    ("promoted_words", Float d.promoted_words) ]
              | _ -> attrs
            in
            emit
              (Printf.sprintf
                 "  {\"ph\": \"E\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, \
                  \"name\": \"%s\", \"cat\": \"%s\", \"args\": %s}"
                 b.dom (us ts) (json_escape name)
                 (json_escape (if cat = "" then "default" else cat))
                 (attrs_to_json attrs));
            (* alloc mode also gives the trace a per-domain memory
               timeline: cumulative allocated bytes as a counter track *)
            (match gc with
            | Some g ->
              emit
                (Printf.sprintf
                   "  {\"ph\": \"C\", \"pid\": 1, \"tid\": %d, \"ts\": \
                    %.3f, \"name\": \"gc.allocated_bytes\", \"args\": \
                    {\"bytes\": %.0f}}"
                   b.dom (us ts) g.g_alloc)
            | None -> ())
          | Sample { sname; ts; v } ->
            emit
              (Printf.sprintf
                 "  {\"ph\": \"C\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, \
                  \"name\": \"%s\", \"args\": {\"value\": %s}}"
                 b.dom (us ts) (json_escape sname)
                 (value_to_json (Float v)))
          | Begin _ | End _ -> ())
        (List.rev b.events))
    all;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(** The metrics registry as a JSON object:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)
let metrics_json () : string =
  let ms = metrics () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"counters\": {";
  let first = ref true in
  List.iter
    (function
      | Counter (n, v) ->
        if not !first then Buffer.add_string buf ", ";
        first := false;
        Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (json_escape n) v)
      | Gauge _ | Histogram _ -> ())
    ms;
  Buffer.add_string buf "}, \"gauges\": {";
  first := true;
  List.iter
    (function
      | Gauge (n, v) ->
        if not !first then Buffer.add_string buf ", ";
        first := false;
        Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (json_escape n) v)
      | Counter _ | Histogram _ -> ())
    ms;
  Buffer.add_string buf "}, \"histograms\": {";
  first := true;
  List.iter
    (function
      | Histogram (n, s) ->
        if not !first then Buffer.add_string buf ", ";
        first := false;
        Buffer.add_string buf
          (Printf.sprintf
             "\"%s\": {\"count\": %d, \"sum\": %.6g, \"mean\": %s, \"min\": \
              %s, \"max\": %s}"
             (json_escape n) s.count s.sum
             (value_to_json (Float s.mean))
             (value_to_json (Float s.min))
             (value_to_json (Float s.max)))
      | Counter _ | Gauge _ -> ())
    ms;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(** Human-readable metrics dump (the [qviz stats] sink). *)
let metrics_to_string () : string =
  let ms = metrics () in
  if ms = [] then "(no metrics recorded)\n"
  else
    let buf = Buffer.create 1024 in
    List.iter
      (function
        | Counter (n, v) -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" n v)
        | Gauge (n, v) ->
          Buffer.add_string buf (Printf.sprintf "%-40s %d (gauge)\n" n v)
        | Histogram (n, s) ->
          Buffer.add_string buf
            (if s.count = 0 then Printf.sprintf "%-40s count=0\n" n
             else
               Printf.sprintf
                 "%-40s count=%d mean=%.1f min=%.0f max=%.0f\n" n s.count
                 s.mean s.min s.max))
      ms;
    Buffer.contents buf
