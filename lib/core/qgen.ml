(** Random well-typed query generation — the engine of the cross-language
    roundtrip fuzz harness.

    Each generator draws from an explicit [Random.State.t] so a fixed seed
    reproduces the exact query sequence, and only produces queries that are
    well-typed over the given schemas (in particular, every comparison has
    compatible operand types — the strict typecheckers reject anything
    else).  The generated fragment is the tutorial's: conjunctive bodies
    with constants, joins, nested (possibly negated) existential blocks,
    and an occasional disjunction to exercise panel splitting/merging. *)

module D = Diagres_data
module T = Diagres_rc.Trc
module F = Diagres_logic.Fol
module Sq = Diagres_sql.Ast
module Dl = Diagres_datalog.Ast
module Ra = Diagres_ra.Ast

type schemas = (string * D.Schema.t) list

let pick st l = List.nth l (Random.State.int st (List.length l))
let chance st p = Random.State.float st 1.0 < p

let ops_all = F.[ Eq; Neq; Lt; Le; Gt; Ge ]

(** A constant matching a column's static type. *)
let typed_const st (ty : D.Value.ty) : D.Value.t =
  match ty with
  | D.Value.Tint -> D.Value.Int (Random.State.int st 120)
  | D.Value.Tfloat -> D.Value.Float (float_of_int (Random.State.int st 60))
  | D.Value.Tstring ->
    (* includes a quote-bearing name to exercise doubled-quote escapes *)
    D.Value.String
      (pick st [ "red"; "green"; "blue"; "a"; "d1"; "O'Brien" ])
  | D.Value.Tbool -> D.Value.Bool (Random.State.bool st)
  | D.Value.Tany ->
    if Random.State.bool st then D.Value.Int (Random.State.int st 120)
    else D.Value.String "red"

(* ------------------------------------------------------------------ *)
(* TRC: the hub language.                                              *)

let gen_trc ?(max_ranges = 2) ?(depth = 2) st (schemas : schemas) : T.query =
  let fresh = ref 0 in
  let new_var () =
    incr fresh;
    Printf.sprintf "t%d" !fresh
  in
  let field scope =
    let v, r = pick st scope in
    let (a : D.Schema.attribute) = pick st (List.assoc r schemas) in
    (T.Field (v, a.D.Schema.name), a.D.Schema.ty)
  in
  (* a comparison whose operands have compatible types: field vs constant,
     or field vs another in-scope field of compatible type *)
  let cmp_atom scope =
    let f, ty = field scope in
    let partner =
      if chance st 0.5 then
        let candidates =
          List.concat_map
            (fun (v, r) ->
              List.filter_map
                (fun (a : D.Schema.attribute) ->
                  if D.Value.ty_compatible a.D.Schema.ty ty then
                    Some (T.Field (v, a.D.Schema.name))
                  else None)
                (List.assoc r schemas))
            scope
        in
        match candidates with [] -> None | l -> Some (pick st l)
      else None
    in
    let rhs =
      match partner with
      | Some t -> t
      | None -> T.Const (typed_const st ty)
    in
    T.Cmp (pick st ops_all, f, rhs)
  in
  let rec body scope depth =
    let atoms =
      List.init (1 + Random.State.int st 2) (fun _ -> cmp_atom scope)
    in
    let nested =
      if depth > 0 && chance st 0.6 then begin
        let v = new_var () in
        let r = fst (pick st schemas) in
        let inner = body ((v, r) :: scope) (depth - 1) in
        let q = T.Exists ([ (v, r) ], inner) in
        [ (if chance st 0.3 then T.Not q else q) ]
      end
      else []
    in
    let conj = T.conj (atoms @ nested) in
    if depth > 0 && chance st 0.15 then T.Or (conj, cmp_atom scope)
    else conj
  in
  let ranges =
    List.init
      (1 + Random.State.int st max_ranges)
      (fun _ -> (new_var (), fst (pick st schemas)))
  in
  let head =
    List.sort_uniq compare
      (List.init (1 + Random.State.int st 2) (fun _ -> fst (field ranges)))
  in
  { T.head; ranges; body = body ranges depth }

(** DRC queries come from TRC through the standard translation, which
    yields exactly the dot-chained-[exists] shapes whose roundtrip used to
    be broken.  [max_ranges]/[depth] bound the TRC shape: evaluating DRC
    goes through the active-domain construction, whose cost is adom^k in
    the number of column variables, so equivalence checks want shallow
    queries while print->parse identity can afford deep ones. *)
let gen_drc ?max_ranges ?depth st (schemas : schemas) : Diagres_rc.Drc.query =
  Diagres_rc.Translate.trc_to_drc schemas
    (gen_trc ?max_ranges ?depth st schemas)

(* ------------------------------------------------------------------ *)
(* SQL: SELECT–FROM–WHERE with correlated (NOT) EXISTS.                *)

let gen_sql st (schemas : schemas) : Sq.statement =
  let fresh = ref 0 in
  let tref () =
    incr fresh;
    { Sq.name = fst (pick st schemas); alias = Printf.sprintf "a%d" !fresh }
  in
  let col_of scope =
    let t = pick st scope in
    let (a : D.Schema.attribute) = pick st (List.assoc t.Sq.name schemas) in
    ( Sq.Col { Sq.table = Some t.Sq.alias; column = a.D.Schema.name },
      a.D.Schema.ty )
  in
  let cmp scope =
    let e, ty = col_of scope in
    let partner =
      if chance st 0.5 then
        let candidates =
          List.concat_map
            (fun t ->
              List.filter_map
                (fun (a : D.Schema.attribute) ->
                  if D.Value.ty_compatible a.D.Schema.ty ty then
                    Some
                      (Sq.Col
                         { Sq.table = Some t.Sq.alias;
                           column = a.D.Schema.name })
                  else None)
                (List.assoc t.Sq.name schemas))
            scope
        in
        match candidates with [] -> None | l -> Some (pick st l)
      else None
    in
    let rhs =
      match partner with Some e -> e | None -> Sq.Lit (typed_const st ty)
    in
    Sq.Cmp (pick st ops_all, e, rhs)
  in
  let rec query outer depth : Sq.query =
    let from = List.init (1 + Random.State.int st 2) (fun _ -> tref ()) in
    let scope = from @ outer in
    let conds =
      List.init (1 + Random.State.int st 2) (fun _ -> cmp scope)
    in
    let sub =
      if depth > 0 && chance st 0.5 then
        let q = query scope (depth - 1) in
        [ (if chance st 0.4 then Sq.Not (Sq.Exists q) else Sq.Exists q) ]
      else []
    in
    let conds =
      match conds @ sub with
      | [] -> Sq.True
      | c :: cs -> List.fold_left (fun a b -> Sq.And (a, b)) c cs
    in
    let select =
      List.init
        (1 + Random.State.int st 2)
        (fun _ -> fst (col_of from))
      |> List.sort_uniq compare
      |> List.map (fun e -> Sq.Item (e, None))
    in
    { Sq.distinct = chance st 0.7; select; from; where = conds }
  in
  Sq.Query (query [] 2)

(* ------------------------------------------------------------------ *)
(* Datalog: one safe, non-recursive rule (plus the occasional negated
   EDB literal), goal predicate [q].                                    *)

let gen_datalog st (schemas : schemas) : Dl.program =
  let fresh = ref 0 in
  (* positive atoms: fresh variables, typed by schema position *)
  let atom_of (name, schema) =
    List.map
      (fun (a : D.Schema.attribute) ->
        incr fresh;
        (Printf.sprintf "X%d" !fresh, a.D.Schema.ty))
      schema
    |> fun vars -> (name, vars)
  in
  let atoms =
    List.init (1 + Random.State.int st 2) (fun _ -> atom_of (pick st schemas))
  in
  (* unify a few compatible variable pairs to create joins *)
  let all_vars = List.concat_map snd atoms in
  let renames = Hashtbl.create 8 in
  List.iteri
    (fun i (x, tx) ->
      List.iteri
        (fun j (y, ty) ->
          if i < j && tx = ty && not (Hashtbl.mem renames y) && chance st 0.2
          then Hashtbl.replace renames y x)
        all_vars)
    all_vars;
  let subst x = try Hashtbl.find renames x with Not_found -> x in
  let body_atoms =
    List.map
      (fun (name, vars) ->
        Dl.Pos (Dl.atom name (List.map (fun (x, _) -> Dl.Var (subst x)) vars)))
      atoms
  in
  let bound = List.map (fun (x, t) -> (subst x, t)) all_vars in
  let conds =
    List.init (Random.State.int st 2) (fun _ ->
        let x, t = pick st bound in
        Dl.Cond (pick st ops_all, Dl.Var x, Dl.Const (typed_const st t)))
  in
  let neg =
    if chance st 0.3 then begin
      let name, schema = pick st schemas in
      let args =
        List.map
          (fun (a : D.Schema.attribute) ->
            let compatible =
              List.filter (fun (_, t) -> t = a.D.Schema.ty) bound
            in
            match compatible with
            | [] -> Dl.Const (typed_const st a.D.Schema.ty)
            | l -> if chance st 0.7 then Dl.Var (fst (pick st l))
                   else Dl.Const (typed_const st a.D.Schema.ty)
          )
          schema
      in
      [ Dl.Neg (Dl.atom name args) ]
    end
    else []
  in
  let head_vars =
    let n = 1 + Random.State.int st 2 in
    List.sort_uniq compare (List.init n (fun _ -> fst (pick st bound)))
  in
  [ { Dl.head = Dl.atom "q" (List.map (fun x -> Dl.Var x) head_vars);
      body = body_atoms @ neg @ conds } ]

(* ------------------------------------------------------------------ *)
(* RA: well-typed algebra over the base relations.                      *)

let rec gen_ra st (schemas : schemas) fuel : Ra.t =
  let base () = Ra.Rel (fst (pick st schemas)) in
  if fuel <= 0 then base ()
  else
    let e = gen_ra st schemas (fuel - 1) in
    let schema = Diagres_ra.Typecheck.infer schemas e in
    let attr () = (pick st schema : D.Schema.attribute) in
    match Random.State.int st 6 with
    | 0 ->
      let a = attr () in
      Ra.Select
        ( Ra.Cmp
            ( pick st ops_all, Ra.Attr a.D.Schema.name,
              Ra.Const (typed_const st a.D.Schema.ty) ),
          e )
    | 1 ->
      let keep =
        List.filter (fun _ -> Random.State.bool st) (D.Schema.names schema)
      in
      let keep = if keep = [] then [ (attr ()).D.Schema.name ] else keep in
      Ra.Project (List.sort_uniq compare keep, e)
    | 2 ->
      let a = (attr ()).D.Schema.name in
      let rec free k =
        let cand = Printf.sprintf "%s_g%d" a k in
        if D.Schema.mem cand schema then free (k + 1) else cand
      in
      Ra.Rename ([ (a, free 0) ], e)
    | 3 -> Ra.Join (e, base ())
    | 4 ->
      let a = attr () in
      let e2 =
        Ra.Select
          ( Ra.Cmp
              ( F.Neq, Ra.Attr a.D.Schema.name,
                Ra.Const (typed_const st a.D.Schema.ty) ),
            e )
      in
      (match Random.State.int st 3 with
      | 0 -> Ra.Union (e, e2)
      | 1 -> Ra.Inter (e, e2)
      | _ -> Ra.Diff (e, e2))
    | _ -> e
