(** The tutorial's benchmark queries (Part 3), each in all five textual
    languages over the sailors–reserves–boats schema, with ground-truth
    answers on the sample instance.

    Q1  join            — sailors who reserved a red boat
    Q2  anti-join       — sailors who reserved no red boat
    Q3  division        — sailors who reserved {e all} red boats
    Q4  disjunction     — sailors who reserved a red or a green boat
    Q5  self-join, θ    — sailor pairs with equal rating, first older

    Every entry is a source string in the concrete syntax of the matching
    parser; experiment E1 checks that, per query, all five agree on the
    sample database and on randomized instances. *)

type entry = {
  id : string;
  description : string;
  sql : string;
  ra : string;
  trc : string;
  drc : string;
  datalog : string;  (** program text; goal predicate is the query id *)
  expected_sids : int list option;
      (** ground truth on {!Diagres_data.Sample_db.db} for single-column
          sid results; [None] for Q5 (pair-valued) *)
}

let q1 =
  {
    id = "q1";
    description = "sailors (sid) who reserved a red boat";
    sql =
      "SELECT DISTINCT s.sid FROM Sailor s, Reserves r, Boat b WHERE s.sid \
       = r.sid AND r.bid = b.bid AND b.color = 'red'";
    ra =
      "project[sid](Reserves join project[bid](select[color = 'red'](Boat)))";
    trc =
      "{ s.sid | s in Sailor : exists r in Reserves (r.sid = s.sid and \
       exists b in Boat (b.bid = r.bid and b.color = 'red')) }";
    drc =
      "{ s | exists n, rt, a (Sailor(s, n, rt, a) & exists b, d (Reserves(s, \
       b, d) & exists bn, c (Boat(b, bn, c) & c = 'red'))) }";
    datalog =
      "q1(S) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'red').";
    expected_sids = Some Diagres_data.Sample_db.q1_expected_sids;
  }

let q2 =
  {
    id = "q2";
    description = "sailors who reserved no red boat";
    sql =
      "SELECT DISTINCT s.sid FROM Sailor s WHERE NOT EXISTS (SELECT r.sid \
       FROM Reserves r, Boat b WHERE r.sid = s.sid AND r.bid = b.bid AND \
       b.color = 'red')";
    ra =
      "project[sid](Sailor) minus project[sid](Reserves join \
       project[bid](select[color = 'red'](Boat)))";
    trc =
      "{ s.sid | s in Sailor : not (exists r in Reserves (r.sid = s.sid and \
       exists b in Boat (b.bid = r.bid and b.color = 'red'))) }";
    drc =
      "{ s | exists n, rt, a (Sailor(s, n, rt, a)) & not (exists b, d \
       (Reserves(s, b, d) & exists bn, c (Boat(b, bn, c) & c = 'red'))) }";
    datalog =
      "redsailor(S) :- Reserves(S, B, D), Boat(B, BN, 'red').\n\
       q2(S) :- Sailor(S, N, R, A), not redsailor(S).";
    expected_sids = Some Diagres_data.Sample_db.q2_expected_sids;
  }

let q3 =
  {
    id = "q3";
    description = "sailors who reserved all red boats";
    sql =
      "SELECT DISTINCT s.sid FROM Sailor s WHERE NOT EXISTS (SELECT b.bid \
       FROM Boat b WHERE b.color = 'red' AND NOT EXISTS (SELECT r.sid FROM \
       Reserves r WHERE r.sid = s.sid AND r.bid = b.bid))";
    (* The textbook ÷ formulation [π(Reserves) ÷ π(σ_red Boat)] differs on
       the vacuous case: with no red boats it returns sailors who reserved
       *something*, while ∀-based formulations return every sailor.  The
       subtraction form below matches the ∀ semantics on all instances —
       the empty-divisor subtlety the cow book warns about.  Division
       itself is exercised by tests and benches. *)
    ra =
      "project[sid](Sailor) minus project[sid]((project[sid](Sailor) * \
       project[bid](select[color = 'red'](Boat))) minus project[sid, \
       bid](Reserves))";
    trc =
      "{ s.sid | s in Sailor : forall b in Boat (b.color = 'red' implies \
       exists r in Reserves (r.sid = s.sid and r.bid = b.bid)) }";
    drc =
      "{ s | exists n, rt, a (Sailor(s, n, rt, a)) & forall b (forall bn \
       (forall c (Boat(b, bn, c) & c = 'red' implies exists d (Reserves(s, \
       b, d))))) }";
    datalog =
      "missing(S) :- Sailor(S, N, R, A), Boat(B, BN, 'red'), not res2(S, \
       B).\n\
       res2(S, B) :- Reserves(S, B, D).\n\
       q3(S) :- Sailor(S, N, R, A), not missing(S).";
    expected_sids = Some Diagres_data.Sample_db.q3_expected_sids;
  }

let q4 =
  {
    id = "q4";
    description = "sailors who reserved a red or a green boat";
    sql =
      "SELECT s.sid FROM Sailor s, Reserves r, Boat b WHERE s.sid = r.sid \
       AND r.bid = b.bid AND b.color = 'red' UNION SELECT s.sid FROM Sailor \
       s, Reserves r, Boat b WHERE s.sid = r.sid AND r.bid = b.bid AND \
       b.color = 'green'";
    ra =
      "project[sid](Reserves join project[bid](select[color = 'red' or \
       color = 'green'](Boat)))";
    trc =
      "{ s.sid | s in Sailor : exists r in Reserves (r.sid = s.sid and \
       exists b in Boat (b.bid = r.bid and (b.color = 'red' or b.color = \
       'green'))) }";
    drc =
      "{ s | exists n, rt, a (Sailor(s, n, rt, a) & exists b, d (Reserves(s, \
       b, d) & exists bn, c (Boat(b, bn, c) & (c = 'red' | c = 'green')))) }";
    datalog =
      "q4(S) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'red').\n\
       q4(S) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'green').";
    expected_sids = Some Diagres_data.Sample_db.q4_expected_sids;
  }

let q5 =
  {
    id = "q5";
    description =
      "pairs of sailors with the same rating where the first is older";
    sql =
      "SELECT s1.sid, s2.sid FROM Sailor s1, Sailor s2 WHERE s1.rating = \
       s2.rating AND s1.age > s2.age";
    ra =
      "project[sid, sid2](rename[sid -> sid2, sname -> sname2, rating -> \
       rating2, age -> age2](Sailor) join[rating = rating2 and age > \
       age2] Sailor)";
    trc =
      "{ s1.sid, s2.sid | s1 in Sailor, s2 in Sailor : s1.rating = s2.rating \
       and s1.age > s2.age }";
    drc =
      "{ x, y | exists n1, r1, a1 (Sailor(x, n1, r1, a1) & exists n2, r2, a2 \
       (Sailor(y, n2, r2, a2) & r1 = r2 & a1 > a2)) }";
    datalog =
      "q5(X, Y) :- Sailor(X, N1, R, A1), Sailor(Y, N2, R, A2), A1 > A2.";
    expected_sids = None;
  }

let all = [ q1; q2; q3; q4; q5 ]

let find id =
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> e
  | None -> invalid_arg ("unknown catalog query " ^ id)

(** Parsed forms (raise on internal inconsistency — exercised in tests). *)
let parsed_sql e = Diagres_sql.Parser.parse e.sql
let parsed_ra e = Diagres_ra.Parser.parse e.ra
let parsed_trc e = Diagres_rc.Trc_parser.parse e.trc
let parsed_drc e = Diagres_rc.Drc_parser.parse e.drc
let parsed_datalog e = Diagres_datalog.Parser.parse e.datalog

(** Evaluate the entry in every language on [db]; returns language-tagged
    relations (columns may be named differently — compare with
    {!Diagres_data.Relation.same_rows}). *)
let eval_all db (e : entry) : (string * Diagres_data.Relation.t) list =
  [ ("sql", Diagres_sql.To_ra.eval db (parsed_sql e));
    ("ra", Diagres_ra.Eval.eval_planned db (parsed_ra e));
    ("trc", Diagres_rc.Trc.eval db (parsed_trc e));
    ("drc", Diagres_rc.Drc.eval db (parsed_drc e));
    ("datalog", Diagres_datalog.Eval.query db (parsed_datalog e) ~goal:e.id) ]
