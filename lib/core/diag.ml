(** Structured, source-located diagnostics — the error currency of the
    whole system.

    Every user-triggerable failure (parse error, unresolved name, type
    mismatch, malformed CSV, unsafe query, evaluation error) is reported as
    a {!t}: a stable error code such as [E-SQL-RESOLVE-001], a pipeline
    {!phase} that determines the process exit code, a severity, a message,
    optional fix-it hints ("did you mean ...?"), and — when the failing
    source text is known — a byte span rendered as a caret excerpt.

    The module is deliberately dependency-free so that every layer of the
    system (data, parsers, frontends, CLI) can raise and inspect the same
    type.  Deep layers that do not hold the source text record a [needle]
    (the offending lexeme); the top of the pipeline attaches the source with
    {!with_source}, which locates the needle to produce the caret. *)

type severity = Error | Warning | Note

(** Pipeline stage at which the diagnostic arose.  The CLI maps phases to
    distinct exit codes, so scripts can tell a parse error from a type
    error without scraping messages. *)
type phase =
  | Parse      (** lexing / parsing of any of the five languages *)
  | Resolve    (** unknown or ambiguous names (tables, columns, predicates) *)
  | Type       (** arity, schema, and operand-type errors *)
  | Safety     (** range-restriction / safety violations *)
  | Data       (** CSV / schema loading errors *)
  | Eval       (** runtime evaluation errors *)
  | Internal   (** a bug in this library — never a user error *)

(** Half-open byte range [start, stop) into the source text. *)
type span = { start : int; stop : int }

type t = {
  code : string;            (** stable, grep-able: [E-SQL-RESOLVE-001] *)
  phase : phase;
  severity : severity;
  message : string;
  hints : string list;      (** rendered as [help:] lines *)
  src_name : string;        (** what the source is: ["<query>"], a filename *)
  source : string option;   (** the full source text, when known *)
  span : span option;       (** location inside [source] *)
  needle : string option;   (** offending lexeme, for late span recovery *)
}

exception Error of t

let make ?(severity : severity = Error) ?(hints = []) ?(src_name = "<query>")
    ?source ?span ?needle ~code ~phase message =
  { code; phase; severity; message; hints; src_name; source; span; needle }

(** [error ~code ~phase fmt] builds the diagnostic and raises {!Error}. *)
let error ?severity ?hints ?src_name ?source ?span ?needle ~code ~phase fmt =
  Format.kasprintf
    (fun message ->
      raise
        (Error
           (make ?severity ?hints ?src_name ?source ?span ?needle ~code
              ~phase message)))
    fmt

let severity_name (s : severity) =
  match s with
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let phase_name = function
  | Parse -> "parse"
  | Resolve -> "resolve"
  | Type -> "type"
  | Safety -> "safety"
  | Data -> "data"
  | Eval -> "eval"
  | Internal -> "internal"

(** Distinct process exit codes per phase (documented in DESIGN.md):
    resolve errors exit 1, parse errors 2, type/safety errors 3, data
    loading errors 4, evaluation errors 5.  Internal errors use 70
    (EX_SOFTWARE) — reaching it from user input is a bug. *)
let exit_code d =
  match d.phase with
  | Resolve -> 1
  | Parse -> 2
  | Type | Safety -> 3
  | Data -> 4
  | Eval -> 5
  | Internal -> 70

(* ------------------------------------------------------------------ *)
(* Did-you-mean suggestions.                                            *)

(** Levenshtein edit distance, case-insensitive (names in the five
    languages differ in case conventions). *)
let edit_distance a b =
  let a = String.lowercase_ascii a and b = String.lowercase_ascii b in
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <-
          min (min (prev.(j) + 1) (curr.(j - 1) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

(** Closest candidate within an edit-distance budget scaled to the name's
    length (1 for short names, up to 3 for long ones). *)
let suggest ~candidates name =
  let budget = max 1 (min 3 (String.length name / 3)) in
  let best =
    List.fold_left
      (fun best c ->
        let d = edit_distance name c in
        match best with
        | Some (_, d') when d' <= d -> best
        | _ when d <= budget && c <> name -> Some (c, d)
        | _ -> best)
      None candidates
  in
  Option.map fst best

(** A ready-made [help:] hint, or no hint when nothing is close. *)
let did_you_mean ~candidates name =
  match suggest ~candidates name with
  | Some c -> [ Printf.sprintf "did you mean %S?" c ]
  | None -> []

(* ------------------------------------------------------------------ *)
(* Span recovery and rendering.                                         *)

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

(* Find [needle] in [text] at a token boundary (so locating "id" does not
   hit "sid"); fall back to a plain substring search. *)
let locate_needle text needle =
  let n = String.length text and k = String.length needle in
  if k = 0 || k > n then None
  else begin
    let matches_at i =
      String.sub text i k = needle
      && ((not (is_word_char needle.[0]))
         || i = 0
         || not (is_word_char text.[i - 1]))
      && ((not (is_word_char needle.[k - 1]))
         || i + k = n
         || not (is_word_char text.[i + k]))
    in
    let rec go i = if i + k > n then None else if matches_at i then Some i else go (i + 1) in
    let rec weak i =
      if i + k > n then None
      else if String.sub text i k = needle then Some i
      else weak (i + 1)
    in
    match go 0 with
    | Some i -> Some { start = i; stop = i + k }
    | None -> Option.map (fun i -> { start = i; stop = i + k }) (weak 0)
  end

(** Attach source text (and a name for it) to a diagnostic that was raised
    deep in the pipeline: fills in the caret span from the recorded needle
    when no explicit span exists.  Existing source/span are kept. *)
let with_source ?(src_name = "<query>") ~text d =
  match d.source with
  | Some _ -> d
  | None ->
    let span =
      match d.span with
      | Some _ as s -> s
      | None -> Option.bind d.needle (locate_needle text)
    in
    { d with source = Some text; span; src_name }

(* line number (1-based), column (1-based), and the line's text around a
   byte offset *)
let line_of text off =
  let n = String.length text in
  let off = max 0 (min off n) in
  let rec line_start i = if i <= 0 || text.[i - 1] = '\n' then i else line_start (i - 1) in
  let rec line_end i = if i >= n || text.[i] = '\n' then i else line_end (i + 1) in
  let s = line_start off and e = line_end off in
  let lineno = ref 1 in
  String.iteri (fun i c -> if i < s && c = '\n' then incr lineno) text;
  (!lineno, off - s + 1, String.sub text s (e - s), s)

(** Render a diagnostic as a terminal-friendly excerpt:

    {v
    error[E-SQL-RESOLVE-001]: unknown table "Sailors"
      --> <query>:1:22
       |
     1 | SELECT * FROM Sailors S
       |               ^^^^^^^
      help: did you mean "Sailor"?
    v} *)
let render d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s[%s]: %s\n" (severity_name d.severity) d.code d.message);
  (match (d.source, d.span) with
  | Some text, Some span ->
    let lineno, col, line, line_start = line_of text span.start in
    let gutter = String.length (string_of_int lineno) in
    let pad = String.make gutter ' ' in
    Buffer.add_string buf
      (Printf.sprintf "%s--> %s:%d:%d\n" pad d.src_name lineno col);
    Buffer.add_string buf (Printf.sprintf "%s |\n" pad);
    Buffer.add_string buf (Printf.sprintf "%d | %s\n" lineno line);
    let within = max 1 (min (span.stop - span.start) (String.length line - (span.start - line_start))) in
    Buffer.add_string buf
      (Printf.sprintf "%s | %s%s\n" pad
         (String.make (span.start - line_start) ' ')
         (String.make within '^'))
  | Some _, None | None, _ ->
    if d.src_name <> "<query>" then
      Buffer.add_string buf (Printf.sprintf " --> %s\n" d.src_name));
  List.iter
    (fun h -> Buffer.add_string buf (Printf.sprintf " help: %s\n" h))
    d.hints;
  Buffer.contents buf

let to_string d = Printf.sprintf "%s[%s]: %s" (severity_name d.severity) d.code d.message

let pp ppf d = Format.pp_print_string ppf (render d)

(* ------------------------------------------------------------------ *)
(* Result-based API.                                                    *)

(** Run [f], turning a raised diagnostic into [Error d].  Non-diagnostic
    exceptions pass through; {!Diagres.Errors.capture} (which can see every
    library's legacy exception types) converts those too. *)
let capture f : ('a, t) result =
  match f () with
  | x -> Stdlib.Ok x
  | exception Error d -> Stdlib.Error d

let get_ok = function
  | Stdlib.Ok x -> x
  | Stdlib.Error d -> raise (Error d)
