(** Registered (materialized) views: named queries whose results — and
    diagrams — are kept current under insert/delete batches by the
    differential evaluator ({!Diagres_ra.Delta}) instead of re-running
    their plans.

    A registry owns a database plus the registered views.  {!register}
    parses the query in any supported language, lowers it to RA, plans it
    through the shared LRU plan cache ({!Diagres_ra.Plan_cache}) — the
    registered plan is the {e same object} any ad-hoc
    {!Diagres_ra.Eval.eval_planned} of that query gets served, which is
    exactly why all differential state lives with the view, never on plan
    nodes — runs it once, and (optionally) renders the query's diagram.
    {!update} applies batches through {!Diagres_data.Database.apply_delta}
    and propagates the normalized deltas through every registered view.

    Diagrams depend only on the query, not the data, so a view's rendering
    is produced once at registration; {!snapshot} pairs it with the
    maintained result of the moment. *)

module D = Diagres_data
module R = D.Relation
module Ra = Diagres_ra

exception Unknown_view of string

type view = {
  name : string;
  lang : Languages.lang;
  source : string;
  query : Languages.query;
  ra : Ra.Ast.t;
  plan : Ra.Plan.t;  (** shared with the plan cache — treat as read-only *)
  delta : Ra.Delta.t;
  rendering : Pipeline.rendering option;
  mutable generation : int;  (** update batches applied *)
}

type t = {
  mutable db : D.Database.t;
  mutable views : (string * view) list;  (** in registration order *)
}

(** Per-view outcome of one {!update} batch. *)
type update_stats = {
  view : string;
  inserts : int;  (** rows entering the maintained result *)
  deletes : int;  (** rows leaving it *)
  result_size : int;
}

let create db = { db; views = [] }
let database t = t.db
let views t = t.views
let find_opt t name = List.assoc_opt name t.views

let find t name =
  match find_opt t name with Some v -> v | None -> raise (Unknown_view name)

let schemas_of db =
  List.map (fun (n, r) -> (n, R.schema r)) (D.Database.relations db)

(** Parse, lower to RA, plan (through the LRU plan cache), run once, and
    start maintaining.  [formalism] additionally renders the query's
    diagram, kept alongside the maintained result.  Re-registering a name
    replaces the old view. *)
let register ?formalism t ~name ~lang ~source : view =
  let query = Languages.parse lang source in
  let schemas = schemas_of t.db in
  let ra = Languages.to_ra schemas query in
  ignore
    (Ra.Typecheck.infer (Ra.Typecheck.env_of_database t.db) ra);
  let plan, _cached = Ra.Plan_cache.find_or_plan t.db ra in
  let delta = Ra.Delta.init plan in
  let rendering =
    Option.map (fun f -> Pipeline.visualize schemas query f) formalism
  in
  let v =
    { name; lang; source; query; ra; plan; delta; rendering; generation = 0 }
  in
  t.views <- List.remove_assoc name t.views @ [ (name, v) ];
  v

let unregister t name = t.views <- List.remove_assoc name t.views
let result (v : view) : R.t = Ra.Delta.result v.delta

(** Apply [(relation, inserts, deletes)] batches to the database and
    propagate the normalized deltas through every registered view.
    Raises {!Diagres_data.Database.Unknown_relation}. *)
let update t (changes : (string * R.t * R.t) list) : update_stats list =
  let db', applied = D.Database.apply_delta changes t.db in
  t.db <- db';
  List.map
    (fun (vname, v) ->
      let rep = Ra.Delta.maintain v.delta applied in
      v.generation <- v.generation + 1;
      { view = vname;
        inserts = rep.Ra.Delta.root_inserts;
        deletes = rep.Ra.Delta.root_deletes;
        result_size = R.cardinality rep.Ra.Delta.result })
    t.views

(** Recompute the view from scratch against the current database (fresh
    plan — the database stamp changed, so this never reuses the view's
    plan entry) and compare with the maintained result. *)
let verify t (v : view) : bool =
  R.same_rows (result v) (Ra.Eval.eval_planned t.db v.ra)

(** The view's diagram (as rendered at registration) plus its maintained
    result and generation — what a UI would repaint after an update. *)
let snapshot (v : view) : Pipeline.rendering option * R.t * int =
  (v.rendering, result v, v.generation)

(* ---------------- memory gauges ---------------- *)

module T = Diagres_telemetry.Telemetry

let g_relations = T.gauge "memory_bytes.relations"
let g_index_cache = T.gauge "memory_bytes.index_cache"
let g_stats_cache = T.gauge "memory_bytes.stats_cache"
let g_plan_cache = T.gauge "memory_bytes.plan_cache"
let g_delta_state = T.gauge "memory_bytes.delta_state"
let g_plan_entries = T.gauge "plan_cache.entries"

(** Recompute the [memory_bytes.*] gauges: relation storage (all
    materialized views of every relation), the stamp-owned index and
    statistics caches, the LRU plan cache's resident memos, and the
    differential state of [views].  Also drops one sample per gauge onto
    the trace's counter tracks when tracing is on, so [--trace-json]
    output carries a memory timeline. *)
let refresh_memory_gauges ?(views : view list = []) (db : D.Database.t) :
    unit =
  let rel, idx, st =
    List.fold_left
      (fun (r, i, s) (_, relation) ->
        let ib, sb = R.caches_memory_bytes relation in
        (r + R.memory_bytes relation, i + ib, s + sb))
      (0, 0, 0) (D.Database.relations db)
  in
  T.set_gauge g_relations rel;
  T.set_gauge g_index_cache idx;
  T.set_gauge g_stats_cache st;
  T.set_gauge g_plan_cache (Ra.Plan_cache.memory_bytes ());
  T.set_gauge g_plan_entries (Ra.Plan_cache.entries ());
  T.set_gauge g_delta_state
    (List.fold_left (fun acc v -> acc + Ra.Delta.memory_bytes v.delta) 0 views);
  T.sample_all_gauges ()

(** {!refresh_memory_gauges} over a registry: its database plus every
    registered view's differential state. *)
let refresh_gauges (t : t) : unit =
  refresh_memory_gauges ~views:(List.map snd t.views) t.db
