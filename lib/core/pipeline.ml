(** The end-to-end query-visualization pipeline (Figs. 1–2 of the paper):
    a textual query in any language → normalized TRC panels → the chosen
    diagrammatic formalism → SVG/ASCII, plus the verification loop that a
    diagram's reading evaluates to the same answers as the input.

    This is the programmatic counterpart of the tutorial's usage scenario:
    the "voice assistant" shows the user a diagram of the query it
    understood; the correctness of that loop is checkable, not assumed. *)

module D = Diagres_data
module Diag = Diagres_diag.Diag
module T = Diagres_telemetry.Telemetry

type formalism =
  | Relational_diagram
  | Query_vis
  | Dfql
  | Qbe
  | Beta_graph        (** Boolean queries only *)
  | String_diagram
  | Conceptual_graph

let formalism_name = function
  | Relational_diagram -> "relational-diagram"
  | Query_vis -> "queryvis"
  | Dfql -> "dfql"
  | Qbe -> "qbe"
  | Beta_graph -> "beta"
  | String_diagram -> "string"
  | Conceptual_graph -> "conceptual"

let formalism_of_name s =
  match String.lowercase_ascii s with
  | "relational-diagram" | "rd" -> Relational_diagram
  | "queryvis" | "qv" -> Query_vis
  | "dfql" -> Dfql
  | "qbe" -> Qbe
  | "beta" | "eg" -> Beta_graph
  | "string" -> String_diagram
  | "conceptual" | "cg" -> Conceptual_graph
  | _ ->
    Diag.error ~code:"E-CLI-FORMALISM-001" ~phase:Diag.Resolve ~needle:s
      ~hints:
        (Diag.did_you_mean
           ~candidates:
             [ "rd"; "relational-diagram"; "qv"; "queryvis"; "dfql"; "qbe";
               "beta"; "eg"; "string"; "cg"; "conceptual" ]
           s)
      "unknown formalism %S" s

let all_formalisms =
  [ Relational_diagram; Query_vis; Dfql; Qbe; Beta_graph; String_diagram;
    Conceptual_graph ]

type rendering = {
  formalism : formalism;
  panels_svg : string list;   (** one SVG document per panel *)
  panels_ascii : string list;
  panel_count : int;
}

exception Pipeline_error = Diag.Error

let viz_error code fmt = Diag.error ~code ~phase:Diag.Type fmt

(** Visualize a parsed query with a formalism.  Panels materialize the
    union decomposition where the formalism needs it. *)
let visualize schemas (q : Languages.query) (f : formalism) : rendering =
  T.with_span ~cat:"phase"
    ~attrs:(fun () -> [ ("formalism", T.Str (formalism_name f)) ])
    "visualize"
  @@ fun () ->
  let module G = Diagres_diagrams in
  let trc_panels () = Languages.to_trc_panels schemas q in
  let wrap svgs asciis =
    { formalism = f; panels_svg = svgs; panels_ascii = asciis;
      panel_count = List.length svgs }
  in
  match f with
  | Relational_diagram ->
    let rd = G.Relational_diagram.of_trc_queries (trc_panels ()) in
    wrap
      (G.Relational_diagram.to_svg rd)
      (List.map (fun p -> G.Scene.to_ascii p.G.Relational_diagram.scene)
         rd.G.Relational_diagram.panels)
  | Query_vis ->
    let qvs = List.map G.Queryvis.of_trc (trc_panels ()) in
    wrap (List.map G.Queryvis.to_svg qvs) (List.map G.Queryvis.to_ascii qvs)
  | Dfql ->
    let d = G.Dfql.of_ra (Languages.to_ra schemas q) in
    wrap [ G.Dfql.to_svg d ] [ G.Dfql.to_ascii d ]
  | Qbe -> (
    match q with
    | Languages.Q_datalog (p, goal) ->
      let qbe = G.Qbe.of_datalog schemas p ~goal in
      wrap [ G.Qbe.to_svg qbe ] [ G.Qbe.to_ascii qbe ]
    | _ ->
      viz_error "E-VIZ-001"
        "QBE generation follows the Datalog dataflow pattern: supply the \
         query as a Datalog program (the tutorial's point exactly)")
  | Beta_graph -> (
    let drc =
      match q with
      | Languages.Q_drc d -> d
      | _ -> (
        match trc_panels () with
        | [ t ] -> Diagres_rc.Translate.trc_to_drc schemas t
        | _ -> viz_error "E-VIZ-002" "beta graphs draw one panel")
    in
    match drc.Diagres_rc.Drc.head with
    | [] ->
      let g = G.Eg_beta.of_drc drc.Diagres_rc.Drc.body in
      wrap [ G.Eg_beta.to_svg g ] [ G.Eg_beta.to_ascii g ]
    | _ ->
      (* non-Boolean: fall through to the string-diagram extension *)
      let sd = G.String_diagram.of_drc_query drc in
      wrap [ G.String_diagram.to_svg sd ] [ G.String_diagram.to_ascii sd ])
  | String_diagram ->
    let drc =
      match q with
      | Languages.Q_drc d -> d
      | _ -> (
        match trc_panels () with
        | [ t ] -> Diagres_rc.Translate.trc_to_drc schemas t
        | _ -> viz_error "E-VIZ-003" "string diagrams draw one panel")
    in
    let sd = G.String_diagram.of_drc_query drc in
    wrap [ G.String_diagram.to_svg sd ] [ G.String_diagram.to_ascii sd ]
  | Conceptual_graph ->
    let cgs = List.map G.Conceptual_graph.of_trc (trc_panels ()) in
    wrap
      (List.map G.Conceptual_graph.to_svg cgs)
      (List.map G.Conceptual_graph.to_ascii cgs)

(** The verification loop: evaluate the original query and the TRC reading
    of its diagram; both must return the same rows.  This is the
    executable form of the Fig. 2 interaction contract. *)
let verify_roundtrip db (q : Languages.query) : bool =
  let schemas =
    List.map (fun (n, r) -> (n, D.Relation.schema r)) (D.Database.relations db)
  in
  let direct = Languages.eval db q in
  let panels = Languages.to_trc_panels schemas q in
  let via_diagram =
    match panels with
    | [] -> viz_error "E-VIZ-004" "query produced no TRC panels"
    | p :: ps ->
      List.fold_left
        (fun acc q' -> D.Relation.union acc (Diagres_rc.Trc.eval db q'))
        (Diagres_rc.Trc.eval db p) ps
  in
  D.Relation.same_rows direct via_diagram

(** One-call convenience: parse, visualize, verify. *)
let run db lang_name src formalism_name_ =
  T.with_span ~cat:"phase" "pipeline" @@ fun () ->
  let schemas =
    List.map (fun (n, r) -> (n, D.Relation.schema r)) (D.Database.relations db)
  in
  let q = Languages.parse (Languages.of_name lang_name) src in
  let r = visualize schemas q (formalism_of_name formalism_name_) in
  let verified = T.with_span ~cat:"phase" "verify" (fun () -> verify_roundtrip db q) in
  (q, r, verified)

(* -------------------------------------------------------------------- *)
(* Textual translation.                                                  *)

(* Union panels that share a head collapse back into one query with a
   disjunctive body — the inverse of {!Diagres_rc.Trc.panel_split} — so the
   printed TRC/DRC translation is a single term the corresponding parser
   accepts.  Ranges the head does not mention may differ between panels
   (the active-domain expansion produces such unions); they are pushed into
   per-disjunct existentials. *)
let merge_trc_panels (panels : Diagres_rc.Trc.query list) :
    Diagres_rc.Trc.query list =
  let module T = Diagres_rc.Trc in
  match panels with
  | [] | [ _ ] -> panels
  | p :: rest ->
    let head_vars (q : T.query) =
      List.concat_map
        (function T.Field (v, _) -> [ v ] | T.Const _ -> [])
        q.T.head
    in
    let split (q : T.query) =
      let hv = head_vars q in
      List.partition (fun (v, _) -> List.mem v hv) q.T.ranges
    in
    let keep, _ = split p in
    if
      List.for_all
        (fun (q : T.query) -> q.T.head = p.T.head && fst (split q) = keep)
        rest
    then
      let disjunct q =
        let _, extra = split q in
        if extra = [] then q.T.body else T.Exists (extra, q.T.body)
      in
      [ { p with
          T.ranges = keep;
          T.body =
            List.fold_left
              (fun acc q -> T.Or (acc, disjunct q))
              (disjunct p) rest } ]
    else panels

let comment_out text =
  String.split_on_char '\n' text
  |> List.map (fun l -> "-- " ^ l)
  |> String.concat "\n"

(** [translate_text db q target] renders [q] in [target]'s concrete syntax.
    The output re-parses under the target language's parser (the lexers
    skip [--] comments, so the optimized-RA annotation is safe) and
    evaluates to the same relation as [q] — the invertibility contract the
    roundtrip fuzz suite enforces. *)
let translate_text db (q : Languages.query) (target : Languages.lang) : string
    =
  let schemas =
    List.map (fun (n, r) -> (n, D.Relation.schema r)) (D.Database.relations db)
  in
  match target with
  | Languages.Ra ->
    let ra = Languages.to_ra schemas q in
    Diagres_ra.Pretty.ascii ra
    ^ "\n"
    ^ comment_out
        ("optimized: "
        ^ Diagres_ra.Pretty.unicode (Diagres_ra.Optimize.optimize_db db ra))
  | Languages.Trc ->
    merge_trc_panels (Languages.to_trc_panels schemas q)
    |> List.map Diagres_rc.Trc.to_string
    |> String.concat "\nUNION\n"
  | Languages.Drc ->
    merge_trc_panels (Languages.to_trc_panels schemas q)
    |> List.map (fun t ->
           Diagres_rc.Drc.to_string
             (Diagres_rc.Translate.trc_to_drc schemas t))
    |> String.concat "\nUNION\n"
  | Languages.Sql ->
    Diagres_sql.Pretty.to_string (Languages.to_sql schemas q)
  | Languages.Datalog ->
    Diag.error ~code:"E-CLI-TARGET-001" ~phase:Diag.Resolve
      "can only translate to sql, ra, trc, or drc"
