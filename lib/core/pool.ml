(** A reusable fixed-size pool of worker domains.

    OCaml 5 gives shared-memory parallelism through [Domain], but spawning
    a domain costs tens of microseconds and the runtime caps the useful
    count at the core count — exactly the situation a worker pool exists
    for.  This module owns that pool for the whole library: the morsel-
    parallel physical operators ({!Diagres_ra.Plan}), the parallel Datalog
    delta rounds ({!Diagres_datalog.Fixpoint}), and anything else that
    wants [parallel_map_chunks]/[parallel_fold] over tuple arrays.

    Design points:

    - {b fixed size, lazily started} — the pool holds [size () - 1] worker
      domains (the submitting domain is the remaining worker); nothing is
      spawned until the first parallel call, and a pool of size 1 never
      spawns at all and runs every task inline;
    - {b sizing} — [Domain.recommended_domain_count ()] by default,
      overridden by the [DIAGRES_DOMAINS] environment variable at startup
      and by {!set_size} (the [qviz --domains N] flag) at run time;
    - {b helping scheduler} — [run_all] pushes its tasks on a shared queue
      ([Mutex] + [Condition]) and then {e helps drain the queue} instead of
      blocking, so nested parallel calls (a parallel operator inside a task)
      cannot deadlock the pool;
    - {b exceptions propagate} — each task records [Ok]/[Error]; after the
      batch completes the first failure is re-raised in the submitter, and
      one task failing never prevents the others from completing.

    Determinism is the callers' contract: both primitives return per-chunk
    results in chunk order, so a deterministic merge gives results
    independent of the domain count (property-tested against the
    sequential engines at 1, 2, and N domains). *)

module T = Diagres_telemetry.Telemetry

(* ---------------- pool telemetry ----------------

   Utilization counters, always on (one atomic add per *task*, i.e. per
   morsel, which is noise next to the morsel's work):

   - [pool.tasks.queued]   tasks pushed on the shared queue
   - [pool.tasks.executed] tasks run by a worker domain
   - [pool.tasks.helped]   tasks stolen by the submitting domain's help
                           loop (nonzero = the submitter was not idle)
   - [pool.batches]        run_all batches that actually used the pool
   - [pool.tasks.inline]   tasks run inline (pool of size 1 / singleton)

   Busy time needs two clock reads per task, so it is gated on the
   telemetry flag: per-domain counters [pool.worker<i>.busy_ns] /
   [pool.helper.busy_ns] plus the [pool.task_ns] histogram. *)

let c_queued = T.counter "pool.tasks.queued"
let c_executed = T.counter "pool.tasks.executed"
let c_helped = T.counter "pool.tasks.helped"
let c_batches = T.counter "pool.batches"
let c_inline = T.counter "pool.tasks.inline"
let c_helper_busy = T.counter "pool.helper.busy_ns"
let h_task_ns = T.histogram "pool.task_ns"

(* run one queue task, attributing its busy time to [busy] when tracing *)
let run_task ~busy (t : unit -> unit) =
  if not (T.enabled ()) then t ()
  else begin
    let t0 = T.now_ns () in
    t ();
    let dt = Int64.sub (T.now_ns ()) t0 in
    T.add busy (Int64.to_int dt);
    T.observe h_task_ns (Int64.to_float dt)
  end

(* ---------------- sizing ---------------- *)

let env_size () =
  match Sys.getenv_opt "DIAGRES_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)
  | None -> None

let requested_size =
  ref (match env_size () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let size () = !requested_size

(* ---------------- the shared queue ---------------- *)

type pool = {
  mutex : Mutex.t;
  nonempty : Condition.t;          (* signalled when a task is pushed *)
  queue : (unit -> unit) Queue.t;  (* pending tasks, any batch *)
  mutable workers : unit Domain.t list;
  mutable stopping : bool;
}

let pool : pool option ref = ref None
let pool_mutex = Mutex.create ()  (* guards [pool] itself *)

let worker_loop (p : pool) (wid : int) () =
  let busy = T.counter (Printf.sprintf "pool.worker%d.busy_ns" wid) in
  let rec loop () =
    Mutex.lock p.mutex;
    let rec next () =
      if p.stopping then None
      else
        match Queue.take_opt p.queue with
        | Some t -> Some t
        | None ->
          Condition.wait p.nonempty p.mutex;
          next ()
    in
    let task = next () in
    Mutex.unlock p.mutex;
    match task with
    | None -> ()
    | Some t ->
      (* tasks are wrapped by [run_all] and never raise *)
      T.incr c_executed;
      run_task ~busy t;
      loop ()
  in
  loop ()

(* Start (or return) the shared pool with [n - 1] workers. *)
let ensure_pool n : pool =
  Mutex.lock pool_mutex;
  let p =
    match !pool with
    | Some p when List.length p.workers = n - 1 -> p
    | existing ->
      (* size changed (or first use): retire the old workers, start anew *)
      Option.iter
        (fun (p : pool) ->
          Mutex.lock p.mutex;
          p.stopping <- true;
          Condition.broadcast p.nonempty;
          Mutex.unlock p.mutex;
          List.iter Domain.join p.workers)
        existing;
      let p =
        { mutex = Mutex.create (); nonempty = Condition.create ();
          queue = Queue.create (); workers = []; stopping = false }
      in
      p.workers <- List.init (n - 1) (fun i -> Domain.spawn (worker_loop p i));
      pool := Some p;
      p
  in
  Mutex.unlock pool_mutex;
  p

(** Retire the worker domains (if any).  The next parallel call restarts
    them; used by {!set_size} and by tests that want a cold pool. *)
let shutdown () =
  Mutex.lock pool_mutex;
  Option.iter
    (fun (p : pool) ->
      Mutex.lock p.mutex;
      p.stopping <- true;
      Condition.broadcast p.nonempty;
      Mutex.unlock p.mutex;
      List.iter Domain.join p.workers)
    !pool;
  pool := None;
  Mutex.unlock pool_mutex

(** Set the pool size (the [--domains N] flag).  Takes effect immediately:
    a running pool of a different size is retired first. *)
let set_size n =
  if n < 1 then invalid_arg "Pool.set_size: size must be >= 1";
  if n <> !requested_size then begin
    requested_size := n;
    shutdown ()
  end

(* ---------------- batches ---------------- *)

type 'a slot = Pending | Done of 'a | Failed of exn

(** [run_all thunks] runs every thunk, in parallel across the pool, and
    returns their results in order.  With a pool of size 1 — or a single
    thunk — everything runs inline in the calling domain.  If any thunk
    raises, the remaining thunks still complete and the first exception
    (by thunk index) is re-raised after the batch. *)
let collect_slots slots =
  Array.map
    (function
      | Done v -> v
      | Failed e -> raise e
      | Pending -> assert false)
    slots

let run_all (thunks : (unit -> 'a) array) : 'a array =
  let n = Array.length thunks in
  if n = 0 then [||]
  else if size () = 1 || n = 1 then begin
    (* inline, but with the same batch semantics as the pooled path: every
       task runs even if an earlier one failed *)
    T.add c_inline n;
    collect_slots
      (Array.map
         (fun f -> match f () with v -> Done v | exception e -> Failed e)
         thunks)
  end
  else begin
    let p = ensure_pool (size ()) in
    T.incr c_batches;
    T.add c_queued n;
    let slots = Array.make n Pending in
    let remaining = Atomic.make n in
    let task i () =
      (slots.(i) <-
        (match thunks.(i) () with
        | v -> Done v
        | exception e -> Failed e));
      Atomic.decr remaining
    in
    Mutex.lock p.mutex;
    for i = n - 1 downto 0 do
      Queue.push (task i) p.queue
    done;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.mutex;
    (* help: drain tasks (ours or a nested batch's) until our batch is done.
       Spinning only happens in the rare window where every remaining task
       of the batch is mid-flight on another domain. *)
    while Atomic.get remaining > 0 do
      Mutex.lock p.mutex;
      let task = Queue.take_opt p.queue in
      Mutex.unlock p.mutex;
      match task with
      | Some t ->
        T.incr c_executed;
        T.incr c_helped;
        run_task ~busy:c_helper_busy t
      | None -> Domain.cpu_relax ()
    done;
    collect_slots slots
  end

(* ---------------- array primitives ---------------- *)

let default_chunk = 1024

let chunk_bounds ~chunk len =
  let nchunks = (len + chunk - 1) / chunk in
  Array.init nchunks (fun i ->
      let lo = i * chunk in
      (lo, min chunk (len - lo)))

(** [parallel_map_chunks ~chunk f arr] splits [arr] into morsels of at most
    [chunk] elements, applies [f] to each sub-array across the pool, and
    returns the per-morsel results {e in morsel order} — the deterministic
    merge point for the parallel operators. *)
let parallel_map_chunks ?(chunk = default_chunk) (f : 'a array -> 'b)
    (arr : 'a array) : 'b array =
  if chunk < 1 then invalid_arg "Pool.parallel_map_chunks: chunk must be >= 1";
  let len = Array.length arr in
  if len = 0 then [||]
  else
    run_all
      (Array.map
         (fun (lo, n) () -> f (Array.sub arr lo n))
         (chunk_bounds ~chunk len))

(** [parallel_fold ~chunk ~map ~merge ~init arr]: map every morsel in
    parallel, then merge the per-morsel results {e sequentially, in morsel
    order} — associative [merge] therefore gives the same answer at every
    domain count. *)
let parallel_fold ?(chunk = default_chunk) ~(map : 'a array -> 'b)
    ~(merge : 'b -> 'b -> 'b) ~(init : 'b) (arr : 'a array) : 'b =
  Array.fold_left merge init (parallel_map_chunks ~chunk map arr)

(** [parallel_list_map f xs]: whole-element parallelism for short lists of
    expensive tasks (one task per element) — the Datalog delta rounds run
    each rule variant as one task. *)
let parallel_list_map (f : 'a -> 'b) (xs : 'a list) : 'b list =
  Array.to_list (run_all (Array.map (fun x () -> f x) (Array.of_list xs)))
