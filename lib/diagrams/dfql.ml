(** DFQL-style dataflow diagrams (Clark & Wu 1994): the visual language
    whose symbols are exactly the RA operators, wired into a top-down
    dataflow tree.

    The tutorial's observation: every relationally complete visual language
    it surveys is at its core a picture of the RA operator tree.  This
    module makes the observation executable — an RA expression {e is} the
    diagram, laid out with the layered DAG layout. *)

module A = Diagres_ra.Ast
module Layout = Diagres_render.Layout
module Geom = Diagres_render.Geom
module Svg = Diagres_render.Svg
module Ascii = Diagres_render.Ascii

type node = {
  id : int;
  label : string;
  kind : [ `Relation | `Operator ];
}

type t = {
  nodes : node list;
  edges : (int * int) list;  (** dataflow: child result feeds parent *)
  root : int;
}

let of_ra (e : A.t) : t =
  let counter = ref 0 in
  let nodes = ref [] in
  let edges = ref [] in
  let add label kind =
    let id = !counter in
    incr counter;
    nodes := { id; label; kind } :: !nodes;
    id
  in
  let rec go (e : A.t) : int =
    match e with
    | A.Rel r -> add r `Relation
    | A.Empty e1 ->
      let n = add "∅" `Operator in
      let c = go e1 in
      edges := (c, n) :: !edges;
      n
    | A.Select (p, e1) ->
      let n = add (Printf.sprintf "σ %s" (Diagres_ra.Pretty.pred_to_string p)) `Operator in
      let c = go e1 in
      edges := (c, n) :: !edges;
      n
    | A.Project (attrs, e1) ->
      let n = add (Printf.sprintf "π %s" (String.concat "," attrs)) `Operator in
      let c = go e1 in
      edges := (c, n) :: !edges;
      n
    | A.Rename (pairs, e1) ->
      let n =
        add
          (Printf.sprintf "ρ %s"
             (String.concat ","
                (List.map (fun (a, b) -> a ^ "→" ^ b) pairs)))
          `Operator
      in
      let c = go e1 in
      edges := (c, n) :: !edges;
      n
    | A.Product (a, b) -> binary "×" a b
    | A.Join (a, b) -> binary "⋈" a b
    | A.Theta_join (p, a, b) ->
      binary (Printf.sprintf "⋈ %s" (Diagres_ra.Pretty.pred_to_string p)) a b
    | A.Union (a, b) -> binary "∪" a b
    | A.Inter (a, b) -> binary "∩" a b
    | A.Diff (a, b) -> binary "−" a b
    | A.Division (a, b) -> binary "÷" a b
  and binary label a b =
    let n = add label `Operator in
    let ca = go a in
    edges := (ca, n) :: !edges;
    let cb = go b in
    edges := (cb, n) :: !edges;
    n
  in
  let root = go e in
  { nodes = List.rev !nodes; edges = List.rev !edges; root }

let node_count d = List.length d.nodes
let edge_count d = List.length d.edges

let layout (d : t) : Layout.result =
  let lnodes =
    List.map
      (fun n ->
        { Layout.id = n.id;
          label = n.label;
          width = Geom.text_width n.label +. 20.;
          height = 26. })
      d.nodes
  in
  let ledges = List.map (fun (s, t) -> { Layout.src = s; dst = t }) d.edges in
  Layout.layered lnodes ledges

let to_svg (d : t) : string =
  let result = layout d in
  let svg = Svg.create () in
  List.iter
    (fun (s, t) ->
      let rs = (Layout.find_placed result s).Layout.rect in
      let rt = (Layout.find_placed result t).Layout.rect in
      let a = Geom.border_point rs (Geom.center rt) in
      let b = Geom.border_point rt (Geom.center rs) in
      Svg.polyline ~arrow:true svg [ a; b ])
    d.edges;
  List.iter
    (fun p ->
      let n = List.find (fun n -> n.id = p.Layout.node.Layout.id) d.nodes in
      let style =
        match n.kind with
        | `Relation ->
          { Svg.default_style with Svg.stroke = "#2b5f9e"; stroke_width = 1.5 }
        | `Operator -> Svg.default_style
      in
      Svg.rect ~style svg p.Layout.rect;
      Svg.text svg
        (Geom.pt (p.Layout.rect.Geom.rx +. 8.) (p.Layout.rect.Geom.ry +. 17.))
        n.label)
    result.Layout.nodes;
  let w, h = result.Layout.size in
  Svg.to_string ~width:w ~height:h svg

let to_ascii (d : t) : string =
  (* the operator tree already is the honest ASCII view *)
  let tree = Hashtbl.create 16 in
  List.iter
    (fun (child, parent) ->
      Hashtbl.replace tree parent
        ((try Hashtbl.find tree parent with Not_found -> []) @ [ child ]))
    d.edges;
  let label id = (List.find (fun n -> n.id = id) d.nodes).label in
  let buf = Buffer.create 256 in
  let rec go indent id =
    Buffer.add_string buf (indent ^ label id ^ "\n");
    List.iter (go (indent ^ "  ")) (try Hashtbl.find tree id with Not_found -> [])
  in
  go "" d.root;
  Buffer.contents buf
