(** A database: a catalog of named relations. *)

type t

exception Unknown_relation of string

val empty : t
val add : string -> Relation.t -> t -> t
val mem : string -> t -> bool

(** Raises {!Unknown_relation}. *)
val find : string -> t -> Relation.t

val find_opt : string -> t -> Relation.t option
val relation_names : t -> string list
val relations : t -> (string * Relation.t) list
val of_list : (string * Relation.t) list -> t
val schema_of : string -> t -> Schema.t

(** Union of all relations' active domains. *)
val active_domain : t -> Value.t list

val total_tuples : t -> int

(** Identity of the database contents — a hash over (relation name,
    {!Relation.stamp}, attribute names) triples.  Sound as a cache key:
    rebinding any name to a rebuilt or renamed relation changes it. *)
val stamp : t -> int

(** Apply per-relation insert/delete batches: [(name, inserts, deletes)].
    Returns the updated database and, per entry, [(name, new_relation,
    applied_inserts, applied_deletes)] with the applied deltas normalized
    as {!Relation.apply_delta} does.  Untouched relations keep their
    stamps and caches.  Raises {!Unknown_relation}. *)
val apply_delta :
  (string * Relation.t * Relation.t) list ->
  t ->
  t * (string * Relation.t * Relation.t * Relation.t) list

val pp : Format.formatter -> t -> unit
