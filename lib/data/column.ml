(** Typed, unboxed columns — the storage half of the columnar substrate.

    A column holds the values one attribute takes over a block of rows, in
    a representation chosen from the data itself (not the declared schema
    type, which may be [Tany]):

    - all-[Int] columns live in an int {!Bigarray} (no per-value boxing);
    - all-[Float] columns live in a float64 {!Bigarray};
    - all-[Bool] columns are bitsets (one bit per row);
    - all-[String] columns are dictionary-encoded: an int {!Bigarray} of
      codes plus a per-column {e sorted} dictionary, so code order equals
      string order and both equality {e and} range predicates on strings
      compile down to integer comparisons;
    - anything else (a [Null], or a column genuinely mixing value kinds,
      which the active-domain construction can produce) falls back to a
      boxed [Value.t array] with the exact row-at-a-time semantics.

    The selection kernels at the bottom are the vectorized inner loops the
    physical plan operators run: each fills a bit-per-row word bitmap for
    one comparison over a row range (63 rows per native-int word), and the
    caller combines bitmaps with {!wand}/{!wor}/{!wnot} — one machine op
    per 63 rows, no per-row closure dispatch on the typed fast paths.
    Counting is popcount-based ({!count_bits}) and {!sel_of_bits} converts
    a bitmap to a selection vector word-at-a-time, skipping all-zero words
    and unrolling all-one words.  Everything here is consistent with
    {!Value.compare}: within one
    column kind, the unboxed comparison order is exactly the boxed one, so
    sorting rows by columns reproduces {!Tuple.compare} order. *)

module T = Diagres_telemetry.Telemetry

(* Dictionary utilization, counted at the points where a *probe* value
   meets a dictionary: encoding a predicate constant, and translating one
   dictionary's codes into another's for a join.  hit = the value exists
   in the dictionary, miss = it does not (the probe can match nothing). *)
let c_dict_hit = T.counter "columnar.dict.hit"
let c_dict_miss = T.counter "columnar.dict.miss"

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type floats =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** A per-column string dictionary.  [values] is sorted ascending and
    duplicate-free, so codes compare like the strings they stand for. *)
type dict = { values : string array; code_of : (string, int) Hashtbl.t }

type t =
  | Ints of ints
  | Floats of floats
  | Bools of Bytes.t * int  (** bitset, row count *)
  | Codes of ints * dict    (** dictionary-encoded strings *)
  | Boxed of Value.t array  (** fallback: nulls or mixed kinds *)

let make_ints n : ints = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n
let make_floats n : floats =
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

(* ---------------- bitsets ---------------- *)

let bitset_make n = Bytes.make ((n + 7) lsr 3) '\000'

let bit_get b i =
  (Char.code (Bytes.unsafe_get b (i lsr 3)) lsr (i land 7)) land 1

let bit_set b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

(* ---------------- basics ---------------- *)

let length = function
  | Ints a -> Bigarray.Array1.dim a
  | Floats a -> Bigarray.Array1.dim a
  | Bools (_, n) -> n
  | Codes (a, _) -> Bigarray.Array1.dim a
  | Boxed a -> Array.length a

(** Decode one cell back to a boxed value. *)
let get col i =
  match col with
  | Ints a -> Value.Int a.{i}
  | Floats a -> Value.Float a.{i}
  | Bools (b, _) -> Value.Bool (bit_get b i = 1)
  | Codes (a, d) -> Value.String d.values.(a.{i})
  | Boxed a -> a.(i)

(* ---------------- dictionaries ---------------- *)

let dict_of_strings (strings : string array) : dict =
  let seen = Hashtbl.create 64 in
  Array.iter (fun s -> if not (Hashtbl.mem seen s) then Hashtbl.add seen s ()) strings;
  let values = Array.of_seq (Hashtbl.to_seq_keys seen) in
  Array.sort String.compare values;
  let code_of = Hashtbl.create (2 * Array.length values) in
  Array.iteri (fun c s -> Hashtbl.replace code_of s c) values;
  { values; code_of }

let dict_size (d : dict) = Array.length d.values

(** Code of [s] in [d], if present; counts the dictionary hit/miss
    telemetry (this is the probe point for predicate constants). *)
let dict_code (d : dict) s =
  match Hashtbl.find_opt d.code_of s with
  | Some c ->
    T.incr c_dict_hit;
    Some c
  | None ->
    T.incr c_dict_miss;
    None

(** Number of dictionary values strictly below [s] — the threshold that
    turns an ordered string comparison into an ordered code comparison. *)
let dict_rank (d : dict) s =
  let lo = ref 0 and hi = ref (Array.length d.values) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare d.values.(mid) s < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(** [translate ~from ~into]: per-code mapping of [from]'s codes into
    [into]'s code space, [-1] where the string is absent (it can then never
    compare equal to a real code, which is what the join build wants). *)
let translate ~(from : dict) ~(into : dict) : int array =
  Array.map
    (fun s -> match dict_code into s with Some c -> c | None -> -1)
    from.values

(* ---------------- construction ---------------- *)

(** Build the best representation for [vs].  The array is owned by the
    column afterwards (callers pass freshly built arrays). *)
let of_values (vs : Value.t array) : t =
  let n = Array.length vs in
  if n = 0 then Boxed [||]
  else begin
    let all p =
      let rec go i = i = n || (p vs.(i) && go (i + 1)) in
      go 0
    in
    match vs.(0) with
    | Value.Int _ when all (function Value.Int _ -> true | _ -> false) ->
      let a = make_ints n in
      Array.iteri
        (fun i v -> match v with Value.Int x -> a.{i} <- x | _ -> ())
        vs;
      Ints a
    | Value.Float _ when all (function Value.Float _ -> true | _ -> false) ->
      let a = make_floats n in
      Array.iteri
        (fun i v -> match v with Value.Float x -> a.{i} <- x | _ -> ())
        vs;
      Floats a
    | Value.Bool _ when all (function Value.Bool _ -> true | _ -> false) ->
      let b = bitset_make n in
      Array.iteri
        (fun i v -> match v with Value.Bool true -> bit_set b i | _ -> ())
        vs;
      Bools (b, n)
    | Value.String _ when all (function Value.String _ -> true | _ -> false) ->
      let strings =
        Array.map (function Value.String s -> s | _ -> assert false) vs
      in
      let d = dict_of_strings strings in
      let a = make_ints n in
      Array.iteri (fun i s -> a.{i} <- Hashtbl.find d.code_of s) strings;
      Codes (a, d)
    | _ -> Boxed vs
  end

(** [gather col idx]: the column restricted to the rows in [idx], in that
    order.  Keeps the representation (and shares the dictionary, which may
    then overstate the distinct count — {!distinct_count} recounts). *)
let gather col (idx : int array) : t =
  let n = Array.length idx in
  match col with
  | Ints a ->
    let out = make_ints n in
    for k = 0 to n - 1 do
      out.{k} <- a.{Array.unsafe_get idx k}
    done;
    Ints out
  | Floats a ->
    let out = make_floats n in
    for k = 0 to n - 1 do
      out.{k} <- a.{Array.unsafe_get idx k}
    done;
    Floats out
  | Bools (b, _) ->
    let out = bitset_make n in
    for k = 0 to n - 1 do
      if bit_get b (Array.unsafe_get idx k) = 1 then bit_set out k
    done;
    Bools (out, n)
  | Codes (a, d) ->
    let out = make_ints n in
    for k = 0 to n - 1 do
      out.{k} <- a.{Array.unsafe_get idx k}
    done;
    Codes (out, d)
  | Boxed a -> Boxed (Array.map (fun i -> a.(i)) idx)

(* ---------------- comparison ---------------- *)

(** Specialized two-row comparator within one column; agrees with
    {!Value.compare} on the decoded values (the dictionary is sorted, so
    code order is string order). *)
let row_compare col : int -> int -> int =
  match col with
  | Ints a -> fun i j -> Int.compare a.{i} a.{j}
  | Floats a -> fun i j -> Float.compare a.{i} a.{j}
  | Bools (b, _) -> fun i j -> Int.compare (bit_get b i) (bit_get b j)
  | Codes (a, _) -> fun i j -> Int.compare a.{i} a.{j}
  | Boxed a -> fun i j -> Value.compare a.(i) a.(j)

(** Compare cell [i] of [a] against cell [j] of [b], across columns; falls
    back to decoded {!Value.compare} when the representations differ. *)
let cell_compare a i b j =
  match (a, b) with
  | Ints x, Ints y -> Int.compare x.{i} y.{j}
  | Floats x, Floats y -> Float.compare x.{i} y.{j}
  | Bools (x, _), Bools (y, _) -> Int.compare (bit_get x i) (bit_get y j)
  | Codes (x, dx), Codes (y, dy) when dx == dy -> Int.compare x.{i} y.{j}
  | _ -> Value.compare (get a i) (get b j)

(** Cross-column two-row comparator factory: [cmp2 a b] compares row [i]
    of [a] against row [j] of [b], consistently with {!Value.compare} on
    the decoded cells.  Unlike {!cell_compare} the representation match —
    and any dictionary rank translation — happens once, outside the loop:
    this is the comparator the linear-merge set operations run, so two
    dictionary columns with different dictionaries still compare by two
    int reads per row pair (each right-hand value's rank in the left
    dictionary is precomputed). *)
let cmp2 a b : int -> int -> int =
  match (a, b) with
  | Ints x, Ints y -> fun i j -> Int.compare x.{i} y.{j}
  | Floats x, Floats y -> fun i j -> Float.compare x.{i} y.{j}
  | Bools (x, _), Bools (y, _) ->
    fun i j -> Int.compare (bit_get x i) (bit_get y j)
  | Codes (x, dx), Codes (y, dy) when dx == dy ->
    fun i j -> Int.compare x.{i} y.{j}
  | Codes (x, dx), Codes (y, dy) ->
    (* rank each of dy's values in dx once; [present] marks exact hits so
       equality is decided without touching a string in the loop *)
    let k = dict_size dy in
    let rank = Array.make k 0 and present = Bytes.make k '\000' in
    for c = 0 to k - 1 do
      let s = dy.values.(c) in
      rank.(c) <- dict_rank dx s;
      if Hashtbl.mem dx.code_of s then Bytes.set present c '\001'
    done;
    fun i j ->
      let c = y.{j} in
      let r = rank.(c) in
      if x.{i} < r then -1
      else if x.{i} = r && Bytes.get present c = '\001' then 0
      else 1
  | _ -> fun i j -> Value.compare (get a i) (get b j)

(** Union of two sorted dictionaries: the merged dictionary plus the
    translation of each input's codes into the merged code space. *)
let merge_dicts (da : dict) (db : dict) : dict * int array * int array =
  let na = Array.length da.values and nb = Array.length db.values in
  let merged = Array.make (na + nb) "" in
  let ta = Array.make na 0 and tb = Array.make nb 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na || !j < nb do
    let c =
      if !i = na then 1
      else if !j = nb then -1
      else String.compare da.values.(!i) db.values.(!j)
    in
    if c < 0 then begin
      merged.(!k) <- da.values.(!i);
      ta.(!i) <- !k;
      incr i
    end
    else if c > 0 then begin
      merged.(!k) <- db.values.(!j);
      tb.(!j) <- !k;
      incr j
    end
    else begin
      merged.(!k) <- da.values.(!i);
      ta.(!i) <- !k;
      tb.(!j) <- !k;
      incr i;
      incr j
    end;
    incr k
  done;
  let values = Array.sub merged 0 !k in
  let code_of = Hashtbl.create (2 * !k) in
  Array.iteri (fun c s -> Hashtbl.replace code_of s c) values;
  ({ values; code_of }, ta, tb)

(** [gather2 a b idx]: the column whose row [k] is row [v lsr 1] of [a]
    when [idx.(k)] is even, of [b] when odd — the gather behind the
    linear-merge set operations, whose outputs interleave rows of two
    batches.  Keeps the unboxed representation when both sides share one
    (differing dictionaries are merged, so string columns stay
    dictionary-encoded across updates); mixed representations decode to
    boxed values. *)
let gather2 a b (idx : int array) : t =
  let n = Array.length idx in
  match (a, b) with
  | Ints x, Ints y ->
    let out = make_ints n in
    for k = 0 to n - 1 do
      let v = Array.unsafe_get idx k in
      out.{k} <- (if v land 1 = 0 then x.{v lsr 1} else y.{v lsr 1})
    done;
    Ints out
  | Floats x, Floats y ->
    let out = make_floats n in
    for k = 0 to n - 1 do
      let v = Array.unsafe_get idx k in
      out.{k} <- (if v land 1 = 0 then x.{v lsr 1} else y.{v lsr 1})
    done;
    Floats out
  | Bools (x, _), Bools (y, _) ->
    let out = bitset_make n in
    for k = 0 to n - 1 do
      let v = Array.unsafe_get idx k in
      let bit =
        if v land 1 = 0 then bit_get x (v lsr 1) else bit_get y (v lsr 1)
      in
      if bit = 1 then bit_set out k
    done;
    Bools (out, n)
  | Codes (x, dx), Codes (y, dy) ->
    let d, ta, tb =
      if dx == dy then (dx, [||], [||]) else merge_dicts dx dy
    in
    let out = make_ints n in
    if dx == dy then
      for k = 0 to n - 1 do
        let v = Array.unsafe_get idx k in
        out.{k} <- (if v land 1 = 0 then x.{v lsr 1} else y.{v lsr 1})
      done
    else
      for k = 0 to n - 1 do
        let v = Array.unsafe_get idx k in
        out.{k} <-
          (if v land 1 = 0 then ta.(x.{v lsr 1}) else tb.(y.{v lsr 1}))
      done;
    Codes (out, d)
  | _ ->
    Boxed
      (Array.init n (fun k ->
           let v = idx.(k) in
           if v land 1 = 0 then get a (v lsr 1) else get b (v lsr 1)))

(** Sorted duplicate-free copy of the column, for the kinds whose unboxed
    representation is exact (ints, bools, dictionary codes): the O(n)
    single-column dedup behind wide projections, instead of a comparison
    sort of every row.  [None] for floats — [0.] and [-0.] are equal under
    {!Value.compare} but bit-distinct, so a bits-keyed dedup would keep
    both — and for boxed columns; those take the generic sort. *)
let distinct_sorted col : t option =
  match col with
  | Ints a ->
    let n = Bigarray.Array1.dim a in
    (* a single column projected out of a canonical batch is very often
       already sorted (it was the major sort key); one linear pass then
       beats the hashtable + sort by an order of magnitude at 10M+ rows *)
    let sorted =
      let rec go i =
        i >= n
        || Bigarray.Array1.unsafe_get a (i - 1) <= Bigarray.Array1.unsafe_get a i
           && go (i + 1)
      in
      n = 0 || go 1
    in
    if sorted then begin
      let m = ref (min n 1) in
      for i = 1 to n - 1 do
        if Bigarray.Array1.unsafe_get a i <> Bigarray.Array1.unsafe_get a (i - 1)
        then incr m
      done;
      let out = make_ints !m in
      if n > 0 then begin
        out.{0} <- a.{0};
        let j = ref 0 in
        for i = 1 to n - 1 do
          let v = Bigarray.Array1.unsafe_get a i in
          if v <> out.{!j} then begin
            incr j;
            out.{!j} <- v
          end
        done
      end;
      Some (Ints out)
    end
    else begin
      let seen = Hashtbl.create (min (max n 16) 1024) in
      for i = 0 to n - 1 do
        let v = Bigarray.Array1.unsafe_get a i in
        if not (Hashtbl.mem seen v) then Hashtbl.add seen v ()
      done;
      let vals = Array.make (Hashtbl.length seen) 0 in
      let j = ref 0 in
      Hashtbl.iter
        (fun v () ->
          vals.(!j) <- v;
          incr j)
        seen;
      Array.sort Int.compare vals;
      let out = make_ints (Array.length vals) in
      Array.iteri (fun i v -> out.{i} <- v) vals;
      Some (Ints out)
    end
  | Bools (b, n) ->
    let seen_t = ref false and seen_f = ref false in
    for i = 0 to n - 1 do
      if bit_get b i = 1 then seen_t := true else seen_f := true
    done;
    let m = (if !seen_f then 1 else 0) + if !seen_t then 1 else 0 in
    let out = bitset_make m in
    (* false sorts before true, so a set true bit is always the last row *)
    if !seen_t then bit_set out (m - 1);
    Some (Bools (out, m))
  | Codes (a, d) ->
    let k = dict_size d in
    let present = Bytes.make k '\000' in
    let n = Bigarray.Array1.dim a in
    for i = 0 to n - 1 do
      Bytes.unsafe_set present (Bigarray.Array1.unsafe_get a i) '\001'
    done;
    let cnt = ref 0 in
    Bytes.iter (fun c -> if c = '\001' then incr cnt) present;
    let out = make_ints !cnt in
    let j = ref 0 in
    for c = 0 to k - 1 do
      if Bytes.get present c = '\001' then begin
        out.{!j} <- c;
        incr j
      end
    done;
    Some (Codes (out, d))
  | Floats _ | Boxed _ -> None

(** Exact distinct-value count, straight off the unboxed representation:
    dictionary columns count present codes against the dictionary (no
    hashing of strings), bool columns scan the bitset, numeric columns use
    an unboxed-key hash set. *)
let distinct_count col =
  let n = length col in
  if n = 0 then 0
  else
    match col with
    | Ints a ->
      let seen = Hashtbl.create (min n 1024) in
      for i = 0 to n - 1 do
        let v = a.{i} in
        if not (Hashtbl.mem seen v) then Hashtbl.add seen v ()
      done;
      Hashtbl.length seen
    | Floats a ->
      (* key on the bit pattern so nan = nan (as Value.compare has it) *)
      let seen = Hashtbl.create (min n 1024) in
      for i = 0 to n - 1 do
        let v = Int64.bits_of_float a.{i} in
        if not (Hashtbl.mem seen v) then Hashtbl.add seen v ()
      done;
      Hashtbl.length seen
    | Bools (b, _) ->
      let seen_t = ref false and seen_f = ref false in
      for i = 0 to n - 1 do
        if bit_get b i = 1 then seen_t := true else seen_f := true
      done;
      (if !seen_t then 1 else 0) + if !seen_f then 1 else 0
    | Codes (a, d) ->
      let present = Bytes.make (dict_size d) '\000' in
      for i = 0 to n - 1 do
        Bytes.unsafe_set present a.{i} '\001'
      done;
      let c = ref 0 in
      Bytes.iter (fun b -> if b = '\001' then incr c) present;
      !c
    | Boxed a ->
      let module VH = Hashtbl.Make (struct
        type t = Value.t

        let equal = Value.equal
        let hash = Value.hash
      end) in
      let seen = VH.create (min n 1024) in
      Array.iter (fun v -> if not (VH.mem seen v) then VH.add seen v ()) a;
      VH.length seen

(* ---------------- vectorized selection kernels ---------------- *)

(** Comparison operators, mirroring [Fol.cmp] without depending on it. *)
type cmp = Clt | Cle | Ceq | Cneq | Cge | Cgt

(* ---- word bitmaps ----
   One bit per row, 63 rows per word: OCaml's native int carries 63 usable
   bits, and staying on plain ints keeps every combiner a single untagged
   machine op.  Invariant maintained by every writer here: bits at or
   beyond [len] in the last word are zero, so popcount and sel_of_bits
   never see phantom rows. *)

(** Rows per bitmap word (63: OCaml native ints are 63-bit). *)
let bits_per_word = 63

(** A word with all [bits_per_word] row bits set (as a two's-complement
    native int, that is [-1]). *)
let full_word = -1

type words = int array

(** Number of words a [len]-row bitmap occupies. *)
let words_for len = (len + bits_per_word - 1) / bits_per_word

(* mask selecting the low [m] bits, 0 <= m <= bits_per_word *)
let tail_mask m = if m >= bits_per_word then full_word else (1 lsl m) - 1

(** A bitmap filler: write the pass/fail bits for rows [lo + k],
    [0 <= k < len], into [dst] — bit [k mod 63] of word [k / 63], i.e.
    [dst] is a {e local} window whose bit 0 is row [lo].  [dst] has at
    least [words_for len] words and is owned by the caller; bits at or
    beyond [len] in the last word are left zero. *)
type filler = lo:int -> len:int -> words -> unit

(** Per-domain scratch pool for transient bitmap words and selection
    vectors.  The vectorized operators churn through one buffer per batch,
    and freshly mapped pages fault on first touch (measured in
    bench/main.ml), so steady-state batches must reuse memory.  A stack,
    not a single slot: nested connectives in one compiled predicate hold
    several buffers at once.  Buffers handed out here must never escape
    the callback — a deferred selection view keeps its bitmap alive, so
    that one allocates fresh. *)
module Scratch = struct
  let pool : int array list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  (** [with_ints n f]: run [f buf] with a pooled [int array] of at least
      [n] elements (contents unspecified); the buffer returns to this
      domain's pool when [f] finishes. *)
  let with_ints n f =
    let st = Domain.DLS.get pool in
    let buf =
      match !st with
      | b :: rest ->
        st := rest;
        if Array.length b >= n then b
        else Array.make (max n (2 * Array.length b)) 0
      | [] -> Array.make (max n 256) 0
    in
    Fun.protect ~finally:(fun () -> st := buf :: !st) (fun () -> f buf)

  (** Pooled word bitmap covering [len] rows (contents unspecified — every
      filler overwrites its whole window). *)
  let with_words ~len f = with_ints (words_for len) f
end

let fill_const b : filler =
 fun ~lo:_ ~len dst ->
  let nw = words_for len in
  if not b then Array.fill dst 0 nw 0
  else begin
    Array.fill dst 0 nw full_word;
    let m = len - ((nw - 1) * bits_per_word) in
    if nw > 0 then dst.(nw - 1) <- tail_mask m
  end

(** dst &= src over [nw] words. *)
let wand (dst : words) (src : words) nw =
  for w = 0 to nw - 1 do
    Array.unsafe_set dst w
      (Array.unsafe_get dst w land Array.unsafe_get src w)
  done

(** dst |= src over [nw] words. *)
let wor (dst : words) (src : words) nw =
  for w = 0 to nw - 1 do
    Array.unsafe_set dst w (Array.unsafe_get dst w lor Array.unsafe_get src w)
  done

(** dst = not dst over a [len]-row bitmap; the tail word is re-masked so
    phantom bits beyond [len] stay zero. *)
let wnot (dst : words) ~len =
  let nw = words_for len in
  for w = 0 to nw - 1 do
    Array.unsafe_set dst w (lnot (Array.unsafe_get dst w))
  done;
  if nw > 0 then begin
    let m = len - ((nw - 1) * bits_per_word) in
    dst.(nw - 1) <- dst.(nw - 1) land tail_mask m
  end

(** Set bits in one word.  SWAR over two 32-bit halves: the usual 64-bit
    magic constants overflow OCaml's 63-bit int literals. *)
let popcount x =
  let p32 v =
    let v = v - ((v lsr 1) land 0x55555555) in
    let v = (v land 0x33333333) + ((v lsr 2) land 0x33333333) in
    let v = (v + (v lsr 4)) land 0x0F0F0F0F in
    (* C truncates the multiply to 32 bits; OCaml ints do not, so mask
       before taking the top byte *)
    ((v * 0x01010101) land 0xFFFFFFFF) lsr 24
  in
  p32 (x land 0xFFFFFFFF) + p32 (x lsr 32)

(** Number of set bits in a [len]-row bitmap (relies on the phantom-bits-
    zero invariant). *)
let count_bits (bits : words) ~len =
  let nw = words_for len in
  let n = ref 0 in
  for w = 0 to nw - 1 do
    n := !n + popcount (Array.unsafe_get bits w)
  done;
  !n

(* Word-blocked driver: [word base m] returns the m-bit pass/fail bitmap
   for rows [base .. base + m - 1].  The per-word closure call amortizes
   over 63 rows, and each kernel's inner loop stays monomorphic with the
   comparison inlined. *)
let blocked (word : int -> int -> int) : filler =
 fun ~lo ~len dst ->
  let nw = words_for len in
  for w = 0 to nw - 1 do
    let base = lo + (w * bits_per_word) in
    let m = min bits_per_word (lo + len - base) in
    Array.unsafe_set dst w (word base m)
  done

(** Generic per-row fill from a predicate over absolute row indices — the
    fallback the vectorized filter uses for combinations with no typed
    kernel (boxed columns, cross-kind comparisons). *)
let fill_with (p : int -> bool) : filler =
  blocked (fun base m ->
      let acc = ref 0 in
      for b = 0 to m - 1 do
        if p (base + b) then acc := !acc lor (1 lsl b)
      done;
      !acc)

(* One tight word loop per operator: the match on [op] happens once,
   outside, so the loop body is a bigarray read, a compare, and an
   or-shift into the word accumulator — no branches on the result. *)
let fill_int_cmp (a : ints) op (c : int) : filler =
  let ( .%{} ) = Bigarray.Array1.unsafe_get in
  match op with
  | Clt ->
    blocked (fun base m ->
        let acc = ref 0 in
        for b = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + b} < c) lsl b)
        done;
        !acc)
  | Cle ->
    blocked (fun base m ->
        let acc = ref 0 in
        for b = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + b} <= c) lsl b)
        done;
        !acc)
  | Ceq ->
    blocked (fun base m ->
        let acc = ref 0 in
        for b = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + b} = c) lsl b)
        done;
        !acc)
  | Cneq ->
    blocked (fun base m ->
        let acc = ref 0 in
        for b = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + b} <> c) lsl b)
        done;
        !acc)
  | Cge ->
    blocked (fun base m ->
        let acc = ref 0 in
        for b = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + b} >= c) lsl b)
        done;
        !acc)
  | Cgt ->
    blocked (fun base m ->
        let acc = ref 0 in
        for b = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + b} > c) lsl b)
        done;
        !acc)

(* Float comparisons go through [Float.compare] (the total order, nan
   lowest and equal to itself) because that is what [Value.compare] — and
   therefore [Fol.cmp_eval] on non-null values — uses; native [<]/[=]
   would disagree on nan. *)
let fcmp op u v =
  let r = Float.compare u v in
  match op with
  | Clt -> r < 0
  | Cle -> r <= 0
  | Ceq -> r = 0
  | Cneq -> r <> 0
  | Cge -> r >= 0
  | Cgt -> r > 0

(* Float kernels: [Float.compare a c OP 0] is what Value.compare uses, but
   in a tight loop the allocation-free native comparisons are worth having.
   Native [<]/[<=]/[>]/[>=]/[=] agree with the total order except around
   nan, and [c] is a constant — so when [c] is not nan, the only rows the
   two disagree on are nan rows, which the total order puts below every
   real: nan < c, not (nan >= c), nan <> c.  Native comparisons return
   exactly that (false for every ordered test against nan) except for
   [Clt]/[Cle], which need the nan rows {e included}; those two instead
   test the negated opposite (not (a > c), not (a >= c)).  A nan constant
   keeps the Float.compare path. *)
let fill_float_cmp (a : floats) op (c : float) : filler =
  let ( .%{} ) = Bigarray.Array1.unsafe_get in
  if Float.is_nan c then
    blocked (fun base m ->
        let acc = ref 0 in
        for b = 0 to m - 1 do
          if fcmp op a.%{base + b} c then acc := !acc lor (1 lsl b)
        done;
        !acc)
  else
    match op with
    | Clt ->
      blocked (fun base m ->
          let acc = ref 0 in
          for b = 0 to m - 1 do
            acc := !acc lor (Bool.to_int (not (a.%{base + b} >= c)) lsl b)
          done;
          !acc)
    | Cle ->
      blocked (fun base m ->
          let acc = ref 0 in
          for b = 0 to m - 1 do
            acc := !acc lor (Bool.to_int (not (a.%{base + b} > c)) lsl b)
          done;
          !acc)
    | Ceq ->
      blocked (fun base m ->
          let acc = ref 0 in
          for b = 0 to m - 1 do
            acc := !acc lor (Bool.to_int (a.%{base + b} = c) lsl b)
          done;
          !acc)
    | Cneq ->
      blocked (fun base m ->
          let acc = ref 0 in
          for b = 0 to m - 1 do
            acc := !acc lor (Bool.to_int (not (a.%{base + b} = c)) lsl b)
          done;
          !acc)
    | Cge ->
      blocked (fun base m ->
          let acc = ref 0 in
          for b = 0 to m - 1 do
            acc := !acc lor (Bool.to_int (a.%{base + b} >= c) lsl b)
          done;
          !acc)
    | Cgt ->
      blocked (fun base m ->
          let acc = ref 0 in
          for b = 0 to m - 1 do
            acc := !acc lor (Bool.to_int (a.%{base + b} > c) lsl b)
          done;
          !acc)

let fill_int_cmp_cols (a : ints) op (b : ints) : filler =
  let ( .%{} ) = Bigarray.Array1.unsafe_get in
  match op with
  | Clt ->
    blocked (fun base m ->
        let acc = ref 0 in
        for k = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + k} < b.%{base + k}) lsl k)
        done;
        !acc)
  | Cle ->
    blocked (fun base m ->
        let acc = ref 0 in
        for k = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + k} <= b.%{base + k}) lsl k)
        done;
        !acc)
  | Ceq ->
    blocked (fun base m ->
        let acc = ref 0 in
        for k = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + k} = b.%{base + k}) lsl k)
        done;
        !acc)
  | Cneq ->
    blocked (fun base m ->
        let acc = ref 0 in
        for k = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + k} <> b.%{base + k}) lsl k)
        done;
        !acc)
  | Cge ->
    blocked (fun base m ->
        let acc = ref 0 in
        for k = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + k} >= b.%{base + k}) lsl k)
        done;
        !acc)
  | Cgt ->
    blocked (fun base m ->
        let acc = ref 0 in
        for k = 0 to m - 1 do
          acc := !acc lor (Bool.to_int (a.%{base + k} > b.%{base + k}) lsl k)
        done;
        !acc)

(* Ordered comparison against a code threshold: [rank] values sort below
   the constant, [present] says whether the constant itself is a code.
   col < s  <=>  code < rank;  col <= s  <=>  code < rank + (present?1:0). *)
let code_threshold op ~rank ~present : (cmp * int) option =
  let upper = rank + if present then 1 else 0 in
  match op with
  | Clt -> Some (Clt, rank)
  | Cle -> Some (Clt, upper)
  | Cge -> Some (Cge, rank)
  | Cgt -> Some (Cge, upper)
  | Ceq | Cneq -> None

(** Typed kernel for [col op const], if the combination supports one.
    The [Value] semantics are preserved exactly: dictionary order equals
    string order, int-vs-float compares numerically. *)
let fill_cmp_const op col (c : Value.t) : filler option =
  match (col, c) with
  | Ints a, Value.Int x -> Some (fill_int_cmp a op x)
  | Ints a, Value.Float x ->
    (* numeric cross-compare, as Value.compare does it *)
    Some (fill_with (fun i -> fcmp op (float_of_int a.{i}) x))
  | Floats a, Value.Float x -> Some (fill_float_cmp a op x)
  | Floats a, Value.Int x -> Some (fill_float_cmp a op (float_of_int x))
  | Codes (a, d), Value.String s -> (
    match op with
    | Ceq -> (
      match dict_code d s with
      | Some c -> Some (fill_int_cmp a Ceq c)
      | None -> Some (fill_const false))
    | Cneq -> (
      match dict_code d s with
      | Some c -> Some (fill_int_cmp a Cneq c)
      | None -> Some (fill_const true))
    | _ -> (
      let rank = dict_rank d s in
      let present = Hashtbl.mem d.code_of s in
      match code_threshold op ~rank ~present with
      | Some (op', thr) -> Some (fill_int_cmp a op' thr)
      | None -> None))
  | Bools (b, _), Value.Bool x ->
    let c = if x then 1 else 0 in
    Some
      (fill_with
         (fun i ->
           let v = bit_get b i in
           match op with
           | Clt -> v < c
           | Cle -> v <= c
           | Ceq -> v = c
           | Cneq -> v <> c
           | Cge -> v >= c
           | Cgt -> v > c))
  | _ -> None

(** Typed kernel for [col_a op col_b] (same row on both sides). *)
let fill_cmp_cols op a b : filler option =
  match (a, b) with
  | Ints x, Ints y -> Some (fill_int_cmp_cols x op y)
  | Floats x, Floats y -> Some (fill_with (fun i -> fcmp op x.{i} y.{i}))
  | Ints x, Floats y ->
    Some (fill_with (fun i -> fcmp op (float_of_int x.{i}) y.{i}))
  | Floats x, Ints y ->
    Some (fill_with (fun i -> fcmp op x.{i} (float_of_int y.{i})))
  | Codes (x, dx), Codes (y, dy) when dx == dy ->
    Some (fill_int_cmp_cols x op y)
  | Bools (x, _), Bools (y, _) ->
    Some
      (fill_with
         (fun i ->
           let u = bit_get x i and v = bit_get y i in
           match op with
           | Clt -> u < v
           | Cle -> u <= v
           | Ceq -> u = v
           | Cneq -> u <> v
           | Cge -> u >= v
           | Cgt -> u > v))
  | _ -> None

(** Selection vector of a bitmap: the absolute row indices (ascending,
    offset by [lo]) whose bit is set.  Word-skipping: all-zero words cost
    one compare per 63 rows, all-one words unroll to straight stores, and
    only mixed words pay the per-bit shift loop (which exits at the
    highest set bit). *)
let sel_of_bits (bits : words) ~lo ~len : int array =
  let n = count_bits bits ~len in
  let sel = Array.make n 0 in
  let nw = words_for len in
  let j = ref 0 in
  for w = 0 to nw - 1 do
    let word = Array.unsafe_get bits w in
    if word <> 0 then begin
      let base = lo + (w * bits_per_word) in
      if word = full_word then begin
        for b = 0 to bits_per_word - 1 do
          Array.unsafe_set sel (!j + b) (base + b)
        done;
        j := !j + bits_per_word
      end
      else begin
        let x = ref word and b = ref 0 in
        while !x <> 0 do
          if !x land 1 = 1 then begin
            Array.unsafe_set sel !j (base + !b);
            incr j
          end;
          x := !x lsr 1;
          incr b
        done
      end
    end
  done;
  sel

(* ---------------- unboxed join keys ---------------- *)

(** [join_codes l r]: when the two columns can serve as an equi-join key
    pair without boxing, [Some (probe, build)] where [probe i] is the int
    code of the left column's row [i] and [build j] the right column's row
    [j] {e in the left column's code space} (so plain int equality is
    value equality).  Dictionary pairs translate right codes into the left
    dictionary; absent strings map to [-1], which no probe code ever is.
    [None] when the pair needs boxed comparison (floats, mixed kinds). *)
let join_codes l r : ((int -> int) * (int -> int)) option =
  match (l, r) with
  | Ints a, Ints b -> Some ((fun i -> a.{i}), fun j -> b.{j})
  | Bools (a, _), Bools (b, _) ->
    Some ((fun i -> bit_get a i), fun j -> bit_get b j)
  | Codes (a, da), Codes (b, db) ->
    if da == db then Some ((fun i -> a.{i}), fun j -> b.{j})
    else begin
      let tr = translate ~from:db ~into:da in
      Some ((fun i -> a.{i}), fun j -> tr.(b.{j}))
    end
  | _ -> None

(* ---------------- memory accounting ---------------- *)

(* The [memory_bytes.*] gauge substrate: estimated physical bytes per
   column.  These are per-owner physical sizes, not a deduplicated heap
   census — a dictionary or Bigarray shared by several batches (zero-copy
   projection) is counted at every owner, which is the number the
   operators' working-set questions ("what does this relation cost to
   keep?") actually need. *)

let mem_word = 8

(* One bucket-array slot plus a four-word cons cell per entry; Hashtbl's
   real capacity is invisible from outside, so this is the steady-state
   load-factor estimate. *)
let mem_hashtbl_entry = 5 * mem_word

let mem_string s = (2 * mem_word) + (((String.length s / mem_word) + 1) * mem_word)

let dict_memory_bytes (d : dict) =
  Array.fold_left
    (fun acc s -> acc + mem_string s)
    (mem_word * (1 + Array.length d.values))
    d.values
  + (Hashtbl.length d.code_of * mem_hashtbl_entry)

(** Estimated physical bytes of the column: Bigarray payload for ints and
    floats, the bitset bytes for bools, codes plus dictionary storage for
    strings, boxed values for the fallback. *)
let memory_bytes = function
  | Ints a -> mem_word * Bigarray.Array1.dim a
  | Floats a -> mem_word * Bigarray.Array1.dim a
  | Bools (b, _) -> mem_word + Bytes.length b
  | Codes (a, d) -> (mem_word * Bigarray.Array1.dim a) + dict_memory_bytes d
  | Boxed a ->
    Array.fold_left
      (fun acc v -> acc + Value.memory_bytes v)
      (mem_word * (1 + Array.length a))
      a
