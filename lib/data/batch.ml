(** Fixed-width batches of columns — the unit the vectorized operators
    exchange.  A batch is [nrows] rows across [cols] columns (the explicit
    row count keeps nullary relations honest).  A batch is {e canonical}
    when its rows are sorted ascending by {!row_compare} and duplicate-free
    — exactly the order {!Tuple.compare} gives a relation's tuple set, so
    a canonical batch and the [Tset.t] it mirrors enumerate identically. *)

type t = { nrows : int; cols : Column.t array }

let nrows b = b.nrows
let ncols b = Array.length b.cols
let cols b = b.cols

(** Assemble a batch from columns (all of length [nrows]; a nullary batch
    passes an empty column array). *)
let make ~nrows cols : t = { nrows; cols }

let of_tuples ~arity (tups : Tuple.t array) : t =
  let n = Array.length tups in
  let cols =
    Array.init arity (fun c ->
        Column.of_values (Array.init n (fun i -> tups.(i).(c))))
  in
  { nrows = n; cols }

(** Decode row [i] back to a boxed tuple. *)
let tuple_at b i : Tuple.t =
  Array.map (fun col -> Column.get col i) b.cols

let iter f b =
  for i = 0 to b.nrows - 1 do
    f (tuple_at b i)
  done

let fold f acc b =
  let acc = ref acc in
  for i = 0 to b.nrows - 1 do
    acc := f !acc (tuple_at b i)
  done;
  !acc

let to_tuples b : Tuple.t array = Array.init b.nrows (tuple_at b)

(** Rows [idx] (in that order) of [b] — the gather behind selection
    vectors and join outputs. *)
let gather b (idx : int array) : t =
  { nrows = Array.length idx;
    cols = Array.map (fun c -> Column.gather c idx) b.cols }

(** Column subset [which] of [b], zero-copy — the late-materializing
    projection: dropped columns are never touched. *)
let columns b (which : int array) : t =
  { nrows = b.nrows; cols = Array.map (fun c -> b.cols.(c)) which }

(** Lexicographic row comparator, consistent with {!Tuple.compare} on the
    decoded rows. *)
let row_compare b : int -> int -> int =
  let cmps = Array.map Column.row_compare b.cols in
  fun i j ->
    let rec go c =
      if c = Array.length cmps then 0
      else
        let r = cmps.(c) i j in
        if r <> 0 then r else go (c + 1)
    in
    go 0

let is_canonical b =
  let cmp = row_compare b in
  let rec go i = i >= b.nrows || (cmp (i - 1) i < 0 && go (i + 1)) in
  b.nrows = 0 || go 1

(** Canonicalize: sort rows ascending, drop duplicates.  Already-canonical
    batches are returned as-is (one comparator pass, no copy). *)
let sort_dedup b : t =
  if b.nrows <= 1 && ncols b > 0 then b
  else if ncols b = 0 then { b with nrows = min b.nrows 1 }
  else
    match
      (* single exactly-represented column: O(n) dedup off the value/code
         domain instead of a comparison sort over every row *)
      if ncols b = 1 then Column.distinct_sorted b.cols.(0) else None
    with
    | Some c -> { nrows = Column.length c; cols = [| c |] }
    | None ->
      if is_canonical b then b
      else begin
        let idx = Array.init b.nrows (fun i -> i) in
        let cmp = row_compare b in
        Array.sort cmp idx;
        (* keep the first of each run of equal rows *)
        let keep = ref [] and kept = ref 0 in
        for k = b.nrows - 1 downto 0 do
          if k = 0 || cmp idx.(k - 1) idx.(k) <> 0 then begin
            keep := idx.(k) :: !keep;
            incr kept
          end
        done;
        let sel = Array.make !kept 0 in
        List.iteri (fun i v -> sel.(i) <- v) !keep;
        gather b sel
      end

(** Binary search of boxed tuple [tup] in a {e canonical} batch. *)
let mem b (tup : Tuple.t) : bool =
  let cmp_row i =
    (* compare row i against tup, column-wise *)
    let rec go c =
      if c = ncols b then 0
      else
        let r = Value.compare (Column.get b.cols.(c) i) tup.(c) in
        if r <> 0 then r else go (c + 1)
    in
    go 0
  in
  if ncols b = 0 then b.nrows > 0 && Array.length tup = 0
  else begin
    let lo = ref 0 and hi = ref (b.nrows - 1) and found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let r = cmp_row mid in
      if r = 0 then found := true
      else if r < 0 then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end
