(** Fixed-width batches of columns — the unit the vectorized operators
    exchange.  A batch is [nrows] rows across [cols] columns (the explicit
    row count keeps nullary relations honest).  A batch is {e canonical}
    when its rows are sorted ascending by {!row_compare} and duplicate-free
    — exactly the order {!Tuple.compare} gives a relation's tuple set, so
    a canonical batch and the [Tset.t] it mirrors enumerate identically. *)

type t = { nrows : int; cols : Column.t array }

let nrows b = b.nrows
let ncols b = Array.length b.cols
let cols b = b.cols

(** Assemble a batch from columns (all of length [nrows]; a nullary batch
    passes an empty column array). *)
let make ~nrows cols : t = { nrows; cols }

let of_tuples ~arity (tups : Tuple.t array) : t =
  let n = Array.length tups in
  let cols =
    Array.init arity (fun c ->
        Column.of_values (Array.init n (fun i -> tups.(i).(c))))
  in
  { nrows = n; cols }

(** Decode row [i] back to a boxed tuple. *)
let tuple_at b i : Tuple.t =
  Array.map (fun col -> Column.get col i) b.cols

let iter f b =
  for i = 0 to b.nrows - 1 do
    f (tuple_at b i)
  done

let fold f acc b =
  let acc = ref acc in
  for i = 0 to b.nrows - 1 do
    acc := f !acc (tuple_at b i)
  done;
  !acc

let to_tuples b : Tuple.t array = Array.init b.nrows (tuple_at b)

(** Rows [idx] (in that order) of [b] — the gather behind selection
    vectors and join outputs. *)
let gather b (idx : int array) : t =
  { nrows = Array.length idx;
    cols = Array.map (fun c -> Column.gather c idx) b.cols }

(** Rows of [b] whose bit is set in the word bitmap [bits] (covering all
    [nrows b] rows) — the materialization point of a deferred selection
    view.  The selection vector is built once word-skipping and shared
    across columns, then freed with the call. *)
let gather_bits b (bits : Column.words) : t =
  gather b (Column.sel_of_bits bits ~lo:0 ~len:b.nrows)

(** Column subset [which] of [b], zero-copy — the late-materializing
    projection: dropped columns are never touched. *)
let columns b (which : int array) : t =
  { nrows = b.nrows; cols = Array.map (fun c -> b.cols.(c)) which }

(** Lexicographic row comparator, consistent with {!Tuple.compare} on the
    decoded rows. *)
let row_compare b : int -> int -> int =
  let cmps = Array.map Column.row_compare b.cols in
  fun i j ->
    let rec go c =
      if c = Array.length cmps then 0
      else
        let r = cmps.(c) i j in
        if r <> 0 then r else go (c + 1)
    in
    go 0

let is_canonical b =
  let cmp = row_compare b in
  let rec go i = i >= b.nrows || (cmp (i - 1) i < 0 && go (i + 1)) in
  b.nrows = 0 || go 1

(** Canonicalize: sort rows ascending, drop duplicates.  Already-canonical
    batches are returned as-is (one comparator pass, no copy). *)
let sort_dedup b : t =
  if b.nrows <= 1 && ncols b > 0 then b
  else if ncols b = 0 then { b with nrows = min b.nrows 1 }
  else
    match
      (* single exactly-represented column: O(n) dedup off the value/code
         domain instead of a comparison sort over every row *)
      if ncols b = 1 then Column.distinct_sorted b.cols.(0) else None
    with
    | Some c -> { nrows = Column.length c; cols = [| c |] }
    | None ->
      if is_canonical b then b
      else begin
        let idx = Array.init b.nrows (fun i -> i) in
        let cmp = row_compare b in
        Array.sort cmp idx;
        (* keep the first of each run of equal rows *)
        let keep = ref [] and kept = ref 0 in
        for k = b.nrows - 1 downto 0 do
          if k = 0 || cmp idx.(k - 1) idx.(k) <> 0 then begin
            keep := idx.(k) :: !keep;
            incr kept
          end
        done;
        let sel = Array.make !kept 0 in
        List.iteri (fun i v -> sel.(i) <- v) !keep;
        gather b sel
      end

(* ---------------- linear-merge set operations ----------------

   Canonical batches enumerate their rows in [Tuple.compare] order, so the
   set operations are single linear merges — no hashing, no boxing, no
   sort.  All three require both inputs canonical and of equal arity (the
   callers check schema compatibility); outputs are canonical by
   construction.  The row comparator is built once per merge
   ({!Column.cmp2}), so differing string dictionaries cost a rank
   translation up front rather than a decode per comparison. *)

(** Row [i] of [a] vs row [j] of [b], lexicographically. *)
let cross_compare a b : int -> int -> int =
  let cmps =
    Array.init (ncols a) (fun c -> Column.cmp2 a.cols.(c) b.cols.(c))
  in
  let n = Array.length cmps in
  fun i j ->
    let rec go c =
      if c = n then 0
      else
        let r = cmps.(c) i j in
        if r <> 0 then r else go (c + 1)
    in
    go 0

(** a ∪ b.  Output rows interleave both inputs ({!Column.gather2}). *)
let merge_union a b : t =
  if ncols a = 0 then
    { nrows = (if a.nrows > 0 || b.nrows > 0 then 1 else 0); cols = [||] }
  else if a.nrows = 0 then b
  else if b.nrows = 0 then a
  else begin
    let cmp = cross_compare a b in
    let idx = Array.make (a.nrows + b.nrows) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < a.nrows && !j < b.nrows do
      let c = cmp !i !j in
      if c < 0 then begin
        idx.(!k) <- !i lsl 1;
        incr i
      end
      else if c > 0 then begin
        idx.(!k) <- (!j lsl 1) lor 1;
        incr j
      end
      else begin
        idx.(!k) <- !i lsl 1;
        incr i;
        incr j
      end;
      incr k
    done;
    while !i < a.nrows do
      idx.(!k) <- !i lsl 1;
      incr i;
      incr k
    done;
    while !j < b.nrows do
      idx.(!k) <- (!j lsl 1) lor 1;
      incr j;
      incr k
    done;
    let idx = if !k = Array.length idx then idx else Array.sub idx 0 !k in
    { nrows = Array.length idx;
      cols = Array.mapi (fun c ca -> Column.gather2 ca b.cols.(c) idx) a.cols }
  end

(* Intersection and difference both select a subsequence of [a]'s rows, so
   they share one merge loop and a plain gather. *)
let merge_select ~keep_match a b : t =
  if ncols a = 0 then
    let nrows =
      if keep_match then min a.nrows b.nrows
      else if b.nrows = 0 then a.nrows
      else 0
    in
    { nrows; cols = [||] }
  else if a.nrows = 0 || (b.nrows = 0 && keep_match) then
    gather a [||]
  else if b.nrows = 0 then a
  else begin
    let cmp = cross_compare a b in
    let sel = Array.make a.nrows 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < a.nrows && !j < b.nrows do
      let c = cmp !i !j in
      if c < 0 then begin
        if not keep_match then begin
          sel.(!k) <- !i;
          incr k
        end;
        incr i
      end
      else if c > 0 then incr j
      else begin
        if keep_match then begin
          sel.(!k) <- !i;
          incr k
        end;
        incr i;
        incr j
      end
    done;
    if not keep_match then
      while !i < a.nrows do
        sel.(!k) <- !i;
        incr k;
        incr i
      done;
    if !k = a.nrows then a else gather a (Array.sub sel 0 !k)
  end

(** a ∩ b. *)
let merge_inter a b : t = merge_select ~keep_match:true a b

(** a − b. *)
let merge_diff a b : t = merge_select ~keep_match:false a b

(** Binary search of boxed tuple [tup] in a {e canonical} batch. *)
let mem b (tup : Tuple.t) : bool =
  let cmp_row i =
    (* compare row i against tup, column-wise *)
    let rec go c =
      if c = ncols b then 0
      else
        let r = Value.compare (Column.get b.cols.(c) i) tup.(c) in
        if r <> 0 then r else go (c + 1)
    in
    go 0
  in
  if ncols b = 0 then b.nrows > 0 && Array.length tup = 0
  else begin
    let lo = ref 0 and hi = ref (b.nrows - 1) and found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let r = cmp_row mid in
      if r = 0 then found := true
      else if r < 0 then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

(** Estimated physical bytes of the batch's columns
    ({!Column.memory_bytes}); zero-copy column sharing between batches is
    counted at every owner. *)
let memory_bytes (b : t) =
  Array.fold_left (fun acc c -> acc + Column.memory_bytes c) 8 b.cols
