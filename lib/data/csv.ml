(** Minimal CSV reader/writer for loading relation instances from disk.

    Supports quoted fields with embedded commas and doubled quotes — enough
    for the example workloads; not a general RFC 4180 implementation. *)

exception Csv_error of string

let parse_line line =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let fields = ref [] in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
        flush ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then raise (Csv_error ("unterminated quote: " ^ line))
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

(* non-blank lines with their 1-based line number and byte offset in [s] *)
let numbered_lines s =
  let lines = String.split_on_char '\n' s in
  let off = ref 0 in
  List.mapi
    (fun i raw ->
      let start = !off in
      off := !off + String.length raw + 1;
      let line =
        if String.length raw > 0 && raw.[String.length raw - 1] = '\r' then
          String.sub raw 0 (String.length raw - 1)
        else raw
      in
      (i + 1, start, line))
    lines
  |> List.filter (fun (_, _, line) -> String.trim line <> "")

let parse_string s =
  List.map (fun (_, _, line) -> parse_line line) (numbered_lines s)

(** Read a relation whose first line is a header of attribute names; value
    types are inferred per column from the first data row.  Malformed input
    (no header, ragged rows, unterminated quotes) raises a located
    {!Diagres_diag.Diag.Error} naming the file and line. *)
let relation_of_string ?(name = "<csv>") s =
  let module Diag = Diagres_diag.Diag in
  let lines = numbered_lines s in
  let parse_at (lineno, start, line) =
    try (lineno, start, line, parse_line line)
    with Csv_error msg ->
      Diag.error ~code:"E-CSV-003" ~phase:Diag.Data ~src_name:name ~source:s
        ~span:{ Diag.start; stop = start + String.length line }
        "%s:%d: %s" name lineno msg
  in
  match lines with
  | [] ->
    Diag.error ~code:"E-CSV-001" ~phase:Diag.Data ~src_name:name
      "%s: empty CSV file (expected a header row of attribute names)" name
  | header_line :: rows ->
    let _, _, _, header = parse_at header_line in
    let arity = List.length header in
    let parsed =
      List.map
        (fun row_line ->
          let lineno, start, line, fields = parse_at row_line in
          if List.length fields <> arity then
            Diag.error ~code:"E-CSV-002" ~phase:Diag.Data ~src_name:name
              ~source:s
              ~span:{ Diag.start; stop = start + String.length line }
              "%s:%d: row has %d fields but the header declares %d \
               (offending row: %s)"
              name lineno (List.length fields) arity line;
          List.map Value.of_string fields)
        rows
    in
    let col_ty i =
      match parsed with
      | [] -> Value.Tstring
      | row :: _ -> (
        match List.nth_opt row i with
        | Some v -> Value.type_of v
        | None -> Value.Tstring)
    in
    let schema = List.mapi (fun i name -> Schema.attr ~ty:(col_ty i) name) header in
    Relation.of_lists schema parsed

let load_relation path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  relation_of_string ~name:(Filename.basename path) s

let escape_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let relation_to_string rel =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "," (Schema.names (Relation.schema rel)));
  Buffer.add_char buf '\n';
  Relation.iter
    (fun t ->
      Buffer.add_string buf
        (String.concat ","
           (List.map (fun v -> escape_field (Value.to_string v)) (Tuple.to_list t)));
      Buffer.add_char buf '\n')
    rel;
  Buffer.contents buf

let save_relation path rel =
  let oc = open_out path in
  output_string oc (relation_to_string rel);
  close_out oc

(** Load every [*.csv] in a directory as a database; relation names are the
    file basenames ([Sailor.csv] → [Sailor]). *)
let load_database dir : Database.t =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.fold_left
    (fun db entry ->
      if Filename.check_suffix entry ".csv" then
        Database.add
          (Filename.remove_extension entry)
          (load_relation (Filename.concat dir entry))
          db
      else db)
    Database.empty entries

(** Write every relation of a database as [<name>.csv] into [dir]. *)
let save_database dir (db : Database.t) =
  List.iter
    (fun (name, rel) ->
      save_relation (Filename.concat dir (name ^ ".csv")) rel)
    (Database.relations db)
