(** Tuples: immutable value arrays positionally aligned with a schema. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val arity : t -> int
val get : t -> int -> Value.t

(** Lexicographic order (shorter tuples first); total. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Value of attribute [name] under [schema]; raises {!Schema.Schema_error}
    on unknown names. *)
val field : Schema.t -> string -> t -> Value.t

val field_opt : Schema.t -> string -> t -> Value.t option

(** Keep the positions of [names], in the order given. *)
val project : Schema.t -> string list -> t -> t

val concat : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Estimated heap bytes of the tuple and its values. *)
val memory_bytes : t -> int
