(** Typed atomic values stored in relations.

    The value domain covers the tutorial's needs: integers, floats,
    strings, booleans, and SQL-style [Null].  Comparison semantics are
    two-valued throughout the library: any comparison involving [Null] is
    false (including [Null = Null]), which is the set-semantics
    simplification the tutorial works under. *)

type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Null

(** Static column types.  [Tany] is the top type, produced when set
    operations mix column types — which the calculus-level constructions
    (e.g. the active domain) legitimately do. *)
type ty = Tint | Tfloat | Tstring | Tbool | Tany

(** [ty_compatible a b] holds when values of the two static types may mix
    in one column: equal types, a numeric pair, or either being [Tany]. *)
val ty_compatible : ty -> ty -> bool

(** Least upper bound of two column types ([Tint ⊔ Tfloat = Tfloat],
    anything else mixed gives [Tany]). *)
val ty_join : ty -> ty -> ty

val type_of : t -> ty
val ty_name : ty -> string

(** Total order across all values (used by relation sets): [Null] < booleans
    < numbers < strings, numbers compared numerically so [Int 2 = Float 2.]. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** SQL-flavoured comparisons: false whenever either side is [Null]. *)

val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val eq : t -> t -> bool
val neq : t -> t -> bool

val hash : t -> int

(** Plain rendering ([NULL] for nulls, no quotes on strings). *)
val to_string : t -> string

(** Rendering as a literal inside query text: strings are single-quoted
    with quote doubling. *)
val to_literal : t -> string

val pp : Format.formatter -> t -> unit

(** Parse a CSV cell or literal into the most specific type; empty string
    and ["NULL"] give [Null]. *)
val of_string : string -> t

(** Arithmetic with numeric promotion; [None] on non-numeric operands (and
    division by zero for {!div}). *)

val add : t -> t -> t option
val sub : t -> t -> t option
val mul : t -> t -> t option
val div : t -> t -> t option

val to_float : t -> float option

(** Estimated heap bytes of the boxed representation (the
    [memory_bytes.*] gauge substrate). *)
val memory_bytes : t -> int
