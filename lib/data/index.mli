(** Secondary hash indexes on attribute-position subsets.

    Built lazily by {!Relation.matching} and cached per relation; a probe
    returns the tuples whose key columns equal the probe key under
    {!Value.equal}. *)

type t

(** Mutable per-relation store of built indexes, keyed by position list. *)
type cache

val fresh_cache : unit -> cache

(** Key of a tuple at the given positions. *)
val key : int array -> Tuple.t -> Value.t array

(** [build positions iter] indexes every tuple produced by [iter]. *)
val build : int array -> ((Tuple.t -> unit) -> unit) -> t

(** Tuples matching the key, in no particular order. *)
val lookup : t -> Value.t array -> Tuple.t list

(** Number of distinct keys. *)
val cardinal : t -> int

(**/**)

(* Exposed for Relation's internal cache management. *)
val cache_find : cache -> int list -> t option
val cache_add : cache -> int list -> t -> unit
