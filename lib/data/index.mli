(** Secondary hash indexes on attribute-position subsets.

    Built lazily by {!Relation.matching} and cached per relation; a probe
    returns the tuples whose key columns equal the probe key under
    {!Value.equal}.  The cache is stamped with its owning relation's
    identity and mutex-protected, so concurrent lazy builds from several
    domains are safe and a transplanted cache is refused instead of served
    stale. *)

type t

(** Mutable per-relation store of built indexes, keyed by position list. *)
type cache

(** A cache for the relation stamped [owner]. *)
val fresh_cache : owner:int -> cache

(** The stamp the cache was created for. *)
val cache_owner : cache -> int

(** Key of a tuple at the given positions. *)
val key : int array -> Tuple.t -> Value.t array

(** Hash of a probe key, consistent with the index's internal bucketing —
    the routing function of the partitioned parallel hash join. *)
val hash_key : Value.t array -> int

(** [build positions iter] indexes every tuple produced by [iter]. *)
val build : int array -> ((Tuple.t -> unit) -> unit) -> t

(** Tuples matching the key, in no particular order. *)
val lookup : t -> Value.t array -> Tuple.t list

(** Number of distinct keys. *)
val cardinal : t -> int

(** Unboxed row index: row numbers keyed by int-code key arrays — the build
    side of the vectorized hash join (key columns are ints, bools, or
    dictionary codes, so key equality is plain int equality). *)
type rows_index

(** [build_int_rows ~n key] indexes rows [0..n-1] under [key j]; per-key
    row lists come back in ascending row order. *)
val build_int_rows : n:int -> (int -> int array) -> rows_index

(** Row numbers whose key equals the probe, in ascending row order. *)
val lookup_int_rows : rows_index -> int array -> int list

(** Single-int-key variant: no key array allocated per row on either the
    build or the probe side.  Dense key ranges (row ids, dictionary codes)
    get a flat counting-sort CSR layout — O(1) boxing-free probes; sparse
    ranges fall back to a hashtable. *)
type rows_index1

val build_int1_rows : n:int -> (int -> int) -> rows_index1

(** Apply the function to each matching row, in ascending row order,
    without materializing a list. *)
val iter_int1_rows : rows_index1 -> int -> (int -> unit) -> unit

val lookup_int1_rows : rows_index1 -> int -> int list

(**/**)

(* Exposed for Relation's internal cache management: serve the cached index
   for the positions, building under the cache lock on a miss; bypass the
   cache entirely (build unmemoized) when [owner] does not match. *)
val cache_get : cache -> owner:int -> int list -> (unit -> t) -> t

(** Estimated heap bytes of one built index (buckets, keys, row-list
    cells; the indexed tuples belong to the relation and are not
    recounted). *)
val memory_bytes : t -> int

(** Estimated heap bytes of every index currently in the cache. *)
val cache_memory_bytes : cache -> int
