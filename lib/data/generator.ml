(** Deterministic pseudo-random database instances over the sailors schema.

    Used for differential testing (the same query in five languages must
    agree on random instances) and for the scaling benchmarks.  A simple
    splitmix-style PRNG keeps generation reproducible without depending on
    [Random] global state. *)

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (seed * 2654435769 + 1) }

let next r =
  (* splitmix64 step *)
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int r bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 1) (Int64.of_int bound))

let pick r xs = List.nth xs (int r (List.length xs))

let names =
  [ "Dustin"; "Brutus"; "Lubber"; "Andy"; "Rusty"; "Horatio"; "Zorba"; "Art";
    "Bob"; "Mia"; "Noor"; "Kai"; "Lena"; "Ravi"; "Sam" ]

let colors = [ "red"; "green"; "blue"; "white" ]
let boat_names = [ "Interlake"; "Clipper"; "Marine"; "Sunset"; "Pinta" ]

(** A random sailors database with [n_sailors] sailors, [n_boats] boats, and
    [n_reserves] reservations (duplicates collapse under set semantics). *)
let sailors_db ?(n_sailors = 20) ?(n_boats = 8) ?(n_reserves = 40) seed =
  let r = rng seed in
  let sailor_rows =
    List.init n_sailors (fun k ->
        [ Value.Int (k + 1); Value.String (pick r names);
          Value.Int (1 + int r 10);
          Value.Float (float_of_int (16 + int r 50)) ])
  in
  let boat_rows =
    List.init n_boats (fun k ->
        [ Value.Int (100 + k); Value.String (pick r boat_names);
          Value.String (pick r colors) ])
  in
  let reserve_rows =
    List.init n_reserves (fun _ ->
        [ Value.Int (1 + int r n_sailors); Value.Int (100 + int r n_boats);
          Value.String (Printf.sprintf "%d/%d" (1 + int r 12) (1 + int r 28)) ])
  in
  Database.of_list
    [ ("Sailor", Relation.of_lists Sample_db.sailor_schema sailor_rows);
      ("Boat", Relation.of_lists Sample_db.boat_schema boat_rows);
      ("Reserves", Relation.of_lists Sample_db.reserves_schema reserve_rows) ]

(** A family of instances of growing size for the scaling benches. *)
let scaling_instances sizes =
  List.map
    (fun n ->
      ( n,
        sailors_db ~n_sailors:n ~n_boats:(max 4 (n / 10))
          ~n_reserves:(n * 2) (n + 7) ))
    sizes

(** Random monadic-predicate structure over a small universe: used to test
    the set-diagram formalisms (Euler, Venn) against FOL semantics. *)
let monadic_db ?(universe = 8) ?(preds = [ "P"; "Q"; "R" ]) seed =
  let r = rng seed in
  let schema = Schema.make [ ("x", Value.Tint) ] in
  let rel _name =
    let rows =
      List.filter_map
        (fun k -> if int r 2 = 0 then Some [ Value.Int k ] else None)
        (List.init universe (fun i -> i))
    in
    Relation.of_lists schema rows
  in
  Database.of_list (List.map (fun p -> (p, rel p)) preds)

(* ---------------- update streams ---------------- *)

let sailor_row r ~sid_range =
  [ Value.Int (1 + int r sid_range); Value.String (pick r names);
    Value.Int (1 + int r 10); Value.Float (float_of_int (16 + int r 50)) ]

let boat_row r ~bid_range =
  [ Value.Int (100 + int r bid_range); Value.String (pick r boat_names);
    Value.String (pick r colors) ]

let reserves_row r ~sid_range ~bid_range =
  [ Value.Int (1 + int r sid_range); Value.Int (100 + int r bid_range);
    Value.String (Printf.sprintf "%d/%d" (1 + int r 12) (1 + int r 28)) ]

(** One insert/delete batch over [db]: for each named relation, about
    [frac] of the current rows are deleted (sampled from the current
    contents) and a like number of fresh rows inserted, drawn from the
    same distributions as {!sailors_db} so join selectivities stay
    realistic.  Advancing the same [r] across calls yields a reproducible
    update stream — the input of the view-maintenance differential tests
    and the update-stream bench. *)
let update_batch ?(relations = [ "Sailor"; "Boat"; "Reserves" ]) ~frac r
    (db : Database.t) : (string * Relation.t * Relation.t) list =
  let n_s = max 1 (Relation.cardinality (Database.find "Sailor" db)) in
  let n_b = max 1 (Relation.cardinality (Database.find "Boat" db)) in
  List.map
    (fun name ->
      let rel = Database.find name db in
      let schema = Relation.schema rel in
      let arr = Relation.tuples_array rel in
      let n = Array.length arr in
      let k = max 1 (int_of_float (frac *. float_of_int n)) in
      let deletes =
        if n = 0 then []
        else List.init k (fun _ -> Array.to_list arr.(int r n))
      in
      let inserts =
        List.init k (fun _ ->
            match name with
            | "Sailor" -> sailor_row r ~sid_range:n_s
            | "Boat" -> boat_row r ~bid_range:n_b
            | "Reserves" -> reserves_row r ~sid_range:n_s ~bid_range:n_b
            | _ -> invalid_arg ("Generator.update_batch: " ^ name))
      in
      (name, Relation.of_lists schema inserts, Relation.of_lists schema deletes))
    relations

(* ---------------- columnar-direct instances ---------------- *)

(** The {!sailors_db} shape built directly as canonical column batches —
    no boxed tuple set is ever materialized, which is what makes the
    10M-row scaling sweeps affordable.  Sailors and boats get ascending
    keys (so the rows are already in canonical order); the reservation
    (sid, bid) pairs are drawn distinct and sorted. *)
let sailors_db_columnar ?(n_sailors = 1_000_000) ?n_boats ?n_reserves seed =
  let n_boats =
    match n_boats with Some n -> n | None -> max 4 (n_sailors / 10)
  in
  let n_reserves =
    match n_reserves with Some n -> n | None -> n_sailors * 2
  in
  let r = rng seed in
  let sname_dict = Column.dict_of_strings (Array.of_list names) in
  let n_names = Column.dict_size sname_dict in
  let sid = Column.make_ints n_sailors in
  let sname = Column.make_ints n_sailors in
  let rating = Column.make_ints n_sailors in
  let age = Column.make_floats n_sailors in
  for i = 0 to n_sailors - 1 do
    sid.{i} <- i + 1;
    sname.{i} <- int r n_names;
    rating.{i} <- 1 + int r 10;
    age.{i} <- float_of_int (16 + int r 50)
  done;
  let sailor =
    Relation.of_batch ~canonical:true Sample_db.sailor_schema
      (Batch.make ~nrows:n_sailors
         [| Column.Ints sid; Column.Codes (sname, sname_dict);
            Column.Ints rating; Column.Floats age |])
  in
  let bname_dict = Column.dict_of_strings (Array.of_list boat_names) in
  let color_dict = Column.dict_of_strings (Array.of_list colors) in
  let bid = Column.make_ints n_boats in
  let bname = Column.make_ints n_boats in
  let color = Column.make_ints n_boats in
  for i = 0 to n_boats - 1 do
    bid.{i} <- 100 + i;
    bname.{i} <- int r (Column.dict_size bname_dict);
    color.{i} <- int r (Column.dict_size color_dict)
  done;
  let boat =
    Relation.of_batch ~canonical:true Sample_db.boat_schema
      (Batch.make ~nrows:n_boats
         [| Column.Ints bid; Column.Codes (bname, bname_dict);
            Column.Codes (color, color_dict) |])
  in
  let target = min n_reserves (n_sailors * n_boats) in
  let seen = Hashtbl.create (2 * target) in
  while Hashtbl.length seen < target do
    Hashtbl.replace seen (1 + int r n_sailors, 100 + int r n_boats) ()
  done;
  let pairs = Array.of_seq (Hashtbl.to_seq_keys seen) in
  Array.sort compare pairs;
  let m = Array.length pairs in
  let day_dict =
    Column.dict_of_strings
      (Array.init (12 * 28) (fun i ->
           Printf.sprintf "%d/%d" (1 + (i / 28)) (1 + (i mod 28))))
  in
  let rsid = Column.make_ints m in
  let rbid = Column.make_ints m in
  let day = Column.make_ints m in
  Array.iteri
    (fun i (s, b) ->
      rsid.{i} <- s;
      rbid.{i} <- b;
      day.{i} <- int r (Column.dict_size day_dict))
    pairs;
  let reserves =
    Relation.of_batch ~canonical:true Sample_db.reserves_schema
      (Batch.make ~nrows:m
         [| Column.Ints rsid; Column.Ints rbid;
            Column.Codes (day, day_dict) |])
  in
  Database.of_list
    [ ("Sailor", sailor); ("Boat", boat); ("Reserves", reserves) ]
