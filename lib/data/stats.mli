(** Per-relation statistics (cardinality + per-column distinct counts) for
    cost-based planning; computed lazily and cached per relation by
    {!Relation.stats}. *)

type t = {
  rows : int;  (** tuple count *)
  distinct : int array;
      (** [distinct.(i)] = number of distinct values in column [i] *)
}

(** Mutable per-relation slot, owned by {!Relation}; stamped with the
    owning relation's identity and mutex-protected (see {!Index.cache}). *)
type cache

val fresh_cache : owner:int -> cache
val cache_owner : cache -> int

(** Serve the cached record, computing under the lock on first use;
    computes unmemoized when [owner] does not match the cache's stamp. *)
val cache_get : cache -> owner:int -> (unit -> t) -> t

(** Statistics read straight off a column batch — cardinality from the row
    count, distinct counts from the unboxed columns (dictionaries count
    present codes; no boxed hashing). *)
val of_batch : Batch.t -> t

(** Distinct count of column [i], clamped to ≥ 1 so selectivity divisions
    are always safe. *)
val distinct_col : t -> int -> int

val to_string : t -> string

(** Estimated heap bytes of the cached record (0 when unfilled). *)
val cache_memory_bytes : cache -> int
