(** Per-relation statistics (cardinality + per-column distinct counts) for
    cost-based planning; computed lazily and cached per relation by
    {!Relation.stats}. *)

type t = {
  rows : int;  (** tuple count *)
  distinct : int array;
      (** [distinct.(i)] = number of distinct values in column [i] *)
}

(** Mutable per-relation slot, owned by {!Relation}. *)
type cache

val fresh_cache : unit -> cache
val cached : cache -> t option
val fill : cache -> t -> unit

(** Distinct count of column [i], clamped to ≥ 1 so selectivity divisions
    are always safe. *)
val distinct_col : t -> int -> int

val to_string : t -> string
