(** Per-relation statistics for cost-based planning.

    A statistics record holds the relation's cardinality and, per column,
    the number of distinct values — the two inputs the classic System-R
    selectivity formulas need (equality selects as [1/distinct], equi-joins
    as [|A|·|B| / max(dA, dB)]).  Records are computed lazily by
    {!Relation.stats} and cached on the relation alongside the secondary
    index cache: the per-column distinct counts come straight from
    {!Index.cardinal} of the cached single-column indexes, so a join that
    later probes the same column reuses the very same hash table. *)

module T = Diagres_telemetry.Telemetry

let c_hit = T.counter "stats.cache.hit"
let c_miss = T.counter "stats.cache.miss"
let c_bypass = T.counter "stats.cache.bypass"

type t = {
  rows : int;  (** tuple count *)
  distinct : int array;
      (** [distinct.(i)] = number of distinct values in column [i] *)
}

(** Mutable per-relation slot, owned by {!Relation}; filled on first use.
    Schema-only transformations (rename) may share it, since statistics are
    positional.  Like the index cache it is keyed on the owning relation's
    stamp — a slot copied onto a different tuple set is refused rather than
    served stale — and mutex-protected so concurrent first uses from
    several domains are safe. *)
type cache = { owner : int; mutex : Mutex.t; mutable slot : t option }

let fresh_cache ~owner : cache = { owner; mutex = Mutex.create (); slot = None }
let cache_owner (c : cache) = c.owner

(** [cache_get c ~owner compute]: the cached statistics, computing (under
    the cache lock) on first use; computed unmemoized if [owner] does not
    match the cache's stamp. *)
let cache_get (c : cache) ~owner (compute : unit -> t) : t =
  if c.owner <> owner then begin
    T.incr c_bypass;
    compute ()
  end
  else begin
    Mutex.lock c.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) @@ fun () ->
    match c.slot with
    | Some s ->
      T.incr c_hit;
      s
    | None ->
      T.incr c_miss;
      let s = compute () in
      c.slot <- Some s;
      s
  end

(** Statistics straight off a column batch: the distinct counts come from
    the unboxed representations ({!Column.distinct_count} — dictionary
    presence scans, bitset scans, unboxed-key hash sets), with no boxed
    values or secondary indexes involved. *)
let of_batch (b : Batch.t) : t =
  { rows = Batch.nrows b;
    distinct = Array.map Column.distinct_count (Batch.cols b) }

(** Distinct count of column [i], never below 1 (guards the selectivity
    divisions; an empty relation reports 1, not 0). *)
let distinct_col (s : t) i =
  if i < 0 || i >= Array.length s.distinct then 1 else max 1 s.distinct.(i)

let to_string (s : t) =
  Printf.sprintf "rows=%d distinct=[%s]" s.rows
    (String.concat "; " (Array.to_list (Array.map string_of_int s.distinct)))

(** Estimated heap bytes of the cached statistics record (0 when the slot
    is unfilled). *)
let cache_memory_bytes (c : cache) =
  Mutex.lock c.mutex;
  let n =
    match c.slot with
    | Some s -> 8 * (3 + Array.length s.distinct)
    | None -> 0
  in
  Mutex.unlock c.mutex;
  n
