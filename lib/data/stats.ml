(** Per-relation statistics for cost-based planning.

    A statistics record holds the relation's cardinality and, per column,
    the number of distinct values — the two inputs the classic System-R
    selectivity formulas need (equality selects as [1/distinct], equi-joins
    as [|A|·|B| / max(dA, dB)]).  Records are computed lazily by
    {!Relation.stats} and cached on the relation alongside the secondary
    index cache: the per-column distinct counts come straight from
    {!Index.cardinal} of the cached single-column indexes, so a join that
    later probes the same column reuses the very same hash table. *)

type t = {
  rows : int;  (** tuple count *)
  distinct : int array;
      (** [distinct.(i)] = number of distinct values in column [i] *)
}

(** Mutable per-relation slot, owned by {!Relation}; filled on first use.
    Schema-only transformations (rename) may share it, since statistics are
    positional. *)
type cache = t option ref

let fresh_cache () : cache = ref None
let cached (c : cache) = !c
let fill (c : cache) (s : t) = c := Some s

(** Distinct count of column [i], never below 1 (guards the selectivity
    divisions; an empty relation reports 1, not 0). *)
let distinct_col (s : t) i =
  if i < 0 || i >= Array.length s.distinct then 1 else max 1 s.distinct.(i)

let to_string (s : t) =
  Printf.sprintf "rows=%d distinct=[%s]" s.rows
    (String.concat "; " (Array.to_list (Array.map string_of_int s.distinct)))
