(** Typed atomic values stored in relations.

    The value domain follows the tutorial's sailors-reserves-boats setting:
    integers, floats, strings and booleans suffice for all catalog queries.
    [Null] is included so the SQL front-end can model missing values, but the
    calculus semantics in this library are two-valued: comparisons involving
    [Null] evaluate to [false] (the set-semantics simplification used
    throughout the tutorial). *)

type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Null

type ty = Tint | Tfloat | Tstring | Tbool | Tany

(** [ty_compatible a b] holds when values of the two static types may mix in
    one column: equal types, a numeric pair, or either being [Tany] (the top
    type produced by unions over heterogeneous columns, e.g. the active
    domain). *)
let ty_compatible a b =
  let numeric = function Tint | Tfloat -> true | _ -> false in
  a = b || a = Tany || b = Tany || (numeric a && numeric b)

(** Least upper bound of two column types. *)
let ty_join a b =
  if a = b then a
  else
    match (a, b) with
    | (Tint | Tfloat), (Tint | Tfloat) -> Tfloat
    | _ -> Tany

let type_of = function
  | Int _ -> Tint
  | Float _ -> Tfloat
  | String _ -> Tstring
  | Bool _ -> Tbool
  | Null -> Tstring (* nulls are untyped; string is the widest printable *)

let ty_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tbool -> "bool"
  | Tany -> "any"

(* A total order used by relation sets: Null < Bool < Int/Float < String,
   with Int and Float compared numerically so that [Int 2 = Float 2.]. *)
let compare a b =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ | Float _ -> 2
    | String _ -> 3
  in
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | String x, String y -> Stdlib.compare x y
  | x, y -> Stdlib.compare (rank x) (rank y)

let equal a b = compare a b = 0

(** SQL-style three-valuedness collapsed to two values: any comparison with
    [Null] is false, including [Null = Null]. *)
let cmp_known a b k =
  match (a, b) with Null, _ | _, Null -> false | _ -> k (compare a b)

let lt a b = cmp_known a b (fun c -> c < 0)
let le a b = cmp_known a b (fun c -> c <= 0)
let gt a b = cmp_known a b (fun c -> c > 0)
let ge a b = cmp_known a b (fun c -> c >= 0)
let eq a b = cmp_known a b (fun c -> c = 0)
let neq a b = cmp_known a b (fun c -> c <> 0)

let hash = function
  | Null -> 17
  | Bool b -> if b then 3 else 5
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s

let to_string = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else string_of_float f
  | String s -> s
  | Bool b -> string_of_bool b
  | Null -> "NULL"

(** Rendering as a literal inside a query text: strings are quoted. *)
let to_literal = function
  | String s -> Printf.sprintf "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | v -> to_string v

let pp ppf v = Fmt.string ppf (to_string v)

(** Parse a CSV cell or query literal into the most specific value type. *)
let of_string s =
  let s' = String.trim s in
  if s' = "" || String.uppercase_ascii s' = "NULL" then Null
  else
    match int_of_string_opt s' with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s' with
      | Some f -> Float f
      | None -> (
        match String.lowercase_ascii s' with
        | "true" -> Bool true
        | "false" -> Bool false
        | _ -> String s'))

(* Arithmetic promotes to float whenever either side is a float.  Used by the
   SQL front-end for computed select expressions. *)
let arith op_i op_f a b =
  match (a, b) with
  | Int x, Int y -> Some (Int (op_i x y))
  | Int x, Float y -> Some (Float (op_f (float_of_int x) y))
  | Float x, Int y -> Some (Float (op_f x (float_of_int y)))
  | Float x, Float y -> Some (Float (op_f x y))
  | _ -> None

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )

let div a b =
  match (a, b) with
  | _, Int 0 | _, Float 0. -> None
  | Int x, Int y -> Some (Int (x / y))
  | _ -> arith ( / ) ( /. ) a b

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

(** Estimated heap bytes of the boxed representation: one two-word
    constructor block for the immediate-payload cases ([Null] is an
    immediate, zero bytes), plus the string block for [String]. *)
let memory_bytes = function
  | Null -> 0
  | Bool _ | Int _ | Float _ -> 16
  | String s -> 16 + 8 + (((String.length s / 8) + 1) * 8)
