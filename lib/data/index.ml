(** Secondary hash indexes over tuple sets.

    An index maps the values a tuple takes at a fixed list of positions (the
    key columns) to the tuples carrying those values.  Relations build these
    lazily and cache them per position set ({!Relation.matching}), so a join
    or a Datalog atom match pays the build cost once and every subsequent
    probe is a hash lookup.  Keys hash with {!Value.hash}, which is
    consistent with {!Value.equal} (notably [Int 2] and [Float 2.] collide,
    as they must).

    The per-relation cache carries the {e stamp} of the relation it was
    created for and a mutex: lookups validate the owner (a cache that was
    copied onto a different tuple set is refused rather than served stale),
    and the lock makes the lazy build safe to race from several domains —
    the parallel operators probe indexes concurrently, and whichever domain
    gets there first builds while the others wait. *)

module T = Diagres_telemetry.Telemetry

(* Cache utilization, per cache_get (i.e. per join-side preparation, not
   per probe): hit = index served from the per-relation cache, miss =
   built and cached, bypass = built unmemoized because the cache belongs
   to a different tuple set. *)
let c_hit = T.counter "index.cache.hit"
let c_miss = T.counter "index.cache.miss"
let c_bypass = T.counter "index.cache.bypass"

module Vkey = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i =
      i = Array.length a || (Value.equal a.(i) b.(i) && go (i + 1))
    in
    go 0

  let hash k =
    Array.fold_left (fun acc v -> ((acc * 31) + Value.hash v) land max_int) 7 k
end

module H = Hashtbl.Make (Vkey)

type t = { positions : int array; table : Tuple.t list H.t }

(** Per-relation cache: one index per distinct key-column set, keyed on the
    owning relation's stamp and protected by a mutex. *)
type cache = {
  owner : int;  (** stamp of the relation this cache was created for *)
  mutex : Mutex.t;
  tbl : (int list, t) Hashtbl.t;
}

let fresh_cache ~owner : cache =
  { owner; mutex = Mutex.create (); tbl = Hashtbl.create 4 }

let cache_owner (c : cache) = c.owner

(** Key of [tup] at [positions]. *)
let key positions (tup : Tuple.t) = Array.map (Tuple.get tup) positions

(** Hash of a probe key — exposed so the partitioned parallel hash join can
    route keys to build partitions with the same function the index buckets
    hash with. *)
let hash_key (k : Value.t array) = Vkey.hash k

(** [build positions iter] indexes every tuple produced by [iter] on
    [positions]. *)
let build (positions : int array) (iter : (Tuple.t -> unit) -> unit) : t =
  let table = H.create 64 in
  iter (fun tup ->
      let k = key positions tup in
      match H.find_opt table k with
      | Some tups -> H.replace table k (tup :: tups)
      | None -> H.add table k [ tup ]);
  { positions; table }

(** Tuples whose key columns equal [k] (any order). *)
let lookup (ix : t) (k : Value.t array) : Tuple.t list =
  match H.find_opt ix.table k with Some tups -> tups | None -> []

(** Distinct keys in the index (used for statistics and tests). *)
let cardinal (ix : t) = H.length ix.table

(** [cache_get c ~owner positions build]: the cached index for [positions],
    building (under the cache lock) on first use.  If [owner] does not match
    the cache's stamp — a cache transplanted onto a rebuilt tuple set — the
    cache is bypassed and the index built unmemoized, so a stale entry can
    never be served. *)
let cache_get (c : cache) ~owner positions (build : unit -> t) : t =
  if c.owner <> owner then begin
    T.incr c_bypass;
    build ()
  end
  else begin
    Mutex.lock c.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) @@ fun () ->
    match Hashtbl.find_opt c.tbl positions with
    | Some ix ->
      T.incr c_hit;
      ix
    | None ->
      T.incr c_miss;
      let ix = build () in
      Hashtbl.add c.tbl positions ix;
      ix
  end
