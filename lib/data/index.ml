(** Secondary hash indexes over tuple sets.

    An index maps the values a tuple takes at a fixed list of positions (the
    key columns) to the tuples carrying those values.  Relations build these
    lazily and cache them per position set ({!Relation.matching}), so a join
    or a Datalog atom match pays the build cost once and every subsequent
    probe is a hash lookup.  Keys hash with {!Value.hash}, which is
    consistent with {!Value.equal} (notably [Int 2] and [Float 2.] collide,
    as they must).

    The per-relation cache carries the {e stamp} of the relation it was
    created for and a mutex: lookups validate the owner (a cache that was
    copied onto a different tuple set is refused rather than served stale),
    and the lock makes the lazy build safe to race from several domains —
    the parallel operators probe indexes concurrently, and whichever domain
    gets there first builds while the others wait. *)

module T = Diagres_telemetry.Telemetry

(* Cache utilization, per cache_get (i.e. per join-side preparation, not
   per probe): hit = index served from the per-relation cache, miss =
   built and cached, bypass = built unmemoized because the cache belongs
   to a different tuple set. *)
let c_hit = T.counter "index.cache.hit"
let c_miss = T.counter "index.cache.miss"
let c_bypass = T.counter "index.cache.bypass"

module Vkey = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i =
      i = Array.length a || (Value.equal a.(i) b.(i) && go (i + 1))
    in
    go 0

  let hash k =
    Array.fold_left (fun acc v -> ((acc * 31) + Value.hash v) land max_int) 7 k
end

module H = Hashtbl.Make (Vkey)

type t = { positions : int array; table : Tuple.t list H.t }

(** Per-relation cache: one index per distinct key-column set, keyed on the
    owning relation's stamp and protected by a mutex. *)
type cache = {
  owner : int;  (** stamp of the relation this cache was created for *)
  mutex : Mutex.t;
  tbl : (int list, t) Hashtbl.t;
}

let fresh_cache ~owner : cache =
  { owner; mutex = Mutex.create (); tbl = Hashtbl.create 4 }

let cache_owner (c : cache) = c.owner

(** Key of [tup] at [positions]. *)
let key positions (tup : Tuple.t) = Array.map (Tuple.get tup) positions

(** Hash of a probe key — exposed so the partitioned parallel hash join can
    route keys to build partitions with the same function the index buckets
    hash with. *)
let hash_key (k : Value.t array) = Vkey.hash k

(** [build positions iter] indexes every tuple produced by [iter] on
    [positions]. *)
let build (positions : int array) (iter : (Tuple.t -> unit) -> unit) : t =
  let table = H.create 64 in
  iter (fun tup ->
      let k = key positions tup in
      match H.find_opt table k with
      | Some tups -> H.replace table k (tup :: tups)
      | None -> H.add table k [ tup ]);
  { positions; table }

(** Tuples whose key columns equal [k] (any order). *)
let lookup (ix : t) (k : Value.t array) : Tuple.t list =
  match H.find_opt ix.table k with Some tups -> tups | None -> []

(** Distinct keys in the index (used for statistics and tests). *)
let cardinal (ix : t) = H.length ix.table

(* -------- unboxed int-key row indexes (vectorized hash join) -------- *)

module Ikey = struct
  type t = int array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i = Array.length a || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash k = Array.fold_left (fun acc v -> ((acc * 31) + v) land max_int) 7 k
end

module Itbl = Hashtbl.Make (Ikey)

type rows_index = int list Itbl.t

(** [build_int_rows ~n key] indexes row numbers [0..n-1] by their int-code
    key [key j] — the build side of the vectorized hash join, where key
    columns are unboxed int codes (ints, bools, dictionary codes) and the
    table never touches a boxed value. *)
let build_int_rows ~n (key : int -> int array) : rows_index =
  let tbl = Itbl.create (max 64 (n / 4)) in
  (* built high-to-low so each cons lands in front: per-key lists come out
     in ascending row order, which keeps a canonical-input join's output
     canonical (no re-sort on the other side) *)
  for j = n - 1 downto 0 do
    let k = key j in
    match Itbl.find_opt tbl k with
    | Some js -> Itbl.replace tbl k (j :: js)
    | None -> Itbl.add tbl k [ j ]
  done;
  tbl

(** Row numbers whose key equals [k], in ascending row order. *)
let lookup_int_rows (tbl : rows_index) (k : int array) : int list =
  match Itbl.find_opt tbl k with Some js -> js | None -> []

(** Single-column variant of {!build_int_rows}: the key is one unboxed
    int, so neither build nor probe allocates a key array per row. *)
module Itbl1 = Hashtbl.Make (Int)

(* When the build keys occupy a dense range (the common case: row ids,
   dictionary codes, generated surrogate keys) a counting-sort CSR layout
   replaces the hashtable: two flat int arrays, no per-row boxing, O(1)
   probes.  Sparse key spaces fall back to the hashtable. *)
type rows_index1 =
  | Csr1 of { base : int; starts : int array; rows : int array }
      (* rows for key k (k - base = c): rows.(starts.(c)) .. rows.(starts.(c+1) - 1),
         ascending row order by construction *)
  | Tbl1 of int list Itbl1.t

let build_int1_rows ~n (key : int -> int) : rows_index1 =
  let dense_range () =
    if n = 0 then None
    else begin
      let lo = ref (key 0) and hi = ref (key 0) in
      for j = 1 to n - 1 do
        let k = key j in
        if k < !lo then lo := k;
        if k > !hi then hi := k
      done;
      (* cap the counting array at ~2 entries per row so a sparse key space
         cannot blow memory up; the subtraction dodges overflow on huge keys *)
      if !hi - !lo < (2 * n) + 65536 then Some (!lo, !hi - !lo + 1) else None
    end
  in
  match dense_range () with
  | Some (base, range) ->
    let starts = Array.make (range + 1) 0 in
    for j = 0 to n - 1 do
      let c = key j - base in
      starts.(c + 1) <- starts.(c + 1) + 1
    done;
    for c = 1 to range do
      starts.(c) <- starts.(c) + starts.(c - 1)
    done;
    let next = Array.sub starts 0 range in
    let rows = Array.make n 0 in
    for j = 0 to n - 1 do
      let c = key j - base in
      rows.(next.(c)) <- j;
      next.(c) <- next.(c) + 1
    done;
    Csr1 { base; starts; rows }
  | None ->
    let tbl = Itbl1.create (max 64 (n / 4)) in
    for j = n - 1 downto 0 do
      let k = key j in
      match Itbl1.find_opt tbl k with
      | Some js -> Itbl1.replace tbl k (j :: js)
      | None -> Itbl1.add tbl k [ j ]
    done;
    Tbl1 tbl

(** Apply [f] to each row whose key equals [k], in ascending row order. *)
let iter_int1_rows (t : rows_index1) (k : int) (f : int -> unit) : unit =
  match t with
  | Csr1 { base; starts; rows } ->
    let c = k - base in
    if c >= 0 && c < Array.length starts - 1 then
      for x = Array.unsafe_get starts c to Array.unsafe_get starts (c + 1) - 1 do
        f (Array.unsafe_get rows x)
      done
  | Tbl1 tbl -> (
    match Itbl1.find_opt tbl k with Some js -> List.iter f js | None -> ())

(** Row numbers whose key equals [k], in ascending row order. *)
let lookup_int1_rows (t : rows_index1) (k : int) : int list =
  match t with
  | Csr1 _ ->
    let acc = ref [] in
    iter_int1_rows t k (fun j -> acc := j :: !acc);
    List.rev !acc
  | Tbl1 tbl -> (
    match Itbl1.find_opt tbl k with Some js -> js | None -> [])

(** [cache_get c ~owner positions build]: the cached index for [positions],
    building (under the cache lock) on first use.  If [owner] does not match
    the cache's stamp — a cache transplanted onto a rebuilt tuple set — the
    cache is bypassed and the index built unmemoized, so a stale entry can
    never be served. *)
let cache_get (c : cache) ~owner positions (build : unit -> t) : t =
  if c.owner <> owner then begin
    T.incr c_bypass;
    build ()
  end
  else begin
    Mutex.lock c.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) @@ fun () ->
    match Hashtbl.find_opt c.tbl positions with
    | Some ix ->
      T.incr c_hit;
      ix
    | None ->
      T.incr c_miss;
      let ix = build () in
      Hashtbl.add c.tbl positions ix;
      ix
  end

(* ---------------- memory accounting ---------------- *)

(** Estimated heap bytes of one built index: the bucket table, the boxed
    key arrays, and the per-tuple list cells.  The indexed tuples
    themselves belong to the relation and are not recounted. *)
let memory_bytes (ix : t) =
  let word = 8 in
  let entries = H.length ix.table in
  let payload =
    H.fold
      (fun k tups acc ->
        acc
        + (word * (1 + Array.length k))             (* the key array *)
        + Array.fold_left
            (fun a v -> a + Value.memory_bytes v) 0 k
        + (3 * word * List.length tups))            (* list cons cells *)
      ix.table 0
  in
  (word * Array.length ix.positions) + (5 * word * entries) + payload

(** Estimated heap bytes of every index currently cached. *)
let cache_memory_bytes (c : cache) =
  Mutex.lock c.mutex;
  let n = Hashtbl.fold (fun _ ix acc -> acc + memory_bytes ix) c.tbl 0 in
  Mutex.unlock c.mutex;
  n
