(** Secondary hash indexes over tuple sets.

    An index maps the values a tuple takes at a fixed list of positions (the
    key columns) to the tuples carrying those values.  Relations build these
    lazily and cache them per position set ({!Relation.matching}), so a join
    or a Datalog atom match pays the build cost once and every subsequent
    probe is a hash lookup.  Keys hash with {!Value.hash}, which is
    consistent with {!Value.equal} (notably [Int 2] and [Float 2.] collide,
    as they must). *)

module Vkey = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i =
      i = Array.length a || (Value.equal a.(i) b.(i) && go (i + 1))
    in
    go 0

  let hash k =
    Array.fold_left (fun acc v -> ((acc * 31) + Value.hash v) land max_int) 7 k
end

module H = Hashtbl.Make (Vkey)

type t = { positions : int array; table : Tuple.t list H.t }

(** Per-relation cache: one index per distinct key-column set. *)
type cache = (int list, t) Hashtbl.t

let fresh_cache () : cache = Hashtbl.create 4

(** Key of [tup] at [positions]. *)
let key positions (tup : Tuple.t) = Array.map (Tuple.get tup) positions

(** [build positions iter] indexes every tuple produced by [iter] on
    [positions]. *)
let build (positions : int array) (iter : (Tuple.t -> unit) -> unit) : t =
  let table = H.create 64 in
  iter (fun tup ->
      let k = key positions tup in
      match H.find_opt table k with
      | Some tups -> H.replace table k (tup :: tups)
      | None -> H.add table k [ tup ]);
  { positions; table }

(** Tuples whose key columns equal [k] (any order). *)
let lookup (ix : t) (k : Value.t array) : Tuple.t list =
  match H.find_opt ix.table k with Some tups -> tups | None -> []

(** Distinct keys in the index (used for statistics and tests). *)
let cardinal (ix : t) = H.length ix.table

let cache_find (c : cache) positions = Hashtbl.find_opt c positions
let cache_add (c : cache) positions ix = Hashtbl.replace c positions ix
