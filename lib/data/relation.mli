(** Set-semantics relations: a schema plus a set of tuples.

    All operations are purely functional.  This module is the substrate of
    every evaluator in the library (RA, calculus, Datalog); the higher-level
    RA operators live in [Diagres_ra], while the raw set/join/division
    machinery is here. *)

type t

val schema : t -> Schema.t

(** Monotone identity of the tuple set: every constructed relation gets a
    fresh stamp; schema-only transformations (rename) keep it, since the
    tuple set — and therefore the positional index/statistics caches — is
    unchanged.  {!Database.stamp} combines these into the database identity
    the plan cache keys on, so a rebuilt relation stored under an old name
    can never serve a stale plan, index, or statistics record. *)
val stamp : t -> int

val cardinality : t -> int
val is_empty : t -> bool

(** Tuples in sorted order. *)
val tuples : t -> Tuple.t list

(** Tuples in sorted order, as an array — what the morsel-parallel physical
    operators chunk over.  Memoized per relation (repeated probes in one
    evaluation share the materialization); callers must treat the array as
    read-only. *)
val tuples_array : t -> Tuple.t array

(** Build a relation from a column batch without boxing a tuple set.  The
    rows are canonicalized (sorted by [Tuple.compare] on the decoded rows,
    duplicates dropped) unless [canonical:true] asserts they already are —
    e.g. an order-preserving selection from a canonical batch.  Raises
    {!Schema.Schema_error} when the column count does not match the schema. *)
val of_batch : ?canonical:bool -> Schema.t -> Batch.t -> t

(** The columnar view of the relation, built lazily from the rows on first
    use and memoized.  Canonical: enumerates the tuple set in sorted
    order. *)
val batch : t -> Batch.t

(** The columnar view if it has already been materialized — never forces a
    conversion.  This is how the physical plan decides whether a vectorized
    operator applies. *)
val peek_batch : t -> Batch.t option

(** Late materialization: a relation may be born as a {e deferred
    selection} — a base batch plus a word bitmap of selected rows, with no
    gather performed.  Vectorized consumers read the bitmap or its
    selection vector directly; any other consumer forces the gather once
    (memoized, counted as [columnar.gathers_forced]). *)

(** [of_view ~count schema base bits]: the relation selecting the set bits
    of [bits] (whose popcount is [count]) from [base], deferred.
    [canonical] (default true) asserts the selected rows are sorted and
    duplicate-free in base order — pass [false] when duplicates are
    possible (e.g. after a column projection); those dedup at
    materialization.  The bitmap is owned by the view afterwards.  Raises
    {!Schema.Schema_error} when the column count does not match. *)
val of_view :
  ?canonical:bool -> count:int -> Schema.t -> Batch.t -> Column.words -> t

(** The pending deferred selection, if any: [(base, bits, canonical,
    count)].  [None] once a batch exists.  Read-only shared state; never
    forces anything. *)
val view_parts : t -> (Batch.t * Column.words * bool * int) option

(** For canonical pending views: the base batch and the memoized ascending
    selection vector (built on first use, under the relation lock). *)
val view_sel : t -> (Batch.t * int array) option

(** Whether the relation is columnar-born (materialized batch or pending
    view); never forces a conversion. *)
val is_columnar : t -> bool

val mem : Tuple.t -> t -> bool
val empty : Schema.t -> t

(** Add one tuple; raises {!Schema.Schema_error} on arity mismatch. *)
val add : Tuple.t -> t -> t

(** Build from tuples; checks schema well-formedness and tuple arities. *)
val of_tuples : Schema.t -> Tuple.t list -> t

(** Convenience constructor from value lists. *)
val of_lists : Schema.t -> Value.t list list -> t

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val filter : (Tuple.t -> bool) -> t -> t
val for_all : (Tuple.t -> bool) -> t -> bool
val exists : (Tuple.t -> bool) -> t -> bool

(** [map schema f r] rebuilds the relation under a new schema. *)
val map : Schema.t -> (Tuple.t -> Tuple.t) -> t -> t

(** Equality: compatible schemas and equal tuple sets. *)
val equal : t -> t -> bool

(** Same rows irrespective of attribute names — the cross-language result
    comparison used throughout the tests and benches. *)
val same_rows : t -> t -> bool

(** Set operations; raise {!Schema.Schema_error} on arity mismatch.  Union
    joins column types positionally (see {!Schema.join_types}). *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** [apply_delta ~inserts ~deletes r]: [r] with [deletes] removed and
    [inserts] added (inserts win on overlap).  Returns
    [(r', applied_inserts, applied_deletes)] with the applied deltas
    normalized against [r]: inserts genuinely new, deletes genuinely
    retracted, the two disjoint — the exact signed delta differential
    view maintenance propagates.  [r'] carries a fresh stamp (invalidating
    only this relation's caches); when the normalized delta is empty [r]
    itself is returned and its stamp and caches survive.  Columnar-backed
    relations are updated by linear canonical-batch merges and stay
    columnar; row-backed ones update the persistent set in O(|Δ| log n).
    Raises {!Schema.Schema_error} on arity mismatch. *)
val apply_delta : inserts:t -> deletes:t -> t -> t * t * t

(** π: projection (possibly nullary — the Boolean relation). *)
val project : string list -> t -> t

(** ρ: rename one attribute / all attributes. *)
val rename : string -> string -> t -> t

val rename_all : string list -> t -> t

(** ×: cartesian product; attribute sets must be disjoint. *)
val product : t -> t -> t

(** ⋈: natural join on the shared attribute names (hash-based). *)
val natural_join : t -> t -> t

(** ÷: relational division.  [division a b] returns the tuples [t] over
    [attrs a − attrs b] such that [{t} × b ⊆ a].  Note the classic caveat:
    with an empty divisor this returns {e all} candidate tuples of the
    dividend, which differs from ∀-style formulations quantifying over an
    outer relation. *)
val division : t -> t -> t

(** [matching r positions key]: the tuples of [r] whose values at
    [positions] equal [key] under {!Value.equal}, served from a lazily
    built, per-relation cached hash index ({!Index}).  An empty position
    list returns all tuples.  This is the probe primitive behind
    [natural_join], division, Datalog atom matching, and range-restricted
    calculus evaluation. *)
val matching : t -> int list -> Value.t array -> Tuple.t list

(** Build (and cache) the index on [positions] now, so that a following
    parallel probe phase races only on a read-only structure. *)
val prepare_index : t -> int list -> unit

(** Cardinality and per-column distinct counts ({!Stats}), computed lazily
    on first use and cached on the relation like its secondary indexes.
    Statistics are positional, so renamed views share the cache. *)
val stats : t -> Stats.t

(** All values appearing anywhere in the relation, deduplicated. *)
val active_domain : t -> Value.t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Estimated physical bytes of every materialized view of the tuple set
    (columnar batch, deferred-selection view, tuple set, sorted array) —
    the [memory_bytes.relations] gauge substrate. *)
val memory_bytes : t -> int

(** [(index_bytes, stats_bytes)] of the relation's stamp-owned caches. *)
val caches_memory_bytes : t -> int * int
