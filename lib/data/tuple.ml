(** Tuples are immutable value arrays positionally aligned with a schema. *)

type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let arity = Array.length
let get (t : t) i = t.(i)

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i = la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

(** Value of attribute [name] under [schema]. *)
let field schema name (t : t) = t.(Schema.index name schema)

let field_opt schema name (t : t) =
  Option.map (fun i -> t.(i)) (Schema.index_opt name schema)

(** Keep only the positions of [names] (in the order given). *)
let project schema names (t : t) =
  Array.of_list (List.map (fun n -> t.(Schema.index n schema)) names)

let concat (a : t) (b : t) = Array.append a b

let pp ppf (t : t) =
  Fmt.pf ppf "(%a)" (Fmt.array ~sep:(Fmt.any ", ") Value.pp) t

let to_string t = Fmt.str "%a" pp t

(** Estimated heap bytes of the tuple: its array block plus every value's
    boxed representation ({!Value.memory_bytes}). *)
let memory_bytes (t : t) =
  Array.fold_left
    (fun acc v -> acc + Value.memory_bytes v)
    (8 * (1 + Array.length t))
    t
