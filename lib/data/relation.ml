(** Set-semantics relations: a schema plus a sorted set of tuples.

    The tutorial works throughout with set semantics (RA, RC, and Datalog are
    all set-based); the SQL front-end inserts explicit duplicate elimination.
    Tuple sets are represented with [Stdlib.Set] over [Tuple.compare], which
    keeps all RA operators purely functional.

    Each relation additionally carries a mutable cache of secondary hash
    indexes ({!Index}) keyed by attribute-position subsets.  The cache is
    invisible to the functional interface — it only memoizes lookups — and is
    reset whenever an operation produces a new tuple set. *)

module Tset = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type t = {
  schema : Schema.t;
  tuples : Tset.t;
  stamp : int;  (** monotone identity of the tuple set; shared by renames *)
  indexes : Index.cache;
  stats : Stats.cache;
}

(* Monotone stamp source.  Every distinct tuple set gets a fresh stamp — so
   a rebuilt relation stored under an old name can never alias its
   predecessor's caches — while schema-only transformations (rename) keep
   the stamp: the tuple set is the same and the caches are positional.
   Atomic, because parallel operators construct relations from worker
   domains. *)
let stamp_counter = Atomic.make 0

(* The only constructor: every new tuple set gets a fresh stamp and fresh
   (empty) index/statistics caches keyed on it. *)
let make schema tuples =
  let stamp = Atomic.fetch_and_add stamp_counter 1 in
  { schema; tuples; stamp; indexes = Index.fresh_cache ~owner:stamp;
    stats = Stats.fresh_cache ~owner:stamp }

let schema r = r.schema
let stamp r = r.stamp
let cardinality r = Tset.cardinal r.tuples
let is_empty r = Tset.is_empty r.tuples
let tuples r = Tset.elements r.tuples

(** Tuples in sorted order, as an array — the input the morsel-parallel
    operators chunk over. *)
let tuples_array r =
  let n = Tset.cardinal r.tuples in
  if n = 0 then [||]
  else begin
    let arr = Array.make n (Tset.min_elt r.tuples) in
    let i = ref 0 in
    Tset.iter (fun t -> arr.(!i) <- t; incr i) r.tuples;
    arr
  end

let mem tup r = Tset.mem tup r.tuples

let empty schema = make schema Tset.empty

let check_tuple schema tup =
  if Tuple.arity tup <> Schema.arity schema then
    Schema.error "tuple %s does not match schema %s" (Tuple.to_string tup)
      (Schema.to_string schema)

let add tup r =
  check_tuple r.schema tup;
  make r.schema (Tset.add tup r.tuples)

let of_tuples schema tups =
  Schema.check_distinct schema;
  List.iter (check_tuple schema) tups;
  make schema (Tset.of_list tups)

(** Convenience constructor from value lists. *)
let of_lists schema rows = of_tuples schema (List.map Tuple.of_list rows)

let fold f r init = Tset.fold f r.tuples init
let iter f r = Tset.iter f r.tuples
let filter p r = make r.schema (Tset.filter p r.tuples)
let for_all p r = Tset.for_all p r.tuples
let exists p r = Tset.exists p r.tuples

let map schema f r =
  make schema
    (Tset.fold (fun t acc -> Tset.add (f t) acc) r.tuples Tset.empty)

let equal a b =
  Schema.compatible a.schema b.schema && Tset.equal a.tuples b.tuples

(** Same set of rows irrespective of attribute names — how we compare results
    across query languages that name columns differently. *)
let same_rows a b = Tset.equal a.tuples b.tuples

(* ---------------- secondary indexes ---------------- *)

(** The cached hash index of [r] on [positions]; built on first use, under
    the cache lock (concurrent probes from several domains are safe). *)
let index r (positions : int list) : Index.t =
  Index.cache_get r.indexes ~owner:r.stamp positions (fun () ->
      Index.build (Array.of_list positions) (fun f -> Tset.iter f r.tuples))

(** Force the index on [positions] to exist — called once before a parallel
    probe phase so the workers race on a read-only structure, never on the
    lazy build. *)
let prepare_index r positions = ignore (index r positions : Index.t)

(** [matching r positions key]: tuples whose values at [positions] equal
    [key] (under {!Value.equal}), via the lazily built cached index.  An
    empty position list returns all tuples. *)
let matching r (positions : int list) (key : Value.t array) : Tuple.t list =
  if positions = [] then tuples r else Index.lookup (index r positions) key

(** Cardinality and per-column distinct counts, computed on first use and
    cached like the indexes.  The distinct counts are read off cached
    single-column hash indexes, so a later equi-join on the same column
    reuses the build work. *)
let stats r : Stats.t =
  Stats.cache_get r.stats ~owner:r.stamp (fun () ->
      { Stats.rows = cardinality r;
        distinct =
          Array.init (Schema.arity r.schema) (fun i ->
              Index.cardinal (index r [ i ])) })

let require_compatible op a b =
  if not (Schema.compatible a.schema b.schema) then
    Schema.error "%s: incompatible schemas %s vs %s" op
      (Schema.to_string a.schema) (Schema.to_string b.schema)

let union a b =
  require_compatible "union" a b;
  make (Schema.join_types a.schema b.schema) (Tset.union a.tuples b.tuples)

let inter a b =
  require_compatible "intersect" a b;
  make a.schema (Tset.inter a.tuples b.tuples)

let diff a b =
  require_compatible "except" a b;
  make a.schema (Tset.diff a.tuples b.tuples)

let project names r =
  let schema = Schema.project names r.schema in
  let idx = Array.of_list (List.map (fun n -> Schema.index n r.schema) names) in
  let proj t = Array.map (Tuple.get t) idx in
  map schema proj r

let rename from_ to_ r = { r with schema = Schema.rename from_ to_ r.schema }

let rename_all names r =
  if List.length names <> Schema.arity r.schema then
    Schema.error "rename: expected %d names" (Schema.arity r.schema);
  let schema =
    List.map2 (fun (a : Schema.attribute) name -> { a with Schema.name }) r.schema names
  in
  Schema.check_distinct schema;
  { r with schema }

let product a b =
  let schema = Schema.concat_disjoint a.schema b.schema in
  let tuples =
    Tset.fold
      (fun ta acc ->
        Tset.fold (fun tb acc -> Tset.add (Tuple.concat ta tb) acc) b.tuples acc)
      a.tuples Tset.empty
  in
  make schema tuples

(** Natural join on the common attribute names.  Probes a cached hash index
    on [b]'s shared columns; key extraction works over precomputed integer
    position arrays, so no per-tuple schema lookups remain. *)
let natural_join a b =
  let shared = Schema.names (Schema.common a.schema b.schema) in
  if shared = [] then product a b
  else begin
    let ia = Array.of_list (List.map (fun n -> Schema.index n a.schema) shared) in
    let ib = List.map (fun n -> Schema.index n b.schema) shared in
    (* positions (and attributes) of b's non-shared columns *)
    let ib_rest =
      List.filter (fun i -> not (List.mem i ib))
        (List.init (Schema.arity b.schema) Fun.id)
    in
    let b_rest = List.map (fun i -> List.nth b.schema i) ib_rest in
    let schema = a.schema @ b_rest in
    let ib_rest = Array.of_list ib_rest in
    let ix = index b ib in
    let tuples =
      Tset.fold
        (fun ta acc ->
          List.fold_left
            (fun acc tb ->
              let extra = Array.map (Tuple.get tb) ib_rest in
              Tset.add (Array.append ta extra) acc)
            acc
            (Index.lookup ix (Index.key ia ta)))
        a.tuples Tset.empty
    in
    make schema tuples
  end

(** Relational division [a ÷ b]: tuples [t] over (attrs(a) − attrs(b)) such
    that for every tuple [u] in [b], [t ⋈ u ∈ a].  This is the operator the
    tutorial's Q3 ("sailors who reserved all red boats") revolves around. *)
let division a b =
  let b_names = Schema.names b.schema in
  List.iter
    (fun n ->
      if not (Schema.mem n a.schema) then
        Schema.error "division: attribute %S of divisor not in dividend" n)
    b_names;
  let keep =
    List.filter (fun n -> not (List.mem n b_names)) (Schema.names a.schema)
  in
  let candidates = project keep a in
  let required = tuples b in
  let ia = List.map (fun n -> Schema.index n a.schema) keep in
  let ja = Array.of_list (List.map (fun n -> Schema.index n a.schema) b_names) in
  let jb = Array.of_list (List.map (fun n -> Schema.index n b.schema) b_names) in
  (* index a by its [keep] part; each bucket holds the divisor-column values *)
  let ix = index a ia in
  filter
    (fun cand ->
      let have = List.map (Index.key ja) (Index.lookup ix cand) in
      List.for_all
        (fun u ->
          let uvals = Index.key jb u in
          List.exists
            (fun v ->
              let n = Array.length v in
              let rec eq i = i = n || (Value.equal v.(i) uvals.(i) && eq (i + 1)) in
              eq 0)
            have)
        required)
    candidates

(** All values appearing anywhere in the relation — the building block of the
    active domain used by calculus evaluation. *)
let active_domain r =
  fold (fun t acc -> Array.fold_left (fun acc v -> v :: acc) acc t) r []
  |> List.sort_uniq Value.compare

let pp ppf r =
  let hdr = String.concat " | " (Schema.names r.schema) in
  Fmt.pf ppf "%s@." hdr;
  Fmt.pf ppf "%s@." (String.make (String.length hdr) '-');
  iter
    (fun t ->
      Fmt.pf ppf "%s@."
        (String.concat " | " (List.map Value.to_string (Tuple.to_list t))))
    r

let to_string r = Fmt.str "%a" pp r
