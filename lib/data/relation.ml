(** Set-semantics relations: a schema plus a set of tuples, held as rows
    {e or} columns.

    The tutorial works throughout with set semantics (RA, RC, and Datalog are
    all set-based); the SQL front-end inserts explicit duplicate elimination.
    The logical value of a relation is a sorted, duplicate-free tuple set;
    physically it lives in one (or more) of three views of that same set,
    converted lazily and memoized:

    - [tset]: [Stdlib.Set] over [Tuple.compare] — the row-mode substrate all
      the functional operators run on;
    - [batch]: a {e canonical} {!Batch.t} (columns sorted in [Tuple.compare]
      order) — what the vectorized physical operators run on;
    - [arr]: the tuples as a sorted array — what the morsel-parallel row
      operators chunk over;
    - [view]: a {e deferred selection} — a base batch plus a word bitmap of
      selected rows ({!of_view}).  This is the late-materialization
      representation the vectorized filter/project emit: no gather has
      happened yet.  Downstream vectorized operators read the bitmap
      directly ({!view_parts}/{!view_sel}); any consumer that needs one of
      the other representations forces the gather exactly once, under the
      lock, and the result is memoized like every other conversion.

    Any view can be derived from any other, so a relation born columnar
    (from a vectorized operator, via {!of_batch}) never pays for boxing
    unless a row-mode consumer actually asks, and vice versa.  Every view
    enumerates rows in the same order, so cardinality, membership, and
    equality agree regardless of which views exist.

    Each relation additionally carries a mutable cache of secondary hash
    indexes ({!Index}) keyed by attribute-position subsets.  The cache is
    invisible to the functional interface — it only memoizes lookups — and is
    reset whenever an operation produces a new tuple set. *)

module Tset = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

module T = Diagres_telemetry.Telemetry

(* Late-materialization accounting: a gather is *deferred* when a
   vectorized operator hands its selection on as a view instead of
   materializing ([sel_rows] sums the rows carried that way), and *forced*
   when some consumer later needs the materialized batch after all.
   deferred − forced = gathers that never happened. *)
let c_gathers_deferred = T.counter "columnar.gathers_deferred"
let c_gathers_forced = T.counter "columnar.gathers_forced"
let c_sel_rows = T.counter "columnar.sel_rows"

(** A deferred selection: the rows of [vbase] whose bit is set in [vbits].
    [vbase]'s columns are already the relation's output columns (a
    projection view holds a zero-copy column subset as its base).
    [vcanonical] asserts the selected rows are sorted and duplicate-free
    in base order — true for a filter of a canonical batch, false once a
    projection may have introduced duplicates; non-canonical views pay a
    [sort_dedup] at materialization.  [vnsel] is the popcount of [vbits]
    (for non-canonical views an upper bound on the cardinality). *)
type view = {
  vbase : Batch.t;
  vbits : Column.words;
  vcanonical : bool;
  vnsel : int;
  mutable vsel : int array option;  (** memoized ascending selection vector *)
}

(* The shared row storage.  Fields only ever go [None] -> [Some] (under
   [lock]); the unlocked fast-path reads are safe because a published
   [Some] never changes and OCaml reads of a mutable field are atomic.
   Invariant: at least one of [tset]/[batch]/[view] is [Some] from
   construction. *)
type rows = {
  lock : Mutex.t;
  mutable tset : Tset.t option;
  mutable batch : Batch.t option;  (** canonical: sorted, duplicate-free *)
  mutable arr : Tuple.t array option;  (** sorted; treated as read-only *)
  mutable view : view option;  (** deferred selection, pending gather *)
}

type t = {
  schema : Schema.t;
  rows : rows;
  stamp : int;  (** monotone identity of the tuple set; shared by renames *)
  indexes : Index.cache;
  stats : Stats.cache;
}

(* Monotone stamp source.  Every distinct tuple set gets a fresh stamp — so
   a rebuilt relation stored under an old name can never alias its
   predecessor's caches — while schema-only transformations (rename) keep
   the stamp: the tuple set is the same and the caches are positional.
   Atomic, because parallel operators construct relations from worker
   domains. *)
let stamp_counter = Atomic.make 0

let fresh schema rows =
  let stamp = Atomic.fetch_and_add stamp_counter 1 in
  { schema; rows; stamp; indexes = Index.fresh_cache ~owner:stamp;
    stats = Stats.fresh_cache ~owner:stamp }

(* Row-mode constructor: every new tuple set gets a fresh stamp and fresh
   (empty) index/statistics caches keyed on it. *)
let make schema tuples =
  fresh schema
    { lock = Mutex.create (); tset = Some tuples; batch = None; arr = None;
      view = None }

(** Columnar constructor.  [canonical] asserts the batch is already sorted
    and duplicate-free (e.g. an order-preserving selection from a canonical
    batch); otherwise it is canonicalized here. *)
let of_batch ?(canonical = false) schema (b : Batch.t) =
  Schema.check_distinct schema;
  if Batch.ncols b <> Schema.arity schema then
    Schema.error "of_batch: %d columns do not match schema %s" (Batch.ncols b)
      (Schema.to_string schema);
  let b = if canonical then b else Batch.sort_dedup b in
  fresh schema
    { lock = Mutex.create (); tset = None; batch = Some b; arr = None;
      view = None }

(** Deferred-selection constructor: the relation whose rows are the set
    bits of [bits] over [base], with {e no} gather performed.  [count] is
    the popcount of [bits]; [canonical] as in {!type-view}.  The bitmap is
    owned by the view afterwards (callers pass freshly built words, never
    pooled scratch). *)
let of_view ?(canonical = true) ~count schema (base : Batch.t)
    (bits : Column.words) =
  Schema.check_distinct schema;
  if Batch.ncols base <> Schema.arity schema then
    Schema.error "of_view: %d columns do not match schema %s"
      (Batch.ncols base) (Schema.to_string schema);
  T.incr c_gathers_deferred;
  T.add c_sel_rows count;
  fresh schema
    { lock = Mutex.create (); tset = None; batch = None; arr = None;
      view = Some { vbase = base; vbits = bits; vcanonical = canonical;
                    vnsel = count; vsel = None } }

let schema r = r.schema
let stamp r = r.stamp

(* ---------------- lazy view conversion ---------------- *)

let with_lock rows f =
  Mutex.lock rows.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock rows.lock) f

let arr_of_tset ts =
  let n = Tset.cardinal ts in
  if n = 0 then [||]
  else begin
    let arr = Array.make n (Tset.min_elt ts) in
    let i = ref 0 in
    Tset.iter (fun t -> arr.(!i) <- t; incr i) ts;
    arr
  end

(* The [_locked] builders assume [rows.lock] is held; they may call each
   other but never re-take the lock. *)

(* selection vector of a pending view, memoized (lock held) *)
let sel_of_view v =
  match v.vsel with
  | Some s -> s
  | None ->
    let s = Column.sel_of_bits v.vbits ~lo:0 ~len:(Batch.nrows v.vbase) in
    v.vsel <- Some s;
    s

(* the deferred gather finally happens here — once per relation *)
let batch_of_view_locked rows v =
  match rows.batch with
  | Some b -> b
  | None ->
    T.incr c_gathers_forced;
    let g = Batch.gather v.vbase (sel_of_view v) in
    let b = if v.vcanonical then g else Batch.sort_dedup g in
    rows.batch <- Some b;
    b

let arr_locked rows =
  match rows.arr with
  | Some a -> a
  | None ->
    let a =
      match (rows.tset, rows.batch, rows.view) with
      | Some ts, _, _ -> arr_of_tset ts
      | None, Some b, _ -> Batch.to_tuples b
      | None, None, Some v when v.vcanonical ->
        (* decode rows straight through the selection vector — a row-mode
           consumer of a canonical view never pays for the column gather *)
        let sel = sel_of_view v in
        Array.init v.vnsel (fun i -> Batch.tuple_at v.vbase sel.(i))
      | None, None, Some v -> Batch.to_tuples (batch_of_view_locked rows v)
      | None, None, None -> assert false
    in
    rows.arr <- Some a;
    a

let tset_locked rows =
  match rows.tset with
  | Some ts -> ts
  | None ->
    (* the batch is canonical, so the array is sorted and duplicate-free *)
    let ts =
      Array.fold_left (fun acc t -> Tset.add t acc) Tset.empty (arr_locked rows)
    in
    rows.tset <- Some ts;
    ts

let batch_locked ~arity rows =
  match rows.batch with
  | Some b -> b
  | None -> (
    match rows.view with
    | Some v -> batch_of_view_locked rows v
    | None ->
      (* the array comes from the sorted set, so the batch is canonical *)
      let b = Batch.of_tuples ~arity (arr_locked rows) in
      rows.batch <- Some b;
      b)

let force_tset r =
  match r.rows.tset with
  | Some ts -> ts
  | None -> with_lock r.rows (fun () -> tset_locked r.rows)

(** Tuples in sorted order, as an array — the input the morsel-parallel
    operators chunk over.  Memoized per relation; callers must treat it as
    read-only. *)
let tuples_array r =
  match r.rows.arr with
  | Some a -> a
  | None -> with_lock r.rows (fun () -> arr_locked r.rows)

(** The columnar view, built (and memoized) from the rows on first use. *)
let batch r =
  match r.rows.batch with
  | Some b -> b
  | None ->
    with_lock r.rows (fun () ->
        batch_locked ~arity:(Schema.arity r.schema) r.rows)

(** The columnar view if it has already been materialized — the planner's
    cheap "is this input columnar?" probe; never forces a conversion. *)
let peek_batch r = r.rows.batch

(** Whether the relation is columnar-born: a materialized batch {e or} a
    pending deferred selection.  Never forces a conversion; this is what
    the row-fallback telemetry tests against. *)
let is_columnar r =
  Option.is_some r.rows.batch || Option.is_some r.rows.view

(** The pending deferred selection, if any: [(base, bits, canonical,
    count)].  [None] once the batch has been materialized (consumers then
    prefer the batch).  The bitmap is read-only shared state. *)
let view_parts r =
  match r.rows.batch with
  | Some _ -> None
  | None -> (
    match r.rows.view with
    | Some v -> Some (v.vbase, v.vbits, v.vcanonical, v.vnsel)
    | None -> None)

(** For {e canonical} pending views: the base batch plus the memoized
    ascending selection vector — what the vectorized hash join probes and
    builds through without gathering.  [None] for non-canonical views
    (those must materialize to dedup first) and for non-view relations. *)
let view_sel r =
  match (r.rows.batch, r.rows.view) with
  | None, Some v when v.vcanonical ->
    Some (v.vbase, with_lock r.rows (fun () -> sel_of_view v))
  | _ -> None

(* ---------------- cardinality, membership, traversal ---------------- *)

let cardinality r =
  match r.rows.tset with
  | Some ts -> Tset.cardinal ts
  | None -> (
    match r.rows.batch with
    | Some b -> Batch.nrows b
    | None -> (
      match r.rows.view with
      | Some v when v.vcanonical -> v.vnsel  (* no gather for a count *)
      | Some _ ->
        (* duplicates possible: only the dedup knows the exact count *)
        Batch.nrows (batch r)
      | None -> Tset.cardinal (force_tset r)))

let is_empty r = cardinality r = 0

let tuples r = Array.to_list (tuples_array r)

let mem tup r =
  match r.rows.tset with
  | Some ts -> Tset.mem tup ts
  | None -> (
    match r.rows.batch with
    | Some b -> Tuple.arity tup = Batch.ncols b && Batch.mem b tup
    | None ->
      if Option.is_some r.rows.view then
        let b = batch r in
        Tuple.arity tup = Batch.ncols b && Batch.mem b tup
      else Tset.mem tup (force_tset r))

let empty schema = make schema Tset.empty

let check_tuple schema tup =
  if Tuple.arity tup <> Schema.arity schema then
    Schema.error "tuple %s does not match schema %s" (Tuple.to_string tup)
      (Schema.to_string schema)

let add tup r =
  check_tuple r.schema tup;
  make r.schema (Tset.add tup (force_tset r))

let of_tuples schema tups =
  Schema.check_distinct schema;
  List.iter (check_tuple schema) tups;
  make schema (Tset.of_list tups)

(** Convenience constructor from value lists. *)
let of_lists schema rows = of_tuples schema (List.map Tuple.of_list rows)

(* Traversal runs off whichever view exists, in the same (sorted) order;
   a columnar-born relation is decoded row by row without ever building
   the set. *)
let iter f r =
  match r.rows.tset with
  | Some ts -> Tset.iter f ts
  | None -> (
    match r.rows.arr with
    | Some a -> Array.iter f a
    | None -> (
      match r.rows.batch with
      | Some b -> Batch.iter f b
      | None ->
        (* view-backed (or raced): the sorted array decodes through the
           selection without building the boxed set *)
        Array.iter f (tuples_array r)))

let fold f r init =
  match r.rows.tset with
  | Some ts -> Tset.fold f ts init
  | None ->
    let acc = ref init in
    iter (fun t -> acc := f t !acc) r;
    !acc

let filter p r = make r.schema (Tset.filter p (force_tset r))

let for_all p r =
  match r.rows.tset with
  | Some ts -> Tset.for_all p ts
  | None -> Array.for_all p (tuples_array r)

let exists p r =
  match r.rows.tset with
  | Some ts -> Tset.exists p ts
  | None -> Array.exists p (tuples_array r)

let map schema f r =
  make schema (fold (fun t acc -> Tset.add (f t) acc) r Tset.empty)

(* Both views enumerate in [Tuple.compare] order, so two relations hold the
   same rows iff their sorted arrays match pointwise — no set forcing. *)
let same_rows a b =
  cardinality a = cardinality b
  &&
  let xs = tuples_array a and ys = tuples_array b in
  let n = Array.length xs in
  let rec go i = i = n || (Tuple.compare xs.(i) ys.(i) = 0 && go (i + 1)) in
  go 0

let equal a b = Schema.compatible a.schema b.schema && same_rows a b

(* ---------------- secondary indexes ---------------- *)

(** The cached hash index of [r] on [positions]; built on first use, under
    the cache lock (concurrent probes from several domains are safe). *)
let index r (positions : int list) : Index.t =
  Index.cache_get r.indexes ~owner:r.stamp positions (fun () ->
      Index.build (Array.of_list positions) (fun f -> iter f r))

(** Force the index on [positions] to exist — called once before a parallel
    probe phase so the workers race on a read-only structure, never on the
    lazy build. *)
let prepare_index r positions = ignore (index r positions : Index.t)

(** [matching r positions key]: tuples whose values at [positions] equal
    [key] (under {!Value.equal}), via the lazily built cached index.  An
    empty position list returns all tuples. *)
let matching r (positions : int list) (key : Value.t array) : Tuple.t list =
  if positions = [] then tuples r else Index.lookup (index r positions) key

(** Cardinality and per-column distinct counts, computed on first use and
    cached like the indexes.  Columnar relations read distinct counts
    straight off the unboxed columns (dictionary presence scans, no
    hashing of boxed values); row relations read them off cached
    single-column hash indexes, so a later equi-join on the same column
    reuses the build work. *)
let stats r : Stats.t =
  Stats.cache_get r.stats ~owner:r.stamp (fun () ->
      match peek_batch r with
      | Some b -> Stats.of_batch b
      | None ->
        { Stats.rows = cardinality r;
          distinct =
            Array.init (Schema.arity r.schema) (fun i ->
                Index.cardinal (index r [ i ])) })

let require_compatible op a b =
  if not (Schema.compatible a.schema b.schema) then
    Schema.error "%s: incompatible schemas %s vs %s" op
      (Schema.to_string a.schema) (Schema.to_string b.schema)

let union a b =
  require_compatible "union" a b;
  make (Schema.join_types a.schema b.schema)
    (Tset.union (force_tset a) (force_tset b))

let inter a b =
  require_compatible "intersect" a b;
  make a.schema (Tset.inter (force_tset a) (force_tset b))

let diff a b =
  require_compatible "except" a b;
  make a.schema (Tset.diff (force_tset a) (force_tset b))

(** [apply_delta ~inserts ~deletes r]: [r] with [deletes] removed and
    [inserts] added.  Inserts win when a tuple appears in both.  Returns
    [(r', applied_inserts, applied_deletes)] where the applied deltas are
    normalized against [r] — applied inserts are genuinely new
    ([inserts − r]) and applied deletes genuinely retracted
    ([deletes ∩ r − inserts]) — which is the exact signed delta the
    differential evaluator propagates.  The updated relation gets a fresh
    monotone stamp (so its index/statistics caches and any plan-cache
    entry keyed through {!Database.stamp} are invalidated), except when
    the normalized delta is empty, in which case [r] itself is returned
    and every cache survives.  A columnar-backed relation is updated by
    linear batch merges and stays columnar — delta batches run through
    the vectorized kernels unchanged; a row-backed one updates its
    persistent set in O(|Δ| log n). *)
let apply_delta ~inserts ~deletes r =
  require_compatible "apply_delta" r inserts;
  require_compatible "apply_delta" r deletes;
  let ins = filter (fun t -> not (mem t r)) inserts in
  let del = filter (fun t -> mem t r && not (mem t inserts)) deletes in
  let r' =
    if is_empty ins && is_empty del then r
    else
      match r.rows.tset with
      | Some ts ->
        let ts = fold (fun t acc -> Tset.remove t acc) del ts in
        let ts = fold (fun t acc -> Tset.add t acc) ins ts in
        make r.schema ts
      | None ->
        let b = batch r in
        let b = Batch.merge_diff b (batch del) in
        let b = Batch.merge_union b (batch ins) in
        of_batch ~canonical:true r.schema b
  in
  (r', ins, del)

let project names r =
  let schema = Schema.project names r.schema in
  let idx = Array.of_list (List.map (fun n -> Schema.index n r.schema) names) in
  let proj t = Array.map (Tuple.get t) idx in
  map schema proj r

let rename from_ to_ r = { r with schema = Schema.rename from_ to_ r.schema }

let rename_all names r =
  if List.length names <> Schema.arity r.schema then
    Schema.error "rename: expected %d names" (Schema.arity r.schema);
  let schema =
    List.map2 (fun (a : Schema.attribute) name -> { a with Schema.name }) r.schema names
  in
  Schema.check_distinct schema;
  { r with schema }

let product a b =
  let schema = Schema.concat_disjoint a.schema b.schema in
  let tuples =
    fold
      (fun ta acc ->
        fold (fun tb acc -> Tset.add (Tuple.concat ta tb) acc) b acc)
      a Tset.empty
  in
  make schema tuples

(** Natural join on the common attribute names.  Probes a cached hash index
    on [b]'s shared columns; key extraction works over precomputed integer
    position arrays, so no per-tuple schema lookups remain. *)
let natural_join a b =
  let shared = Schema.names (Schema.common a.schema b.schema) in
  if shared = [] then product a b
  else begin
    let ia = Array.of_list (List.map (fun n -> Schema.index n a.schema) shared) in
    let ib = List.map (fun n -> Schema.index n b.schema) shared in
    (* positions (and attributes) of b's non-shared columns *)
    let ib_rest =
      List.filter (fun i -> not (List.mem i ib))
        (List.init (Schema.arity b.schema) Fun.id)
    in
    let b_rest = List.map (fun i -> List.nth b.schema i) ib_rest in
    let schema = a.schema @ b_rest in
    let ib_rest = Array.of_list ib_rest in
    let ix = index b ib in
    let tuples =
      fold
        (fun ta acc ->
          List.fold_left
            (fun acc tb ->
              let extra = Array.map (Tuple.get tb) ib_rest in
              Tset.add (Array.append ta extra) acc)
            acc
            (Index.lookup ix (Index.key ia ta)))
        a Tset.empty
    in
    make schema tuples
  end

(** Relational division [a ÷ b]: tuples [t] over (attrs(a) − attrs(b)) such
    that for every tuple [u] in [b], [t ⋈ u ∈ a].  This is the operator the
    tutorial's Q3 ("sailors who reserved all red boats") revolves around. *)
let division a b =
  let b_names = Schema.names b.schema in
  List.iter
    (fun n ->
      if not (Schema.mem n a.schema) then
        Schema.error "division: attribute %S of divisor not in dividend" n)
    b_names;
  let keep =
    List.filter (fun n -> not (List.mem n b_names)) (Schema.names a.schema)
  in
  let candidates = project keep a in
  let required = tuples b in
  let ia = List.map (fun n -> Schema.index n a.schema) keep in
  let ja = Array.of_list (List.map (fun n -> Schema.index n a.schema) b_names) in
  let jb = Array.of_list (List.map (fun n -> Schema.index n b.schema) b_names) in
  (* index a by its [keep] part; each bucket holds the divisor-column values *)
  let ix = index a ia in
  filter
    (fun cand ->
      let have = List.map (Index.key ja) (Index.lookup ix cand) in
      List.for_all
        (fun u ->
          let uvals = Index.key jb u in
          List.exists
            (fun v ->
              let n = Array.length v in
              let rec eq i = i = n || (Value.equal v.(i) uvals.(i) && eq (i + 1)) in
              eq 0)
            have)
        required)
    candidates

(** All values appearing anywhere in the relation — the building block of the
    active domain used by calculus evaluation. *)
let active_domain r =
  fold (fun t acc -> Array.fold_left (fun acc v -> v :: acc) acc t) r []
  |> List.sort_uniq Value.compare

let pp ppf r =
  let hdr = String.concat " | " (Schema.names r.schema) in
  Fmt.pf ppf "%s@." hdr;
  Fmt.pf ppf "%s@." (String.make (String.length hdr) '-');
  iter
    (fun t ->
      Fmt.pf ppf "%s@."
        (String.concat " | " (List.map Value.to_string (Tuple.to_list t))))
    r

let to_string r = Fmt.str "%a" pp r

(* ---------------- memory accounting ---------------- *)

(** Estimated physical bytes of every materialized view of the tuple set:
    the canonical batch, the deferred-selection view (base batch + word
    bitmap + memoized selection vector), the tuple-set nodes, and the
    sorted array.  The boxed tuple payload shared between [tset] and [arr]
    is counted once; the columnar batch is independent storage and counted
    in full.  This is what the [memory_bytes.relations] gauge sums. *)
let memory_bytes (r : t) =
  let word = 8 in
  let rows = r.rows in
  let tuple_payload =
    match (rows.tset, rows.arr) with
    | Some s, _ -> Tset.fold (fun t acc -> acc + Tuple.memory_bytes t) s 0
    | None, Some a ->
      Array.fold_left (fun acc t -> acc + Tuple.memory_bytes t) 0 a
    | None, None -> 0
  in
  let tset_nodes =
    (* a balanced-tree node per element: header, left, value, right, height *)
    match rows.tset with Some s -> 5 * word * Tset.cardinal s | None -> 0
  in
  let arr_bytes =
    match rows.arr with Some a -> word * (1 + Array.length a) | None -> 0
  in
  let batch_bytes =
    match rows.batch with Some b -> Batch.memory_bytes b | None -> 0
  in
  let view_bytes =
    match rows.view with
    | None -> 0
    | Some v ->
      Batch.memory_bytes v.vbase
      + (word * (1 + Array.length v.vbits))
      + (match v.vsel with
        | Some s -> word * (1 + Array.length s)
        | None -> 0)
  in
  tuple_payload + tset_nodes + arr_bytes + batch_bytes + view_bytes

(** Estimated heap bytes of the relation's cached secondary indexes and
    statistics (see {!Index.cache_memory_bytes}). *)
let caches_memory_bytes (r : t) =
  (Index.cache_memory_bytes r.indexes, Stats.cache_memory_bytes r.stats)
