(** A database is a catalog of named relations. *)

module Smap = Map.Make (String)

type t = Relation.t Smap.t

exception Unknown_relation of string

let empty : t = Smap.empty
let add name rel (db : t) : t = Smap.add name rel db
let mem name (db : t) = Smap.mem name db

let find name (db : t) =
  match Smap.find_opt name db with
  | Some r -> r
  | None -> raise (Unknown_relation name)

let find_opt name (db : t) = Smap.find_opt name db
let relation_names (db : t) = List.map fst (Smap.bindings db)
let relations (db : t) = Smap.bindings db

let of_list rels : t =
  List.fold_left (fun db (name, rel) -> add name rel db) empty rels

let schema_of name db = Relation.schema (find name db)

(** Union of all relations' active domains: the active domain of the database,
    over which safe calculus queries are evaluated. *)
let active_domain (db : t) =
  Smap.fold
    (fun _ rel acc -> List.rev_append (Relation.active_domain rel) acc)
    db []
  |> List.sort_uniq Value.compare

let total_tuples (db : t) =
  Smap.fold (fun _ rel n -> n + Relation.cardinality rel) db 0

(** Identity of the database contents: a hash over every relation's name,
    {!Relation.stamp}, and attribute names.  Two databases share a stamp
    only when every name is bound to the very same tuple set under the
    same schema — replacing or renaming any relation changes it, which is
    what makes it a sound cache key (the plan cache keys on it). *)
let stamp (db : t) : int =
  let mix acc n = ((acc * 1_000_003) + n) land max_int in
  Smap.fold
    (fun name rel acc ->
      let acc = mix acc (Hashtbl.hash name) in
      let acc = mix acc (Relation.stamp rel) in
      List.fold_left
        (fun acc (a : Schema.attribute) -> mix acc (Hashtbl.hash a.Schema.name))
        acc (Relation.schema rel))
    db 0

(** Apply per-relation insert/delete batches: [(name, inserts, deletes)].
    Returns the updated database plus, per entry, the new binding and the
    normalized applied deltas (see {!Relation.apply_delta}).  Only the
    named relations are rebound, so untouched relations keep their stamps
    — their index/statistics caches, and any plan-cache entry keyed
    through {!stamp}, are invalidated exactly where the data changed.
    Raises {!Unknown_relation} on an unknown name. *)
let apply_delta (updates : (string * Relation.t * Relation.t) list) (db : t) :
    t * (string * Relation.t * Relation.t * Relation.t) list =
  let db', applied =
    List.fold_left
      (fun (db, acc) (name, ins, del) ->
        let r = find name db in
        let r', ins', del' =
          Relation.apply_delta ~inserts:ins ~deletes:del r
        in
        (Smap.add name r' db, (name, r', ins', del') :: acc))
      (db, []) updates
  in
  (db', List.rev applied)

let pp ppf (db : t) =
  Smap.iter
    (fun name rel ->
      Fmt.pf ppf "=== %s%s ===@.%a@." name
        (Schema.to_string (Relation.schema rel))
        Relation.pp rel)
    db
