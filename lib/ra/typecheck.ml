(** Schema inference for RA expressions.

    Given the database schemas, computes the output schema of an expression
    or fails with a located, human-readable error.  This is the analysis the
    diagram generators rely on to label boxes and edges. *)

module D = Diagres_data

exception Type_error of string

let error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type env = (string * D.Schema.t) list

let env_of_database db =
  List.map (fun (n, r) -> (n, D.Relation.schema r)) (D.Database.relations db)

let operand_ty schema = function
  | Ast.Const v -> Some (D.Value.type_of v)
  | Ast.Attr a -> (
    match D.Schema.find_opt a schema with
    | Some at -> Some at.D.Schema.ty
    | None ->
      error "unknown attribute %S in predicate (schema: %s)" a
        (D.Schema.to_string schema))

let rec check_pred schema = function
  | Ast.Cmp (_, a, b) ->
    (* Both operands must resolve.  Comparisons themselves are dynamically
       typed: [Value.compare] is total, and cross-type comparisons (which
       arise when selections distribute over the heterogeneous active-domain
       union) simply evaluate to false. *)
    ignore (operand_ty schema a : D.Value.ty option);
    ignore (operand_ty schema b : D.Value.ty option)
  | Ast.And (a, b) | Ast.Or (a, b) ->
    check_pred schema a;
    check_pred schema b
  | Ast.Not p -> check_pred schema p
  | Ast.Ptrue -> ()

let rec infer (env : env) (e : Ast.t) : D.Schema.t =
  match e with
  | Ast.Rel r -> (
    match List.assoc_opt r env with
    | Some s -> s
    | None -> error "unknown relation %S" r)
  | Ast.Empty e -> infer env e
  | Ast.Select (p, e) ->
    let s = infer env e in
    check_pred s p;
    s
  | Ast.Project (attrs, e) ->
    (* [attrs = []] yields the nullary relation (a Boolean: empty, or the
       empty tuple) — needed as target of Boolean calculus queries *)
    let s = infer env e in
    let out = D.Schema.project attrs s in
    D.Schema.check_distinct out;
    out
  | Ast.Rename (pairs, e) ->
    let s = infer env e in
    (* simultaneous renaming: resolve all sources against the input schema *)
    let renamed =
      List.map
        (fun (a : D.Schema.attribute) ->
          match List.assoc_opt a.D.Schema.name pairs with
          | Some fresh -> { a with D.Schema.name = fresh }
          | None -> a)
        s
    in
    List.iter
      (fun (old, _) ->
        if not (D.Schema.mem old s) then
          error "rename source %S not in schema %s" old (D.Schema.to_string s))
      pairs;
    D.Schema.check_distinct renamed;
    renamed
  | Ast.Product (a, b) ->
    D.Schema.concat_disjoint (infer env a) (infer env b)
  | Ast.Join (a, b) ->
    let sa = infer env a and sb = infer env b in
    let shared = D.Schema.names (D.Schema.common sa sb) in
    sa @ List.filter (fun (x : D.Schema.attribute) -> not (List.mem x.D.Schema.name shared)) sb
  | Ast.Theta_join (p, a, b) ->
    let s = D.Schema.concat_disjoint (infer env a) (infer env b) in
    check_pred s p;
    s
  | Ast.Union (a, b) | Ast.Inter (a, b) | Ast.Diff (a, b) ->
    let sa = infer env a and sb = infer env b in
    if not (D.Schema.compatible sa sb) then
      error "set operation on incompatible schemas %s vs %s"
        (D.Schema.to_string sa) (D.Schema.to_string sb);
    D.Schema.join_types sa sb
  | Ast.Division (a, b) ->
    let sa = infer env a and sb = infer env b in
    List.iter
      (fun n ->
        if not (D.Schema.mem n sa) then
          error "division: divisor attribute %S not in dividend" n)
      (D.Schema.names sb);
    let keep =
      List.filter
        (fun (x : D.Schema.attribute) -> not (D.Schema.mem x.D.Schema.name sb))
        sa
    in
    if keep = [] then error "division result would have empty schema";
    keep

(* Re-raise schema-level failures (unknown attributes, duplicate names, …)
   as type errors so callers see one exception type. *)
let infer env e =
  try infer env e
  with D.Schema.Schema_error msg -> raise (Type_error msg)

let infer_db db e = infer (env_of_database db) e

(** [check env e] is [infer] that reports success as a boolean. *)
let well_typed env e =
  match infer env e with _ -> true | exception Type_error _ -> false
