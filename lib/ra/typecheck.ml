(** Schema inference for RA expressions.

    Given the database schemas, computes the output schema of an expression
    or fails with a located, human-readable error.  This is the analysis the
    diagram generators rely on to label boxes and edges.

    Failures raise {!Diagres_diag.Diag.Error} with codes in the
    [E-RA-TYPE-xxx] family; {!Type_error} is the same exception under its
    historical name. *)

module D = Diagres_data
module Diag = Diagres_diag.Diag

exception Type_error = Diag.Error

let err ?hints ?needle code fmt =
  Diag.error ?hints ?needle ~code ~phase:Diag.Type fmt

type env = (string * D.Schema.t) list

let env_of_database db =
  List.map (fun (n, r) -> (n, D.Relation.schema r)) (D.Database.relations db)

let operand_ty schema = function
  | Ast.Const v -> D.Value.type_of v
  | Ast.Attr a -> (
    match D.Schema.find_opt a schema with
    | Some at -> at.D.Schema.ty
    | None ->
      err "E-RA-TYPE-002" ~needle:a
        ~hints:(Diag.did_you_mean ~candidates:(D.Schema.names schema) a)
        "unknown attribute %S in predicate (schema: %s)" a
        (D.Schema.to_string schema))

let operand_name = function
  | Ast.Const v -> D.Value.to_literal v
  | Ast.Attr a -> a

let rec check_pred schema = function
  | Ast.Cmp (op, a, b) ->
    (* Operands must resolve *and* have compatible static types: comparing
       an int column with a string literal can never hold, so it is almost
       certainly a typo — reject it instead of silently returning the empty
       relation.  [Tany] (the type of heterogeneous active-domain columns)
       is compatible with everything, keeping the DRC→RA construction
       well-typed. *)
    let ta = operand_ty schema a and tb = operand_ty schema b in
    if not (D.Value.ty_compatible ta tb) then
      err "E-RA-TYPE-008" ~needle:(operand_name b)
        "cannot compare %s (of type %s) %s %s (of type %s): operand types \
         are incompatible"
        (operand_name a) (D.Value.ty_name ta)
        (Diagres_logic.Fol.cmp_name op) (operand_name b)
        (D.Value.ty_name tb)
  | Ast.And (a, b) | Ast.Or (a, b) ->
    check_pred schema a;
    check_pred schema b
  | Ast.Not p -> check_pred schema p
  | Ast.Ptrue -> ()

let rec infer (env : env) (e : Ast.t) : D.Schema.t =
  match e with
  | Ast.Rel r -> (
    match List.assoc_opt r env with
    | Some s -> s
    | None ->
      err "E-RA-TYPE-001" ~needle:r
        ~hints:(Diag.did_you_mean ~candidates:(List.map fst env) r)
        "unknown relation %S" r)
  | Ast.Empty e -> infer env e
  | Ast.Select (p, e) ->
    let s = infer env e in
    check_pred s p;
    s
  | Ast.Project (attrs, e) ->
    (* [attrs = []] yields the nullary relation (a Boolean: empty, or the
       empty tuple) — needed as target of Boolean calculus queries *)
    let s = infer env e in
    List.iter
      (fun a ->
        if not (D.Schema.mem a s) then
          err "E-RA-TYPE-002" ~needle:a
            ~hints:(Diag.did_you_mean ~candidates:(D.Schema.names s) a)
            "unknown attribute %S in projection" a)
      attrs;
    let out = D.Schema.project attrs s in
    D.Schema.check_distinct out;
    out
  | Ast.Rename (pairs, e) ->
    let s = infer env e in
    (* simultaneous renaming: resolve all sources against the input schema *)
    let renamed =
      List.map
        (fun (a : D.Schema.attribute) ->
          match List.assoc_opt a.D.Schema.name pairs with
          | Some fresh -> { a with D.Schema.name = fresh }
          | None -> a)
        s
    in
    List.iter
      (fun (old, _) ->
        if not (D.Schema.mem old s) then
          err "E-RA-TYPE-003" ~needle:old
            ~hints:(Diag.did_you_mean ~candidates:(D.Schema.names s) old)
            "rename source %S not in schema %s" old (D.Schema.to_string s))
      pairs;
    D.Schema.check_distinct renamed;
    renamed
  | Ast.Product (a, b) ->
    D.Schema.concat_disjoint (infer env a) (infer env b)
  | Ast.Join (a, b) ->
    let sa = infer env a and sb = infer env b in
    let shared = D.Schema.names (D.Schema.common sa sb) in
    sa @ List.filter (fun (x : D.Schema.attribute) -> not (List.mem x.D.Schema.name shared)) sb
  | Ast.Theta_join (p, a, b) ->
    let s = D.Schema.concat_disjoint (infer env a) (infer env b) in
    check_pred s p;
    s
  | Ast.Union (a, b) | Ast.Inter (a, b) | Ast.Diff (a, b) ->
    let sa = infer env a and sb = infer env b in
    if not (D.Schema.compatible sa sb) then
      err "E-RA-TYPE-005" "set operation on incompatible schemas %s vs %s"
        (D.Schema.to_string sa) (D.Schema.to_string sb);
    D.Schema.join_types sa sb
  | Ast.Division (a, b) ->
    let sa = infer env a and sb = infer env b in
    List.iter
      (fun n ->
        if not (D.Schema.mem n sa) then
          err "E-RA-TYPE-006" ~needle:n
            "division: divisor attribute %S not in dividend" n)
      (D.Schema.names sb);
    let keep =
      List.filter
        (fun (x : D.Schema.attribute) -> not (D.Schema.mem x.D.Schema.name sb))
        sa
    in
    if keep = [] then
      err "E-RA-TYPE-007" "division result would have empty schema";
    keep

(* Re-raise schema-level failures (unknown attributes, duplicate names, …)
   as type errors so callers see one exception type. *)
let infer env e =
  try infer env e
  with D.Schema.Schema_error msg -> err "E-RA-TYPE-004" "%s" msg

let infer_db db e = infer (env_of_database db) e

(** [check env e] is [infer] that reports success as a boolean. *)
let well_typed env e =
  match infer env e with _ -> true | exception Type_error _ -> false
