(** A bounded LRU cache of compiled physical plans.

    The serving scenario the ROADMAP targets — the same handful of queries
    arriving millions of times — spends a fixed few hundred microseconds
    per call on logical rewrites, statistics, and planning before touching
    a single tuple.  This cache amortizes that: plans are keyed by
    {b (canonicalized logical AST, database stamp)} and reused verbatim,
    so a repeated query skips optimize + plan entirely and goes straight
    to execution ({!Plan.run} resets the per-node result memos first, so
    a reused plan re-executes rather than replaying old results).

    - {b Canonicalization} ({!canonical}) normalizes the commutative parts
      of predicates — conjunct/disjunct operand order, constants moved to
      the right of comparisons via {!Diagres_logic.Fol.cmp_flip} — so
      trivially re-phrased queries ([σ_{3 < x}] vs [σ_{x > 3}]) share one
      entry.  Set-operation operands are {e not} reordered: union's output
      schema takes the left operand's attribute names, so commuting them
      is observable.

    - {b The database stamp} ({!Diagres_data.Database.stamp}) hashes every
      relation's name, {!Diagres_data.Relation.stamp}, and attribute
      names.  A plan embeds its scan relations, so reuse is only sound
      against the very same tuple sets — rebinding any name to a rebuilt
      relation changes the stamp and misses the cache.

    - {b Eviction} is least-recently-used over a fixed capacity
      ({!set_capacity}, default 256 entries).

    Hit/miss accounting lives on the telemetry counter registry
    ([plan_cache.hit] / [plan_cache.miss] / [plan_cache.evictions]), so
    the numbers are queryable from [qviz stats] and accumulate across a
    whole batch of queries instead of being private to one [--explain]
    invocation; {!stats} reads the same counters. *)

module D = Diagres_data
module F = Diagres_logic.Fol
module T = Diagres_telemetry.Telemetry

(* ---------------- canonicalization ---------------- *)

let rec canonical_pred (p : Ast.pred) : Ast.pred =
  match p with
  | Ast.Cmp (op, Ast.Const c, Ast.Attr a) ->
    Ast.Cmp (F.cmp_flip op, Ast.Attr a, Ast.Const c)
  | Ast.Cmp _ | Ast.Ptrue -> p
  | Ast.And (a, b) ->
    let a = canonical_pred a and b = canonical_pred b in
    if compare a b <= 0 then Ast.And (a, b) else Ast.And (b, a)
  | Ast.Or (a, b) ->
    let a = canonical_pred a and b = canonical_pred b in
    if compare a b <= 0 then Ast.Or (a, b) else Ast.Or (b, a)
  | Ast.Not a -> Ast.Not (canonical_pred a)

(** Normalize the commutative predicate structure of [e]; the expression
    skeleton (operators, operand order of set operations and joins) is kept
    as-is. *)
let rec canonical (e : Ast.t) : Ast.t =
  match e with
  | Ast.Rel _ -> e
  | Ast.Empty c -> Ast.Empty (canonical c)
  | Ast.Select (p, c) -> Ast.Select (canonical_pred p, canonical c)
  | Ast.Project (attrs, c) -> Ast.Project (attrs, canonical c)
  | Ast.Rename (pairs, c) -> Ast.Rename (pairs, canonical c)
  | Ast.Product (a, b) -> Ast.Product (canonical a, canonical b)
  | Ast.Join (a, b) -> Ast.Join (canonical a, canonical b)
  | Ast.Theta_join (p, a, b) ->
    Ast.Theta_join (canonical_pred p, canonical a, canonical b)
  | Ast.Union (a, b) -> Ast.Union (canonical a, canonical b)
  | Ast.Inter (a, b) -> Ast.Inter (canonical a, canonical b)
  | Ast.Diff (a, b) -> Ast.Diff (canonical a, canonical b)
  | Ast.Division (a, b) -> Ast.Division (canonical a, canonical b)

(* ---------------- the LRU table ---------------- *)

type key = { ast : Ast.t; db_stamp : int }

type entry = { plan : Plan.t; mutable last_used : int }

let capacity = ref 256
let table : (key, entry) Hashtbl.t = Hashtbl.create 64
let clock = ref 0
let hits = T.counter "plan_cache.hit"
let misses = T.counter "plan_cache.miss"
let evictions = T.counter "plan_cache.evictions"
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(** Drop every entry (the counters survive; see {!reset_stats}). *)
let clear () = locked (fun () -> Hashtbl.reset table)

let reset_stats () =
  locked (fun () ->
      T.set_counter hits 0;
      T.set_counter misses 0)

(** [(hits, misses)] since the last {!reset_stats} — a view of the
    [plan_cache.*] telemetry counters. *)
let stats () =
  locked (fun () -> (T.counter_value hits, T.counter_value misses))

let length () = locked (fun () -> Hashtbl.length table)

(** Set the maximum number of cached plans (evicting down if needed). *)
let set_capacity n =
  if n < 1 then invalid_arg "Plan_cache.set_capacity: capacity must be >= 1";
  locked (fun () ->
      capacity := n;
      while Hashtbl.length table > n do
        let victim =
          Hashtbl.fold
            (fun k e acc ->
              match acc with
              | Some (_, e') when e'.last_used <= e.last_used -> acc
              | _ -> Some (k, e))
            table None
        in
        match victim with
        | Some (k, _) -> Hashtbl.remove table k
        | None -> ()
      done)

let evict_if_full () =
  if Hashtbl.length table >= !capacity then begin
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, e') when e'.last_used <= e.last_used -> acc
          | _ -> Some (k, e))
        table None
    in
    match victim with
    | Some (k, _) ->
      Hashtbl.remove table k;
      T.incr evictions
    | None -> ()
  end

(** The cached plan for [e] against [db] — planning (via {!Planner.plan},
    logical rewrites included) only on a miss.  Returns the plan and
    whether it was served from the cache. *)
let find_or_plan (db : D.Database.t) (e : Ast.t) : Plan.t * bool =
  let key = { ast = canonical e; db_stamp = D.Database.stamp db } in
  let cached =
    locked (fun () ->
        incr clock;
        match Hashtbl.find_opt table key with
        | Some entry ->
          entry.last_used <- !clock;
          T.incr hits;
          Some entry.plan
        | None ->
          T.incr misses;
          None)
  in
  match cached with
  | Some plan -> (plan, true)
  | None ->
    (* plan outside the lock: planning may be slow and is deterministic,
       so a racing duplicate insert is harmless (last writer wins) *)
    let plan = Planner.plan db e in
    locked (fun () ->
        evict_if_full ();
        Hashtbl.replace table key { plan; last_used = !clock });
    (plan, false)

(** Number of plans currently cached. *)
let entries () = length ()

(** Estimated bytes held live by the cached plans' node memos
    ({!Plan.memory_bytes} summed over every entry) — the substrate of the
    [memory_bytes.plan_cache] gauge. *)
let memory_bytes () : int =
  locked (fun () ->
      Hashtbl.fold (fun _ e acc -> acc + Plan.memory_bytes e.plan) table 0)
