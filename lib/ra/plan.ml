(** Physical query plans: the execution half of the logical/physical split.

    A plan is a DAG of physical operators produced by {!Planner} from an
    optimized {!Ast.t}.  Three things distinguish it from the tree-walking
    reference evaluator ({!Eval.eval}):

    - {b compiled predicates} — selection and join predicates are compiled
      once into closures over resolved attribute {e positions}; no
      per-tuple attribute-name lookup survives into the inner loops;
    - {b hash equi-joins} — equality conjuncts probe the per-relation
      cached hash indexes ({!Diagres_data.Relation.matching}) instead of
      filtering a materialized cartesian product;
    - {b shared-subtree memoization} — structurally equal subexpressions
      are hash-consed to a single node whose result is computed once and
      served from cache afterwards ([evals]/[hits] count both, which the
      tests pin).

    Every node carries its estimated cardinality; after execution the
    actual cardinality is available from the cached result, which is what
    [qviz --explain] prints as [est=… actual=…].

    The hot operators additionally have {b morsel-parallel} execution
    paths over the shared domain pool ({!Diagres_pool.Pool}): inputs above
    {!par_threshold} tuples are split into fixed-size chunks evaluated
    across the pool — filters and projections chunk their input, the hash
    join runs a partitioned parallel build and a parallel probe, and the
    set operations chunk the membership side.  Every parallel path merges
    its per-chunk results through {!D.Relation.of_tuples}, whose sorted-set
    construction restores the [Relation.tuples] ordering contract, so the
    result is {e identical} to the sequential path at any domain count
    (property-tested).  Below the threshold — or with a pool of size 1 —
    the sequential code runs unchanged and small catalog queries pay no
    overhead. *)

module D = Diagres_data
module Pool = Diagres_pool.Pool
module T = Diagres_telemetry.Telemetry

(** A compiled predicate with its display string (for explain output) and
    its source AST (recompiled into a vectorized bitmap filler when the
    operator runs columnar). *)
type pred = { display : string; holds : D.Tuple.t -> bool; ast : Ast.pred }

type t = {
  id : int;                             (** stable id, used by explain *)
  op : op;
  schema : D.Schema.t;                  (** output schema *)
  est : float;                          (** estimated output rows *)
  est_distinct : float array;           (** estimated distinct per column *)
  mutable cache : D.Relation.t option;  (** memo: result of the first exec *)
  mutable evals : int;                  (** times the result was computed *)
  mutable hits : int;                   (** times served from the memo *)
  mutable actual_ns : int64;
      (** wall time of the last compute, children included; -1 = untimed *)
  mutable actual_alloc : float;
      (** bytes allocated by the last compute on the executing domain,
          children included; -1 = untracked (alloc tracking off) *)
  mutable detail : (string * int) list;
      (** operator-specific measurements from the last traced compute:
          [build_ns]/[probe_ns] for hash joins, [morsels] for the
          parallel paths, [vec]/[batches] for the vectorized paths *)
  mutable vec : bool;
      (** planner's choice: take the vectorized (columnar) execution path
          when {!columnar_enabled}; set by {!mark_vectorized} *)
  mutable fuse : bool;
      (** planner's choice: this filter/projection may emit a {e deferred
          selection view} (no gather) because every consumer — or nobody,
          for the plan root — reads views natively; set by
          {!mark_fusable}, acted on when {!defer_gathers} *)
}

and op =
  | Scan of string * D.Relation.t       (** base relation *)
  | Empty                               (** ∅ with a known schema *)
  | Filter of pred * t                  (** compiled σ *)
  | Project of int array * t            (** positional π (also reordering) *)
  | Relabel of t                        (** ρ: schema-only renaming *)
  | Hash_join of hash_join              (** equi-join via cached indexes *)
  | Nl_join of pred option * t * t      (** ×, filtered during enumeration *)
  | Union of t * t
  | Inter of t * t
  | Diff of t * t
  | Division of t * t

and hash_join = {
  left : t;
  right : t;
  lkey : int array;       (** key positions in the left input *)
  rkey : int list;        (** matching key positions in the right input *)
  right_rest : int array; (** right positions appended to the output *)
  residual : pred option; (** non-equality leftovers, over the output *)
}

(* ---------------- predicate compilation ---------------- *)

let compile_operand schema = function
  | Ast.Const v -> fun _ -> v
  | Ast.Attr a ->
    let i = D.Schema.index a schema in
    fun t -> D.Tuple.get t i

(** Compile a predicate against [schema]: attribute positions are resolved
    here, once, so the returned closure does only array reads. *)
let rec compile schema = function
  | Ast.Cmp (op, a, b) ->
    let fa = compile_operand schema a and fb = compile_operand schema b in
    let cmp = Diagres_logic.Fol.cmp_eval op in
    fun t -> cmp (fa t) (fb t)
  | Ast.And (p, q) ->
    let fp = compile schema p and fq = compile schema q in
    fun t -> fp t && fq t
  | Ast.Or (p, q) ->
    let fp = compile schema p and fq = compile schema q in
    fun t -> fp t || fq t
  | Ast.Not p ->
    let fp = compile schema p in
    fun t -> not (fp t)
  | Ast.Ptrue -> fun _ -> true

let compile_pred schema p : pred =
  { display = Pretty.pred_to_string p; holds = compile schema p; ast = p }

(* ---------------- node construction ---------------- *)

let node_counter = ref 0

let mk op schema est est_distinct : t =
  incr node_counter;
  { id = !node_counter; op; schema; est = Float.max 0. est; est_distinct;
    cache = None; evals = 0; hits = 0; actual_ns = -1L;
    actual_alloc = -1.; detail = []; vec = false; fuse = false }

(* ---------------- parallel execution helpers ---------------- *)

(** Minimum input cardinality before an operator takes its parallel path.
    Mutable so the differential tests can force the parallel operators on
    tiny relations; the default keeps small catalog queries sequential. *)
let par_threshold = ref 2048

(** Morsel size: tuples per chunk handed to a pool worker. *)
let morsel_size = ref 1024

let parallel_for n = Pool.size () > 1 && n >= !par_threshold

(* Chunk size that keeps every worker busy even on inputs smaller than a
   full morsel — at least 4 chunks per domain, capped at the morsel size. *)
let chunk_for len =
  max 1 (min !morsel_size ((len + (4 * Pool.size ()) - 1) / (4 * Pool.size ())))

(* Per-chunk filter keeping input (= sorted) order. *)
let chunk_filter holds sub =
  Array.fold_right (fun t acc -> if holds t then t :: acc else acc) sub []

(* Merge per-chunk tuple lists into a relation; the sorted-set constructor
   re-establishes the ordering contract whatever order chunks produced. *)
let merge_chunks schema (chunks : D.Tuple.t list array) : D.Relation.t =
  D.Relation.of_tuples schema (List.concat (Array.to_list chunks))

(* ---------------- columnar execution knobs ---------------- *)

(** Master switch for the vectorized paths; initialized from the
    [DIAGRES_COLUMNAR] environment variable (off with [0]/[off]/[false]/
    [no], on otherwise — mirroring [DIAGRES_DOMAINS]) and checked at
    execution time, so a cached plan follows the current setting. *)
let columnar_enabled =
  ref
    (match Sys.getenv_opt "DIAGRES_COLUMNAR" with
    | Some ("0" | "off" | "false" | "no") -> false
    | _ -> true)

(** Minimum estimated input rows before the planner marks an operator
    vectorized — below this, forcing the columnar view costs more than the
    tight loops save.  Mutable so the differential tests can force the
    vectorized operators on tiny relations. *)
let vec_threshold = ref 256

(** Rows per vectorized batch: the unit the selection kernels and the
    parallel probe chunk over.  Mutable so the tests can force batch
    boundaries on tiny inputs.  (The filter rounds this up to a multiple
    of 63 so parallel batches write disjoint bitmap words.) *)
let batch_rows = ref 4096

(** Late-materialization master switch: when a planner-marked fusable
    filter/projection runs, emit a deferred selection view (batch + word
    bitmap, no gather) instead of materializing.  On by default;
    [DIAGRES_DEFER=0]/[off]/[false]/[no] turns it off and every operator
    gathers eagerly as in the pre-late-materialization engine — the bench
    crosses the two modes and CI smokes both.  Checked at execution time,
    so a cached plan follows the current setting. *)
let defer_gathers =
  ref
    (match Sys.getenv_opt "DIAGRES_DEFER" with
    | Some ("0" | "off" | "false" | "no") -> false
    | _ -> true)

let c_batches = T.counter "columnar.batches"
let c_rows = T.counter "columnar.rows"
let c_fallback = T.counter "columnar.fallback_row_mode"

(* Number of build partitions for the parallel hash join: a power of two
   (cheap masking) with enough slack that partition skew leaves no domain
   idle. *)
let partition_count () =
  let target = 2 * Pool.size () in
  let rec pow2 n = if n >= target then n else pow2 (2 * n) in
  pow2 1

(* ---------------- execution ---------------- *)

let children n =
  match n.op with
  | Scan _ | Empty -> []
  | Filter (_, c) | Project (_, c) | Relabel c -> [ c ]
  | Hash_join j -> [ j.left; j.right ]
  | Nl_join (_, a, b) | Union (a, b) | Inter (a, b) | Diff (a, b)
  | Division (a, b) ->
    [ a; b ]

(* Short operator kind, the span name for traced node computations. *)
let op_kind n =
  match n.op with
  | Scan _ -> "op.scan"
  | Empty -> "op.empty"
  | Filter _ -> "op.filter"
  | Project _ -> "op.project"
  | Relabel _ -> "op.rename"
  | Hash_join _ -> "op.hash-join"
  | Nl_join _ -> "op.nl-join"
  | Union _ -> "op.union"
  | Inter _ -> "op.intersect"
  | Diff _ -> "op.minus"
  | Division _ -> "op.divide"

(* [timed_if f]: (elapsed ns, result of [f]) when tracing is enabled,
   (0, result) — no clock reads — otherwise. *)
let timed_if f =
  if not (T.enabled ()) then (0, f ())
  else begin
    let t0 = T.now_ns () in
    let r = f () in
    (Int64.to_int (Int64.sub (T.now_ns ()) t0), r)
  end

(* record the morsel count of a parallel path on the node *)
let note_morsels n len chunk =
  if T.enabled () then
    n.detail <- ("morsels", (len + chunk - 1) / max 1 chunk) :: n.detail

(* ---------------- vectorized operators ---------------- *)

(* Run [f lo len] over the row range [0, nrows) in batches of [!batch_rows]
   (rounded up to a multiple of [align]), through the domain pool when the
   input clears the parallel threshold.  Returns per-batch results in
   range order; counts the batch/row telemetry. *)
let vec_batches ?(align = 1) nrows (f : int -> int -> 'a) : 'a array =
  let chunk = max 1 !batch_rows in
  let chunk = (chunk + align - 1) / align * align in
  let nchunks = max 1 ((nrows + chunk - 1) / chunk) in
  T.add c_batches nchunks;
  T.add c_rows nrows;
  let run k =
    let lo = k * chunk in
    f lo (min chunk (nrows - lo))
  in
  if parallel_for nrows && nchunks > 1 then
    Pool.run_all (Array.init nchunks (fun k () -> run k))
  else Array.init nchunks run

let concat_ints (parts : int array array) : int array =
  let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 parts in
  let out = Array.make total 0 in
  let off = ref 0 in
  Array.iter
    (fun s ->
      Array.blit s 0 out !off (Array.length s);
      off := !off + Array.length s)
    parts;
  out

(* σ as a word-bitmap pass: compile the predicate into a bitmap filler
   once, run it batch by batch into one full-length bitmap, and either
   emit a deferred selection view (late materialization: no gather at
   all) or gather the surviving rows here.  A filter over a pending view
   never gathers its input either: it runs the filler over the view's
   base batch and ANDs the two bitmaps, so chains of filters fuse into
   one bitmap with no intermediate materialization.  A selection from a
   canonical batch keeps canonical order, so the result relation is built
   without re-sorting; a predicate passing every row returns the input
   relation unchanged (and shares its caches). *)
let vec_filter n (p : pred) (r : D.Relation.t) : D.Relation.t =
  let base, prior =
    match D.Relation.view_parts r with
    | Some (base, bits, canonical, _) -> (base, Some (bits, canonical))
    | None -> (D.Relation.batch r, None)
  in
  let nrows = D.Batch.nrows base in
  let filler = Vector.compile_pred base n.schema p.ast in
  let nw = D.Column.words_for nrows in
  let deferring = n.fuse && !defer_gathers in
  (* every batch writes its own disjoint word range of one full-length
     bitmap (batches are 63-row aligned, so ranges never straddle a word;
     safe from several domains), and the count / selection / gather run
     once over the whole relation.  The bitmap escapes into the result
     view when deferring; otherwise it is per-domain pooled scratch and
     steady-state filters allocate nothing here. *)
  let with_bits k =
    if deferring then k (Array.make nw 0)
    else D.Column.Scratch.with_words ~len:nrows k
  in
  with_bits @@ fun bits ->
  let parts =
    vec_batches ~align:D.Column.bits_per_word nrows (fun lo len ->
        D.Column.Scratch.with_words ~len (fun window ->
            filler ~lo ~len window;
            Array.blit window 0 bits
              (lo / D.Column.bits_per_word)
              (D.Column.words_for len)))
  in
  (* a pending input selection fuses by AND — never mutating the input's
     bitmap, which other consumers of the shared node may still read *)
  let prior_canonical =
    match prior with
    | Some (pbits, canonical) ->
      D.Column.wand bits pbits nw;
      canonical
    | None -> true
  in
  let count = D.Column.count_bits bits ~len:nrows in
  if T.enabled () then
    n.detail <-
      ("sel_rows", count) :: ("vec", 1)
      :: ("batches", Array.length parts) :: n.detail;
  if count = nrows then r (* every base row passes: input unchanged *)
  else if count = 0 then D.Relation.empty n.schema
  else if deferring then begin
    if T.enabled () then n.detail <- ("deferred", 1) :: n.detail;
    D.Relation.of_view ~canonical:prior_canonical ~count n.schema base bits
  end
  else begin
    let g = D.Batch.gather_bits base bits in
    if prior_canonical then D.Relation.of_batch ~canonical:true n.schema g
    else D.Relation.of_batch n.schema g
  end

(* π with late materialization: the kept columns are re-labeled zero-copy
   ([Batch.columns] shares the column arrays); only the canonicalizing
   sort-dedup of the *kept* columns touches data — dropped columns are
   never read.  A projection of a pending view stays a view over the
   column subset, sharing the bitmap; it is marked non-canonical (dropping
   columns can introduce duplicates), so the dedup happens at whoever
   finally materializes — by then the selection has been fully fused. *)
let vec_project n idx (r : D.Relation.t) : D.Relation.t =
  match D.Relation.view_parts r with
  | Some (base, bits, _, count) ->
    let kept = D.Batch.columns base idx in
    T.add c_batches 1;
    T.add c_rows count;
    if n.fuse && !defer_gathers then begin
      if T.enabled () then
        n.detail <-
          ("sel_rows", count) :: ("deferred", 1) :: ("vec", 1) :: n.detail;
      D.Relation.of_view ~canonical:false ~count n.schema kept bits
    end
    else begin
      if T.enabled () then n.detail <- ("vec", 1) :: n.detail;
      D.Relation.of_batch n.schema (D.Batch.gather_bits kept bits)
    end
  | None ->
    let b = D.Relation.batch r in
    T.add c_batches 1;
    T.add c_rows (D.Batch.nrows b);
    if T.enabled () then n.detail <- ("vec", 1) :: n.detail;
    D.Relation.of_batch n.schema (D.Batch.columns b idx)

(* Hash join on unboxed int key columns (ints, bools, dictionary codes —
   [Column.join_codes] translates the build side's dictionary into the
   probe side's code space, so code equality is value equality).  Build is
   an int-keyed row index over the right side; probe emits (left row,
   right row) index pairs batch by batch through the pool; the output is
   assembled by gathering left columns and the right rest columns over
   those pairs, with the residual predicate running vectorized over the
   assembled batch.  Inputs that arrive as {e canonical pending views}
   (deferred selections) are joined {e through} their selection vectors —
   build hashes only the selected right rows, probe walks only the
   selected left rows, and neither side is ever gathered; non-canonical
   views materialize first (the canonicity argument below needs sorted
   duplicate-free inputs).  [None] when some key pair has no unboxed code
   view (floats, mixed-kind columns) — the caller then takes the row
   path. *)
let vec_hash_join n (j : hash_join) lr rr : D.Relation.t option =
  let lb, lsel =
    match D.Relation.view_sel lr with
    | Some (base, sel) -> (base, Some sel)
    | None -> (D.Relation.batch lr, None)
  in
  let rb, rsel =
    match D.Relation.view_sel rr with
    | Some (base, sel) -> (base, Some sel)
    | None -> (D.Relation.batch rr, None)
  in
  let lcols = D.Batch.cols lb and rcols = D.Batch.cols rb in
  let rkey = Array.of_list j.rkey in
  let nk = Array.length j.lkey in
  let pairs =
    Array.init nk (fun k ->
        D.Column.join_codes lcols.(j.lkey.(k)) rcols.(rkey.(k)))
  in
  if nk = 0 || Array.exists Option.is_none pairs then None
  else begin
    let probes = Array.map (fun p -> fst (Option.get p)) pairs in
    let builds = Array.map (fun p -> snd (Option.get p)) pairs in
    (* build/probe domains: positions in the selection vector when the
       input is a pending view, base rows otherwise.  Both selection
       vectors ascend, so iterating positions in order still visits base
       rows in order — the canonicity argument below survives unchanged. *)
    let build_n, build_row =
      match rsel with
      | Some s -> (Array.length s, fun k -> Array.unsafe_get s k)
      | None -> (D.Batch.nrows rb, fun k -> k)
    in
    let probe_n, probe_row =
      match lsel with
      | Some s -> (Array.length s, fun i -> Array.unsafe_get s i)
      | None -> (D.Batch.nrows lb, fun i -> i)
    in
    (* single-key joins (the common case) keep the key an unboxed int end
       to end; multi-key joins pay one small key array per row.
       [iter_matches] takes and yields *base* row indices. *)
    let build_ns, iter_matches =
      timed_if (fun () ->
          if nk = 1 then begin
            let probe = probes.(0) and build = builds.(0) in
            let tbl =
              D.Index.build_int1_rows ~n:build_n (fun k ->
                  build (build_row k))
            in
            match rsel with
            | None -> fun i f -> D.Index.iter_int1_rows tbl (probe i) f
            | Some s ->
              fun i f ->
                D.Index.iter_int1_rows tbl (probe i) (fun k ->
                    f (Array.unsafe_get s k))
          end
          else begin
            let lkeyf i = Array.init nk (fun k -> probes.(k) i) in
            let rkeyf k =
              let jrow = build_row k in
              Array.init nk (fun c -> builds.(c) jrow)
            in
            let tbl = D.Index.build_int_rows ~n:build_n rkeyf in
            match rsel with
            | None ->
              fun i f -> List.iter f (D.Index.lookup_int_rows tbl (lkeyf i))
            | Some s ->
              fun i f ->
                List.iter
                  (fun k -> f (Array.unsafe_get s k))
                  (D.Index.lookup_int_rows tbl (lkeyf i))
          end)
    in
    let probe_ns, (li, ri) =
      timed_if @@ fun () ->
      let parts =
        vec_batches probe_n (fun lo len ->
            let cap = ref (max 16 len) in
            let li = ref (Array.make !cap 0)
            and ri = ref (Array.make !cap 0) in
            let cnt = ref 0 in
            for pos = lo to lo + len - 1 do
              let i = probe_row pos in
              iter_matches i (fun jrow ->
                  if !cnt = !cap then begin
                    cap := 2 * !cap;
                    let li' = Array.make !cap 0 and ri' = Array.make !cap 0 in
                    Array.blit !li 0 li' 0 !cnt;
                    Array.blit !ri 0 ri' 0 !cnt;
                    li := li';
                    ri := ri'
                  end;
                  !li.(!cnt) <- i;
                  !ri.(!cnt) <- jrow;
                  incr cnt)
            done;
            (Array.sub !li 0 !cnt, Array.sub !ri 0 !cnt))
      in
      ( concat_ints (Array.map fst parts),
        concat_ints (Array.map snd parts) )
    in
    let out_cols =
      Array.append
        (Array.map (fun c -> D.Column.gather c li) lcols)
        (Array.map (fun rpos -> D.Column.gather rcols.(rpos) ri) j.right_rest)
    in
    let out_b = D.Batch.make ~nrows:(Array.length li) out_cols in
    let out_b =
      match j.residual with
      | None -> out_b
      | Some p ->
        let filler = Vector.compile_pred out_b n.schema p.ast in
        let m = D.Batch.nrows out_b in
        D.Column.Scratch.with_words ~len:m (fun bits ->
            filler ~lo:0 ~len:m bits;
            let sel = D.Column.sel_of_bits bits ~lo:0 ~len:m in
            if Array.length sel = m then out_b else D.Batch.gather out_b sel)
    in
    if T.enabled () then
      n.detail <-
        [ ("build_ns", build_ns); ("probe_ns", probe_ns); ("vec", 1) ];
    (* The output is canonical by construction, so the sort-dedup (and even
       its is-canonical scan) is skipped.  Argument: the probe walks left
       rows ascending and the index yields matching right rows ascending,
       so output rows are ordered by (left row, right row); left input is
       canonical (strictly ascending), and within one left row the matched
       right tuples share the key columns, hence sort by their rest columns
       — which appear after the left columns, in right-side order, in
       [out_cols].  Rows are distinct because (left, right) row pairs are,
       and equal-keyed right tuples differ in their rest columns.  The
       residual selection keeps a subsequence, which preserves both. *)
    Some (D.Relation.of_batch ~canonical:true n.schema out_b)
  end

(* Set operations over two canonical batches: a single linear merge
   (Batch.merge_union and friends), no hashing and no boxing.  Outputs are
   canonical by
   construction — a union interleaves two sorted duplicate-free row
   sequences, intersection and difference keep subsequences of the left
   one. *)
let vec_setop n (merge : D.Batch.t -> D.Batch.t -> D.Batch.t) ra rb :
    D.Relation.t =
  let ba = D.Relation.batch ra and bb = D.Relation.batch rb in
  T.add c_batches 2;
  T.add c_rows (D.Batch.nrows ba + D.Batch.nrows bb);
  if T.enabled () then n.detail <- ("vec", 1) :: n.detail;
  D.Relation.of_batch ~canonical:true n.schema (merge ba bb)

(* ÷ as a sorted-group merge: reorder the dividend's columns to
   (keep, divisor-in-divisor-order) — zero-copy — and canonicalize once;
   the rows then cluster into keep-groups, and within one group the
   divisor suffix ascends exactly like the canonical divisor batch does
   (same columns, same comparator).  One linear two-pointer merge per
   group decides containment; winners are the groups whose merge consumes
   the whole divisor.  No hashing, no boxing, and [Column.cmp2] keeps
   dictionary-vs-dictionary comparisons on int ranks.  The winners' first
   rows form an ascending distinct selection over the sorted batch, so
   the output is canonical by construction.  Unlike the join kernels this
   never needs a row fallback: cmp2 falls back to decoded Value.compare
   per column pair, which is still the exact row semantics. *)
let vec_division n (a : t) (b : t) (ra : D.Relation.t) (rb : D.Relation.t) :
    D.Relation.t =
  (* division is a pipeline breaker: both inputs materialize *)
  let bb = D.Relation.batch rb in
  let keep_names = D.Schema.names n.schema in
  let ia_keep =
    Array.of_list (List.map (fun nm -> D.Schema.index nm a.schema) keep_names)
  in
  let nk = Array.length ia_keep in
  let ba = D.Relation.batch ra in
  let nb = D.Batch.nrows bb in
  T.add c_batches 2;
  T.add c_rows (D.Batch.nrows ba + nb);
  if T.enabled () then n.detail <- ("vec", 1) :: n.detail;
  if nb = 0 then
    (* the classic caveat: an empty divisor keeps every candidate *)
    D.Relation.of_batch n.schema (D.Batch.columns ba ia_keep)
  else begin
    let ia_div =
      Array.of_list
        (List.map
           (fun nm -> D.Schema.index nm a.schema)
           (D.Schema.names b.schema))
    in
    let s = D.Batch.sort_dedup (D.Batch.columns ba (Array.append ia_keep ia_div)) in
    let na = D.Batch.nrows s in
    let scols = D.Batch.cols s in
    let keep_cmps = Array.init nk (fun c -> D.Column.row_compare scols.(c)) in
    let same_group i j =
      let rec go c = c = nk || (keep_cmps.(c) i j = 0 && go (c + 1)) in
      go 0
    in
    let ncd = D.Batch.ncols bb in
    let div_cmps =
      Array.init ncd (fun c -> D.Column.cmp2 scols.(nk + c) (D.Batch.cols bb).(c))
    in
    let cmp_div i j =
      let rec go c =
        if c = ncd then 0
        else
          let r = div_cmps.(c) i j in
          if r <> 0 then r else go (c + 1)
      in
      go 0
    in
    let winners = ref [] and nwin = ref 0 in
    let i = ref 0 in
    while !i < na do
      let g0 = !i in
      let e = ref (g0 + 1) in
      while !e < na && same_group g0 !e do incr e done;
      let ii = ref g0 and jb = ref 0 in
      while !ii < !e && !jb < nb do
        let c = cmp_div !ii !jb in
        if c < 0 then incr ii
        else if c = 0 then begin
          incr ii;
          incr jb
        end
        else jb := nb + 1 (* this divisor row is absent: fail the group *)
      done;
      if !jb = nb then begin
        winners := g0 :: !winners;
        incr nwin
      end;
      i := !e
    done;
    let sel = Array.make !nwin 0 in
    List.iteri (fun k v -> sel.(k) <- v) !winners;
    (* winners were prepended, so they sit in [sel] descending: reverse *)
    let half = !nwin / 2 in
    for k = 0 to half - 1 do
      let t = sel.(k) in
      sel.(k) <- sel.(!nwin - 1 - k);
      sel.(!nwin - 1 - k) <- t
    done;
    let keep_batch = D.Batch.columns s (Array.init nk Fun.id) in
    D.Relation.of_batch ~canonical:true n.schema (D.Batch.gather keep_batch sel)
  end

(* A row-mode operator running over an input that was born columnar
   (materialized batch or pending deferred selection): counted so the
   telemetry shows where vectorization does not apply.  Both the aggregate
   counter and a per-operator labelled counter are bumped, so [qviz stats]
   shows *which* operator fell back (the division holdout, a join with no
   unboxed key view, …), not just that something did.  Interning the
   labelled slot takes the registry mutex, but this runs once per operator
   execution, never per row. *)
let note_row_fallback n inputs =
  if !columnar_enabled && List.exists D.Relation.is_columnar inputs then begin
    T.incr c_fallback;
    T.incr (T.counter ("columnar.fallback_row_mode." ^ op_kind n))
  end

(* Rows held live by node memos during the current [run], and the high-
   water mark — the "peak rows resident" figure [analyze] reports.
   Tracked only under telemetry (cardinality of a set-backed view is a
   traversal), atomically because nodes memoize from worker domains. *)
let rows_resident = Atomic.make 0
let rows_resident_peak = Atomic.make 0
let g_peak_rows = T.gauge "exec.peak_rows_resident"

let note_resident rows =
  let cur = rows + Atomic.fetch_and_add rows_resident rows in
  let rec bump () =
    let p = Atomic.get rows_resident_peak in
    if cur > p && not (Atomic.compare_and_set rows_resident_peak p cur) then
      bump ()
  in
  bump ()

let rec exec (n : t) : D.Relation.t =
  match n.cache with
  | Some r ->
    n.hits <- n.hits + 1;
    r
  | None ->
    let r =
      if not (T.enabled ()) then compute n
      else begin
        (* one span per node computation; the duration is inclusive of the
           children computed beneath it, mirroring the tree shape the
           trace viewer shows *)
        let sp = T.start ~cat:"operator" (op_kind n) in
        let alloc0 =
          if T.alloc_enabled () then Gc.allocated_bytes () else 0.
        in
        let t0 = T.now_ns () in
        let r = compute n in
        n.actual_ns <- Int64.sub (T.now_ns ()) t0;
        if T.alloc_enabled () then
          (* allocation on the executing domain, children included; work
             a parallel operator shipped to pool domains is attributed to
             those domains' spans, not this node *)
          n.actual_alloc <- Gc.allocated_bytes () -. alloc0;
        let rows_in =
          List.fold_left
            (fun acc c ->
              match c.cache with
              | Some cr -> acc + D.Relation.cardinality cr
              | None -> acc)
            0 (children n)
        in
        let rows_out = D.Relation.cardinality r in
        note_resident rows_out;
        T.finish
          ~attrs:
            (("node", T.Int n.id)
            :: ("rows_in", T.Int rows_in)
            :: ("rows_out", T.Int rows_out)
            :: List.map (fun (k, v) -> (k, T.Int v)) n.detail)
          sp;
        r
      end
    in
    n.evals <- n.evals + 1;
    n.cache <- Some r;
    r

and compute n : D.Relation.t =
  match n.op with
  | Scan (_, r) -> r
  | Empty -> D.Relation.empty n.schema
  | Filter (p, c) ->
    let r = exec c in
    if !columnar_enabled && n.vec then vec_filter n p r
    else if not (parallel_for (D.Relation.cardinality r)) then
      D.Relation.filter p.holds r
    else begin
      note_morsels n (D.Relation.cardinality r) !morsel_size;
      let arr = D.Relation.tuples_array r in
      merge_chunks (D.Relation.schema r)
        (Pool.parallel_map_chunks ~chunk:!morsel_size (chunk_filter p.holds)
           arr)
    end
  | Project (idx, c) when !columnar_enabled && n.vec ->
    vec_project n idx (exec c)
  | Project (idx, c) ->
    let r = exec c in
    let proj t = Array.map (D.Tuple.get t) idx in
    if not (parallel_for (D.Relation.cardinality r)) then
      D.Relation.map n.schema proj r
    else begin
      note_morsels n (D.Relation.cardinality r) !morsel_size;
      merge_chunks n.schema
        (Pool.parallel_map_chunks ~chunk:!morsel_size
           (fun sub -> Array.fold_right (fun t acc -> proj t :: acc) sub [])
           (D.Relation.tuples_array r))
    end
  | Relabel c ->
    D.Relation.rename_all (D.Schema.names n.schema) (exec c)
  | Hash_join j -> (
    let lr = exec j.left and rr = exec j.right in
    match
      if !columnar_enabled && n.vec then begin
        match vec_hash_join n j lr rr with
        | Some r -> Some r
        | None ->
          (* key columns with no unboxed code view: row path *)
          T.incr c_fallback;
          T.incr (T.counter ("columnar.fallback_row_mode." ^ op_kind n));
          None
      end
      else None
    with
    | Some r -> r
    | None ->
    let probe_all lookup =
      D.Relation.fold
        (fun ta acc ->
          let key = Array.map (D.Tuple.get ta) j.lkey in
          List.fold_left
            (fun acc tb ->
              let out =
                D.Tuple.concat ta (Array.map (D.Tuple.get tb) j.right_rest)
              in
              match j.residual with
              | Some p when not (p.holds out) -> acc
              | _ -> out :: acc)
            acc (lookup key))
        lr []
    in
    if not (parallel_for (D.Relation.cardinality lr)) then begin
      (* sequential probe over the per-relation cached index; under
         tracing the index build is forced first so build and probe time
         are attributable separately *)
      let build_ns, () =
        timed_if (fun () -> D.Relation.prepare_index rr j.rkey)
      in
      let probe_ns, r =
        timed_if (fun () ->
            D.Relation.of_tuples n.schema
              (probe_all (fun key -> D.Relation.matching rr j.rkey key)))
      in
      if T.enabled () then
        n.detail <- [ ("build_ns", build_ns); ("probe_ns", probe_ns) ];
      r
    end
    else begin
      let rkey_arr = Array.of_list j.rkey in
      let build_ns, lookup =
        timed_if @@ fun () ->
        if parallel_for (D.Relation.cardinality rr) then begin
          (* parallel partitioned build: every partition scans the build
             side and keeps the tuples whose key hash routes to it, so the
             partitions build concurrently with no shared table and no
             merge step *)
          let nparts = partition_count () in
          let mask = nparts - 1 in
          let rarr = D.Relation.tuples_array rr in
          let parts =
            Pool.run_all
              (Array.init nparts (fun pid () ->
                   D.Index.build rkey_arr (fun f ->
                       Array.iter
                         (fun t ->
                           if
                             D.Index.hash_key (D.Index.key rkey_arr t)
                             land mask
                             = pid
                           then f t)
                         rarr)))
          in
          fun key ->
            D.Index.lookup parts.(D.Index.hash_key key land mask) key
        end
        else begin
          (* small build side: build the relation's cached index once, up
             front, so the probe workers race only on read-only state *)
          D.Relation.prepare_index rr j.rkey;
          fun key -> D.Relation.matching rr j.rkey key
        end
      in
      (* parallel probe: each morsel of the left input probes independently *)
      let probe_chunk sub =
        Array.fold_right
          (fun ta acc ->
            let key = Array.map (D.Tuple.get ta) j.lkey in
            List.fold_left
              (fun acc tb ->
                let out =
                  D.Tuple.concat ta (Array.map (D.Tuple.get tb) j.right_rest)
                in
                match j.residual with
                | Some p when not (p.holds out) -> acc
                | _ -> out :: acc)
              acc (lookup key))
          sub []
      in
      let probe_ns, r =
        timed_if (fun () ->
            merge_chunks n.schema
              (Pool.parallel_map_chunks ~chunk:!morsel_size probe_chunk
                 (D.Relation.tuples_array lr)))
      in
      if T.enabled () then
        n.detail <-
          [ ("build_ns", build_ns); ("probe_ns", probe_ns);
            ( "morsels",
              (D.Relation.cardinality lr + !morsel_size - 1) / !morsel_size )
          ];
      r
    end)
  | Nl_join (p, a, b) ->
    let ra = exec a and rb = exec b in
    note_row_fallback n [ ra; rb ];
    let ca = D.Relation.cardinality ra and cb = D.Relation.cardinality rb in
    let pair_chunk sub =
      Array.fold_right
        (fun ta acc ->
          D.Relation.fold
            (fun tb acc ->
              let out = D.Tuple.concat ta tb in
              match p with
              | Some p when not (p.holds out) -> acc
              | _ -> out :: acc)
            rb acc)
        sub []
    in
    if not (parallel_for (ca * cb)) then
      D.Relation.of_tuples n.schema (pair_chunk (D.Relation.tuples_array ra))
    else begin
      (* the work is |a|·|b|: chunk the outer side finely enough that even
         a small outer relation spreads across the pool *)
      note_morsels n ca (chunk_for ca);
      merge_chunks n.schema
        (Pool.parallel_map_chunks ~chunk:(chunk_for ca) pair_chunk
           (D.Relation.tuples_array ra))
    end
  | Union (a, b) when !columnar_enabled && n.vec ->
    vec_setop n D.Batch.merge_union (exec a) (exec b)
  | Inter (a, b) when !columnar_enabled && n.vec ->
    vec_setop n D.Batch.merge_inter (exec a) (exec b)
  | Diff (a, b) when !columnar_enabled && n.vec ->
    vec_setop n D.Batch.merge_diff (exec a) (exec b)
  | Union (a, b) ->
    let ra = exec a and rb = exec b in
    note_row_fallback n [ ra; rb ];
    if not (parallel_for (D.Relation.cardinality rb)) then
      D.Relation.union ra rb
    else begin
      (* keep a intact; in parallel, find b's genuinely new tuples *)
      note_morsels n (D.Relation.cardinality rb) !morsel_size;
      let fresh =
        Pool.parallel_map_chunks ~chunk:!morsel_size
          (chunk_filter (fun t -> not (D.Relation.mem t ra)))
          (D.Relation.tuples_array rb)
      in
      D.Relation.of_tuples n.schema
        (List.concat (D.Relation.tuples ra :: Array.to_list fresh))
    end
  | Inter (a, b) ->
    let ra = exec a and rb = exec b in
    note_row_fallback n [ ra; rb ];
    if not (parallel_for (D.Relation.cardinality ra)) then
      D.Relation.inter ra rb
    else begin
      note_morsels n (D.Relation.cardinality ra) !morsel_size;
      merge_chunks n.schema
        (Pool.parallel_map_chunks ~chunk:!morsel_size
           (chunk_filter (fun t -> D.Relation.mem t rb))
           (D.Relation.tuples_array ra))
    end
  | Diff (a, b) ->
    let ra = exec a and rb = exec b in
    note_row_fallback n [ ra; rb ];
    if not (parallel_for (D.Relation.cardinality ra)) then
      D.Relation.diff ra rb
    else begin
      note_morsels n (D.Relation.cardinality ra) !morsel_size;
      merge_chunks n.schema
        (Pool.parallel_map_chunks ~chunk:!morsel_size
           (chunk_filter (fun t -> not (D.Relation.mem t rb)))
           (D.Relation.tuples_array ra))
    end
  | Division (a, b) when !columnar_enabled && n.vec ->
    vec_division n a b (exec a) (exec b)
  | Division (a, b) ->
    let ra = exec a and rb = exec b in
    note_row_fallback n [ ra; rb ];
    D.Relation.division ra rb

(* ---------------- traversal ---------------- *)

(** Fold over every distinct node of the DAG (shared nodes visited once). *)
let fold_unique f (root : t) init =
  let seen = Hashtbl.create 16 in
  let rec go acc n =
    if Hashtbl.mem seen n.id then acc
    else begin
      Hashtbl.add seen n.id ();
      List.fold_left go (f n acc) (children n)
    end
  in
  go init root

(** Mark the nodes that should execute vectorized when {!columnar_enabled}:
    filters and projections whose estimated input clears {!vec_threshold}
    rows, hash joins where either side does, set operations (union /
    intersect / minus) likewise — canonical batches are sorted and
    duplicate-free, so those run as single linear merges with no hashing
    or boxing — and division (sorted-group merge, {!vec_division}).
    Nested-loop joins stay in row mode — their sorted-set implementation
    already runs without per-row closure dispatch, and vectorizing them
    does not pay.  Called by {!Planner.plan} once cardinality estimates
    exist; the flag is only acted on at execution time, so one plan serves
    both modes. *)
let mark_vectorized root =
  let thr = float_of_int !vec_threshold in
  fold_unique
    (fun n () ->
      n.vec <-
        (match n.op with
        | Filter (_, c) | Project (_, c) -> c.est >= thr
        | Hash_join j -> Float.max j.left.est j.right.est >= thr
        | Union (a, b) | Inter (a, b) | Diff (a, b) | Division (a, b) ->
          Float.max a.est b.est >= thr
        | _ -> false))
    root ()

(** Mark the filters and projections that may emit a {e deferred selection
    view} (no gather — late materialization) when {!defer_gathers}:
    exactly the vectorized σ/π whose every consumer reads views natively
    (a downstream vectorized filter, projection, or hash join), plus the
    plan root — the final gather is deferred to whoever consumes the
    result, and a cardinality probe or row-mode decode of a canonical
    view never pays for the column gather at all.  Everything else —
    set operations, division, nested-loop joins, row-mode operators — is
    a pipeline breaker: those force materialization simply by asking the
    relation for its batch, so fusion marking is a pure optimization and
    an unmarked node behaves exactly as before.  A DAG-shared node with
    even one non-view consumer stays unmarked (it would materialize
    anyway, and eagerly is cheaper than under the relation lock).  Called
    by {!Planner.plan} after {!mark_vectorized}. *)
let mark_fusable root =
  let parents : (int, t list) Hashtbl.t = Hashtbl.create 16 in
  fold_unique
    (fun n () ->
      List.iter
        (fun c ->
          let ps = Option.value ~default:[] (Hashtbl.find_opt parents c.id) in
          Hashtbl.replace parents c.id (n :: ps))
        (children n))
    root ();
  let view_consumer p =
    p.vec
    &&
    match p.op with Filter _ | Project _ | Hash_join _ -> true | _ -> false
  in
  fold_unique
    (fun n () ->
      n.fuse <-
        n.vec
        && (match n.op with Filter _ | Project _ -> true | _ -> false)
        &&
        match Hashtbl.find_opt parents n.id with
        | None | Some [] -> true (* plan root: defer the final gather *)
        | Some ps -> List.for_all view_consumer ps)
    root ()

(** Reset every node's result memo and counters.  {!run} calls this before
    executing, making the per-node caches {e single-evaluation-scoped}: a
    plan served again from the plan cache re-executes against the current
    relations instead of leaking the previous call's results.  (After a
    {!run} the memos are still filled, which is what lets [explain] report
    actual row counts.) *)
let reset_caches root =
  fold_unique
    (fun n () ->
      n.cache <- None;
      n.evals <- 0;
      n.hits <- 0;
      n.actual_ns <- -1L;
      n.actual_alloc <- -1.;
      n.detail <- [])
    root ()

(** Execute a {e freshly built} node without resetting memos first — the
    entry point the differential evaluator ({!Delta}) uses for the
    ephemeral per-update delta plans it assembles around existing
    relations.  The per-evaluation node memo of a registered plan is
    {b not} shared with delta evaluation: a plan can be served from the
    plan cache and re-{!run} for an ad-hoc query at any time, which
    resets every node's [cache] — so differential state must live with
    the view (see {!Delta}), never on plan nodes, and the delta plans
    executed here are built fresh per maintenance round from nodes no
    {!run} can reach. *)
let exec_fresh (n : t) : D.Relation.t = exec n

(** Execute a (possibly cached, possibly previously executed) plan from a
    clean slate — the entry point {!Eval.eval_planned} uses. *)
let run root =
  reset_caches root;
  if T.enabled () then begin
    Atomic.set rows_resident 0;
    Atomic.set rows_resident_peak 0
  end;
  let r =
    T.with_span ~cat:"phase"
      ~attrs:(fun () ->
        match root.cache with
        | Some r -> [ ("rows", T.Int (D.Relation.cardinality r)) ]
        | None -> [])
      "execute"
      (fun () -> exec root)
  in
  if T.enabled () then
    T.set_gauge g_peak_rows (Atomic.get rows_resident_peak);
  r

(* ---------------- explain ---------------- *)

let label n =
  match n.op with
  | Scan (name, _) -> "scan " ^ name
  | Empty -> "empty"
  | Filter (p, _) -> Printf.sprintf "filter [%s]" p.display
  | Project (_, c) ->
    let names = D.Schema.names n.schema in
    if names = D.Schema.names c.schema then "reorder"
    else Printf.sprintf "project [%s]" (String.concat ", " names)
  | Relabel _ ->
    Printf.sprintf "rename [%s]" (String.concat ", " (D.Schema.names n.schema))
  | Hash_join j ->
    let ln = D.Schema.names j.left.schema
    and rn = D.Schema.names j.right.schema in
    let eqs =
      List.map2
        (fun l r -> Printf.sprintf "%s = %s" (List.nth ln l) (List.nth rn r))
        (Array.to_list j.lkey) j.rkey
    in
    Printf.sprintf "hash-join [%s]%s"
      (String.concat ", " eqs)
      (match j.residual with
      | Some p -> Printf.sprintf " filter [%s]" p.display
      | None -> "")
  | Nl_join (None, _, _) -> "product"
  | Nl_join (Some p, _, _) -> Printf.sprintf "nl-join [%s]" p.display
  | Union _ -> "union"
  | Inter _ -> "intersect"
  | Diff _ -> "minus"
  | Division _ -> "divide"

(* Shared tree renderer: one operator per line, shared nodes printed once
   and referenced by [#id] afterwards; [annot n] is the per-node
   parenthetical. *)
let render ~annot (root : t) : string =
  (* nodes referenced from more than one parent get a #id tag *)
  let refs = Hashtbl.create 16 in
  let rec count n =
    let c = try Hashtbl.find refs n.id with Not_found -> 0 in
    Hashtbl.replace refs n.id (c + 1);
    if c = 0 then List.iter count (children n)
  in
  count root;
  let buf = Buffer.create 256 in
  let printed = Hashtbl.create 16 in
  let rec go indent n =
    let shared = Hashtbl.find refs n.id > 1 in
    let tag = if shared then Printf.sprintf "#%d " n.id else "" in
    if Hashtbl.mem printed n.id then
      Buffer.add_string buf
        (Printf.sprintf "%s#%d %s (shared, computed once)\n" indent n.id
           (label n))
    else begin
      Hashtbl.add printed n.id ();
      Buffer.add_string buf
        (Printf.sprintf "%s%s%s  (%s)\n" indent tag (label n) (annot n));
      List.iter (go (indent ^ "  ")) (children n)
    end
  in
  go "" root;
  Buffer.contents buf

let actual_rows n =
  match n.cache with
  | Some r -> string_of_int (D.Relation.cardinality r)
  | None -> "?"

(** Render the plan with estimated and (when the node has been executed)
    actual row counts. *)
let explain (root : t) : string =
  render root ~annot:(fun n ->
      Printf.sprintf "est=%.0f actual=%s" n.est (actual_rows n))

(* A node whose cardinality estimate missed by more than this factor gets
   flagged in the analyze output. *)
let est_off_factor = 10.

(* est-vs-actual error ratio, symmetric, with both sides clamped to >= 1
   so empty results don't divide by zero. *)
let est_ratio est actual =
  let e = Float.max 1. est and a = Float.max 1. (float_of_int actual) in
  Float.max (e /. a) (a /. e)

(** Would this estimate/actual pair be flagged in the analyze output? *)
let est_off ~est ~actual = est_ratio est actual > est_off_factor

(** Render the plan annotated with the measured execution profile — the
    [qviz eval --analyze] sink.  Each executed node shows actual rows and
    wall time (children included) next to the planner's estimate, hash
    joins additionally split build vs. probe time and parallel operators
    report their morsel count; nodes whose row estimate was off by more
    than {!est_off_factor}× are flagged with [!est-off].  Requires the
    plan to have been run with telemetry enabled; untimed nodes render
    [time=?]. *)
let analyze (root : t) : string =
  render root ~annot:(fun n ->
      let time =
        if n.actual_ns < 0L then "time=?"
        else Printf.sprintf "time=%.3fms" (T.ns_to_ms n.actual_ns)
      in
      let alloc =
        (* only present when the plan ran with alloc tracking on *)
        if n.actual_alloc < 0. then ""
        else Printf.sprintf " alloc=%s" (T.bytes_to_string n.actual_alloc)
      in
      let detail =
        String.concat ""
          (List.map
             (fun (k, v) ->
               match k with
               | "build_ns" -> Printf.sprintf " build=%.3fms" (float_of_int v /. 1e6)
               | "probe_ns" -> Printf.sprintf " probe=%.3fms" (float_of_int v /. 1e6)
               | _ -> Printf.sprintf " %s=%d" k v)
             (List.rev n.detail))
      in
      let flag =
        match n.cache with
        | Some r
          when est_ratio n.est (D.Relation.cardinality r) > est_off_factor ->
          Printf.sprintf "  !est-off(%.0fx)"
            (est_ratio n.est (D.Relation.cardinality r))
        | _ -> ""
      in
      Printf.sprintf "est=%.0f actual=%s %s%s%s%s" n.est (actual_rows n) time
        alloc detail flag)

(** Total number of node computations across the DAG — with hash-consing
    this stays at the number of {e distinct} subexpressions. *)
let total_evals root = fold_unique (fun n acc -> acc + n.evals) root 0

(** Total memo hits — how many re-evaluations sharing saved. *)
let total_hits root = fold_unique (fun n acc -> acc + n.hits) root 0

(** Estimated bytes held live by the plan's node memos — the intermediate
    results still resident after a run ({!Plan_cache} sums this over every
    cached plan for the [memory_bytes.plan_cache] gauge).  Scan nodes are
    skipped: their "result" is the base relation itself, owned by the
    database, not the plan. *)
let memory_bytes (root : t) : int =
  fold_unique
    (fun n acc ->
      match (n.op, n.cache) with
      | Scan _, _ | _, None -> acc
      | _, Some r -> acc + D.Relation.memory_bytes r)
    root 0
