(** Vectorized predicate compilation: lowers an {!Ast.pred} to a bitmap
    filler over a column batch.

    Where {!Plan.compile_pred} produces a per-tuple closure tree, this
    produces a {!Diagres_data.Column.filler} that evaluates the whole
    predicate one comparison at a time over a row range: each [Cmp] atom
    runs a typed kernel when the column representation supports one (int,
    float, dictionary-code, and bool columns against a constant or a same-
    batch column), and the boolean connectives combine the resulting word
    bitmaps one machine op per 63 rows ({!Column.wand}/{!wor}/{!wnot}).
    Connective scratch comes from the per-domain pool
    ({!Column.Scratch}) — a stack, so nested connectives hold several
    buffers at once and steady-state batches allocate nothing.  Atoms with
    no typed kernel (boxed columns, cross-kind comparisons) decode
    row-at-a-time through {!Fol.cmp_eval}, so the compiled filler is
    {e always} exactly equivalent to the row predicate — the fast paths
    are an optimization, never a semantics change. *)

module D = Diagres_data
module C = Diagres_data.Column
module F = Diagres_logic.Fol

let cmp_of : F.cmp -> C.cmp = function
  | F.Eq -> C.Ceq
  | F.Neq -> C.Cneq
  | F.Lt -> C.Clt
  | F.Le -> C.Cle
  | F.Gt -> C.Cgt
  | F.Ge -> C.Cge

(** Compile [p] against batch [b] whose columns are named by [schema].
    The filler writes one bit per row for rows [lo .. lo+len-1] into a
    word bitmap (bit 0 of word 0 = row [lo]); connective scratch is pooled
    per domain, so the same filler can run concurrently from several
    domains. *)
let compile_pred (b : D.Batch.t) (schema : D.Schema.t) (p : Ast.pred) :
    C.filler =
  let cols = D.Batch.cols b in
  let col a = cols.(D.Schema.index a schema) in
  (* row-at-a-time fallback, bit-identical to the compiled row predicate *)
  let generic op fa fb = C.fill_with (fun i -> F.cmp_eval op (fa i) (fb i)) in
  let rec go = function
    | Ast.Cmp (op, Ast.Const x, Ast.Const y) ->
      C.fill_const (F.cmp_eval op x y)
    | Ast.Cmp (op, Ast.Const x, Ast.Attr a) ->
      go (Ast.Cmp (F.cmp_flip op, Ast.Attr a, Ast.Const x))
    | Ast.Cmp (op, Ast.Attr a, Ast.Const v) -> (
      let ca = col a in
      match C.fill_cmp_const (cmp_of op) ca v with
      | Some f -> f
      | None -> generic op (C.get ca) (fun _ -> v))
    | Ast.Cmp (op, Ast.Attr a, Ast.Attr a') -> (
      let ca = col a and cb = col a' in
      match C.fill_cmp_cols (cmp_of op) ca cb with
      | Some f -> f
      | None -> generic op (C.get ca) (C.get cb))
    | Ast.And (p, q) ->
      let fp = go p and fq = go q in
      fun ~lo ~len dst ->
        fp ~lo ~len dst;
        C.Scratch.with_words ~len (fun scratch ->
            fq ~lo ~len scratch;
            C.wand dst scratch (C.words_for len))
    | Ast.Or (p, q) ->
      let fp = go p and fq = go q in
      fun ~lo ~len dst ->
        fp ~lo ~len dst;
        C.Scratch.with_words ~len (fun scratch ->
            fq ~lo ~len scratch;
            C.wor dst scratch (C.words_for len))
    | Ast.Not p ->
      let fp = go p in
      fun ~lo ~len dst ->
        fp ~lo ~len dst;
        C.wnot dst ~len
    | Ast.Ptrue -> C.fill_const true
  in
  go p
