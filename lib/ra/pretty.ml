(** Pretty-printers for RA expressions.

    Two renderings: an ASCII concrete syntax accepted back by {!Parser}
    (round-trip property-tested), and the blackboard Unicode notation
    (π, σ, ρ, ⋈, ×, ∪, ∩, −, ÷) used in diagrams and docs. *)

let cmp_name = Diagres_logic.Fol.cmp_name

let operand = function
  | Ast.Attr a -> a
  | Ast.Const v -> Diagres_data.Value.to_literal v

let rec pred_to_string = function
  | Ast.Cmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (operand a) (cmp_name op) (operand b)
  | Ast.And (p, q) -> Printf.sprintf "%s and %s" (pred_atom p) (pred_atom q)
  | Ast.Or (p, q) -> Printf.sprintf "%s or %s" (pred_atom p) (pred_atom q)
  | Ast.Not p -> Printf.sprintf "not %s" (pred_atom p)
  | Ast.Ptrue -> "true"

and pred_atom p =
  match p with
  | Ast.Cmp _ | Ast.Ptrue | Ast.Not _ -> pred_to_string p
  | _ -> "(" ^ pred_to_string p ^ ")"

(* Binary set operators are the loosest level; join-like operators bind
   tighter; unary operators are applications and never need parens. *)
let level = function
  | Ast.Union _ | Ast.Inter _ | Ast.Diff _ -> 1
  | Ast.Product _ | Ast.Join _ | Ast.Theta_join _ | Ast.Division _ -> 2
  | Ast.Rel _ | Ast.Empty _ | Ast.Select _ | Ast.Project _ | Ast.Rename _ -> 3

let rec ascii e =
  let sub child =
    if level child <= level e then "(" ^ ascii child ^ ")" else ascii child
  in
  match e with
  | Ast.Rel r -> r
  | Ast.Empty e1 -> Printf.sprintf "empty(%s)" (ascii e1)
  | Ast.Select (p, e1) ->
    Printf.sprintf "select[%s](%s)" (pred_to_string p) (ascii e1)
  | Ast.Project (attrs, e1) ->
    Printf.sprintf "project[%s](%s)" (String.concat ", " attrs) (ascii e1)
  | Ast.Rename (pairs, e1) ->
    Printf.sprintf "rename[%s](%s)"
      (String.concat ", "
         (List.map (fun (a, b) -> Printf.sprintf "%s -> %s" a b) pairs))
      (ascii e1)
  | Ast.Product (a, b) -> Printf.sprintf "%s * %s" (sub a) (sub b)
  | Ast.Join (a, b) -> Printf.sprintf "%s join %s" (sub a) (sub b)
  | Ast.Theta_join (p, a, b) ->
    Printf.sprintf "%s join[%s] %s" (sub a) (pred_to_string p) (sub b)
  | Ast.Union (a, b) -> Printf.sprintf "%s union %s" (sub a) (sub b)
  | Ast.Inter (a, b) -> Printf.sprintf "%s intersect %s" (sub a) (sub b)
  | Ast.Diff (a, b) -> Printf.sprintf "%s minus %s" (sub a) (sub b)
  | Ast.Division (a, b) -> Printf.sprintf "%s div %s" (sub a) (sub b)

let rec unicode e =
  let sub child =
    if level child <= level e then "(" ^ unicode child ^ ")" else unicode child
  in
  match e with
  | Ast.Rel r -> r
  | Ast.Empty e1 -> Printf.sprintf "∅ %s" (sub_u e1)
  | Ast.Select (p, e1) -> Printf.sprintf "σ[%s] %s" (pred_to_string p) (sub_u e1)
  | Ast.Project (attrs, e1) ->
    Printf.sprintf "π[%s] %s" (String.concat "," attrs) (sub_u e1)
  | Ast.Rename (pairs, e1) ->
    Printf.sprintf "ρ[%s] %s"
      (String.concat ","
         (List.map (fun (a, b) -> Printf.sprintf "%s→%s" a b) pairs))
      (sub_u e1)
  | Ast.Product (a, b) -> Printf.sprintf "%s × %s" (sub a) (sub b)
  | Ast.Join (a, b) -> Printf.sprintf "%s ⋈ %s" (sub a) (sub b)
  | Ast.Theta_join (p, a, b) ->
    Printf.sprintf "%s ⋈[%s] %s" (sub a) (pred_to_string p) (sub b)
  | Ast.Union (a, b) -> Printf.sprintf "%s ∪ %s" (sub a) (sub b)
  | Ast.Inter (a, b) -> Printf.sprintf "%s ∩ %s" (sub a) (sub b)
  | Ast.Diff (a, b) -> Printf.sprintf "%s − %s" (sub a) (sub b)
  | Ast.Division (a, b) -> Printf.sprintf "%s ÷ %s" (sub a) (sub b)

(* unary-operator operand: parenthesize unless it is a leaf or another
   unary application *)
and sub_u e =
  match e with
  | Ast.Rel _ | Ast.Select _ | Ast.Project _ | Ast.Rename _ -> unicode e
  | _ -> "(" ^ unicode e ^ ")"

(** Operator-tree rendering, one node per line — the textual skeleton of the
    DFQL dataflow view. *)
let tree e =
  let buf = Buffer.create 256 in
  let rec go indent e =
    let line s = Buffer.add_string buf (indent ^ s ^ "\n") in
    let deeper = indent ^ "  " in
    match e with
    | Ast.Rel r -> line r
    | Ast.Empty e1 ->
      line "∅";
      go deeper e1
    | Ast.Select (p, e1) ->
      line (Printf.sprintf "σ [%s]" (pred_to_string p));
      go deeper e1
    | Ast.Project (attrs, e1) ->
      line (Printf.sprintf "π [%s]" (String.concat ", " attrs));
      go deeper e1
    | Ast.Rename (pairs, e1) ->
      line
        (Printf.sprintf "ρ [%s]"
           (String.concat ", "
              (List.map (fun (a, b) -> a ^ "→" ^ b) pairs)));
      go deeper e1
    | Ast.Product (a, b) -> line "×"; go deeper a; go deeper b
    | Ast.Join (a, b) -> line "⋈"; go deeper a; go deeper b
    | Ast.Theta_join (p, a, b) ->
      line (Printf.sprintf "⋈ [%s]" (pred_to_string p));
      go deeper a;
      go deeper b
    | Ast.Union (a, b) -> line "∪"; go deeper a; go deeper b
    | Ast.Inter (a, b) -> line "∩"; go deeper a; go deeper b
    | Ast.Diff (a, b) -> line "−"; go deeper a; go deeper b
    | Ast.Division (a, b) -> line "÷"; go deeper a; go deeper b
  in
  go "" e;
  Buffer.contents buf

let pp ppf e = Fmt.string ppf (ascii e)
