(** Cost-based physical planner: lowers a logical {!Ast.t} to a {!Plan.t}.

    The classical System-R split, scaled to this library: {!Optimize} does
    the rewrite-level work (selection pushdown, dead-branch pruning), and
    this module makes the physical decisions on the result:

    - {b hash-join extraction} — n-ary [Product]/[Join]/[Theta_join] chains
      are flattened into a leaf set plus a conjunct pool; equality
      conjuncts between two sides become hash-join keys probing the
      cached relation indexes, the rest compile into residual filters;
    - {b greedy join ordering} — the chain is reassembled smallest-first:
      starting from the leaf with the fewest estimated rows, each step
      joins in whichever remaining leaf yields the smallest estimated
      intermediate result (estimates from {!Diagres_data.Stats}:
      1/distinct for equality, 1/3 for ranges, independence for ∧/∨);
    - {b hash-consing} — structurally equal subexpressions map to the same
      physical node via a memo table, so shared subtrees (ubiquitous in
      calculus-translated queries, whose active-domain unions repeat the
      adomᵏ construction) are evaluated once.

    Because set operations are positionally compatible, a chain whose
    greedy order differs from the syntactic one ends in a positional
    reorder back to the schema {!Typecheck.infer} assigns, making plans
    drop-in equivalent to {!Eval.eval} (property-tested). *)

module D = Diagres_data
module F = Diagres_logic.Fol

type state = {
  db : D.Database.t;
  env : Typecheck.env;
  memo : (Ast.t, Plan.t) Hashtbl.t;  (** hash-consing of logical subtrees *)
}

let clamp1 x = Float.max 1. x

(* ---------------- selectivity estimation ---------------- *)

(* [distinct] maps an attribute name to its estimated distinct count. *)
let rec selectivity distinct = function
  | Ast.Cmp (F.Eq, Ast.Attr a, Ast.Const _)
  | Ast.Cmp (F.Eq, Ast.Const _, Ast.Attr a) ->
    1. /. clamp1 (distinct a)
  | Ast.Cmp (F.Eq, Ast.Attr a, Ast.Attr b) ->
    1. /. clamp1 (Float.max (distinct a) (distinct b))
  | Ast.Cmp (op, Ast.Const x, Ast.Const y) ->
    if F.cmp_eval op x y then 1. else 0.
  | Ast.Cmp (F.Neq, Ast.Attr a, Ast.Const _)
  | Ast.Cmp (F.Neq, Ast.Const _, Ast.Attr a) ->
    1. -. (1. /. clamp1 (distinct a))
  | Ast.Cmp (_, _, _) -> 1. /. 3.  (* range: the textbook third *)
  | Ast.And (p, q) -> selectivity distinct p *. selectivity distinct q
  | Ast.Or (p, q) ->
    let sp = selectivity distinct p and sq = selectivity distinct q in
    sp +. sq -. (sp *. sq)
  | Ast.Not p -> 1. -. selectivity distinct p
  | Ast.Ptrue -> 1.

(* Distinct-count lookup over a plan node's output. *)
let node_distinct (n : Plan.t) a =
  match D.Schema.index_opt a n.Plan.schema with
  | Some i -> n.Plan.est_distinct.(i)
  | None -> 10.  (* unknown attribute: a neutral default *)

(* Estimated distinct counts can never exceed the estimated row count. *)
let cap_distinct rows = Array.map (fun d -> Float.min d (clamp1 rows))

(* ---------------- leaf helpers ---------------- *)

let covers (n : Plan.t) c =
  List.for_all
    (fun a -> D.Schema.mem a n.Plan.schema)
    (Ast.pred_attrs c)

let mk_filter (n : Plan.t) conjs : Plan.t =
  match conjs with
  | [] -> n
  | _ ->
    let p = Ast.pred_conj conjs in
    let est = selectivity (node_distinct n) p *. n.Plan.est in
    Plan.mk
      (Plan.Filter (Plan.compile_pred n.Plan.schema p, n))
      n.Plan.schema est
      (cap_distinct est n.Plan.est_distinct)

(* ---------------- join combination ---------------- *)

(* Join two plan nodes: shared attribute names merge (natural join), and
   any pending equality conjunct with one attribute on each side becomes a
   further hash key.  Returns the combined node and the conjuncts still
   pending.  With no keys at all this degrades to a filtered
   nested-loop product. *)
let combine (l : Plan.t) (r : Plan.t) pending : Plan.t * Ast.pred list =
  let ln = D.Schema.names l.Plan.schema
  and rn = D.Schema.names r.Plan.schema in
  let shared = List.filter (fun a -> List.mem a ln) rn in
  let kept_right = List.filter (fun a -> not (List.mem a shared)) rn in
  let out_names = ln @ kept_right in
  let applicable, still =
    List.partition
      (fun c -> List.for_all (fun a -> List.mem a out_names) (Ast.pred_attrs c))
      pending
  in
  (* equality conjuncts usable as hash keys: one side each *)
  let is_key = function
    | Ast.Cmp (F.Eq, Ast.Attr a, Ast.Attr b) ->
      (List.mem a ln && List.mem b rn && not (List.mem b ln))
      || (List.mem b ln && List.mem a rn && not (List.mem a ln))
    | _ -> false
  in
  let key_conjs, residual_conjs = List.partition is_key applicable in
  let lpos a = D.Schema.index a l.Plan.schema
  and rpos a = D.Schema.index a r.Plan.schema in
  let merge_pairs = List.map (fun a -> (lpos a, rpos a)) shared in
  let theta_pairs =
    List.map
      (function
        | Ast.Cmp (F.Eq, Ast.Attr a, Ast.Attr b) ->
          if List.mem a ln then (lpos a, rpos b) else (lpos b, rpos a)
        | _ -> assert false)
      key_conjs
  in
  let pairs = merge_pairs @ theta_pairs in
  let right_rest = Array.of_list (List.map rpos kept_right) in
  let out_schema =
    l.Plan.schema
    @ List.filter
        (fun (a : D.Schema.attribute) -> List.mem a.D.Schema.name kept_right)
        r.Plan.schema
  in
  (* distinct lookup over the combined output, for residual selectivity *)
  let out_dist =
    Array.append l.Plan.est_distinct
      (Array.map (fun i -> r.Plan.est_distinct.(i)) right_rest)
  in
  let distinct a =
    match D.Schema.index_opt a out_schema with
    | Some i -> out_dist.(i)
    | None -> 10.
  in
  let key_sel =
    List.fold_left
      (fun s (li, ri) ->
        s
        /. clamp1
             (Float.max l.Plan.est_distinct.(li) r.Plan.est_distinct.(ri)))
      1. pairs
  in
  let residual = Ast.pred_conj residual_conjs in
  let est =
    l.Plan.est *. r.Plan.est *. key_sel *. selectivity distinct residual
  in
  let est_distinct = cap_distinct est out_dist in
  let compiled_residual =
    match residual_conjs with
    | [] -> None
    | _ -> Some (Plan.compile_pred out_schema residual)
  in
  let node =
    match pairs with
    | [] ->
      Plan.mk
        (Plan.Nl_join (compiled_residual, l, r))
        out_schema est est_distinct
    | _ ->
      Plan.mk
        (Plan.Hash_join
           { Plan.left = l; right = r;
             lkey = Array.of_list (List.map fst pairs);
             rkey = List.map snd pairs;
             right_rest; residual = compiled_residual })
        out_schema est est_distinct
  in
  (node, still)

(* ---------------- planning ---------------- *)

let rec go st (e : Ast.t) : Plan.t =
  match Hashtbl.find_opt st.memo e with
  | Some n -> n
  | None ->
    let n = build st e in
    Hashtbl.add st.memo e n;
    n

and build st (e : Ast.t) : Plan.t =
  match e with
  | Ast.Rel r -> (
    match D.Database.find_opt r st.db with
    | None ->
      (* delegate to inference for the canonical unknown-relation error *)
      ignore (Typecheck.infer st.env e : D.Schema.t);
      assert false
    | Some rel ->
      let s = D.Relation.stats rel in
      Plan.mk
        (Plan.Scan (r, rel))
        (D.Relation.schema rel)
        (float_of_int s.D.Stats.rows)
        (Array.map float_of_int s.D.Stats.distinct))
  | Ast.Empty _ ->
    let schema = Typecheck.infer st.env e in
    Plan.mk Plan.Empty schema 0. (Array.make (D.Schema.arity schema) 0.)
  | Ast.Select _ | Ast.Product _ | Ast.Join _ | Ast.Theta_join _ ->
    plan_chain st e
  | Ast.Project (attrs, e1) ->
    let c = go st e1 in
    let schema = Typecheck.infer st.env e in
    let idx =
      Array.of_list (List.map (fun a -> D.Schema.index a c.Plan.schema) attrs)
    in
    (* set semantics: at most Π of the kept columns' distinct counts *)
    let cap =
      Array.fold_left
        (fun acc i -> acc *. clamp1 c.Plan.est_distinct.(i))
        1. idx
    in
    let est = Float.min c.Plan.est cap in
    let dist =
      cap_distinct est (Array.map (fun i -> c.Plan.est_distinct.(i)) idx)
    in
    Plan.mk (Plan.Project (idx, c)) schema est dist
  | Ast.Rename (_, e1) ->
    let c = go st e1 in
    let schema = Typecheck.infer st.env e in
    Plan.mk (Plan.Relabel c) schema c.Plan.est c.Plan.est_distinct
  | Ast.Union (a, b) ->
    let na = go st a and nb = go st b in
    let est = na.Plan.est +. nb.Plan.est in
    let dist =
      cap_distinct est
        (Array.init
           (Array.length na.Plan.est_distinct)
           (fun i -> na.Plan.est_distinct.(i) +. nb.Plan.est_distinct.(i)))
    in
    Plan.mk (Plan.Union (na, nb)) (Typecheck.infer st.env e) est dist
  | Ast.Inter (a, b) ->
    let na = go st a and nb = go st b in
    let est = Float.min na.Plan.est nb.Plan.est in
    let dist =
      cap_distinct est
        (Array.init
           (Array.length na.Plan.est_distinct)
           (fun i ->
             Float.min na.Plan.est_distinct.(i) nb.Plan.est_distinct.(i)))
    in
    Plan.mk (Plan.Inter (na, nb)) (Typecheck.infer st.env e) est dist
  | Ast.Diff (a, b) ->
    let na = go st a and nb = go st b in
    Plan.mk
      (Plan.Diff (na, nb))
      (Typecheck.infer st.env e)
      na.Plan.est na.Plan.est_distinct
  | Ast.Division (a, b) ->
    let na = go st a and nb = go st b in
    let schema = Typecheck.infer st.env e in
    let keep =
      List.map (fun n -> D.Schema.index n na.Plan.schema)
        (D.Schema.names schema)
    in
    let est = na.Plan.est /. clamp1 nb.Plan.est in
    let dist =
      cap_distinct est
        (Array.of_list (List.map (fun i -> na.Plan.est_distinct.(i)) keep))
    in
    Plan.mk (Plan.Division (na, nb)) schema est dist

(* Flatten a [Select]/[Product]/[Join]/[Theta_join] chain into its leaf
   expressions and the pooled conjuncts, then reassemble greedily. *)
and plan_chain st (e : Ast.t) : Plan.t =
  let rec flatten e =
    match e with
    | Ast.Select (p, e1) ->
      let l, c = flatten e1 in
      (l, c @ Optimize.split_conj p)
    | Ast.Theta_join (p, a, b) ->
      let la, ca = flatten a and lb, cb = flatten b in
      (la @ lb, ca @ cb @ Optimize.split_conj p)
    | Ast.Product (a, b) | Ast.Join (a, b) ->
      let la, ca = flatten a and lb, cb = flatten b in
      (la @ lb, ca @ cb)
    | _ -> ([ e ], [])
  in
  let leaf_exprs, conjuncts = flatten e in
  let leaves = List.map (go st) leaf_exprs in
  (* push single-side conjuncts down onto the first covering leaf *)
  let leaves, cross =
    List.fold_left
      (fun (done_, pending) leaf ->
        let mine, rest = List.partition (covers leaf) pending in
        (done_ @ [ mk_filter leaf mine ], rest))
      ([], conjuncts) leaves
  in
  let planned =
    match leaves with
    | [] -> assert false  (* flatten always returns at least one leaf *)
    | [ n ] -> mk_filter n cross
    | first :: rest ->
      (* Drop one occurrence by physical identity: hash-consed duplicate
         leaves are the same node, so structural removal would drop both. *)
      let remove_once x xs =
        let dropped = ref false in
        List.filter
          (fun n ->
            if (not !dropped) && n == x then (dropped := true; false)
            else true)
          xs
      in
      (* greedy smallest-first ordering *)
      let start =
        List.fold_left
          (fun best n -> if n.Plan.est < best.Plan.est then n else best)
          first rest
      in
      let rec loop cur todo pending =
        match todo with
        | [] -> mk_filter cur pending
        | _ ->
          let best =
            List.fold_left
              (fun acc leaf ->
                let node, still = combine cur leaf pending in
                match acc with
                | Some (bn, _, _) when node.Plan.est >= bn.Plan.est -> acc
                | _ -> Some (node, still, leaf))
              None todo
          in
          (match best with
          | None -> assert false
          | Some (node, still, used) -> loop node (remove_once used todo) still)
      in
      loop start (remove_once start leaves) cross
  in
  (* set operations are positionally compatible, so restore the canonical
     column order of the logical expression *)
  let canonical = Typecheck.infer st.env e in
  if D.Schema.names canonical = D.Schema.names planned.Plan.schema then planned
  else begin
    let idx =
      Array.of_list
        (List.map
           (fun n -> D.Schema.index n planned.Plan.schema)
           (D.Schema.names canonical))
    in
    let dist = Array.map (fun i -> planned.Plan.est_distinct.(i)) idx in
    Plan.mk (Plan.Project (idx, planned)) canonical planned.Plan.est dist
  end

(** Plan [e] against [db].  Runs the logical optimizer first unless
    [~optimize:false]; the memo table makes structurally equal subtrees
    share one physical node. *)
let plan ?(optimize = true) db (e : Ast.t) : Plan.t =
  let module T = Diagres_telemetry.Telemetry in
  T.with_span ~cat:"phase" "plan" @@ fun () ->
  let env = Typecheck.env_of_database db in
  let e =
    if optimize then
      T.with_span ~cat:"phase" "optimize" (fun () -> Optimize.optimize env e)
    else e
  in
  let st = { db; env; memo = Hashtbl.create 32 } in
  let n = go st e in
  Plan.mark_vectorized n;
  Plan.mark_fusable n;
  n
