(** Rewrite-based logical optimizer for RA expressions.

    These are the classical algebraic rewrites; the benches use them both to
    show evaluator speedups (selection pushdown turns products into joins)
    and as the "ablation" axis for diagram complexity (optimized trees give
    smaller DFQL dataflow diagrams). *)

module D = Diagres_data

(* Attributes an expression exposes; needed to decide pushdown legality.  We
   thread a typing environment because renames change attribute names. *)
let attrs env e = D.Schema.names (Typecheck.infer env e)

let rec split_conj = function
  | Ast.And (a, b) -> split_conj a @ split_conj b
  | Ast.Ptrue -> []
  | p -> [ p ]

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* Static unsatisfiability of a conjunct: equality between operands whose
   column types can never meet (e.g. an int column against a string
   literal).  This is what prunes the dead branches of active-domain
   unions that calculus translation produces. *)
let operand_ty_opt schema = function
  | Ast.Const v -> Some (D.Value.type_of v)
  | Ast.Attr a ->
    Option.map (fun at -> at.D.Schema.ty) (D.Schema.find_opt a schema)

let conjunct_unsat schema = function
  | Ast.Cmp (Diagres_logic.Fol.Eq, x, y) -> (
    match (operand_ty_opt schema x, operand_ty_opt schema y) with
    | Some tx, Some ty -> not (D.Value.ty_compatible tx ty)
    | _ -> false)
  | _ -> false

let pred_unsat schema p =
  List.exists (conjunct_unsat schema) (split_conj p)

(* Distributing a selection into a set-operation branch is only legal when
   the predicate stays well-typed against that branch's (narrower) schema:
   a union of heterogeneous columns types as the join of its branch types,
   so a predicate fine above the union (e.g. [x <> 56] over an
   active-domain column) can be ill-typed inside a single branch. *)
let pred_typed env p e =
  let schema = Typecheck.infer env e in
  (* an unsatisfiable predicate (incompatible [=]) is fine to push: the
     branch select is erased as statically dead by the rule above *)
  pred_unsat schema p
  ||
  match Typecheck.check_pred schema p with
  | () -> true
  | exception Typecheck.Type_error _ -> false

(* The canonical empty relation with the same schema as [e].  [Ast.Empty]
   is a zero-cost literal: evaluators produce an empty relation without
   touching [e] (the old encoding, [Diff (e, e)], evaluated [e] twice). *)
let empty_of e = Ast.Empty e

let rec is_empty_expr = function
  | Ast.Empty _ -> true
  | Ast.Diff (a, b) when Ast.equal a b -> true
  | Ast.Select (_, e) | Ast.Project (_, e) | Ast.Rename (_, e) ->
    is_empty_expr e
  | Ast.Product (a, b) | Ast.Join (a, b) | Ast.Theta_join (_, a, b) ->
    is_empty_expr a || is_empty_expr b
  | Ast.Inter (a, b) -> is_empty_expr a || is_empty_expr b
  | Ast.Union (a, b) -> is_empty_expr a && is_empty_expr b
  | _ -> false

(** One bottom-up simplification pass.  Rules:
    - cascade selections: σp(σq(e)) → σ(p∧q)(e)
    - selection over product/theta-join: push conjuncts to the side that
      covers them; conjuncts spanning both sides fold into a theta join
    - selection over union/diff/intersect distributes
    - projection cascade: π_a(π_b(e)) → π_a(e)
    - identity projection removed
    - σtrue(e) → e *)
let rec pass env (e : Ast.t) : Ast.t =
  match e with
  | Ast.Rel _ -> e
  | Ast.Empty e1 -> Ast.Empty (pass env e1)
  | Ast.Select (Ast.Ptrue, e1) -> pass env e1
  | Ast.Select (p, e1) when pred_unsat (Typecheck.infer env e1) p ->
    (* a statically dead branch; [Diff (x, x)] is the empty relation of
       x's schema, and the union rules below erase it entirely *)
    empty_of (pass env e1)
  | Ast.Union (a, b) ->
    let a' = pass env a and b' = pass env b in
    if is_empty_expr a' then b'
    else if is_empty_expr b' then a'
    else Ast.Union (a', b')
  | Ast.Diff (a, b) ->
    let a' = pass env a and b' = pass env b in
    if is_empty_expr b' then a' else Ast.Diff (a', b')
  | Ast.Select (p, Ast.Select (q, e1)) ->
    pass env (Ast.Select (Ast.pred_and p q, e1))
  | Ast.Select (p, Ast.Union (a, b))
    when pred_typed env p a && pred_typed env p b ->
    Ast.Union (pass env (Ast.Select (p, a)), pass env (Ast.Select (p, b)))
  | Ast.Select (p, Ast.Diff (a, b))
    when pred_typed env p a && pred_typed env p b ->
    Ast.Diff (pass env (Ast.Select (p, a)), pass env (Ast.Select (p, b)))
  | Ast.Select (p, Ast.Inter (a, b))
    when pred_typed env p a && pred_typed env p b ->
    Ast.Inter (pass env (Ast.Select (p, a)), pass env (Ast.Select (p, b)))
  | Ast.Select (p, (Ast.Product (a, b) | Ast.Theta_join (_, a, b) as inner)) ->
    let base_pred =
      match inner with Ast.Theta_join (q, _, _) -> split_conj q | _ -> []
    in
    let conjuncts = split_conj p @ base_pred in
    let la = attrs env a and lb = attrs env b in
    let on_a, rest =
      List.partition (fun c -> subset (Ast.pred_attrs c) la) conjuncts
    in
    let on_b, cross =
      List.partition (fun c -> subset (Ast.pred_attrs c) lb) rest
    in
    let wrap side = function
      | [] -> pass env side
      | ps -> pass env (Ast.Select (Ast.pred_conj ps, side))
    in
    let a' = wrap a on_a and b' = wrap b on_b in
    (match cross with
    | [] -> Ast.Product (a', b')
    | ps -> Ast.Theta_join (Ast.pred_conj ps, a', b'))
  | Ast.Select (p, e1) -> Ast.Select (p, pass env e1)
  | Ast.Project (outer, Ast.Project (_, e1)) ->
    pass env (Ast.Project (outer, e1))
  | Ast.Project (names, e1) ->
    if names = attrs env e1 then pass env e1
    else Ast.Project (names, pass env e1)
  | Ast.Rename (pairs, e1) ->
    let kept = List.filter (fun (a, b) -> a <> b) pairs in
    if kept = [] then pass env e1 else Ast.Rename (kept, pass env e1)
  | Ast.Product (a, b) -> Ast.Product (pass env a, pass env b)
  | Ast.Join (a, b) -> Ast.Join (pass env a, pass env b)
  | Ast.Theta_join (p, a, b) ->
    pass env (Ast.Select (p, Ast.Product (pass env a, pass env b)))
  | Ast.Inter (a, b) -> Ast.Inter (pass env a, pass env b)
  | Ast.Division (a, b) -> Ast.Division (pass env a, pass env b)

(** Iterate {!pass} to a fixpoint (bounded, the rules terminate quickly). *)
let optimize ?(max_rounds = 10) env e =
  let rec go n e =
    if n = 0 then e
    else
      let e' = pass env e in
      if Ast.equal e' e then e else go (n - 1) e'
  in
  go max_rounds e

let optimize_db db e = optimize (Typecheck.env_of_database db) e

(** Detect an equality theta-join that a natural join could express after a
    rename — a purely structural statistic surfaced by the survey bench. *)
let rec count_equijoins = function
  | Ast.Rel _ -> 0
  | Ast.Empty e | Ast.Select (_, e) | Ast.Project (_, e) | Ast.Rename (_, e) ->
    count_equijoins e
  | Ast.Theta_join (p, a, b) ->
    let is_eq = function Ast.Cmp (Diagres_logic.Fol.Eq, Ast.Attr _, Ast.Attr _) -> true | _ -> false in
    (if List.exists is_eq (split_conj p) then 1 else 0)
    + count_equijoins a + count_equijoins b
  | Ast.Join (a, b) -> 1 + count_equijoins a + count_equijoins b
  | Ast.Product (a, b) | Ast.Union (a, b) | Ast.Inter (a, b)
  | Ast.Diff (a, b) | Ast.Division (a, b) ->
    count_equijoins a + count_equijoins b
