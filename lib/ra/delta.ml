(** Differential evaluation over the physical plan algebra: maintain a
    registered (materialized) query under batched inserts and deletes
    instead of re-running its plan.

    This generalizes the semi-naive delta machinery of the Datalog
    fixpoint ({!Diagres_datalog.Fixpoint}) — which rewrites each rule into
    per-predicate delta variants — to every operator {!Plan} executes.  A
    maintenance round propagates a {e signed set delta} [(Δ⁺, Δ⁻)] from
    the updated base relations to the root, one rule per operator:

    - {b scan}: the normalized delta {!Diagres_data.Database.apply_delta}
      reports for that relation;
    - {b filter} σp: [σp Δ⁺, σp Δ⁻] — stateless; large deltas run the
      vectorized selection kernels via an ephemeral plan node;
    - {b project} π: {e support counts} — a per-view table mapping each
      output tuple to the number of input tuples projecting onto it.
      Under set semantics a delete may not retract an output tuple that
      other inputs still support; an output insert fires on the 0→1
      transition, a retraction on 1→0.  (This is the one operator whose
      output multiplicity is unbounded, hence the one needing real
      counts.)
    - {b hash/nl join}: Δ(L ⋈ R) = ΔL ⋈ R_old ∪ L_new ⋈ ΔR, evaluated by
      {e ephemeral} join nodes over the delta and the maintained inputs
      ({!Plan.exec_fresh}), so the existing kernels — including the
      per-relation cached join-side indexes — do the work.  The hash join
      probes the delta side and builds (or reuses the cached index) on
      the stable side; when only one input changes, each round is O(|Δ|)
      after the first.  Join outputs are injective in the (left, right)
      row pair (every dropped right key column equals a kept left one),
      so no support counts are needed: the two candidate sets cancel
      signed overlaps by set difference.
    - {b union/intersect/minus}: membership probes of the (small) child
      deltas against the maintained child results — the support count of
      an output tuple is its presence count across the two children, so
      probes decide retraction exactly;
    - {b division}: a divisor delta (or an empty divisor) recomputes the
      node from the maintained children; a dividend-only delta rechecks
      just the candidate groups whose keep-part appears in the delta.

    {b Where state lives.}  All differential state — maintained per-node
    results, projection support counts — belongs to the view (this [t]),
    {e never} to plan nodes: plans are shared through the LRU plan cache,
    and any ad-hoc {!Plan.run} of the same plan resets the per-evaluation
    node memos.  {!init} runs the plan once and snapshots every needed
    node result into the view; {!maintain} reads and writes only this
    view's state plus freshly built ephemeral nodes, so concurrent reuse
    of the registered plan cannot corrupt maintenance.  Intermediate
    results are snapshotted only where a rule above reads them (join and
    set-op inputs, division, the root); pure filter/project chains keep
    no intermediates. *)

module D = Diagres_data
module R = D.Relation
module T = Diagres_telemetry.Telemetry

let c_delta_rows = T.counter "view.delta_rows"
let c_recompute_avoided = T.counter "view.recompute_avoided"
let h_maintain = T.histogram "view.maintain_ns"

(* Support-count tables key on output tuples under Tuple.compare equality
   (Int 2 and Float 2. are the same tuple cell, as everywhere else). *)
module TH = Hashtbl.Make (struct
  type t = D.Tuple.t

  let equal a b = D.Tuple.compare a b = 0

  let hash t =
    Array.fold_left
      (fun acc v -> ((acc * 31) + D.Value.hash v) land max_int)
      17 t
end)

type state = {
  mutable current : R.t option;
      (** maintained result of this node; [None] for nodes no delta rule
          reads (pure filter/project chains between snapshots) *)
  support : int TH.t option;  (** projection support counts *)
}

type t = {
  plan : Plan.t;
  states : (int, state) Hashtbl.t;  (** by node id *)
  mutable result : R.t;             (** maintained root result *)
  mutable rounds : int;             (** maintenance rounds applied *)
}

(** One node's contribution to a maintenance round.  [ins]/[del] are
    normalized against the node's previous result: inserts genuinely new,
    deletes genuinely retracted, disjoint.  [old_]/[cur] are the
    maintained results before/after the round, present only for nodes
    whose parents read them. *)
type round = { ins : R.t; del : R.t; old_ : R.t option; cur : R.t option }

type report = { result : R.t; root_inserts : int; root_deletes : int }

(* ---------------- which nodes keep maintained results ---------------- *)

(* A node's maintained result is read by: the root (it *is* the view),
   join and set-operation rules (membership probes and delta joins
   against the sibling), and division (its own old result and both
   children).  Relabel derives its result by renaming its child's, so a
   needed relabel needs its child.  Scans always track the base relation
   (sharing the database binding — no extra storage). *)
let mark_needed (root : Plan.t) : (int, unit) Hashtbl.t =
  let needed = Hashtbl.create 16 in
  let rec need (n : Plan.t) =
    if not (Hashtbl.mem needed n.Plan.id) then begin
      Hashtbl.add needed n.Plan.id ();
      match n.Plan.op with Plan.Relabel c -> need c | _ -> ()
    end
  in
  need root;
  Plan.fold_unique
    (fun (n : Plan.t) () ->
      match n.Plan.op with
      | Plan.Scan _ -> need n
      | Plan.Hash_join j ->
        need j.Plan.left;
        need j.Plan.right
      | Plan.Nl_join (_, a, b)
      | Plan.Union (a, b)
      | Plan.Inter (a, b)
      | Plan.Diff (a, b) ->
        need a;
        need b
      | Plan.Division (a, b) ->
        need n;
        need a;
        need b
      | _ -> ())
    root ();
  needed

(* ---------------- initialization ---------------- *)

let proj_of idx (t : D.Tuple.t) = Array.map (fun i -> t.(i)) idx

let bump tb u k =
  let c = (match TH.find_opt tb u with Some c -> c | None -> 0) + k in
  if c = 0 then TH.remove tb u else TH.replace tb u c;
  c

(** Run the plan once (through {!Plan.run}, so the per-node memos are
    freshly filled) and snapshot the node results and projection support
    counts into view-owned state. *)
let init (plan : Plan.t) : t =
  let result = Plan.run plan in
  let needed = mark_needed plan in
  let states = Hashtbl.create 32 in
  Plan.fold_unique
    (fun (n : Plan.t) () ->
      let cached c =
        match c.Plan.cache with
        | Some r -> r
        | None -> assert false (* Plan.run executed every reachable node *)
      in
      let support =
        match n.Plan.op with
        | Plan.Project (idx, c) ->
          let tb = TH.create 64 in
          R.iter (fun tup -> ignore (bump tb (proj_of idx tup) 1)) (cached c);
          Some tb
        | _ -> None
      in
      Hashtbl.add states n.Plan.id
        { current =
            (if Hashtbl.mem needed n.Plan.id then Some (cached n) else None);
          support })
    plan ();
  { plan; states; result; rounds = 0 }

let result (t : t) = t.result
let rounds (t : t) = t.rounds

(* ---------------- ephemeral delta nodes ---------------- *)

(* Delta plans are assembled from *fresh* nodes wrapping the delta and
   maintained relations, and executed with Plan.exec_fresh: they never
   alias the registered plan's nodes, so its per-evaluation memos — which
   any plan-cache user may reset at any time — stay irrelevant here. *)

let unit_dist (schema : D.Schema.t) = Array.make (D.Schema.arity schema) 1.

let scan_of (r : R.t) : Plan.t =
  Plan.mk
    (Plan.Scan ("delta", r))
    (R.schema r)
    (float_of_int (R.cardinality r))
    (unit_dist (R.schema r))

(* σp over a delta; a delta that clears the vectorized threshold runs the
   columnar selection kernels unchanged (delta batches are ordinary
   canonical batches). *)
let run_filter (schema : D.Schema.t) (p : Plan.pred) (rel : R.t) : R.t =
  if R.is_empty rel then rel
  else if !Plan.columnar_enabled && R.cardinality rel >= !Plan.vec_threshold
  then begin
    let node = Plan.mk (Plan.Filter (p, scan_of rel)) schema 0. (unit_dist schema) in
    node.Plan.vec <- true;
    Plan.exec_fresh node
  end
  else R.filter p.Plan.holds rel

(* ΔL ⋈ R (probe the delta on the left, build — or reuse the cached
   per-relation index — on the right). *)
let hash_join_delta (n : Plan.t) (j : Plan.hash_join) ~(probe : R.t)
    ~(build : R.t) : R.t =
  if R.is_empty probe || R.is_empty build then R.empty n.Plan.schema
  else
    Plan.exec_fresh
      (Plan.mk
         (Plan.Hash_join
            { j with Plan.left = scan_of probe; right = scan_of build })
         n.Plan.schema 0. (unit_dist n.Plan.schema))

(* L ⋈ ΔR with the sides swapped so the *delta* is probed and the stable
   left input carries the cached index: the ephemeral join computes
   ΔR_full ++ L_rest, whose columns are then reordered into the original
   output schema (every left key column equals its right key partner on a
   matched row, so left keys are recovered from the right side), and the
   residual predicate — compiled against the original output schema —
   runs after the reorder. *)
let hash_join_delta_swapped (n : Plan.t) (j : Plan.hash_join)
    ~(probe : R.t) ~(build : R.t) : R.t =
  if R.is_empty probe || R.is_empty build then R.empty n.Plan.schema
  else begin
    let arity_l = D.Schema.arity j.Plan.left.Plan.schema in
    let arity_r = D.Schema.arity j.Plan.right.Plan.schema in
    let is_lkey p = Array.exists (fun q -> q = p) j.Plan.lkey in
    let l_rest =
      Array.of_list
        (List.filter (fun p -> not (is_lkey p)) (List.init arity_l Fun.id))
    in
    let swapped_schema =
      j.Plan.right.Plan.schema
      @ List.map
          (fun p -> List.nth j.Plan.left.Plan.schema p)
          (Array.to_list l_rest)
    in
    let swapped =
      Plan.mk
        (Plan.Hash_join
           { Plan.left = scan_of probe;
             right = scan_of build;
             lkey = Array.of_list j.Plan.rkey;
             rkey = Array.to_list j.Plan.lkey;
             right_rest = l_rest;
             residual = None })
        swapped_schema 0. (unit_dist swapped_schema)
    in
    let joined = Plan.exec_fresh swapped in
    (* positions in the swapped output for each column of n.schema *)
    let rkey = Array.of_list j.Plan.rkey in
    let rank_in_rest p =
      let r = ref 0 in
      Array.iteri (fun k q -> if q = p then r := k) l_rest;
      !r
    in
    let out_idx =
      Array.init (D.Schema.arity n.Plan.schema) (fun p ->
          if p < arity_l then begin
            match Array.find_index (fun q -> q = p) j.Plan.lkey with
            | Some k -> rkey.(k) (* left key = matched right key column *)
            | None -> arity_r + rank_in_rest p
          end
          else j.Plan.right_rest.(p - arity_l))
    in
    let reordered = R.map n.Plan.schema (proj_of out_idx) joined in
    match j.Plan.residual with
    | None -> reordered
    | Some p -> R.filter p.Plan.holds reordered
  end

(* ΔA × B (or A × ΔB), filtered during enumeration — cost is the product
   of the two sides either way, so no swapping is needed. *)
let nl_join_delta (n : Plan.t) (p : Plan.pred option) (da : R.t) (rb : R.t) :
    R.t =
  if R.is_empty da || R.is_empty rb then R.empty n.Plan.schema
  else
    Plan.exec_fresh
      (Plan.mk
         (Plan.Nl_join (p, scan_of da, scan_of rb))
         n.Plan.schema 0. (unit_dist n.Plan.schema))

(* ---------------- maintenance ---------------- *)

let empty_of (n : Plan.t) = R.empty n.Plan.schema

(* Signed cancellation: a tuple may surface as both an insert and a
   delete candidate (e.g. a join pair built from a new left and a deleted
   right row); the net delta is the set difference each way. *)
let combine_signed ins del =
  if R.is_empty ins || R.is_empty del then (ins, del)
  else (R.diff ins del, R.diff del ins)

let runion a b =
  if R.is_empty a then b else if R.is_empty b then a else R.union a b

(* Membership in a sibling's *previous* result, reconstructed from its
   round (new result minus its inserts, plus its deletes). *)
let mem_in_old tup (r : round) =
  (R.mem tup (Option.get r.cur) && not (R.mem tup r.ins))
  || R.mem tup r.del

let mem_in_cur tup (r : round) = R.mem tup (Option.get r.cur)

let maintain (t : t) (updates : (string * R.t * R.t * R.t) list) : report =
  let t0 = T.now_ns () in
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun (name, rel, ins, del) -> Hashtbl.replace by_name name (rel, ins, del))
    updates;
  let state (n : Plan.t) = Hashtbl.find t.states n.Plan.id in
  let memo : (int, round) Hashtbl.t = Hashtbl.create 32 in
  let rec go (n : Plan.t) : round =
    match Hashtbl.find_opt memo n.Plan.id with
    | Some r -> r
    | None ->
      let r = step n in
      Hashtbl.add memo n.Plan.id r;
      r
  (* Fold the computed delta into the node's maintained result (when one
     is kept), taking the re-normalized deltas as this round's official
     ones — parents then see deltas exact w.r.t. the maintained state by
     construction, not just by the rule's correctness argument. *)
  and finalize (n : Plan.t) ((ins, del) : R.t * R.t) : round =
    let st = state n in
    match st.current with
    | None -> { ins; del; old_ = None; cur = None }
    | Some old_ ->
      let cur, ins', del' = R.apply_delta ~inserts:ins ~deletes:del old_ in
      st.current <- Some cur;
      { ins = ins'; del = del'; old_ = Some old_; cur = Some cur }
  and step (n : Plan.t) : round =
    match n.Plan.op with
    | Plan.Empty ->
      { ins = empty_of n; del = empty_of n; old_ = None; cur = None }
    | Plan.Scan (name, _) ->
      let st = state n in
      let old_ = Option.get st.current in
      (match Hashtbl.find_opt by_name name with
      | None ->
        { ins = R.empty (R.schema old_); del = R.empty (R.schema old_);
          old_ = Some old_; cur = Some old_ }
      | Some (rel, ins, del) ->
        st.current <- Some rel;
        { ins; del; old_ = Some old_; cur = Some rel })
    | Plan.Filter (p, c) ->
      let rc = go c in
      finalize n
        (run_filter n.Plan.schema p rc.ins, run_filter n.Plan.schema p rc.del)
    | Plan.Project (idx, c) ->
      let rc = go c in
      let tb = Option.get (state n).support in
      (* order-independent: remember each touched output's pre-round
         count, then classify by the (before, after) sign pair *)
      let before = TH.create 16 in
      let touch u =
        if not (TH.mem before u) then
          TH.add before u
            (match TH.find_opt tb u with Some c -> c | None -> 0)
      in
      R.iter
        (fun tup ->
          let u = proj_of idx tup in
          touch u;
          ignore (bump tb u 1))
        rc.ins;
      R.iter
        (fun tup ->
          let u = proj_of idx tup in
          touch u;
          ignore (bump tb u (-1)))
        rc.del;
      let ins = ref [] and del = ref [] in
      TH.iter
        (fun u was ->
          let now = match TH.find_opt tb u with Some c -> c | None -> 0 in
          if was = 0 && now > 0 then ins := u :: !ins
          else if was > 0 && now = 0 then del := u :: !del)
        before;
      finalize n
        (R.of_tuples n.Plan.schema !ins, R.of_tuples n.Plan.schema !del)
    | Plan.Relabel c ->
      let rc = go c in
      let names = D.Schema.names n.Plan.schema in
      let rn = R.rename_all names in
      let st = state n in
      let old_ = Option.map rn rc.old_ and cur = Option.map rn rc.cur in
      if Option.is_some st.current then st.current <- cur;
      { ins = rn rc.ins; del = rn rc.del; old_; cur }
    | Plan.Hash_join j ->
      let rl = go j.Plan.left and rr = go j.Plan.right in
      (* Δ(L ⋈ R) = ΔL ⋈ R_old ∪ L_new ⋈ ΔR: with a single-sided update
         stream the stable side's cached index persists across rounds,
         making each round O(|Δ| · fanout) *)
      let l_old = Option.get rl.old_ and l_cur = Option.get rl.cur in
      let r_old = Option.get rr.old_ in
      ignore l_old;
      let ins_cand =
        runion
          (hash_join_delta n j ~probe:rl.ins ~build:r_old)
          (hash_join_delta_swapped n j ~probe:rr.ins ~build:l_cur)
      in
      let del_cand =
        runion
          (hash_join_delta n j ~probe:rl.del ~build:r_old)
          (hash_join_delta_swapped n j ~probe:rr.del ~build:l_cur)
      in
      finalize n (combine_signed ins_cand del_cand)
    | Plan.Nl_join (p, a, b) ->
      let ra = go a and rb = go b in
      let b_old = Option.get rb.old_ and a_cur = Option.get ra.cur in
      let ins_cand =
        runion (nl_join_delta n p ra.ins b_old) (nl_join_delta n p a_cur rb.ins)
      in
      let del_cand =
        runion (nl_join_delta n p ra.del b_old) (nl_join_delta n p a_cur rb.del)
      in
      finalize n (combine_signed ins_cand del_cand)
    | Plan.Union (a, b) ->
      let ra = go a and rb = go b in
      (* an insert is new to the union iff the sibling didn't already
         hold it; a delete retracts iff the sibling no longer holds it —
         the support count of an output tuple is its presence count
         across the two children, probed rather than stored *)
      let ins =
        runion
          (R.filter (fun tup -> not (mem_in_old tup rb)) ra.ins)
          (R.filter (fun tup -> not (mem_in_old tup ra)) rb.ins)
      in
      let del =
        runion
          (R.filter (fun tup -> not (mem_in_cur tup rb)) ra.del)
          (R.filter (fun tup -> not (mem_in_cur tup ra)) rb.del)
      in
      finalize n (ins, del)
    | Plan.Inter (a, b) ->
      let ra = go a and rb = go b in
      let ins =
        runion
          (R.filter (fun tup -> mem_in_cur tup rb) ra.ins)
          (R.filter (fun tup -> mem_in_cur tup ra) rb.ins)
      in
      let del =
        runion
          (R.filter (fun tup -> mem_in_old tup rb) ra.del)
          (R.filter (fun tup -> mem_in_old tup ra) rb.del)
      in
      finalize n (ins, del)
    | Plan.Diff (a, b) ->
      let ra = go a and rb = go b in
      let ins =
        runion
          (R.filter (fun tup -> not (mem_in_cur tup rb)) ra.ins)
          (R.filter (fun tup -> mem_in_cur tup ra) rb.del)
      in
      let del =
        runion
          (R.filter (fun tup -> not (mem_in_old tup rb)) ra.del)
          (R.filter (fun tup -> mem_in_old tup ra) rb.ins)
      in
      finalize n (ins, del)
    | Plan.Division (a, b) ->
      let ra = go a and rb = go b in
      let st = state n in
      let old_ = Option.get st.current in
      let a_cur = Option.get ra.cur and b_cur = Option.get rb.cur in
      if
        (not (R.is_empty rb.ins && R.is_empty rb.del)) || R.is_empty b_cur
      then begin
        (* divisor changed (or is empty, where every dividend group
           qualifies): recompute this node from the maintained children —
           divisors are typically small and rarely updated *)
        let cur = R.division a_cur b_cur in
        st.current <- Some cur;
        { ins = R.diff cur old_; del = R.diff old_ cur;
          old_ = Some old_; cur = Some cur }
      end
      else begin
        (* dividend-only delta: recheck exactly the candidate groups
           whose keep-part appears in the delta *)
        let a_schema = a.Plan.schema in
        let keep_pos =
          Array.of_list
            (List.map
               (fun nm -> D.Schema.index nm a_schema)
               (D.Schema.names n.Plan.schema))
        in
        let div_pos =
          Array.of_list
            (List.map
               (fun nm -> D.Schema.index nm a_schema)
               (D.Schema.names b.Plan.schema))
        in
        let arity_a = D.Schema.arity a_schema in
        let proj_keep = R.map n.Plan.schema (proj_of keep_pos) in
        let cands = runion (proj_keep ra.ins) (proj_keep ra.del) in
        let compose c u =
          let arr = Array.make arity_a D.Value.Null in
          Array.iteri (fun i p -> arr.(p) <- c.(i)) keep_pos;
          Array.iteri (fun k p -> arr.(p) <- u.(k)) div_pos;
          arr
        in
        let in_new c = R.for_all (fun u -> R.mem (compose c u) a_cur) b_cur in
        let ins = R.filter (fun c -> (not (R.mem c old_)) && in_new c) cands in
        let del = R.filter (fun c -> R.mem c old_ && not (in_new c)) cands in
        let cur, ins', del' = R.apply_delta ~inserts:ins ~deletes:del old_ in
        st.current <- Some cur;
        { ins = ins'; del = del'; old_ = Some old_; cur = Some cur }
      end
  in
  let root_round =
    T.with_span ~cat:"view" "view.maintain" (fun () -> go t.plan)
  in
  t.result <- Option.get root_round.cur;
  t.rounds <- t.rounds + 1;
  let root_inserts = R.cardinality root_round.ins
  and root_deletes = R.cardinality root_round.del in
  T.add c_delta_rows (root_inserts + root_deletes);
  T.incr c_recompute_avoided;
  T.observe h_maintain (Int64.to_float (Int64.sub (T.now_ns ()) t0));
  { result = t.result; root_inserts; root_deletes }

(* ---------------- memory accounting ---------------- *)

(** Estimated bytes of the view's differential state: the maintained root
    result, every snapshotted intermediate, and the projection
    support-count tables (keys plus table cells) — the substrate of the
    [memory_bytes.delta_state] gauge.  The plan itself is shared with the
    plan cache and not counted here. *)
let memory_bytes (t : t) : int =
  let word = 8 in
  let support_bytes tb =
    TH.fold
      (fun k _ acc -> acc + D.Tuple.memory_bytes k + (5 * word))
      tb 0
  in
  let state_bytes _ (st : state) acc =
    let cur =
      match st.current with Some r -> R.memory_bytes r | None -> 0
    in
    let sup = match st.support with Some tb -> support_bytes tb | None -> 0 in
    acc + cur + sup
  in
  R.memory_bytes t.result + Hashtbl.fold state_bytes t.states 0
