(** RA evaluator over the in-memory relation substrate. *)

module D = Diagres_data

exception Eval_error of string

let operand_value schema tup = function
  | Ast.Const v -> v
  | Ast.Attr a -> D.Tuple.field schema a tup

let rec pred_holds schema tup = function
  | Ast.Cmp (op, a, b) ->
    Diagres_logic.Fol.cmp_eval op
      (operand_value schema tup a)
      (operand_value schema tup b)
  | Ast.And (p, q) -> pred_holds schema tup p && pred_holds schema tup q
  | Ast.Or (p, q) -> pred_holds schema tup p || pred_holds schema tup q
  | Ast.Not p -> not (pred_holds schema tup p)
  | Ast.Ptrue -> true

let rec eval db (e : Ast.t) : D.Relation.t =
  match e with
  | Ast.Rel r -> (
    match D.Database.find_opt r db with
    | Some rel -> rel
    | None -> raise (Eval_error ("unknown relation " ^ r)))
  | Ast.Empty e ->
    (* zero-cost: only the schema of [e] is needed, never its tuples *)
    D.Relation.empty (Typecheck.infer (Typecheck.env_of_database db) e)
  | Ast.Select (p, e) ->
    let rel = eval db e in
    let schema = D.Relation.schema rel in
    D.Relation.filter (fun t -> pred_holds schema t p) rel
  | Ast.Project (attrs, e) -> D.Relation.project attrs (eval db e)
  | Ast.Rename (pairs, e) ->
    let rel = eval db e in
    let schema = D.Relation.schema rel in
    let names =
      List.map
        (fun (a : D.Schema.attribute) ->
          match List.assoc_opt a.D.Schema.name pairs with
          | Some fresh -> fresh
          | None -> a.D.Schema.name)
        schema
    in
    D.Relation.rename_all names rel
  | Ast.Product (a, b) -> D.Relation.product (eval db a) (eval db b)
  | Ast.Join (a, b) -> D.Relation.natural_join (eval db a) (eval db b)
  | Ast.Theta_join (p, a, b) ->
    (* filter while enumerating the product: only matching pairs are ever
       materialized, instead of the full |a|·|b| cartesian product *)
    let ra = eval db a and rb = eval db b in
    let schema =
      D.Schema.concat_disjoint (D.Relation.schema ra) (D.Relation.schema rb)
    in
    let matches =
      D.Relation.fold
        (fun ta acc ->
          D.Relation.fold
            (fun tb acc ->
              let t = D.Tuple.concat ta tb in
              if pred_holds schema t p then t :: acc else acc)
            rb acc)
        ra []
    in
    D.Relation.of_tuples schema matches
  | Ast.Union (a, b) -> D.Relation.union (eval db a) (eval db b)
  | Ast.Inter (a, b) -> D.Relation.inter (eval db a) (eval db b)
  | Ast.Diff (a, b) -> D.Relation.diff (eval db a) (eval db b)
  | Ast.Division (a, b) -> D.Relation.division (eval db a) (eval db b)

(** Evaluate through the cost-based physical planner ({!Planner}): logical
    rewrites, hash equi-joins over the cached indexes, greedy join
    ordering, compiled predicates, memoized shared subtrees, and — above
    the morsel threshold — parallel physical operators over the domain
    pool.  The plan itself is served from the LRU {!Plan_cache} (keyed on
    the canonicalized AST and the database stamp), so a repeated query
    skips optimize + plan entirely; {!Plan.run} resets the per-node memos
    first, making reuse observationally identical to planning afresh.
    Agrees with the tree-walking {!eval} (property-tested); [eval] remains
    as the naive reference. *)
let eval_planned db e =
  let module T = Diagres_telemetry.Telemetry in
  (* reject ill-typed queries with a proper diagnostic before the planner
     sees them — plan construction assumes a well-typed tree and crashes
     with unlocated Invalid_argument/Schema_error otherwise *)
  T.with_span ~cat:"phase" "typecheck" (fun () ->
      ignore (Typecheck.infer (Typecheck.env_of_database db) e));
  let plan, _cached = Plan_cache.find_or_plan db e in
  Plan.run plan
