(** Relational Algebra in the named perspective — the procedural backbone the
    tutorial maps "dataflow style" visual languages (DFQL and friends) onto.

    Operators: selection σ, projection π, renaming ρ, cartesian product ×,
    natural join ⋈, theta join, set union/intersection/difference, and
    relational division ÷ (derivable, but kept primitive because Q3 and the
    QBE discussion center on it). *)

type operand =
  | Attr of string                       (** attribute reference *)
  | Const of Diagres_data.Value.t        (** literal *)

(** Selection predicates: comparisons composed with ∧ ∨ ¬. *)
type pred =
  | Cmp of Diagres_logic.Fol.cmp * operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Ptrue

type t =
  | Rel of string                        (** base relation *)
  | Empty of t
      (** the empty relation with the schema of the carried expression,
          which is never evaluated — the zero the optimizer's dead-branch
          pruning produces (formerly the twice-evaluated [Diff (e, e)]) *)
  | Select of pred * t                   (** σ_pred *)
  | Project of string list * t           (** π_attrs *)
  | Rename of (string * string) list * t (** ρ old→new, simultaneous *)
  | Product of t * t                     (** × (disjoint attributes) *)
  | Join of t * t                        (** natural join ⋈ *)
  | Theta_join of pred * t * t           (** ⋈_pred *)
  | Union of t * t
  | Inter of t * t
  | Diff of t * t
  | Division of t * t                    (** ÷ *)

let rel name = Rel name
let select p e = Select (p, e)
let project attrs e = Project (attrs, e)
let rename pairs e = Rename (pairs, e)
let join a b = Join (a, b)
let union a b = Union (a, b)
let diff a b = Diff (a, b)

let attr a = Attr a
let const v = Const (v : Diagres_data.Value.t)
let cint n = Const (Diagres_data.Value.Int n)
let cstr s = Const (Diagres_data.Value.String s)
let eq a b = Cmp (Diagres_logic.Fol.Eq, a, b)

let pred_and a b =
  match (a, b) with Ptrue, p | p, Ptrue -> p | _ -> And (a, b)

let pred_conj = List.fold_left pred_and Ptrue

(** Base relations mentioned, with multiplicity (a proxy for the "number of
    table occurrences" that the QBE/Datalog comparison counts). *)
let rec base_relations = function
  | Rel r -> [ r ]
  | Empty e | Select (_, e) | Project (_, e) | Rename (_, e) ->
    base_relations e
  | Product (a, b) | Join (a, b) | Theta_join (_, a, b)
  | Union (a, b) | Inter (a, b) | Diff (a, b) | Division (a, b) ->
    base_relations a @ base_relations b

(** Number of operator nodes — the complexity measure used in benches. *)
let rec size = function
  | Rel _ -> 1
  | Empty e | Select (_, e) | Project (_, e) | Rename (_, e) -> 1 + size e
  | Product (a, b) | Join (a, b) | Theta_join (_, a, b)
  | Union (a, b) | Inter (a, b) | Diff (a, b) | Division (a, b) ->
    1 + size a + size b

let rec pred_attrs = function
  | Cmp (_, a, b) ->
    List.filter_map (function Attr x -> Some x | Const _ -> None) [ a; b ]
  | And (a, b) | Or (a, b) -> pred_attrs a @ pred_attrs b
  | Not p -> pred_attrs p
  | Ptrue -> []

(** Structural equality modulo nothing — plain AST equality, exposed to make
    intent explicit at call sites. *)
let equal (a : t) (b : t) = a = b
