(** Recursive-descent parser for the ASCII RA syntax printed by
    {!Pretty.ascii}.

    Grammar (lowest precedence first):
    {v
    expr    := term (("union" | "intersect" | "minus") term)*
    term    := factor (("join" ["[" pred "]"] | "*" | "div") factor)*
    factor  := relname
             | ("select"|"sigma")  "[" pred "]" "(" expr ")"
             | ("project"|"pi")    "[" attrs "]" "(" expr ")"
             | ("rename"|"rho")    "[" renames "]" "(" expr ")"
             | "empty" "(" expr ")"
             | "(" expr ")"
    pred    := disj ; disj := conj ("or" conj)* ; conj := atom ("and" atom)*
    atom    := "not" atom | "true" | "(" pred ")" | operand cmp operand
    v} *)

module S = Diagres_parsekit.Stream

exception Parse_error = S.Parse_error

let keywords =
  [ "select"; "sigma"; "project"; "pi"; "rename"; "rho"; "join"; "union";
    "intersect"; "minus"; "div"; "and"; "or"; "not"; "true"; "empty" ]

let operand s : Ast.operand =
  match S.peek s with
  | Diagres_parsekit.Lexer.Ident x when not (List.mem x keywords) ->
    S.advance s;
    Ast.Attr x
  | _ -> Ast.Const (S.value s)

let rec pred s : Ast.pred =
  let a = conj s in
  if S.eat_kw s "or" then Ast.Or (a, pred s) else a

and conj s =
  let a = atom s in
  if S.eat_kw s "and" then Ast.And (a, conj s) else a

and atom s =
  if S.eat_kw s "not" then Ast.Not (atom s)
  else if S.eat_kw s "true" then Ast.Ptrue
  else if S.at_sym s "(" then begin
    S.expect_sym s "(";
    let p = pred s in
    S.expect_sym s ")";
    p
  end
  else begin
    let a = operand s in
    match S.cmp_op s with
    | Some op -> Ast.Cmp (op, a, operand s)
    | None -> S.error s "expected comparison operator"
  end

(* empty list allowed: [project[]] is the nullary (Boolean) projection *)
let attr_list s =
  if S.at_sym s "]" then []
  else S.sep_list1 s ~sep:"," (fun s -> S.ident_not s keywords)

let rename_list s =
  S.sep_list1 s ~sep:"," (fun s ->
      let a = S.ident_not s keywords in
      S.expect_sym s "->";
      let b = S.ident_not s keywords in
      (a, b))

let rec expr s : Ast.t =
  let a = ref (term s) in
  let rec go () =
    if S.eat_kw s "union" then (a := Ast.Union (!a, term s); go ())
    else if S.eat_kw s "intersect" then (a := Ast.Inter (!a, term s); go ())
    else if S.eat_kw s "minus" then (a := Ast.Diff (!a, term s); go ())
  in
  go ();
  !a

and term s =
  let a = ref (factor s) in
  let rec go () =
    if S.eat_kw s "join" then begin
      if S.eat_sym s "[" then begin
        let p = pred s in
        S.expect_sym s "]";
        a := Ast.Theta_join (p, !a, factor s)
      end
      else a := Ast.Join (!a, factor s);
      go ()
    end
    else if S.eat_sym s "*" then (a := Ast.Product (!a, factor s); go ())
    else if S.eat_kw s "div" then (a := Ast.Division (!a, factor s); go ())
  in
  go ();
  !a

and factor s =
  let unary build parse_args =
    S.expect_sym s "[";
    let args = parse_args s in
    S.expect_sym s "]";
    S.expect_sym s "(";
    let e = expr s in
    S.expect_sym s ")";
    build args e
  in
  if S.at_kw s "select" || S.at_kw s "sigma" then begin
    S.advance s;
    unary (fun p e -> Ast.Select (p, e)) pred
  end
  else if S.at_kw s "project" || S.at_kw s "pi" then begin
    S.advance s;
    unary (fun attrs e -> Ast.Project (attrs, e)) attr_list
  end
  else if S.at_kw s "rename" || S.at_kw s "rho" then begin
    S.advance s;
    unary (fun pairs e -> Ast.Rename (pairs, e)) rename_list
  end
  else if S.eat_kw s "empty" then begin
    S.expect_sym s "(";
    let e = expr s in
    S.expect_sym s ")";
    Ast.Empty e
  end
  else if S.at_sym s "(" then begin
    S.expect_sym s "(";
    let e = expr s in
    S.expect_sym s ")";
    e
  end
  else Ast.Rel (S.ident_not s keywords)

let parse src =
  let s = S.make src in
  let e = expr s in
  S.expect_eof s;
  e
