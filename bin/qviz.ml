(* qviz — the query-visualization command line.

   Subcommands:
     qviz show      -l sql -f rd "SELECT ..."        draw a query (ascii/svg)
     qviz translate -l sql -t trc "SELECT ..."       translate between languages
     qviz eval      -l trc "{ ... }"                 evaluate on the sample db
     qviz stats     "SELECT ..."                     engine metrics registry
     qviz catalog                                    the 5 tutorial queries
     qviz survey                                     the Part-5 capability matrix
     qviz syllogisms                                 valid moods via Venn algebra *)

open Cmdliner

let db_arg =
  let doc =
    "Directory of CSV files to use as the database (one relation per \
     file, named after it).  Defaults to the built-in sailors instance."
  in
  Arg.(value & opt (some dir) None & info [ "db" ] ~docv:"DIR" ~doc)

let load_db = function
  | None -> Diagres_data.Sample_db.db
  | Some dir -> Diagres_data.Csv.load_database dir

let schemas_of db =
  List.map
    (fun (n, r) -> (n, Diagres_data.Relation.schema r))
    (Diagres_data.Database.relations db)

let lang_arg =
  let doc = "Query language: sql, ra, trc, drc, datalog." in
  Arg.(value & opt string "sql" & info [ "l"; "lang" ] ~docv:"LANG" ~doc)

let query_arg =
  let doc = "The query text (in the chosen language's concrete syntax)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

(* Outermost error net: every failure — user-triggerable or internal — is
   rendered as a structured diagnostic (code, caret excerpt over the query
   text when located, did-you-mean hints) and mapped to a per-phase exit
   code: resolve 1, parse 2, type/safety 3, data 4, eval 5, internal 70. *)
let handle_errors ?src f =
  match Diagres.Errors.capture_all f with
  | Ok x -> x
  | Error d ->
    let d =
      match src with
      | Some text -> Diagres_diag.Diag.with_source ~text d
      | None -> d
    in
    prerr_string (Diagres_diag.Diag.render d);
    exit (Diagres_diag.Diag.exit_code d)

(* ---------------- telemetry plumbing ---------------- *)

module T = Diagres_telemetry.Telemetry

let trace_arg =
  let doc =
    "Enable telemetry and write the recorded spans as Chrome trace-event \
     JSON to $(docv) on success (loadable in Perfetto or chrome://tracing)."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)

(* Enable tracing when any sink asked for it, run, then write the trace.
   EXPLAIN ANALYZE also turns on per-span allocation/GC accounting — that
   is the sink that displays it — so the annotated plan shows per-operator
   allocation next to wall time. *)
let with_telemetry ?trace ?(analyze = false) f =
  if trace <> None || analyze then T.set_enabled true;
  if analyze then T.set_alloc_enabled true;
  let r = f () in
  (match trace with
  | Some path ->
    let oc = open_out path in
    output_string oc (T.trace_json ());
    close_out oc;
    Printf.printf "wrote trace to %s\n" path
  | None -> ());
  r

(* One line per completed pipeline-phase span, in execution order. *)
let print_phases () =
  let phases = List.filter (fun s -> s.T.cat = "phase") (T.spans ()) in
  if phases <> [] then
    Printf.printf "phases: %s\n"
      (String.concat "  "
         (List.map
            (fun s -> Printf.sprintf "%s=%.3fms" s.T.name (T.ns_to_ms s.T.dur_ns))
            phases))

(* ---------------- show ---------------- *)

let show_cmd =
  let formalism_arg =
    let doc =
      "Diagram formalism: rd (relational diagram), qv (QueryVis), dfql, \
       qbe, beta, string, cg (conceptual graph)."
    in
    Arg.(value & opt string "rd" & info [ "f"; "formalism" ] ~docv:"F" ~doc)
  in
  let svg_arg =
    let doc = "Write SVG panels to $(docv) (basename; -1.svg, -2.svg, …)." in
    Arg.(value & opt (some string) None & info [ "o"; "svg" ] ~docv:"PATH" ~doc)
  in
  let run dbdir lang formalism svg query =
    handle_errors ~src:query @@ fun () ->
    let db = load_db dbdir in
    let q, r, verified = Diagres.Pipeline.run db lang query formalism in
    List.iteri
      (fun i ascii ->
        if r.Diagres.Pipeline.panel_count > 1 then
          Printf.printf "--- panel %d/%d ---\n" (i + 1) r.Diagres.Pipeline.panel_count;
        print_string ascii)
      r.Diagres.Pipeline.panels_ascii;
    (match svg with
    | Some base ->
      List.iteri
        (fun i doc ->
          let path =
            if r.Diagres.Pipeline.panel_count = 1 then base ^ ".svg"
            else Printf.sprintf "%s-%d.svg" base (i + 1)
          in
          let oc = open_out path in
          output_string oc doc;
          close_out oc;
          Printf.printf "wrote %s\n" path)
        r.Diagres.Pipeline.panels_svg
    | None -> ());
    Printf.printf "round-trip verified on sample db: %b\n" verified;
    ignore q
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Draw a query as a diagram")
    Term.(const run $ db_arg $ lang_arg $ formalism_arg $ svg_arg $ query_arg)

(* ---------------- translate ---------------- *)

let translate_cmd =
  let target_arg =
    let doc = "Target language: ra, trc, drc." in
    Arg.(value & opt string "trc" & info [ "t"; "to" ] ~docv:"LANG" ~doc)
  in
  let run dbdir lang target query =
    handle_errors ~src:query @@ fun () ->
    let db = load_db dbdir in
    let q = Diagres.Languages.parse (Diagres.Languages.of_name lang) query in
    print_endline
      (Diagres.Pipeline.translate_text db q (Diagres.Languages.of_name target))
  in
  Cmd.v
    (Cmd.info "translate" ~doc:"Translate a query between languages")
    Term.(const run $ db_arg $ lang_arg $ target_arg $ query_arg)

(* ---------------- eval ---------------- *)

let domains_arg =
  let doc =
    "Number of domains (OCaml worker threads) the parallel physical \
     operators may use; 1 reproduces the sequential engine exactly.  \
     Defaults to the DIAGRES_DOMAINS environment variable, else the \
     machine's recommended domain count."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let apply_domains = Option.iter Diagres_pool.Pool.set_size

let eval_cmd =
  let explain_arg =
    let doc =
      "Print the physical plan chosen by the cost-based planner (operators, \
       estimated and actual row counts), the domain count, and the \
       plan-cache hit/miss counters before the result.  Non-RA queries \
       are first translated to RA."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let analyze_arg =
    let doc =
      "EXPLAIN ANALYZE: enable telemetry, run the query, and print the \
       physical plan annotated with actual per-operator wall-clock times, \
       row counts next to the planner's estimates (nodes whose estimate \
       is off by more than 10x are flagged), hash-join build/probe split, \
       morsel counts, and a per-phase timing summary."
    in
    Arg.(value & flag & info [ "analyze" ] ~doc)
  in
  let run dbdir lang explain analyze domains trace query =
    handle_errors ~src:query @@ fun () ->
    apply_domains domains;
    with_telemetry ?trace ~analyze @@ fun () ->
    let db = load_db dbdir in
    let q = Diagres.Languages.parse (Diagres.Languages.of_name lang) query in
    if explain || analyze then begin
      let ra = Diagres.Languages.to_ra (schemas_of db) q in
      let plan, cached = Diagres_ra.Plan_cache.find_or_plan db ra in
      let result = Diagres_ra.Plan.run plan in
      (* memory gauges over the post-run state: relation storage, caches,
         plan-cache memos — also sampled onto the trace's counter tracks *)
      Diagres.Views.refresh_memory_gauges db;
      (* explain after exec so every operator line shows actual counts *)
      print_string
        (if analyze then Diagres_ra.Plan.analyze plan
         else Diagres_ra.Plan.explain plan);
      Printf.printf "evaluated %d plan nodes, %d served from the shared-subtree memo\n"
        (Diagres_ra.Plan.total_evals plan)
        (Diagres_ra.Plan.total_hits plan);
      let hits, misses = Diagres_ra.Plan_cache.stats () in
      Printf.printf "domains: %d   plan cache: %s (hits=%d misses=%d)\n"
        (Diagres_pool.Pool.size ())
        (if cached then "hit" else "miss")
        hits misses;
      if analyze then begin
        print_phases ();
        Printf.printf "peak rows resident: %d   memory: relations=%s caches=%s\n"
          (T.gauge_named "exec.peak_rows_resident")
          (T.bytes_to_string
             (float_of_int (T.gauge_named "memory_bytes.relations")))
          (T.bytes_to_string
             (float_of_int
                (T.gauge_named "memory_bytes.index_cache"
                + T.gauge_named "memory_bytes.stats_cache"
                + T.gauge_named "memory_bytes.plan_cache")))
      end;
      print_newline ();
      print_string (Diagres_data.Relation.to_string result)
    end
    else begin
      let r = Diagres.Languages.eval db q in
      if trace <> None then Diagres.Views.refresh_memory_gauges db;
      print_string (Diagres_data.Relation.to_string r)
    end
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a query on the sample sailors database")
    Term.(
      const run $ db_arg $ lang_arg $ explain_arg $ analyze_arg $ domains_arg
      $ trace_arg $ query_arg)

(* ---------------- register / update ---------------- *)

let register_cmd =
  let formalism_arg =
    let doc =
      "Also render the view's diagram in this formalism (rd, qv, dfql, \
       qbe, beta, string, cg) — diagrams depend only on the query, so the \
       rendering is produced once at registration."
    in
    Arg.(
      value & opt (some string) None & info [ "f"; "formalism" ] ~docv:"F" ~doc)
  in
  let run dbdir lang formalism query =
    handle_errors ~src:query @@ fun () ->
    let db = load_db dbdir in
    let reg = Diagres.Views.create db in
    let f = Option.map Diagres.Pipeline.formalism_of_name formalism in
    let v =
      Diagres.Views.register ?formalism:f reg ~name:"view"
        ~lang:(Diagres.Languages.of_name lang)
        ~source:query
    in
    (match v.Diagres.Views.rendering with
    | Some r -> List.iter print_string r.Diagres.Pipeline.panels_ascii
    | None -> ());
    let result = Diagres.Views.result v in
    Printf.printf "registered view (%d rows maintained incrementally)\n"
      (Diagres_data.Relation.cardinality result);
    print_string (Diagres_data.Relation.to_string result)
  in
  Cmd.v
    (Cmd.info "register"
       ~doc:
         "Register a query as an incrementally maintained view: plan it, \
          materialize the result, and (optionally) render its diagram")
    Term.(const run $ db_arg $ lang_arg $ formalism_arg $ query_arg)

let update_cmd =
  let rounds_arg =
    let doc = "Number of update batches to apply." in
    Arg.(value & opt int 5 & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let frac_arg =
    let doc = "Fraction of each touched relation deleted (and re-inserted) per batch." in
    Arg.(value & opt float 0.01 & info [ "frac" ] ~docv:"F" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed for the update stream." in
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc)
  in
  let touch_arg =
    let doc =
      "Comma-separated relations to update each round (sailors schema)."
    in
    Arg.(value & opt string "Reserves" & info [ "touch" ] ~docv:"RELS" ~doc)
  in
  let run dbdir lang domains rounds frac seed touch query =
    handle_errors ~src:query @@ fun () ->
    apply_domains domains;
    let db = load_db dbdir in
    let reg = Diagres.Views.create db in
    let v =
      Diagres.Views.register reg ~name:"view"
        ~lang:(Diagres.Languages.of_name lang)
        ~source:query
    in
    Printf.printf "registered view: %d rows\n"
      (Diagres_data.Relation.cardinality (Diagres.Views.result v));
    let relations = String.split_on_char ',' touch in
    let r = Diagres_data.Generator.rng seed in
    let ms ns = Int64.to_float ns /. 1e6 in
    for round = 1 to rounds do
      let changes =
        Diagres_data.Generator.update_batch ~relations ~frac r
          (Diagres.Views.database reg)
      in
      let t0 = T.now_ns () in
      let stats = Diagres.Views.update reg changes in
      let t1 = T.now_ns () in
      (* the honest alternative: re-plan and re-run against the updated
         database (the stamp changed, so this never hits the view's plan) *)
      let recomputed =
        Diagres_ra.Eval.eval_planned (Diagres.Views.database reg)
          v.Diagres.Views.ra
      in
      let t2 = T.now_ns () in
      let agree =
        Diagres_data.Relation.same_rows recomputed (Diagres.Views.result v)
      in
      let s = List.hd stats in
      let maintain = ms (Int64.sub t1 t0)
      and recompute = ms (Int64.sub t2 t1) in
      Printf.printf
        "round %d: +%d/-%d view rows  maintain %.3f ms  recompute %.3f ms \
         (%.1fx)  agree=%b\n"
        round s.Diagres.Views.inserts s.Diagres.Views.deletes maintain
        recompute
        (recompute /. Float.max 1e-9 maintain)
        agree;
      if not agree then exit 5
    done
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Register a view, stream random insert/delete batches at it, and \
          report maintain-vs-recompute timings per round")
    Term.(
      const run $ db_arg $ lang_arg $ domains_arg $ rounds_arg $ frac_arg
      $ seed_arg $ touch_arg $ query_arg)

(* ---------------- stats ---------------- *)

let stats_cmd =
  let queries_arg =
    let doc =
      "Queries to evaluate (in the language chosen with $(b,-l)) before \
       dumping the metrics registry.  With no queries the five catalog \
       queries are evaluated in their SQL form."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  let json_arg =
    let doc = "Dump the metrics registry as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run dbdir lang domains json trace queries =
    handle_errors @@ fun () ->
    apply_domains domains;
    with_telemetry ?trace @@ fun () ->
    let db = load_db dbdir in
    let lang, queries =
      match queries with
      | [] -> ("sql", List.map (fun e -> e.Diagres.Catalog.sql) Diagres.Catalog.all)
      | qs -> (lang, qs)
    in
    let l = Diagres.Languages.of_name lang in
    List.iter
      (fun qtext ->
        let r = Diagres.Languages.eval db (Diagres.Languages.parse l qtext) in
        if not json then
          Printf.printf "-- %s  (%d rows)\n" qtext
            (Diagres_data.Relation.cardinality r))
      queries;
    (* memory gauges: on the built-in database, register one maintained
       view first so [memory_bytes.delta_state] reflects live differential
       state; a user-supplied --db gets storage/cache accounting only (the
       catalog probe query would not typecheck against its schema) *)
    (match dbdir with
    | None ->
      let reg = Diagres.Views.create db in
      ignore
        (Diagres.Views.register reg ~name:"stats-probe"
           ~lang:(Diagres.Languages.of_name "sql")
           ~source:(List.hd Diagres.Catalog.all).Diagres.Catalog.sql);
      Diagres.Views.refresh_gauges reg
    | Some _ -> Diagres.Views.refresh_memory_gauges db);
    if json then print_endline (T.metrics_json ())
    else begin
      if queries <> [] then print_newline ();
      print_string (T.metrics_to_string ())
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Evaluate queries and dump the engine metrics registry (cache \
          hit/miss counters, pool utilization, histograms)")
    Term.(
      const run $ db_arg $ lang_arg $ domains_arg $ json_arg $ trace_arg
      $ queries_arg)

(* ---------------- catalog ---------------- *)

let catalog_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "== %s: %s ==\n" e.Diagres.Catalog.id
          e.Diagres.Catalog.description;
        Printf.printf "SQL:     %s\n" e.Diagres.Catalog.sql;
        Printf.printf "RA:      %s\n" e.Diagres.Catalog.ra;
        Printf.printf "TRC:     %s\n" e.Diagres.Catalog.trc;
        Printf.printf "DRC:     %s\n" e.Diagres.Catalog.drc;
        Printf.printf "Datalog: %s\n\n" e.Diagres.Catalog.datalog)
      Diagres.Catalog.all
  in
  Cmd.v
    (Cmd.info "catalog" ~doc:"Print the tutorial's five queries in all languages")
    Term.(const run $ const ())

(* ---------------- survey ---------------- *)

let survey_cmd =
  let run () = print_string (Diagres.Survey.to_table ()) in
  Cmd.v
    (Cmd.info "survey" ~doc:"Print the visual-query-system capability matrix")
    Term.(const run $ const ())

(* ---------------- principles ---------------- *)

let principles_cmd =
  let run dbdir lang query =
    handle_errors ~src:query @@ fun () ->
    let schemas = schemas_of (load_db dbdir) in
    let q = Diagres.Languages.parse (Diagres.Languages.of_name lang) query in
    match Diagres.Languages.to_trc_panels schemas q with
    | [] ->
      Diagres_diag.Diag.error ~code:"E-VIZ-004" ~phase:Diagres_diag.Diag.Type
        "query produced no TRC panels"
    | panel :: _ as panels ->
      if List.length panels > 1 then
        Printf.printf "(%d panels; checking the first)\n" (List.length panels);
      print_endline
        (Diagres.Principles.verdict_to_string
           (Diagres.Principles.invertibility_rd panel));
      let rd = Diagres_diagrams.Relational_diagram.of_trc panel in
      let scene =
        (List.hd rd.Diagres_diagrams.Relational_diagram.panels)
          .Diagres_diagrams.Relational_diagram.scene
      in
      print_endline
        (Diagres.Principles.verdict_to_string (Diagres.Principles.economy scene));
      Printf.printf "pattern: %s\n"
        (Diagres.Pattern.canonical_string `Literal panel);
      let c = Diagres.Pattern.complexity panel in
      Printf.printf
        "complexity: %d variables, %d predicates, negation depth %d\n"
        c.Diagres.Pattern.variables c.Diagres.Pattern.predicates
        c.Diagres.Pattern.negation_depth;
      Printf.printf "line roles: %s\n"
        (Diagres_diagrams.Line_abuse.report_to_string
           (Diagres_diagrams.Line_abuse.of_scene scene))
  in
  Cmd.v
    (Cmd.info "principles"
       ~doc:"Check the query-visualization principles on a query")
    Term.(const run $ db_arg $ lang_arg $ query_arg)

(* ---------------- syllogisms ---------------- *)

let syllogisms_cmd =
  let run () =
    let valid =
      List.filter Diagres_diagrams.Syllogism.valid_venn
        Diagres_diagrams.Syllogism.all_moods
    in
    Printf.printf "valid moods (no existential import): %d\n" (List.length valid);
    List.iter
      (fun m ->
        let name =
          List.find_map
            (fun (n, m') ->
              if m' = m then Some n else None)
            Diagres_diagrams.Syllogism.valid_modern
        in
        Printf.printf "  %s%s\n"
          (Diagres_diagrams.Syllogism.mood_to_string m)
          (match name with Some n -> " (" ^ n ^ ")" | None -> ""))
      valid
  in
  Cmd.v
    (Cmd.info "syllogisms" ~doc:"Decide all 256 syllogistic moods with Venn region algebra")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "qviz" ~version:"1.0.0"
       ~doc:"Diagrammatic representations of relational queries")
    [ show_cmd; translate_cmd; eval_cmd; register_cmd; update_cmd; stats_cmd;
      catalog_cmd; survey_cmd; principles_cmd; syllogisms_cmd ]

let () = exit (Cmd.eval main)
