(* The benchmark harness: one section per experiment in DESIGN.md §5.

   The paper is a tutorial and reports no performance tables; its "results"
   are worked examples and qualitative comparisons.  Accordingly each
   experiment below prints the *shape* result the tutorial's narrative
   claims (who needs how many panels/steps/arrows; which readings agree),
   then measures the toolkit's cost for the corresponding operation with
   Bechamel.  EXPERIMENTS.md records the outcomes. *)

open Bechamel
open Toolkit
module T = Diagres_telemetry.Telemetry

let db = Diagres_data.Sample_db.db

let schemas =
  List.map
    (fun (n, r) -> (n, Diagres_data.Relation.schema r))
    (Diagres_data.Database.relations db)

let hr title =
  Printf.printf "\n================ %s ================\n" title

(* ------------------------------------------------------------------ *)
(* Shape tables (printed before timing).                                *)

let e1_table () =
  hr "E1  five queries x five languages (agreement + answer sizes)";
  Printf.printf "%-4s %-52s %s\n" "id" "description" "rows  agree";
  List.iter
    (fun e ->
      let results = Diagres.Catalog.eval_all db e in
      let _, first = List.hd results in
      let agree =
        List.for_all
          (fun (_, r) -> Diagres_data.Relation.same_rows first r)
          results
      in
      Printf.printf "%-4s %-52s %4d  %b\n" e.Diagres.Catalog.id
        e.Diagres.Catalog.description
        (Diagres_data.Relation.cardinality first)
        agree)
    Diagres.Catalog.all

let e2_table () =
  hr "E2  syllogisms by Venn region algebra";
  let valid =
    List.filter Diagres_diagrams.Syllogism.valid_venn
      Diagres_diagrams.Syllogism.all_moods
  in
  let trad =
    List.filter
      (Diagres_diagrams.Syllogism.valid_venn ~existential_import:true)
      Diagres_diagrams.Syllogism.all_moods
  in
  Printf.printf
    "moods: 256   valid (modern): %d   valid (existential import): %d\n"
    (List.length valid) (List.length trad);
  Printf.printf "expected: 15 and 24 — %s\n"
    (if List.length valid = 15 && List.length trad = 24 then "MATCH"
     else "MISMATCH")

let e4_table () =
  hr "E4  beta graphs <-> Boolean DRC (the imperfect mapping)";
  let sentence =
    Diagres_rc.Drc_parser.parse_formula
      "exists s, b, d (Reserves(s, b, d) & not (exists n, c (Boat(b, n, c) \
       & c = 'red')))"
  in
  let g = Diagres_diagrams.Eg_beta.of_drc sentence in
  let outer = Diagres_diagrams.Eg_beta.to_drc g in
  let inner = Diagres_diagrams.Eg_beta.to_drc_innermost g in
  Printf.printf "crossing ligatures: %d\n"
    (List.length (Diagres_diagrams.Eg_beta.crossing_ligatures g));
  Printf.printf "outermost reading true: %b   innermost reading true: %b\n"
    (Diagres_rc.Drc.eval_sentence db outer)
    (Diagres_rc.Drc.eval_sentence db inner);
  Printf.printf
    "(differing readings on crossing graphs = the tutorial's Part-4 point)\n"

let e5_table () =
  hr "E5  QBE vs Datalog for division (Q3)";
  let e = Diagres.Catalog.find "q3" in
  let p = Diagres.Catalog.parsed_datalog e in
  let qbe = Diagres_diagrams.Qbe.of_datalog schemas p ~goal:"q3" in
  let steps, temps, rows = Diagres_diagrams.Qbe.stats qbe in
  let rules, occs, repeats = Diagres_datalog.Ast.stats p in
  Printf.printf "QBE:     steps=%d temp-relations=%d skeleton-rows=%d\n" steps
    temps rows;
  Printf.printf "Datalog: rules=%d body-atoms=%d repeated-tables=%d\n" rules
    occs repeats;
  Printf.printf "shape: QBE needs the same dataflow decomposition as Datalog\n"

let e6_table () =
  hr "E6  diagram complexity per formalism (catalog queries)";
  Printf.printf "%-4s %7s %8s %8s %8s %8s\n" "id" "panels" "boxes" "links"
    "cuts" "arrows";
  List.iter
    (fun e ->
      let panels =
        Diagres_rc.Translate.drawable_panels schemas
          [ Diagres.Catalog.parsed_trc e ]
      in
      let rd = Diagres_diagrams.Relational_diagram.of_trc_queries panels in
      let stats = Diagres_diagrams.Relational_diagram.stats rd in
      let sum f = List.fold_left (fun a s -> a + f s) 0 stats in
      let qv_arrows =
        List.fold_left
          (fun a q ->
            a
            + Diagres_diagrams.Queryvis.arrow_count
                (Diagres_diagrams.Queryvis.of_trc q))
          0 panels
      in
      Printf.printf "%-4s %7d %8d %8d %8d %8d\n" e.Diagres.Catalog.id
        (List.length panels)
        (sum (fun s -> s.Diagres_diagrams.Scene.boxes))
        (sum (fun s -> s.Diagres_diagrams.Scene.links))
        (sum (fun s -> s.Diagres_diagrams.Scene.cuts))
        qv_arrows)
    Diagres.Catalog.all;
  Printf.printf
    "(arrows column = QueryVis reading arrows; Relational Diagrams use 0)\n"

(* Nested NOT EXISTS chains of growing depth: how diagram complexity tracks
   query complexity per formalism (the E6 ablation axis). *)
let nesting_table () =
  hr "E6b  diagram size vs nesting depth (alternating NOT EXISTS chain)";
  let rec chain depth =
    (* sailors such that ¬∃r (… ¬∃r' (…)) alternating over Reserves *)
    if depth = 0 then Diagres_rc.Trc.True
    else
      Diagres_rc.Trc.Not
        (Diagres_rc.Trc.Exists
           ( [ (Printf.sprintf "r%d" depth, "Reserves") ],
             Diagres_rc.Trc.And
               ( Diagres_rc.Trc.Cmp
                   ( Diagres_logic.Fol.Eq,
                     Diagres_rc.Trc.Field (Printf.sprintf "r%d" depth, "sid"),
                     Diagres_rc.Trc.Field ("s", "sid") ),
                 chain (depth - 1) ) ))
  in
  Printf.printf "%6s %10s %10s %12s %14s\n" "depth" "RD boxes" "RD cuts"
    "QV arrows" "SQLVis boxes";
  List.iter
    (fun depth ->
      let q =
        { Diagres_rc.Trc.head = [ Diagres_rc.Trc.Field ("s", "sid") ];
          ranges = [ ("s", "Sailor") ];
          body = chain depth }
      in
      let rd = Diagres_diagrams.Relational_diagram.of_trc q in
      let rd_stats = List.hd (Diagres_diagrams.Relational_diagram.stats rd) in
      let qv = Diagres_diagrams.Queryvis.of_trc q in
      let sqlvis =
        Diagres_diagrams.Sqlvis.of_sql
          (Diagres_sql.Of_trc.statement [ q ])
      in
      let sv_stats = Diagres_diagrams.Sqlvis.stats sqlvis in
      Printf.printf "%6d %10d %10d %12d %14d\n" depth
        rd_stats.Diagres_diagrams.Scene.boxes
        rd_stats.Diagres_diagrams.Scene.cuts
        (Diagres_diagrams.Queryvis.arrow_count qv)
        sv_stats.Diagres_diagrams.Scene.boxes)
    [ 1; 2; 3; 4; 5; 6 ];
  Printf.printf
    "(all grow linearly in depth; QueryVis adds one arrow per level, RD one \
     cut)\n"

let e8_table () =
  hr "E8  principles & the three abuses of the line";
  let q3 = Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q3") in
  print_endline
    (Diagres.Principles.verdict_to_string
       (Diagres.Principles.invertibility_rd q3));
  let sentence =
    Diagres_rc.Drc_parser.parse_formula
      "exists s, b, d (Reserves(s, b, d) & s <> b)"
  in
  Printf.printf "beta lines: %s\n"
    (Diagres_diagrams.Line_abuse.report_to_string
       (Diagres_diagrams.Line_abuse.of_beta
          (Diagres_diagrams.Eg_beta.of_drc sentence)));
  let rd = Diagres_diagrams.Relational_diagram.of_trc q3 in
  let scene =
    (List.hd rd.Diagres_diagrams.Relational_diagram.panels)
      .Diagres_diagrams.Relational_diagram.scene
  in
  Printf.printf "RD lines:   %s\n"
    (Diagres_diagrams.Line_abuse.report_to_string
       (Diagres_diagrams.Line_abuse.of_scene scene))

let e10_table () =
  hr "E10  survey capability matrix";
  print_string (Diagres.Survey.to_table ())

(* ------------------------------------------------------------------ *)
(* JSON result sink (--json FILE): a versioned snapshot.  Every
   measurement below lands here as {name, ns_per_run, tuples, rows},
   preceded by the schema version and the run-mode switches (so a
   baseline taken in --quick mode is never silently compared against a
   full run), and followed by a snapshot of the telemetry metrics
   registry (cache hit/miss counters, pool utilization, memory gauges)
   accumulated over the whole run.  Hand-rolled emission — no JSON
   dependency in the tree.                                               *)

(* Bump when the snapshot layout changes incompatibly; --check refuses
   baselines with a different version. *)
let snapshot_schema_version = 1

let results : (string * float * int * int) list ref = ref []

let record ~name ~ns ~tuples ~rows =
  results := (name, ns, tuples, rows) :: !results

let write_json ~quick ~huge ~domains path =
  let rows = List.rev !results in
  let oc = open_out path in
  output_string oc "{\n";
  Printf.fprintf oc "\"schema_version\": %d,\n" snapshot_schema_version;
  Printf.fprintf oc
    "\"mode\": {\"quick\": %b, \"huge\": %b, \"domains\": \"%s\", \
     \"columnar\": %b, \"defer\": %b},\n"
    quick huge
    (String.concat "," (List.map string_of_int domains))
    !Diagres_ra.Plan.columnar_enabled !Diagres_ra.Plan.defer_gathers;
  output_string oc "\"measurements\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, ns, tuples, nrows) ->
      Printf.fprintf oc
        "  {\"name\": \"%s\", \"ns_per_run\": %.1f, \"tuples\": %d, \
         \"rows\": %d}%s\n"
        (T.json_escape name) ns tuples nrows
        (if i = last then "" else ","))
    rows;
  output_string oc "],\n\"columnar\": ";
  Printf.fprintf oc
    "{\"enabled\": %b, \"defer\": %b, \"batches\": %d, \"rows\": %d, \
     \"fallback_row_mode\": %d, \"gathers_deferred\": %d, \
     \"gathers_forced\": %d, \"sel_rows\": %d, \"dict_hit\": %d, \
     \"dict_miss\": %d},\n"
    !Diagres_ra.Plan.columnar_enabled !Diagres_ra.Plan.defer_gathers
    (T.counter_named "columnar.batches")
    (T.counter_named "columnar.rows")
    (T.counter_named "columnar.fallback_row_mode")
    (T.counter_named "columnar.gathers_deferred")
    (T.counter_named "columnar.gathers_forced")
    (T.counter_named "columnar.sel_rows")
    (T.counter_named "columnar.dict.hit")
    (T.counter_named "columnar.dict.miss");
  output_string oc "\"metrics\": ";
  output_string oc (T.metrics_json ());
  output_string oc "\n}\n";
  close_out oc;
  Printf.printf "\nwrote %d measurements to %s\n" (List.length rows) path

(* ------------------------------------------------------------------ *)
(* Perf-regression gate (--check BASELINE [--tolerance PCT]): reads a
   committed snapshot, compares every measurement present in both runs,
   and exits non-zero when the current run is slower than the baseline
   allows.  The comparison is noise-aware: sub-millisecond measurements
   are jitter-dominated on a shared machine and are reported but never
   flagged, and a flagged regression must also exceed an absolute
   1 ms delta so a 30% blow-up of a 2 ms measurement on a busy host does
   not fail the gate on its own ratio.  Minimal recursive-descent JSON
   reader below — the tree carries no JSON dependency. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> raise (Bad "unterminated string")
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then raise (Bad "bad unicode escape");
            Buffer.add_string b (String.sub s !pos 4);
            pos := !pos + 4
          | Some c -> Buffer.add_char b c; advance ()
          | None -> raise (Bad "dangling escape"));
          go ()
        | Some c -> Buffer.add_char b c; advance (); go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      if !pos = start then raise (Bad "expected number");
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> raise (Bad "malformed number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad "expected , or } in object")
          in
          members []
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> raise (Bad "expected , or ] in array")
          in
          elements []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> pos := !pos + 4; Bool true
      | Some 'f' -> pos := !pos + 5; Bool false
      | Some 'n' -> pos := !pos + 4; Null
      | _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let field_opt k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  let field k j =
    match field_opt k j with
    | Some v -> v
    | None -> raise (Bad ("missing field " ^ k))

  let num = function Num f -> f | _ -> raise (Bad "not a number")
  let str = function Str s -> s | _ -> raise (Bad "not a string")
end

(* Below this a measurement is jitter, not signal: never flag it. *)
let noise_floor_ns = 1e6

(* And a regression must also be at least this much absolute slowdown. *)
let min_delta_ns = 1e6

(* Exit status: 0 clean, 1 regression found, 2 unusable baseline. *)
let check_baseline ~tolerance path : int =
  let contents =
    try Some (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error msg ->
      Printf.eprintf "check: cannot read %s: %s\n" path msg;
      None
  in
  match contents with
  | None -> 2
  | Some contents -> (
    match Json.parse contents with
    | exception Json.Bad msg ->
      Printf.eprintf "check: %s is not valid snapshot JSON: %s\n" path msg;
      2
    | j -> (
      match
        Option.map (fun v -> int_of_float (Json.num v))
          (Json.field_opt "schema_version" j)
      with
      | None ->
        Printf.eprintf
          "check: %s has no schema_version (pre-versioning snapshot); \
           regenerate the baseline with --json\n"
          path;
        2
      | Some v when v <> snapshot_schema_version ->
        Printf.eprintf
          "check: %s has schema_version %d, this binary writes %d; \
           regenerate the baseline\n"
          path v snapshot_schema_version;
        2
      | Some _ ->
        (* Mode mismatch is a warning, not an error: CI compares a
           committed --quick baseline against a --quick run, but a
           developer may want to eyeball a full run against it too. *)
        (match Json.field_opt "mode" j with
        | Some m ->
          let flag k =
            match Json.field_opt k m with
            | Some (Json.Bool b) -> b
            | _ -> false
          in
          let here_quick = Array.exists (fun a -> a = "--quick") Sys.argv in
          if flag "quick" <> here_quick then
            Printf.eprintf
              "check: warning: baseline quick=%b but this run quick=%b — \
               comparison may be meaningless\n"
              (flag "quick") here_quick
        | None -> ());
        let baseline =
          match Json.field "measurements" j with
          | Json.List ms ->
            List.map
              (fun m ->
                (Json.str (Json.field "name" m),
                 Json.num (Json.field "ns_per_run" m)))
              ms
          | _ -> raise (Json.Bad "measurements is not an array")
        in
        let current = List.rev !results in
        let tol_factor = 1. +. (tolerance /. 100.) in
        let regressions = ref 0
        and compared = ref 0
        and noisy = ref 0
        and missing = ref 0 in
        Printf.printf
          "\n-- perf check against %s (tolerance %.0f%%) --\n%-44s %12s \
           %12s %8s  %s\n"
          path tolerance "measurement" "base" "current" "ratio" "verdict";
        List.iter
          (fun (name, ns, _tuples, _rows) ->
            match List.assoc_opt name baseline with
            | None -> incr missing
            | Some base_ns ->
              let ratio = if base_ns > 0. then ns /. base_ns else 1. in
              let verdict =
                if base_ns < noise_floor_ns || ns < noise_floor_ns then (
                  incr noisy;
                  "noise")
                else begin
                  incr compared;
                  if ns > base_ns *. tol_factor
                     && ns -. base_ns > min_delta_ns
                  then (
                    incr regressions;
                    "REGRESSION")
                  else if ns < base_ns /. tol_factor then "improved"
                  else "ok"
                end
              in
              Printf.printf "%-44s %9.2fms %9.2fms %7.2fx  %s\n" name
                (base_ns /. 1e6) (ns /. 1e6) ratio verdict)
          current;
        if !missing > 0 then
          Printf.printf
            "(%d measurements not in the baseline were skipped)\n" !missing;
        Printf.printf
          "checked %d measurements (%d below the %.0fms noise floor): %s\n"
          (!compared + !noisy) !noisy (noise_floor_ns /. 1e6)
          (if !regressions > 0 then
             Printf.sprintf "%d REGRESSION(S)" !regressions
           else "no regressions");
        if !regressions > 0 then 1 else 0))

(* wall-clock one-shot timing for the macro experiments, on telemetry's
   monotonic clock (the same clock the span sinks use); Bechamel stays in
   charge of the micro-benchmarks.  Monotonic wall-clock rather than
   [Sys.time]: CPU time summed over every domain would hide exactly the
   parallel speedup E12 measures. *)
let timed = T.timed
let walltimed = T.timed

(* best-of-three wall clock: one-shot numbers at the tens-of-ms scale are
   noisy on a shared machine *)
let walltimed3 f =
  let t1, r = walltimed f in
  let t2, _ = walltimed f in
  let t3, _ = walltimed f in
  (Float.min t1 (Float.min t2 t3), r)

(* Best-of-three at the allocator steady state: several warm-up runs with a
   compaction after each, then a compaction before every timed run (outside
   the timed window).  The warm-ups matter on fresh multi-megabyte data:
   until the dead results of earlier runs have actually been freed back to
   the allocator, every output buffer is freshly mapped memory and the
   kernel's page-fault cost — tens of microseconds per page on a
   virtualized host — dwarfs the compute being measured.  After a few
   alloc/free cycles the allocator retains and reuses the pages and the
   per-run cost is the kernels themselves, which is the repeated-query
   regime the benchmark is about. *)
let walltimed3s f =
  for _ = 1 to 5 do
    ignore (f ());
    Gc.compact ()
  done;
  let best = ref infinity and res = ref None in
  for _ = 1 to 3 do
    Gc.compact ();
    let t, r = walltimed f in
    if t < !best then best := t;
    res := Some r
  done;
  (!best, Option.get !res)

let scaling_table ~quick () =
  hr "Evaluator scaling (Q1; RA / TRC / DRC / Datalog), wall-clock";
  let e = Diagres.Catalog.find "q1" in
  let ra = Diagres.Catalog.parsed_ra e in
  let trc = Diagres.Catalog.parsed_trc e in
  let drc = Diagres.Catalog.parsed_drc e in
  let dl = Diagres.Catalog.parsed_datalog e in
  Printf.printf "%8s %10s %10s %10s %10s %13s %13s\n" "tuples" "RA(s)"
    "TRC(s)" "DRC(s)" "DL(s)" "TRCnaive(s)" "DRCnaive(s)";
  List.iter
    (fun n ->
      let rdb =
        Diagres_data.Generator.sailors_db ~n_sailors:n
          ~n_boats:(max 4 (n / 10))
          ~n_reserves:(2 * n) (n + 7)
      in
      let ntup = Diagres_data.Database.total_tuples rdb in
      let run name f =
        let t, r = timed f in
        record ~name:(Printf.sprintf "scaling/%s/n=%d" name n)
          ~ns:(t *. 1e9) ~tuples:ntup
          ~rows:(Diagres_data.Relation.cardinality r);
        t
      in
      let t_ra = run "q1-ra" (fun () -> Diagres_ra.Eval.eval rdb ra) in
      let t_trc = run "q1-trc" (fun () -> Diagres_rc.Trc.eval rdb trc) in
      let t_drc = run "q1-drc" (fun () -> Diagres_rc.Drc.eval rdb drc) in
      let t_dl =
        run "q1-datalog" (fun () ->
            Diagres_datalog.Eval.query rdb dl ~goal:"q1")
      in
      (* the full-scan baselines are quadratic-and-worse: only run them
         while they stay in check, so the 10k row finishes in seconds *)
      let naive name f =
        if n > 1000 then None else Some (run name f)
      in
      let t_trc_n =
        naive "q1-trc-naive" (fun () -> Diagres_rc.Trc.eval_naive rdb trc)
      in
      let t_drc_n =
        if n > 100 then None
        else Some (run "q1-drc-naive" (fun () -> Diagres_rc.Drc.eval_naive rdb drc))
      in
      let opt = function
        | Some t -> Printf.sprintf "%13.5f" t
        | None -> Printf.sprintf "%13s" "-"
      in
      Printf.printf "%8d %10.5f %10.5f %10.5f %10.5f %s %s\n" ntup t_ra t_trc
        t_drc t_dl (opt t_trc_n) (opt t_drc_n))
    (if quick then [ 10; 100 ] else [ 10; 100; 1000; 10_000 ]);
  Printf.printf
    "(index-backed engines stay near-linear; '-' = full-scan baseline \
     skipped beyond its feasible size)\n"

let tc_table ~quick () =
  hr "Datalog transitive closure (chain graph): naive vs semi-naive fixpoint";
  let module DD = Diagres_data in
  let chain n =
    let schema =
      [ DD.Schema.attr ~ty:DD.Value.Tint "src";
        DD.Schema.attr ~ty:DD.Value.Tint "dst" ]
    in
    let rows = List.init n (fun i -> [ DD.Value.Int i; DD.Value.Int (i + 1) ]) in
    DD.Database.of_list [ ("Edge", DD.Relation.of_lists schema rows) ]
  in
  let p =
    Diagres_datalog.Parser.parse
      "path(X, Y) :- Edge(X, Y).\npath(X, Y) :- Edge(X, Z), path(Z, Y)."
  in
  Printf.printf "%8s %12s %14s %9s %8s\n" "depth" "naive(s)" "semi-naive(s)"
    "speedup" "paths";
  List.iter
    (fun depth ->
      let gdb = chain depth in
      let t_naive, _ =
        timed (fun () -> Diagres_datalog.Fixpoint.query_naive gdb p ~goal:"path")
      in
      let t_semi, r =
        timed (fun () -> Diagres_datalog.Fixpoint.query gdb p ~goal:"path")
      in
      let rows = DD.Relation.cardinality r in
      record ~name:(Printf.sprintf "tc/naive/depth=%d" depth)
        ~ns:(t_naive *. 1e9) ~tuples:depth ~rows;
      record ~name:(Printf.sprintf "tc/semi-naive/depth=%d" depth)
        ~ns:(t_semi *. 1e9) ~tuples:depth ~rows;
      Printf.printf "%8d %12.4f %14.4f %8.1fx %8d\n" depth t_naive t_semi
        (t_naive /. t_semi) rows)
    (if quick then [ 50 ] else [ 50; 100; 200 ]);
  Printf.printf
    "(naive re-derives every path each round: Θ(depth) rounds × Θ(depth²) \
     tuples; semi-naive joins only the last round's delta)\n"

(* ------------------------------------------------------------------ *)
(* E11: the cost-based physical planner against the two older engines:
   the naive tree-walker on the raw expression, and the same tree-walker
   on the logically optimized expression (PR-1's best).  Two workloads:
   a selective theta-join written as σ over ×, and the RA produced by the
   TRC → RA translation of catalog Q1.                                  *)

let e11_table ~quick () =
  hr "E11  cost-based physical planner (naive / optimized-logical / planned)";
  let agree =
    List.for_all
      (fun e ->
        let ra = Diagres.Catalog.parsed_ra e in
        Diagres_data.Relation.same_rows (Diagres_ra.Eval.eval db ra)
          (Diagres_ra.Eval.eval_planned db ra))
      Diagres.Catalog.all
  in
  Printf.printf "catalog q1–q5: planned result = reference result: %b\n\n" agree;
  let theta =
    Diagres_ra.Parser.parse
      "project[sid2](select[sid = sid2 and rating = 10](Sailor * rename[sid \
       -> sid2, bid -> bid2, day -> day2](Reserves)))"
  in
  let q1_translated =
    Diagres_rc.Translate.trc_to_ra schemas
      (Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q1"))
  in
  let queries = [ ("theta-join", theta); ("q1-from-trc", q1_translated) ] in
  Printf.printf "%-12s %9s %11s %14s %12s %10s\n" "query" "tuples" "naive(s)"
    "optimized(s)" "planned(s)" "speedup";
  let sizes = if quick then [ 100; 500 ] else [ 1000; 10_000 ] in
  List.iter
    (fun n ->
      let rdb =
        Diagres_data.Generator.sailors_db ~n_sailors:n
          ~n_boats:(max 4 (n / 10))
          ~n_reserves:(2 * n) (n + 7)
      in
      let ntup = Diagres_data.Database.total_tuples rdb in
      List.iter
        (fun (qname, ra) ->
          let opt = Diagres_ra.Optimize.optimize_db rdb ra in
          let run engine f =
            let t, r = timed f in
            record
              ~name:(Printf.sprintf "planner/%s/%s/n=%d" qname engine n)
              ~ns:(t *. 1e9) ~tuples:ntup
              ~rows:(Diagres_data.Relation.cardinality r);
            t
          in
          (* the raw tree walk materializes the full n × 2n product: only
             feasible at the small scale *)
          let t_naive =
            if n > 1000 then None
            else Some (run "naive" (fun () -> Diagres_ra.Eval.eval rdb ra))
          in
          let t_opt =
            run "optimized" (fun () -> Diagres_ra.Eval.eval rdb opt)
          in
          let t_plan =
            run "planned" (fun () -> Diagres_ra.Eval.eval_planned rdb ra)
          in
          let opt_s = function
            | Some t -> Printf.sprintf "%11.4f" t
            | None -> Printf.sprintf "%11s" "-"
          in
          Printf.printf "%-12s %9d %s %14.4f %12.4f %9.1fx\n" qname ntup
            (opt_s t_naive) t_opt t_plan (t_opt /. t_plan))
        queries)
    sizes;
  Printf.printf
    "(speedup = optimized-logical / planned: what hash-join extraction, \
     join ordering and compiled predicates add on top of the rewrites)\n"

(* ------------------------------------------------------------------ *)
(* E12: parallel execution + plan cache.                                *)

module Pool = Diagres_pool.Pool

(* The domain sweep (--domains 1,2,4,8): the join-heavy E11 workloads plus
   a Datalog transitive closure, executed by the same compiled plan at
   each domain count.  Plans are built once and re-run (Plan.run resets
   the per-node memos), so the sweep isolates the execution layer; a
   warm-up run populates the relation-level index caches first so every
   domain count probes the same read-only structures. *)
let e12_parallel_table ~quick ~domains () =
  hr "E12  morsel-parallel execution: domain sweep (wall-clock)";
  let theta =
    Diagres_ra.Parser.parse
      "project[sid2](select[sid = sid2 and rating = 10](Sailor * rename[sid \
       -> sid2, bid -> bid2, day -> day2](Reserves)))"
  in
  let q1_translated =
    Diagres_rc.Translate.trc_to_ra schemas
      (Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q1"))
  in
  let queries = [ ("theta-join", theta); ("q1-from-trc", q1_translated) ] in
  let sizes = if quick then [ 300 ] else [ 1000; 10_000; 30_000 ] in
  Printf.printf "%-12s %9s" "query" "tuples";
  List.iter (fun d -> Printf.printf " %9s" (Printf.sprintf "%dd (s)" d)) domains;
  Printf.printf " %9s %7s\n" "speedup" "agree";
  List.iter
    (fun n ->
      let rdb =
        Diagres_data.Generator.sailors_db ~n_sailors:n
          ~n_boats:(max 4 (n / 10))
          ~n_reserves:(2 * n) (n + 7)
      in
      let ntup = Diagres_data.Database.total_tuples rdb in
      List.iter
        (fun (qname, ra) ->
          let plan = Diagres_ra.Planner.plan rdb ra in
          let reference = Diagres_ra.Plan.run plan in  (* warm indexes *)
          let times =
            List.map
              (fun d ->
                Pool.set_size d;
                let t, r = walltimed3 (fun () -> Diagres_ra.Plan.run plan) in
                record
                  ~name:
                    (Printf.sprintf "e12/parallel/%s/n=%d/domains=%d" qname n d)
                  ~ns:(t *. 1e9) ~tuples:ntup
                  ~rows:(Diagres_data.Relation.cardinality r);
                (t, Diagres_data.Relation.same_rows reference r))
              domains
          in
          Pool.set_size 1;
          let agree = List.for_all snd times in
          Printf.printf "%-12s %9d" qname ntup;
          List.iter (fun (t, _) -> Printf.printf " %9.4f" t) times;
          let t1 = fst (List.hd times) and tn = fst (List.hd (List.rev times)) in
          Printf.printf " %8.2fx %7b\n" (t1 /. tn) agree)
        queries)
    sizes;
  (* Datalog: transitive closure over a chain, the delta rounds of the
     semi-naive fixpoint spread across the pool *)
  let () =
    let module DD = Diagres_data in
    let depth = if quick then 60 else 300 in
      let chain =
        let schema =
          [ DD.Schema.attr ~ty:DD.Value.Tint "src";
            DD.Schema.attr ~ty:DD.Value.Tint "dst" ]
        in
        DD.Database.of_list
          [ ( "Edge",
              DD.Relation.of_lists schema
                (List.init depth (fun i ->
                     [ DD.Value.Int i; DD.Value.Int (i + 1) ])) ) ]
      in
      let p =
        Diagres_datalog.Parser.parse
          "path(X, Y) :- Edge(X, Y).\npath(X, Y) :- Edge(X, Z), path(Z, Y)."
      in
      let reference = Diagres_datalog.Fixpoint.query chain p ~goal:"path" in
      let times =
        List.map
          (fun d ->
            Pool.set_size d;
            let t, r =
              walltimed3 (fun () ->
                  Diagres_datalog.Fixpoint.query chain p ~goal:"path")
            in
            record
              ~name:(Printf.sprintf "e12/parallel/tc-%d/domains=%d" depth d)
              ~ns:(t *. 1e9) ~tuples:depth
              ~rows:(Diagres_data.Relation.cardinality r);
            (t, Diagres_data.Relation.same_rows reference r))
          domains
      in
    Pool.set_size 1;
    Printf.printf "%-12s %9d" (Printf.sprintf "tc-%d" depth) depth;
    List.iter (fun (t, _) -> Printf.printf " %9.4f" t) times;
    let t1 = fst (List.hd times) and tn = fst (List.hd (List.rev times)) in
    Printf.printf " %8.2fx %7b\n" (t1 /. tn) (List.for_all snd times)
  in
  Printf.printf
    "(speedup = 1 domain / largest sweep entry; agree = identical sorted \
     tuple sets at every domain count; this host has %d core(s))\n"
    (Domain.recommended_domain_count ())

(* The repeated-query benchmark: the serving scenario.  The same query
   evaluated many times — cold planning on every call (plan cache cleared
   each iteration) vs the warm LRU plan cache (planning skipped; the plan
   is re-executed from a clean per-node slate each call). *)
let e12_plan_cache_table ~quick () =
  hr "E12  plan cache: repeated-query serving (same query, 1000 evals)";
  let reps = if quick then 100 else 1000 in
  let q1_translated =
    Diagres_rc.Translate.trc_to_ra schemas
      (Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q1"))
  in
  let theta =
    Diagres_ra.Parser.parse
      "project[sid2](select[sid = sid2 and rating = 10](Sailor * rename[sid \
       -> sid2, bid -> bid2, day -> day2](Reserves)))"
  in
  Printf.printf "%-12s %9s %7s %12s %12s %9s %14s\n" "query" "tuples" "evals"
    "cold(s)" "warm(s)" "speedup" "hits/misses";
  List.iter
    (fun (qname, ra, dbi) ->
      let ntup = Diagres_data.Database.total_tuples dbi in
      (* cold: plan every call, as a cache with capacity 1 under a
         changing workload would *)
      let t_cold, reference =
        walltimed (fun () ->
            let r = ref (Diagres_ra.Eval.eval db (Diagres_ra.Ast.Rel "Sailor")) in
            for _ = 1 to reps do
              Diagres_ra.Plan_cache.clear ();
              r := Diagres_ra.Eval.eval_planned dbi ra
            done;
            !r)
      in
      (* warm: one miss, then pure cache hits *)
      Diagres_ra.Plan_cache.clear ();
      Diagres_ra.Plan_cache.reset_stats ();
      let t_warm, warm_result =
        walltimed (fun () ->
            let r = ref reference in
            for _ = 1 to reps do
              r := Diagres_ra.Eval.eval_planned dbi ra
            done;
            !r)
      in
      let hits, misses = Diagres_ra.Plan_cache.stats () in
      assert (Diagres_data.Relation.same_rows reference warm_result);
      record
        ~name:(Printf.sprintf "e12/plan-cache/%s/cold" qname)
        ~ns:(t_cold /. float_of_int reps *. 1e9)
        ~tuples:ntup
        ~rows:(Diagres_data.Relation.cardinality reference);
      record
        ~name:(Printf.sprintf "e12/plan-cache/%s/warm" qname)
        ~ns:(t_warm /. float_of_int reps *. 1e9)
        ~tuples:ntup
        ~rows:(Diagres_data.Relation.cardinality reference);
      Printf.printf "%-12s %9d %7d %12.4f %12.4f %8.1fx %8d/%d\n" qname ntup
        reps t_cold t_warm (t_cold /. t_warm) hits misses)
    [ ("q1-from-trc", q1_translated, db);
      ("theta-join", theta, db);
      ( "q1-trc-1k",
        q1_translated,
        Diagres_data.Generator.sailors_db ~n_sailors:1000 ~n_boats:100
          ~n_reserves:2000 1007 ) ];
  Printf.printf
    "(cold = optimize+plan+execute per call; warm = LRU plan-cache hit, \
     execute only; both paths reset per-node memos, so every eval touches \
     the data)\n"

(* ------------------------------------------------------------------ *)
(* E13: the columnar substrate.  The same physical plan executed twice —
   row-at-a-time (columnar disabled) vs vectorized over column batches —
   on a selective filter and a key join, from 10k up to 1M sailors.  The
   ns/row columns are the point: the vectorized per-row cost stays flat
   as the input grows, so the speedup holds at scale.  The one-time
   row→column conversion is paid in the warm-up run (it memoizes on the
   relation), matching the serving workload: scan once, decode never. *)

(* A columnar-born copy of a generated database: the relations share the
   converted column batches, the row-oriented originals (tuple sets, boxed
   values) become garbage.  This is the steady state the substrate is for
   — data loaded into columns once, queried many times — and it is what
   makes the comparison honest at the million-row scale: holding a
   gigabyte of boxed rows live would tax every allocation the vectorized
   kernels make with major-GC marking work on the row data's behalf. *)
let columnar_db n =
  (* built column-first: no boxed tuple set is ever materialized, which
     is what makes the 10M-row sweep affordable *)
  Diagres_data.Generator.sailors_db_columnar ~n_sailors:n (n + 7)

let e13_table ~quick ~huge () =
  hr "E13  columnar vs row execution (same plan, kernels toggled)";
  let queries =
    [ ("filter", "select[rating > 7](Sailor)");
      ("join", "project[sname](Sailor join Reserves)");
      ("union", "select[rating > 7](Sailor) union select[rating <= 3](Sailor)");
      ("diff", "project[sid](Sailor) minus project[sid](Reserves)") ]
  in
  let sizes =
    if quick then [ 1000 ]
    else if huge then [ 10_000; 100_000; 1_000_000; 10_000_000 ]
    else [ 10_000; 100_000; 1_000_000 ]
  in
  let old_col = !Diagres_ra.Plan.columnar_enabled in
  (* at 10M+ rows the full 5-warm-up protocol would cost many minutes per
     cell, but a true single shot times the allocator, not the kernels:
     the first run's output buffers are freshly mapped pages (see the
     walltimed3s comment).  Best-of-three after a compaction is enough —
     run 1 pays the faults, runs 2–3 reuse the retained pages. *)
  let sample n f =
    if n >= 10_000_000 then (
      Gc.compact ();
      walltimed3 f)
    else walltimed3s f
  in
  Printf.printf "%-8s %9s %10s %10s %9s %11s %11s %7s\n" "query" "tuples"
    "row(s)" "col(s)" "speedup" "row ns/row" "col ns/row" "agree";
  List.iter
    (fun n ->
      let rdb = columnar_db n in
      Gc.compact ();
      let ntup = Diagres_data.Database.total_tuples rdb in
      let plans =
        List.map
          (fun (qname, src) ->
            (qname, Diagres_ra.Planner.plan rdb (Diagres_ra.Parser.parse src)))
          queries
      in
      (* vectorized first, while only the columns are live; the row pass
         afterwards materializes boxed tuples on demand (memoized, so its
         warm-up pays the decode once, outside the timed region) *)
      Diagres_ra.Plan.columnar_enabled := true;
      let col_times =
        List.map
          (fun (qname, plan) ->
            let warm = Diagres_ra.Plan.run plan in
            let t_col, r = sample n (fun () -> Diagres_ra.Plan.run plan) in
            (qname, plan, warm, r, t_col))
          plans
      in
      Diagres_ra.Plan.columnar_enabled := false;
      List.iter
        (fun (qname, plan, warm, rcol, t_col) ->
          let reference = Diagres_ra.Plan.run plan in
          let t_row, _ = sample n (fun () -> Diagres_ra.Plan.run plan) in
          let agree =
            Diagres_data.Relation.same_rows reference warm
            && Diagres_data.Relation.same_rows reference rcol
          in
          let rows = Diagres_data.Relation.cardinality reference in
          record
            ~name:(Printf.sprintf "e13/%s/row/n=%d" qname n)
            ~ns:(t_row *. 1e9) ~tuples:ntup ~rows;
          record
            ~name:(Printf.sprintf "e13/%s/columnar/n=%d" qname n)
            ~ns:(t_col *. 1e9) ~tuples:ntup ~rows;
          Printf.printf "%-8s %9d %10.4f %10.4f %8.1fx %11.1f %11.1f %7b\n"
            qname ntup t_row t_col (t_row /. t_col)
            (t_row /. float_of_int ntup *. 1e9)
            (t_col /. float_of_int ntup *. 1e9)
            agree)
        col_times;
      Diagres_ra.Plan.columnar_enabled := old_col)
    sizes;
  Printf.printf
    "(same physical plan both times — only the execution kernels differ; \
     both modes run warm: columns converted and boxed tuples decoded \
     before timing, the repeated-query steady state)\n"

(* E14: incremental view maintenance.  A registered join view under an
   update stream: per round, 1% of Reserves is deleted and a like number
   of fresh reservations inserted; the maintained result (differential
   evaluation, Delta) is timed against re-planning and re-running the
   query on the updated database (the plan cache can't help — the
   database stamp changed).  The base-table update itself (apply) is the
   shared cost both alternatives pay.  Timings are per-round bests over
   [rounds] distinct batches; round 0 is an untimed warm-up that builds
   the join-side index the delta probes reuse. *)
let e14_table ~quick () =
  hr "E14  incremental view maintenance: maintain vs recompute (1% batches)";
  let src = "project[sname](Sailor join Reserves)" in
  let e = Diagres_ra.Parser.parse src in
  let sizes = if quick then [ 1000 ] else [ 10_000; 100_000; 1_000_000 ] in
  Printf.printf "%-9s %9s %9s %12s %12s %12s %9s %7s\n" "sailors" "tuples"
    "Δ rows" "apply(ms)" "maintain(ms)" "recomp(ms)" "speedup" "agree";
  List.iter
    (fun n ->
      let db = ref (columnar_db n) in
      Gc.compact ();
      let ntup = Diagres_data.Database.total_tuples !db in
      let plan = Diagres_ra.Planner.plan !db e in
      let view = Diagres_ra.Delta.init plan in
      let r = Diagres_data.Generator.rng (n + 13) in
      let rounds = if quick then 3 else 5 in
      let one_round () =
        let changes =
          Diagres_data.Generator.update_batch ~relations:[ "Reserves" ]
            ~frac:0.01 r !db
        in
        let t_apply, (db', applied) =
          walltimed (fun () -> Diagres_data.Database.apply_delta changes !db)
        in
        db := db';
        let t_maintain, rep =
          walltimed (fun () -> Diagres_ra.Delta.maintain view applied)
        in
        let t_recompute, recomputed =
          walltimed (fun () -> Diagres_ra.Eval.eval_planned !db e)
        in
        let delta_rows =
          List.fold_left
            (fun a (_, _, ins, del) ->
              a
              + Diagres_data.Relation.cardinality ins
              + Diagres_data.Relation.cardinality del)
            0 applied
        in
        let agree =
          Diagres_data.Relation.same_rows recomputed
            rep.Diagres_ra.Delta.result
        in
        (t_apply, t_maintain, t_recompute, delta_rows, agree)
      in
      ignore (one_round ());
      (* warm-up: builds the cached join-side index *)
      let best3 = ref (infinity, infinity, infinity) in
      let rows = ref 0 and agree_all = ref true in
      for _ = 1 to rounds do
        let ta, tm, tr, dr, ag = one_round () in
        let ba, bm, br = !best3 in
        best3 := (Float.min ba ta, Float.min bm tm, Float.min br tr);
        rows := dr;
        agree_all := !agree_all && ag
      done;
      let ta, tm, tr = !best3 in
      record
        ~name:(Printf.sprintf "e14/maintain/n=%d" n)
        ~ns:(tm *. 1e9) ~tuples:ntup ~rows:!rows;
      record
        ~name:(Printf.sprintf "e14/recompute/n=%d" n)
        ~ns:(tr *. 1e9) ~tuples:ntup ~rows:!rows;
      Printf.printf "%-9d %9d %9d %12.3f %12.3f %12.3f %8.1fx %7b\n" n ntup
        !rows (ta *. 1e3) (tm *. 1e3) (tr *. 1e3) (tr /. tm) !agree_all)
    sizes;
  Printf.printf
    "(apply = updating the base tables, paid by both alternatives; \
     maintain = differential propagation through the registered plan; \
     recomp = re-plan + re-run on the updated database)\n"

(* E15: late materialization.  Operator pipelines executed three ways on
   the same physical plan — row mode, columnar with eager gathers (every
   vectorized operator materializes its survivors), and columnar with
   deferred gathers (a selection bitmap flows between operators and the
   gather runs once, at the pipeline's end).  The filter chains are
   planned without the logical optimizer, which would merge adjacent
   selections into one conjunct: the point is the cost of an operator
   {e pipeline} — one gather per operator vs one bitmap flowing through.
   The timed region forces the final batch, so deferral cannot win by
   pushing the last gather past the stopwatch. *)
let e15_table ~quick ~huge () =
  hr "E15  late materialization: deferred vs eager gathers vs row";
  let queries n =
    [ ( "chain2", false,
        "select[rating > 3](select[age > 30.0](Sailor))" );
      ( "chain3", false,
        "select[sid > 10](select[rating > 3](select[age > 30.0](Sailor)))" );
      ( "filter-project", true,
        "project[sid, rating](select[rating > 5](Sailor))" );
      ( "filter-join", true,
        Printf.sprintf
          "project[sname](select[rating > 7](Sailor) join select[sid <= \
           %d](Reserves))"
          (n / 2) ) ]
  in
  let sizes =
    if quick then [ 1000 ]
    else if huge then [ 10_000; 100_000; 1_000_000; 10_000_000 ]
    else [ 10_000; 100_000; 1_000_000 ]
  in
  let old_col = !Diagres_ra.Plan.columnar_enabled in
  let old_defer = !Diagres_ra.Plan.defer_gathers in
  let sample n f =
    if n >= 10_000_000 then (
      Gc.compact ();
      walltimed3 f)
    else walltimed3s f
  in
  Printf.printf "%-15s %9s %10s %10s %10s %9s %9s %7s\n" "pipeline" "tuples"
    "row(s)" "eager(s)" "defer(s)" "vs eager" "vs row" "agree";
  List.iter
    (fun n ->
      let rdb = columnar_db n in
      Gc.compact ();
      let ntup = Diagres_data.Database.total_tuples rdb in
      List.iter
        (fun (qname, optimize, src) ->
          let plan =
            Diagres_ra.Planner.plan ~optimize rdb (Diagres_ra.Parser.parse src)
          in
          (* force the final materialization inside the timed region *)
          let run () =
            let r = Diagres_ra.Plan.run plan in
            ignore (Diagres_data.Relation.batch r : Diagres_data.Batch.t);
            r
          in
          let mode ~columnar ~defer =
            Diagres_ra.Plan.columnar_enabled := columnar;
            Diagres_ra.Plan.defer_gathers := defer;
            ignore (run ());
            (* warm: batches converted / tuples decoded *)
            sample n run
          in
          (* deferred first, while only the columns are live; row mode
             last — its warm-up decodes boxed tuples, which then stay
             live as relation memos *)
          let t_defer, r_defer = mode ~columnar:true ~defer:true in
          let t_eager, r_eager = mode ~columnar:true ~defer:false in
          let t_row, r_row = mode ~columnar:false ~defer:false in
          let agree =
            Diagres_data.Relation.same_rows r_row r_eager
            && Diagres_data.Relation.same_rows r_row r_defer
          in
          let rows = Diagres_data.Relation.cardinality r_row in
          List.iter
            (fun (m, t) ->
              record
                ~name:(Printf.sprintf "e15/%s/%s/n=%d" qname m n)
                ~ns:(t *. 1e9) ~tuples:ntup ~rows)
            [ ("row", t_row); ("eager", t_eager); ("deferred", t_defer) ];
          Printf.printf "%-15s %9d %10.4f %10.4f %10.4f %8.1fx %8.1fx %7b\n"
            qname ntup t_row t_eager t_defer (t_eager /. t_defer)
            (t_row /. t_defer) agree)
        (queries n);
      Diagres_ra.Plan.columnar_enabled := old_col;
      Diagres_ra.Plan.defer_gathers := old_defer)
    sizes;
  Printf.printf
    "(same physical plan all three times; eager = every operator gathers \
     its survivors, defer = selection bitmaps flow between operators and \
     the one gather — forced inside the timed region — happens at the \
     end; chains planned unoptimized so the pipeline is real)\n"

let stage = Staged.stage

let bench_tests () =
  let e = Diagres.Catalog.find "q1" in
  let e3 = Diagres.Catalog.find "q3" in
  let ra1 = Diagres.Catalog.parsed_ra e in
  let trc1 = Diagres.Catalog.parsed_trc e in
  let drc1 = Diagres.Catalog.parsed_drc e in
  let trc3 = Diagres.Catalog.parsed_trc e3 in
  let dl3 = Diagres.Catalog.parsed_datalog e3 in
  let alpha_formula = Diagres_logic.Prop.parse "(p & q -> r) & !(s | p & !q)" in
  let beta_sentence =
    Diagres_rc.Drc_parser.parse_formula
      "exists s, b, d (Reserves(s, b, d) & not (exists n, c (Boat(b, n, c) \
       & c = 'red')))"
  in
  let beta_graph = Diagres_diagrams.Eg_beta.of_drc beta_sentence in
  let q3_sql = e3.Diagres.Catalog.sql in
  let raw_translated = Diagres_rc.Translate.trc_to_ra schemas trc1 in
  let opt_translated = Diagres_ra.Optimize.optimize_db db raw_translated in
  [
    Test.make ~name:"e1/eval-ra-q1" (stage (fun () -> Diagres_ra.Eval.eval db ra1));
    Test.make ~name:"e1/eval-trc-q1" (stage (fun () -> Diagres_rc.Trc.eval db trc1));
    Test.make ~name:"e1/eval-drc-naive-q1" (stage (fun () -> Diagres_rc.Drc.eval db drc1));
    Test.make ~name:"e1/eval-datalog-q3"
      (stage (fun () -> Diagres_datalog.Eval.query db dl3 ~goal:"q3"));
    Test.make ~name:"e1/translate-trc-to-ra-q1"
      (stage (fun () -> Diagres_rc.Translate.trc_to_ra schemas trc1));
    Test.make ~name:"e2/venn-256-syllogisms"
      (stage (fun () ->
           List.iter
             (fun m -> ignore (Diagres_diagrams.Syllogism.valid_venn m))
             Diagres_diagrams.Syllogism.all_moods));
    Test.make ~name:"e3/alpha-roundtrip"
      (stage (fun () ->
           Diagres_diagrams.Eg_alpha.to_prop
             (Diagres_diagrams.Eg_alpha.of_prop alpha_formula)));
    Test.make ~name:"e3/alpha-double-cut"
      (stage (fun () ->
           let g = Diagres_diagrams.Eg_alpha.of_prop alpha_formula in
           Diagres_diagrams.Eg_alpha.double_cut_insert g ~path:[]));
    Test.make ~name:"e3/alpha-proof-search-mp"
      (stage (fun () ->
           let premise =
             Diagres_diagrams.Eg_alpha.of_prop
               (Diagres_logic.Prop.parse "p & (p -> q)")
           in
           let goal =
             Diagres_diagrams.Eg_alpha.of_prop (Diagres_logic.Prop.Var "q")
           in
           Diagres_diagrams.Eg_alpha_proof.prove ~premise ~goal ()));
    Test.make ~name:"e4/beta-of-drc"
      (stage (fun () -> Diagres_diagrams.Eg_beta.of_drc beta_sentence));
    Test.make ~name:"e4/beta-to-drc"
      (stage (fun () -> Diagres_diagrams.Eg_beta.to_drc beta_graph));
    Test.make ~name:"e5/qbe-of-datalog-q3"
      (stage (fun () -> Diagres_diagrams.Qbe.of_datalog schemas dl3 ~goal:"q3"));
    Test.make ~name:"e6/rd-scene-q3"
      (stage (fun () -> Diagres_diagrams.Relational_diagram.of_trc trc3));
    Test.make ~name:"e6/rd-svg-q3"
      (stage (fun () ->
           Diagres_diagrams.Relational_diagram.to_svg
             (Diagres_diagrams.Relational_diagram.of_trc trc3)));
    Test.make ~name:"e6/queryvis-scene-q3"
      (stage (fun () -> Diagres_diagrams.Queryvis.of_trc trc3));
    Test.make ~name:"e7/dfql-layout-q3"
      (stage (fun () ->
           Diagres_diagrams.Dfql.layout
             (Diagres_diagrams.Dfql.of_ra (Diagres.Catalog.parsed_ra e3))));
    Test.make ~name:"e8/pattern-canonical-q3"
      (stage (fun () -> Diagres.Pattern.canonical_string `Literal trc3));
    Test.make ~name:"e9/pipeline-sql-to-rd-q3"
      (stage (fun () -> Diagres.Pipeline.run db "sql" q3_sql "rd"));
    Test.make ~name:"ablation/eval-translated-raw"
      (stage (fun () -> Diagres_ra.Eval.eval db raw_translated));
    Test.make ~name:"ablation/eval-translated-optimized"
      (stage (fun () -> Diagres_ra.Eval.eval db opt_translated));
    Test.make ~name:"ablation/eval-translated-planned"
      (stage (fun () -> Diagres_ra.Eval.eval_planned db raw_translated));
  ]

let run_benchmarks () =
  hr "Bechamel micro-benchmarks (OLS time per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  (* a too-small quota gives unstable OLS fits on allocation-heavy runs;
     0.75 s per test keeps estimates within a few percent of direct
     wall-clock timing *)
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.75) () in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let result = Analyze.one ols instance raw in
          let ns =
            match Analyze.OLS.estimates result with
            | Some [ est ] -> est
            | _ -> nan
          in
          let name = Test.Elt.name elt in
          record ~name:("micro/" ^ name) ~ns
            ~tuples:(Diagres_data.Database.total_tuples db)
            ~rows:0;
          if ns >= 1e6 then
            Printf.printf "%-42s %12.2f ms/run\n" name (ns /. 1e6)
          else if ns >= 1e3 then
            Printf.printf "%-42s %12.2f us/run\n" name (ns /. 1e3)
          else Printf.printf "%-42s %12.1f ns/run\n" name ns)
        (Test.elements test))
    (bench_tests ())

(* E16: estimated heap footprint of the sailors databases at increasing
   scale — the numbers behind EXPERIMENTS.md's memory table.  Builds each
   database, forces the statistics and one secondary index per relation
   (a key-column probe, the planner's steady state after its first join)
   so the cache figures are live, then reports the per-owner physical
   estimates from {!Relation.memory_bytes}.  The totals are also pushed
   through {!Views.refresh_memory_gauges}, so a --json snapshot taken in
   the same run carries them in its "gauges" section. *)
let e16_memory_table ~quick ~huge () =
  hr "E16  memory footprint (estimated heap bytes)";
  let sizes =
    if quick then [ 10_000 ]
    else if huge then [ 10_000; 1_000_000; 10_000_000 ]
    else [ 10_000; 1_000_000 ]
  in
  Printf.printf "%9s %-10s %10s %12s %12s %12s\n" "sailors" "relation"
    "rows" "data" "indexes" "stats";
  List.iter
    (fun n ->
      let db = columnar_db n in
      List.iter
        (fun (_, r) ->
          ignore (Diagres_data.Relation.stats r);
          ignore
            (Diagres_data.Relation.matching r [ 0 ]
               [| Diagres_data.Value.Int 1 |]))
        (Diagres_data.Database.relations db);
      Diagres.Views.refresh_memory_gauges db;
      let tot_data = ref 0 and tot_ix = ref 0 and tot_st = ref 0 in
      List.iter
        (fun (rname, r) ->
          let data = Diagres_data.Relation.memory_bytes r in
          let ix, st = Diagres_data.Relation.caches_memory_bytes r in
          tot_data := !tot_data + data;
          tot_ix := !tot_ix + ix;
          tot_st := !tot_st + st;
          Printf.printf "%9d %-10s %10d %12s %12s %12s\n" n rname
            (Diagres_data.Relation.cardinality r)
            (T.bytes_to_string (float_of_int data))
            (T.bytes_to_string (float_of_int ix))
            (T.bytes_to_string (float_of_int st)))
        (Diagres_data.Database.relations db);
      Printf.printf "%9d %-10s %10s %12s %12s %12s\n" n "TOTAL" ""
        (T.bytes_to_string (float_of_int !tot_data))
        (T.bytes_to_string (float_of_int !tot_ix))
        (T.bytes_to_string (float_of_int !tot_st));
      Gc.compact ())
    sizes

let () =
  let json_path =
    let rec find = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find (Array.to_list Sys.argv)
  in
  (* --quick: CI smoke mode — small scaling sizes, skip the bechamel micros *)
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  (* --huge: extend the E13 columnar sweep to 10M sailors *)
  let huge = Array.exists (fun a -> a = "--huge") Sys.argv in
  (* --domains 1,2,4,8: the E12 sweep's domain counts *)
  let domains =
    let rec find = function
      | "--domains" :: spec :: _ -> Some spec
      | _ :: rest -> find rest
      | [] -> None
    in
    match find (Array.to_list Sys.argv) with
    | Some spec ->
      List.map int_of_string (String.split_on_char ',' spec)
    | None -> if quick then [ 1; 2 ] else [ 1; 2; 4; 8 ]
  in
  (* --columnar on|off: master switch for the vectorized kernels in every
     table (same default as env DIAGRES_COLUMNAR; E13 toggles it per run
     regardless, to measure both sides) *)
  let () =
    let rec find = function
      | "--columnar" :: v :: _ -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    match find (Array.to_list Sys.argv) with
    | Some ("on" | "1" | "true") -> Diagres_ra.Plan.columnar_enabled := true
    | Some ("off" | "0" | "false") -> Diagres_ra.Plan.columnar_enabled := false
    | Some v -> Printf.eprintf "ignoring --columnar %s (want on|off)\n" v
    | None -> ()
  in
  (* --defer on|off: late materialization (deferred gathers) in every
     table (same default as env DIAGRES_DEFER; E15 toggles it per run
     regardless, to measure both sides) *)
  let () =
    let rec find = function
      | "--defer" :: v :: _ -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    match find (Array.to_list Sys.argv) with
    | Some ("on" | "1" | "true") -> Diagres_ra.Plan.defer_gathers := true
    | Some ("off" | "0" | "false") -> Diagres_ra.Plan.defer_gathers := false
    | Some v -> Printf.eprintf "ignoring --defer %s (want on|off)\n" v
    | None -> ()
  in
  (* --only e13,e14: run a subset of the sections (shape, scaling, tc,
     e11, e12, e13, e14, e15, micro) *)
  let only =
    let rec find = function
      | "--only" :: spec :: _ -> Some (String.split_on_char ',' spec)
      | _ :: rest -> find rest
      | [] -> None
    in
    find (Array.to_list Sys.argv)
  in
  let want name = match only with None -> true | Some l -> List.mem name l in
  if want "shape" then begin
    e1_table ();
    e2_table ();
    e4_table ();
    e5_table ();
    e6_table ();
    nesting_table ();
    e8_table ();
    e10_table ()
  end;
  if want "scaling" then scaling_table ~quick ();
  if want "tc" then tc_table ~quick ();
  if want "e11" then e11_table ~quick ();
  if want "e12" then begin
    e12_parallel_table ~quick ~domains ();
    e12_plan_cache_table ~quick ()
  end;
  if want "e13" then e13_table ~quick ~huge ();
  if want "e14" then e14_table ~quick ();
  if want "e15" then e15_table ~quick ~huge ();
  if want "e16" then e16_memory_table ~quick ~huge ();
  if (not quick) && want "micro" then run_benchmarks ();
  Option.iter (write_json ~quick ~huge ~domains) json_path;
  (* --check BASELINE [--tolerance PCT]: compare this run's measurements
     against a committed snapshot and exit non-zero on regression *)
  let check_path =
    let rec find = function
      | "--check" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find (Array.to_list Sys.argv)
  in
  let tolerance =
    let rec find = function
      | "--tolerance" :: pct :: _ -> Some pct
      | _ :: rest -> find rest
      | [] -> None
    in
    match find (Array.to_list Sys.argv) with
    | Some pct -> (
      match float_of_string_opt pct with
      | Some f when f >= 0. -> f
      | _ ->
        Printf.eprintf "ignoring --tolerance %s (want a percentage)\n" pct;
        25.)
    | None -> 25.
  in
  (match check_path with
  | Some path ->
    let status = check_baseline ~tolerance path in
    if status <> 0 then exit status
  | None -> ());
  print_newline ()
