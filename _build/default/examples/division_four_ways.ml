(* Relational division — the tutorial's favourite discriminator — written
   four ways, each drawn with the formalism that fits it best:

     RA    ÷ operator              → DFQL dataflow tree
     SQL   double NOT EXISTS       → QueryVis groups + arrows
     TRC   ∀ with implication      → Relational Diagram nested boxes
     Datalog double negation       → QBE skeletons with a temp relation

   All four return the same sailors, and the diagrams expose how each
   language "thinks" about universal quantification.

   Run with:  dune exec examples/division_four_ways.exe *)

let db = Diagres_data.Sample_db.db

let schemas =
  List.map
    (fun (n, r) -> (n, Diagres_data.Relation.schema r))
    (Diagres_data.Database.relations db)

let show name rel =
  Printf.printf "%s answers: {%s}\n" name
    (String.concat ", "
       (List.map
          (fun t -> Diagres_data.Value.to_string (Diagres_data.Tuple.get t 0))
          (Diagres_data.Relation.tuples rel)))

let () =
  print_endline "Q: which sailors reserved ALL red boats?\n";

  (* 1. RA with the division operator *)
  print_endline "== 1. RA: the ÷ operator (drawn as DFQL dataflow) ==";
  let ra =
    Diagres_ra.Parser.parse
      "project[sid,bid](Reserves) div project[bid](select[color='red'](Boat))"
  in
  print_endline ("    " ^ Diagres_ra.Pretty.unicode ra);
  show "RA" (Diagres_ra.Eval.eval db ra);
  print_string (Diagres_diagrams.Dfql.to_ascii (Diagres_diagrams.Dfql.of_ra ra));
  print_endline
    "    (note: ÷ answers differ from ∀ when there are no red boats at all\n\
    \     — the empty-divisor subtlety; on this instance they coincide)\n";

  (* 2. SQL with double NOT EXISTS *)
  print_endline "== 2. SQL: double NOT EXISTS (drawn as QueryVis) ==";
  let sql = (Diagres.Catalog.find "q3").Diagres.Catalog.sql in
  print_endline sql;
  let stmt = Diagres_sql.Parser.parse sql in
  show "SQL" (Diagres_sql.To_ra.eval db stmt);
  let qv = List.hd (Diagres_diagrams.Queryvis.of_sql schemas stmt) in
  Printf.printf "QueryVis needs %d reading arrows:\n"
    (Diagres_diagrams.Queryvis.arrow_count qv);
  print_string (Diagres_diagrams.Queryvis.to_ascii qv);

  (* 3. TRC with a universal quantifier *)
  print_endline "\n== 3. TRC: ∀ + ⇒ (drawn as a Relational Diagram) ==";
  let trc_src = (Diagres.Catalog.find "q3").Diagres.Catalog.trc in
  print_endline trc_src;
  let trc = Diagres_rc.Trc_parser.parse trc_src in
  show "TRC" (Diagres_rc.Trc.eval db trc);
  let rd = Diagres_diagrams.Relational_diagram.of_trc trc in
  print_endline "Relational Diagram needs 0 arrows (nesting carries scope):";
  print_string (Diagres_diagrams.Relational_diagram.to_ascii rd);

  (* 4. Datalog with double negation *)
  print_endline "\n== 4. Datalog: double negation (drawn as QBE steps) ==";
  let dl_src = (Diagres.Catalog.find "q3").Diagres.Catalog.datalog in
  print_endline dl_src;
  let p = Diagres_datalog.Parser.parse dl_src in
  show "Datalog" (Diagres_datalog.Eval.query db p ~goal:"q3");
  let qbe = Diagres_diagrams.Qbe.of_datalog schemas p ~goal:"q3" in
  let steps, temps, _ = Diagres_diagrams.Qbe.stats qbe in
  Printf.printf "QBE needs %d steps and %d temporary relations:\n" steps temps;
  print_string (Diagres_diagrams.Qbe.to_ascii qbe);

  (* and back to SQL from the diagram's reading *)
  print_endline "\n== the loop closes: diagram reading → SQL ==";
  let panels = [ List.hd (Diagres_diagrams.Relational_diagram.to_trc rd) ] in
  print_endline (Diagres_sql.Of_trc.to_string panels);
  let back = Diagres_sql.Parser.parse (Diagres_sql.Of_trc.to_string panels) in
  show "diagram→SQL" (Diagres_sql.To_ra.eval db back)
