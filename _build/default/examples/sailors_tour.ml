(* The tutorial's Part-3/Part-5 backbone, end to end: the five catalog
   queries, each in five textual languages and several diagrammatic
   formalisms, with cross-language agreement checked as we go.

   Run with:  dune exec examples/sailors_tour.exe *)

let db = Diagres_data.Sample_db.db

let schemas =
  List.map
    (fun (n, r) -> (n, Diagres_data.Relation.schema r))
    (Diagres_data.Database.relations db)

let show_rows rel =
  let rows =
    List.map
      (fun t ->
        "("
        ^ String.concat ", "
            (List.map Diagres_data.Value.to_string (Diagres_data.Tuple.to_list t))
        ^ ")")
      (Diagres_data.Relation.tuples rel)
  in
  String.concat " " rows

let () =
  List.iter
    (fun e ->
      Printf.printf "================ %s: %s ================\n"
        e.Diagres.Catalog.id e.Diagres.Catalog.description;
      Printf.printf "SQL:     %s\n" e.Diagres.Catalog.sql;
      Printf.printf "RA:      %s\n" e.Diagres.Catalog.ra;
      Printf.printf "TRC:     %s\n" e.Diagres.Catalog.trc;
      Printf.printf "DRC:     %s\n" e.Diagres.Catalog.drc;
      Printf.printf "Datalog:\n%s\n" e.Diagres.Catalog.datalog;
      let results = Diagres.Catalog.eval_all db e in
      let _, first = List.hd results in
      let agree =
        List.for_all
          (fun (_, r) -> Diagres_data.Relation.same_rows first r)
          results
      in
      Printf.printf "answers (%s): %s\n"
        (if agree then "all 5 languages agree" else "LANGUAGES DISAGREE!")
        (show_rows first);
      (* draw the Relational Diagram panels (disjunctions split out) *)
      let trc = Diagres.Catalog.parsed_trc e in
      let panels =
        Diagres_diagrams.Relational_diagram.of_trc_queries
          (Diagres_rc.Translate.drawable_panels schemas [ trc ])
      in
      Printf.printf "-- Relational Diagram (%d panel%s) --\n"
        (Diagres_diagrams.Relational_diagram.panel_count panels)
        (if Diagres_diagrams.Relational_diagram.panel_count panels = 1 then ""
         else "s");
      print_string (Diagres_diagrams.Relational_diagram.to_ascii panels);
      (* QBE via the Datalog program: the tutorial's division discussion *)
      if e.Diagres.Catalog.id = "q3" then begin
        print_endline "-- QBE (division needs steps + a temporary relation) --";
        let p = Diagres.Catalog.parsed_datalog e in
        let qbe = Diagres_diagrams.Qbe.of_datalog schemas p ~goal:"q3" in
        print_string (Diagres_diagrams.Qbe.to_ascii qbe);
        let steps, temps, rows = Diagres_diagrams.Qbe.stats qbe in
        Printf.printf "QBE steps=%d temp relations=%d skeleton rows=%d\n" steps
          temps rows;
        let _, occs, repeats = Diagres_datalog.Ast.stats p in
        Printf.printf
          "Datalog body atoms=%d repeated-table occurrences=%d — \"is QBE \
           really more visual?\"\n"
          occs repeats
      end;
      (* DFQL dataflow for the RA expression *)
      print_endline "-- DFQL dataflow (RA operator tree) --";
      print_string
        (Diagres_diagrams.Dfql.to_ascii
           (Diagres_diagrams.Dfql.of_ra (Diagres.Catalog.parsed_ra e)));
      print_newline ())
    Diagres.Catalog.all
