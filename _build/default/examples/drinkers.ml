(* A second vocabulary: the drinkers–bars–beers database, with the classic
   "only bars that serve a beer they like" ∀∃ query drawn across
   formalisms — nothing in the toolkit is sailors-specific.

   Run with:  dune exec examples/drinkers.exe *)

let db = Diagres_data.Drinkers_db.db

let schemas = Diagres_data.Drinkers_db.schemas

let show name rel =
  Printf.printf "%-4s {%s}\n" name
    (String.concat ", "
       (List.map
          (fun t -> Diagres_data.Value.to_string (Diagres_data.Tuple.get t 0))
          (Diagres_data.Relation.tuples rel)))

let () =
  print_endline "== D1: drinkers who frequent a bar serving a beer they like ==";
  let d1 =
    Diagres_rc.Trc_parser.parse
      "{ f.drinker | f in Frequents : exists s in Serves, l in Likes \
       (s.bar = f.bar and l.drinker = f.drinker and l.beer = s.beer) }"
  in
  show "D1" (Diagres_rc.Trc.eval db d1);

  print_endline "\n== D2: … who frequent ONLY such bars (∀∃ pattern) ==";
  let d2 =
    Diagres_rc.Trc_parser.parse
      "{ l0.drinker | l0 in Likes : forall f in Frequents (f.drinker = \
       l0.drinker implies exists s in Serves, l in Likes (s.bar = f.bar and \
       l.drinker = f.drinker and l.beer = s.beer)) and exists f0 in \
       Frequents (f0.drinker = l0.drinker) }"
  in
  show "D2" (Diagres_rc.Trc.eval db d2);

  print_endline "\nRelational Diagram for D2 (two nested negation boxes):";
  let rd = Diagres_diagrams.Relational_diagram.of_trc d2 in
  print_string (Diagres_diagrams.Relational_diagram.to_ascii rd);

  print_endline "\nSQL back-translation of the diagram's reading:";
  print_endline
    (Diagres_sql.Of_trc.to_string
       (Diagres_diagrams.Relational_diagram.to_trc rd));

  (* cross-language check on the second schema *)
  let sql =
    "SELECT DISTINCT l0.drinker FROM Likes l0 WHERE NOT EXISTS (SELECT \
     f.bar FROM Frequents f WHERE f.drinker = l0.drinker AND NOT EXISTS \
     (SELECT s.bar FROM Serves s, Likes l WHERE s.bar = f.bar AND \
     l.drinker = f.drinker AND l.beer = s.beer)) AND EXISTS (SELECT f0.bar \
     FROM Frequents f0 WHERE f0.drinker = l0.drinker)"
  in
  let via_sql = Diagres_sql.To_ra.eval_string db sql in
  show "\nD2 via SQL" via_sql;
  Printf.printf "TRC and SQL agree: %b\n"
    (Diagres_data.Relation.same_rows (Diagres_rc.Trc.eval db d2) via_sql);

  print_endline "\n== D3: drinkers who like a beer served nowhere ==";
  let d3 =
    Diagres_rc.Trc_parser.parse
      "{ l.drinker | l in Likes : not (exists s in Serves (s.beer = \
       l.beer)) }"
  in
  show "D3" (Diagres_rc.Trc.eval db d3);
  ignore schemas
