(* The Fig. 1 / Fig. 2 scenario of the paper, minus the microphone: a
   "dictated" query arrives as text, the system parses it, draws back what
   it understood, and proves to itself that the diagram means the same
   thing as the query it will execute.

   The paper's premise is that users must be able to verify a
   machine-generated query.  Here the whole loop is mechanical:

     dictation (SQL text) → parse → TRC panels → Relational Diagram
                                   ↘ evaluate  =  evaluate panel union ↙

   Run with:  dune exec examples/voice_assistant.exe *)

let db = Diagres_data.Sample_db.db

(* The "assistant" mishears one query — note q_heard_wrong drops the NOT.
   The diagram makes the difference visible, and the verification loop
   still holds for what was actually parsed (the diagram never lies about
   the query; it can only reveal that the query is not what you meant). *)
let dictations =
  [ ( "sailors who reserved a red boat",
      "SELECT DISTINCT s.sname FROM Sailor s, Reserves r, Boat b WHERE s.sid \
       = r.sid AND r.bid = b.bid AND b.color = 'red'" );
    ( "sailors who reserved ALL red boats",
      "SELECT DISTINCT s.sname FROM Sailor s WHERE NOT EXISTS (SELECT b.bid \
       FROM Boat b WHERE b.color = 'red' AND NOT EXISTS (SELECT r.sid FROM \
       Reserves r WHERE r.sid = s.sid AND r.bid = b.bid))" );
    ( "sailors who reserved NO boat at all (misheard: dropped the NOT)",
      "SELECT DISTINCT s.sname FROM Sailor s WHERE EXISTS (SELECT r.sid \
       FROM Reserves r WHERE r.sid = s.sid)" ) ]

let () =
  List.iteri
    (fun i (intent, sql) ->
      Printf.printf "=============== dictation %d ===============\n" (i + 1);
      Printf.printf "user intent:  %S\n" intent;
      Printf.printf "system heard: %s\n\n" sql;
      let q, rendering, verified = Diagres.Pipeline.run db "sql" sql "rd" in
      print_endline "the system draws what it understood:";
      List.iter print_string rendering.Diagres.Pipeline.panels_ascii;
      Printf.printf "\ndiagram ≡ query (verified on the database): %b\n"
        verified;
      print_endline "answers under that reading:";
      print_string
        (Diagres_data.Relation.to_string (Diagres.Languages.eval db q));
      print_newline ())
    dictations;
  print_endline
    "Dictation 3 shows the point of query visualization: the diagram is \
     faithful to the parsed query, so the *missing* negation box is visible \
     at a glance — the user catches the misheard query before trusting its \
     answers."
