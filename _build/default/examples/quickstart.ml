(* Quickstart: parse a SQL query, translate it, draw it, verify the loop.

   Run with:  dune exec examples/quickstart.exe *)

let db = Diagres_data.Sample_db.db

let schemas =
  List.map
    (fun (n, r) -> (n, Diagres_data.Relation.schema r))
    (Diagres_data.Database.relations db)

let () =
  print_endline "=== 1. A SQL query over the sailors database ===";
  let sql =
    "SELECT DISTINCT s.sname FROM Sailor s, Reserves r, Boat b WHERE s.sid \
     = r.sid AND r.bid = b.bid AND b.color = 'red'"
  in
  print_endline sql;

  print_endline "\n=== 2. Evaluate it ===";
  let result = Diagres_sql.To_ra.eval_string db sql in
  print_string (Diagres_data.Relation.to_string result);

  print_endline "\n=== 3. Translate: SQL -> TRC -> RA ===";
  let stmt = Diagres_sql.Parser.parse sql in
  let trc = Diagres_sql.To_trc.statement_single schemas stmt in
  print_endline ("TRC: " ^ Diagres_rc.Trc.to_string trc);
  let ra = Diagres_rc.Translate.trc_to_ra schemas trc in
  let ra = Diagres_ra.Optimize.optimize_db db ra in
  print_endline ("RA:  " ^ Diagres_ra.Pretty.unicode ra);

  print_endline "\n=== 4. Draw it as a Relational Diagram ===";
  let rd = Diagres_diagrams.Relational_diagram.of_trc trc in
  print_string (Diagres_diagrams.Relational_diagram.to_ascii rd);
  List.iteri
    (fun i svg ->
      let path = Printf.sprintf "quickstart-rd-%d.svg" (i + 1) in
      let oc = open_out path in
      output_string oc svg;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length svg))
    (Diagres_diagrams.Relational_diagram.to_svg rd);

  print_endline "\n=== 5. Verify: diagram reading = original query ===";
  let q = Diagres.Languages.Q_sql stmt in
  Printf.printf "round trip verified: %b\n" (Diagres.Pipeline.verify_roundtrip db q)
