(* Part 4 of the tutorial: diagrammatic reasoning before databases.

   Decides all 256 syllogistic moods three ways — Euler circles (via their
   Venn embedding), the Venn-Peirce region algebra, and FOL over concrete
   monadic databases — and shows they coincide.

   Run with:  dune exec examples/syllogisms.exe *)

module S = Diagres_diagrams.Syllogism
module V = Diagres_diagrams.Venn

let () =
  print_endline "=== Venn region algebra over {S, M, P} ===";
  let valid = List.filter S.valid_venn S.all_moods in
  Printf.printf "moods valid without existential import: %d (expected 15)\n"
    (List.length valid);
  List.iter
    (fun m ->
      let name =
        List.find_map
          (fun (n, m') -> if m' = m then Some n else None)
          S.valid_modern
      in
      Printf.printf "  %s %s\n" (S.mood_to_string m)
        (Option.value name ~default:"(unnamed?)"))
    valid;

  let valid_import =
    List.filter (S.valid_venn ~existential_import:true) S.all_moods
  in
  Printf.printf
    "\nmoods valid with existential import (traditional logic): %d\n"
    (List.length valid_import);

  print_endline "\n=== Barbara, drawn ===";
  let premises =
    V.of_statements [ "S"; "M"; "P" ]
      [ V.All_are ("M", "P"); V.All_are ("S", "M") ]
  in
  print_string (V.to_ascii premises);
  let svg = V.to_svg premises in
  let oc = open_out "barbara-venn.svg" in
  output_string oc svg;
  close_out oc;
  Printf.printf "wrote barbara-venn.svg (%d bytes)\n" (String.length svg);

  print_endline "\n=== Euler circles: what they cannot draw ===";
  (* "All S are M" + "Some S is not M" is inconsistent; Euler refuses the
     witness zone while Venn shades it and marks the contradiction. *)
  (try
     let _ =
       Diagres_diagrams.Euler.of_statements [ "S"; "M" ]
         [ V.All_are ("S", "M"); V.Some_are_not ("S", "M") ]
     in
     print_endline "Euler accepted (unexpected)"
   with Diagres_diagrams.Euler.Euler_error msg ->
     Printf.printf "Euler diagram refused: %s\n" msg);
  let venn_version =
    V.of_statements [ "S"; "M" ]
      [ V.All_are ("S", "M"); V.Some_are_not ("S", "M") ]
  in
  Printf.printf "Venn draws it and flags inconsistency: %b\n"
    (V.inconsistent venn_version);

  print_endline "\n=== Cross-check against FOL on random monadic databases ===";
  let mismatches = ref 0 in
  let checked = ref 0 in
  List.iteri
    (fun i m ->
      (* premises → conclusion must hold on every instance iff the mood is
         valid; on a random instance, an invalid mood may still hold, but a
         valid mood must never fail *)
      if S.valid_venn m then
        for seed = 1 to 5 do
          incr checked;
          let db =
            Diagres_data.Generator.monadic_db ~universe:6
              ~preds:[ "S"; "M"; "P" ] ((i * 13) + seed)
          in
          if not (Diagres_rc.Drc.eval_sentence db (S.to_fol m)) then begin
            incr mismatches;
            Printf.printf "  MISMATCH on %s seed %d\n" (S.mood_to_string m) seed
          end
        done)
    S.all_moods;
  Printf.printf "checked %d (mood, database) pairs: %d mismatches\n" !checked
    !mismatches;

  print_endline "\n=== Venn-Peirce: disjunctive information needs panels ===";
  (* "All A are B or no A is B" has no single Venn diagram *)
  let d1 = V.of_statements [ "A"; "B" ] [ V.All_are ("A", "B") ] in
  let d2 = V.of_statements [ "A"; "B" ] [ V.No_are ("A", "B") ] in
  let vp = Diagres_diagrams.Venn_peirce.disjoin [ d1 ] [ d2 ] in
  print_string (Diagres_diagrams.Venn_peirce.to_ascii vp);
  Printf.printf "alternatives: %d — the same device Relational Diagrams use \
                 for UNION\n"
    (List.length (Diagres_diagrams.Venn_peirce.alternatives vp))
