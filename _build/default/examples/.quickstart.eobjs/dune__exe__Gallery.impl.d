examples/gallery.ml: Diagres Diagres_data Diagres_diagrams Diagres_logic Diagres_rc Diagres_sql Filename List Printf String Unix
