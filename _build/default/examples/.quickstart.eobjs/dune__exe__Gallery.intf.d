examples/gallery.mli:
