examples/peirce_proofs.mli:
