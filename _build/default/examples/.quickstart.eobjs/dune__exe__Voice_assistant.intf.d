examples/voice_assistant.mli:
