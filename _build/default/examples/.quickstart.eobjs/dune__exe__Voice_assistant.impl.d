examples/voice_assistant.ml: Diagres Diagres_data List Printf
