examples/quickstart.mli:
