examples/sailors_tour.ml: Diagres Diagres_data Diagres_datalog Diagres_diagrams Diagres_rc List Printf String
