examples/division_four_ways.mli:
