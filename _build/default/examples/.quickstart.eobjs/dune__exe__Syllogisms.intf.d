examples/syllogisms.mli:
