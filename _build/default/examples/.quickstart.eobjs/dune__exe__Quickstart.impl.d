examples/quickstart.ml: Diagres Diagres_data Diagres_diagrams Diagres_ra Diagres_rc Diagres_sql List Printf String
