examples/syllogisms.ml: Diagres_data Diagres_diagrams Diagres_rc List Option Printf String
