examples/sailors_tour.mli:
