examples/peirce_proofs.ml: Diagres_diagrams Diagres_logic Diagres_rc List Printf
