examples/drinkers.mli:
