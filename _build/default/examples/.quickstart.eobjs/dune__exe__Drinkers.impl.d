examples/drinkers.ml: Diagres_data Diagres_diagrams Diagres_rc Diagres_sql List Printf String
