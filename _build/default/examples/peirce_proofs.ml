(* Peirce's graphical logic at work: alpha-graph inference and the beta
   graph scope subtlety the tutorial calls the "imperfect mapping" to DRC.

   Run with:  dune exec examples/peirce_proofs.exe *)

module A = Diagres_diagrams.Eg_alpha
module B = Diagres_diagrams.Eg_beta
module P = Diagres_logic.Prop
module F = Diagres_logic.Fol

let show g = Printf.printf "  %s   ≡   %s\n" (A.to_string g) (P.to_string (A.to_prop g))

let () =
  print_endline "=== Alpha graphs: modus ponens as graph surgery ===";
  (* premise sheet: p, p → q   i.e.   p (p (q)) *)
  let g0 = A.of_prop (P.And (P.Var "p", P.Implies (P.Var "p", P.Var "q"))) in
  print_endline "start: p and its scroll p→q";
  show g0;
  (* 1. deiterate the inner p (justified by the outer p) *)
  let g1 = A.deiterate g0 ~path:[ 1 ] ~index:0 in
  print_endline "after deiteration of the inner p:";
  show g1;
  (* 2. the scroll is now a double cut around q: erase it *)
  let g2 = A.double_cut_erase g1 ~path:[] ~index:1 in
  print_endline "after double-cut erasure:";
  show g2;
  (* 3. erase p (positive area) *)
  let g3 = A.erase g2 ~path:[] ~index:0 in
  print_endline "after erasure of p — the conclusion:";
  show g3;
  Printf.printf "every step sound (premise ⊨ conclusion): %b %b %b\n"
    (A.step_sound g0 g1) (A.step_sound g1 g2) (A.step_sound g2 g3);
  print_endline "\nthe final graph, drawn:";
  print_string (A.to_ascii g0);

  print_endline "\n=== Beta graphs: where does the line begin? ===";
  (* Two graphs with the same predicates and cut, differing only in whether
     the line of identity reaches the sheet: *)
  let inside_only : B.t =
    (* cut contains the whole line:   ¬∃x P(x) *)
    { B.lines = [];
      preds = [];
      cuts = [ { B.lines = [ 1 ]; preds = [ { B.name = "P"; args = [ B.Lig 1 ] } ]; cuts = [] } ] }
  in
  let reaches_sheet : B.t =
    (* line starts on the sheet and dips into the cut:   ∃x ¬P(x) *)
    { B.lines = [ 1 ];
      preds = [];
      cuts = [ { B.lines = [ 1 ]; preds = [ { B.name = "P"; args = [ B.Lig 1 ] } ]; cuts = [] } ] }
  in
  Printf.printf "line inside the cut:      %s\n"
    (F.to_string (B.to_drc inside_only));
  Printf.printf "line reaching the sheet:  %s\n"
    (F.to_string (B.to_drc reaches_sheet));
  Printf.printf "crossing ligatures: %d vs %d\n"
    (List.length (B.crossing_ligatures inside_only))
    (List.length (B.crossing_ligatures reaches_sheet));
  print_endline
    "the two graphs differ only in line extent — exactly the reading burden \
     the tutorial highlights; under the innermost convention the second \
     would collapse into the first:";
  Printf.printf "innermost reading of the crossing graph: %s\n"
    (F.to_string (B.to_drc_innermost reaches_sheet));

  print_endline "\n=== The three abuses of the line (Part 6) ===";
  let sentence =
    Diagres_rc.Drc_parser.parse_formula
      "exists s, b, d (Reserves(s, b, d) & exists n (Boat(b, n, 'red')) & s \
       <> b)"
  in
  let beta = B.of_drc sentence in
  Printf.printf "beta graph:          %s\n"
    (Diagres_diagrams.Line_abuse.report_to_string
       (Diagres_diagrams.Line_abuse.of_beta beta));
  let trc =
    Diagres_rc.Trc_parser.parse
      "{ r.sid | r in Reserves : exists b in Boat (b.bid = r.bid and b.color \
       = 'red' and r.sid <> r.bid) }"
  in
  let rd = Diagres_diagrams.Relational_diagram.of_trc trc in
  let scene =
    (List.hd rd.Diagres_diagrams.Relational_diagram.panels)
      .Diagres_diagrams.Relational_diagram.scene
  in
  Printf.printf "relational diagram:  %s\n"
    (Diagres_diagrams.Line_abuse.report_to_string
       (Diagres_diagrams.Line_abuse.of_scene scene));
  print_endline
    "beta lines carry existence+identity+predication at once; Relational \
     Diagrams move existence into nesting and label every predication — no \
     line carries two roles."
