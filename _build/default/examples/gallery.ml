(* Generate the full gallery: every formalism applied to its natural
   showcase, written as SVG files into ./gallery/.

   Run with:  dune exec examples/gallery.exe *)

let db = Diagres_data.Sample_db.db

let schemas =
  List.map
    (fun (n, r) -> (n, Diagres_data.Relation.schema r))
    (Diagres_data.Database.relations db)

let out_dir = "gallery"

let save name svg =
  let path = Filename.concat out_dir (name ^ ".svg") in
  let oc = open_out path in
  output_string oc svg;
  close_out oc;
  Printf.printf "  %-32s %6d bytes\n" path (String.length svg)

let () =
  (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  print_endline "writing the diagram gallery:";

  (* Part 4: historical formalisms *)
  let barbara =
    Diagres_diagrams.Venn.of_statements [ "S"; "M"; "P" ]
      [ Diagres_diagrams.Venn.All_are ("M", "P");
        Diagres_diagrams.Venn.All_are ("S", "M") ]
  in
  save "venn-barbara" (Diagres_diagrams.Venn.to_svg barbara);

  let euler =
    Diagres_diagrams.Euler.of_statements [ "S"; "M"; "P" ]
      [ Diagres_diagrams.Venn.All_are ("S", "M");
        Diagres_diagrams.Venn.All_are ("M", "P") ]
  in
  save "euler-barbara" (Diagres_diagrams.Euler.to_svg euler);

  let alpha =
    Diagres_diagrams.Eg_alpha.of_prop
      (Diagres_logic.Prop.parse "p & (p -> q)")
  in
  save "alpha-modus-ponens" (Diagres_diagrams.Eg_alpha.to_svg alpha);

  let beta =
    Diagres_diagrams.Eg_beta.of_drc
      (Diagres_rc.Drc_parser.parse_formula
         "exists s, b, d (Reserves(s, b, d) & not (exists n, c (Boat(b, n, \
          c) & c = 'red')))")
  in
  save "beta-graph" (Diagres_diagrams.Eg_beta.to_svg beta);

  (* Part 5: modern formalisms on Q3 *)
  let q3 = Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q3") in
  let rd = Diagres_diagrams.Relational_diagram.of_trc q3 in
  List.iteri
    (fun i svg -> save (Printf.sprintf "relational-diagram-q3-%d" (i + 1)) svg)
    (Diagres_diagrams.Relational_diagram.to_svg rd);

  save "queryvis-q3"
    (Diagres_diagrams.Queryvis.to_svg (Diagres_diagrams.Queryvis.of_trc q3));

  save "dfql-q3"
    (Diagres_diagrams.Dfql.to_svg
       (Diagres_diagrams.Dfql.of_ra (Diagres.Catalog.parsed_ra (Diagres.Catalog.find "q3"))));

  let qbe =
    Diagres_diagrams.Qbe.of_datalog schemas
      (Diagres.Catalog.parsed_datalog (Diagres.Catalog.find "q3"))
      ~goal:"q3"
  in
  save "qbe-q3" (Diagres_diagrams.Qbe.to_svg qbe);

  let sd =
    Diagres_diagrams.String_diagram.of_drc_query
      (Diagres_rc.Drc_parser.parse
         "{ s | exists n, r, a (Sailor(s, n, r, a) & r = 10) }")
  in
  save "string-diagram" (Diagres_diagrams.String_diagram.to_svg sd);

  let cg =
    Diagres_diagrams.Conceptual_graph.of_trc
      (Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q1"))
  in
  save "conceptual-graph-q1" (Diagres_diagrams.Conceptual_graph.to_svg cg);

  (* Q4: the disjunction needs two panels *)
  let q4_panels =
    Diagres_rc.Translate.drawable_panels schemas
      [ Diagres.Catalog.parsed_trc (Diagres.Catalog.find "q4") ]
  in
  List.iteri
    (fun i svg -> save (Printf.sprintf "relational-diagram-q4-panel%d" (i + 1)) svg)
    (Diagres_diagrams.Relational_diagram.to_svg
       (Diagres_diagrams.Relational_diagram.of_trc_queries q4_panels));

  (* extensions *)
  let cd = Diagres_diagrams.Constraint_diagram.create [ "P"; "Q" ] in
  let cd = Diagres_diagrams.Constraint_diagram.add_spider cd "s1" [ 3 ] in
  let cd =
    Diagres_diagrams.Constraint_diagram.add_arrow cd ~relation:"R" ~src:"s1"
      ~dst_contour:"Q"
  in
  save "constraint-diagram" (Diagres_diagrams.Constraint_diagram.to_svg cd);

  save "higraph-schema"
    (Diagres_diagrams.Higraph.to_svg (Diagres_diagrams.Higraph.of_schemas schemas));

  (* Part 5 late entries: DataPlay's quantifier tree and SQLVis's
     syntax-faithful view of the same query *)
  let dp =
    Diagres_diagrams.Dataplay.query ~anchor_var:"s" ~anchor_table:"Sailor"
      [ Diagres_diagrams.Dataplay.node
          ~quantifier:Diagres_diagrams.Dataplay.All
          ~predicates:
            [ (Diagres_logic.Fol.Eq,
               Diagres_rc.Trc.Field ("b", "color"),
               Diagres_rc.Trc.Const (Diagres_data.Value.String "red")) ]
          ~children:
            [ Diagres_diagrams.Dataplay.node
                ~predicates:
                  [ (Diagres_logic.Fol.Eq,
                     Diagres_rc.Trc.Field ("r", "sid"),
                     Diagres_rc.Trc.Field ("s", "sid"));
                    (Diagres_logic.Fol.Eq,
                     Diagres_rc.Trc.Field ("r", "bid"),
                     Diagres_rc.Trc.Field ("b", "bid")) ]
                "r" "Reserves" ]
          "b" "Boat" ]
  in
  save "dataplay-q3" (Diagres_diagrams.Dataplay.to_svg dp);

  save "sqlvis-q3"
    (Diagres_diagrams.Sqlvis.to_svg
       (Diagres_diagrams.Sqlvis.of_sql
          (Diagres_sql.Parser.parse
             (Diagres.Catalog.find "q3").Diagres.Catalog.sql)));

  (* Begriffsschrift is 2-D ASCII art: store it as a text file *)
  let b =
    Diagres_diagrams.Begriffsschrift.of_fol
      (Diagres_rc.Drc_parser.parse_formula "forall x (P(x) implies Q(x))")
  in
  let path = Filename.concat out_dir "begriffsschrift.txt" in
  let oc = open_out path in
  output_string oc (Diagres_diagrams.Begriffsschrift.to_ascii b);
  close_out oc;
  Printf.printf "  %-32s (ascii ladder)\n" path;

  print_endline "done."
