(** A generic tokenizer shared by the RA, RC, SQL and Datalog parsers.

    Tokens: identifiers (letters, digits, [_], [.], optionally case-folded),
    integer and float literals, single-quoted strings with doubled-quote
    escapes, and multi-character symbols drawn from a fixed table.  Comments
    ([-- …] to end of line) are skipped.  Every token carries its source
    offset so parse errors are located. *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Str of string
  | Sym of string
  | Eof

type spanned = { tok : token; off : int }

exception Lex_error of string * int

(* Longest-match-first symbol table: multi-char symbols must precede their
   prefixes. *)
let default_symbols =
  [ "<->"; "->"; "<="; ">="; "<>"; "!="; ":-"; "||"; "&&"; "(" ; ")"; "[";
    "]"; "{"; "}"; ","; ";"; "."; "="; "<"; ">"; "*"; "+"; "-"; "/"; "!";
    "&"; "|"; "∃"; "∀"; "¬"; "∧"; "∨"; ":" ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(** [tokenize ~symbols ~ident_dot src] lexes [src] to a token list.
    [ident_dot] lets qualified names like [s.sid] lex as one identifier
    (used by SQL/TRC); when false, [.] lexes as a symbol (used by RC
    quantifier syntax is still fine because variables there are unqualified). *)
let tokenize ?(symbols = default_symbols) ?(ident_dot = false) src =
  let n = String.length src in
  let out = ref [] in
  let pos = ref 0 in
  let push tok off = out := { tok; off } :: !out in
  let match_symbol () =
    List.find_opt
      (fun s ->
        let l = String.length s in
        !pos + l <= n && String.sub src !pos l = s)
      symbols
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && !pos + 1 < n && src.[!pos + 1] = '-' then begin
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do incr pos done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while
        !pos < n
        && (is_ident_char src.[!pos]
           || (ident_dot && src.[!pos] = '.' && !pos + 1 < n
              && is_ident_start src.[!pos + 1]))
      do
        incr pos
      done;
      push (Ident (String.sub src start (!pos - start))) start
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do incr pos done;
      if !pos < n && src.[!pos] = '.' && !pos + 1 < n && is_digit src.[!pos + 1]
      then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do incr pos done;
        push (Float (float_of_string (String.sub src start (!pos - start)))) start
      end
      else push (Int (int_of_string (String.sub src start (!pos - start)))) start
    end
    else if c = '\'' then begin
      let start = !pos in
      incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Lex_error ("unterminated string", start))
        else if src.[!pos] = '\'' then
          if !pos + 1 < n && src.[!pos + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2;
            go ()
          end
          else incr pos
        else begin
          Buffer.add_char buf src.[!pos];
          incr pos;
          go ()
        end
      in
      go ();
      push (Str (Buffer.contents buf)) start
    end
    else
      match match_symbol () with
      | Some s ->
        push (Sym s) !pos;
        pos := !pos + String.length s
      | None -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !pos))
  done;
  push Eof n;
  List.rev !out

let token_to_string = function
  | Ident s -> s
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Str s -> "'" ^ s ^ "'"
  | Sym s -> s
  | Eof -> "<eof>"
