lib/parsekit/stream.ml: Diagres_data Diagres_logic Lexer List Printf String
