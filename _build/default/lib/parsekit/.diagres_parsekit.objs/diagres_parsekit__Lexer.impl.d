lib/parsekit/lexer.ml: Buffer List Printf String
