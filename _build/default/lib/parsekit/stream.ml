(** A mutable cursor over a token list, with the combinators every
    recursive-descent parser in this project is written against. *)

exception Parse_error of string * int

type t = {
  mutable toks : Lexer.spanned list;
  src : string;  (** original text, for error context *)
  case_fold : bool;  (** compare keywords case-insensitively (SQL) *)
}

let of_tokens ?(case_fold = false) src toks = { toks; src; case_fold }

let make ?symbols ?ident_dot ?case_fold src =
  of_tokens ?case_fold src (Lexer.tokenize ?symbols ?ident_dot src)

let current s =
  match s.toks with [] -> Lexer.{ tok = Eof; off = 0 } | t :: _ -> t

let peek s = (current s).Lexer.tok

let peek2 s =
  match s.toks with _ :: t :: _ -> t.Lexer.tok | _ -> Lexer.Eof

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let offset s = (current s).Lexer.off

let error s msg =
  let off = offset s in
  let context =
    let stop = min (String.length s.src) (off + 20) in
    String.sub s.src off (stop - off)
  in
  raise (Parse_error (Printf.sprintf "%s near %S" msg context, off))

let fold s x = if s.case_fold then String.lowercase_ascii x else x

(** Keyword test: matches an [Ident] equal to [kw] under the case rule. *)
let at_kw s kw =
  match peek s with Lexer.Ident x -> fold s x = fold s kw | _ -> false

let at_sym s sym = match peek s with Lexer.Sym x -> x = sym | _ -> false

let eat_kw s kw = if at_kw s kw then (advance s; true) else false
let eat_sym s sym = if at_sym s sym then (advance s; true) else false

let expect_kw s kw =
  if not (eat_kw s kw) then error s (Printf.sprintf "expected %S" kw)

let expect_sym s sym =
  if not (eat_sym s sym) then error s (Printf.sprintf "expected %S" sym)

let ident s =
  match peek s with
  | Lexer.Ident x ->
    advance s;
    x
  | t -> error s (Printf.sprintf "expected identifier, got %s" (Lexer.token_to_string t))

(** Identifier that is not one of [reserved] (case-rule applied). *)
let ident_not s reserved =
  match peek s with
  | Lexer.Ident x when not (List.mem (fold s x) (List.map (fold s) reserved)) ->
    advance s;
    x
  | t -> error s (Printf.sprintf "expected name, got %s" (Lexer.token_to_string t))

let value s =
  match peek s with
  | Lexer.Int i -> advance s; Diagres_data.Value.Int i
  | Lexer.Float f -> advance s; Diagres_data.Value.Float f
  | Lexer.Str str -> advance s; Diagres_data.Value.String str
  | Lexer.Sym "-" -> (
    advance s;
    match peek s with
    | Lexer.Int i -> advance s; Diagres_data.Value.Int (-i)
    | Lexer.Float f -> advance s; Diagres_data.Value.Float (-.f)
    | _ -> error s "expected number after '-'")
  | t -> error s (Printf.sprintf "expected literal, got %s" (Lexer.token_to_string t))

let at_eof s = peek s = Lexer.Eof

let expect_eof s = if not (at_eof s) then error s "trailing input"

(** [sep_list1 s ~sep p] parses [p (sep p)*]. *)
let sep_list1 s ~sep p =
  let first = p s in
  let rec go acc = if eat_sym s sep then go (p s :: acc) else List.rev acc in
  go [ first ]

(** Comparison-operator token shared by every language's predicate syntax. *)
let cmp_op s : Diagres_logic.Fol.cmp option =
  match peek s with
  | Lexer.Sym "=" -> advance s; Some Diagres_logic.Fol.Eq
  | Lexer.Sym "<>" | Lexer.Sym "!=" -> advance s; Some Diagres_logic.Fol.Neq
  | Lexer.Sym "<=" -> advance s; Some Diagres_logic.Fol.Le
  | Lexer.Sym ">=" -> advance s; Some Diagres_logic.Fol.Ge
  | Lexer.Sym "<" -> advance s; Some Diagres_logic.Fol.Lt
  | Lexer.Sym ">" -> advance s; Some Diagres_logic.Fol.Gt
  | _ -> None
