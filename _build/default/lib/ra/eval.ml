(** RA evaluator over the in-memory relation substrate. *)

module D = Diagres_data

exception Eval_error of string

let operand_value schema tup = function
  | Ast.Const v -> v
  | Ast.Attr a -> D.Tuple.field schema a tup

let rec pred_holds schema tup = function
  | Ast.Cmp (op, a, b) ->
    Diagres_logic.Fol.cmp_eval op
      (operand_value schema tup a)
      (operand_value schema tup b)
  | Ast.And (p, q) -> pred_holds schema tup p && pred_holds schema tup q
  | Ast.Or (p, q) -> pred_holds schema tup p || pred_holds schema tup q
  | Ast.Not p -> not (pred_holds schema tup p)
  | Ast.Ptrue -> true

let rec eval db (e : Ast.t) : D.Relation.t =
  match e with
  | Ast.Rel r -> (
    match D.Database.find_opt r db with
    | Some rel -> rel
    | None -> raise (Eval_error ("unknown relation " ^ r)))
  | Ast.Select (p, e) ->
    let rel = eval db e in
    let schema = D.Relation.schema rel in
    D.Relation.filter (fun t -> pred_holds schema t p) rel
  | Ast.Project (attrs, e) -> D.Relation.project attrs (eval db e)
  | Ast.Rename (pairs, e) ->
    let rel = eval db e in
    let schema = D.Relation.schema rel in
    let names =
      List.map
        (fun (a : D.Schema.attribute) ->
          match List.assoc_opt a.D.Schema.name pairs with
          | Some fresh -> fresh
          | None -> a.D.Schema.name)
        schema
    in
    D.Relation.rename_all names rel
  | Ast.Product (a, b) -> D.Relation.product (eval db a) (eval db b)
  | Ast.Join (a, b) -> D.Relation.natural_join (eval db a) (eval db b)
  | Ast.Theta_join (p, a, b) ->
    let prod = D.Relation.product (eval db a) (eval db b) in
    let schema = D.Relation.schema prod in
    D.Relation.filter (fun t -> pred_holds schema t p) prod
  | Ast.Union (a, b) -> D.Relation.union (eval db a) (eval db b)
  | Ast.Inter (a, b) -> D.Relation.inter (eval db a) (eval db b)
  | Ast.Diff (a, b) -> D.Relation.diff (eval db a) (eval db b)
  | Ast.Division (a, b) -> D.Relation.division (eval db a) (eval db b)
