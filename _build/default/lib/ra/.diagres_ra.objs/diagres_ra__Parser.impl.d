lib/ra/parser.ml: Ast Diagres_parsekit List
