lib/ra/pretty.ml: Ast Buffer Diagres_data Diagres_logic Fmt List Printf String
