lib/ra/aggregate.ml: Diagres_data Hashtbl List Option Printf
