lib/ra/ast.ml: Diagres_data Diagres_logic List
