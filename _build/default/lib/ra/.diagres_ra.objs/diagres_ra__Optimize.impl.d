lib/ra/optimize.ml: Ast Diagres_data Diagres_logic List Option Typecheck
