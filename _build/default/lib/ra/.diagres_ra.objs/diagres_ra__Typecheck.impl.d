lib/ra/typecheck.ml: Ast Diagres_data Format List
