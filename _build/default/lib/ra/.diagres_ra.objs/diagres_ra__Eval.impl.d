lib/ra/eval.ml: Ast Diagres_data Diagres_logic List
