(** Grouping and aggregation — the step {e beyond} first-order logic.

    The tutorial bounds its scope at FOL expressiveness and observes that
    surveyed tools bolt aggregation on outside the diagram (dbForge's
    "separate query configurator").  This module makes the boundary
    concrete: an extended-RA operator γ[by; aggs] over the same relation
    substrate, deliberately {e not} part of {!Ast} — no calculus
    translation and no diagram mapping exists for it, which is the point. *)

module D = Diagres_data

type func =
  | Count                 (** COUNT of all group rows *)
  | Count_distinct of string
  | Sum of string
  | Min of string
  | Max of string
  | Avg of string

type spec = { func : func; output : string }

exception Aggregate_error of string

let func_to_string = function
  | Count -> "count(*)"
  | Count_distinct a -> Printf.sprintf "count(distinct %s)" a
  | Sum a -> Printf.sprintf "sum(%s)" a
  | Min a -> Printf.sprintf "min(%s)" a
  | Max a -> Printf.sprintf "max(%s)" a
  | Avg a -> Printf.sprintf "avg(%s)" a

let apply_func (schema : D.Schema.t) (tuples : D.Tuple.t list) (f : func) :
    D.Value.t =
  let column a = List.map (D.Tuple.field schema a) tuples in
  let numeric a =
    List.filter_map D.Value.to_float (column a)
  in
  match f with
  | Count -> D.Value.Int (List.length tuples)
  | Count_distinct a ->
    D.Value.Int (List.length (List.sort_uniq D.Value.compare (column a)))
  | Sum a -> D.Value.Float (List.fold_left ( +. ) 0. (numeric a))
  | Avg a -> (
    match numeric a with
    | [] -> D.Value.Null
    | xs -> D.Value.Float (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)))
  | Min a -> (
    match column a with
    | [] -> D.Value.Null
    | v :: vs -> List.fold_left (fun m x -> if D.Value.compare x m < 0 then x else m) v vs)
  | Max a -> (
    match column a with
    | [] -> D.Value.Null
    | v :: vs -> List.fold_left (fun m x -> if D.Value.compare x m > 0 then x else m) v vs)

let func_ty = function
  | Count | Count_distinct _ -> D.Value.Tint
  | Sum _ | Avg _ -> D.Value.Tfloat
  | Min _ | Max _ -> D.Value.Tany

(** γ[by; specs]: group rows of [rel] by the [by] columns and compute one
    output column per spec.  With [by = []] the whole relation is one group
    (global aggregates over an empty relation still yield one row, matching
    SQL).  *)
let group ~(by : string list) ~(specs : spec list) (rel : D.Relation.t) :
    D.Relation.t =
  if specs = [] then raise (Aggregate_error "no aggregate specified");
  let schema = D.Relation.schema rel in
  List.iter
    (fun a ->
      if not (D.Schema.mem a schema) then
        raise (Aggregate_error ("unknown grouping attribute " ^ a)))
    by;
  List.iter
    (fun s ->
      match s.func with
      | Count -> ()
      | Count_distinct a | Sum a | Min a | Max a | Avg a ->
        if not (D.Schema.mem a schema) then
          raise (Aggregate_error ("unknown aggregated attribute " ^ a)))
    specs;
  let out_schema =
    List.map
      (fun a -> D.Schema.attr ~ty:(Option.get (D.Schema.find_opt a schema)).D.Schema.ty a)
      by
    @ List.map (fun s -> D.Schema.attr ~ty:(func_ty s.func) s.output) specs
  in
  D.Schema.check_distinct out_schema;
  let groups = Hashtbl.create 16 in
  D.Relation.iter
    (fun tup ->
      let key = List.map (D.Tuple.field schema) by |> List.map (fun f -> f tup) in
      Hashtbl.replace groups key
        (tup :: (try Hashtbl.find groups key with Not_found -> [])))
    rel;
  (* SQL convention: global aggregate over ∅ is one row *)
  if Hashtbl.length groups = 0 && by = [] then Hashtbl.replace groups [] [];
  let rows =
    Hashtbl.fold
      (fun key tuples acc ->
        (key @ List.map (fun s -> apply_func schema tuples s.func) specs)
        :: acc)
      groups []
  in
  D.Relation.of_lists out_schema rows

(** HAVING: a post-grouping filter. *)
let having (pred : D.Tuple.t -> D.Schema.t -> bool) (rel : D.Relation.t) =
  let schema = D.Relation.schema rel in
  D.Relation.filter (fun t -> pred t schema) rel
