(** Truth tables rendered as text — the tutorial's baseline "non-diagrammatic"
    representation against which Venn-style diagrams are contrasted. *)

type row = { assignment : (string * bool) list; value : bool }

type t = { variables : string list; rows : row list }

let build f =
  let variables = Prop.var_list f in
  let rows =
    List.map
      (fun assignment -> { assignment; value = Prop.eval assignment f })
      (Prop.assignments variables)
  in
  { variables; rows }

let models t = List.filter (fun r -> r.value) t.rows

(** Two formulas are equivalent iff their tables over the joint variable set
    agree row-wise; exposed for cross-checking [Prop.equivalent]. *)
let agree f g =
  let vs = List.sort_uniq String.compare (Prop.vars f @ Prop.vars g) in
  List.for_all
    (fun env -> Prop.eval env f = Prop.eval env g)
    (Prop.assignments vs)

let pp ppf t =
  let b v = if v then "1" else "0" in
  Fmt.pf ppf "%s | value@." (String.concat " " t.variables);
  List.iter
    (fun r ->
      let cells =
        List.map
          (fun v ->
            let value = List.assoc v r.assignment in
            (* pad to the variable-name width so columns line up *)
            let w = String.length v in
            b value ^ String.make (max 0 (w - 1)) ' ')
          t.variables
      in
      Fmt.pf ppf "%s | %s@." (String.concat " " cells) (b r.value))
    t.rows

let to_string t = Fmt.str "%a" pp t
