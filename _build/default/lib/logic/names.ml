(** Fresh-name supplies, shared by the translators.

    A supply hands out names [prefix1], [prefix2], … that avoid a given set
    of reserved names; translators seed the supply with every identifier of
    the input so generated variables never capture. *)

type t = { mutable counter : int; mutable reserved : string list }

let create ?(reserved = []) () = { counter = 0; reserved }

let reserve t names = t.reserved <- names @ t.reserved

let fresh t prefix =
  let rec go () =
    t.counter <- t.counter + 1;
    let name = Printf.sprintf "%s%d" prefix t.counter in
    if List.mem name t.reserved then go ()
    else begin
      t.reserved <- name :: t.reserved;
      name
    end
  in
  go ()

(** [sanitize s] makes [s] usable as an identifier (for attribute-derived
    variable names like [s_sid]). *)
let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    s
