(** Finite first-order structures and formula evaluation.

    A database is read as an FO structure: relation names become predicates
    and the active domain becomes the (finite) universe.  Quantifiers range
    over the active domain — the standard move that makes safe calculus
    queries domain-independent. *)

module D = Diagres_data

type t = {
  universe : D.Value.t list;  (** quantification range *)
  db : D.Database.t;
}

let of_database ?extra_constants db =
  let dom = D.Database.active_domain db in
  let universe =
    match extra_constants with
    | None -> dom
    | Some cs -> List.sort_uniq D.Value.compare (cs @ dom)
  in
  { universe; db }

(** Constants mentioned in a formula, which must be added to the universe so
    that e.g. [∃x. x = 'red' ∧ …] behaves as expected even when 'red' does
    not occur in the instance. *)
let rec constants = function
  | Fol.True | Fol.False -> []
  | Fol.Pred (_, ts) ->
    List.filter_map (function Fol.Const v -> Some v | Fol.Var _ -> None) ts
  | Fol.Cmp (_, a, b) ->
    List.filter_map
      (function Fol.Const v -> Some v | Fol.Var _ -> None)
      [ a; b ]
  | Fol.Not f -> constants f
  | Fol.And (a, b) | Fol.Or (a, b) | Fol.Implies (a, b) ->
    constants a @ constants b
  | Fol.Exists (_, f) | Fol.Forall (_, f) -> constants f

let for_formula f db =
  of_database ~extra_constants:(constants f) db

exception Eval_error of string

let term_value env = function
  | Fol.Const v -> v
  | Fol.Var x -> (
    match List.assoc_opt x env with
    | Some v -> v
    | None -> raise (Eval_error ("unbound variable " ^ x)))

(* Guarded quantification: when [∃x φ] has a positive atom R(…x…) among
   φ's top-level conjuncts, x can only take values from that column of R —
   enumerate those instead of the whole universe.  Purely an optimization;
   semantics are unchanged. *)
let rec guard_values st x (f : Fol.t) =
  match f with
  | Fol.And (a, b) -> (
    match guard_values st x a with
    | Some _ as r -> r
    | None -> guard_values st x b)
  | Fol.Exists (y, g) when y <> x ->
    (* a conjunctively required subformula still guards x *)
    guard_values st x g
  | Fol.Or (a, b) -> (
    (* x is guarded by a disjunction only when both branches guard it *)
    match (guard_values st x a, guard_values st x b) with
    | Some va, Some vb -> Some (List.sort_uniq D.Value.compare (va @ vb))
    | _ -> None)
  | Fol.Pred (p, ts) -> (
    match D.Database.find_opt p st.db with
    | None -> None
    | Some rel ->
      let rec position i = function
        | [] -> None
        | Fol.Var y :: _ when y = x -> Some i
        | _ :: rest -> position (i + 1) rest
      in
      Option.map
        (fun i ->
          D.Relation.fold (fun tup acc -> D.Tuple.get tup i :: acc) rel []
          |> List.sort_uniq D.Value.compare)
        (position 0 ts))
  | _ -> None

(** Tarskian satisfaction with quantifiers ranging over [st.universe]
    (narrowed by positive-atom guards where possible). *)
let rec holds st env = function
  | Fol.True -> true
  | Fol.False -> false
  | Fol.Pred (p, ts) ->
    let rel =
      match D.Database.find_opt p st.db with
      | Some r -> r
      | None -> raise (Eval_error ("unknown predicate " ^ p))
    in
    let args = List.map (term_value env) ts in
    if List.length args <> D.Schema.arity (D.Relation.schema rel) then
      raise (Eval_error ("arity mismatch for predicate " ^ p));
    D.Relation.mem (D.Tuple.of_list args) rel
  | Fol.Cmp (op, a, b) -> Fol.cmp_eval op (term_value env a) (term_value env b)
  | Fol.Not f -> not (holds st env f)
  | Fol.And (a, b) -> holds st env a && holds st env b
  | Fol.Or (a, b) -> holds st env a || holds st env b
  | Fol.Implies (a, b) -> (not (holds st env a)) || holds st env b
  | Fol.Exists (x, f) ->
    let range =
      match guard_values st x f with
      | Some vs -> vs
      | None -> st.universe
    in
    List.exists (fun v -> holds st ((x, v) :: env) f) range
  | Fol.Forall (x, f) ->
    List.for_all (fun v -> holds st ((x, v) :: env) f) st.universe

(** Evaluate a sentence (no free variables) to a Boolean. *)
let eval_sentence st f =
  match Fol.free_var_list f with
  | [] -> holds st [] f
  | xs ->
    raise
      (Eval_error
         ("not a sentence; free variables: " ^ String.concat ", " xs))

(** Answer set of a formula with free variables [order]: the DRC semantics,
    naive active-domain enumeration.  Exponential in the number of free
    variables; fine for the small instances used in differential tests, and
    precisely the "naive" baseline the benches compare RA against. *)
let answers st ?order f =
  let free = Fol.free_var_list f in
  let order = match order with Some o -> o | None -> free in
  if List.sort String.compare order <> free then
    raise (Eval_error "answers: order must list exactly the free variables");
  let rec go env = function
    | [] -> if holds st env f then [ List.map (fun x -> List.assoc x env) order ] else []
    | x :: rest ->
      let range =
        match guard_values st x f with
        | Some vs -> vs
        | None -> st.universe
      in
      List.concat_map (fun v -> go ((x, v) :: env) rest) range
  in
  go [] order
