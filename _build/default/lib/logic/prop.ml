(** Propositional logic: the target language of Peirce's alpha existential
    graphs and of the Venn-diagram region algebra.

    Beyond the usual connectives we provide normal forms, truth-table
    evaluation, and semantic equivalence — the tools used to verify that
    alpha-graph inference rules are sound. *)

type t =
  | True
  | False
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t

let var x = Var x
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ( ==> ) a b = Implies (a, b)
let neg a = Not a

(** Conjunction/disjunction of a list, with the right units. *)
let conj = function [] -> True | x :: xs -> List.fold_left ( &&& ) x xs
let disj = function [] -> False | x :: xs -> List.fold_left ( ||| ) x xs

let rec vars = function
  | True | False -> []
  | Var x -> [ x ]
  | Not a -> vars a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> vars a @ vars b

let var_list f = List.sort_uniq String.compare (vars f)

let rec eval env = function
  | True -> true
  | False -> false
  | Var x -> (
    match List.assoc_opt x env with
    | Some b -> b
    | None -> invalid_arg ("Prop.eval: unbound variable " ^ x))
  | Not a -> not (eval env a)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Implies (a, b) -> (not (eval env a)) || eval env b
  | Iff (a, b) -> eval env a = eval env b

(** All assignments over the given variables, in a stable order. *)
let assignments variables =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
      let tails = go rest in
      List.concat_map (fun t -> [ (v, false) :: t; (v, true) :: t ]) tails
  in
  go variables

let tautology f = List.for_all (fun env -> eval env f) (assignments (var_list f))
let satisfiable f = List.exists (fun env -> eval env f) (assignments (var_list f))

(** Semantic equivalence by truth table over the union of variable sets.
    Exponential, but our formulas come from diagrams with few letters. *)
let equivalent f g =
  let vs = List.sort_uniq String.compare (vars f @ vars g) in
  List.for_all (fun env -> eval env f = eval env g) (assignments vs)

let entails f g = tautology (Implies (f, g))

(** Negation normal form: negations pushed to variables, ⇒/⇔ eliminated. *)
let rec nnf = function
  | (True | False | Var _) as f -> f
  | Not f -> nnf_neg f
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Implies (a, b) -> Or (nnf_neg a, nnf b)
  | Iff (a, b) -> And (Or (nnf_neg a, nnf b), Or (nnf_neg b, nnf a))

and nnf_neg = function
  | True -> False
  | False -> True
  | Var x -> Not (Var x)
  | Not f -> nnf f
  | And (a, b) -> Or (nnf_neg a, nnf_neg b)
  | Or (a, b) -> And (nnf_neg a, nnf_neg b)
  | Implies (a, b) -> And (nnf a, nnf_neg b)
  | Iff (a, b) -> Or (And (nnf a, nnf_neg b), And (nnf b, nnf_neg a))

(* Distribute ∨ over ∧ to reach CNF from NNF. *)
let rec distr_or a b =
  match (a, b) with
  | And (a1, a2), _ -> And (distr_or a1 b, distr_or a2 b)
  | _, And (b1, b2) -> And (distr_or a b1, distr_or a b2)
  | _ -> Or (a, b)

let rec cnf_of_nnf = function
  | And (a, b) -> And (cnf_of_nnf a, cnf_of_nnf b)
  | Or (a, b) -> distr_or (cnf_of_nnf a) (cnf_of_nnf b)
  | f -> f

let cnf f = cnf_of_nnf (nnf f)

let rec distr_and a b =
  match (a, b) with
  | Or (a1, a2), _ -> Or (distr_and a1 b, distr_and a2 b)
  | _, Or (b1, b2) -> Or (distr_and a b1, distr_and a b2)
  | _ -> And (a, b)

let rec dnf_of_nnf = function
  | Or (a, b) -> Or (dnf_of_nnf a, dnf_of_nnf b)
  | And (a, b) -> distr_and (dnf_of_nnf a) (dnf_of_nnf b)
  | f -> f

let dnf f = dnf_of_nnf (nnf f)

(** Light simplification: constant folding and double-negation removal. *)
let rec simplify = function
  | Not f -> (
    match simplify f with
    | True -> False
    | False -> True
    | Not g -> g
    | g -> Not g)
  | And (a, b) -> (
    match (simplify a, simplify b) with
    | False, _ | _, False -> False
    | True, g | g, True -> g
    | a', b' -> if a' = b' then a' else And (a', b'))
  | Or (a, b) -> (
    match (simplify a, simplify b) with
    | True, _ | _, True -> True
    | False, g | g, False -> g
    | a', b' -> if a' = b' then a' else Or (a', b'))
  | Implies (a, b) -> (
    match (simplify a, simplify b) with
    | False, _ | _, True -> True
    | True, g -> g
    | a', False -> simplify (Not a')
    | a', b' -> Implies (a', b'))
  | Iff (a, b) -> (
    match (simplify a, simplify b) with
    | True, g | g, True -> g
    | False, g | g, False -> simplify (Not g)
    | a', b' -> if a' = b' then True else Iff (a', b'))
  | f -> f

let prec = function
  | True | False | Var _ -> 5
  | Not _ -> 4
  | And _ -> 3
  | Or _ -> 2
  | Implies _ -> 1
  | Iff _ -> 0

let rec pp ppf f =
  let paren child =
    if prec child < prec f then Fmt.pf ppf "(%a)" pp child else pp ppf child
  in
  let paren_strict child =
    if prec child <= prec f then Fmt.pf ppf "(%a)" pp child else pp ppf child
  in
  match f with
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Var x -> Fmt.string ppf x
  | Not g ->
    Fmt.string ppf "!";
    paren g
  | And (a, b) ->
    paren a;
    Fmt.string ppf " & ";
    paren_strict b
  | Or (a, b) ->
    paren a;
    Fmt.string ppf " | ";
    paren_strict b
  | Implies (a, b) ->
    paren_strict a;
    Fmt.string ppf " -> ";
    paren b
  | Iff (a, b) ->
    paren_strict a;
    Fmt.string ppf " <-> ";
    paren_strict b

let to_string f = Fmt.str "%a" pp f

(** Recursive-descent parser for the syntax printed by {!pp}.  Grammar:
    iff := imp ("<->" imp)* ;  imp := or ("->" imp)? ;
    or := and ("|" and)* ;  and := unary ("&" unary)* ;
    unary := "!" unary | atom ;
    atom := "true" | "false" | ident | "(" iff ")". *)
exception Parse_error of string

let parse (src : string) : t =
  let n = String.length src in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip () =
    while !pos < n && (src.[!pos] = ' ' || src.[!pos] = '\t' || src.[!pos] = '\n') do
      incr pos
    done
  in
  let looking s =
    skip ();
    let l = String.length s in
    !pos + l <= n && String.sub src !pos l = s
  in
  let eat s = if looking s then (pos := !pos + String.length s; true) else false in
  let ident () =
    skip ();
    let start = !pos in
    while
      !pos < n
      && (match src.[!pos] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
    do
      incr pos
    done;
    if !pos = start then error "expected identifier"
    else String.sub src start (!pos - start)
  in
  let rec iff () =
    let a = imp () in
    if eat "<->" then Iff (a, iff ()) else a
  and imp () =
    let a = disj_ () in
    if eat "->" then Implies (a, imp ()) else a
  and disj_ () =
    let a = ref (conj_ ()) in
    while (not (looking "->")) && eat "|" do
      a := Or (!a, conj_ ())
    done;
    !a
  and conj_ () =
    let a = ref (unary ()) in
    while eat "&" do
      a := And (!a, unary ())
    done;
    !a
  and unary () =
    if eat "!" then Not (unary ())
    else if eat "(" then begin
      let f = iff () in
      if not (eat ")") then error "expected ')'";
      f
    end
    else
      match ident () with
      | "true" -> True
      | "false" -> False
      | x -> Var x
  in
  let f = iff () in
  skip ();
  if !pos <> n then error "trailing input";
  f
