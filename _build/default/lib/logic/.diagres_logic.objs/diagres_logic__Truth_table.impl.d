lib/logic/truth_table.ml: Fmt List Prop String
