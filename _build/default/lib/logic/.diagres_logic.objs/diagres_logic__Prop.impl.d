lib/logic/prop.ml: Fmt List Printf String
