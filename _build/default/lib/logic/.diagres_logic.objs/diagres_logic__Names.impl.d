lib/logic/names.ml: List Printf String
