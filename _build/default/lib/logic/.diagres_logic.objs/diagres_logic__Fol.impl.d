lib/logic/fol.ml: Diagres_data Fmt List String
