lib/logic/structure.ml: Diagres_data Fol List Option String
