(** TRC → SQL: the back-translation that closes the tutorial's Fig. 2 loop.

    A diagram's logical reading is a (list of) range-coupled TRC queries;
    this module renders them as executable SQL text, so the full circle
    SQL → diagram → TRC → SQL can be checked end to end.  Range-coupled
    TRC maps onto SQL almost syntactically: free ranges become FROM items,
    ∃-blocks become EXISTS subqueries, ∀ and ⇒ are rewritten to ¬∃¬. *)

module T = Diagres_rc.Trc

exception Unsupported of string

let expr_of_term : T.term -> Ast.expr = function
  | T.Field (v, a) -> Ast.Col { Ast.table = Some v; column = a }
  | T.Const c -> Ast.Lit c

(* SQL EXISTS subqueries need a select list; a constant does fine. *)
let exists_query ranges cond : Ast.query =
  {
    Ast.distinct = false;
    select = [ Ast.Item (Ast.Lit (Diagres_data.Value.Int 1), None) ];
    from = List.map (fun (v, r) -> { Ast.name = r; alias = v }) ranges;
    where = cond;
  }

let rec cond_of_formula (f : T.formula) : Ast.cond =
  match f with
  | T.True -> Ast.True
  | T.False ->
    (* SQL has no FALSE literal in our subset: use a refutable comparison *)
    Ast.Cmp
      ( Diagres_logic.Fol.Neq,
        Ast.Lit (Diagres_data.Value.Int 0),
        Ast.Lit (Diagres_data.Value.Int 0) )
  | T.Cmp (op, a, b) -> Ast.Cmp (op, expr_of_term a, expr_of_term b)
  | T.And (a, b) -> Ast.And (cond_of_formula a, cond_of_formula b)
  | T.Or (a, b) -> Ast.Or (cond_of_formula a, cond_of_formula b)
  | T.Not g -> Ast.Not (cond_of_formula g)
  | T.Implies (a, b) ->
    Ast.Or (Ast.Not (cond_of_formula a), cond_of_formula b)
  | T.Exists (rs, g) -> Ast.Exists (exists_query rs (cond_of_formula g))
  | T.Forall (rs, g) ->
    (* ∀r̄ φ = ¬∃r̄ ¬φ *)
    Ast.Not (Ast.Exists (exists_query rs (Ast.Not (cond_of_formula g))))

(** One TRC query to one SELECT block. *)
let query (q : T.query) : Ast.query =
  if q.T.ranges = [] then
    raise
      (Unsupported
         "a TRC query without free ranges (a Boolean statement) has no \
          SELECT block; SQL needs at least one FROM table");
  {
    Ast.distinct = true;
    select = List.map (fun t -> Ast.Item (expr_of_term t, None)) q.T.head;
    from = List.map (fun (v, r) -> { Ast.name = r; alias = v }) q.T.ranges;
    where = cond_of_formula q.T.body;
  }

(** Panels to a UNION statement. *)
let statement (qs : T.query list) : Ast.statement =
  match qs with
  | [] -> raise (Unsupported "no panels")
  | q :: rest ->
    List.fold_left
      (fun acc q' -> Ast.Union (acc, Ast.Query (query q')))
      (Ast.Query (query q))
      rest

let to_string qs = Pretty.to_string (statement qs)
