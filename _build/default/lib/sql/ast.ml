(** SQL subset: SELECT [DISTINCT] – FROM – WHERE blocks with correlated
    subqueries ([EXISTS] / [IN]), combined by UNION / INTERSECT / EXCEPT.

    This is the fragment the tutorial uses: it is exactly as expressive as
    safe RC / RA (first-order logic), and it is the input language of the
    QueryVis and Relational-Diagram generators.  Aggregation and grouping
    are deliberately out of scope (they leave FOL). *)

type col = { table : string option; column : string }
(** [s.sid] or bare [sid] (resolved against the FROM scope). *)

type expr =
  | Col of col
  | Lit of Diagres_data.Value.t

type cond =
  | True
  | Cmp of Diagres_logic.Fol.cmp * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | Exists of query  (** [EXISTS (subquery)] — possibly correlated *)
  | In of expr * query  (** [e IN (subquery)] — subquery selects one column *)

and table_ref = { name : string; alias : string }
(** [FROM Sailor s]; [alias = name] when no alias was written. *)

and query = {
  distinct : bool;
  select : select_item list;
  from : table_ref list;
  where : cond;
}

and select_item =
  | Star                     (** [SELECT *] *)
  | Item of expr * string option  (** expression with optional [AS] alias *)

(** Top level: query expression combined with set operators. *)
type statement =
  | Query of query
  | Union of statement * statement
  | Intersect of statement * statement
  | Except of statement * statement

let query ?(distinct = true) ~select ~from ?(where = True) () =
  { distinct; select; from; where }

let col ?table column = Col { table; column }

let rec statement_queries = function
  | Query q -> [ q ]
  | Union (a, b) | Intersect (a, b) | Except (a, b) ->
    statement_queries a @ statement_queries b

(** Nesting depth of subqueries — the complexity axis for the QueryVis
    benches (diagrams shine on deeply nested [NOT EXISTS]). *)
let rec query_depth (q : query) = 1 + cond_depth q.where

and cond_depth = function
  | True | Cmp _ -> 0
  | And (a, b) | Or (a, b) -> max (cond_depth a) (cond_depth b)
  | Not c -> cond_depth c
  | Exists q | In (_, q) -> query_depth q

let rec statement_depth = function
  | Query q -> query_depth q
  | Union (a, b) | Intersect (a, b) | Except (a, b) ->
    max (statement_depth a) (statement_depth b)

(** Number of table occurrences (the metric for the QBE-vs-Datalog
    discussion: division-style queries repeat tables). *)
let rec query_tables (q : query) =
  List.length q.from + cond_tables q.where

and cond_tables = function
  | True | Cmp _ -> 0
  | And (a, b) | Or (a, b) -> cond_tables a + cond_tables b
  | Not c -> cond_tables c
  | Exists q | In (_, q) -> query_tables q

let rec statement_tables = function
  | Query q -> query_tables q
  | Union (a, b) | Intersect (a, b) | Except (a, b) ->
    statement_tables a + statement_tables b
