(** SQL → RA: SELECT blocks go through TRC ({!To_trc}) and the calculus
    translation ({!Diagres_rc.Translate.trc_to_ra}); set operators map
    natively onto ∪ / ∩ / −. *)

module A = Diagres_ra.Ast

let rec statement schemas (st : Ast.statement) : A.t =
  match st with
  | Ast.Query q ->
    Diagres_rc.Translate.trc_to_ra schemas (To_trc.of_query schemas q)
  | Ast.Union (a, b) -> A.Union (statement schemas a, statement schemas b)
  | Ast.Intersect (a, b) -> A.Inter (statement schemas a, statement schemas b)
  | Ast.Except (a, b) -> A.Diff (statement schemas a, statement schemas b)

(** Evaluation: each SELECT block runs through the direct TRC evaluator
    (fast path); set operators combine results. *)
let rec eval db (st : Ast.statement) : Diagres_data.Relation.t =
  let schemas =
    List.map
      (fun (n, r) -> (n, Diagres_data.Relation.schema r))
      (Diagres_data.Database.relations db)
  in
  match st with
  | Ast.Query q -> Diagres_rc.Trc.eval db (To_trc.of_query schemas q)
  | Ast.Union (a, b) -> Diagres_data.Relation.union (eval db a) (eval db b)
  | Ast.Intersect (a, b) ->
    Diagres_data.Relation.inter (eval db a) (eval db b)
  | Ast.Except (a, b) -> Diagres_data.Relation.diff (eval db a) (eval db b)

let eval_string db src = eval db (Parser.parse src)
