lib/sql/of_trc.ml: Ast Diagres_data Diagres_logic Diagres_rc List Pretty
