lib/sql/to_ra.ml: Ast Diagres_data Diagres_ra Diagres_rc List Parser To_trc
