lib/sql/pretty.ml: Ast Diagres_data Diagres_logic List Printf String
