lib/sql/parser.ml: Ast Diagres_parsekit List String
