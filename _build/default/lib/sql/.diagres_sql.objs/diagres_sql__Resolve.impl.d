lib/sql/resolve.ml: Ast Diagres_data Format List Option Printf
