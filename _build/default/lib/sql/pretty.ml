(** SQL pretty-printer: emits the canonical text accepted back by
    {!Parser.parse} (round-trip property-tested). *)

let expr = function
  | Ast.Lit v -> Diagres_data.Value.to_literal v
  | Ast.Col { Ast.table = Some t; column } -> t ^ "." ^ column
  | Ast.Col { Ast.table = None; column } -> column

let cmp = Diagres_logic.Fol.cmp_name

let indent_lines prefix s =
  String.split_on_char '\n' s
  |> List.map (fun l -> if l = "" then l else prefix ^ l)
  |> String.concat "\n"

let rec cond ?(depth = 0) (c : Ast.cond) =
  match c with
  | Ast.True -> "true"
  | Ast.Cmp (op, a, b) -> Printf.sprintf "%s %s %s" (expr a) (cmp op) (expr b)
  | Ast.And (a, b) -> Printf.sprintf "%s AND %s" (cond_sub ~depth a) (cond_sub ~depth b)
  | Ast.Or (a, b) -> Printf.sprintf "%s OR %s" (cond_sub ~depth a) (cond_sub ~depth b)
  | Ast.Not (Ast.Exists q) ->
    Printf.sprintf "NOT EXISTS (\n%s)" (indent_lines "  " (query ~depth:(depth + 1) q))
  | Ast.Not (Ast.In (e, q)) ->
    Printf.sprintf "%s NOT IN (\n%s)" (expr e)
      (indent_lines "  " (query ~depth:(depth + 1) q))
  | Ast.Not c -> Printf.sprintf "NOT %s" (cond_sub ~depth c)
  | Ast.Exists q ->
    Printf.sprintf "EXISTS (\n%s)" (indent_lines "  " (query ~depth:(depth + 1) q))
  | Ast.In (e, q) ->
    Printf.sprintf "%s IN (\n%s)" (expr e)
      (indent_lines "  " (query ~depth:(depth + 1) q))

and cond_sub ~depth c =
  match c with
  | Ast.Or _ | Ast.And _ -> "(" ^ cond ~depth c ^ ")"
  | _ -> cond ~depth c

and query ?(depth = 0) (q : Ast.query) =
  ignore depth;
  let items =
    List.map
      (function
        | Ast.Star -> "*"
        | Ast.Item (e, None) -> expr e
        | Ast.Item (e, Some a) -> expr e ^ " AS " ^ a)
      q.Ast.select
  in
  let tables =
    List.map
      (fun t ->
        if t.Ast.alias = t.Ast.name then t.Ast.name
        else t.Ast.name ^ " " ^ t.Ast.alias)
      q.Ast.from
  in
  let where =
    match q.Ast.where with
    | Ast.True -> ""
    | c -> "\nWHERE " ^ cond c
  in
  Printf.sprintf "SELECT %s%s\nFROM %s%s"
    (if q.Ast.distinct then "DISTINCT " else "")
    (String.concat ", " items)
    (String.concat ", " tables)
    where

let rec statement = function
  | Ast.Query q -> query q
  | Ast.Union (a, b) -> statement a ^ "\nUNION\n" ^ statement b
  | Ast.Intersect (a, b) ->
    set_sub a ^ "\nINTERSECT\n" ^ set_sub b
  | Ast.Except (a, b) -> set_sub a ^ "\nEXCEPT\n" ^ set_sub b

and set_sub st =
  match st with
  | Ast.Query _ -> statement st
  | _ -> "(" ^ statement st ^ ")"

let to_string = statement
