(** Recursive-descent SQL parser (case-insensitive keywords).

    Grammar:
    {v
    statement := set_term (("union"|"intersect"|"except") set_term)*
    set_term  := "(" statement ")" | query
    query     := "select" ["distinct"] items "from" tables ["where" cond]
    items     := "*" | item ("," item)*
    item      := expr ["as" ident]
    tables    := table ("," table)* ("join" table "on" cond)*
    table     := ident [["as"] ident]
    cond      := or ; or := and ("or" and)* ; and := atom ("and" atom)*
    atom      := "not" atom | "exists" "(" statement-query ")"
               | expr ("in"|"not in") "(" query ")" | expr cmp expr
               | "(" cond ")"
    expr      := qualified-ident | literal
    v} *)

module S = Diagres_parsekit.Stream
module L = Diagres_parsekit.Lexer

exception Parse_error = S.Parse_error

let keywords =
  [ "select"; "distinct"; "from"; "where"; "and"; "or"; "not"; "exists";
    "in"; "union"; "intersect"; "except"; "as"; "join"; "on"; "true" ]

let col_of_string s stream =
  match String.index_opt s '.' with
  | Some i ->
    if String.contains_from s (i + 1) '.' then
      S.error stream "too many qualifiers in column reference"
    else
      { Ast.table = Some (String.sub s 0 i);
        column = String.sub s (i + 1) (String.length s - i - 1) }
  | None -> { Ast.table = None; column = s }

let expr s : Ast.expr =
  match S.peek s with
  | L.Ident x when not (List.mem (String.lowercase_ascii x) keywords) ->
    S.advance s;
    Ast.Col (col_of_string x s)
  | _ -> Ast.Lit (S.value s)

let rec cond s : Ast.cond =
  let a = ref (and_cond s) in
  while S.at_kw s "or" do
    S.advance s;
    a := Ast.Or (!a, and_cond s)
  done;
  !a

and and_cond s =
  let a = ref (atom s) in
  while S.at_kw s "and" do
    S.advance s;
    a := Ast.And (!a, atom s)
  done;
  !a

and atom s =
  let peek2_is_in =
    match S.peek2 s with
    | L.Ident x -> String.lowercase_ascii x = "in"
    | _ -> false
  in
  if S.at_kw s "not" && not peek2_is_in then begin
    S.advance s;
    Ast.Not (atom s)
  end
  else if S.at_kw s "exists" then begin
    S.advance s;
    S.expect_sym s "(";
    let q = query s in
    S.expect_sym s ")";
    Ast.Exists q
  end
  else if S.at_sym s "(" then begin
    S.expect_sym s "(";
    let c = cond s in
    S.expect_sym s ")";
    c
  end
  else if S.eat_kw s "true" then Ast.True
  else begin
    let e = expr s in
    if S.at_kw s "in" then begin
      S.advance s;
      S.expect_sym s "(";
      let q = query s in
      S.expect_sym s ")";
      Ast.In (e, q)
    end
    else if S.at_kw s "not" then begin
      S.advance s;
      S.expect_kw s "in";
      S.expect_sym s "(";
      let q = query s in
      S.expect_sym s ")";
      Ast.Not (Ast.In (e, q))
    end
    else
      match S.cmp_op s with
      | Some op -> Ast.Cmp (op, e, expr s)
      | None -> S.error s "expected comparison, IN, or NOT IN"
  end

and table s : Ast.table_ref =
  let name = S.ident_not s keywords in
  let alias =
    if S.eat_kw s "as" then S.ident_not s keywords
    else
      match S.peek s with
      | L.Ident x when not (List.mem (String.lowercase_ascii x) keywords) ->
        S.advance s;
        x
      | _ -> name
  in
  { Ast.name; alias }

and query s : Ast.query =
  S.expect_kw s "select";
  let distinct = S.eat_kw s "distinct" in
  let select =
    if S.eat_sym s "*" then [ Ast.Star ]
    else
      S.sep_list1 s ~sep:"," (fun s ->
          let e = expr s in
          let alias = if S.eat_kw s "as" then Some (S.ident_not s keywords) else None in
          Ast.Item (e, alias))
  in
  S.expect_kw s "from";
  let first = table s in
  let tables = ref [ first ] in
  let joins = ref Ast.True in
  let rec more () =
    if S.eat_sym s "," then begin
      tables := table s :: !tables;
      more ()
    end
    else if S.eat_kw s "join" then begin
      tables := table s :: !tables;
      S.expect_kw s "on";
      (* ON binds a single atom-or-parenthesized condition to avoid
         swallowing a following AND that belongs to WHERE-less chains *)
      joins := Ast.And (!joins, cond s);
      more ()
    end
  in
  more ();
  let where = if S.eat_kw s "where" then cond s else Ast.True in
  let where =
    match !joins with Ast.True -> where | j -> Ast.And (j, where)
  in
  { Ast.distinct; select; from = List.rev !tables; where }

let rec statement s : Ast.statement =
  let a = ref (set_term s) in
  let rec go () =
    if S.eat_kw s "union" then (a := Ast.Union (!a, set_term s); go ())
    else if S.eat_kw s "intersect" then (a := Ast.Intersect (!a, set_term s); go ())
    else if S.eat_kw s "except" then (a := Ast.Except (!a, set_term s); go ())
  in
  go ();
  !a

and set_term s =
  if S.at_sym s "(" then begin
    S.expect_sym s "(";
    let st = statement s in
    S.expect_sym s ")";
    st
  end
  else Ast.Query (query s)

let parse src : Ast.statement =
  let s = S.make ~ident_dot:true ~case_fold:true src in
  let st = statement s in
  (if S.at_sym s ";" then S.expect_sym s ";");
  S.expect_eof s;
  st

let parse_query src : Ast.query =
  match parse src with
  | Ast.Query q -> q
  | _ -> raise (Parse_error ("expected a single SELECT block", 0))
