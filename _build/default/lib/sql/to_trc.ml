(** SQL → TRC, the tutorial's canonical reading of a SELECT block:

    [SELECT s.a FROM R s, S t WHERE φ]  ↦  [{ s.a | s ∈ R, t ∈ S : φ′ }]

    [EXISTS] subqueries become ∃-blocks over the subquery's FROM ranges,
    [e IN (SELECT x …)] becomes [∃ ranges (x = e ∧ …)], and correlation
    falls out of TRC scoping for free.  Set operators do not exist in
    (single-panel) TRC, so a statement translates to one TRC query per
    UNION branch with INTERSECT/EXCEPT folded into ∃/¬∃ — precisely the
    panel decomposition Relational Diagrams use. *)

module T = Diagres_rc.Trc

exception Unsupported of string

(* Table aliases must be distinct from every alias in enclosing scopes for
   TRC variable naming; SQL guarantees per-scope uniqueness, and we rename
   shadowing aliases with a fresh suffix. *)
type ctx = {
  schemas : (string * Diagres_data.Schema.t) list;
  renaming : (string * string) list;  (** alias → TRC variable *)
  supply : Diagres_logic.Names.t;
}

let term ctx : Ast.expr -> T.term = function
  | Ast.Lit v -> T.Const v
  | Ast.Col { Ast.table = Some alias; column } ->
    let v =
      match List.assoc_opt alias ctx.renaming with
      | Some v -> v
      | None -> alias
    in
    T.Field (v, column)
  | Ast.Col { Ast.table = None; column } ->
    raise (Unsupported ("unresolved column " ^ column ^ "; run Resolve first"))

(* Bring a FROM list into scope: pick TRC variable names (reusing the SQL
   alias when it does not shadow an outer one) and extend the renaming. *)
let bind_from ctx (from : Ast.table_ref list) =
  List.fold_left
    (fun (ctx, ranges) t ->
      let taken = List.map snd ctx.renaming in
      let v =
        if List.mem t.Ast.alias taken then
          Diagres_logic.Names.fresh ctx.supply (t.Ast.alias ^ "_")
        else begin
          Diagres_logic.Names.reserve ctx.supply [ t.Ast.alias ];
          t.Ast.alias
        end
      in
      ( { ctx with renaming = (t.Ast.alias, v) :: ctx.renaming },
        (v, t.Ast.name) :: ranges ))
    (ctx, []) from
  |> fun (ctx, ranges) -> (ctx, List.rev ranges)

let rec cond ctx : Ast.cond -> T.formula = function
  | Ast.True -> T.True
  | Ast.Cmp (op, a, b) -> T.Cmp (op, term ctx a, term ctx b)
  | Ast.And (a, b) -> T.And (cond ctx a, cond ctx b)
  | Ast.Or (a, b) -> T.Or (cond ctx a, cond ctx b)
  | Ast.Not c -> T.Not (cond ctx c)
  | Ast.Exists q ->
    let ctx', ranges = bind_from ctx q.Ast.from in
    T.Exists (ranges, cond ctx' q.Ast.where)
  | Ast.In (e, q) ->
    let outer_term = term ctx e in
    let ctx', ranges = bind_from ctx q.Ast.from in
    let selected =
      match q.Ast.select with
      | [ Ast.Item (se, _) ] -> term ctx' se
      | _ -> raise (Unsupported "IN subquery must select exactly one column")
    in
    T.Exists
      ( ranges,
        T.And (T.Cmp (Diagres_logic.Fol.Eq, selected, outer_term), cond ctx' q.Ast.where) )

(** One SELECT block to one TRC query. *)
let of_query schemas (q : Ast.query) : T.query =
  (* The DISTINCT flag is immaterial: RC, RA and Datalog are set languages,
     so the translation always has set semantics (the tutorial's setting). *)
  let q = Resolve.query schemas q in
  let ctx = { schemas; renaming = []; supply = Diagres_logic.Names.create () } in
  let ctx, ranges = bind_from ctx q.Ast.from in
  let head =
    List.map
      (function
        | Ast.Item (e, _) -> term ctx e
        | Ast.Star -> assert false (* removed by Resolve *))
      q.Ast.select
  in
  { T.head; ranges; body = cond ctx q.Ast.where }

(* INTERSECT and EXCEPT fold into the first operand's body:
   A ∩ B = A where ∃B-ranges (B ∧ heads equal);  A − B adds ¬∃. *)
let rec fold_set_ops schemas (st : Ast.statement) : T.query list =
  match st with
  | Ast.Query q -> [ of_query schemas q ]
  | Ast.Union (a, b) -> fold_set_ops schemas a @ fold_set_ops schemas b
  | Ast.Intersect (a, b) -> combine schemas ~negate:false a b
  | Ast.Except (a, b) -> combine schemas ~negate:true a b

and combine schemas ~negate a b =
  let bs = fold_set_ops schemas b in
  (* Rename b's variables apart from a's, then conjoin (or negate) the
     existential closure of each b-panel.  A − (B₁ ∪ B₂) needs *all* panels
     negated; A ∩ (B₁ ∪ B₂) needs the disjunction of the panels. *)
  List.map
    (fun (qa : T.query) ->
      let clauses =
        List.map
          (fun (qb : T.query) ->
            let qb = rename_apart qa qb in
            let equalities =
              List.map2
                (fun ta tb -> T.Cmp (Diagres_logic.Fol.Eq, ta, tb))
                qa.T.head qb.T.head
            in
            let inner = T.conj (equalities @ [ qb.T.body ]) in
            if qb.T.ranges = [] then inner else T.Exists (qb.T.ranges, inner))
          bs
      in
      let clause = T.disj clauses in
      let clause = if negate then T.Not clause else clause in
      { qa with T.body = T.And (qa.T.body, clause) })
    (fold_set_ops schemas a)

(* Rename qb's range variables (free and bound are all in ranges for the
   top level; bound blocks inside body keep their names, which cannot clash
   because TRC scoping is lexical and we only prefix top-level ranges). *)
and rename_apart (qa : T.query) (qb : T.query) : T.query =
  let taken =
    List.map fst qa.T.ranges
    @ T.declared_vars qa.T.body
  in
  let supply = Diagres_logic.Names.create ~reserved:(taken @ List.map fst qb.T.ranges @ T.declared_vars qb.T.body) () in
  let mapping =
    List.map
      (fun (v, r) ->
        if List.mem v taken then ((v, r), (Diagres_logic.Names.fresh supply (v ^ "_"), r))
        else ((v, r), (v, r)))
      qb.T.ranges
  in
  let rename_var v =
    match List.find_opt (fun ((v0, _), _) -> v0 = v) mapping with
    | Some (_, (v', _)) -> v'
    | None -> v
  in
  let rename_term = function
    | T.Field (v, a) -> T.Field (rename_var v, a)
    | T.Const c -> T.Const c
  in
  (* only free occurrences of the top-level range variables are renamed;
     shadowing re-declarations inside the body win, matching TRC scoping *)
  let rec rename_formula bound = function
    | T.True -> T.True
    | T.False -> T.False
    | T.Cmp (op, x, y) ->
      let fix t =
        match t with
        | T.Field (v, a) when not (List.mem v bound) -> T.Field (rename_var v, a)
        | _ -> t
      in
      T.Cmp (op, fix x, fix y)
    | T.Not f -> T.Not (rename_formula bound f)
    | T.And (x, y) -> T.And (rename_formula bound x, rename_formula bound y)
    | T.Or (x, y) -> T.Or (rename_formula bound x, rename_formula bound y)
    | T.Implies (x, y) ->
      T.Implies (rename_formula bound x, rename_formula bound y)
    | T.Exists (rs, f) ->
      T.Exists (rs, rename_formula (List.map fst rs @ bound) f)
    | T.Forall (rs, f) ->
      T.Forall (rs, rename_formula (List.map fst rs @ bound) f)
  in
  { T.head = List.map rename_term qb.T.head;
    ranges = List.map (fun ((_, _), vr) -> vr) mapping;
    body = rename_formula [] qb.T.body }

(** Entry point: a statement becomes one TRC query per UNION panel. *)
let statement schemas (st : Ast.statement) : T.query list =
  fold_set_ops schemas (Resolve.statement schemas st)

(** Single-panel statements (no top-level UNION). *)
let statement_single schemas st =
  match statement schemas st with
  | [ q ] -> q
  | qs ->
    raise
      (Unsupported
         (Printf.sprintf "statement needs %d TRC panels (top-level UNION)"
            (List.length qs)))
