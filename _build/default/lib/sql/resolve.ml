(** Name resolution: qualify every column reference with its table alias.

    SQL lets queries reference columns bare ([sid]) and subqueries reference
    enclosing FROM aliases (correlation).  Resolution walks the scope stack
    innermost-first, mirroring SQL's rules; ambiguous bare columns are
    errors.  The output AST has every [Col] qualified, every [Star]
    expanded, and every missing alias made explicit — the canonical form the
    translators consume. *)

module D = Diagres_data

exception Resolve_error of string

let error fmt = Format.kasprintf (fun s -> raise (Resolve_error s)) fmt

type env = {
  schemas : (string * D.Schema.t) list;
  scopes : Ast.table_ref list list;  (** innermost scope first *)
}

let table_schema env name =
  match List.assoc_opt name env.schemas with
  | Some s -> s
  | None -> error "unknown table %S" name

let check_from env (from : Ast.table_ref list) =
  let aliases = List.map (fun t -> t.Ast.alias) from in
  let rec dup = function
    | [] -> ()
    | a :: rest ->
      if List.mem a rest then error "duplicate table alias %S" a else dup rest
  in
  dup aliases;
  List.iter (fun t -> ignore (table_schema env t.Ast.name)) from

(** Resolve a column reference against the scope stack. *)
let resolve_col env (c : Ast.col) : Ast.col =
  match c.Ast.table with
  | Some alias ->
    let found =
      List.exists
        (fun scope -> List.exists (fun t -> t.Ast.alias = alias) scope)
        env.scopes
    in
    if not found then error "unknown table alias %S" alias;
    let tref =
      List.find_map
        (fun scope -> List.find_opt (fun t -> t.Ast.alias = alias) scope)
        env.scopes
      |> Option.get
    in
    if not (D.Schema.mem c.Ast.column (table_schema env tref.Ast.name)) then
      error "table %S (alias %S) has no column %S" tref.Ast.name alias
        c.Ast.column;
    c
  | None ->
    (* find candidate tables, innermost scope first; stop at the first scope
       with a match, error on ambiguity within that scope *)
    let rec go = function
      | [] -> error "unknown column %S" c.Ast.column
      | scope :: outer -> (
        let hits =
          List.filter
            (fun t -> D.Schema.mem c.Ast.column (table_schema env t.Ast.name))
            scope
        in
        match hits with
        | [] -> go outer
        | [ t ] -> { c with Ast.table = Some t.Ast.alias }
        | _ -> error "ambiguous column %S" c.Ast.column)
    in
    go env.scopes

let resolve_expr env = function
  | Ast.Col c -> Ast.Col (resolve_col env c)
  | Ast.Lit v -> Ast.Lit v

let rec resolve_cond env = function
  | Ast.True -> Ast.True
  | Ast.Cmp (op, a, b) -> Ast.Cmp (op, resolve_expr env a, resolve_expr env b)
  | Ast.And (a, b) -> Ast.And (resolve_cond env a, resolve_cond env b)
  | Ast.Or (a, b) -> Ast.Or (resolve_cond env a, resolve_cond env b)
  | Ast.Not c -> Ast.Not (resolve_cond env c)
  | Ast.Exists q -> Ast.Exists (resolve_query env q)
  | Ast.In (e, q) ->
    let q' = resolve_query env q in
    (match q'.Ast.select with
    | [ Ast.Item (_, _) ] -> ()
    | _ -> error "IN subquery must select exactly one column");
    Ast.In (resolve_expr env e, q')

and resolve_query env (q : Ast.query) : Ast.query =
  check_from env q.Ast.from;
  let env' = { env with scopes = q.Ast.from :: env.scopes } in
  let select =
    List.concat_map
      (function
        | Ast.Star ->
          (* expand * to every column of every FROM table, qualified *)
          List.concat_map
            (fun t ->
              List.map
                (fun a ->
                  Ast.Item
                    (Ast.Col { Ast.table = Some t.Ast.alias; column = a }, None))
                (D.Schema.names (table_schema env t.Ast.name)))
            q.Ast.from
        | Ast.Item (e, alias) -> [ Ast.Item (resolve_expr env' e, alias) ])
      q.Ast.select
  in
  if select = [] then error "empty select list";
  { q with Ast.select; where = resolve_cond env' q.Ast.where }

let rec resolve_statement env = function
  | Ast.Query q -> Ast.Query (resolve_query env q)
  | Ast.Union (a, b) ->
    Ast.Union (resolve_statement env a, resolve_statement env b)
  | Ast.Intersect (a, b) ->
    Ast.Intersect (resolve_statement env a, resolve_statement env b)
  | Ast.Except (a, b) ->
    Ast.Except (resolve_statement env a, resolve_statement env b)

let statement schemas st =
  resolve_statement { schemas; scopes = [] } st

let query schemas q = resolve_query { schemas; scopes = [] } q

(** Output column names of a resolved query (for schema compatibility checks
    across set operations). *)
let output_columns (q : Ast.query) =
  List.mapi
    (fun i -> function
      | Ast.Item (_, Some a) -> a
      | Ast.Item (Ast.Col c, None) -> c.Ast.column
      | Ast.Item (Ast.Lit _, None) -> Printf.sprintf "c%d" (i + 1)
      | Ast.Star -> invalid_arg "output_columns: unresolved *")
    q.Ast.select
