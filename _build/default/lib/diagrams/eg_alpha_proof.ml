(** Bounded proof search for alpha existential graphs.

    Peirce presented the five rules as a calculus for {e deriving} graphs
    from graphs; this module searches for such derivations (iterative-
    deepening over rule applications), which turns the tutorial's "the
    rules are a sound and complete proof system" from a statement into a
    demonstration: small classical validities are found automatically and
    every discovered proof replays soundly. *)

module A = Eg_alpha

type proof = { start : A.t; steps : (A.step * A.t) list }

let conclusion (p : proof) =
  match List.rev p.steps with
  | [] -> p.start
  | (_, g) :: _ -> g

(* Enumerate paths to all areas of a graph. *)
let rec areas ?(path = []) (g : A.t) : int list list =
  List.rev path
  :: List.concat
       (List.mapi
          (fun i item ->
            match item with
            | A.Cut inner -> areas ~path:(i :: path) inner
            | A.Atom _ -> [])
          g)

(* All single-step successors of a graph (bounded: iteration targets are
   limited to one level deeper to keep branching manageable). *)
let successors (g : A.t) : (A.step * A.t) list =
  let try_step step =
    match A.apply g step with
    | g' -> Some (step, g')
    | exception (A.Rule_violation _ | A.Bad_path _) -> None
  in
  let all_areas = areas g in
  let erasures =
    List.concat_map
      (fun path ->
        let n = List.length (A.area g path) in
        List.init n (fun i -> A.Erase (path, i)))
      all_areas
  in
  let double_cut_erasures =
    List.concat_map
      (fun path ->
        let n = List.length (A.area g path) in
        List.init n (fun i -> A.Double_cut_erase (path, i)))
      all_areas
  in
  let deiterations =
    List.concat_map
      (fun path ->
        let n = List.length (A.area g path) in
        List.init n (fun i -> A.Deiterate (path, i)))
      all_areas
  in
  let iterations =
    (* copy an item into an immediate sub-cut *)
    List.concat_map
      (fun path ->
        let items = A.area g path in
        List.concat
          (List.mapi
             (fun i item ->
               ignore item;
               List.concat
                 (List.mapi
                    (fun j target ->
                      match target with
                      | A.Cut _ when j <> i ->
                        [ A.Iterate (path, i, path @ [ j ]) ]
                      | _ -> [])
                    items))
             items))
      all_areas
  in
  List.filter_map try_step
    (erasures @ double_cut_erasures @ deiterations @ iterations)

(* Iterative deepening DFS from [start] to any graph equal to [goal]
   (structural equality after sorting juxtaposed items). *)
let rec normalize (g : A.t) : A.t =
  List.sort compare
    (List.map
       (function A.Cut inner -> A.Cut (normalize inner) | atom -> atom)
       g)

let prove ?(max_depth = 4) ~(premise : A.t) ~(goal : A.t) () : proof option =
  let goal_n = normalize goal in
  let rec dfs g trail depth =
    if normalize g = goal_n then Some (List.rev trail)
    else if depth = 0 then None
    else
      List.find_map
        (fun (step, g') ->
          if A.size g' > A.size premise + 4 then None
          else dfs g' ((step, g') :: trail) (depth - 1))
        (successors g)
  in
  let rec deepen d =
    if d > max_depth then None
    else
      match dfs premise [] d with
      | Some steps -> Some { start = premise; steps }
      | None -> deepen (d + 1)
  in
  deepen 0

(** Check a proof: each step must be a legal rule application, and the
    whole derivation is then sound by rule soundness. *)
let check (p : proof) : bool =
  let rec go g = function
    | [] -> true
    | (step, expect) :: rest -> (
      match A.apply g step with
      | g' -> g' = expect && A.step_sound g g' && go g' rest
      | exception (A.Rule_violation _ | A.Bad_path _) -> false)
  in
  go p.start p.steps

let step_to_string = function
  | A.Erase (path, i) ->
    Printf.sprintf "erase item %d at [%s]" i
      (String.concat ";" (List.map string_of_int path))
  | A.Insert (path, _) ->
    Printf.sprintf "insert at [%s]"
      (String.concat ";" (List.map string_of_int path))
  | A.Iterate (path, i, to_path) ->
    Printf.sprintf "iterate item %d from [%s] to [%s]" i
      (String.concat ";" (List.map string_of_int path))
      (String.concat ";" (List.map string_of_int to_path))
  | A.Deiterate (path, i) ->
    Printf.sprintf "deiterate item %d at [%s]" i
      (String.concat ";" (List.map string_of_int path))
  | A.Double_cut_insert path ->
    Printf.sprintf "double-cut insert at [%s]"
      (String.concat ";" (List.map string_of_int path))
  | A.Double_cut_erase (path, i) ->
    Printf.sprintf "double-cut erase item %d at [%s]" i
      (String.concat ";" (List.map string_of_int path))

let to_string (p : proof) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "premise:    %s\n" (A.to_string p.start));
  List.iter
    (fun (step, g) ->
      Buffer.add_string buf
        (Printf.sprintf "%-40s %s\n" ("  " ^ step_to_string step) (A.to_string g)))
    p.steps;
  Buffer.contents buf
