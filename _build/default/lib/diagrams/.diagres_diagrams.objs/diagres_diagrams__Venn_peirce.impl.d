lib/diagrams/venn_peirce.ml: Diagres_logic List String Venn
