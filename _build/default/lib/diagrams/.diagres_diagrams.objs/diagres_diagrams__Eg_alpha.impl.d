lib/diagrams/eg_alpha.ml: Diagres_logic List Printf Scene String
