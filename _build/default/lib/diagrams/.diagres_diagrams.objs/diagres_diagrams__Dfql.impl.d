lib/diagrams/dfql.ml: Buffer Diagres_ra Diagres_render Hashtbl List Printf String
