lib/diagrams/dataplay.ml: Diagres_data Diagres_logic Diagres_rc List Printf Scene
