lib/diagrams/begriffsschrift.ml: Diagres_data Diagres_logic List Printf String
