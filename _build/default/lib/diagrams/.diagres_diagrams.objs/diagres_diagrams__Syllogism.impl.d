lib/diagrams/syllogism.ml: Diagres_logic List Printf Venn
