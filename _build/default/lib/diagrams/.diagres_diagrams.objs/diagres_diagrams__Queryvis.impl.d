lib/diagrams/queryvis.ml: Diagres_rc Diagres_sql List Printf Scene Trc_scene
