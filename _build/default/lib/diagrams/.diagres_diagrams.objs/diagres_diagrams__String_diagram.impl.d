lib/diagrams/string_diagram.ml: Diagres_logic Diagres_rc Eg_beta List Option Printf Scene String
