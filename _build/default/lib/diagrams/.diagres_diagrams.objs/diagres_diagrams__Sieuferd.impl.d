lib/diagrams/sieuferd.ml: Diagres_data Diagres_logic Diagres_rc List Printf String
