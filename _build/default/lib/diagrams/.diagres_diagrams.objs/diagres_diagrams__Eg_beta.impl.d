lib/diagrams/eg_beta.ml: Diagres_data Diagres_logic List Printf Scene String
