lib/diagrams/scene.ml: Diagres_render Float List
