lib/diagrams/venn.ml: Buffer Diagres_data Diagres_logic Diagres_render List Printf String
