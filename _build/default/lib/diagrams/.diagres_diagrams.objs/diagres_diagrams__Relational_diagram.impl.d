lib/diagrams/relational_diagram.ml: Diagres_ra Diagres_rc Diagres_sql List Printf Scene String Trc_scene
