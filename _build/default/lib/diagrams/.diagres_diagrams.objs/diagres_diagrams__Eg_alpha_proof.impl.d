lib/diagrams/eg_alpha_proof.ml: Buffer Eg_alpha List Printf String
