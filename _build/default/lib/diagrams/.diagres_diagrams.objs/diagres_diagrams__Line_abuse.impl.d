lib/diagrams/line_abuse.ml: Eg_beta Fun List Printf Scene
