lib/diagrams/query_builder.ml: Buffer Diagres_data Diagres_logic Diagres_rc List Printf String
