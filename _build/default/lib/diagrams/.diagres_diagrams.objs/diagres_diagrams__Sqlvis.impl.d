lib/diagrams/sqlvis.ml: Diagres_logic Diagres_sql List Printf Scene String
