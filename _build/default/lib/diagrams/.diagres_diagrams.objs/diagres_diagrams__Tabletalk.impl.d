lib/diagrams/tabletalk.ml: Buffer Diagres_logic Diagres_sql List Printf Scene String
