lib/diagrams/trc_scene.ml: Diagres_data Diagres_logic Diagres_rc List Printf Scene String
