lib/diagrams/conceptual_graph.ml: Diagres_data Diagres_logic Diagres_rc List Printf Scene String Trc_scene
