lib/diagrams/constraint_diagram.ml: Diagres_logic Diagres_rc List Printf Scene String Venn
