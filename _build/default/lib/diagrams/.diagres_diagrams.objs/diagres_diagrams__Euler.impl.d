lib/diagrams/euler.ml: Buffer Diagres_render List Printf String Venn
