lib/diagrams/higraph.ml: Diagres_data List Scene
