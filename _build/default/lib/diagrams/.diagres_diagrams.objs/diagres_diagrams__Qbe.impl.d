lib/diagrams/qbe.ml: Buffer Diagres_data Diagres_datalog Diagres_logic Hashtbl List Option Printf Scene String
