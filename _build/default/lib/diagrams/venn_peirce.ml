(** Venn-Peirce diagram systems: disjunctions of Venn diagrams.

    Peirce extended Venn's system with ⊗-sequences (handled inside
    {!Venn}) and with {e disjunctive combinations of whole diagrams} —
    needed because a single shading/⊗ diagram cannot express, e.g.,
    "All A are B, or no A is B".  The tutorial uses exactly this to
    introduce its recurring theme: disjunction is the hardest connective
    for diagrammatic systems, which resurfaces for Relational Diagrams
    (multiple panels) and for SQL UNION.  *)

type t = Venn.t list
(** non-empty disjunction of alternatives over the same set list *)

exception Venn_peirce_error of string

let of_venn v : t = [ v ]

let alternatives (d : t) = d

let check_same_sets (d : t) =
  match d with
  | [] -> raise (Venn_peirce_error "empty disjunction")
  | v :: vs ->
    List.iter
      (fun w ->
        if w.Venn.sets <> v.Venn.sets then
          raise (Venn_peirce_error "alternatives over different set lists"))
      vs

let disjoin (a : t) (b : t) : t =
  let d = a @ b in
  check_same_sets d;
  d

(** Conjunction distributes over the alternatives (cartesian combination of
    shading and ⊗-information). *)
let conjoin (a : t) (b : t) : t =
  check_same_sets (a @ b);
  List.concat_map
    (fun va ->
      List.map
        (fun vb ->
          let v = Venn.shade va vb.Venn.shaded in
          List.fold_left Venn.add_xseq v vb.Venn.xseqs)
        b)
    a

let satisfies (d : t) m = List.exists (fun v -> Venn.satisfies v m) d

(** Entailment: every alternative of [d1] must entail some alternative of
    [d2].  Sound; complete on the zone semantics because alternatives are
    independent. *)
let entails (d1 : t) (d2 : t) =
  check_same_sets d1;
  check_same_sets d2;
  List.for_all
    (fun v1 ->
      List.exists (fun v2 -> Venn.entails v1 v2) d2
      || Venn.inconsistent v1)
    d1

(** Model-enumeration entailment, the testing ground truth. *)
let entails_semantic (d1 : t) (d2 : t) =
  match d1 with
  | [] -> raise (Venn_peirce_error "empty disjunction")
  | v :: _ ->
    List.for_all
      (fun m -> (not (satisfies d1 m)) || satisfies d2 m)
      (Venn.all_models v)

let to_fol (d : t) =
  Diagres_logic.Fol.disj (List.map Venn.to_fol d)

let inconsistent (d : t) = List.for_all Venn.inconsistent d

(** Render as side-by-side alternatives separated by an "or" divider —
    exactly the multi-panel device the tutorial keeps returning to. *)
let to_ascii (d : t) =
  String.concat "  -- OR --\n" (List.map Venn.to_ascii d)

let to_svg (d : t) =
  (* one SVG per alternative, horizontally stitched via nested <svg> would
     be heavier than it is worth: emit the first alternative and caption
     the count.  Multi-panel composition happens at the pipeline level. *)
  match d with
  | [ v ] -> Venn.to_svg v
  | v :: _ -> Venn.to_svg v
  | [] -> raise (Venn_peirce_error "empty disjunction")
