(** Venn diagrams (Venn 1880) with Peirce's later additions, over a region
    algebra of zones.

    For sets S₁…Sₙ a {e zone} is one of the 2ⁿ basic regions, encoded as a
    bitmask over the set list (bit i = membership in Sᵢ; 0 is the region
    outside all curves).  A diagram asserts:

    - {e shading}: every shaded zone is empty (Venn's only device), and
    - {e ⊗-sequences}: at least one zone of the sequence is non-empty
      (Peirce's device for existential/disjunctive information).

    This module provides the categorical-statement constructors, the
    sound-and-complete entailment test on zones (following Shin's
    formalization), and the FOL semantics used by the differential tests. *)

module F = Diagres_logic.Fol

type zone = int
(** bitmask over [sets] *)

type t = {
  sets : string list;          (** curve labels, bit order *)
  shaded : zone list;          (** asserted empty *)
  xseqs : zone list list;      (** each: at least one zone inhabited *)
}

exception Venn_error of string

let create sets =
  if sets = [] then raise (Venn_error "a Venn diagram needs at least one set");
  if List.length sets > 16 then raise (Venn_error "too many sets");
  { sets; shaded = []; xseqs = [] }

let n_zones d = 1 lsl List.length d.sets

let set_index d s =
  let rec go i = function
    | [] -> raise (Venn_error ("unknown set " ^ s))
    | x :: _ when x = s -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 d.sets

let zone_mem d s (z : zone) = z land (1 lsl set_index d s) <> 0

(** All zones inside set [s]; [~without] excludes zones meeting those sets. *)
let zones_in d ?(without = []) s =
  let all = List.init (n_zones d) (fun z -> z) in
  List.filter
    (fun z ->
      zone_mem d s z && List.for_all (fun w -> not (zone_mem d w z)) without)
    all

let zone_to_string d (z : zone) =
  let inside = List.filter (fun s -> zone_mem d s z) d.sets in
  if inside = [] then "outside" else String.concat "∩" inside

let shade d zones = { d with shaded = List.sort_uniq compare (zones @ d.shaded) }

let add_xseq d zones =
  if zones = [] then raise (Venn_error "empty ⊗-sequence");
  { d with xseqs = zones :: d.xseqs }

(* ------------------------------------------------------------------ *)
(* Categorical statements (the syllogistic fragment).                   *)

type statement =
  | All_are of string * string        (** All A are B *)
  | No_are of string * string         (** No A is B *)
  | Some_are of string * string       (** Some A is B *)
  | Some_are_not of string * string   (** Some A is not B *)

let statement_to_string = function
  | All_are (a, b) -> Printf.sprintf "All %s are %s" a b
  | No_are (a, b) -> Printf.sprintf "No %s is %s" a b
  | Some_are (a, b) -> Printf.sprintf "Some %s is %s" a b
  | Some_are_not (a, b) -> Printf.sprintf "Some %s is not %s" a b

(** Add one categorical statement to a diagram (Venn-Peirce style: shading
    for universals, ⊗ for particulars). *)
let assert_statement d = function
  | All_are (a, b) -> shade d (zones_in d a ~without:[ b ])
  | No_are (a, b) ->
    shade d (List.filter (zone_mem d b) (zones_in d a))
  | Some_are (a, b) -> add_xseq d (List.filter (zone_mem d b) (zones_in d a))
  | Some_are_not (a, b) -> add_xseq d (zones_in d a ~without:[ b ])

let of_statements sets stmts =
  List.fold_left assert_statement (create sets) stmts

(* ------------------------------------------------------------------ *)
(* Semantics and entailment.                                            *)

(** A model assigns each universe element to the zone it inhabits; for
    finite semantics a model is just the set of inhabited zones. *)
type model = zone list

let satisfies (d : t) (m : model) =
  List.for_all (fun z -> not (List.mem z m)) d.shaded
  && List.for_all (fun seq -> List.exists (fun z -> List.mem z m) seq) d.xseqs

(** All models over the zone space of [d] (exponential — test use only). *)
let all_models d =
  let zones = List.init (n_zones d) (fun z -> z) in
  List.fold_left
    (fun acc z -> List.concat_map (fun m -> [ m; z :: m ]) acc)
    [ [] ] zones

(** Model-theoretic entailment by enumeration (the ground truth in tests). *)
let entails_semantic d1 d2 =
  List.for_all (fun m -> (not (satisfies d1 m)) || satisfies d2 m) (all_models d1)

(** A diagram is inconsistent iff some ⊗-sequence is fully shaded. *)
let inconsistent d =
  List.exists (fun seq -> List.for_all (fun z -> List.mem z d.shaded) seq) d.xseqs

(** Syntactic entailment on the region algebra (sound and complete):
    - an inconsistent premise diagram entails everything (ex falso);
    - every zone shaded in [d2] must be shaded in [d1];
    - every ⊗-sequence of [d2] must be implied by one of [d1] whose
      unshaded zones all occur in it. *)
let entails d1 d2 =
  if d1.sets <> d2.sets then
    raise (Venn_error "entailment requires diagrams over the same sets");
  let shaded1 z = List.mem z d1.shaded in
  inconsistent d1
  || (List.for_all shaded1 d2.shaded
     && List.for_all
          (fun seq2 ->
            List.exists
              (fun seq1 ->
                let live = List.filter (fun z -> not (shaded1 z)) seq1 in
                live <> [] && List.for_all (fun z -> List.mem z seq2) live)
              d1.xseqs)
          d2.xseqs)

(* ------------------------------------------------------------------ *)
(* FOL semantics (bridge to the rest of the library).                   *)

let zone_formula d x (z : zone) =
  F.conj
    (List.map
       (fun s ->
         let atom = F.Pred (s, [ F.Var x ]) in
         if zone_mem d s z then atom else F.Not atom)
       d.sets)

(** The FOL sentence a diagram denotes. *)
let to_fol d =
  let shading =
    List.map (fun z -> F.Not (F.Exists ("x", zone_formula d "x" z))) d.shaded
  in
  let existentials =
    List.map
      (fun seq ->
        F.Exists ("x", F.disj (List.map (zone_formula d "x") seq)))
      d.xseqs
  in
  F.conj (shading @ existentials)

(** Which zones of a monadic database are inhabited — evaluates a concrete
    instance into a {!model}. *)
let model_of_db d (db : Diagres_data.Database.t) : model =
  let universe = Diagres_data.Database.active_domain db in
  let member s v =
    match Diagres_data.Database.find_opt s db with
    | None -> false
    | Some rel -> Diagres_data.Relation.mem (Diagres_data.Tuple.of_list [ v ]) rel
  in
  List.sort_uniq compare
    (List.map
       (fun v ->
         List.fold_left
           (fun acc (i, s) -> if member s v then acc lor (1 lsl i) else acc)
           0
           (List.mapi (fun i s -> (i, s)) d.sets))
       universe)

(* ------------------------------------------------------------------ *)
(* Rendering: fixed geometry for 1–3 curves.                            *)

module Geom = Diagres_render.Geom
module Svg = Diagres_render.Svg

let circle_layout n =
  match n with
  | 1 -> [ (200., 160., 110.) ]
  | 2 -> [ (160., 160., 110.); (280., 160., 110.) ]
  | 3 -> [ (160., 150., 105.); (280., 150., 105.); (220., 250., 105.) ]
  | _ -> raise (Venn_error "can only render 1–3 sets")

(* A representative point for each zone, found by sampling the plane. *)
let zone_point circles (z : zone) =
  let inside cx cy r x y = ((x -. cx) ** 2.) +. ((y -. cy) ** 2.) <= r *. r in
  let zone_of x y =
    List.fold_left
      (fun acc (i, (cx, cy, r)) ->
        if inside cx cy r x y then acc lor (1 lsl i) else acc)
      0
      (List.mapi (fun i c -> (i, c)) circles)
  in
  let candidates = ref [] in
  for xi = 0 to 44 do
    for yi = 0 to 39 do
      let x = 20. +. (float_of_int xi *. 10.) in
      let y = 20. +. (float_of_int yi *. 10.) in
      if zone_of x y = z then candidates := (x, y) :: !candidates
    done
  done;
  match !candidates with
  | [] -> None
  | pts ->
    (* centroid of the sampled points *)
    let n = float_of_int (List.length pts) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
    Some (sx /. n, sy /. n)

let to_svg (d : t) : string =
  let circles = circle_layout (List.length d.sets) in
  let svg = Svg.create () in
  (* shading first, under the curves *)
  List.iter
    (fun z ->
      match zone_point circles z with
      | Some (x, y) ->
        Svg.circle
          ~style:{ (Svg.filled "#bbbbbb") with Svg.opacity = 0.75 }
          svg (Geom.pt x y) 26.;
        Svg.text ~size:10. ~color:"#555555" svg (Geom.pt (x -. 4.) (y +. 3.)) "∅"
      | None -> ())
    d.shaded;
  List.iteri
    (fun i (cx, cy, r) ->
      Svg.circle svg (Geom.pt cx cy) r;
      let label_y = if cy > 200. then cy +. r +. 16. else cy -. r -. 6. in
      Svg.text ~bold:true svg (Geom.pt cx label_y) (List.nth d.sets i))
    circles;
  (* ⊗-sequences: marks joined by a line *)
  List.iter
    (fun seq ->
      let pts = List.filter_map (zone_point circles) seq in
      (match pts with
      | _ :: _ :: _ ->
        Svg.polyline
          ~style:{ Svg.default_style with Svg.stroke = "#8a2d2d" }
          svg
          (List.map (fun (x, y) -> Geom.pt x y) pts)
      | _ -> ());
      List.iter
        (fun (x, y) ->
          Svg.circle ~style:{ Svg.default_style with Svg.stroke = "#8a2d2d" }
            svg (Geom.pt x y) 7.;
          Svg.text ~size:11. ~color:"#8a2d2d" svg (Geom.pt (x -. 4.) (y +. 4.)) "x")
        pts)
    d.xseqs;
  Svg.to_string ~width:440. ~height:400. svg

let to_ascii (d : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "Venn diagram over {%s}\n" (String.concat ", " d.sets));
  List.iter
    (fun z ->
      Buffer.add_string buf
        (Printf.sprintf "  shaded (empty): %s\n" (zone_to_string d z)))
    (List.sort compare d.shaded);
  List.iter
    (fun seq ->
      Buffer.add_string buf
        (Printf.sprintf "  x-sequence (some inhabited): %s\n"
           (String.concat " - " (List.map (zone_to_string d) seq))))
    d.xseqs;
  Buffer.contents buf
