(** SIEUFERD (Bakke & Karger, SIGMOD 2016): the query is a {e nested result
    header}; users manipulate the spreadsheet-like result directly.

    The tutorial's one-line summary — "a result header encodes the
    structure of the query; the query result is listed below that header" —
    is implemented literally: a {!spec} is a tree of table scopes with join
    conditions; {!header} is the nested column header the UI would show;
    {!eval} produces the nested rows; and {!to_trc} reads the header back
    as the query it encodes (for one nest path), which is what makes the
    header a {e visualization of the query} and not just of the data. *)

module T = Diagres_rc.Trc
module D = Diagres_data

type spec = {
  var : string;
  table : string;
  attrs : string list;              (** columns shown at this level *)
  conditions : (Diagres_logic.Fol.cmp * T.term * T.term) list;
  children : spec list;             (** nested one-to-many scopes *)
}

let scope ?(attrs = []) ?(conditions = []) ?(children = []) var table =
  { var; table; attrs; conditions; children }

exception Sieuferd_error of string

(* ------------------------------------------------------------------ *)
(* Header: the visible encoding of the query.                           *)

type header = {
  title : string;                   (** [table var] *)
  columns : string list;
  nested : header list;
}

let rec header (s : spec) : header =
  {
    title = Printf.sprintf "%s %s" s.table s.var;
    columns = s.attrs;
    nested = List.map header s.children;
  }

let rec header_to_ascii ?(indent = 0) (h : header) : string =
  let pad = String.make indent ' ' in
  pad ^ h.title ^ " [" ^ String.concat " | " h.columns ^ "]\n"
  ^ String.concat ""
      (List.map (header_to_ascii ~indent:(indent + 4)) h.nested)

(* ------------------------------------------------------------------ *)
(* Nested evaluation.                                                   *)

type row = {
  values : (string * D.Value.t) list;    (** attr → value at this level *)
  subrows : (string * row list) list;    (** child var → nested rows *)
}

let term_value db env = function
  | T.Const c -> c
  | T.Field (v, a) -> (
    match List.assoc_opt v env with
    | Some (tup, table) ->
      D.Tuple.field (D.Relation.schema (D.Database.find table db)) a tup
    | None -> raise (Sieuferd_error ("unbound variable " ^ v)))

let conditions_hold db env (s : spec) tup =
  let env = (s.var, (tup, s.table)) :: env in
  List.for_all
    (fun (op, a, b) ->
      Diagres_logic.Fol.cmp_eval op (term_value db env a) (term_value db env b))
    s.conditions

let rec eval_spec db env (s : spec) : row list =
  let rel = D.Database.find s.table db in
  let schema = D.Relation.schema rel in
  List.filter_map
    (fun tup ->
      if not (conditions_hold db env s tup) then None
      else
        let env' = (s.var, (tup, s.table)) :: env in
        Some
          {
            values =
              List.map (fun a -> (a, D.Tuple.field schema a tup)) s.attrs;
            subrows =
              List.map (fun c -> (c.var, eval_spec db env' c)) s.children;
          })
    (D.Relation.tuples rel)

let eval db (s : spec) : row list = eval_spec db [] s

let rec rows_to_ascii ?(indent = 0) (rows : row list) : string =
  let pad = String.make indent ' ' in
  String.concat ""
    (List.map
       (fun r ->
         pad
         ^ String.concat " | "
             (List.map (fun (_, v) -> D.Value.to_string v) r.values)
         ^ "\n"
         ^ String.concat ""
             (List.map
                (fun (_, sub) -> rows_to_ascii ~indent:(indent + 4) sub)
                r.subrows))
       rows)

let to_ascii db (s : spec) : string =
  header_to_ascii (header s) ^ rows_to_ascii (eval db s)

(* ------------------------------------------------------------------ *)
(* The header read back as a query: flattening one nest path gives the
   join query the header encodes (SIEUFERD's headers are, deliberately,
   query visualizations).                                                *)

let rec collect_path (s : spec) (path : string list) :
    (string * string) list * (Diagres_logic.Fol.cmp * T.term * T.term) list =
  let here = ([ (s.var, s.table) ], s.conditions) in
  match path with
  | [] -> here
  | v :: rest -> (
    match List.find_opt (fun c -> c.var = v) s.children with
    | None -> raise (Sieuferd_error ("no nested scope " ^ v))
    | Some child ->
      let ranges, conds = collect_path child rest in
      (fst here @ ranges, snd here @ conds))

(** The TRC query of one nest path, projecting the innermost scope's
    attributes plus the root's. *)
let to_trc (s : spec) ~(path : string list) : T.query =
  let ranges, conds = collect_path s path in
  let leaf_var = match List.rev ranges with (v, _) :: _ -> v | [] -> s.var in
  let leaf_spec =
    let rec find sp = function
      | [] -> sp
      | v :: rest -> find (List.find (fun c -> c.var = v) sp.children) rest
    in
    find s path
  in
  {
    T.head =
      List.map (fun a -> T.Field (s.var, a)) s.attrs
      @ (if leaf_var = s.var then []
         else List.map (fun a -> T.Field (leaf_var, a)) leaf_spec.attrs);
    ranges;
    body = T.conj (List.map (fun (op, a, b) -> T.Cmp (op, a, b)) conds);
  }
