(** The shared diagram scene graph.

    Every containment-style formalism in this library (Peirce cuts,
    QueryVis groups, Relational Diagrams, constraint-diagram boxes) lowers
    to this structure: a forest of labelled boxes and leaves plus a set of
    links between identifiers.  The scene is the level at which the
    Part-2 "principles" checks and the Part-6 line-abuse analysis operate,
    and the input to both renderers (SVG and ASCII).

    Roles record the {e semantic} function of each mark — which visual
    variable carries which logical meaning — so analyses never have to
    guess from geometry. *)

module Geom = Diagres_render.Geom
module Svg = Diagres_render.Svg
module Ascii = Diagres_render.Ascii

type role =
  | Relation_box   (** a tuple variable / table occurrence *)
  | Attribute_row  (** one attribute line inside a relation box *)
  | Cut            (** negation context (Peirce cut / negated box) *)
  | Group          (** neutral grouping (quantifier scope, panel) *)
  | Predicate_node (** a predicate symbol in a node-link formalism *)
  | Constant_node  (** a literal *)
  | Annotation     (** captions, operators, decorations *)

type link_role =
  | Join_edge        (** equality/comparison between attributes *)
  | Identity_line    (** Peirce line of identity / string-diagram wire *)
  | Reading_arrow    (** QueryVis reading-order arrow *)
  | Dataflow_edge    (** DFQL operator input *)
  | Membership_edge  (** conceptual-graph concept–relation link *)

type mark =
  | Box of box
  | Leaf of { id : string; label : string; role : role }

and box = {
  id : string;
  title : string option;
  role : role;
  children : mark list;
  horizontal : bool;  (** lay children left-to-right instead of stacked *)
}

type link = {
  src : string;
  dst : string;
  label : string option;
  directed : bool;
  dashed : bool;
  link_role : link_role;
}

type t = { marks : mark list; links : link list; caption : string option }

let leaf ?(role = Annotation) ~id label = Leaf { id; label; role }

let box ?title ?(role = Group) ?(horizontal = false) ~id children =
  Box { id; title; role; children; horizontal }

let link ?label ?(directed = false) ?(dashed = false)
    ?(role = Join_edge) src dst =
  { src; dst; label; directed; dashed; link_role = role }

let scene ?caption ?(links = []) marks = { marks; links; caption }

let mark_id = function Box b -> b.id | Leaf l -> l.id

let rec fold_marks f acc mark =
  let acc = f acc mark in
  match mark with
  | Leaf _ -> acc
  | Box b -> List.fold_left (fold_marks f) acc b.children

let all_marks scene =
  List.fold_left (fold_marks (fun acc m -> m :: acc)) [] scene.marks

let find_mark scene id =
  List.find_opt (fun m -> mark_id m = id) (all_marks scene)

(** Nesting depth of an id (number of enclosing boxes); used by analyses
    that need the polarity of a context (even depth of cuts = positive). *)
let cut_depth scene id =
  let rec go depth mark =
    match mark with
    | Leaf l -> if l.id = id then Some depth else None
    | Box b ->
      if b.id = id then Some depth
      else
        let inner = if b.role = Cut then depth + 1 else depth in
        List.find_map (go inner) b.children
  in
  List.find_map (go 0) scene.marks

(* ---------------------------------------------------------------- *)
(* Containment layout.                                                *)

let font = 12.
let pad = 10.
let title_h = 18.

type layouted = {
  rects : (string * Geom.rect) list;
  size : float * float;
}

(* Compute the size of a mark bottom-up, then assign positions top-down. *)
let rec measure = function
  | Leaf l ->
    (Geom.text_width ~font_size:font l.label +. (2. *. pad),
     Geom.text_height ~font_size:font () +. 6.)
  | Box b ->
    let sizes = List.map measure b.children in
    let tw =
      match b.title with
      | Some t -> Geom.text_width ~font_size:font t +. (2. *. pad)
      | None -> 0.
    in
    let content_w, content_h =
      if b.horizontal then
        ( List.fold_left (fun a (w, _) -> a +. w +. pad) pad sizes,
          List.fold_left (fun a (_, h) -> Float.max a h) 0. sizes
          +. (2. *. pad) )
      else
        ( List.fold_left (fun a (w, _) -> Float.max a w) 0. sizes
          +. (2. *. pad),
          List.fold_left (fun a (_, h) -> a +. h +. 6.) pad sizes +. pad )
    in
    let th = if b.title = None then 0. else title_h in
    (Float.max tw (Float.max content_w 40.), Float.max (content_h +. th) 28.)

let rec place acc x y mark =
  match mark with
  | Leaf l ->
    let w, h = measure mark in
    (l.id, Geom.rect x y w h) :: acc
  | Box b ->
    let w, h = measure mark in
    let acc = (b.id, Geom.rect x y w h) :: acc in
    let th = if b.title = None then 0. else title_h in
    if b.horizontal then
      let _, acc =
        List.fold_left
          (fun (cx, acc) child ->
            let cw, _ = measure child in
            let acc = place acc cx (y +. th +. pad) child in
            (cx +. cw +. pad, acc))
          (x +. pad, acc) b.children
      in
      acc
    else
      let _, acc =
        List.fold_left
          (fun (cy, acc) child ->
            let _, ch = measure child in
            let acc = place acc (x +. pad) cy child in
            (cy +. ch +. 6., acc))
          (y +. th +. pad, acc) b.children
      in
      acc

(** Lay out all top-level marks left to right. *)
let layout (scene : t) : layouted =
  let margin = 20. in
  let _, rects, h =
    List.fold_left
      (fun (x, acc, hmax) mark ->
        let w, h = measure mark in
        let acc = place acc x margin mark in
        (x +. w +. 30., acc, Float.max hmax h))
      (margin, [], 0.) scene.marks
  in
  let width =
    List.fold_left (fun a (_, r) -> Float.max a (Geom.right r)) 0. rects
    +. margin
  in
  let height = h +. (2. *. margin) +. 20. in
  { rects; size = (width, height) }

(* ---------------------------------------------------------------- *)
(* SVG rendering.                                                     *)

let role_svg_style = function
  | Relation_box ->
    { Svg.default_style with stroke = "#2b5f9e"; stroke_width = 1.4 }
  | Cut -> { Svg.default_style with stroke = "#b03030"; dashed = true }
  | Group -> { Svg.default_style with stroke = "#999999"; dashed = true }
  | Attribute_row -> { Svg.default_style with stroke = "none" }
  | Predicate_node ->
    { Svg.default_style with stroke = "#2b5f9e"; stroke_width = 1.2 }
  | Constant_node | Annotation -> { Svg.default_style with stroke = "none" }

let link_svg_style = function
  | Join_edge -> { Svg.default_style with stroke = "#444444" }
  | Identity_line -> { Svg.default_style with stroke = "#111111"; stroke_width = 2.6 }
  | Reading_arrow -> { Svg.default_style with stroke = "#b03030" }
  | Dataflow_edge -> { Svg.default_style with stroke = "#444444" }
  | Membership_edge -> { Svg.default_style with stroke = "#444444" }

let rec draw_mark svg rects mark =
  match mark with
  | Leaf l ->
    let r = List.assoc l.id rects in
    (match l.role with
    | Constant_node ->
      Svg.rect ~style:{ Svg.default_style with stroke = "#888888" } ~radius:9. svg r
    | Predicate_node -> Svg.rect ~style:(role_svg_style l.role) svg r
    | _ -> ());
    Svg.text svg
      (Geom.pt (r.Geom.rx +. pad) (r.Geom.ry +. (Geom.text_height ~font_size:font ())))
      l.label
  | Box b ->
    let r = List.assoc b.id rects in
    (match b.role with
    | Cut ->
      Svg.rect ~style:(role_svg_style Cut) ~radius:14. svg r
    | _ -> Svg.rect ~style:(role_svg_style b.role) svg r);
    (match b.title with
    | Some t ->
      Svg.text ~bold:(b.role = Relation_box) svg
        (Geom.pt (r.Geom.rx +. pad) (r.Geom.ry +. 14.))
        t
    | None -> ());
    List.iter (draw_mark svg rects) b.children

let to_svg (scene : t) : string =
  let { rects; size = w, h } = layout scene in
  let svg = Svg.create () in
  List.iter (draw_mark svg rects) scene.marks;
  List.iter
    (fun lk ->
      match (List.assoc_opt lk.src rects, List.assoc_opt lk.dst rects) with
      | Some ra, Some rb ->
        let ca = Geom.center ra and cb = Geom.center rb in
        let pa = Geom.border_point ra cb and pb = Geom.border_point rb ca in
        let style =
          let s = link_svg_style lk.link_role in
          if lk.dashed then { s with Svg.dashed = true } else s
        in
        Svg.polyline ~style ~arrow:lk.directed svg [ pa; pb ];
        (match lk.label with
        | Some text ->
          let mid =
            Geom.pt (((pa.Geom.x +. pb.Geom.x) /. 2.) +. 3.)
              (((pa.Geom.y +. pb.Geom.y) /. 2.) -. 3.)
          in
          Svg.text ~size:10. ~color:"#666666" svg mid text
        | None -> ())
      | _ -> ())
    scene.links;
  (match scene.caption with
  | Some c -> Svg.text ~size:13. ~bold:true svg (Geom.pt 20. (h -. 8.)) c
  | None -> ());
  Svg.to_string ~width:w ~height:h svg

(* ---------------------------------------------------------------- *)
(* ASCII rendering: scale the float layout onto a character grid.     *)

let to_ascii (scene : t) : string =
  let { rects; size = w, h } = layout scene in
  let sx = 0.18 and sy = 0.085 in
  let canvas =
    Ascii.create (int_of_float (w *. sx) + 4) (int_of_float (h *. sy) + 4)
  in
  let cx f = int_of_float (f *. sx) in
  let cy f = int_of_float (f *. sy) in
  (* draw deepest boxes last so borders stay visible *)
  let rec draw mark =
    match mark with
    | Leaf l ->
      let r = List.assoc l.id rects in
      Ascii.text canvas (cx r.Geom.rx + 1) (cy (Geom.center r).Geom.y) l.label
    | Box b ->
      let r = List.assoc b.id rects in
      Ascii.box
        ~dashed:(b.role = Cut || b.role = Group)
        canvas (cx r.Geom.rx) (cy r.Geom.ry)
        (cx r.Geom.w |> max 4)
        (cy r.Geom.h |> max 3);
      (match b.title with
      | Some t -> Ascii.text canvas (cx r.Geom.rx + 2) (cy r.Geom.ry + 1) t
      | None -> ());
      List.iter draw b.children
  in
  List.iter draw scene.marks;
  List.iter
    (fun lk ->
      match (List.assoc_opt lk.src rects, List.assoc_opt lk.dst rects) with
      | Some ra, Some rb ->
        let ca = Geom.center ra and cb = Geom.center rb in
        Ascii.connect ~arrow:lk.directed canvas
          (cx ca.Geom.x, cy ca.Geom.y)
          (cx cb.Geom.x, cy cb.Geom.y)
      | _ -> ())
    scene.links;
  (match scene.caption with
  | Some c -> Ascii.text canvas 1 (int_of_float (h *. sy) + 2) c
  | None -> ());
  Ascii.to_string canvas

(* ---------------------------------------------------------------- *)
(* Statistics used by the principles checks and benches.              *)

type stats = {
  boxes : int;
  leaves : int;
  cuts : int;
  links : int;
  arrows : int;
  max_depth : int;
}

let stats (scene : t) : stats =
  let rec depth mark =
    match mark with
    | Leaf _ -> 1
    | Box b -> 1 + List.fold_left (fun a m -> max a (depth m)) 0 b.children
  in
  let marks = all_marks scene in
  {
    boxes = List.length (List.filter (function Box _ -> true | _ -> false) marks);
    leaves = List.length (List.filter (function Leaf _ -> true | _ -> false) marks);
    cuts =
      List.length
        (List.filter (function Box b -> b.role = Cut | _ -> false) marks);
    links = List.length scene.links;
    arrows = List.length (List.filter (fun l -> l.directed) scene.links);
    max_depth =
      List.fold_left (fun a m -> max a (depth m)) 0 scene.marks;
  }
