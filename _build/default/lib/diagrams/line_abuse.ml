(** The "three abuses of the line" (tutorial Part 6).

    A line as a geometric mark is used by the surveyed formalisms for three
    distinct logical jobs:

    + {b identity}: asserting two things are equal (beta-graph ligatures,
      join edges);
    + {b existence}: asserting something exists (a beta line of identity on
      its own is already [∃x]);
    + {b predication}: carrying a non-identity predicate (an edge labelled
      [<] between attributes).

    A formalism {e abuses} the line when one line simultaneously plays more
    than one of these roles, forcing readers to disambiguate from context.
    Peirce's beta line of identity plays all three at once; Relational
    Diagrams deliberately retire roles (existence moves into box nesting;
    predication is always labelled).  This module measures role-load per
    line for scenes and beta graphs, producing the comparison the
    tutorial's "lessons learned" distills. *)

type role_load = {
  identity : bool;
  existence : bool;
  predication : bool;
}

let roles_used rl =
  List.length (List.filter Fun.id [ rl.identity; rl.existence; rl.predication ])

type report = {
  total_lines : int;
  abused_lines : int;  (** lines carrying ≥ 2 roles *)
  max_roles : int;
  per_role : int * int * int;  (** identity, existence, predication counts *)
}

(** Analyze a scene: each link is a line; roles derive from the link role
    and its label. *)
let of_scene (s : Scene.t) : report =
  let load (lk : Scene.link) =
    match lk.Scene.link_role with
    | Scene.Identity_line ->
      (* a line of identity asserts identity of its endpoints and the
         existence of the described object *)
      { identity = true; existence = true; predication = lk.Scene.label <> None }
    | Scene.Join_edge ->
      { identity = lk.Scene.label = None;
        existence = false;
        predication = lk.Scene.label <> None }
    | Scene.Reading_arrow | Scene.Dataflow_edge ->
      { identity = false; existence = false; predication = false }
    | Scene.Membership_edge ->
      { identity = false; existence = false; predication = true }
  in
  let loads = List.map load s.Scene.links in
  let count f = List.length (List.filter f loads) in
  {
    total_lines = List.length loads;
    abused_lines = count (fun l -> roles_used l >= 2);
    max_roles = List.fold_left (fun a l -> max a (roles_used l)) 0 loads;
    per_role =
      ( count (fun l -> l.identity),
        count (fun l -> l.existence),
        count (fun l -> l.predication) );
  }

(** Analyze a beta graph directly: every ligature is a line; it always
    asserts existence; it asserts identity when it has ≥ 2 hooks; it
    carries predication when attached to a comparison pseudo-predicate. *)
let of_beta (g : Eg_beta.t) : report =
  let ligs = Eg_beta.all_ligatures g in
  let rec pred_hooks (a : Eg_beta.area) =
    List.concat_map
      (fun (p : Eg_beta.pred_occ) ->
        List.filter_map
          (function Eg_beta.Lig l -> Some (p.Eg_beta.name, l) | Eg_beta.Cst _ -> None)
          p.Eg_beta.args)
      a.Eg_beta.preds
    @ List.concat_map pred_hooks a.Eg_beta.cuts
  in
  let hooks = pred_hooks g in
  let load l =
    let mine = List.filter (fun (_, l') -> l' = l) hooks in
    let comparison_names = [ "="; "<"; "<="; ">"; ">="; "<>" ] in
    {
      existence = true;
      identity = List.length mine >= 2;
      predication =
        List.exists (fun (n, _) -> List.mem n comparison_names) mine;
    }
  in
  let loads = List.map load ligs in
  let count f = List.length (List.filter f loads) in
  {
    total_lines = List.length loads;
    abused_lines = count (fun l -> roles_used l >= 2);
    max_roles = List.fold_left (fun a l -> max a (roles_used l)) 0 loads;
    per_role =
      ( count (fun l -> l.identity),
        count (fun l -> l.existence),
        count (fun l -> l.predication) );
  }

let report_to_string r =
  let i, e, p = r.per_role in
  Printf.sprintf
    "lines=%d abused=%d max-roles=%d (identity=%d existence=%d predication=%d)"
    r.total_lines r.abused_lines r.max_roles i e p
