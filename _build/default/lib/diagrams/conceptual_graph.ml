(** Sowa's conceptual graphs (1976) in their database-interface reading:
    bipartite graphs of {e concept} nodes ([Sailor: *x]) and {e relation}
    nodes linking them.

    For the conjunctive fragment (the one Sowa's database interface
    targeted) we derive a conceptual graph from a TRC query: every tuple
    variable becomes a concept node, every attribute comparison becomes a
    relation node wired to its operands, constants become individual
    concepts.  Negation contexts (Sowa inherited Peirce's cuts) are
    supported one level deep as boxed subgraphs. *)

module T = Diagres_rc.Trc

type concept = {
  cid : string;
  type_label : string;   (** e.g. [Sailor] *)
  referent : string;     (** [*x] generic, or an individual marker *)
}

type relation_node = {
  rid : string;
  rel_label : string;    (** e.g. [attr=attr], [<] *)
  args : string list;    (** concept ids, in order *)
}

type t = {
  concepts : concept list;
  relations : relation_node list;
  negated : t list;      (** nested negative contexts *)
}

exception Unsupported of string

let rec concept_count g =
  List.length g.concepts
  + List.fold_left (fun n sub -> n + concept_count sub) 0 g.negated

let rec relation_count g =
  List.length g.relations
  + List.fold_left (fun n sub -> n + relation_count sub) 0 g.negated

let of_trc (q : T.query) : t =
  let tree = Trc_scene.of_query q in
  let counter = ref 0 in
  let fresh p = incr counter; Printf.sprintf "%s%d" p !counter in
  let rec build (lvl : Trc_scene.level) : t =
    let concepts =
      List.map
        (fun (v, rel) -> { cid = "c:" ^ v; type_label = rel; referent = "*" ^ v })
        lvl.Trc_scene.ranges
    in
    let const_concepts = ref [] in
    let concept_of_term = function
      | T.Field (v, a) -> ("c:" ^ v, a)
      | T.Const c ->
        let id = fresh "k" in
        const_concepts :=
          { cid = id;
            type_label = Diagres_data.Value.ty_name (Diagres_data.Value.type_of c);
            referent = Diagres_data.Value.to_literal c }
          :: !const_concepts;
        (id, "")
    in
    let relations =
      List.map
        (fun (op, a, b) ->
          let ca, aa = concept_of_term a and cb, ab = concept_of_term b in
          let rel_label =
            if op = Diagres_logic.Fol.Eq then Printf.sprintf "%s=%s" aa ab
            else
              Printf.sprintf "%s %s %s" aa (Diagres_logic.Fol.cmp_name op) ab
          in
          { rid = fresh "r"; rel_label; args = [ ca; cb ] })
        lvl.Trc_scene.preds
    in
    { concepts = concepts @ !const_concepts;
      relations;
      negated = List.map build lvl.Trc_scene.negs }
  in
  build tree

let concept_to_string c = Printf.sprintf "[%s: %s]" c.type_label c.referent

let rec to_linear (g : t) : string =
  (* Sowa's linear form *)
  let parts =
    List.map concept_to_string g.concepts
    @ List.map
        (fun r ->
          Printf.sprintf "(%s %s)" r.rel_label (String.concat " " r.args))
        g.relations
    @ List.map (fun sub -> Printf.sprintf "¬[ %s ]" (to_linear sub)) g.negated
  in
  String.concat " " parts

(* concept and relation ids are globally unique already (variable names are
   unique in the queries our translators emit; [fresh] numbers the rest), so
   only negation boxes need a path prefix *)
let rec to_scene_marks prefix (g : t) : Scene.mark list * Scene.link list =
  let cmarks =
    List.map
      (fun c ->
        Scene.leaf ~role:Scene.Predicate_node ~id:c.cid (concept_to_string c))
      g.concepts
  in
  let rmarks =
    List.map
      (fun r ->
        Scene.leaf ~role:Scene.Constant_node ~id:r.rid ("(" ^ r.rel_label ^ ")"))
      g.relations
  in
  let rlinks =
    List.concat_map
      (fun r ->
        List.map
          (fun arg -> Scene.link ~role:Scene.Membership_edge r.rid arg)
          r.args)
      g.relations
  in
  let sub_results =
    List.mapi
      (fun i sub ->
        let p = Printf.sprintf "%sneg%d:" prefix i in
        let marks, links = to_scene_marks p sub in
        (Scene.box ~role:Scene.Cut ~horizontal:true ~id:(p ^ "box") marks, links))
      g.negated
  in
  ( cmarks @ rmarks @ List.map fst sub_results,
    rlinks @ List.concat_map snd sub_results )

let to_scene (g : t) : Scene.t =
  let marks, links = to_scene_marks "" g in
  Scene.scene ~links
    [ Scene.box ~role:Scene.Group ~horizontal:true ~id:"cg" marks ]

let to_svg g = Scene.to_svg (to_scene g)
let to_ascii g = Scene.to_ascii (to_scene g)
