(** Classical syllogisms, decided diagrammatically.

    A syllogism has a major premise over (M, P), a minor premise over
    (S, M), and a conclusion over (S, P).  Of the 256 moods, 15 are valid
    under modern (non-existential-import) semantics and 24 under the
    traditional reading.  Experiment E2 checks that the Venn region
    algebra reproduces exactly the modern list, and that adding import
    assumptions recovers the traditional one — all cross-validated against
    FOL model enumeration. *)

type figure = Fig1 | Fig2 | Fig3 | Fig4

type mood = { major : char; minor : char; conclusion : char; figure : figure }

let figures = [ Fig1; Fig2; Fig3; Fig4 ]
let letters = [ 'A'; 'E'; 'I'; 'O' ]

let all_moods =
  List.concat_map
    (fun figure ->
      List.concat_map
        (fun major ->
          List.concat_map
            (fun minor ->
              List.map
                (fun conclusion -> { major; minor; conclusion; figure })
                letters)
            letters)
        letters)
    figures

let statement letter subject predicate : Venn.statement =
  match letter with
  | 'A' -> Venn.All_are (subject, predicate)
  | 'E' -> Venn.No_are (subject, predicate)
  | 'I' -> Venn.Some_are (subject, predicate)
  | 'O' -> Venn.Some_are_not (subject, predicate)
  | c -> invalid_arg (Printf.sprintf "unknown categorical letter %c" c)

(** Premises and conclusion over the canonical term names S, M, P. *)
let propositions (m : mood) =
  let major =
    match m.figure with
    | Fig1 | Fig3 -> statement m.major "M" "P"
    | Fig2 | Fig4 -> statement m.major "P" "M"
  in
  let minor =
    match m.figure with
    | Fig1 | Fig2 -> statement m.minor "S" "M"
    | Fig3 | Fig4 -> statement m.minor "M" "S"
  in
  (major, minor, statement m.conclusion "S" "P")

let sets = [ "S"; "M"; "P" ]

(** Validity via the Venn region algebra. *)
let valid_venn ?(existential_import = false) (m : mood) =
  let major, minor, concl = propositions m in
  let premises = Venn.of_statements sets [ major; minor ] in
  let premises =
    if existential_import then
      (* traditional logic: every term is non-empty *)
      List.fold_left
        (fun d s -> Venn.add_xseq d (Venn.zones_in d s))
        premises sets
    else premises
  in
  let conclusion = Venn.of_statements sets [ concl ] in
  Venn.entails premises conclusion

(** Validity by zone-model enumeration (the semantic ground truth; monadic
    FOL over 3 predicates has exactly the 2⁸ inhabited-zone-set models up
    to the only equivalence that matters here). *)
let valid_semantic ?(existential_import = false) (m : mood) =
  let major, minor, concl = propositions m in
  let premise_d = Venn.of_statements sets [ major; minor ] in
  let premise_d =
    if existential_import then
      List.fold_left
        (fun d s -> Venn.add_xseq d (Venn.zones_in d s))
        premise_d sets
    else premise_d
  in
  let concl_d = Venn.of_statements sets [ concl ] in
  Venn.entails_semantic premise_d concl_d

(** The FOL sentence [premises → conclusion] of a mood, for differential
    testing against {!Diagres_rc.Drc.eval_sentence} on concrete monadic
    databases. *)
let to_fol ?(existential_import = false) (m : mood) =
  let module F = Diagres_logic.Fol in
  let major, minor, concl = propositions m in
  let to_f st = Venn.to_fol (Venn.of_statements sets [ st ]) in
  let premise = F.And (to_f major, to_f minor) in
  let premise =
    if existential_import then
      List.fold_left
        (fun acc s -> F.And (acc, F.Exists ("x", F.Pred (s, [ F.Var "x" ]))))
        premise sets
    else premise
  in
  F.Implies (premise, to_f concl)

(** The 15 moods valid without existential import, by traditional name. *)
let valid_modern : (string * mood) list =
  [ ("Barbara", { major = 'A'; minor = 'A'; conclusion = 'A'; figure = Fig1 });
    ("Celarent", { major = 'E'; minor = 'A'; conclusion = 'E'; figure = Fig1 });
    ("Darii", { major = 'A'; minor = 'I'; conclusion = 'I'; figure = Fig1 });
    ("Ferio", { major = 'E'; minor = 'I'; conclusion = 'O'; figure = Fig1 });
    ("Cesare", { major = 'E'; minor = 'A'; conclusion = 'E'; figure = Fig2 });
    ("Camestres", { major = 'A'; minor = 'E'; conclusion = 'E'; figure = Fig2 });
    ("Festino", { major = 'E'; minor = 'I'; conclusion = 'O'; figure = Fig2 });
    ("Baroco", { major = 'A'; minor = 'O'; conclusion = 'O'; figure = Fig2 });
    ("Datisi", { major = 'A'; minor = 'I'; conclusion = 'I'; figure = Fig3 });
    ("Disamis", { major = 'I'; minor = 'A'; conclusion = 'I'; figure = Fig3 });
    ("Ferison", { major = 'E'; minor = 'I'; conclusion = 'O'; figure = Fig3 });
    ("Bocardo", { major = 'O'; minor = 'A'; conclusion = 'O'; figure = Fig3 });
    ("Camenes", { major = 'A'; minor = 'E'; conclusion = 'E'; figure = Fig4 });
    ("Dimaris", { major = 'I'; minor = 'A'; conclusion = 'I'; figure = Fig4 });
    ("Fresison", { major = 'E'; minor = 'I'; conclusion = 'O'; figure = Fig4 }) ]

let mood_to_string m =
  let fig = function Fig1 -> 1 | Fig2 -> 2 | Fig3 -> 3 | Fig4 -> 4 in
  Printf.sprintf "%c%c%c-%d" m.major m.minor m.conclusion (fig m.figure)
