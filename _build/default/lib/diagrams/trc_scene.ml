(** Shared analysis for drawing TRC queries (used by QueryVis and
    Relational Diagrams).

    A union-free TRC body normalizes into a {e nesting tree}: each level
    introduces tuple-variable ranges and local comparison predicates, and
    owns a list of negated sub-levels ([¬∃…]).  Positive existentials
    flatten into their parent level (they add no visual nesting in either
    formalism); ∀ and → are rewritten to ¬∃¬ first; ∨ raises — disjunction
    needs panels, which the callers handle via {!Diagres_rc.Ra_rewrite}. *)

module T = Diagres_rc.Trc

exception Disjunction of string
(** raised when a body is not union-free *)

type level = {
  ranges : (string * string) list;
  preds : (Diagres_logic.Fol.cmp * T.term * T.term) list;
  negs : level list;
}

let empty_level = { ranges = []; preds = []; negs = [] }

(* [collect] accumulates a formula in positive position into a level;
   [collect_neg] accumulates the *negation* of a formula, pushing ¬ through
   ∨/→/¬/comparisons so that ∀x(φ→ψ) draws as the canonical nested-box
   pattern ¬∃x(φ ∧ ¬ψ) instead of raising on the ∨ that ¬-elimination
   would otherwise synthesize. *)
let rec collect (lvl : level) (f : T.formula) : level =
  match f with
  | T.True -> lvl
  | T.False ->
    (* ⊥ as ¬(empty pattern): an empty negated box (Peirce's empty cut) *)
    { lvl with negs = empty_level :: lvl.negs }
  | T.Cmp (op, a, b) -> { lvl with preds = (op, a, b) :: lvl.preds }
  | T.And (a, b) -> collect (collect lvl a) b
  | T.Exists (rs, g) -> collect { lvl with ranges = lvl.ranges @ rs } g
  | T.Forall (rs, g) ->
    (* ∀r̄ φ = ¬∃r̄ ¬φ *)
    { lvl with
      negs = collect_neg { empty_level with ranges = rs } g :: lvl.negs }
  | T.Not g -> push_neg lvl g
  | T.Or _ | T.Implies _ ->
    raise
      (Disjunction
         "body contains a disjunction: draw one panel per union-free form")

(* accumulate ¬g into [lvl] *)
and push_neg (lvl : level) (g : T.formula) : level =
  match g with
  | T.True -> { lvl with negs = empty_level :: lvl.negs }  (* ¬⊤ = ⊥ *)
  | T.False -> lvl
  | T.Cmp (op, a, b) ->
    { lvl with preds = (Diagres_logic.Fol.cmp_negate op, a, b) :: lvl.preds }
  | T.Not h -> collect lvl h
  | T.Or (a, b) -> push_neg (push_neg lvl a) b
  | T.Implies (a, b) ->
    (* ¬(a → b) = a ∧ ¬b *)
    push_neg (collect lvl a) b
  | T.And _ -> { lvl with negs = collect empty_level g :: lvl.negs }
  | T.Exists (rs, h) ->
    { lvl with negs = collect { empty_level with ranges = rs } h :: lvl.negs }
  | T.Forall (rs, h) ->
    (* ¬∀r̄ φ = ∃r̄ ¬φ *)
    push_neg { lvl with ranges = lvl.ranges @ rs } h

(* the level denoting ¬(sub-pattern) content for a fresh box: [collect_neg
   base g] builds the level whose *contents* are g with ranges from base —
   used by ∀: the box holds the ranges plus ¬body *)
and collect_neg (base : level) (g : T.formula) : level =
  match g with
  | T.Implies (a, b) ->
    (* box contents: a ∧ ¬b *)
    push_neg (collect base a) b
  | _ -> push_neg base g

let normalize_body (f : T.formula) : level = collect empty_level f

let of_query (q : T.query) : level =
  let lvl = normalize_body q.T.body in
  { lvl with ranges = q.T.ranges @ lvl.ranges }

(** Attributes referenced per tuple variable across the whole tree —
    determines which attribute rows a relation box shows. *)
let used_attrs (q : T.query) : (string * string list) list =
  let fields =
    T.fields q.T.body
    @ List.filter_map
        (function T.Field (v, a) -> Some (v, a) | T.Const _ -> None)
        q.T.head
  in
  let vars = List.sort_uniq compare (List.map fst fields) in
  List.map
    (fun v ->
      ( v,
        List.sort_uniq compare
          (List.filter_map (fun (v', a) -> if v' = v then Some a else None) fields)
      ))
    vars

let attr_row_id v a = Printf.sprintf "attr:%s.%s" v a
let var_box_id v = Printf.sprintf "var:%s" v

(** Relation-box mark for one range, with one row per used attribute;
    var-const comparisons owned by this level render inline as selection
    labels on the row. *)
let range_mark ~used ~(selections : (string * string * string) list) (v, rel) =
  let attrs = try List.assoc v used with Not_found -> [] in
  let rows =
    List.map
      (fun a ->
        let sel =
          List.filter_map
            (fun (v', a', text) -> if v' = v && a' = a then Some text else None)
            selections
        in
        let label =
          match sel with
          | [] -> a
          | texts -> Printf.sprintf "%s %s" a (String.concat ", " texts)
        in
        Scene.leaf ~role:Scene.Attribute_row ~id:(attr_row_id v a) label)
      attrs
  in
  let rows =
    if rows = [] then
      [ Scene.leaf ~role:Scene.Attribute_row
          ~id:(attr_row_id v "_") "(no attributes used)" ]
    else rows
  in
  Scene.box ~role:Scene.Relation_box ~title:(rel ^ " " ^ v) ~id:(var_box_id v)
    rows

(** Split a level's predicates into var-var links and var-const selection
    labels. *)
let split_preds (lvl : level) =
  let links, selections =
    List.fold_left
      (fun (links, sels) (op, a, b) ->
        match (a, b) with
        | T.Field (v1, a1), T.Field (v2, a2) ->
          (((v1, a1), (v2, a2), op) :: links, sels)
        | T.Field (v, a), T.Const c ->
          ( links,
            (v, a,
             Printf.sprintf "%s %s" (Diagres_logic.Fol.cmp_name op)
               (Diagres_data.Value.to_literal c))
            :: sels )
        | T.Const c, T.Field (v, a) ->
          ( links,
            (v, a,
             Printf.sprintf "%s %s"
               (Diagres_logic.Fol.cmp_name (Diagres_logic.Fol.cmp_flip op))
               (Diagres_data.Value.to_literal c))
            :: sels )
        | T.Const _, T.Const _ -> (links, sels))
      ([], []) lvl.preds
  in
  (List.rev links, List.rev selections)

(* selections for var-const must be gathered over the whole tree so the
   attribute row of an outer box can show a condition asserted in an inner
   level; links however belong to their level for arrow-drawing purposes *)
let rec all_links_selections (lvl : level) =
  let links, sels = split_preds lvl in
  List.fold_left
    (fun (ls, ss) sub ->
      let l, s = all_links_selections sub in
      (ls @ l, ss @ s))
    (links, sels) lvl.negs

(** Scene links for var-var comparisons: undirected edges between attribute
    rows, labelled with the operator when it is not equality. *)
let comparison_links links =
  List.map
    (fun ((v1, a1), (v2, a2), op) ->
      let label =
        if op = Diagres_logic.Fol.Eq then None
        else Some (Diagres_logic.Fol.cmp_name op)
      in
      Scene.link ?label ~role:Scene.Join_edge (attr_row_id v1 a1)
        (attr_row_id v2 a2))
    links
