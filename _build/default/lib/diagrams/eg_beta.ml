(** Peirce's beta existential graphs: first-order logic with cuts and
    {e lines of identity}.

    Abstractly, a beta graph is a tree of areas (the sheet, with nested
    cuts); each area carries predicate occurrences whose hooks attach to
    {e ligatures} (connected line-of-identity networks), and may be
    traversed by ligatures.  A ligature asserts existence and identity: its
    {e outermost} area determines where the existential quantifier falls —
    precisely the subtlety (tutorial Part 4) that makes the mapping between
    beta graphs and the Boolean fragment of DRC "imperfect": a reader must
    recover scopes from line topology, and lines overloaded with existence,
    identity, and predication are what Part 6 calls the three abuses of the
    line (see {!Line_abuse}). *)

module F = Diagres_logic.Fol

type lig = int
(** ligature (line-of-identity network) identifier *)

type arg = Lig of lig | Cst of Diagres_data.Value.t

type area = {
  lines : lig list;      (** ligatures with an endpoint/segment in this area *)
  preds : pred_occ list;
  cuts : area list;
}

and pred_occ = { name : string; args : arg list }

type t = area  (** the sheet of assertion *)

let empty = { lines = []; preds = []; cuts = [] }

exception Beta_error of string

(* ------------------------------------------------------------------ *)
(* Structure queries.                                                   *)

let rec all_ligatures (a : area) : lig list =
  List.sort_uniq compare
    (a.lines
    @ List.concat_map
        (fun p ->
          List.filter_map (function Lig l -> Some l | Cst _ -> None) p.args)
        a.preds
    @ List.concat_map all_ligatures a.cuts)

(* Paths to every area containing an occurrence of [l] (lines or hook). *)
let occurrence_paths (g : t) (l : lig) : int list list =
  let rec go path (a : area) acc =
    let here =
      List.mem l a.lines
      || List.exists
           (fun p -> List.exists (function Lig x -> x = l | Cst _ -> false) p.args)
           a.preds
    in
    let acc = if here then List.rev path :: acc else acc in
    List.fold_left
      (fun acc (i, cut) -> go (i :: path) cut acc)
      acc
      (List.mapi (fun i c -> (i, c)) a.cuts)
  in
  go [] g []

let rec common_prefix p q =
  match (p, q) with
  | x :: ps, y :: qs when x = y -> x :: common_prefix ps qs
  | _ -> []

(** The area where a ligature is outermost: the least common ancestor of
    its occurrences.  *)
let scope_path (g : t) (l : lig) : int list =
  match occurrence_paths g l with
  | [] -> raise (Beta_error (Printf.sprintf "ligature %d does not occur" l))
  | p :: ps -> List.fold_left common_prefix p ps

(** A graph is well formed when every ligature is {e connected}: each area
    on the path from its scope to any occurrence carries the ligature.
    (Geometrically: the line may cross cuts, but it cannot jump.) *)
let well_formed (g : t) : bool =
  let occurs_in (a : area) l =
    List.mem l a.lines
    || List.exists
         (fun p -> List.exists (function Lig x -> x = l | Cst _ -> false) p.args)
         a.preds
  in
  let rec area_at (a : area) = function
    | [] -> a
    | i :: rest -> area_at (List.nth a.cuts i) rest
  in
  List.for_all
    (fun l ->
      let root = scope_path g l in
      List.for_all
        (fun occ ->
          (* every prefix of occ extending root must contain l *)
          let rec walk path =
            let a = area_at g path in
            occurs_in a l
            && (path = occ
               ||
               let next = List.nth occ (List.length path) in
               walk (path @ [ next ]))
          in
          walk root)
        (occurrence_paths g l))
    (all_ligatures g)

let rec cut_count (a : area) =
  List.length a.cuts + List.fold_left (fun n c -> n + cut_count c) 0 a.cuts

let rec pred_count (a : area) =
  List.length a.preds + List.fold_left (fun n c -> n + pred_count c) 0 a.cuts

(* ------------------------------------------------------------------ *)
(* Reading: beta graph → DRC (Boolean fragment).                        *)

let var_of_lig l = Printf.sprintf "x%d" l

let arg_to_term = function
  | Lig l -> F.Var (var_of_lig l)
  | Cst v -> F.Const v

(** Translate under the standard {e outermost} reading: each ligature is
    existentially quantified in its scope area.  Ligatures in [free] are
    left unquantified (open wires — the string-diagram extension). *)
let to_drc ?(free = []) (g : t) : F.t =
  if not (well_formed g) then
    raise (Beta_error "graph is not well formed (disconnected ligature)");
  let rec read path (a : area) : F.t =
    (* ligatures whose scope is exactly this area *)
    let here =
      List.filter
        (fun l -> scope_path g l = path && not (List.mem l free))
        (all_ligatures g)
    in
    let local =
      List.filter
        (fun l ->
          (* quantify only where the ligature actually reaches this area *)
          List.exists
            (fun occ ->
              List.length occ >= List.length path
              && common_prefix occ path = path)
            (occurrence_paths g l))
        here
    in
    let atoms =
      List.map
        (fun (p : pred_occ) ->
          match p.name with
          | "=" -> (
            match p.args with
            | [ x; y ] -> F.Cmp (F.Eq, arg_to_term x, arg_to_term y)
            | _ -> raise (Beta_error "identity needs exactly two hooks"))
          | _ -> F.Pred (p.name, List.map arg_to_term p.args))
        a.preds
    in
    let nots =
      List.mapi (fun i cut -> F.Not (read (path @ [ i ]) cut)) a.cuts
    in
    F.exists_many
      (List.map var_of_lig local)
      (F.conj (atoms @ nots))
  in
  read [] g

(* ------------------------------------------------------------------ *)
(* Writing: DRC sentence (∃/∧/¬/atoms) → beta graph.                   *)

exception Unsupported of string

(** Scribe a sentence onto the sheet.  [∨] and [→] are first rewritten to
    ∃/∧/¬ shapes (double-cut encodings), mirroring {!Eg_alpha.of_prop}.
    Free variables are rejected unless pre-assigned ligatures via [free]
    (the string-diagram open-wire extension). *)
let of_drc ?(free = []) (f : F.t) : t =
  let counter = ref (List.fold_left (fun a (_, l) -> max a l) 0 free) in
  let fresh () = incr counter; !counter in
  (* eliminate ∀, →, ∨ *)
  let rec prep (f : F.t) : F.t =
    match f with
    | F.True | F.False | F.Pred _ | F.Cmp _ -> f
    | F.Not g -> F.Not (prep g)
    | F.And (a, b) -> F.And (prep a, prep b)
    | F.Or (a, b) -> F.Not (F.And (F.Not (prep a), F.Not (prep b)))
    | F.Implies (a, b) -> F.Not (F.And (prep a, F.Not (prep b)))
    | F.Exists (x, g) -> F.Exists (x, prep g)
    | F.Forall (x, g) -> F.Not (F.Exists (x, F.Not (prep g)))
  in
  let term_arg env = function
    | F.Var x -> (
      match List.assoc_opt x env with
      | Some l -> Lig l
      | None -> raise (Unsupported ("free variable " ^ x ^ " in a sentence")))
    | F.Const v -> Cst v
  in
  (* build an area from a formula; ligatures for vars free in the subformula
     are recorded as passing lines so connectivity holds *)
  let rec build env (f : F.t) : area =
    let passing =
      List.filter_map (fun v -> List.assoc_opt v env) (F.free_var_list f)
    in
    let a = build_inner env f in
    { a with lines = List.sort_uniq compare (passing @ a.lines) }
  and build_inner env (f : F.t) : area =
    match f with
    | F.True -> empty
    | F.False -> { empty with cuts = [ empty ] }
    | F.Pred (p, ts) ->
      { empty with preds = [ { name = p; args = List.map (term_arg env) ts } ] }
    | F.Cmp (F.Eq, a, b) ->
      { empty with
        preds = [ { name = "="; args = [ term_arg env a; term_arg env b ] } ] }
    | F.Cmp (op, a, b) ->
      (* order predicates appear as named binary predicate occurrences *)
      { empty with
        preds =
          [ { name = F.cmp_name op; args = [ term_arg env a; term_arg env b ] } ] }
    | F.Not g -> { empty with cuts = [ build env g ] }
    | F.And (a, b) ->
      let aa = build env a and ab = build env b in
      { lines = List.sort_uniq compare (aa.lines @ ab.lines);
        preds = aa.preds @ ab.preds;
        cuts = aa.cuts @ ab.cuts }
    | F.Exists (x, g) ->
      let l = fresh () in
      let inner = build ((x, l) :: env) g in
      { inner with lines = List.sort_uniq compare (l :: inner.lines) }
    | F.Or _ | F.Implies _ | F.Forall _ -> assert false
  in
  let f = prep f in
  let unassigned =
    List.filter (fun v -> not (List.mem_assoc v free)) (F.free_var_list f)
  in
  if unassigned <> [] then
    raise
      (Unsupported
         "beta graphs denote sentences; free variables need string diagrams \
          (pass ~free)");
  let g = build free f in
  (* open wires must reach the sheet *)
  { g with lines = List.sort_uniq compare (List.map snd free @ g.lines) }

(* ------------------------------------------------------------------ *)
(* The ambiguity analysis (the tutorial's "imperfect mapping").         *)

(** Ligatures whose line crosses at least one cut boundary: for these the
    reading depends on identifying the {e outermost point} of the line —
    the interpretive burden Shin and others spent much work on.  A graph
    with no crossing ligature reads off unambiguously. *)
let crossing_ligatures (g : t) : lig list =
  List.filter
    (fun l ->
      let occs = occurrence_paths g l in
      let scope = scope_path g l in
      List.exists (fun occ -> List.length occ > List.length scope) occs)
    (all_ligatures g)

(* Paths to areas where [l] is attached to a predicate hook (line-only
   presence does not count). *)
let hook_paths (g : t) (l : lig) : int list list =
  let rec go path (a : area) acc =
    let here =
      List.exists
        (fun p -> List.exists (function Lig x -> x = l | Cst _ -> false) p.args)
        a.preds
    in
    let acc = if here then List.rev path :: acc else acc in
    List.fold_left
      (fun acc (i, cut) -> go (i :: path) cut acc)
      acc
      (List.mapi (fun i c -> (i, c)) a.cuts)
  in
  go [] g []

(** Alternative {e innermost} reading: a ligature is quantified at the
    least common ancestor of its {e predicate hooks} only — a bare line
    segment extending into an outer area is treated as semantically inert.
    Under this convention, extending a line out of a cut without attaching
    it to anything does {e not} widen its scope; for crossing ligatures the
    two readings can disagree, which is exactly the interpretive dispute
    the tutorial recounts. *)
let to_drc_innermost (g : t) : F.t =
  if not (well_formed g) then
    raise (Beta_error "graph is not well formed (disconnected ligature)");
  let hook_scope l =
    match hook_paths g l with
    | [] -> scope_path g l  (* pure line: existence assertion at its LCA *)
    | p :: ps -> List.fold_left common_prefix p ps
  in
  let rec read path (a : area) : F.t =
    let local =
      List.filter (fun l -> hook_scope l = path) (all_ligatures g)
    in
    let atoms =
      List.map
        (fun (p : pred_occ) ->
          match p.name with
          | "=" -> (
            match p.args with
            | [ x; y ] -> F.Cmp (F.Eq, arg_to_term x, arg_to_term y)
            | _ -> raise (Beta_error "identity needs exactly two hooks"))
          | _ -> F.Pred (p.name, List.map arg_to_term p.args))
        a.preds
    in
    let nots =
      List.mapi (fun i cut -> F.Not (read (path @ [ i ]) cut)) a.cuts
    in
    F.exists_many (List.map var_of_lig local) (F.conj (atoms @ nots))
  in
  read [] g

(* ------------------------------------------------------------------ *)
(* Scene rendering.                                                     *)

let to_scene (g : t) : Scene.t =
  let counter = ref 0 in
  let fresh prefix = incr counter; Printf.sprintf "%s%d" prefix !counter in
  let occ_marks : (lig * string) list ref = ref [] in
  let arg_label = function
    | Lig l -> Printf.sprintf "•%d" l
    | Cst v -> Diagres_data.Value.to_literal v
  in
  let rec area_marks (a : area) : Scene.mark list =
    let pred_marks =
      List.map
        (fun (p : pred_occ) ->
          let id = fresh "pred" in
          List.iter
            (function Lig l -> occ_marks := (l, id) :: !occ_marks | Cst _ -> ())
            p.args;
          Scene.leaf ~role:Scene.Predicate_node ~id
            (Printf.sprintf "%s(%s)" p.name
               (String.concat "," (List.map arg_label p.args))))
        a.preds
    in
    let line_marks =
      List.map
        (fun l ->
          let id = fresh "line" in
          occ_marks := (l, id) :: !occ_marks;
          Scene.leaf ~role:Scene.Annotation ~id (Printf.sprintf "—%d" l))
        (List.filter
           (fun l ->
             (* only draw explicit line marks where no hook shows the lig *)
             not
               (List.exists
                  (fun p ->
                    List.exists (function Lig x -> x = l | Cst _ -> false) p.args)
                  a.preds))
           a.lines)
    in
    let cut_marks =
      List.map
        (fun cut ->
          Scene.box ~role:Scene.Cut ~horizontal:true ~id:(fresh "cut")
            (area_marks cut))
        a.cuts
    in
    pred_marks @ line_marks @ cut_marks
  in
  let marks =
    [ Scene.box ~role:Scene.Group ~horizontal:true ~id:"sheet" (area_marks g) ]
  in
  (* chain the occurrences of each ligature with identity links *)
  let links =
    List.concat_map
      (fun l ->
        let occs = List.rev (List.filter_map
          (fun (l', id) -> if l' = l then Some id else None) !occ_marks)
        in
        let rec chain = function
          | a :: (b :: _ as rest) ->
            Scene.link ~role:Scene.Identity_line a b :: chain rest
          | _ -> []
        in
        chain occs)
      (all_ligatures g)
  in
  Scene.scene ~links marks

let to_svg g = Scene.to_svg (to_scene g)
let to_ascii g = Scene.to_ascii (to_scene g)
