(** SQLVis (Miedema & Fletcher, VL/HCC 2021) — and the syntax-sensitivity
    point the tutorial makes with it.

    SQLVis (like Visual SQL) draws the {e syntax} of a SQL statement: one
    box per SELECT block exactly as written, so two equivalent queries with
    different surface forms — [EXISTS] vs [IN], flattened vs nested — get
    {e different} pictures.  That is the opposite design choice from
    pattern-based formalisms (QueryVis, Relational Diagrams), and the
    concrete trade-off behind the tutorial's "correspondence principle":
    should equal patterns imply equal diagrams?

    {!of_sql} builds the syntax-faithful scene; {!syntax_signature} is a
    canonical string of the {e syntax} shape, so tests can demonstrate
    equal-semantics/different-signature pairs against equal RD patterns. *)

module A = Diagres_sql.Ast

type t = { statement : A.statement; scene : Scene.t }

let rec cond_marks prefix (c : A.cond) : Scene.mark list =
  match c with
  | A.True -> []
  | A.Cmp (op, x, y) ->
    [ Scene.leaf ~role:Scene.Attribute_row ~id:(prefix ^ "cmp")
        (Printf.sprintf "%s %s %s" (Diagres_sql.Pretty.expr x)
           (Diagres_logic.Fol.cmp_name op) (Diagres_sql.Pretty.expr y)) ]
  | A.And (a, b) ->
    cond_marks (prefix ^ "l") a @ cond_marks (prefix ^ "r") b
  | A.Or (a, b) ->
    [ Scene.box ~title:"OR" ~role:Scene.Group ~id:(prefix ^ "or")
        (cond_marks (prefix ^ "l") a @ cond_marks (prefix ^ "r") b) ]
  | A.Not inner ->
    [ Scene.box ~title:"NOT" ~role:Scene.Cut ~id:(prefix ^ "not")
        (cond_marks (prefix ^ "n") inner) ]
  | A.Exists q ->
    [ Scene.box ~title:"EXISTS" ~role:Scene.Group ~id:(prefix ^ "exists")
        [ query_mark (prefix ^ "q") q ] ]
  | A.In (e, q) ->
    [ Scene.box
        ~title:(Diagres_sql.Pretty.expr e ^ " IN")
        ~role:Scene.Group ~id:(prefix ^ "in")
        [ query_mark (prefix ^ "q") q ] ]

and query_mark prefix (q : A.query) : Scene.mark =
  let select_rows =
    List.mapi
      (fun i item ->
        Scene.leaf ~role:Scene.Attribute_row
          ~id:(Printf.sprintf "%ssel%d" prefix i)
          (match item with
          | A.Star -> "*"
          | A.Item (e, None) -> Diagres_sql.Pretty.expr e
          | A.Item (e, Some a) -> Diagres_sql.Pretty.expr e ^ " AS " ^ a))
      q.A.select
  in
  let from_rows =
    List.map
      (fun t ->
        Scene.leaf ~role:Scene.Attribute_row
          ~id:(prefix ^ "from:" ^ t.A.alias)
          (if t.A.alias = t.A.name then t.A.name
           else t.A.name ^ " " ^ t.A.alias))
      q.A.from
  in
  Scene.box ~title:"SELECT" ~role:Scene.Relation_box ~id:(prefix ^ "block")
    (select_rows
    @ [ Scene.box ~title:"FROM" ~role:Scene.Group ~id:(prefix ^ "from")
          from_rows ]
    @ cond_marks (prefix ^ "w") q.A.where)

let rec statement_marks prefix (st : A.statement) : Scene.mark list =
  match st with
  | A.Query q -> [ query_mark prefix q ]
  | A.Union (a, b) ->
    [ Scene.box ~title:"UNION" ~role:Scene.Group ~horizontal:true
        ~id:(prefix ^ "union")
        (statement_marks (prefix ^ "l") a @ statement_marks (prefix ^ "r") b) ]
  | A.Intersect (a, b) ->
    [ Scene.box ~title:"INTERSECT" ~role:Scene.Group ~horizontal:true
        ~id:(prefix ^ "inter")
        (statement_marks (prefix ^ "l") a @ statement_marks (prefix ^ "r") b) ]
  | A.Except (a, b) ->
    [ Scene.box ~title:"EXCEPT" ~role:Scene.Group ~horizontal:true
        ~id:(prefix ^ "except")
        (statement_marks (prefix ^ "l") a @ statement_marks (prefix ^ "r") b) ]

let of_sql (st : A.statement) : t =
  { statement = st; scene = Scene.scene (statement_marks "sv:" st) }

(** Canonical string of the syntactic shape: block structure, connective
    spelling (EXISTS vs IN vs NOT), table order — everything SQLVis
    renders.  Two queries get the same SQLVis picture iff their signatures
    match. *)
let syntax_signature (st : A.statement) : string =
  let rec cond (c : A.cond) =
    match c with
    | A.True -> "T"
    | A.Cmp (op, _, _) -> "c" ^ Diagres_logic.Fol.cmp_name op
    | A.And (a, b) -> "(" ^ cond a ^ "&" ^ cond b ^ ")"
    | A.Or (a, b) -> "(" ^ cond a ^ "|" ^ cond b ^ ")"
    | A.Not x -> "!" ^ cond x
    | A.Exists q -> "E[" ^ query q ^ "]"
    | A.In (_, q) -> "I[" ^ query q ^ "]"
  and query (q : A.query) =
    Printf.sprintf "S%d/F[%s]/%s"
      (List.length q.A.select)
      (String.concat "," (List.map (fun t -> t.A.name) q.A.from))
      (cond q.A.where)
  and stmt = function
    | A.Query q -> query q
    | A.Union (a, b) -> "(" ^ stmt a ^ " U " ^ stmt b ^ ")"
    | A.Intersect (a, b) -> "(" ^ stmt a ^ " ^ " ^ stmt b ^ ")"
    | A.Except (a, b) -> "(" ^ stmt a ^ " \\ " ^ stmt b ^ ")"
  in
  stmt st

let to_svg (v : t) = Scene.to_svg v.scene
let to_ascii (v : t) = Scene.to_ascii v.scene
let stats (v : t) = Scene.stats v.scene
