(** Peirce's alpha existential graphs: propositional logic drawn with
    juxtaposition (conjunction) and cuts (negation).

    A graph on the sheet of assertion is a multiset of items; each item is a
    propositional letter or a cut containing a subgraph.  The empty sheet is
    truth; juxtaposition is ∧; a cut is ¬.  The module implements the
    round-trip to {!Diagres_logic.Prop} and Peirce's five inference rules —
    erasure, insertion, iteration, deiteration, double cut — with the
    polarity side-conditions, whose soundness experiment E3 verifies by
    truth table. *)

type t = item list  (** juxtaposition on the sheet of assertion *)

and item =
  | Atom of string
  | Cut of t

let rec to_prop (g : t) : Diagres_logic.Prop.t =
  Diagres_logic.Prop.conj (List.map item_to_prop g)

and item_to_prop = function
  | Atom p -> Diagres_logic.Prop.Var p
  | Cut g -> Diagres_logic.Prop.Not (to_prop g)

(** Encode an arbitrary propositional formula.  The image uses only
    ∧/¬ shapes: [a ∨ b] becomes ¬(¬a ∧ ¬b) — two nested cuts —
    and [a → b] becomes the classic "scroll" ¬(a ∧ ¬b). *)
let rec of_prop (f : Diagres_logic.Prop.t) : t =
  let module P = Diagres_logic.Prop in
  match f with
  | P.True -> []
  | P.False -> [ Cut [] ]
  | P.Var p -> [ Atom p ]
  | P.Not g -> [ Cut (of_prop g) ]
  | P.And (a, b) -> of_prop a @ of_prop b
  | P.Or (a, b) -> [ Cut [ Cut (of_prop a); Cut (of_prop b) ] ]
  | P.Implies (a, b) -> [ Cut (of_prop a @ [ Cut (of_prop b) ]) ]
  | P.Iff (a, b) ->
    of_prop (P.And (P.Implies (a, b), P.Implies (b, a)))

let rec to_string (g : t) =
  String.concat " " (List.map item_to_string g)

and item_to_string = function
  | Atom p -> p
  | Cut g -> "(" ^ to_string g ^ ")"

let rec size (g : t) =
  List.fold_left
    (fun acc -> function Atom _ -> acc + 1 | Cut h -> acc + 1 + size h)
    0 g

let rec depth (g : t) =
  List.fold_left
    (fun acc -> function Atom _ -> max acc 1 | Cut h -> max acc (1 + depth h))
    0 g

(* ------------------------------------------------------------------ *)
(* Contexts: a position in a graph is addressed by a path of indices.   *)

type path = int list
(** [i₀ :: rest] descends into the i₀-th item (which must be a cut for a
    non-empty rest). *)

exception Bad_path of string

(** Polarity of the area addressed by [path]: even number of enclosing cuts
    = positive area.  The empty path is the sheet (positive). *)
let rec polarity (g : t) (path : path) =
  match path with
  | [] -> true
  | i :: rest -> (
    match List.nth_opt g i with
    | Some (Cut h) -> not (polarity h rest)
    | Some (Atom _) ->
      if rest = [] then invalid_arg "polarity: path ends at an atom"
      else raise (Bad_path "descending into an atom")
    | None -> raise (Bad_path "index out of range"))

(** Subgraph (area contents) at [path]. *)
let rec area (g : t) (path : path) : t =
  match path with
  | [] -> g
  | i :: rest -> (
    match List.nth_opt g i with
    | Some (Cut h) -> area h rest
    | Some (Atom _) -> raise (Bad_path "descending into an atom")
    | None -> raise (Bad_path "index out of range"))

(* Replace the area at [path] by the result of [f]. *)
let rec map_area (g : t) (path : path) (f : t -> t) : t =
  match path with
  | [] -> f g
  | i :: rest ->
    List.mapi
      (fun j item ->
        if j <> i then item
        else
          match item with
          | Cut h -> Cut (map_area h rest f)
          | Atom _ -> raise (Bad_path "descending into an atom"))
      g

(* ------------------------------------------------------------------ *)
(* The five rules.  Each returns the transformed graph or raises         *)
(* [Rule_violation] when a side-condition fails.                         *)

exception Rule_violation of string

(** 1. Erasure: any item may be deleted from a {e positive} area. *)
let erase (g : t) ~(path : path) ~(index : int) : t =
  if not (polarity g path) then
    raise (Rule_violation "erasure requires a positive (evenly-enclosed) area");
  map_area g path (fun items ->
      if index < 0 || index >= List.length items then
        raise (Bad_path "erase: index out of range");
      List.filteri (fun j _ -> j <> index) items)

(** 2. Insertion: any graph may be drawn in a {e negative} area. *)
let insert (g : t) ~(path : path) (new_item : item) : t =
  if polarity g path then
    raise (Rule_violation "insertion requires a negative (oddly-enclosed) area");
  map_area g path (fun items -> new_item :: items)

(** 3. Iteration: any item may be copied into the same area or any area
    nested inside it (same polarity not required). *)
let iterate (g : t) ~(from_path : path) ~(index : int) ~(to_path : path) : t =
  let is_prefix p q =
    let rec go = function
      | [], _ -> true
      | x :: ps, y :: qs -> x = y && go (ps, qs)
      | _ :: _, [] -> false
    in
    go (p, q)
  in
  if not (is_prefix from_path to_path) then
    raise
      (Rule_violation "iteration target must be nested inside the source area");
  let source = area g from_path in
  let item =
    match List.nth_opt source index with
    | Some it -> it
    | None -> raise (Bad_path "iterate: index out of range")
  in
  (* the copied item must not be an ancestor of the target area: descending
     through the copied cut itself is forbidden *)
  (if List.length to_path > List.length from_path then
     let next = List.nth to_path (List.length from_path) in
     if next = index then
       raise (Rule_violation "cannot iterate a cut into its own area"));
  map_area g to_path (fun items -> item :: items)

(** 4. Deiteration: the inverse — an item may be deleted if a copy of it
    exists in the same or an enclosing area. *)
let deiterate (g : t) ~(path : path) ~(index : int) : t =
  let target_area = area g path in
  let victim =
    match List.nth_opt target_area index with
    | Some it -> it
    | None -> raise (Bad_path "deiterate: index out of range")
  in
  (* look for a copy at any proper prefix area, or at the same area
     (different index) *)
  let rec ancestor_areas acc path =
    match path with
    | [] -> List.rev (acc)
    | _ :: _ ->
      let parent = List.filteri (fun i _ -> i < List.length path - 1) path in
      ancestor_areas (parent :: acc) parent
  in
  let candidate_paths = path :: ancestor_areas [] path in
  let found =
    List.exists
      (fun p ->
        let items = area g p in
        List.exists
          (fun (j, it) -> it = victim && not (p = path && j = index))
          (List.mapi (fun j it -> (j, it)) items))
      candidate_paths
  in
  if not found then
    raise
      (Rule_violation
         "deiteration needs a copy in the same or an enclosing area");
  map_area g path (fun items -> List.filteri (fun j _ -> j <> index) items)

(** 5a. Double-cut insertion: wrap any consecutive items (here: one item or
    the whole area) in two nested cuts, anywhere. *)
let double_cut_insert (g : t) ~(path : path) : t =
  map_area g path (fun items -> [ Cut [ Cut items ] ])

(** 5b. Double-cut erasure: remove a cut that immediately contains exactly
    one cut. *)
let double_cut_erase (g : t) ~(path : path) ~(index : int) : t =
  map_area g path (fun items ->
      List.concat
        (List.mapi
           (fun j item ->
             if j <> index then [ item ]
             else
               match item with
               | Cut [ Cut inner ] -> inner
               | _ ->
                 raise
                   (Rule_violation "double-cut erasure needs a cut holding \
                                    exactly one cut"))
           items))

(* ------------------------------------------------------------------ *)
(* Proofs.                                                              *)

type step =
  | Erase of path * int
  | Insert of path * item
  | Iterate of path * int * path
  | Deiterate of path * int
  | Double_cut_insert of path
  | Double_cut_erase of path * int

let apply (g : t) = function
  | Erase (path, index) -> erase g ~path ~index
  | Insert (path, item) -> insert g ~path item
  | Iterate (from_path, index, to_path) -> iterate g ~from_path ~index ~to_path
  | Deiterate (path, index) -> deiterate g ~path ~index
  | Double_cut_insert path -> double_cut_insert g ~path
  | Double_cut_erase (path, index) -> double_cut_erase g ~path ~index

(** Run a proof; returns every intermediate graph (head = premise). *)
let run_proof (g : t) (steps : step list) : t list =
  List.rev
    (List.fold_left (fun acc s -> apply (List.hd acc) s :: acc) [ g ] steps)

(** Each rule preserves or weakens truth: [premise ⊨ conclusion].  Checked
    by truth table; this is the soundness oracle for experiment E3. *)
let step_sound (before : t) (after : t) =
  Diagres_logic.Prop.entails (to_prop before) (to_prop after)

(* ------------------------------------------------------------------ *)
(* Scene rendering: nested rounded cuts.                                *)

let to_scene (g : t) : Scene.t =
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let rec item_to_mark = function
    | Atom p -> Scene.leaf ~role:Scene.Predicate_node ~id:(fresh "atom") p
    | Cut items ->
      Scene.box ~role:Scene.Cut ~horizontal:true ~id:(fresh "cut")
        (List.map item_to_mark items)
  in
  Scene.scene
    ~caption:("alpha graph: " ^ Diagres_logic.Prop.to_string (to_prop g))
    [ Scene.box ~role:Scene.Group ~horizontal:true ~id:"sheet"
        (List.map item_to_mark g) ]

let to_svg g = Scene.to_svg (to_scene g)
let to_ascii g = Scene.to_ascii (to_scene g)
