(** Frege's Begriffsschrift (1879): the first complete notation for
    first-order logic — and a {e two-dimensional} one.

    The tutorial lists it among the early diagrammatic systems it "may or
    may not cover"; we cover it.  Frege's primitives are exactly a
    functionally complete FOL basis:

    - the {e content stroke} ─ A (assertion of content A);
    - the {e condition stroke}: B drawn below-and-left of A on a forked
      vertical means B → A (note: condition {e below}, consequent above);
    - the {e negation stroke}: a small vertical tick on the content stroke;
    - the {e concavity} (generality): a dip in the stroke holding a German
      letter, meaning ∀.

    Everything else (∧, ∨, ∃) is derived, which is why translating into
    Begriffsschrift first rewrites formulas to the {b →/¬/∀} basis.  The
    renderer produces the classic 2-D ladder in ASCII. *)

module F = Diagres_logic.Fol

(** Begriffsschrift terms: the →/¬/∀ fragment plus atoms. *)
type t =
  | Atom of string * F.term list
  | Cmp of Diagres_logic.Fol.cmp * F.term * F.term
  | Neg of t
  | Cond of t * t      (** [Cond (b, a)] is  b → a  (condition b) *)
  | All of string * t  (** generality *)

exception Unsupported of string

(** Rewrite arbitrary FOL into the Frege basis:
    A∧B = ¬(A→¬B);  A∨B = ¬A→B;  ∃x.A = ¬∀x.¬A. *)
let rec of_fol (f : F.t) : t =
  match f with
  | F.True -> raise (Unsupported "Begriffsschrift has no ⊤ constant; use a tautology")
  | F.False -> raise (Unsupported "Begriffsschrift has no ⊥ constant; use a contradiction")
  | F.Pred (p, ts) -> Atom (p, ts)
  | F.Cmp (op, a, b) -> Cmp (op, a, b)
  | F.Not g -> Neg (of_fol g)
  | F.Implies (a, b) -> Cond (of_fol a, of_fol b)
  | F.And (a, b) -> Neg (Cond (of_fol a, Neg (of_fol b)))
  | F.Or (a, b) -> Cond (Neg (of_fol a), of_fol b)
  | F.Forall (x, g) -> All (x, of_fol g)
  | F.Exists (x, g) -> Neg (All (x, Neg (of_fol g)))

let rec to_fol : t -> F.t = function
  | Atom (p, ts) -> F.Pred (p, ts)
  | Cmp (op, a, b) -> F.Cmp (op, a, b)
  | Neg a -> F.Not (to_fol a)
  | Cond (b, a) -> F.Implies (to_fol b, to_fol a)
  | All (x, a) -> F.Forall (x, to_fol a)

(** Number of condition strokes, negation strokes, and concavities — the
    "ink cost" of the 2-D notation, compared across formalisms in E6. *)
let rec strokes = function
  | Atom _ | Cmp _ -> (0, 0, 0)
  | Neg a ->
    let c, n, g = strokes a in
    (c, n + 1, g)
  | Cond (b, a) ->
    let cb, nb, gb = strokes b and ca, na, ga = strokes a in
    (cb + ca + 1, nb + na, gb + ga)
  | All (_, a) ->
    let c, n, g = strokes a in
    (c, n, g + 1)

(* ------------------------------------------------------------------ *)
(* Rendering: the 2-D ladder.

   A judgment renders as lines growing downward; a condition B of A hangs
   from a fork:

       |─────── A
       |
       └─────── B

   Negation is a [¬] tick on the stroke, generality an [∀x] bowl. *)

let term_to_string = function
  | F.Var x -> x
  | F.Const v -> Diagres_data.Value.to_literal v

let atom_text p ts =
  Printf.sprintf "%s(%s)" p (String.concat ", " (List.map term_to_string ts))

(* Render a term as a list of lines; the first line is the main stroke. *)
let rec render (t : t) : string list =
  match t with
  | Atom (p, ts) -> [ "── " ^ atom_text p ts ]
  | Cmp (op, a, b) ->
    [ Printf.sprintf "── %s %s %s" (term_to_string a)
        (Diagres_logic.Fol.cmp_name op) (term_to_string b) ]
  | Neg a -> (
    match render a with
    | first :: rest -> ("─┬" ^ first) :: List.map (fun l -> "  " ^ l) rest
    | [] -> [ "─┬" ])
  | All (x, a) -> (
    match render a with
    | first :: rest ->
      (Printf.sprintf "─∪%s─%s" x first)
      :: List.map (fun l -> String.make (3 + String.length x) ' ' ^ l) rest
    | [] -> [])
  | Cond (b, a) ->
    (* consequent on top, condition hanging below the fork *)
    let top = render a in
    let bottom = render b in
    let top_lines =
      match top with
      | first :: rest -> ("─┤" ^ first) :: List.map (fun l -> " │" ^ l) rest
      | [] -> []
    in
    let bottom_lines =
      match bottom with
      | first :: rest -> (" └" ^ first) :: List.map (fun l -> "  " ^ l) rest
      | [] -> []
    in
    top_lines @ bottom_lines

(** Render with the judgment stroke [⊢]. *)
let to_ascii (t : t) : string =
  match render t with
  | first :: rest ->
    String.concat "\n"
      (("⊢" ^ first) :: List.map (fun l -> " " ^ l) rest)
    ^ "\n"
  | [] -> "⊢\n"

let of_fol_ascii f = to_ascii (of_fol f)
