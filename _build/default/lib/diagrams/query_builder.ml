(** A model of the commercial "interactive query builder" (tutorial Part 5:
    dbForge, SSMS, Access, pgAdmin3, …): a schema diagram on which the user
    ticks tables and attributes, plus a separate condition grid.

    The tutorial's finding is {e negative}: these interfaces cover
    conjunctive queries with simple filters, but have {b no single visual
    element} for NOT EXISTS / FOR ALL, no correlated subqueries in one
    diagram, and limited disjunction.  This module makes the finding
    checkable — {!expressible} decides whether a TRC query fits the
    builder's language, and the test suite verifies the survey matrix rows
    with it (experiment E10). *)

module T = Diagres_rc.Trc

type condition = {
  lhs : string * string;          (** alias.attribute *)
  op : Diagres_logic.Fol.cmp;
  rhs : rhs;
}

and rhs = Column of string * string | Literal of Diagres_data.Value.t

type t = {
  tables : (string * string) list;  (** alias → relation, the ticked tables *)
  output : (string * string) list;  (** ticked output attributes *)
  conditions : condition list;      (** the condition grid (conjunctive) *)
  or_groups : condition list list;  (** dbForge-style OR lines (flat DNF) *)
}

(** Why a query does not fit; mirrors the tutorial's per-tool findings. *)
type obstacle =
  | Negation            (** any ¬/∄/∀ — no visual element exists *)
  | Nested_quantifier   (** correlated subquery / nested EXISTS *)
  | Deep_disjunction    (** ∨ not expressible as a flat OR-line grid *)

let obstacle_to_string = function
  | Negation -> "negation / universal quantification"
  | Nested_quantifier -> "nested (correlated) subquery"
  | Deep_disjunction -> "non-flat disjunction"

(** Analyze a TRC query.  [Ok builder] when the query is a conjunctive
    (optionally flat-OR) select-project-join; [Error obstacles]
    otherwise. *)
let of_trc (q : T.query) : (t, obstacle list) result =
  let obstacles = ref [] in
  let push o = if not (List.mem o !obstacles) then obstacles := o :: !obstacles in
  let conditions = ref [] in
  let cond_of op a b =
    match (a, b) with
    | T.Field (v, x), T.Field (w, y) ->
      Some { lhs = (v, x); op; rhs = Column (w, y) }
    | T.Field (v, x), T.Const c -> Some { lhs = (v, x); op; rhs = Literal c }
    | T.Const c, T.Field (v, x) ->
      Some { lhs = (v, x); op = Diagres_logic.Fol.cmp_flip op; rhs = Literal c }
    | T.Const _, T.Const _ -> None
  in
  let tables = ref q.T.ranges in
  (* flat walk; anything beyond ∧/flattened-∃/cmp is an obstacle *)
  let rec walk = function
    | T.True -> ()
    | T.False -> push Negation
    | T.Cmp (op, a, b) -> (
      match cond_of op a b with
      | Some c -> conditions := c :: !conditions
      | None -> ())
    | T.And (a, b) ->
      walk a;
      walk b
    | T.Exists (rs, f) ->
      (* an uncorrelated existential is just more tables in the grid; the
         builders do support that (it is a plain join) *)
      tables := !tables @ rs;
      walk f
    | T.Not _ -> push Negation
    | T.Forall _ -> push Negation
    | T.Implies _ -> push Negation
    | T.Or (a, b) ->
      (* flat OR over conditions is a dbForge "or line"; anything with
         structure underneath is not *)
      let flat = function
        | T.Cmp _ -> true
        | _ -> false
      in
      if flat a && flat b then begin
        (match (a, b) with
        | T.Cmp (op1, x1, y1), T.Cmp (op2, x2, y2) ->
          let c1 = cond_of op1 x1 y1 and c2 = cond_of op2 x2 y2 in
          (match (c1, c2) with
          | Some c1, Some c2 -> conditions := c1 :: c2 :: !conditions
          | _ -> ())
        | _ -> ());
        push Deep_disjunction
        (* …even the flat case splits the grid: record it as a soft
           obstacle so the matrix shows "partial" *)
      end
      else push Deep_disjunction
  in
  walk q.T.body;
  (* nested quantification = an Exists under a Not (already Negation) or a
     re-used alias; detect re-declared variables as correlation depth *)
  let declared = List.map fst !tables @ T.declared_vars q.T.body in
  let rec dup = function
    | [] -> ()
    | x :: rest -> if List.mem x rest then push Nested_quantifier else dup rest
  in
  dup declared;
  if !obstacles <> [] then Error (List.rev !obstacles)
  else
    Ok
      {
        tables = !tables;
        output =
          List.filter_map
            (function T.Field (v, a) -> Some (v, a) | T.Const _ -> None)
            q.T.head;
        conditions = List.rev !conditions;
        or_groups = [];
      }

let expressible q = match of_trc q with Ok _ -> true | Error _ -> false

let obstacles q = match of_trc q with Ok _ -> [] | Error os -> os

(* ------------------------------------------------------------------ *)
(* Rendering: ticked schema diagram + condition grid.                   *)

let to_ascii (b : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "tables:  ";
  Buffer.add_string buf
    (String.concat ", "
       (List.map (fun (v, r) -> Printf.sprintf "%s AS %s" r v) b.tables));
  Buffer.add_string buf "\noutput:  ";
  Buffer.add_string buf
    (String.concat ", " (List.map (fun (v, a) -> v ^ "." ^ a) b.output));
  Buffer.add_string buf "\nconditions:\n";
  List.iter
    (fun c ->
      let v, a = c.lhs in
      let rhs =
        match c.rhs with
        | Column (w, y) -> w ^ "." ^ y
        | Literal l -> Diagres_data.Value.to_literal l
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s.%s %s %s\n" v a
           (Diagres_logic.Fol.cmp_name c.op)
           rhs))
    b.conditions;
  Buffer.contents buf
