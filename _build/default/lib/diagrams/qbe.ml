(** Query-By-Example (Zloof 1977): queries written {e into} table skeletons
    with example elements.

    A QBE program is a sequence of steps; each step fills skeletons of base
    (or previously defined temporary) tables.  Example elements ([_X]) link
    columns, [P.] marks printed columns, a [¬] row asserts non-membership,
    and a condition box holds predicates that do not fit a cell.  Division
    ("all red boats") famously needs {e two} steps and a temporary relation
    — the same dataflow pattern as the Datalog double-negation program,
    which is why {!of_datalog} is the canonical constructor here (tutorial
    Part 5: "is QBE really more visual than Datalog?"). *)

type entry =
  | Blank
  | Example of string                       (** [_X] *)
  | Print of string                         (** [P._X] *)
  | Const of Diagres_data.Value.t           (** literal in a cell *)

type row = { negated : bool; entries : entry list }

type skeleton = {
  table : string;
  attrs : string list;
  rows : row list;
}

type step = {
  skeletons : skeleton list;
  result : skeleton option;   (** temporary-relation skeleton with P rows *)
  condition_box : string list;
}

type t = step list

exception Qbe_error of string

(* ------------------------------------------------------------------ *)
(* Construction from Datalog: one step per stratum-ordered rule.        *)

let example_name v = "_" ^ String.uppercase_ascii v

let of_rule schemas (r : Diagres_datalog.Ast.rule) : step =
  let module A = Diagres_datalog.Ast in
  let attrs_of pred n =
    match List.assoc_opt pred schemas with
    | Some s -> Diagres_data.Schema.names s
    | None -> List.init n (fun i -> Printf.sprintf "x%d" (i + 1))
  in
  let entry_of_term = function
    | A.Var v -> Example (example_name v)
    | A.Const c -> Const c
  in
  let atom_row negated (a : A.atom) : string * row =
    ( a.A.pred,
      { negated; entries = List.map entry_of_term a.A.args } )
  in
  let rows =
    List.filter_map
      (function
        | A.Pos a -> Some (atom_row false a)
        | A.Neg a -> Some (atom_row true a)
        | A.Cond _ -> None)
      r.A.body
  in
  let conditions =
    List.filter_map
      (function
        | A.Cond (op, x, y) ->
          let t = function
            | A.Var v -> example_name v
            | A.Const c -> Diagres_data.Value.to_literal c
          in
          Some
            (Printf.sprintf "%s %s %s" (t x)
               (Diagres_logic.Fol.cmp_name op) (t y))
        | _ -> None)
      r.A.body
  in
  let skeletons =
    (* group rows by table *)
    let tables = List.sort_uniq compare (List.map fst rows) in
    List.map
      (fun table ->
        let trows = List.filter_map (fun (t, row) -> if t = table then Some row else None) rows in
        let arity = List.length (List.hd trows).entries in
        { table; attrs = attrs_of table arity; rows = trows })
      tables
  in
  let result =
    let head = r.A.head in
    Some
      { table = head.A.pred;
        attrs = attrs_of head.A.pred (List.length head.A.args);
        rows =
          [ { negated = false;
              entries =
                List.map
                  (function
                    | A.Var v -> Print (example_name v)
                    | A.Const c -> Const c)
                  head.A.args } ] }
  in
  { skeletons; result; condition_box = conditions }

(** Build the full QBE program for [goal]: rules in evaluation order, one
    step each, with temporary relations linking steps. *)
let of_datalog schemas (p : Diagres_datalog.Ast.program) ~goal : t =
  ignore (Diagres_datalog.Check.check_program schemas p);
  let order = Diagres_datalog.Check.eval_order p in
  if not (List.mem goal order) then
    raise (Qbe_error ("goal not defined: " ^ goal));
  (* only predicates the goal (transitively) needs *)
  let needed = Hashtbl.create 8 in
  let rec mark pred =
    if not (Hashtbl.mem needed pred) then begin
      Hashtbl.add needed pred ();
      List.iter
        (fun r -> List.iter mark (Diagres_datalog.Ast.body_preds r))
        (Diagres_datalog.Ast.rules_for p pred)
    end
  in
  mark goal;
  List.concat_map
    (fun pred ->
      if Hashtbl.mem needed pred then
        List.map (of_rule schemas) (Diagres_datalog.Ast.rules_for p pred)
      else [])
    order

(** Number of steps and of temporary relations — the E5 statistics. *)
let stats (q : t) =
  let steps = List.length q in
  let temps =
    List.length
      (List.sort_uniq compare
         (List.filter_map (fun s -> Option.map (fun r -> r.table) s.result) q))
  in
  let rows =
    List.fold_left
      (fun n s ->
        n
        + List.fold_left (fun m sk -> m + List.length sk.rows) 0 s.skeletons)
      0 q
  in
  (steps, temps, rows)

(* ------------------------------------------------------------------ *)
(* ASCII rendering: the classic boxed skeleton look.                    *)

let entry_to_string = function
  | Blank -> ""
  | Example e -> e
  | Print e -> "P." ^ e
  | Const c -> Diagres_data.Value.to_literal c

let skeleton_to_ascii (sk : skeleton) : string =
  let header = sk.table :: sk.attrs in
  let body =
    List.map
      (fun r ->
        (if r.negated then "¬" else "")
        :: List.map entry_to_string r.entries)
      sk.rows
  in
  let rows = header :: body in
  let ncols = List.length header in
  let width c =
    List.fold_left
      (fun w row ->
        match List.nth_opt row c with
        | Some s -> max w (String.length s)
        | None -> w)
      1 rows
  in
  let widths = List.init ncols width in
  let line =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let render_row row =
    "|"
    ^ String.concat "|"
        (List.mapi
           (fun c s ->
             let w = List.nth widths c in
             " " ^ s ^ String.make (w - String.length s + 1) ' ')
           row)
    ^ "|"
  in
  String.concat "\n"
    (line :: render_row header :: line
     :: List.map render_row body
    @ [ line ])

let step_to_ascii i (s : step) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "-- step %d --\n" (i + 1));
  List.iter
    (fun sk ->
      Buffer.add_string buf (skeleton_to_ascii sk);
      Buffer.add_char buf '\n')
    s.skeletons;
  (match s.result with
  | Some sk ->
    Buffer.add_string buf "result:\n";
    Buffer.add_string buf (skeleton_to_ascii sk);
    Buffer.add_char buf '\n'
  | None -> ());
  if s.condition_box <> [] then begin
    Buffer.add_string buf "CONDITIONS\n";
    List.iter
      (fun c -> Buffer.add_string buf ("  " ^ c ^ "\n"))
      s.condition_box
  end;
  Buffer.contents buf

let to_ascii (q : t) : string =
  String.concat "\n" (List.mapi step_to_ascii q)

(** Scene rendering (for SVG): each skeleton is a relation box whose rows
    are attribute leaves; example-element coreference becomes join links. *)
let to_scene (q : t) : Scene.t =
  let counter = ref 0 in
  let fresh p = incr counter; Printf.sprintf "%s%d" p !counter in
  let occ : (string * string) list ref = ref [] in
  let skeleton_marks (sk : skeleton) =
    let rows =
      List.concat_map
        (fun r ->
          List.mapi
            (fun c e ->
              let id = fresh "cell" in
              (match e with
              | Example x | Print x -> occ := (x, id) :: !occ
              | _ -> ());
              Scene.leaf ~role:Scene.Attribute_row ~id
                (Printf.sprintf "%s%s: %s"
                   (if r.negated then "¬ " else "")
                   (List.nth sk.attrs c) (entry_to_string e)))
            r.entries)
        sk.rows
    in
    Scene.box ~role:Scene.Relation_box ~title:sk.table ~id:(fresh "table") rows
  in
  let marks =
    List.mapi
      (fun i s ->
        Scene.box ~role:Scene.Group ~horizontal:true
          ~title:(Printf.sprintf "step %d" (i + 1))
          ~id:(fresh "step")
          (List.map skeleton_marks s.skeletons
          @ (match s.result with Some sk -> [ skeleton_marks sk ] | None -> [])))
      q
  in
  let links =
    let by_example = Hashtbl.create 8 in
    List.iter
      (fun (x, id) ->
        Hashtbl.replace by_example x
          (id :: (try Hashtbl.find by_example x with Not_found -> [])))
      !occ;
    Hashtbl.fold
      (fun _ ids acc ->
        let rec chain = function
          | a :: (b :: _ as rest) -> Scene.link ~role:Scene.Join_edge a b :: chain rest
          | _ -> []
        in
        chain ids @ acc)
      by_example []
  in
  Scene.scene ~links marks

let to_svg q = Scene.to_svg (to_scene q)
