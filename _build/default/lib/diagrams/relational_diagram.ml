(** Relational Diagrams (Gatterbauer & Dunne, SIGMOD 2024): TRC drawn with
    {e nested negated bounding boxes}.

    Each tuple variable is a relation box showing the attributes the query
    uses; equality and comparison predicates are lines between attribute
    rows; negation is a dashed bounding box around the sub-pattern — the
    Peirce cut transplanted to the named perspective.  Because quantifier
    scope is carried by {e nesting} rather than by line topology or reading
    arrows, the formalism avoids both the beta-graph scope ambiguity and
    QueryVis's extra arrow alphabet.  Disjunction is not drawable in one
    panel: a query becomes one panel per union-free form. *)

module T = Diagres_rc.Trc

type panel = {
  query : T.query;
  scene : Scene.t;
}

type t = {
  panels : panel list;  (** implicit union of panels *)
}

exception Not_drawable = Trc_scene.Disjunction

let result_box_id = "result"

let scene_of_query (q : T.query) : Scene.t =
  let tree = Trc_scene.of_query q in
  let used = Trc_scene.used_attrs q in
  let all_links, selections = Trc_scene.all_links_selections tree in
  let counter = ref 0 in
  let rec level_marks ~top (lvl : Trc_scene.level) : Scene.mark list =
    let range_marks =
      List.map (Trc_scene.range_mark ~used ~selections) lvl.Trc_scene.ranges
    in
    let neg_marks =
      List.map
        (fun sub ->
          incr counter;
          (* bind the id before recursing: children bump the counter *)
          let id = Printf.sprintf "neg%d" !counter in
          Scene.box ~role:Scene.Cut ~horizontal:true ~id
            (level_marks ~top:false sub))
        lvl.Trc_scene.negs
    in
    ignore top;
    range_marks @ neg_marks
  in
  let result_mark =
    if q.T.head = [] then []
    else
      [ Scene.box ~role:Scene.Group ~title:"result" ~id:result_box_id
          (List.mapi
             (fun i t ->
               Scene.leaf ~role:Scene.Attribute_row
                 ~id:(Printf.sprintf "out%d" i)
                 (T.term_to_string t))
             q.T.head) ]
  in
  let output_links =
    List.concat
      (List.mapi
         (fun i t ->
           match t with
           | T.Field (v, a) ->
             [ Scene.link ~role:Scene.Join_edge
                 (Trc_scene.attr_row_id v a)
                 (Printf.sprintf "out%d" i) ]
           | T.Const _ -> [])
         q.T.head)
  in
  let marks = level_marks ~top:true tree @ result_mark in
  Scene.scene
    ~links:(Trc_scene.comparison_links all_links @ output_links)
    ~caption:(T.to_string q) marks

let of_trc (q : T.query) : t =
  { panels = [ { query = q; scene = scene_of_query q } ] }

(** From TRC with possible disjunction / from RA with unions: one panel per
    union-free form. *)
let of_trc_queries (qs : T.query list) : t =
  { panels = List.map (fun q -> { query = q; scene = scene_of_query q }) qs }

let of_ra schemas (e : Diagres_ra.Ast.t) : t =
  of_trc_queries (Diagres_rc.Translate.ra_to_trc schemas e)

let of_sql schemas (st : Diagres_sql.Ast.statement) : t =
  of_trc_queries (Diagres_sql.To_trc.statement schemas st)

let panel_count (d : t) = List.length d.panels

(** Inverse direction (the "unambiguous readability" property the paper
    proves): recover the TRC query of each panel.  We keep the source
    query, so the round trip is definitionally exact; re-deriving it from
    the scene is exercised in tests via {!Scene.stats} invariants. *)
let to_trc (d : t) : T.query list = List.map (fun p -> p.query) d.panels

let to_svg (d : t) : string list = List.map (fun p -> Scene.to_svg p.scene) d.panels

let to_ascii (d : t) : string =
  String.concat "\n== UNION ==\n\n"
    (List.map (fun p -> Scene.to_ascii p.scene) d.panels)

(** Diagram complexity statistics for experiment E6. *)
let stats (d : t) =
  List.map (fun p -> Scene.stats p.scene) d.panels
