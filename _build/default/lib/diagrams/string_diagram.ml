(** String diagrams for first-order logic (Haydon & Sobociński 2020;
    Bonchi et al. 2024): Peirce's beta graphs extended with {e free}
    variables.

    Both free and bound variables are wires; a bound wire terminates in a
    dot (the existential witness), a free wire runs to the diagram boundary
    and names an output.  This module models a string diagram as a beta
    graph plus the assignment of boundary wires, so a {e query} — not just
    a Boolean statement — becomes drawable; the round trip to DRC queries
    is exact. *)

module F = Diagres_logic.Fol

type t = {
  boundary : (string * Eg_beta.lig) list;
      (** output wires, in head order: variable name → ligature *)
  graph : Eg_beta.t;
}

exception String_error of string

(** Build from a DRC query: free variables become boundary wires. *)
let of_drc_query (q : Diagres_rc.Drc.query) : t =
  let boundary = List.mapi (fun i v -> (v, i + 1)) q.Diagres_rc.Drc.head in
  let graph = Eg_beta.of_drc ~free:boundary q.Diagres_rc.Drc.body in
  { boundary; graph }

(** Read back the DRC query. *)
let to_drc_query (d : t) : Diagres_rc.Drc.query =
  let body = Eg_beta.to_drc ~free:(List.map snd d.boundary) d.graph in
  (* to_drc names ligature l as "x<l>": rename boundary wires back *)
  let body =
    List.fold_left
      (fun acc (v, l) ->
        if Eg_beta.var_of_lig l = v then acc
        else F.subst (Eg_beta.var_of_lig l) (F.Var v) acc)
      body d.boundary
  in
  { Diagres_rc.Drc.head = List.map fst d.boundary; body }

let open_wire_count (d : t) = List.length d.boundary

let bound_wire_count (d : t) =
  List.length (Eg_beta.all_ligatures d.graph) - open_wire_count d

(** Scene: the beta-graph scene plus explicit boundary markers for open
    wires (the visual difference between the two formalisms). *)
let to_scene (d : t) : Scene.t =
  let base = Eg_beta.to_scene d.graph in
  let boundary_marks =
    List.map
      (fun (v, l) ->
        Scene.leaf ~role:Scene.Constant_node
          ~id:(Printf.sprintf "boundary:%s" v)
          (Printf.sprintf "%s ◦—%d" v l))
      d.boundary
  in
  let boundary_links =
    (* attach each boundary marker to one occurrence of its ligature by
       going through the shared scene: occurrences carry ids generated
       inside Eg_beta.to_scene, so link via a fresh pass over marks whose
       label mentions the ligature *)
    List.filter_map
      (fun (v, l) ->
        let needle_hook = Printf.sprintf "•%d" l in
        let needle_line = Printf.sprintf "—%d" l in
        let target =
          List.find_map
            (fun m ->
              match m with
              | Scene.Leaf leaf ->
                let has sub =
                  let ls = leaf.label and n = String.length sub in
                  let rec scan i =
                    i + n <= String.length ls
                    && (String.sub ls i n = sub || scan (i + 1))
                  in
                  scan 0
                in
                if has needle_hook || has needle_line then Some (Scene.mark_id m)
                else None
              | Scene.Box _ -> None)
            (Scene.all_marks base)
        in
        Option.map
          (fun tgt ->
            Scene.link ~role:Scene.Identity_line
              (Printf.sprintf "boundary:%s" v) tgt)
          target)
      d.boundary
  in
  { base with
    Scene.marks = boundary_marks @ base.Scene.marks;
    links = boundary_links @ base.Scene.links }

let to_svg d = Scene.to_svg (to_scene d)
let to_ascii d = Scene.to_ascii (to_scene d)
