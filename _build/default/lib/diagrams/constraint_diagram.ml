(** Constraint diagrams (Kent 1997; Gil, Howse & Kent 1999): Euler/Venn
    contours extended with {e spiders} (existential elements), shading, and
    {e universal spiders} with arrows — "a step beyond UML" for expressing
    invariants.

    We implement the monadic-plus-binary fragment the tutorial discusses:

    - contours = unary predicates (sets), zones as in {!Venn};
    - an {e existential spider} asserts an element in one of its zones
      (a ⊗-sequence with identity: two spiders denote distinct elements
      when a {e distinctness} constraint links them);
    - a {e universal spider} ranges over every element of its habitat;
    - an {e arrow} labelled with a binary relation from spider [s] to a
      contour/spider target asserts the relational image: every/some
      element denoted by [s] relates to the target.

    The reading-order problem — which spider quantifies first — is exactly
    what Fish & Howse's "default reading" resolves and what QueryVis
    borrows its arrows for (tutorial Part 5); {!reading_orders} returns all
    linearizations and {!ambiguous} checks whether they disagree
    semantically. *)

module F = Diagres_logic.Fol

type spider_kind = Existential | Universal

type spider = {
  sid : string;            (** unique name; doubles as FOL variable *)
  kind : spider_kind;
  habitat : Venn.zone list;  (** the zones the spider may live in *)
}

type arrow = {
  relation : string;       (** binary predicate name *)
  src : string;            (** spider id *)
  dst_contour : string;    (** target contour: image is inside this set *)
}

type t = {
  sets : string list;
  shaded : Venn.zone list;
  spiders : spider list;
  distinct : (string * string) list;  (** explicit distinctness constraints *)
  arrows : arrow list;
}

exception Constraint_error of string

let create sets = { sets; shaded = []; spiders = []; distinct = []; arrows = [] }

let venn_of d : Venn.t =
  let v = Venn.create d.sets in
  Venn.shade v d.shaded

let add_spider d ?(kind = Existential) sid habitat =
  if List.exists (fun s -> s.sid = sid) d.spiders then
    raise (Constraint_error ("duplicate spider " ^ sid));
  if habitat = [] then raise (Constraint_error "spider needs a habitat");
  { d with spiders = { sid; kind; habitat } :: d.spiders }

let add_shading d zones = { d with shaded = zones @ d.shaded }

let add_distinct d a b = { d with distinct = (a, b) :: d.distinct }

let add_arrow d ~relation ~src ~dst_contour =
  if not (List.exists (fun s -> s.sid = src) d.spiders) then
    raise (Constraint_error ("arrow from unknown spider " ^ src));
  if not (List.mem dst_contour d.sets) then
    raise (Constraint_error ("arrow to unknown contour " ^ dst_contour));
  { d with arrows = { relation; src; dst_contour } :: d.arrows }

let spider d sid =
  match List.find_opt (fun s -> s.sid = sid) d.spiders with
  | Some s -> s
  | None -> raise (Constraint_error ("unknown spider " ^ sid))

(* ------------------------------------------------------------------ *)
(* Semantics: a diagram denotes an FOL sentence, given a quantification
   order over the spiders.                                              *)

let zone_formula d x z = Venn.zone_formula (venn_of d) x z

let habitat_formula d x (s : spider) =
  F.disj (List.map (zone_formula d x) s.habitat)

(* arrows sourced at spider [s]: ∃y (target(y) ∧ R(x, y)) *)
let arrow_formulas d (s : spider) =
  List.filter_map
    (fun a ->
      if a.src <> s.sid then None
      else
        Some
          (F.Exists
             ( "img_" ^ s.sid ^ "_" ^ a.relation,
               F.And
                 ( F.Pred (a.dst_contour, [ F.Var ("img_" ^ s.sid ^ "_" ^ a.relation) ]),
                   F.Pred (a.relation, [ F.Var s.sid; F.Var ("img_" ^ s.sid ^ "_" ^ a.relation) ]) ) )))
    d.arrows

let distinctness_formulas d order_prefix (s : spider) =
  List.filter_map
    (fun (a, b) ->
      let other = if a = s.sid then Some b else if b = s.sid then Some a else None in
      match other with
      | Some o when List.mem o order_prefix ->
        Some (F.Cmp (F.Neq, F.Var s.sid, F.Var o))
      | _ -> None)
    d.distinct

(** The sentence under a given spider order (outermost first). *)
let to_fol ?order (d : t) : F.t =
  let order =
    match order with
    | Some o -> o
    | None -> List.rev_map (fun s -> s.sid) d.spiders
  in
  let shading =
    List.map
      (fun z -> F.Not (F.Exists ("e", zone_formula d "e" z)))
      d.shaded
  in
  let rec quantify prefix = function
    | [] -> F.conj (match shading with [] -> [ F.True ] | s -> s)
    | sid :: rest ->
      let s = spider d sid in
      let body =
        F.conj
          ((habitat_formula d s.sid s :: distinctness_formulas d prefix s)
          @ arrow_formulas d s)
      in
      let inner = quantify (sid :: prefix) rest in
      (match s.kind with
      | Existential -> F.Exists (s.sid, F.And (body, inner))
      | Universal ->
        F.Forall (s.sid, F.Implies (habitat_formula d s.sid s,
                                    F.conj (distinctness_formulas d prefix s
                                            @ arrow_formulas d s @ [ inner ]))))
  in
  quantify [] order

(* ------------------------------------------------------------------ *)
(* Reading orders (Fish & Howse).                                       *)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        List.map
          (fun rest -> x :: rest)
          (permutations (List.filter (( <> ) x) xs)))
      xs

(** All spider linearizations. *)
let reading_orders (d : t) = permutations (List.map (fun s -> s.sid) d.spiders)

(** The default reading: existential spiders before universal ones,
    each group in insertion order — a simple instance of the Fish–Howse
    default that suffices for our fragment. *)
let default_reading (d : t) =
  let spiders = List.rev d.spiders in
  List.map (fun s -> s.sid)
    (List.filter (fun s -> s.kind = Existential) spiders
    @ List.filter (fun s -> s.kind = Universal) spiders)

(** A diagram is reading-ambiguous on a database when two spider orders
    disagree — mixed ∃/∀ diagrams generically are, which is why constraint
    diagrams need a designated reading and QueryVis needs arrows. *)
let ambiguous db (d : t) =
  let orders = reading_orders d in
  match orders with
  | [] | [ _ ] -> false
  | o :: rest ->
    let truth o = Diagres_rc.Drc.eval_sentence db (to_fol ~order:o d) in
    let first = truth o in
    List.exists (fun o' -> truth o' <> first) rest

(* ------------------------------------------------------------------ *)
(* Scene rendering.                                                     *)

let to_scene (d : t) : Scene.t =
  let v = venn_of d in
  let contour_marks =
    List.map
      (fun s ->
        Scene.box ~role:Scene.Group ~title:s
          ~id:("contour:" ^ s)
          [ Scene.leaf ~role:Scene.Annotation ~id:("czone:" ^ s)
              (if List.exists
                    (fun z -> Venn.zone_mem v s z)
                    d.shaded
               then "∅-shaded region"
               else "") ])
      d.sets
  in
  let spider_marks =
    List.map
      (fun s ->
        Scene.leaf ~role:Scene.Predicate_node ~id:("spider:" ^ s.sid)
          (Printf.sprintf "%s%s [%s]"
             (match s.kind with Existential -> "●" | Universal -> "∀")
             s.sid
             (String.concat "|"
                (List.map (Venn.zone_to_string v) s.habitat))))
      d.spiders
  in
  let arrow_links =
    List.map
      (fun a ->
        Scene.link ~label:a.relation ~directed:true ~role:Scene.Reading_arrow
          ("spider:" ^ a.src) ("contour:" ^ a.dst_contour))
      d.arrows
  in
  let distinct_links =
    List.map
      (fun (a, b) ->
        Scene.link ~label:"≠" ~role:Scene.Join_edge ("spider:" ^ a)
          ("spider:" ^ b))
      d.distinct
  in
  Scene.scene
    ~links:(arrow_links @ distinct_links)
    (contour_marks @ spider_marks)

let to_svg d = Scene.to_svg (to_scene d)
let to_ascii d = Scene.to_ascii (to_scene d)
