(** Euler circles (Euler 1768): set relationships shown by the {e spatial}
    relation of curves — containment, exclusion, overlap — rather than by
    shading as in Venn's later refinement.

    Euler diagrams are "well-matched": missing zones simply are not drawn.
    The price is that some statement combinations have no single Euler
    diagram (the tutorial's running example of representational limits).
    We model a diagram as the set of zones it {e draws}; semantics: a model
    is admissible iff every inhabited zone is drawn.  Particulars (Some…)
    are carried as inhabited-zone marks like Peirce's ⊗. *)

type relation =
  | Inside of string * string    (** circle A drawn inside B: All A are B *)
  | Disjoint of string * string  (** disjoint circles: No A is B *)
  | Overlap of string * string   (** overlapping circles, no assertion *)

type t = {
  sets : string list;
  relations : relation list;
  marks : int list;  (** zones (Venn bitmask) marked as inhabited *)
}

exception Euler_error of string

let create sets = { sets; relations = []; marks = [] }

let set_index d s =
  let rec go i = function
    | [] -> raise (Euler_error ("unknown set " ^ s))
    | x :: _ when x = s -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 d.sets

let zone_mem d s z = z land (1 lsl set_index d s) <> 0

(** Zones excluded by the spatial relations — the information content of an
    Euler diagram is exactly its set of {e missing} zones. *)
let missing_zones d =
  let all = List.init (1 lsl List.length d.sets) (fun z -> z) in
  List.filter
    (fun z ->
      List.exists
        (function
          | Inside (a, b) -> zone_mem d a z && not (zone_mem d b z)
          | Disjoint (a, b) -> zone_mem d a z && zone_mem d b z
          | Overlap _ -> false)
        d.relations)
    all

let drawn_zones d =
  let missing = missing_zones d in
  List.filter
    (fun z -> not (List.mem z missing))
    (List.init (1 lsl List.length d.sets) (fun z -> z))

(** Add a categorical statement.  Universal statements change the topology;
    particular ones add an inhabitation mark, which must land in a drawn
    zone — if no drawn zone can host it, the statements are not
    Euler-representable (raises).  *)
let assert_statement d (st : Venn.statement) =
  match st with
  | Venn.All_are (a, b) -> { d with relations = Inside (a, b) :: d.relations }
  | Venn.No_are (a, b) -> { d with relations = Disjoint (a, b) :: d.relations }
  | Venn.Some_are (a, b) ->
    let candidates =
      List.filter (fun z -> zone_mem d a z && zone_mem d b z) (drawn_zones d)
    in
    (match candidates with
    | [] ->
      raise
        (Euler_error
           (Printf.sprintf
              "'%s' has no drawable witness zone in this Euler diagram"
              (Venn.statement_to_string st)))
    | z :: _ -> { d with relations = Overlap (a, b) :: d.relations; marks = z :: d.marks })
  | Venn.Some_are_not (a, b) ->
    let candidates =
      List.filter (fun z -> zone_mem d a z && not (zone_mem d b z)) (drawn_zones d)
    in
    (match candidates with
    | [] ->
      raise
        (Euler_error
           (Printf.sprintf
              "'%s' has no drawable witness zone in this Euler diagram"
              (Venn.statement_to_string st)))
    | z :: _ -> { d with marks = z :: d.marks })

let of_statements sets stmts =
  List.fold_left assert_statement (create sets) stmts

(** The Venn diagram carrying the same information: missing zones become
    shading, marks become singleton ⊗-sequences.  This embedding is how we
    decide entailment between Euler diagrams (and the formal content of
    "Venn refined Euler"). *)
let to_venn d : Venn.t =
  let v = Venn.create d.sets in
  let v = Venn.shade v (missing_zones d) in
  List.fold_left (fun v z -> Venn.add_xseq v [ z ]) v d.marks

let entails d1 d2 = Venn.entails (to_venn d1) (to_venn d2)

let to_fol d = Venn.to_fol (to_venn d)

(* ------------------------------------------------------------------ *)
(* Rendering: choose circle geometry from the relations (2–3 sets).     *)

module Geom = Diagres_render.Geom
module Svg = Diagres_render.Svg

let circle_geometry d : (string * float * float * float) list =
  let base = [ (160., 170., 95.); (285., 170., 95.); (222., 265., 95.) ] in
  let pos = List.mapi (fun i s -> (s, List.nth base (min i 2))) d.sets in
  let adjust (s, (x, y, r)) =
    (* containment shrinks the inner circle into its container; disjointness
       pushes circles apart *)
    let rec apply (x, y, r) = function
      | [] -> (x, y, r)
      | Inside (a, b) :: rest when a = s ->
        let bx, by, br =
          match List.assoc_opt b pos with Some c -> c | None -> (x, y, r)
        in
        apply (bx +. 10., by +. 10., br *. 0.55) rest
      | Disjoint (a, _) :: rest when a = s -> apply (x -. 40., y, r *. 0.9) rest
      | Disjoint (_, b) :: rest when b = s -> apply (x +. 40., y, r *. 0.9) rest
      | _ :: rest -> apply (x, y, r) rest
    in
    let x, y, r = apply (x, y, r) d.relations in
    (s, x, y, r)
  in
  List.map adjust pos

let to_svg d : string =
  let svg = Svg.create () in
  List.iter
    (fun (s, x, y, r) ->
      Svg.circle svg (Geom.pt x y) r;
      Svg.text ~bold:true svg (Geom.pt x (y -. r -. 6.)) s)
    (circle_geometry d);
  List.iter
    (fun z ->
      ignore z;
      ())
    d.marks;
  Svg.to_string ~width:460. ~height:420. svg

let to_ascii d : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "Euler diagram over {%s}\n" (String.concat ", " d.sets));
  List.iter
    (fun rel ->
      Buffer.add_string buf
        (match rel with
        | Inside (a, b) -> Printf.sprintf "  %s drawn inside %s\n" a b
        | Disjoint (a, b) -> Printf.sprintf "  %s disjoint from %s\n" a b
        | Overlap (a, b) -> Printf.sprintf "  %s overlaps %s\n" a b))
    (List.rev d.relations);
  List.iter
    (fun z ->
      Buffer.add_string buf
        (Printf.sprintf "  inhabited zone: %s\n"
           (Venn.zone_to_string (to_venn d) z)))
    d.marks;
  Buffer.contents buf
